/**
 * @file
 * Figure 1: throughput drop ratios of the evaluation NFs when
 * co-located with up to three other random NFs from Table 1.
 * Paper: 4.2%-62.2% drop at the 95th percentile, 1.9%-10.6% at the
 * median, varying strongly across NFs.
 */

#include "common.hh"

using namespace tomur;
using namespace tomur::bench;

int
main()
{
    printHeader("Figure 1: throughput drop under random co-location",
                "drops span ~2-11% at the median and up to ~62% at "
                "the 95th percentile, heavier for accelerator NFs");
    BenchEnv env;
    auto defaults = traffic::TrafficProfile::defaults();
    auto names = nfs::evaluationNfNames();

    constexpr int kSets = 40;
    AsciiTable table({"NF", "median drop (%)", "p95 drop (%)",
                      "max drop (%)"});
    for (const auto &target : names) {
        double solo = env.solo(target, defaults);
        // Plan-first: draw every co-location set up front (consuming
        // env.rng in the same order as the old serial loop), then run
        // them as one batch — the noise-free solves fan out across
        // the pool while measurement noise is applied in submission
        // order, so the numbers are bit-identical at any
        // TOMUR_THREADS setting.
        std::vector<std::vector<framework::WorkloadProfile>> batch;
        for (int s = 0; s < kSets; ++s) {
            int n_comp = 1 + static_cast<int>(env.rng.uniformInt(3u));
            std::vector<framework::WorkloadProfile> deploy = {
                env.workload(target, defaults)};
            for (int c = 0; c < n_comp; ++c) {
                const auto &comp = env.rng.pick(names);
                deploy.push_back(env.workload(comp, defaults));
            }
            batch.push_back(std::move(deploy));
        }
        std::vector<double> drops;
        for (const auto &ms : env.bed.runBatch(batch))
            drops.push_back(
                100.0 * (1.0 - ms[0].truthThroughput / solo));
        table.addRow({target, fmtDouble(median(drops), 1),
                      fmtDouble(percentile(drops, 95), 1),
                      fmtDouble(maxOf(drops), 1)});
    }
    table.print(stdout);
    return 0;
}
