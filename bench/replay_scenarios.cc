#include "replay_scenarios.hh"

#include <algorithm>
#include <chrono>
#include <vector>

#include "common/logging.hh"
#include "common/sampler.hh"
#include "tomur/supervisor.hh"
#include "traffic/synth.hh"

namespace tomur::bench {

namespace {

/** A compressed composite (~90 samples): every scenario family with
 *  short steady tails so each regime change has room to recover. */
std::vector<core::ScheduleStep>
benchScenario()
{
    auto base = traffic::TrafficProfile::defaults();
    std::vector<traffic::SynthStep> steps;
    auto append = [&](std::vector<traffic::SynthStep> more) {
        for (auto &s : more)
            steps.push_back(std::move(s));
    };
    append(traffic::steadySteps(base, 16));
    traffic::DiurnalOptions diurnal;
    diurnal.base = base;
    diurnal.amplitude = 0.85;
    diurnal.period = 12;
    append(traffic::diurnalSteps(diurnal));
    append(traffic::steadySteps(base, 8));
    traffic::FlashCrowdOptions flash;
    flash.base = base;
    flash.peak = 8.0;
    flash.ramp = 2;
    flash.hold = 4;
    flash.decay = 2;
    append(traffic::flashCrowdSteps(flash));
    append(traffic::steadySteps(base, 8));
    traffic::MtbrSpikeOptions spike;
    spike.base = base;
    spike.mtbr = 1100.0;
    spike.ramp = 2;
    spike.hold = 4;
    append(traffic::mtbrSpikeSteps(spike));
    append(traffic::steadySteps(base, 12));
    return core::toSchedule(steps);
}

/** Time the monitor-ingest loop, exactly the token the autopilot's
 *  profiler scopes wrap. */
double
ingestLoopSeconds(int iterations)
{
    core::PredictionMonitor monitor;
    core::MonitorSample s;
    s.deployment = "bench";
    s.profile = traffic::TrafficProfile::defaults();
    s.predicted = 1000.0;
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iterations; ++i) {
        s.measured = 1000.0 + (i % 16) - 8.0;
        auto fired = monitor.ingest(s);
        (void)fired;
    }
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

/** Time a loop of bare profiler scopes: the full per-token price of
 *  instrumentation (counter bumps on every token, clock reads and a
 *  ring write on the sampled ones), with no work inside. */
double
scopeLoopSeconds(int iterations, SamplingProfiler &prof, int site)
{
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iterations; ++i) {
        SamplingProfiler::Scope scope(&prof, site);
    }
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

void
runReplayScenarioStage(BenchReport &report, bool parallel)
{
    // Setup (profiling sweep + one small training run) happens
    // outside the measured region: the stage times the replay loop,
    // not model construction.
    BenchEnv env;
    auto defaults = traffic::TrafficProfile::defaults();
    auto &nf = env.nf("FlowMonitor");
    core::TrainOptions topts;
    topts.sampling = core::SamplingStrategy::Random;
    topts.adaptive.quota = 60;
    auto model = env.trainer->train(nf, defaults, topts);

    auto schedule = benchScenario();
    std::vector<core::ContentionLevel> levels = {
        env.lib->memBenches().front().level};
    std::vector<framework::WorkloadProfile> competitors = {
        env.lib->memBenches().front().workload};

    core::PredictionMonitor monitor;
    core::Supervisor supervisor(
        {}, [](std::size_t, std::string *) { return Status::ok(); });

    core::ReplayContext ctx;
    ctx.trainer = env.trainer.get();
    ctx.model = &model;
    ctx.nf = &nf;
    ctx.levels = levels;
    ctx.competitors = competitors;
    ctx.soloBed = &env.bed;
    ctx.label = "bench";

    SamplingProfiler profiler;
    core::AutopilotOptions aopts;
    aopts.profiler = &profiler;

    core::AutopilotResult result;
    report.measure("replay_scenarios", parallel, [&] {
        auto res = core::runAutopilot(ctx, schedule, monitor,
                                      supervisor, nullptr, aopts);
        if (!res)
            fatal(res.status().message());
        result = res.value();
    });

    if (parallel)
        return;

    // Serial pass also publishes the recovery rollup and the
    // profiler's per-token overhead relative to ingest cost.
    const auto &mon = result.monitorSummary;
    report.extra("replay_recoveries",
                 static_cast<double>(mon.recoveries));
    report.extra("replay_recovery_mean_samples",
                 mon.meanRecoverySamples);
    report.extra("replay_recovery_max_samples",
                 static_cast<double>(mon.maxRecoverySamples));

    // Overhead fraction = (profiler cost per token) / (ingest cost
    // per token), each measured in its own tight loop and reduced
    // with min over alternating trials (noise only ever adds time,
    // so the min estimates the true floor). Decomposing beats an
    // A/B diff of two ~equal loops: there the profiler's few-ns
    // cost hides inside the run-to-run jitter of the much larger
    // ingest time, and the diff flaps around zero.
    const int ingestIters = 200000;
    const int scopeIters = 2000000;
    ingestLoopSeconds(ingestIters); // warm caches, discard
    double ingestSec = 0.0, scopeSec = 0.0;
    for (int trial = 0; trial < 7; ++trial) {
        double b = ingestLoopSeconds(ingestIters);
        SamplingProfiler p;
        int site = p.registerSite("ingest");
        double w = scopeLoopSeconds(scopeIters, p, site);
        ingestSec = trial == 0 ? b : std::min(ingestSec, b);
        scopeSec = trial == 0 ? w : std::min(scopeSec, w);
    }
    double perIngest = ingestSec / ingestIters;
    double perScope = scopeSec / scopeIters;
    double overhead =
        perIngest > 0.0 ? perScope / perIngest : 0.0;
    report.extra("replay_profiler_overhead_frac", overhead);
    std::printf("replay scenario: %zu samples, %zu recoveries "
                "(mean %.1f samples), profiler overhead %.2f%%\n",
                result.samples, mon.recoveries,
                mon.meanRecoverySamples, 100.0 * overhead);
}

} // namespace tomur::bench
