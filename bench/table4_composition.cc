/**
 * @file
 * Table 4: composition strategies across execution patterns, on the
 * synthetic NF1 (memory + regex) and NF2 (memory + regex +
 * compression), each in pipeline and run-to-completion variants.
 * Paper: Tomur's execution-pattern composition is best or tied in
 * all four cases (MAPE < 2%); min matches it for pipelines, sum is
 * closer for run-to-completion but neither wins everywhere.
 */

#include "common.hh"

using namespace tomur;
using namespace tomur::bench;

int
main()
{
    printHeader("Table 4: composition strategies by execution "
                "pattern",
                "Tomur best in all cases; min ties on pipelines; "
                "sum/min each fail somewhere");
    BenchEnv env;
    auto defaults = traffic::TrafficProfile::defaults();

    AsciiTable table({"NF", "pattern", "sum MAPE", "min MAPE",
                      "Tomur MAPE"});
    for (int which : {1, 2}) {
        for (auto pattern :
             {framework::ExecutionPattern::Pipeline,
              framework::ExecutionPattern::RunToCompletion}) {
            auto nf = which == 1
                ? nfs::makeSyntheticNf1(env.dev, pattern)
                : nfs::makeSyntheticNf2(env.dev, pattern);
            core::TrainOptions topts;
            topts.adaptive.quota = 80;
            auto model = env.trainer->train(*nf, defaults, topts);
            double solo =
                env.bed
                    .runSolo(env.trainer->workloadOf(*nf, defaults))
                    .truthThroughput;

            AccuracyTracker acc;
            Rng rng = env.rng.split();
            for (int i = 0; i < 30; ++i) {
                const auto &mem = env.lib->randomMemBench(rng);
                // Moderate, open-loop accelerator load: the additive
                // sojourn regime Eq. 4 models (heavy closed-loop
                // contention instead pins the NF at its round-robin
                // share, where min composition is exact).
                const auto &rx = env.lib->accelBench(
                    hw::AccelKind::Regex,
                    rng.uniform(0.5e5, 3.5e5),
                    rng.uniform(300.0, 1200.0));
                std::vector<framework::WorkloadProfile> deploy = {
                    env.trainer->workloadOf(*nf, defaults),
                    mem.workload, rx.workload};
                std::vector<core::ContentionLevel> levels = {
                    mem.level, rx.level};
                if (which == 2) {
                    const auto &cb = env.lib->accelBench(
                        hw::AccelKind::Compression,
                        rng.uniform(0.5e5, 2.5e5), 4000.0);
                    deploy.push_back(cb.workload);
                    levels.push_back(cb.level);
                }
                if (deploy.size() > 4)
                    deploy.resize(4);
                auto ms = env.bed.run(deploy);
                double truth = ms[0].throughput;
                acc.add("sum", truth,
                        model.predictComposed(
                            core::CompositionKind::Sum, levels,
                            defaults, solo));
                acc.add("min", truth,
                        model.predictComposed(
                            core::CompositionKind::Min, levels,
                            defaults, solo));
                acc.add("tomur", truth,
                        model.predict(levels, defaults, solo));
            }
            table.addRow({which == 1 ? "NF1" : "NF2",
                          framework::patternName(pattern),
                          fmtDouble(acc.mape("sum"), 1),
                          fmtDouble(acc.mape("min"), 1),
                          fmtDouble(acc.mape("tomur"), 1)});
        }
    }
    table.print(stdout);
    return 0;
}
