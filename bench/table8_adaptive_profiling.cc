/**
 * @file
 * Table 8: profiling cost vs model accuracy for full, random, and
 * adaptive profiling.
 * Paper: adaptive profiling matches full profiling (which uses
 * ~3200x more data) and clearly beats random at the same quota —
 * up to 35.5% MAPE reduction (FlowTracker) and +72% ±10% accuracy
 * (FlowClassifier).
 *
 * Scale substitution: "full" here is a dense 5x5x5 attribute grid
 * with several contention samples per point (~20x the quota), not
 * the paper's 3200x — the ordering full >= adaptive >> random is
 * what this regenerates.
 */

#include "common.hh"

using namespace tomur;
using namespace tomur::bench;

int
main()
{
    printHeader("Table 8: full vs random vs adaptive profiling",
                "adaptive ~ full at a fraction of the cost; random "
                "at the same quota is clearly worse");
    BenchEnv env;
    auto defaults = traffic::TrafficProfile::defaults();

    AsciiTable table({"NF", "Full MAPE", "Full ±10%", "Random MAPE",
                      "Random ±10%", "Adaptive MAPE",
                      "Adaptive ±10%", "Full cost (x quota)"});
    for (const char *name : {"FlowClassifier", "NAT", "FlowTracker",
                             "FlowStats", "IPTunnel"}) {
        std::map<core::SamplingStrategy, core::TomurModel> models;
        std::map<core::SamplingStrategy, std::size_t> costs;
        for (auto strat : {core::SamplingStrategy::Full,
                           core::SamplingStrategy::Random,
                           core::SamplingStrategy::Adaptive}) {
            core::TrainOptions topts;
            topts.sampling = strat;
            topts.adaptive.quota = 80;
            topts.fullGridPerAttribute = 7;
            topts.contentionSamplesPerProfile = 3;
            core::TrainReport report;
            models.emplace(strat,
                           env.trainer->train(env.nf(name), defaults,
                                              topts, &report));
            costs[strat] = report.memorySamples;
        }
        std::printf("  trained %s (full=%zu, adaptive=%zu samples)\n",
                    name, costs[core::SamplingStrategy::Full],
                    costs[core::SamplingStrategy::Adaptive]);
        std::fflush(stdout);

        // Common test set: random traffic + random memory benches.
        AccuracyTracker acc;
        Rng rng = env.rng.split();
        for (int i = 0; i < 40; ++i) {
            auto p = env.randomProfile();
            const auto &bench = env.lib->randomMemBench(rng);
            auto ms = env.bed.run(
                {env.workload(name, p), bench.workload});
            double truth = ms[0].throughput;
            acc.add("full",
                    truth,
                    models.at(core::SamplingStrategy::Full)
                        .predict({bench.level}, p));
            acc.add("random",
                    truth,
                    models.at(core::SamplingStrategy::Random)
                        .predict({bench.level}, p));
            acc.add("adaptive",
                    truth,
                    models.at(core::SamplingStrategy::Adaptive)
                        .predict({bench.level}, p));
        }
        double cost_ratio =
            static_cast<double>(costs[core::SamplingStrategy::Full]) /
            std::max<std::size_t>(
                1, costs[core::SamplingStrategy::Adaptive]);
        table.addRow({name, fmtDouble(acc.mape("full"), 1),
                      fmtDouble(acc.accWithin("full", 10), 1),
                      fmtDouble(acc.mape("random"), 1),
                      fmtDouble(acc.accWithin("random", 10), 1),
                      fmtDouble(acc.mape("adaptive"), 1),
                      fmtDouble(acc.accWithin("adaptive", 10), 1),
                      fmtDouble(cost_ratio, 1)});
    }
    table.print(stdout);
    return 0;
}
