/**
 * @file
 * Figure 5: throughput of synthetic pipeline and run-to-completion
 * NFs as a function of competing CAR (memory) and competing regex
 * match rate.
 * Paper (O1): the pipeline NF plateaus when regex contention is high
 * — its slowest stage rules, so it ignores memory contention.
 * Paper (O2): the run-to-completion NF degrades monotonically in
 * both dimensions (compounded contention).
 */

#include "common.hh"

using namespace tomur;
using namespace tomur::bench;

namespace {

void
sweep(BenchEnv &env, framework::ExecutionPattern pattern)
{
    auto nf = nfs::makeSyntheticNf1(env.dev, pattern);
    auto defaults = traffic::TrafficProfile::defaults();
    auto w = env.trainer->workloadOf(*nf, defaults);

    const double rates[] = {0.0, 150e3, 300e3, 450e3, 600e3};
    std::vector<std::string> header = {"CAR \\ bench rate"};
    for (double r : rates)
        header.push_back(strf("%.0fK", r / 1e3));
    AsciiTable table(header);

    for (double car : {0.0, 15e6, 30e6, 45e6, 60e6}) {
        std::vector<std::string> row = {strf("%.0fM", car / 1e6)};
        for (double rate : rates) {
            std::vector<framework::WorkloadProfile> deploy = {w};
            if (car > 0.0) {
                nfs::MemBenchConfig cfg;
                cfg.wssBytes = 12.0 * 1024 * 1024;
                cfg.targetAccessRate = car;
                auto mb = nfs::makeMemBench(cfg);
                deploy.push_back(env.trainer->workloadOf(
                    *mb, traffic::TrafficProfile{16, 1500, 0.0}));
            }
            if (rate > 0.0) {
                nfs::RegexBenchConfig cfg;
                cfg.requestRate = rate;
                auto rb = nfs::makeRegexBench(env.dev, cfg);
                deploy.push_back(
                    env.trainer->workloadOf(*rb, defaults));
            }
            auto ms = env.bed.run(deploy);
            row.push_back(
                strf("%.0fK", ms[0].truthThroughput / 1e3));
        }
        table.addRow(std::move(row));
    }
    std::printf("\n%s NF:\n", framework::patternName(pattern));
    table.print(stdout);
}

} // namespace

int
main()
{
    printHeader("Figure 5: execution patterns under joint contention",
                "pipeline plateaus at the slowest stage; "
                "run-to-completion compounds both contention sources");
    BenchEnv env;
    sweep(env, framework::ExecutionPattern::Pipeline);
    sweep(env, framework::ExecutionPattern::RunToCompletion);
    return 0;
}
