/**
 * @file
 * Shared scaffolding for the experiment harnesses: a ready-made
 * testbed + bench library + trainer, accuracy bookkeeping, and the
 * common co-location / traffic randomisation used across tables.
 */

#ifndef TOMUR_BENCH_COMMON_HH
#define TOMUR_BENCH_COMMON_HH

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "ml/metrics.hh"
#include "nfs/bench_nfs.hh"
#include "nfs/registry.hh"
#include "nfs/synthetic.hh"
#include "regex/ruleset.hh"
#include "slomo/slomo.hh"
#include "tomur/profiler.hh"
#include "usecases/diagnosis.hh"
#include "usecases/placement.hh"

namespace tomur::bench {

/** Everything an experiment needs, wired to one NIC model. */
struct BenchEnv
{
    explicit BenchEnv(hw::NicConfig config = hw::blueField2(),
                      std::uint64_t seed = 2024);

    regex::RuleSet rules;
    framework::DeviceSet dev;
    sim::Testbed bed;
    std::unique_ptr<core::BenchLibrary> lib;
    std::unique_ptr<core::TomurTrainer> trainer;
    Rng rng;

    /** Instantiate (and cache) an NF by catalog name. */
    framework::NetworkFunction &nf(const std::string &name);

    /** Workload profile for an NF at a traffic profile (cached). */
    const framework::WorkloadProfile &
    workload(const std::string &name,
             const traffic::TrafficProfile &p);

    /** Measured solo throughput (noise-free baseline). */
    double solo(const std::string &name,
                const traffic::TrafficProfile &p);

    /** A uniformly random traffic profile within default ranges. */
    traffic::TrafficProfile randomProfile();

  private:
    std::map<std::string,
             std::unique_ptr<framework::NetworkFunction>>
        nfs_;
    std::map<std::pair<std::string, std::vector<double>>, double>
        soloCache_;
};

/** Accumulates (truth, prediction) pairs per approach. */
class AccuracyTracker
{
  public:
    void add(const std::string &approach, double truth,
             double predicted);

    double mape(const std::string &approach) const;
    double accWithin(const std::string &approach, double pct) const;
    /** Per-sample absolute percentage errors. */
    std::vector<double> errors(const std::string &approach) const;
    std::size_t count(const std::string &approach) const;

  private:
    struct Series
    {
        std::vector<double> truth;
        std::vector<double> pred;
    };
    std::map<std::string, Series> series_;
};

/** Standard header line for every harness. */
void printHeader(const char *experiment, const char *paper_claim);

/** Render a box-plot row "p5 p25 p50 p75 p95" for a sample. */
std::string boxRow(const std::vector<double> &xs, int decimals = 1);

} // namespace tomur::bench

#endif // TOMUR_BENCH_COMMON_HH
