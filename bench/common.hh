/**
 * @file
 * Shared scaffolding for the experiment harnesses: a ready-made
 * testbed + bench library + trainer, accuracy bookkeeping, and the
 * common co-location / traffic randomisation used across tables.
 */

#ifndef TOMUR_BENCH_COMMON_HH
#define TOMUR_BENCH_COMMON_HH

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/threadpool.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "ml/metrics.hh"
#include "nfs/bench_nfs.hh"
#include "nfs/registry.hh"
#include "nfs/synthetic.hh"
#include "regex/ruleset.hh"
#include "slomo/slomo.hh"
#include "tomur/profiler.hh"
#include "usecases/diagnosis.hh"
#include "usecases/placement.hh"

namespace tomur::bench {

/** Everything an experiment needs, wired to one NIC model. */
struct BenchEnv
{
    explicit BenchEnv(hw::NicConfig config = hw::blueField2(),
                      std::uint64_t seed = 2024);

    regex::RuleSet rules;
    framework::DeviceSet dev;
    sim::Testbed bed;
    std::unique_ptr<core::BenchLibrary> lib;
    std::unique_ptr<core::TomurTrainer> trainer;
    Rng rng;

    /** Instantiate (and cache) an NF by catalog name. */
    framework::NetworkFunction &nf(const std::string &name);

    /** Workload profile for an NF at a traffic profile (cached). */
    const framework::WorkloadProfile &
    workload(const std::string &name,
             const traffic::TrafficProfile &p);

    /** Measured solo throughput (noise-free baseline). */
    double solo(const std::string &name,
                const traffic::TrafficProfile &p);

    /** A uniformly random traffic profile within default ranges. */
    traffic::TrafficProfile randomProfile();

  private:
    std::map<std::string,
             std::unique_ptr<framework::NetworkFunction>>
        nfs_;
    std::map<std::pair<std::string, std::vector<double>>, double>
        soloCache_;
};

/** Accumulates (truth, prediction) pairs per approach. */
class AccuracyTracker
{
  public:
    void add(const std::string &approach, double truth,
             double predicted);

    double mape(const std::string &approach) const;
    double accWithin(const std::string &approach, double pct) const;
    /** Per-sample absolute percentage errors. */
    std::vector<double> errors(const std::string &approach) const;
    std::size_t count(const std::string &approach) const;

  private:
    struct Series
    {
        std::vector<double> truth;
        std::vector<double> pred;
    };
    std::map<std::string, Series> series_;
};

/** Standard header line for every harness. */
void printHeader(const char *experiment, const char *paper_claim);

/** Render a box-plot row "p5 p25 p50 p75 p95" for a sample. */
std::string boxRow(const std::vector<double> &xs, int decimals = 1);

/**
 * Run `items` independent experiment repetitions across the global
 * pool. Each item gets its own RNG stream derived from (seed, item
 * index), so results are bit-identical at any TOMUR_THREADS setting;
 * they are collected in item order. fn must not touch shared mutable
 * state (BenchEnv caches are NOT thread-safe — pre-resolve workloads
 * and models before fanning out).
 */
template <typename F>
auto
runExperiments(std::size_t items, std::uint64_t seed, F fn)
    -> std::vector<decltype(fn(std::size_t{},
                               std::declval<Rng &>()))>
{
    return parallelMap(items, [&](std::size_t i) {
        Rng rng(deriveSeed(seed, i));
        return fn(i, rng);
    });
}

/**
 * Machine-readable benchmark output: wall time per pipeline stage in
 * a serial and a parallel variant, emitted as JSON (BENCH_micro.json)
 * so the repo accumulates a performance trajectory across commits.
 */
class BenchReport
{
  public:
    explicit BenchReport(std::string benchName)
        : bench_(std::move(benchName))
    {
    }

    /** Record one stage variant's wall time (seconds). */
    void record(const std::string &stage, bool parallel,
                double seconds);

    /** Wall-clock fn() and record it. @return seconds elapsed. */
    double measure(const std::string &stage, bool parallel,
                   const std::function<void()> &fn);

    /** Record a scalar side metric (recovery samples, overhead
     *  fractions, ...); emitted under an "extras" object. Re-using a
     *  key overwrites. */
    void extra(const std::string &key, double value);

    /**
     * Write the report. Stages appear in first-recorded order; each
     * stage carries only the variant keys that were actually
     * recorded (serial_sec / parallel_sec, plus speedup when both
     * ran) so downstream diff tooling never compares against an
     * absent measurement. A "total" entry sums all stages.
     * @return false (with a warning) when the file cannot be
     * written.
     */
    bool writeJson(const std::string &path, int serialThreads,
                   int parallelThreads) const;

  private:
    struct Stage
    {
        std::string name;
        double serialSec = 0.0;
        double parallelSec = 0.0;
        bool hasSerial = false;
        bool hasParallel = false;
    };
    Stage &stage(const std::string &name);

    std::string bench_;
    std::vector<Stage> stages_;
    std::vector<std::pair<std::string, double>> extras_;
};

} // namespace tomur::bench

#endif // TOMUR_BENCH_COMMON_HH
