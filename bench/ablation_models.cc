/**
 * @file
 * Ablations of Tomur's design choices (DESIGN.md §5):
 *   1. analytic round-robin fluid solver vs discrete-event
 *      simulation of the same queue system;
 *   2. adaptive-profiling thresholds (eps1) vs cost and accuracy;
 *   3. traffic-attribute fusion in the memory model vs a
 *      counters-only model under changing traffic.
 */

#include "common.hh"

#include <cmath>

#include "hw/accel_des.hh"

using namespace tomur;
using namespace tomur::bench;

namespace {

void
ablationRrSolver()
{
    std::printf("\n[1] analytic RR solver vs discrete-event "
                "simulation\n");
    Rng rng(77);
    RunningStats rel_err;
    for (int i = 0; i < 60; ++i) {
        std::vector<hw::AccelQueue> queues;
        int n = 2 + static_cast<int>(rng.uniformInt(3u));
        for (int q = 0; q < n; ++q) {
            hw::AccelQueue a;
            a.serviceTime = rng.uniform(0.5e-6, 4e-6);
            a.closedLoop = rng.chance(0.4);
            if (!a.closedLoop)
                a.arrivalRate = rng.uniform(5e4, 8e5);
            queues.push_back(a);
        }
        auto analytic = hw::solveRoundRobin(queues);
        hw::DesOptions opts;
        opts.duration = 0.5;
        opts.warmup = 0.05;
        opts.seed = 1000 + i;
        auto des = hw::simulateRoundRobin(queues, opts);
        for (std::size_t q = 0; q < queues.size(); ++q) {
            if (des[q].throughput <= 0.0)
                continue;
            rel_err.add(std::fabs(analytic[q].throughput -
                                  des[q].throughput) /
                        des[q].throughput);
        }
    }
    std::printf("    mean |analytic - DES| / DES = %.2f%%  "
                "(max %.2f%%, %zu queues)\n",
                100.0 * rel_err.mean(), 100.0 * rel_err.max(),
                rel_err.count());
}

void
ablationAdaptiveThresholds(BenchEnv &env)
{
    std::printf("\n[2] adaptive-profiling eps1 sensitivity "
                "(FlowStats)\n");
    auto defaults = traffic::TrafficProfile::defaults();

    // Shared test set.
    struct TestPoint
    {
        traffic::TrafficProfile p;
        const core::BenchLibrary::MemBenchEntry *bench;
        double truth, solo;
    };
    std::vector<TestPoint> tests;
    Rng rng = env.rng.split();
    for (int i = 0; i < 30; ++i) {
        TestPoint t;
        t.p = env.randomProfile();
        t.bench = &env.lib->randomMemBench(rng);
        auto ms = env.bed.run(
            {env.workload("FlowStats", t.p), t.bench->workload});
        t.truth = ms[0].throughput;
        t.solo = env.solo("FlowStats", t.p);
        tests.push_back(std::move(t));
    }

    AsciiTable table({"eps1", "samples used", "MAPE (%)"});
    for (double eps1 : {0.005, 0.03, 0.15}) {
        core::TrainOptions topts;
        topts.adaptive.quota = 120;
        topts.adaptive.eps1 = eps1;
        core::TrainReport report;
        auto model = env.trainer->train(env.nf("FlowStats"), defaults,
                                        topts, &report);
        std::vector<double> truth, pred;
        for (const auto &t : tests) {
            truth.push_back(t.truth);
            pred.push_back(
                model.predict({t.bench->level}, t.p, t.solo));
        }
        table.addRow({fmtDouble(eps1, 3),
                      strf("%zu", report.memorySamples),
                      fmtDouble(ml::mape(truth, pred), 1)});
    }
    table.print(stdout);
}

void
ablationTrafficFusion(BenchEnv &env)
{
    std::printf("\n[3] traffic-attribute fusion in the memory model "
                "(FlowStats, memory-only, random traffic)\n");
    auto defaults = traffic::TrafficProfile::defaults();

    core::TrainOptions aware, blind;
    aware.adaptive.quota = blind.adaptive.quota = 140;
    blind.memory.trafficAware = false;
    auto m_aware =
        env.trainer->train(env.nf("FlowStats"), defaults, aware);
    auto m_blind =
        env.trainer->train(env.nf("FlowStats"), defaults, blind);

    AccuracyTracker acc;
    Rng rng = env.rng.split();
    for (int i = 0; i < 30; ++i) {
        auto p = env.randomProfile();
        const auto &bench = env.lib->randomMemBench(rng);
        auto ms = env.bed.run(
            {env.workload("FlowStats", p), bench.workload});
        double solo = env.solo("FlowStats", p);
        acc.add("fused", ms[0].throughput,
                m_aware.predict({bench.level}, p, solo));
        acc.add("counters-only", ms[0].throughput,
                m_blind.predict({bench.level}, p, solo));
    }
    AsciiTable table({"memory model", "MAPE (%)"});
    table.addRow({"counters + traffic attrs (Tomur)",
                  fmtDouble(acc.mape("fused"), 1)});
    table.addRow({"counters only",
                  fmtDouble(acc.mape("counters-only"), 1)});
    table.print(stdout);
}

} // namespace

int
main()
{
    printHeader("Ablations: solver fidelity, adaptive thresholds, "
                "traffic fusion",
                "design-choice deep dives called out in DESIGN.md");
    BenchEnv env;
    ablationRrSolver();
    ablationAdaptiveThresholds(env);
    ablationTrafficFusion(env);
    return 0;
}
