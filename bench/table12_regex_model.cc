/**
 * @file
 * Table 12 (Appendix A): the queue-based regex model under
 * regex-only contention and fixed traffic.
 * Paper: MAPE 1.2-1.3% for FlowMonitor and NIDS, ~100% ±10% Acc.
 */

#include "common.hh"

using namespace tomur;
using namespace tomur::bench;

int
main()
{
    printHeader("Table 12: regex queue model, regex-only contention, "
                "fixed traffic",
                "MAPE ~1.3% on FlowMonitor and NIDS");
    BenchEnv env;
    auto defaults = traffic::TrafficProfile::defaults();

    AsciiTable table({"NF", "MAPE (%)", "±5% Acc. (%)",
                      "±10% Acc. (%)"});
    for (const char *name : {"FlowMonitor", "NIDS"}) {
        core::TrainOptions opts;
        opts.adaptive.quota = 60;
        auto model = env.trainer->train(env.nf(name), defaults, opts);
        double solo = env.solo(name, defaults);

        AccuracyTracker acc;
        // Sweep regex-bench offered rates and service times.
        for (double knob : {400.0, 800.0, 1600.0}) {
            for (double rate :
                 {100e3, 200e3, 300e3, 450e3, 600e3, 0.0}) {
                const auto &bench = env.lib->accelBench(
                    hw::AccelKind::Regex, rate, knob);
                auto ms = env.bed.run(
                    {env.workload(name, defaults), bench.workload});
                auto b = model.predictDetailed({bench.level},
                                               defaults, solo);
                acc.add("regex", ms[0].throughput,
                        b.accelOnlyThroughput[0]);
            }
        }
        table.addRow({name, fmtDouble(acc.mape("regex"), 1),
                      fmtDouble(acc.accWithin("regex", 5), 1),
                      fmtDouble(acc.accWithin("regex", 10), 1)});
    }
    table.print(stdout);
    return 0;
}
