#include "chaos_campaign.hh"

#include <filesystem>

#include "chaos/campaign.hh"
#include "chaos/shrink.hh"
#include "common/logging.hh"

namespace tomur::bench {

namespace {

/** A serve plan that only fails under the planted registry bug:
 *  decoy faults around one corrupt reload, so the shrinker has
 *  something real to strip away. */
chaos::FaultPlan
plantedPlan()
{
    chaos::FaultPlan plan;
    plan.seed = 42;
    plan.target = chaos::PlanTarget::Serve;
    plan.actions = {
        {chaos::ActionKind::TransportFault, 2, 0.3, 4, 2},
        {chaos::ActionKind::QueueStorm, 5, 3.0, 5, 0},
        {chaos::ActionKind::CorruptReload, 12, 0.0, 1, 1},
    };
    return plan;
}

} // namespace

void
runChaosCampaignStage(BenchReport &report, bool parallel)
{
    // The heavy fixture (testbed sweep + one training run) is built
    // outside the measured region: the stage times plan execution,
    // not model construction. Fresh per pass so serial and parallel
    // both start with a cold solve cache.
    chaos::ChaosWorld world;

    namespace fs = std::filesystem;
    fs::path dir = fs::temp_directory_path() /
                   (parallel ? "tomur_bench_chaos_p"
                             : "tomur_bench_chaos_s");
    fs::remove_all(dir);

    chaos::CampaignOptions copts;
    copts.seed = 7;
    copts.runs = 18;
    copts.combinatorial = false;
    copts.serveEveryN = 3;
    copts.determinismEveryN = 6;
    copts.shrink = false; // a healthy campaign has nothing to shrink
    copts.runner.workDir = (dir / "campaign").string();

    chaos::CampaignResult result;
    double sec = report.measure("chaos_campaign", parallel, [&] {
        result = chaos::runCampaign(world, copts);
    });

    if (parallel) {
        fs::remove_all(dir);
        return;
    }

    report.extra("chaos_plans", static_cast<double>(result.plans));
    report.extra("chaos_violations",
                 static_cast<double>(result.violations));
    report.extra("chaos_plans_per_sec",
                 sec > 0 ? static_cast<double>(result.plans) / sec
                         : 0.0);

    // Shrinker throughput on a deterministic planted failure: the
    // plan violates graceful degradation only under the planted
    // registry bug, and ddmin must strip the two decoy actions.
    chaos::RunnerOptions ropts;
    ropts.workDir = (dir / "shrink").string();
    ropts.plant = chaos::kPlantRegistryNoCommit;
    auto plan = plantedPlan();
    auto outcome = chaos::runPlan(world, plan, ropts);
    auto verdicts = chaos::checkInvariants(plan, outcome,
                                           ropts.invariants);
    const chaos::InvariantVerdict *failed = nullptr;
    for (const auto &v : verdicts) {
        if (!v.passed)
            failed = &v;
    }
    if (failed == nullptr)
        fatal("planted chaos failure did not violate any invariant");
    auto shrunk =
        chaos::shrinkPlan(world, plan, failed->kind, ropts);
    if (shrunk.plan.actions.size() >= plan.actions.size())
        fatal("shrinker failed to remove the decoy actions");
    report.extra("chaos_shrink_iterations",
                 static_cast<double>(shrunk.iterations));

    fs::remove_all(dir);
}

} // namespace tomur::bench
