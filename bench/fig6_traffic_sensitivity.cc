/**
 * @file
 * Figure 6: FlowStats throughput as a function of traffic
 * attributes.
 * Paper (a): throughput falls piece-wise with the flow count (hash
 * table vs LLC) and the drop deepens with the competitor's WSS;
 * (b): packet size is irrelevant for this header-only NF.
 */

#include "common.hh"

using namespace tomur;
using namespace tomur::bench;

int
main()
{
    printHeader("Figure 6: FlowStats traffic sensitivity",
                "(a) piece-wise drop with flow count; "
                "(b) flat in packet size");
    BenchEnv env;
    auto defaults = traffic::TrafficProfile::defaults();

    std::printf("\n(a) throughput (Kpps) vs flow count, co-located "
                "with mem-bench (CAR 40M):\n");
    const double wss_list[] = {10.0, 30.0, 50.0};
    std::vector<std::string> header = {"flows \\ bench WSS"};
    for (double wss : wss_list)
        header.push_back(strf("%.0f MB", wss));
    AsciiTable a(header);
    for (double flows :
         {1e3, 5e3, 10e3, 20e3, 40e3, 80e3, 160e3, 320e3, 500e3}) {
        std::vector<std::string> row = {strf("%.0fK", flows / 1e3)};
        auto p = defaults.withAttribute(
            traffic::Attribute::FlowCount, flows);
        for (double wss : wss_list) {
            nfs::MemBenchConfig cfg;
            cfg.wssBytes = wss * 1024 * 1024;
            cfg.targetAccessRate = 40e6;
            auto mb = nfs::makeMemBench(cfg);
            auto wb = env.trainer->workloadOf(
                *mb, traffic::TrafficProfile{16, 1500, 0.0});
            auto ms = env.bed.run({env.workload("FlowStats", p), wb});
            row.push_back(
                strf("%.0fK", ms[0].truthThroughput / 1e3));
        }
        a.addRow(std::move(row));
    }
    a.print(stdout);

    std::printf("\n(b) solo throughput (Kpps) vs packet size "
                "(16K flows):\n");
    AsciiTable b({"packet size (B)", "throughput (Kpps)"});
    for (double size : {64.0, 256.0, 512.0, 1024.0, 1500.0}) {
        auto p = defaults.withAttribute(
            traffic::Attribute::PacketSize, size);
        b.addRow({fmtDouble(size, 0),
                  strf("%.0fK", env.solo("FlowStats", p) / 1e3)});
    }
    b.print(stdout);
    return 0;
}
