/**
 * @file
 * Extension experiment: configuration-aware prediction (§8 future
 * work). The IPTunnel MTU is treated as a configuration attribute:
 * anchor models are trained at adaptively chosen MTUs and
 * interpolated for unseen configurations. A config-blind model
 * (trained at the default MTU only) mispredicts reconfigured
 * deployments badly.
 */

#include "common.hh"

#include "tomur/config_aware.hh"

using namespace tomur;
using namespace tomur::bench;

int
main()
{
    printHeader("Extension: configuration-aware prediction "
                "(IPTunnel MTU)",
                "config-aware anchors + interpolation stay accurate "
                "across MTUs; a default-config model does not");
    BenchEnv env;
    auto defaults = traffic::TrafficProfile::defaults();

    // Config-blind baseline: one model at the default MTU (1280).
    core::TrainOptions topts;
    topts.adaptive.quota = 80;
    auto blind =
        env.trainer->train(env.nf("IPTunnel"), defaults, topts);

    // Config-aware family over MTU in [400, 1400].
    core::ConfigAttribute attr{"tunnel_mtu", 400.0, 1400.0};
    core::ConfigAwareOptions copts;
    copts.maxConfigPoints = 4;
    copts.train.adaptive.quota = 80;
    auto aware = core::ConfigAwareModel::train(
        *env.trainer,
        [&](double mtu) {
            return nfs::makeIpTunnel(static_cast<std::size_t>(mtu));
        },
        attr, defaults, copts);
    std::printf("anchors trained at MTUs:");
    for (double v : aware.anchorValues())
        std::printf(" %.0f", v);
    std::printf("\n\n");

    AsciiTable table({"MTU", "measured (Kpps)", "config-aware (Kpps)",
                      "config-blind (Kpps)", "aware err (%)",
                      "blind err (%)"});
    AccuracyTracker acc;
    Rng rng = env.rng.split();
    for (double mtu : {450.0, 600.0, 750.0, 900.0, 1100.0, 1350.0}) {
        auto nf = nfs::makeIpTunnel(static_cast<std::size_t>(mtu));
        const auto &bench = env.lib->randomMemBench(rng);
        auto ms = env.bed.run(
            {env.trainer->workloadOf(*nf, defaults), bench.workload});
        double truth = ms[0].throughput;
        double solo =
            env.bed.runSolo(env.trainer->workloadOf(*nf, defaults))
                .truthThroughput;
        double p_aware =
            aware.predict(mtu, {bench.level}, defaults, solo);
        double p_blind = blind.predict({bench.level}, defaults);
        acc.add("aware", truth, p_aware);
        acc.add("blind", truth, p_blind);
        table.addRow(
            {fmtDouble(mtu, 0), fmtDouble(truth / 1e3, 1),
             fmtDouble(p_aware / 1e3, 1), fmtDouble(p_blind / 1e3, 1),
             fmtDouble(ml::absPctError(truth, p_aware), 1),
             fmtDouble(ml::absPctError(truth, p_blind), 1)});
    }
    table.print(stdout);
    std::printf("MAPE: config-aware %.1f%%  config-blind %.1f%%\n",
                acc.mape("aware"), acc.mape("blind"));
    return 0;
}
