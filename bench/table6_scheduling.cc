/**
 * @file
 * Table 6: contention-aware scheduling.
 * Paper: over random arrival sequences (SLA = 5-20% allowed drop),
 * Monopolization wastes ~196% resources with 0 violations; Greedy
 * wastes ~19% with ~16.5% violations; SLOMO packs too tightly
 * (negative wastage, ~24% violations); Tomur is near-optimal
 * (~0.5% wastage, ~1.9% violations).
 *
 * Scale substitution: the paper runs 100 sequences of 500 arrivals
 * against an exhaustive-search optimum; we run 8 sequences of 48
 * arrivals against a true-measurement-guided oracle (documented in
 * DESIGN.md).
 */

#include "common.hh"

using namespace tomur;
using namespace tomur::bench;
using namespace tomur::usecases;

int
main()
{
    printHeader("Table 6: contention-aware scheduling",
                "Tomur near the oracle with few violations; Greedy "
                "violates SLAs; SLOMO overpacks; Monopolization "
                "wastes NICs");
    BenchEnv env;
    std::vector<std::string> mix = {"FlowStats", "IPRouter",
                                    "FlowClassifier", "NAT",
                                    "NIDS", "FlowMonitor"};
    PlacementContext ctx(*env.lib, mix,
                         traffic::TrafficProfile::defaults(), 80);
    std::printf("  models trained\n");
    std::fflush(stdout);

    constexpr int kSequences = 8;
    constexpr int kArrivals = 48;
    std::map<Strategy, RunningStats> wastage, violations;
    Rng rng = env.rng.split();

    for (int s = 0; s < kSequences; ++s) {
        std::vector<Arrival> arrivals;
        for (int i = 0; i < kArrivals; ++i) {
            Arrival a;
            a.nfName = mix[rng.uniformInt(mix.size())];
            a.profile = traffic::TrafficProfile::defaults();
            a.slaMaxDrop = rng.uniform(0.05, 0.20);
            arrivals.push_back(std::move(a));
        }
        int oracle = ctx.oracleNics(arrivals);
        for (auto strat :
             {Strategy::Monopolization, Strategy::Greedy,
              Strategy::Slomo, Strategy::Tomur}) {
            auto out = ctx.place(arrivals, strat);
            wastage[strat].add(
                100.0 * (out.nicsUsed - oracle) / oracle);
            violations[strat].add(out.violationRate());
        }
    }

    AsciiTable table({"Approach", "Resource wastage (%)",
                      "SLA violations (%)"});
    for (auto strat : {Strategy::Monopolization, Strategy::Greedy,
                       Strategy::Slomo, Strategy::Tomur}) {
        table.addRow({strategyName(strat),
                      fmtDouble(wastage[strat].mean(), 1),
                      fmtDouble(violations[strat].mean(), 1)});
    }
    table.print(stdout);
    return 0;
}
