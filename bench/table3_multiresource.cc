/**
 * @file
 * Table 3 + Figure 7(a): accuracy under multi-resource contention
 * at the fixed default traffic profile.
 * Paper: Tomur 4.3% / 5.1% MAPE on NIDS / FlowMonitor vs SLOMO's
 * 21.4% / 49.3%. Fig. 7(a): SLOMO is fine while regex contention is
 * low (contention degenerates to memory-only) but its error jumps
 * to ~24% median when regex contention is high; Tomur stays < 6%.
 */

#include "common.hh"

using namespace tomur;
using namespace tomur::bench;

int
main()
{
    printHeader("Table 3 / Fig 7(a): multi-resource contention, "
                "fixed traffic",
                "Tomur ~4-5% MAPE vs SLOMO ~21-49%; SLOMO fails "
                "when regex contention is high");
    BenchEnv env;
    slomo::SlomoTrainer strainer(*env.lib);
    auto defaults = traffic::TrafficProfile::defaults();

    AsciiTable table({"NF", "SLOMO MAPE", "SLOMO ±5%", "SLOMO ±10%",
                      "Tomur MAPE", "Tomur ±5%", "Tomur ±10%"});
    AccuracyTracker fm_low_t, fm_low_s, fm_high_t, fm_high_s;

    for (const char *name : {"NIDS", "FlowMonitor"}) {
        core::TrainOptions topts;
        topts.adaptive.quota = 120;
        auto tomur = env.trainer->train(env.nf(name), defaults,
                                        topts);
        auto slomo = strainer.train(env.nf(name), defaults);
        double solo = env.solo(name, defaults);

        AccuracyTracker acc;
        Rng rng = env.rng.split();
        for (int i = 0; i < 48; ++i) {
            const auto &mem = env.lib->randomMemBench(rng);
            double knob = rng.uniform(100.0, 1600.0);
            double rate =
                rng.chance(0.15) ? 0.0 : rng.uniform(0.3e5, 5e5);
            const auto &rx =
                env.lib->accelBench(hw::AccelKind::Regex, rate, knob);
            auto ms = env.bed.run({env.workload(name, defaults),
                                   mem.workload, rx.workload});
            double truth = ms[0].throughput;
            double pt = tomur.predict({mem.level, rx.level}, defaults,
                                      solo);
            double ps = slomo.predict({mem.level, rx.level},
                                      defaults);
            acc.add("tomur", truth, pt);
            acc.add("slomo", truth, ps);
            if (std::string(name) == "FlowMonitor") {
                // Fig 7(a): split by regex contention level --
                // low when the bench is open-loop at a modest match
                // rate, high otherwise (closed loop or heavy load).
                bool low = rate > 0.0 && rate * knob < 1.2e8;
                if (low) {
                    fm_low_t.add("e", truth, pt);
                    fm_low_s.add("e", truth, ps);
                } else {
                    fm_high_t.add("e", truth, pt);
                    fm_high_s.add("e", truth, ps);
                }
            }
        }
        table.addRow({name, fmtDouble(acc.mape("slomo"), 1),
                      fmtDouble(acc.accWithin("slomo", 5), 1),
                      fmtDouble(acc.accWithin("slomo", 10), 1),
                      fmtDouble(acc.mape("tomur"), 1),
                      fmtDouble(acc.accWithin("tomur", 5), 1),
                      fmtDouble(acc.accWithin("tomur", 10), 1)});
    }
    table.print(stdout);

    std::printf("\nFig 7(a): FlowMonitor error by regex contention "
                "range:\n");
    AsciiTable fig({"range", "approach", "error distribution (%)"});
    fig.addRow({"low (MTBR<600)", "SLOMO",
                boxRow(fm_low_s.errors("e"))});
    fig.addRow({"low (MTBR<600)", "Tomur",
                boxRow(fm_low_t.errors("e"))});
    fig.addRow({"high (MTBR>600)", "SLOMO",
                boxRow(fm_high_s.errors("e"))});
    fig.addRow({"high (MTBR>600)", "Tomur",
                boxRow(fm_high_t.errors("e"))});
    fig.print(stdout);
    return 0;
}
