/**
 * @file
 * Closed-loop load generator for the serving daemon — `bench serve`.
 *
 * Drives the deterministic Server core directly through in-memory
 * transports: N clients, each with at most one request outstanding,
 * sending seeded-random /predict bodies (plus periodic /healthz
 * probes). A client refused with 429/503 backs off exponentially
 * with seeded jitter and retries — the classic closed-loop response
 * to load shedding — so the run exercises the admission machinery,
 * not just the happy path.
 *
 * Output: QPS and p50/p99 request latency (client-observed, send to
 * fully parsed response) plus shed/throttle counts, written to
 * BENCH_serve.json. Commit-to-commit diffs of that file are the
 * serving-path performance trail, gated by tools/bench_report.sh.
 *
 * Determinism: all client behaviour (bodies, probe cadence, backoff
 * jitter) derives from deriveSeed(seed, client); only the measured
 * wall times vary across machines.
 */

#include <algorithm>
#include <chrono>
#include <cstring>

#include "common.hh"
#include "serve/registry.hh"
#include "serve/server.hh"
#include "serve/service.hh"

using namespace tomur;
using namespace tomur::bench;

namespace {

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Minimal client-side HTTP response scanner: returns the response
 *  status and consumes the framed bytes, or 0 when incomplete. */
int
takeResponse(std::string &rx)
{
    std::size_t hdr_end = rx.find("\r\n\r\n");
    if (hdr_end == std::string::npos)
        return 0;
    std::size_t body_len = 0;
    std::size_t cl = rx.find("Content-Length:");
    if (cl != std::string::npos && cl < hdr_end)
        body_len = std::strtoul(rx.c_str() + cl + 15, nullptr, 10);
    std::size_t total = hdr_end + 4 + body_len;
    if (rx.size() < total)
        return 0;
    int status = 0;
    std::size_t sp = rx.find(' ');
    if (sp != std::string::npos && sp < hdr_end)
        status = std::atoi(rx.c_str() + sp + 1);
    rx.erase(0, total);
    return status;
}

struct LoadClient
{
    std::shared_ptr<serve::MemoryTransport> pipe;
    Rng rng{1};
    std::string id;
    bool waiting = false;
    std::size_t backoffIters = 0;
    int refusalStreak = 0;
    std::string rx;
    std::uint64_t sentNs = 0;
    std::size_t completed = 0;
    std::size_t refused = 0;
    std::size_t errors = 0;
};

std::string
predictRequest(Rng &rng)
{
    double flows = rng.uniform(1000.0, 64000.0);
    double size = rng.uniform(64.0, 1500.0);
    double mtbr = rng.uniform(10.0, 2000.0);
    std::string body =
        strf("{\"flows\":%.0f,\"size\":%.0f,\"mtbr\":%.0f}", flows,
             size, mtbr);
    return strf("POST /predict HTTP/1.1\r\n"
                "Content-Length: %zu\r\n\r\n%s",
                body.size(), body.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t clients = 32;
    std::size_t perClient = 64;
    std::string jsonOut;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json=", 7) == 0)
            jsonOut = argv[i] + 7;
        else if (std::strncmp(argv[i], "--clients=", 10) == 0)
            clients = std::strtoul(argv[i] + 10, nullptr, 10);
        else if (std::strncmp(argv[i], "--requests=", 11) == 0)
            perClient = std::strtoul(argv[i] + 11, nullptr, 10);
    }

    printHeader("serve_load",
                "closed-loop serving throughput/latency under "
                "admission control (not a paper figure)");

    BenchEnv env;
    auto &nf = env.nf("FlowMonitor");
    core::TrainOptions topts;
    topts.adaptive.quota = 60;
    auto model = env.trainer->train(
        nf, traffic::TrafficProfile::defaults(), topts);

    // Reference contention mirroring the CLI serve path: heaviest
    // large-WSS mem-bench plus a moderate regex bench.
    std::vector<core::ContentionLevel> levels;
    const core::BenchLibrary::MemBenchEntry *mem =
        &env.lib->memBenches().front();
    for (const auto &e : env.lib->memBenches()) {
        if (e.config.wssBytes >= 12.0 * 1024 * 1024 &&
            e.level.counters.cacheAccessRate() >
                mem->level.counters.cacheAccessRate())
            mem = &e;
    }
    levels.push_back(mem->level);
    levels.push_back(
        env.lib->accelBench(hw::AccelKind::Regex, 150e3, 800.0)
            .level);

    serve::ModelRegistry registry;
    registry.install(std::move(model), "trained");
    serve::ModelService service(registry, levels, "FlowMonitor");

    serve::ServeOptions sopts;
    // Deliberately undersized for the offered load: the queue is
    // smaller than the client pool and the refill rate is below the
    // per-client service rate, so the run sheds (503) and throttles
    // (429) and the closed loop has to absorb it via backoff.
    sopts.maxConnections = clients + 8;
    sopts.maxQueueDepth = clients > 16 ? 16 : clients / 2 + 1;
    sopts.maxRequestsPerStep = 8;
    sopts.bucketCapacity = 8.0;
    serve::Server server(sopts, service);

    const std::uint64_t seed = 2024;
    std::vector<LoadClient> pool(clients);
    for (std::size_t i = 0; i < clients; ++i) {
        auto &c = pool[i];
        c.pipe = std::make_shared<serve::MemoryTransport>();
        c.rng = Rng(deriveSeed(seed, i));
        c.id = strf("client-%zu", i);
        server.addConnection(
            std::make_unique<serve::SharedTransport>(c.pipe), c.id);
    }

    std::vector<double> latencyMs;
    latencyMs.reserve(clients * perClient);
    std::size_t iterations = 0;
    const std::size_t maxIterations = clients * perClient * 64;
    std::uint64_t startNs = nowNs();

    for (;; ++iterations) {
        bool allDone = true;
        for (auto &c : pool) {
            if (c.completed >= perClient)
                continue;
            allDone = false;
            if (c.pipe->closed()) {
                // The server reaped this connection (shed at the cap
                // or a close-marked refusal); reconnect and retry.
                c.pipe = std::make_shared<serve::MemoryTransport>();
                c.rx.clear();
                c.waiting = false;
                server.addConnection(
                    std::make_unique<serve::SharedTransport>(c.pipe),
                    c.id);
            }
            if (c.backoffIters > 0) {
                --c.backoffIters;
                continue;
            }
            if (!c.waiting) {
                // One request outstanding per client (closed loop);
                // every 16th request is a health probe.
                std::string req =
                    c.completed % 16 == 15
                        ? "GET /healthz HTTP/1.1\r\n\r\n"
                        : predictRequest(c.rng);
                c.pipe->clientWrite(req);
                c.sentNs = nowNs();
                c.waiting = true;
            }
            c.rx += c.pipe->clientRead();
            if (int status = takeResponse(c.rx); status != 0) {
                c.waiting = false;
                if (status == 200) {
                    latencyMs.push_back(
                        static_cast<double>(nowNs() - c.sentNs) /
                        1e6);
                    ++c.completed;
                    c.refusalStreak = 0;
                } else if (status == 429 || status == 503) {
                    // Exponential backoff with seeded jitter: the
                    // well-behaved response to shedding.
                    ++c.refused;
                    c.refusalStreak = std::min(c.refusalStreak + 1,
                                               8);
                    double base = static_cast<double>(
                        1u << c.refusalStreak);
                    c.backoffIters = static_cast<std::size_t>(
                        base * c.rng.uniform(0.5, 1.5));
                } else {
                    ++c.errors;
                    ++c.completed; // do not retry real errors forever
                }
            }
        }
        if (allDone || iterations >= maxIterations)
            break;
        server.step();
        server.tickTokens(0.1); // refill below the service rate
    }
    double wallSec =
        static_cast<double>(nowNs() - startNs) / 1e9;

    std::size_t completed = 0, refused = 0, errors = 0;
    for (const auto &c : pool) {
        completed += c.completed;
        refused += c.refused;
        errors += c.errors;
    }
    std::sort(latencyMs.begin(), latencyMs.end());
    auto pct = [&](double p) {
        if (latencyMs.empty())
            return 0.0;
        std::size_t idx = static_cast<std::size_t>(
            p * static_cast<double>(latencyMs.size() - 1));
        return latencyMs[idx];
    };
    double qps = wallSec > 0.0
                     ? static_cast<double>(completed) / wallSec
                     : 0.0;

    const auto &s = server.stats();
    std::printf("clients %zu x %zu requests: %.0f qps, "
                "p50 %.3f ms, p99 %.3f ms\n",
                clients, perClient, qps, pct(0.50), pct(0.99));
    std::printf("  refusals seen %zu (server: %zu shed, %zu "
                "throttled), errors %zu, %zu iterations\n",
                refused, s.shed, s.throttled, errors, iterations);
    if (errors > 0 || completed == 0) {
        std::fprintf(stderr,
                     "error: %zu failed requests, %zu completed\n",
                     errors, completed);
        return 1;
    }

    if (!jsonOut.empty()) {
        std::FILE *f = std::fopen(jsonOut.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         jsonOut.c_str());
            return 1;
        }
        std::fprintf(
            f,
            "{\n"
            "  \"bench\": \"serve_load\",\n"
            "  \"clients\": %zu,\n"
            "  \"requests_per_client\": %zu,\n"
            "  \"completed\": %zu,\n"
            "  \"qps\": %.1f,\n"
            "  \"p50_ms\": %.4f,\n"
            "  \"p99_ms\": %.4f,\n"
            "  \"refused\": %zu,\n"
            "  \"shed\": %zu,\n"
            "  \"throttled\": %zu\n"
            "}\n",
            clients, perClient, completed, qps, pct(0.50),
            pct(0.99), refused, s.shed, s.throttled);
        std::fclose(f);
        std::printf("wrote %s\n", jsonOut.c_str());
    }
    return 0;
}
