/**
 * @file
 * Closed-loop load generator for the serving daemon — `bench serve`.
 *
 * Drives the deterministic Server core directly through in-memory
 * transports: N clients, each with at most one request outstanding,
 * sending seeded-random /predict bodies (plus periodic /healthz
 * probes). A client refused with 429/503 backs off exponentially
 * with seeded jitter and retries — the classic closed-loop response
 * to load shedding — so the run exercises the admission machinery,
 * not just the happy path.
 *
 * Measurement protocol (the numbers must survive a skeptical read):
 *
 *  - Warm-up: each client's first requests are completed but their
 *    latencies are excluded from every quantile — cold caches and
 *    the first admission-queue fill are not steady state.
 *  - Two phases: phase A is the plain load; in phase B (second half
 *    of the run) a sidecar scraper polls /debug/vars and /debug/slo
 *    the way a monitoring agent would. The headline p50/p99 come
 *    from phase A only; the A-vs-B p50 delta is the measured /debug
 *    overhead, recorded as an extra and gated by bench_report.sh.
 *  - Refusals are counted as refusal *responses* (one logical
 *    request can be refused many times before completing), broken
 *    down by client-observed status; completions that needed at
 *    least one retry are reported separately from first-attempt
 *    completions so the two latency populations don't blur.
 *
 * Output: QPS, phase-A p50/p99, refusal breakdown, and an extras
 * object (first-attempt vs retried quantiles, debug-poll overhead,
 * SLO budget state), written to BENCH_serve.json. Commit-to-commit
 * diffs of that file are the serving-path performance trail, gated
 * by tools/bench_report.sh.
 *
 * Determinism: all client behaviour (bodies, probe cadence, backoff
 * jitter, scraper cadence) derives from deriveSeed(seed, client);
 * only the measured wall times vary across machines.
 */

#include <algorithm>
#include <chrono>
#include <cstring>

#include "common.hh"
#include "serve/observe.hh"
#include "serve/registry.hh"
#include "serve/server.hh"
#include "serve/service.hh"

using namespace tomur;
using namespace tomur::bench;

namespace {

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Minimal client-side HTTP response scanner: returns the response
 *  status and consumes the framed bytes, or 0 when incomplete. */
int
takeResponse(std::string &rx)
{
    std::size_t hdr_end = rx.find("\r\n\r\n");
    if (hdr_end == std::string::npos)
        return 0;
    std::size_t body_len = 0;
    std::size_t cl = rx.find("Content-Length:");
    if (cl != std::string::npos && cl < hdr_end)
        body_len = std::strtoul(rx.c_str() + cl + 15, nullptr, 10);
    std::size_t total = hdr_end + 4 + body_len;
    if (rx.size() < total)
        return 0;
    int status = 0;
    std::size_t sp = rx.find(' ');
    if (sp != std::string::npos && sp < hdr_end)
        status = std::atoi(rx.c_str() + sp + 1);
    rx.erase(0, total);
    return status;
}

struct LoadClient
{
    std::shared_ptr<serve::MemoryTransport> pipe;
    Rng rng{1};
    std::string id;
    bool waiting = false;
    bool hadRefusal = false; ///< current logical request was refused
    std::size_t backoffIters = 0;
    int refusalStreak = 0;
    std::string rx;
    std::uint64_t sentNs = 0;
    std::size_t completed = 0;
    std::size_t refused429 = 0;
    std::size_t refused503 = 0;
    std::size_t errors = 0;
};

std::string
predictRequest(Rng &rng)
{
    double flows = rng.uniform(1000.0, 64000.0);
    double size = rng.uniform(64.0, 1500.0);
    double mtbr = rng.uniform(10.0, 2000.0);
    std::string body =
        strf("{\"flows\":%.0f,\"size\":%.0f,\"mtbr\":%.0f}", flows,
             size, mtbr);
    return strf("POST /predict HTTP/1.1\r\n"
                "Content-Length: %zu\r\n\r\n%s",
                body.size(), body.c_str());
}

double
pct(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    std::size_t idx = static_cast<std::size_t>(
        p * static_cast<double>(sorted.size() - 1));
    return sorted[idx];
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t clients = 32;
    std::size_t perClient = 64;
    std::string jsonOut;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json=", 7) == 0)
            jsonOut = argv[i] + 7;
        else if (std::strncmp(argv[i], "--clients=", 10) == 0)
            clients = std::strtoul(argv[i] + 10, nullptr, 10);
        else if (std::strncmp(argv[i], "--requests=", 11) == 0)
            perClient = std::strtoul(argv[i] + 11, nullptr, 10);
    }

    printHeader("serve_load",
                "closed-loop serving throughput/latency under "
                "admission control (not a paper figure)");

    BenchEnv env;
    auto &nf = env.nf("FlowMonitor");
    core::TrainOptions topts;
    topts.adaptive.quota = 60;
    auto model = env.trainer->train(
        nf, traffic::TrafficProfile::defaults(), topts);

    // Reference contention mirroring the CLI serve path: heaviest
    // large-WSS mem-bench plus a moderate regex bench.
    std::vector<core::ContentionLevel> levels;
    const core::BenchLibrary::MemBenchEntry *mem =
        &env.lib->memBenches().front();
    for (const auto &e : env.lib->memBenches()) {
        if (e.config.wssBytes >= 12.0 * 1024 * 1024 &&
            e.level.counters.cacheAccessRate() >
                mem->level.counters.cacheAccessRate())
            mem = &e;
    }
    levels.push_back(mem->level);
    levels.push_back(
        env.lib->accelBench(hw::AccelKind::Regex, 150e3, 800.0)
            .level);

    serve::ModelRegistry registry;
    registry.install(std::move(model), "trained");
    serve::ModelService service(registry, levels, "FlowMonitor");

    serve::ServeOptions sopts;
    // Deliberately undersized for the offered load: the queue is
    // smaller than the client pool and the refill rate is below the
    // per-client service rate, so the run sheds (503) and throttles
    // (429) and the closed loop has to absorb it via backoff.
    sopts.maxConnections = clients + 8;
    sopts.maxQueueDepth = clients > 16 ? 16 : clients / 2 + 1;
    sopts.maxRequestsPerStep = 8;
    sopts.bucketCapacity = 8.0;
    serve::Server server(sopts, service);

    // The bench runs the deployed observability configuration: the
    // observatory (access log + SLO tracker + phase profiler) is
    // attached exactly the way `tomur serve` attaches it, so its
    // cost is inside every number this bench publishes.
    SamplingProfiler profiler;
    serve::ServerObservatory observatory;
    observatory.profiler = &profiler;
    service.attachObservatory(&observatory);
    server.setObservatory(&observatory);

    const std::uint64_t seed = 2024;
    std::vector<LoadClient> pool(clients);
    for (std::size_t i = 0; i < clients; ++i) {
        auto &c = pool[i];
        c.pipe = std::make_shared<serve::MemoryTransport>();
        c.rng = Rng(deriveSeed(seed, i));
        c.id = strf("client-%zu", i);
        server.addConnection(
            std::make_unique<serve::SharedTransport>(c.pipe), c.id);
    }

    // Sidecar scraper: idle in phase A, polls the /debug endpoints
    // in phase B like an external monitoring agent.
    auto scraperPipe = std::make_shared<serve::MemoryTransport>();
    server.addConnection(
        std::make_unique<serve::SharedTransport>(scraperPipe),
        "debug-scraper");
    bool scraperWaiting = false;
    std::string scraperRx;
    std::uint64_t scraperSentNs = 0;
    std::size_t debugPolls = 0, debugAnswered = 0;

    // First warmup completions per client stay out of the quantiles.
    const std::size_t warmup =
        std::min<std::size_t>(perClient / 8, 8);
    const std::size_t totalTarget = clients * perClient;

    std::vector<double> latA, latB;       // steady state, by phase
    std::vector<double> latFirst, latRetried, latDebug;
    latA.reserve(totalTarget);
    std::size_t totalCompleted = 0;
    std::size_t warmupExcluded = 0, retriedRequests = 0;
    std::size_t iterations = 0;
    const std::size_t maxIterations = clients * perClient * 64;
    std::uint64_t startNs = nowNs();

    for (;; ++iterations) {
        // Phase B begins once half the logical requests are done.
        bool phaseB = totalCompleted * 2 >= totalTarget;
        bool allDone = true;
        for (auto &c : pool) {
            if (c.completed >= perClient)
                continue;
            allDone = false;
            if (c.pipe->closed()) {
                // The server reaped this connection (shed at the cap
                // or a close-marked refusal); reconnect and retry.
                c.pipe = std::make_shared<serve::MemoryTransport>();
                c.rx.clear();
                c.waiting = false;
                server.addConnection(
                    std::make_unique<serve::SharedTransport>(c.pipe),
                    c.id);
            }
            if (c.backoffIters > 0) {
                --c.backoffIters;
                continue;
            }
            if (!c.waiting) {
                // One request outstanding per client (closed loop);
                // every 16th request is a health probe.
                std::string req =
                    c.completed % 16 == 15
                        ? "GET /healthz HTTP/1.1\r\n\r\n"
                        : predictRequest(c.rng);
                c.pipe->clientWrite(req);
                c.sentNs = nowNs();
                c.waiting = true;
            }
            c.rx += c.pipe->clientRead();
            if (int status = takeResponse(c.rx); status != 0) {
                c.waiting = false;
                if (status == 200) {
                    double ms =
                        static_cast<double>(nowNs() - c.sentNs) /
                        1e6;
                    if (c.completed < warmup) {
                        ++warmupExcluded;
                    } else {
                        (phaseB ? latB : latA).push_back(ms);
                        (c.hadRefusal ? latRetried : latFirst)
                            .push_back(ms);
                    }
                    if (c.hadRefusal)
                        ++retriedRequests;
                    ++c.completed;
                    ++totalCompleted;
                    c.refusalStreak = 0;
                    c.hadRefusal = false;
                } else if (status == 429 || status == 503) {
                    // Exponential backoff with seeded jitter: the
                    // well-behaved response to shedding.
                    (status == 429 ? c.refused429 : c.refused503) +=
                        1;
                    c.hadRefusal = true;
                    c.refusalStreak = std::min(c.refusalStreak + 1,
                                               8);
                    double base = static_cast<double>(
                        1u << c.refusalStreak);
                    c.backoffIters = static_cast<std::size_t>(
                        base * c.rng.uniform(0.5, 1.5));
                } else {
                    ++c.errors;
                    ++c.completed; // do not retry real errors forever
                    ++totalCompleted;
                    c.hadRefusal = false;
                }
            }
        }
        if (phaseB && !scraperPipe->closed()) {
            if (!scraperWaiting && iterations % 32 == 0) {
                scraperPipe->clientWrite(
                    debugPolls % 2 == 0
                        ? "GET /debug/vars HTTP/1.1\r\n\r\n"
                        : "GET /debug/slo HTTP/1.1\r\n\r\n");
                scraperSentNs = nowNs();
                scraperWaiting = true;
                ++debugPolls;
            }
            if (scraperWaiting) {
                scraperRx += scraperPipe->clientRead();
                if (int status = takeResponse(scraperRx);
                    status != 0) {
                    scraperWaiting = false;
                    if (status == 200) {
                        ++debugAnswered;
                        latDebug.push_back(
                            static_cast<double>(nowNs() -
                                                scraperSentNs) /
                            1e6);
                    }
                }
            }
        }
        if (allDone || iterations >= maxIterations)
            break;
        server.step();
        server.tickTokens(0.1); // refill below the service rate
    }
    double wallSec =
        static_cast<double>(nowNs() - startNs) / 1e9;

    std::size_t completed = 0, refused429 = 0, refused503 = 0,
                errors = 0;
    for (const auto &c : pool) {
        completed += c.completed;
        refused429 += c.refused429;
        refused503 += c.refused503;
        errors += c.errors;
    }
    std::size_t refused = refused429 + refused503;
    std::sort(latA.begin(), latA.end());
    std::sort(latB.begin(), latB.end());
    std::sort(latFirst.begin(), latFirst.end());
    std::sort(latRetried.begin(), latRetried.end());
    std::sort(latDebug.begin(), latDebug.end());
    double qps = wallSec > 0.0
                     ? static_cast<double>(completed) / wallSec
                     : 0.0;
    // /debug overhead: phase-B p50 relative to phase-A p50, floored
    // at zero (B faster than A is noise, not negative overhead).
    double debugOverhead = 0.0;
    bool haveOverhead = !latA.empty() && !latB.empty() &&
                        debugPolls > 0;
    if (haveOverhead && pct(latA, 0.50) > 0.0) {
        debugOverhead = std::max(
            0.0, (pct(latB, 0.50) - pct(latA, 0.50)) /
                     pct(latA, 0.50));
    }

    const auto &s = server.stats();
    std::printf("clients %zu x %zu requests: %.0f qps, "
                "p50 %.3f ms, p99 %.3f ms (phase A, %zu warm-up "
                "samples excluded)\n",
                clients, perClient, qps, pct(latA, 0.50),
                pct(latA, 0.99), warmupExcluded);
    std::printf("  refusal responses %zu (client saw %zu x 429, "
                "%zu x 503; server: %zu shed, %zu throttled); "
                "%zu/%zu requests needed a retry\n",
                refused, refused429, refused503, s.shed,
                s.throttled, retriedRequests, completed);
    std::printf("  first-attempt p50 %.3f ms (%zu), retried p50 "
                "%.3f ms (%zu)\n",
                pct(latFirst, 0.50), latFirst.size(),
                pct(latRetried, 0.50), latRetried.size());
    std::printf("  debug polls %zu (%zu answered), debug p50 "
                "%.3f ms, p50 overhead %+.1f%%\n",
                debugPolls, debugAnswered, pct(latDebug, 0.50),
                debugOverhead * 100.0);
    for (const auto &st : observatory.slo.states()) {
        std::printf("  slo %s: %llu/%llu bad, budget %.3f, "
                    "%llu burns\n",
                    st.name.c_str(),
                    (unsigned long long)st.bad,
                    (unsigned long long)st.total,
                    st.budgetRemaining,
                    (unsigned long long)st.burnEvents);
    }
    std::printf("  %zu iterations, %zu errors\n", iterations,
                errors);
    if (errors > 0 || completed == 0) {
        std::fprintf(stderr,
                     "error: %zu failed requests, %zu completed\n",
                     errors, completed);
        return 1;
    }

    if (!jsonOut.empty()) {
        std::FILE *f = std::fopen(jsonOut.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         jsonOut.c_str());
            return 1;
        }
        auto slos = observatory.slo.states();
        double availBudget = 1.0, predictBudget = 1.0;
        double burnEvents = 0.0;
        for (const auto &st : slos) {
            if (st.name == "availability")
                availBudget = st.budgetRemaining;
            else if (st.name == "predict_latency")
                predictBudget = st.budgetRemaining;
            burnEvents += static_cast<double>(st.burnEvents);
        }
        std::fprintf(
            f,
            "{\n"
            "  \"bench\": \"serve_load\",\n"
            "  \"clients\": %zu,\n"
            "  \"requests_per_client\": %zu,\n"
            "  \"completed\": %zu,\n"
            "  \"qps\": %.1f,\n"
            "  \"p50_ms\": %.4f,\n"
            "  \"p99_ms\": %.4f,\n"
            "  \"refused\": %zu,\n"
            "  \"refused_429\": %zu,\n"
            "  \"refused_503\": %zu,\n"
            "  \"retried_requests\": %zu,\n"
            "  \"warmup_excluded\": %zu,\n"
            "  \"shed\": %zu,\n"
            "  \"throttled\": %zu,\n"
            "  \"extras\": {\n"
            "    \"first_attempt_p50_ms\": %.4f,\n"
            "    \"first_attempt_p99_ms\": %.4f,\n"
            "    \"retried_p50_ms\": %.4f,\n"
            "    \"debug_polls\": %zu,\n"
            "    \"debug_p50_ms\": %.4f,\n"
            "    \"serve_debug_overhead_frac\": %.4f,\n"
            "    \"slo_availability_budget\": %.4f,\n"
            "    \"slo_predict_latency_budget\": %.4f,\n"
            "    \"slo_burn_events\": %.0f\n"
            "  }\n"
            "}\n",
            clients, perClient, completed, qps, pct(latA, 0.50),
            pct(latA, 0.99), refused, refused429, refused503,
            retriedRequests, warmupExcluded, s.shed, s.throttled,
            pct(latFirst, 0.50), pct(latFirst, 0.99),
            pct(latRetried, 0.50), debugPolls,
            pct(latDebug, 0.50), debugOverhead, availBudget,
            predictBudget, burnEvents);
        std::fclose(f);
        std::printf("wrote %s\n", jsonOut.c_str());
    }
    return 0;
}
