/**
 * @file
 * Figure 7(b): error distribution under memory-only contention when
 * the flow count deviates from training by a small (<= 20%) or a
 * large (> 20%) margin.
 * Paper: SLOMO's sensitivity extrapolation holds in the low range
 * (comparable to Tomur) but its median error grows to ~13% in the
 * high range while Tomur stays ~5%.
 * (Panel (a), the regex-contention split, is produced by
 * table3_multiresource.)
 */

#include "common.hh"

using namespace tomur;
using namespace tomur::bench;

int
main()
{
    printHeader("Figure 7(b): flow-count deviation ranges",
                "SLOMO fine within ~20% deviation, degrades beyond; "
                "Tomur stays low in both ranges");
    BenchEnv env;
    slomo::SlomoTrainer strainer(*env.lib);
    auto defaults = traffic::TrafficProfile::defaults();

    core::TrainOptions topts;
    topts.adaptive.quota = 160;
    auto tomur =
        env.trainer->train(env.nf("FlowStats"), defaults, topts);
    auto slomo = strainer.train(env.nf("FlowStats"), defaults);

    AccuracyTracker low_t, low_s, high_t, high_s;
    Rng rng = env.rng.split();
    // Plan-first + batch: draw all deviation samples up front, run
    // the deployments through the pool-backed batch runner, then
    // score against the trained models. Results are bit-identical at
    // any TOMUR_THREADS setting (noise is applied in submission
    // order inside runBatch).
    struct Sample
    {
        bool low;
        traffic::TrafficProfile p;
        const core::BenchLibrary::MemBenchEntry *bench;
    };
    std::vector<Sample> samples;
    std::vector<std::vector<framework::WorkloadProfile>> batch;
    for (int i = 0; i < 60; ++i) {
        bool low_range = i % 2 == 0;
        double f0 = static_cast<double>(defaults.flowCount);
        double flows = low_range
            ? f0 * rng.uniform(0.8, 1.2)
            : rng.chance(0.5) ? rng.uniform(f0 * 2, 500e3)
                              : rng.uniform(1e3, f0 * 0.5);
        auto p = defaults.withAttribute(
            traffic::Attribute::FlowCount, flows);
        const auto &bench = env.lib->randomMemBench(rng);
        samples.push_back({low_range, p, &bench});
        batch.push_back(
            {env.workload("FlowStats", p), bench.workload});
    }
    auto results = env.bed.runBatch(batch);
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const Sample &s = samples[i];
        double truth = results[i][0].throughput;
        double pt = tomur.predict({s.bench->level}, s.p,
                                  env.solo("FlowStats", s.p));
        double ps = slomo.predict({s.bench->level}, s.p);
        (s.low ? low_t : high_t).add("e", truth, pt);
        (s.low ? low_s : high_s).add("e", truth, ps);
    }

    AsciiTable fig({"flow deviation", "approach",
                    "error distribution (%)"});
    fig.addRow({"low (<=20%)", "SLOMO", boxRow(low_s.errors("e"))});
    fig.addRow({"low (<=20%)", "Tomur", boxRow(low_t.errors("e"))});
    fig.addRow({"high (>20%)", "SLOMO", boxRow(high_s.errors("e"))});
    fig.addRow({"high (>20%)", "Tomur", boxRow(high_t.errors("e"))});
    fig.print(stdout);
    return 0;
}
