#include "common.hh"

#include "common/logging.hh"
#include "common/strutil.hh"

namespace tomur::bench {

BenchEnv::BenchEnv(hw::NicConfig config, std::uint64_t seed)
    : rules(regex::defaultRuleSet()),
      bed(std::move(config), sim::TestbedOptions{}), rng(seed)
{
    dev.regex = std::make_shared<framework::RegexDevice>(rules);
    dev.compression =
        std::make_shared<framework::CompressionDevice>();
    dev.crypto = std::make_shared<framework::CryptoDevice>();
    lib = std::make_unique<core::BenchLibrary>(bed, dev, rules);
    trainer = std::make_unique<core::TomurTrainer>(*lib);
}

framework::NetworkFunction &
BenchEnv::nf(const std::string &name)
{
    auto it = nfs_.find(name);
    if (it == nfs_.end()) {
        it = nfs_.emplace(name, nfs::makeByName(name, dev)).first;
    }
    return *it->second;
}

const framework::WorkloadProfile &
BenchEnv::workload(const std::string &name,
                   const traffic::TrafficProfile &p)
{
    return trainer->workloadOf(nf(name), p);
}

double
BenchEnv::solo(const std::string &name,
               const traffic::TrafficProfile &p)
{
    auto key = std::make_pair(name, p.toVector());
    auto it = soloCache_.find(key);
    if (it != soloCache_.end())
        return it->second;
    double t = bed.runSolo(workload(name, p)).truthThroughput;
    soloCache_[key] = t;
    return t;
}

traffic::TrafficProfile
BenchEnv::randomProfile()
{
    traffic::TrafficProfile p;
    for (int a = 0; a < traffic::numAttributes; ++a) {
        auto attr = static_cast<traffic::Attribute>(a);
        auto r = traffic::defaultRange(attr);
        p = p.withAttribute(attr, rng.uniform(r.min, r.max));
    }
    return p;
}

void
AccuracyTracker::add(const std::string &approach, double truth,
                     double predicted)
{
    auto &s = series_[approach];
    s.truth.push_back(truth);
    s.pred.push_back(predicted);
}

double
AccuracyTracker::mape(const std::string &approach) const
{
    auto it = series_.find(approach);
    if (it == series_.end())
        return 0.0;
    return ml::mape(it->second.truth, it->second.pred);
}

double
AccuracyTracker::accWithin(const std::string &approach,
                           double pct) const
{
    auto it = series_.find(approach);
    if (it == series_.end())
        return 0.0;
    return ml::accWithin(it->second.truth, it->second.pred, pct);
}

std::vector<double>
AccuracyTracker::errors(const std::string &approach) const
{
    auto it = series_.find(approach);
    if (it == series_.end())
        return {};
    return ml::absPctErrors(it->second.truth, it->second.pred);
}

std::size_t
AccuracyTracker::count(const std::string &approach) const
{
    auto it = series_.find(approach);
    return it == series_.end() ? 0 : it->second.truth.size();
}

void
printHeader(const char *experiment, const char *paper_claim)
{
    std::printf("==============================================================\n");
    std::printf("%s\n", experiment);
    std::printf("Paper: %s\n", paper_claim);
    std::printf("==============================================================\n");
}

std::string
boxRow(const std::vector<double> &xs, int decimals)
{
    auto b = BoxStats::from(xs);
    return strf("p5=%.*f p25=%.*f p50=%.*f p75=%.*f p95=%.*f",
                decimals, b.p5, decimals, b.p25, decimals, b.p50,
                decimals, b.p75, decimals, b.p95);
}

} // namespace tomur::bench
