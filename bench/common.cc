#include "common.hh"

#include <chrono>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace tomur::bench {

BenchEnv::BenchEnv(hw::NicConfig config, std::uint64_t seed)
    : rules(regex::defaultRuleSet()),
      bed(std::move(config), sim::TestbedOptions{}), rng(seed)
{
    dev.regex = std::make_shared<framework::RegexDevice>(rules);
    dev.compression =
        std::make_shared<framework::CompressionDevice>();
    dev.crypto = std::make_shared<framework::CryptoDevice>();
    lib = std::make_unique<core::BenchLibrary>(bed, dev, rules);
    trainer = std::make_unique<core::TomurTrainer>(*lib);
}

framework::NetworkFunction &
BenchEnv::nf(const std::string &name)
{
    auto it = nfs_.find(name);
    if (it == nfs_.end()) {
        it = nfs_.emplace(name, nfs::makeByName(name, dev)).first;
    }
    return *it->second;
}

const framework::WorkloadProfile &
BenchEnv::workload(const std::string &name,
                   const traffic::TrafficProfile &p)
{
    return trainer->workloadOf(nf(name), p);
}

double
BenchEnv::solo(const std::string &name,
               const traffic::TrafficProfile &p)
{
    auto key = std::make_pair(name, p.toVector());
    auto it = soloCache_.find(key);
    if (it != soloCache_.end())
        return it->second;
    double t = bed.runSolo(workload(name, p)).truthThroughput;
    soloCache_[key] = t;
    return t;
}

traffic::TrafficProfile
BenchEnv::randomProfile()
{
    traffic::TrafficProfile p;
    for (int a = 0; a < traffic::numAttributes; ++a) {
        auto attr = static_cast<traffic::Attribute>(a);
        auto r = traffic::defaultRange(attr);
        p = p.withAttribute(attr, rng.uniform(r.min, r.max));
    }
    return p;
}

void
AccuracyTracker::add(const std::string &approach, double truth,
                     double predicted)
{
    auto &s = series_[approach];
    s.truth.push_back(truth);
    s.pred.push_back(predicted);
}

double
AccuracyTracker::mape(const std::string &approach) const
{
    auto it = series_.find(approach);
    if (it == series_.end())
        return 0.0;
    return ml::mape(it->second.truth, it->second.pred);
}

double
AccuracyTracker::accWithin(const std::string &approach,
                           double pct) const
{
    auto it = series_.find(approach);
    if (it == series_.end())
        return 0.0;
    return ml::accWithin(it->second.truth, it->second.pred, pct);
}

std::vector<double>
AccuracyTracker::errors(const std::string &approach) const
{
    auto it = series_.find(approach);
    if (it == series_.end())
        return {};
    return ml::absPctErrors(it->second.truth, it->second.pred);
}

std::size_t
AccuracyTracker::count(const std::string &approach) const
{
    auto it = series_.find(approach);
    return it == series_.end() ? 0 : it->second.truth.size();
}

void
printHeader(const char *experiment, const char *paper_claim)
{
    std::printf("==============================================================\n");
    std::printf("%s\n", experiment);
    std::printf("Paper: %s\n", paper_claim);
    std::printf("==============================================================\n");
}

std::string
boxRow(const std::vector<double> &xs, int decimals)
{
    auto b = BoxStats::from(xs);
    return strf("p5=%.*f p25=%.*f p50=%.*f p75=%.*f p95=%.*f",
                decimals, b.p5, decimals, b.p25, decimals, b.p50,
                decimals, b.p75, decimals, b.p95);
}

BenchReport::Stage &
BenchReport::stage(const std::string &name)
{
    for (auto &s : stages_) {
        if (s.name == name)
            return s;
    }
    stages_.push_back(Stage{name, 0.0, 0.0, false, false});
    return stages_.back();
}

void
BenchReport::record(const std::string &name, bool parallel,
                    double seconds)
{
    Stage &s = stage(name);
    (parallel ? s.parallelSec : s.serialSec) = seconds;
    (parallel ? s.hasParallel : s.hasSerial) = true;
}

void
BenchReport::extra(const std::string &key, double value)
{
    for (auto &e : extras_) {
        if (e.first == key) {
            e.second = value;
            return;
        }
    }
    extras_.emplace_back(key, value);
}

double
BenchReport::measure(const std::string &name, bool parallel,
                     const std::function<void()> &fn)
{
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    double sec = std::chrono::duration<double>(t1 - t0).count();
    record(name, parallel, sec);
    return sec;
}

bool
BenchReport::writeJson(const std::string &path, int serialThreads,
                       int parallelThreads) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warnEvent("bench", "bench-json-unwritable",
                  {{"path", path}});
        return false;
    }
    auto speedup = [](double serial, double parallel) {
        return parallel > 0.0 ? serial / parallel : 0.0;
    };
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n", bench_.c_str());
    std::fprintf(f, "  \"threads_serial\": %d,\n", serialThreads);
    std::fprintf(f, "  \"threads_parallel\": %d,\n", parallelThreads);
    if (parallelThreads < 2) {
        // A one-thread pool makes the "parallel" column a second
        // serial run — record that, so downstream tooling skips
        // parallel-speedup assertions instead of failing them.
        std::fprintf(f,
                     "  \"note\": \"parallel pass ran with a "
                     "1-thread pool; speedups compare two serial "
                     "runs\",\n");
    }
    std::fprintf(f, "  \"stages\": [\n");
    double tot_s = 0.0, tot_p = 0.0;
    for (std::size_t i = 0; i < stages_.size(); ++i) {
        const Stage &s = stages_[i];
        tot_s += s.serialSec;
        tot_p += s.parallelSec;
        // Only the variants that actually ran are emitted: a stage
        // that was skipped in one pass (e.g. the scenario stage
        // under --no-scenario, or a single-variant extra stage) must
        // not publish a fake 0-second measurement for diff tooling
        // to trip over.
        std::string body = strf("\"name\": \"%s\"", s.name.c_str());
        if (s.hasSerial)
            body += strf(", \"serial_sec\": %.6f", s.serialSec);
        if (s.hasParallel)
            body += strf(", \"parallel_sec\": %.6f", s.parallelSec);
        if (s.hasSerial && s.hasParallel) {
            body += strf(", \"speedup\": %.3f",
                         speedup(s.serialSec, s.parallelSec));
        }
        std::fprintf(f, "    {%s}%s\n", body.c_str(),
                     i + 1 < stages_.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    if (!extras_.empty()) {
        std::fprintf(f, "  \"extras\": {\n");
        for (std::size_t i = 0; i < extras_.size(); ++i) {
            std::fprintf(f, "    \"%s\": %.6f%s\n",
                         extras_[i].first.c_str(),
                         extras_[i].second,
                         i + 1 < extras_.size() ? "," : "");
        }
        std::fprintf(f, "  },\n");
    }
    std::fprintf(f,
                 "  \"total\": {\"serial_sec\": %.6f, "
                 "\"parallel_sec\": %.6f, \"speedup\": %.3f}\n",
                 tot_s, tot_p, speedup(tot_s, tot_p));
    std::fprintf(f, "}\n");
    std::fclose(f);
    return true;
}

} // namespace tomur::bench
