/**
 * @file
 * Figure 8: prediction error on FlowClassifier as the profiling
 * quota of random and adaptive profiling scales (0.5x / 1x / 1.5x),
 * against the full-profiling reference.
 * Paper: at 1.5x quota adaptive reaches full-profiling accuracy
 * (~2.4% vs 2.3%) while random does not improve, because it still
 * misses the performance-critical attribute ranges.
 */

#include "common.hh"

using namespace tomur;
using namespace tomur::bench;

int
main()
{
    printHeader("Figure 8: profiling quota sweep (FlowClassifier)",
                "adaptive converges to full-profiling accuracy with "
                "1.5x quota; random stalls");
    BenchEnv env;
    auto defaults = traffic::TrafficProfile::defaults();
    const char *name = "FlowClassifier";
    constexpr std::size_t kBaseQuota = 80;

    // Full-profiling reference.
    core::TrainOptions full;
    full.sampling = core::SamplingStrategy::Full;
    full.fullGridPerAttribute = 7;
    full.contentionSamplesPerProfile = 3;
    auto full_model = env.trainer->train(env.nf(name), defaults, full);

    // Shared test set.
    struct TestPoint
    {
        traffic::TrafficProfile p;
        const core::BenchLibrary::MemBenchEntry *bench;
        double truth;
        double solo;
    };
    std::vector<TestPoint> tests;
    Rng rng = env.rng.split();
    for (int i = 0; i < 40; ++i) {
        TestPoint t;
        t.p = env.randomProfile();
        t.bench = &env.lib->randomMemBench(rng);
        auto ms = env.bed.run(
            {env.workload(name, t.p), t.bench->workload});
        t.truth = ms[0].throughput;
        t.solo = env.solo(name, t.p);
        tests.push_back(std::move(t));
    }
    auto evalModel = [&](const core::TomurModel &m) {
        std::vector<double> truth, pred;
        for (const auto &t : tests) {
            truth.push_back(t.truth);
            pred.push_back(m.predict({t.bench->level}, t.p));
        }
        return ml::mape(truth, pred);
    };

    AsciiTable table({"quota", "random MAPE (%)", "adaptive MAPE (%)",
                      "full MAPE (%)"});
    for (double scale : {0.5, 1.0, 1.5}) {
        core::TrainOptions r, a;
        r.sampling = core::SamplingStrategy::Random;
        a.sampling = core::SamplingStrategy::Adaptive;
        r.adaptive.quota = a.adaptive.quota =
            static_cast<std::size_t>(kBaseQuota * scale);
        r.seed = a.seed = 99 + static_cast<std::uint64_t>(10 * scale);
        auto rm = env.trainer->train(env.nf(name), defaults, r);
        auto am = env.trainer->train(env.nf(name), defaults, a);
        table.addRow({strf("%.1fx", scale),
                      fmtDouble(evalModel(rm), 1),
                      fmtDouble(evalModel(am), 1),
                      fmtDouble(evalModel(full_model), 1)});
    }
    table.print(stdout);
    return 0;
}
