/**
 * @file
 * Table 9 (§8): generalisation to a second SoC SmartNIC — a
 * Pensando-like configuration running a Firewall NF (flow walk +
 * payload matching) under memory contention and dynamic traffic.
 * Paper: Tomur 0.9% MAPE vs SLOMO 18.4%.
 */

#include "common.hh"

using namespace tomur;
using namespace tomur::bench;

int
main()
{
    printHeader("Table 9: Pensando-like SmartNIC, Firewall NF",
                "Tomur ~1% MAPE vs SLOMO ~18%: the models carry over "
                "to a different SoC NIC");
    BenchEnv env(hw::pensando());
    slomo::SlomoTrainer strainer(*env.lib);
    auto defaults = traffic::TrafficProfile::defaults();

    core::TrainOptions topts;
    topts.adaptive.quota = 140;
    auto tomur =
        env.trainer->train(env.nf("Firewall"), defaults, topts);
    auto slomo = strainer.train(env.nf("Firewall"), defaults);

    AccuracyTracker acc;
    Rng rng = env.rng.split();
    for (int i = 0; i < 50; ++i) {
        auto p = env.randomProfile();
        const auto &bench = env.lib->randomMemBench(rng);
        auto ms = env.bed.run(
            {env.workload("Firewall", p), bench.workload});
        double truth = ms[0].throughput;
        acc.add("tomur", truth,
                tomur.predict({bench.level}, p,
                              env.solo("Firewall", p)));
        acc.add("slomo", truth, slomo.predict({bench.level}, p));
    }

    AsciiTable table({"NF", "approach", "MAPE (%)", "±5% Acc. (%)",
                      "±10% Acc. (%)"});
    table.addRow({"Firewall", "SLOMO", fmtDouble(acc.mape("slomo"), 1),
                  fmtDouble(acc.accWithin("slomo", 5), 1),
                  fmtDouble(acc.accWithin("slomo", 10), 1)});
    table.addRow({"Firewall", "Tomur", fmtDouble(acc.mape("tomur"), 1),
                  fmtDouble(acc.accWithin("tomur", 5), 1),
                  fmtDouble(acc.accWithin("tomur", 10), 1)});
    table.print(stdout);
    return 0;
}
