/**
 * @file
 * Figure 3: traffic-agnostic models break as traffic changes.
 * Paper (a): FlowStats's throughput-vs-CAR curve shifts with the
 * traffic profile, so one fixed-traffic curve cannot serve all.
 * Paper (b): SLOMO models trained at the default profile suffer
 * large errors when tested over 100 random profiles with up to 500K
 * flows (medians ~15-40%).
 */

#include "common.hh"

using namespace tomur;
using namespace tomur::bench;

int
main()
{
    printHeader("Figure 3: fixed-traffic models vs changing traffic",
                "(a) contention sensitivity depends on the traffic "
                "profile; (b) large errors on unseen profiles");
    BenchEnv env;
    auto defaults = traffic::TrafficProfile::defaults();

    // ---- (a) FlowStats vs CAR in three traffic profiles ----
    std::printf("\n(a) FlowStats throughput (Kpps) vs mem-bench "
                "CAR:\n");
    const double flows_list[] = {4e3, 64e3, 320e3};
    std::vector<std::string> header = {"CAR \\ flows"};
    for (double f : flows_list)
        header.push_back(strf("%.0fK flows", f / 1e3));
    AsciiTable a(header);
    for (double car : {5e6, 20e6, 40e6, 60e6, 80e6, 100e6}) {
        std::vector<std::string> row = {strf("%.0fM", car / 1e6)};
        for (double flows : flows_list) {
            auto p = defaults.withAttribute(
                traffic::Attribute::FlowCount, flows);
            nfs::MemBenchConfig cfg;
            cfg.wssBytes = 12.0 * 1024 * 1024;
            cfg.targetAccessRate = car;
            auto mb = nfs::makeMemBench(cfg);
            auto wb = env.trainer->workloadOf(
                *mb, traffic::TrafficProfile{16, 1500, 0.0});
            auto ms = env.bed.run({env.workload("FlowStats", p), wb});
            row.push_back(
                strf("%.0fK", ms[0].truthThroughput / 1e3));
        }
        a.addRow(std::move(row));
    }
    a.print(stdout);

    // ---- (b) SLOMO error distribution over random profiles ----
    std::printf("\n(b) SLOMO error under random flow counts "
                "(up to 500K):\n");
    slomo::SlomoTrainer strainer(*env.lib);
    AsciiTable b({"NF", "error distribution (%)"});
    for (const char *name :
         {"FlowStats", "FlowClassifier", "FlowTracker"}) {
        auto model = strainer.train(env.nf(name), defaults);
        AccuracyTracker acc;
        Rng rng = env.rng.split();
        for (int i = 0; i < 40; ++i) {
            auto p = defaults.withAttribute(
                traffic::Attribute::FlowCount,
                rng.uniform(1e3, 500e3));
            const auto &bench = env.lib->randomMemBench(rng);
            auto ms = env.bed.run(
                {env.workload(name, p), bench.workload});
            acc.add(name, ms[0].throughput,
                    model.predict({bench.level}, p));
        }
        b.addRow({name, boxRow(acc.errors(name))});
    }
    b.print(stdout);
    return 0;
}
