/**
 * @file
 * Figure 4: throughput of co-running regex-NF and regex-bench as a
 * function of regex-bench's arrival rate, for several MTBRs.
 * Paper (O1/O2): linear decline of regex-NF as the bench's rate
 * rises, then both settle at a shared equilibrium throughput that
 * depends on the MTBR.
 */

#include "common.hh"

using namespace tomur;
using namespace tomur::bench;

int
main()
{
    printHeader("Figure 4: regex accelerator round-robin equilibrium",
                "linear throughput decline, then a common plateau; "
                "the equilibrium point falls as MTBR rises");
    BenchEnv env;
    auto base = traffic::TrafficProfile::defaults();

    for (double mtbr : {194.0, 600.0, 1000.0}) {
        auto p = base.withAttribute(traffic::Attribute::Mtbr, mtbr);
        auto nf = nfs::makeRegexNf(env.dev);
        auto w = env.trainer->workloadOf(*nf, p);

        std::printf("\nMTBR = %.0f matches/MB\n", mtbr);
        AsciiTable table({"bench rate (Kpps)", "regex-NF (Kpps)",
                          "regex-bench (Kpps)"});
        for (double rate = 50e3; rate <= 1050e3; rate += 100e3) {
            nfs::RegexBenchConfig cfg;
            cfg.requestRate = rate;
            auto bench = nfs::makeRegexBench(env.dev, cfg);
            auto wb = env.trainer->workloadOf(*bench, p);
            auto ms = env.bed.run({w, wb});
            table.addRow({fmtDouble(rate / 1e3, 0),
                          fmtDouble(ms[0].truthThroughput / 1e3, 1),
                          fmtDouble(ms[1].truthThroughput / 1e3, 1)});
        }
        table.print(stdout);
    }
    return 0;
}
