/**
 * @file
 * Table 7: performance-bottleneck diagnosis with dynamic traffic.
 * Paper: sweeping MTBR from 0 to 1100 matches/MB under fixed memory
 * contention, Tomur identifies the (shifting) bottleneck with 100%
 * accuracy on all three NFs; SLOMO is right only for FlowStats,
 * which is always memory-bound.
 */

#include "common.hh"

using namespace tomur;
using namespace tomur::bench;
using namespace tomur::usecases;

int
main()
{
    printHeader("Table 7: bottleneck diagnosis",
                "Tomur ~100% correct; SLOMO only on the always-"
                "memory-bound NF");
    BenchEnv env;
    auto defaults = traffic::TrafficProfile::defaults();

    // Fixed memory contention + moderate regex-bench load.
    // Pick the most aggressive memory bench by *measured* cache
    // pressure (high-compute configs cannot reach their target CAR).
    const core::BenchLibrary::MemBenchEntry *mem =
        &env.lib->memBenches().front();
    for (const auto &e : env.lib->memBenches()) {
        if (e.config.wssBytes < 12.0 * 1024 * 1024)
            continue; // need real LLC displacement, not just rate
        if (e.level.counters.cacheAccessRate() >
            mem->level.counters.cacheAccessRate()) {
            mem = &e;
        }
    }
    const auto *mem2 = mem; // second mem-bench instance (same config)
    const auto &rx =
        env.lib->accelBench(hw::AccelKind::Regex, 100e3, 800.0);

    AsciiTable table({"NF", "SLOMO correct (%)", "Tomur correct (%)",
                      "bottleneck shifts observed"});
    for (const char *name :
         {"FlowStats", "FlowMonitor", "IPCompGateway"}) {
        core::TrainOptions topts;
        topts.adaptive.quota = 100;
        auto model = env.trainer->train(env.nf(name), defaults,
                                        topts);

        std::vector<DiagnosisTrial> trials;
        Resource prev = Resource::Memory;
        int shifts = 0;
        bool first = true;
        for (double mtbr = 0.0; mtbr <= 1100.0; mtbr += 100.0) {
            auto p = defaults.withAttribute(traffic::Attribute::Mtbr,
                                            mtbr);
            const auto &w = env.workload(name, p);
            bool uses_regex = w.usesAccel(hw::AccelKind::Regex);
            std::vector<framework::WorkloadProfile> deploy = {
                w, mem->workload, mem2->workload};
            std::vector<core::ContentionLevel> levels = {mem->level,
                                                         mem2->level};
            if (uses_regex) {
                deploy.push_back(rx.workload);
                levels.push_back(rx.level);
            }
            auto ms = env.bed.run(deploy);

            auto attribution =
                core::attributeContention(model.predictDetailed(
                    levels, p, env.solo(name, p)));
            auto t = makeTrial(mtbr, truthBottleneck(ms[0]),
                               attribution);
            if (!first && t.truth != prev)
                ++shifts;
            prev = t.truth;
            first = false;
            trials.push_back(t);
        }
        auto score = scoreTrials(trials);
        table.addRow({name, fmtDouble(score.slomoCorrectPct, 1),
                      fmtDouble(score.tomurCorrectPct, 1),
                      strf("%d", shifts)});
    }
    table.print(stdout);
    return 0;
}
