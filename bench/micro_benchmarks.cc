/**
 * @file
 * Micro-benchmarks (google-benchmark) of the library's hot paths:
 * regex scanning (DFA and NFA), payload synthesis, gradient-boosting
 * training and inference, cache fixed point, round-robin solver,
 * and full testbed equilibrium solves.
 *
 * After the micro-benchmarks, a staged pipeline benchmark times the
 * end-to-end profiling/training/prediction path twice — once with
 * TOMUR_THREADS=1 (serial baseline) and once at the configured pool
 * width — and writes BENCH_micro.json (see tools/bench_report.sh)
 * with per-stage wall times and speedups: the repo's performance
 * trajectory record.
 *
 * Flags (besides the usual --benchmark_* ones):
 *   --pipeline-only   skip the google-benchmark suite
 *   --no-pipeline     skip the staged pipeline + JSON
 *   --no-scenario     skip the nonstationary replay scenario stage
 *                     (the JSON then omits that stage and its
 *                     extras, rather than publishing zeros)
 *   --no-chaos        skip the chaos-campaign stage (same omission
 *                     semantics as --no-scenario)
 *   --json=PATH       output path (default BENCH_micro.json)
 */

#include <benchmark/benchmark.h>

#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>

#include "chaos_campaign.hh"
#include "common.hh"
#include "common/checkpoint.hh"
#include "common/logging.hh"
#include "hw/accel_des.hh"
#include "hw/cache.hh"
#include "regex/generator.hh"
#include "replay_scenarios.hh"
#include "tomur/supervisor.hh"

using namespace tomur;

namespace {

std::vector<std::uint8_t>
samplePayload(std::size_t len, double mtbr)
{
    traffic::TrafficProfile p;
    p.mtbr = mtbr;
    p.packetSize = len + 42;
    static auto rules = regex::defaultRuleSet();
    traffic::TrafficGen gen(p, &rules, 42);
    return gen.makePayload();
}

void
BM_RegexDfaScan(benchmark::State &state)
{
    regex::MultiMatcher matcher(regex::defaultRuleSet());
    auto payload = samplePayload(1434, 600);
    for (auto _ : state)
        benchmark::DoNotOptimize(matcher.countMatches(payload));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_RegexDfaScan);

void
BM_RegexNfaScan(benchmark::State &state)
{
    auto rules = regex::tinyRuleSet();
    std::vector<regex::Pattern> pats;
    for (const auto &r : rules.rules)
        pats.push_back(regex::parseOrDie(r.pattern));
    regex::Nfa nfa(pats);
    auto payload = samplePayload(256, 0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            nfa.countMatches(payload.data(), payload.size()));
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_RegexNfaScan);

void
BM_PayloadSynthesis(benchmark::State &state)
{
    auto rules = regex::defaultRuleSet();
    traffic::TrafficProfile p;
    p.mtbr = 600;
    traffic::TrafficGen gen(p, &rules, 7);
    for (auto _ : state)
        benchmark::DoNotOptimize(gen.makePayload());
}
BENCHMARK(BM_PayloadSynthesis);

void
BM_GbrTrain(benchmark::State &state)
{
    Rng rng(5);
    ml::Dataset data({"a", "b", "c"});
    for (int i = 0; i < 300; ++i) {
        double a = rng.uniform(0, 1), b = rng.uniform(0, 1),
               c = rng.uniform(0, 1);
        data.add({a, b, c}, a * 3 + (b > 0.5 ? 2 : 0) + c * c);
    }
    ml::GbrParams params;
    params.numTrees = 50;
    for (auto _ : state) {
        ml::GradientBoostingRegressor gbr(params);
        gbr.fit(data);
        benchmark::DoNotOptimize(gbr.predict({0.5, 0.5, 0.5}));
    }
}
BENCHMARK(BM_GbrTrain);

void
BM_GbrPredict(benchmark::State &state)
{
    Rng rng(5);
    ml::Dataset data({"a", "b"});
    for (int i = 0; i < 200; ++i) {
        double a = rng.uniform(0, 1), b = rng.uniform(0, 1);
        data.add({a, b}, a + b);
    }
    ml::GradientBoostingRegressor gbr;
    gbr.fit(data);
    std::vector<double> x = {0.3, 0.7};
    for (auto _ : state)
        benchmark::DoNotOptimize(gbr.predict(x));
}
BENCHMARK(BM_GbrPredict);

void
BM_CacheFixedPoint(benchmark::State &state)
{
    std::vector<hw::CacheWorkload> w = {
        {2e6, 30e6, 1.0}, {12e6, 40e6, 1.0}, {6e6, 10e6, 0.5}};
    for (auto _ : state)
        benchmark::DoNotOptimize(
            hw::solveCacheSharing(6e6, 0.02, w));
}
BENCHMARK(BM_CacheFixedPoint);

void
BM_RoundRobinSolver(benchmark::State &state)
{
    std::vector<hw::AccelQueue> queues = {{1e-6, 0, true},
                                          {2e-6, 3e5, false},
                                          {0.5e-6, 1e5, false}};
    for (auto _ : state)
        benchmark::DoNotOptimize(hw::solveRoundRobin(queues));
}
BENCHMARK(BM_RoundRobinSolver);

void
BM_RoundRobinDes(benchmark::State &state)
{
    std::vector<hw::AccelQueue> queues = {{1e-6, 0, true},
                                          {2e-6, 3e5, false}};
    hw::DesOptions opts;
    opts.duration = 0.05;
    opts.warmup = 0.005;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            hw::simulateRoundRobin(queues, opts));
}
BENCHMARK(BM_RoundRobinDes);

void
BM_TestbedSolve(benchmark::State &state)
{
    static bench::BenchEnv env;
    auto defaults = traffic::TrafficProfile::defaults();
    std::vector<framework::WorkloadProfile> deploy = {
        env.workload("FlowMonitor", defaults),
        env.workload("FlowStats", defaults),
        env.workload("NIDS", defaults)};
    for (auto _ : state)
        benchmark::DoNotOptimize(env.bed.run(deploy));
}
BENCHMARK(BM_TestbedSolve);

void
BM_MonitorIngest(benchmark::State &state)
{
    core::PredictionMonitor monitor;
    core::MonitorSample s;
    s.deployment = "bench";
    s.profile = traffic::TrafficProfile::defaults();
    s.predicted = 1000.0;
    std::uint64_t i = 0;
    for (auto _ : state) {
        // Small deterministic wobble: the error path runs in full
        // (EWMA, window, histogram, Page–Hinkley) without firing
        // events that would grow the retained stream.
        s.measured = 1000.0 + (i++ % 16) - 8.0;
        benchmark::DoNotOptimize(monitor.ingest(s));
    }
}
BENCHMARK(BM_MonitorIngest);

void
BM_CheckpointFrame(benchmark::State &state)
{
    // Frame + verify of a model-sized body: the pure-CPU cost
    // (checksum twice, no I/O) every autopilot checkpoint pays.
    std::string body(64 * 1024, '\0');
    for (std::size_t i = 0; i < body.size(); ++i)
        body[i] = static_cast<char>('a' + i % 26);
    for (auto _ : state) {
        auto framed = CheckpointStore::frame(body);
        std::string out;
        if (!CheckpointStore::verifyFrame(framed, &out))
            fatal("checkpoint frame failed to verify");
        benchmark::DoNotOptimize(out);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(body.size()));
}
BENCHMARK(BM_CheckpointFrame);

void
BM_WorkloadProfiling(benchmark::State &state)
{
    static bench::BenchEnv env;
    auto rules = regex::defaultRuleSet();
    traffic::TrafficProfile p;
    p.flowCount = 4096;
    for (auto _ : state) {
        auto nf = nfs::makeFlowStats();
        benchmark::DoNotOptimize(
            framework::profileWorkload(*nf, p, &rules));
    }
}
BENCHMARK(BM_WorkloadProfiling);

/**
 * One serial-or-parallel pass over the pipeline stages. Everything
 * is constructed fresh per pass (own testbed, cold solve cache) so
 * the serial baseline and the parallel run do identical work.
 * @return the pool width the pass actually ran at (the pool may
 *         clamp the request), so the report never claims a width it
 *         did not get.
 */
int
runPipeline(bench::BenchReport &report, bool parallel, int threads,
            bool scenario, bool chaos)
{
    setGlobalThreadCount(threads);
    int actual = globalThreadCount();

    // Stage 1: the BenchLibrary profiling sweep (the one-time
    // synthetic-competitor measurement effort).
    auto rules = regex::defaultRuleSet();
    framework::DeviceSet dev;
    dev.regex = std::make_shared<framework::RegexDevice>(rules);
    dev.compression =
        std::make_shared<framework::CompressionDevice>();
    dev.crypto = std::make_shared<framework::CryptoDevice>();
    sim::Testbed bed(hw::blueField2(), sim::TestbedOptions{});
    std::unique_ptr<core::BenchLibrary> lib;
    report.measure("profile_sweep", parallel, [&] {
        lib = std::make_unique<core::BenchLibrary>(bed, dev, rules);
    });

    // Stage 2: GBR ensemble fitting in isolation (synthetic data so
    // the stage measures tree fitting, not the testbed).
    report.measure("gbr_fit", parallel, [&] {
        Rng rng(17);
        ml::Dataset data(std::vector<std::string>{
            "a", "b", "c", "d", "e", "f", "g", "h"});
        for (int i = 0; i < 1200; ++i) {
            std::vector<double> x;
            for (int j = 0; j < 8; ++j)
                x.push_back(rng.uniform(0, 1));
            double y = 3 * x[0] + (x[1] > 0.5 ? 2 : 0) +
                       x[2] * x[3] + 0.1 * x[7];
            data.add(x, y);
        }
        core::MemoryModelOptions mo;
        mo.trafficAware = false;
        core::MemoryModel model(mo);
        if (auto st = model.fit(data); !st)
            fatal(st.message());
        benchmark::DoNotOptimize(model.predictRow(
            {0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5}));
    });

    // Stage 3: end-to-end train + predict (the acceptance metric):
    // profiling sweep against the testbed, model fit, then a
    // prediction batch with the trained model.
    auto defaults = traffic::TrafficProfile::defaults();
    core::TomurTrainer trainer(*lib);
    auto nf = nfs::makeByName("FlowStats", dev);
    core::TomurModel model;
    report.measure("train_predict", parallel, [&] {
        core::TrainOptions topts;
        topts.sampling = core::SamplingStrategy::Random;
        topts.adaptive.quota = 120;
        model = trainer.train(*nf, defaults, topts);
        const auto &benches = lib->memBenches();
        auto preds = bench::runExperiments(
            512, 2024, [&](std::size_t, Rng &rng) {
                traffic::TrafficProfile p = defaults;
                for (int a = 0; a < traffic::numAttributes; ++a) {
                    auto attr = static_cast<traffic::Attribute>(a);
                    auto r = traffic::defaultRange(attr);
                    p = p.withAttribute(attr,
                                        rng.uniform(r.min, r.max));
                }
                const auto &b = benches[rng.uniformInt(
                    benches.size())];
                return model.predict({b.level}, p);
            });
        benchmark::DoNotOptimize(preds);
    });

    // Stage 4: a standalone prediction batch (inference hot path).
    report.measure("predict_batch", parallel, [&] {
        const auto &benches = lib->memBenches();
        auto preds = bench::runExperiments(
            4096, 7, [&](std::size_t, Rng &rng) {
                traffic::TrafficProfile p = defaults;
                p = p.withAttribute(
                    traffic::Attribute::FlowCount,
                    rng.uniform(1e3, 500e3));
                const auto &b = benches[rng.uniformInt(
                    benches.size())];
                return model.predict({b.level}, p);
            });
        benchmark::DoNotOptimize(preds);
    });

    // Stage 5: the monitor ingest hot path — the per-sample cost a
    // deployed prediction service pays to watch its own accuracy.
    // The fold is serial by contract; the stage exists in both
    // passes so the report can bound its absolute wall time.
    report.measure("monitor_ingest", parallel, [&] {
        core::PredictionMonitor monitor;
        core::MonitorSample s;
        s.deployment = "bench";
        s.profile = defaults;
        s.predicted = 1000.0;
        for (int i = 0; i < 200000; ++i) {
            s.measured = 1000.0 + (i % 16) - 8.0;
            benchmark::DoNotOptimize(monitor.ingest(s));
        }
    });

    // Stage 6: the self-healing runtime's recurring cost — a
    // checkpoint write/load cycle (tmp + rename, fsync off so the
    // stage times the protocol, not the disk) around a serialized
    // monitor, plus the supervisor's per-sample observe fold.
    report.measure("checkpoint_cycle", parallel, [&] {
        namespace fs = std::filesystem;
        fs::path dir = fs::temp_directory_path() /
                       (parallel ? "tomur_bench_ckpt_p"
                                 : "tomur_bench_ckpt_s");
        fs::remove_all(dir);
        CheckpointOptions copts;
        copts.fsync = false;
        CheckpointStore store(dir.string(), copts);

        core::PredictionMonitor monitor;
        core::MonitorSample s;
        s.deployment = "bench";
        s.profile = traffic::TrafficProfile::defaults();
        s.predicted = 1000.0;
        core::Supervisor sup(
            {}, [](std::size_t, std::string *) {
                return Status::ok();
            });
        for (int i = 0; i < 400; ++i) {
            s.measured = 1000.0 + (i % 16) - 8.0;
            auto fired = monitor.ingest(s);
            (void)sup.observe(static_cast<std::size_t>(i) + 1,
                              fired);
            if (i % 8 == 7) {
                std::ostringstream body;
                monitor.serialize(body);
                sup.serialize(body);
                if (auto st = store.writeGeneration(body.str());
                    !st) {
                    fatal(st.message());
                }
                if (!store.loadLatestValid())
                    fatal("checkpoint reload failed");
            }
        }
        fs::remove_all(dir);
    });

    // Stage 7: independent DES validation runs.
    report.measure("des_run", parallel, [&] {
        auto res = bench::runExperiments(
            64, 3, [&](std::size_t i, Rng &rng) {
                std::vector<hw::AccelQueue> queues = {
                    {1e-6 * (1.0 + 0.1 * (i % 4)), 0, true},
                    {2e-6, rng.uniform(1e5, 4e5), false},
                    {0.5e-6, rng.uniform(5e4, 2e5), false}};
                hw::DesOptions opts;
                opts.duration = 0.02;
                opts.warmup = 0.002;
                opts.seed = deriveSeed(11, i);
                return hw::simulateRoundRobin(queues, opts);
            });
        benchmark::DoNotOptimize(res);
    });

    // Stage 8: the nonstationary stress harness — a synthesized
    // regime-change scenario through the autopilot, with the
    // time-to-recovery and profiler-overhead extras.
    if (scenario)
        bench::runReplayScenarioStage(report, parallel);

    // Stage 9: the chaos-campaign engine — a small seeded sweep of
    // composed fault plans, with campaign-health and shrinker
    // extras on the serial pass.
    if (chaos)
        bench::runChaosCampaignStage(report, parallel);

    return actual;
}

} // namespace

int
main(int argc, char **argv)
{
    bool pipeline = true;
    bool micro = true;
    bool scenario = true;
    bool chaos = true;
    std::string json_path = "BENCH_micro.json";

    // Strip our flags before google-benchmark sees the rest.
    std::vector<char *> args;
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--pipeline-only") == 0) {
            micro = false;
        } else if (std::strcmp(argv[i], "--no-pipeline") == 0) {
            pipeline = false;
        } else if (std::strcmp(argv[i], "--no-scenario") == 0) {
            scenario = false;
        } else if (std::strcmp(argv[i], "--no-chaos") == 0) {
            chaos = false;
        } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
            json_path = argv[i] + 7;
        } else {
            args.push_back(argv[i]);
        }
    }
    int bench_argc = static_cast<int>(args.size());
    benchmark::Initialize(&bench_argc, args.data());

    if (micro)
        benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    if (pipeline) {
        int hw_threads = configuredThreadCount();
        bench::BenchReport report("micro");
        std::printf("\npipeline stages (serial vs %d threads):\n",
                    hw_threads);
        int serial_w = runPipeline(report, /*parallel=*/false, 1,
                                   scenario, chaos);
        int parallel_w = runPipeline(report, /*parallel=*/true,
                                     hw_threads, scenario, chaos);
        if (parallel_w < 2) {
            // One-thread "parallel" numbers are serial numbers: say
            // so rather than report a fake speedup baseline (the
            // JSON records the actual width for the same reason).
            std::printf("note: pool width %d — the \"parallel\" pass "
                        "ran serially; speedups compare two serial "
                        "runs\n",
                        parallel_w);
        }
        if (report.writeJson(json_path, serial_w, parallel_w))
            std::printf("wrote %s\n", json_path.c_str());
    }
    return 0;
}
