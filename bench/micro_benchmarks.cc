/**
 * @file
 * Micro-benchmarks (google-benchmark) of the library's hot paths:
 * regex scanning (DFA and NFA), payload synthesis, gradient-boosting
 * training and inference, cache fixed point, round-robin solver,
 * and full testbed equilibrium solves.
 */

#include <benchmark/benchmark.h>

#include "common.hh"
#include "hw/accel_des.hh"
#include "hw/cache.hh"
#include "regex/generator.hh"

using namespace tomur;

namespace {

std::vector<std::uint8_t>
samplePayload(std::size_t len, double mtbr)
{
    traffic::TrafficProfile p;
    p.mtbr = mtbr;
    p.packetSize = len + 42;
    static auto rules = regex::defaultRuleSet();
    traffic::TrafficGen gen(p, &rules, 42);
    return gen.makePayload();
}

void
BM_RegexDfaScan(benchmark::State &state)
{
    regex::MultiMatcher matcher(regex::defaultRuleSet());
    auto payload = samplePayload(1434, 600);
    for (auto _ : state)
        benchmark::DoNotOptimize(matcher.countMatches(payload));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_RegexDfaScan);

void
BM_RegexNfaScan(benchmark::State &state)
{
    auto rules = regex::tinyRuleSet();
    std::vector<regex::Pattern> pats;
    for (const auto &r : rules.rules)
        pats.push_back(regex::parseOrDie(r.pattern));
    regex::Nfa nfa(pats);
    auto payload = samplePayload(256, 0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            nfa.countMatches(payload.data(), payload.size()));
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_RegexNfaScan);

void
BM_PayloadSynthesis(benchmark::State &state)
{
    auto rules = regex::defaultRuleSet();
    traffic::TrafficProfile p;
    p.mtbr = 600;
    traffic::TrafficGen gen(p, &rules, 7);
    for (auto _ : state)
        benchmark::DoNotOptimize(gen.makePayload());
}
BENCHMARK(BM_PayloadSynthesis);

void
BM_GbrTrain(benchmark::State &state)
{
    Rng rng(5);
    ml::Dataset data({"a", "b", "c"});
    for (int i = 0; i < 300; ++i) {
        double a = rng.uniform(0, 1), b = rng.uniform(0, 1),
               c = rng.uniform(0, 1);
        data.add({a, b, c}, a * 3 + (b > 0.5 ? 2 : 0) + c * c);
    }
    ml::GbrParams params;
    params.numTrees = 50;
    for (auto _ : state) {
        ml::GradientBoostingRegressor gbr(params);
        gbr.fit(data);
        benchmark::DoNotOptimize(gbr.predict({0.5, 0.5, 0.5}));
    }
}
BENCHMARK(BM_GbrTrain);

void
BM_GbrPredict(benchmark::State &state)
{
    Rng rng(5);
    ml::Dataset data({"a", "b"});
    for (int i = 0; i < 200; ++i) {
        double a = rng.uniform(0, 1), b = rng.uniform(0, 1);
        data.add({a, b}, a + b);
    }
    ml::GradientBoostingRegressor gbr;
    gbr.fit(data);
    std::vector<double> x = {0.3, 0.7};
    for (auto _ : state)
        benchmark::DoNotOptimize(gbr.predict(x));
}
BENCHMARK(BM_GbrPredict);

void
BM_CacheFixedPoint(benchmark::State &state)
{
    std::vector<hw::CacheWorkload> w = {
        {2e6, 30e6, 1.0}, {12e6, 40e6, 1.0}, {6e6, 10e6, 0.5}};
    for (auto _ : state)
        benchmark::DoNotOptimize(
            hw::solveCacheSharing(6e6, 0.02, w));
}
BENCHMARK(BM_CacheFixedPoint);

void
BM_RoundRobinSolver(benchmark::State &state)
{
    std::vector<hw::AccelQueue> queues = {{1e-6, 0, true},
                                          {2e-6, 3e5, false},
                                          {0.5e-6, 1e5, false}};
    for (auto _ : state)
        benchmark::DoNotOptimize(hw::solveRoundRobin(queues));
}
BENCHMARK(BM_RoundRobinSolver);

void
BM_RoundRobinDes(benchmark::State &state)
{
    std::vector<hw::AccelQueue> queues = {{1e-6, 0, true},
                                          {2e-6, 3e5, false}};
    hw::DesOptions opts;
    opts.duration = 0.05;
    opts.warmup = 0.005;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            hw::simulateRoundRobin(queues, opts));
}
BENCHMARK(BM_RoundRobinDes);

void
BM_TestbedSolve(benchmark::State &state)
{
    static bench::BenchEnv env;
    auto defaults = traffic::TrafficProfile::defaults();
    std::vector<framework::WorkloadProfile> deploy = {
        env.workload("FlowMonitor", defaults),
        env.workload("FlowStats", defaults),
        env.workload("NIDS", defaults)};
    for (auto _ : state)
        benchmark::DoNotOptimize(env.bed.run(deploy));
}
BENCHMARK(BM_TestbedSolve);

void
BM_WorkloadProfiling(benchmark::State &state)
{
    static bench::BenchEnv env;
    auto rules = regex::defaultRuleSet();
    traffic::TrafficProfile p;
    p.flowCount = 4096;
    for (auto _ : state) {
        auto nf = nfs::makeFlowStats();
        benchmark::DoNotOptimize(
            framework::profileWorkload(*nf, p, &rules));
    }
}
BENCHMARK(BM_WorkloadProfiling);

} // namespace

BENCHMARK_MAIN();
