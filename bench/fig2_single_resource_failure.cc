/**
 * @file
 * Figure 2: single-resource models under multi-resource contention.
 * Paper (a): using only the memory model (SLOMO) or only the regex
 * model yields ~20% median and up to ~60% worst-case error on
 * FlowMonitor when both resources are contended.
 * Paper (b): sum/min composition helps but depends on the execution
 * pattern — sum suits run-to-completion NF1, min suits pipeline NF2.
 */

#include "common.hh"

using namespace tomur;
using namespace tomur::bench;

int
main()
{
    printHeader("Figure 2: single-resource models fail under "
                "multi-resource contention",
                "(a) ~20% median error; (b) no single strawman "
                "composition wins for both execution patterns");
    BenchEnv env;
    auto defaults = traffic::TrafficProfile::defaults();

    // ---- (a) FlowMonitor with memory-only / regex-only models ----
    slomo::SlomoTrainer strainer(*env.lib);
    auto slomo_model = strainer.train(env.nf("FlowMonitor"), defaults);
    core::TrainOptions topts;
    topts.adaptive.quota = 80;
    auto tomur_model =
        env.trainer->train(env.nf("FlowMonitor"), defaults, topts);
    double solo = env.solo("FlowMonitor", defaults);

    AccuracyTracker acc;
    Rng rng = env.rng.split();
    for (int i = 0; i < 40; ++i) {
        const auto &mem = env.lib->randomMemBench(rng);
        double knob = rng.uniform(300.0, 1200.0);
        double rate = rng.chance(0.1) ? 0.0 : rng.uniform(0.5e5, 4e5);
        const auto &rx =
            env.lib->accelBench(hw::AccelKind::Regex, rate, knob);
        auto ms = env.bed.run({env.workload("FlowMonitor", defaults),
                               mem.workload, rx.workload});
        double truth = ms[0].throughput;
        acc.add("memory-only (SLOMO)", truth,
                slomo_model.predict({mem.level, rx.level}, defaults));
        auto b = tomur_model.predictDetailed({mem.level, rx.level},
                                             defaults, solo);
        acc.add("regex-only", truth, b.accelOnlyThroughput[0]);
    }
    std::printf("\n(a) absolute percentage error of FlowMonitor "
                "predictions:\n");
    AsciiTable a({"model", "error distribution (%)"});
    a.addRow({"memory-only (SLOMO)",
              boxRow(acc.errors("memory-only (SLOMO)"))});
    a.addRow({"regex-only", boxRow(acc.errors("regex-only"))});
    a.print(stdout);

    // ---- (b) sum vs min composition across execution patterns ----
    std::printf("\n(b) MAPE (%%) of strawman compositions:\n");
    AsciiTable b({"NF", "pattern", "sum", "min"});
    struct Case
    {
        const char *label;
        std::unique_ptr<framework::NetworkFunction> nf;
    };
    std::vector<Case> cases;
    cases.push_back({"NF1", nfs::makeSyntheticNf1(
                                env.dev,
                                framework::ExecutionPattern::
                                    RunToCompletion)});
    cases.push_back({"NF2", nfs::makeSyntheticNf2(
                                env.dev,
                                framework::ExecutionPattern::
                                    Pipeline)});
    for (auto &c : cases) {
        auto model = env.trainer->train(*c.nf, defaults, topts);
        double c_solo =
            env.bed.runSolo(env.trainer->workloadOf(*c.nf, defaults))
                .truthThroughput;
        AccuracyTracker cacc;
        Rng crng = env.rng.split();
        for (int i = 0; i < 30; ++i) {
            const auto &mem = env.lib->randomMemBench(crng);
            const auto &rx = env.lib->accelBench(
                hw::AccelKind::Regex, crng.uniform(0.5e5, 3.5e5),
                crng.uniform(300.0, 1200.0));
            auto ms = env.bed.run(
                {env.trainer->workloadOf(*c.nf, defaults),
                 mem.workload, rx.workload});
            double truth = ms[0].throughput;
            cacc.add("sum", truth,
                     model.predictComposed(core::CompositionKind::Sum,
                                           {mem.level, rx.level},
                                           defaults, c_solo));
            cacc.add("min", truth,
                     model.predictComposed(core::CompositionKind::Min,
                                           {mem.level, rx.level},
                                           defaults, c_solo));
        }
        b.addRow({c.label, framework::patternName(c.nf->pattern()),
                  fmtDouble(cacc.mape("sum"), 1),
                  fmtDouble(cacc.mape("min"), 1)});
    }
    b.print(stdout);
    return 0;
}
