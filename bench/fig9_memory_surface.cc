/**
 * @file
 * Figure 9 (Appendix B): FlowStats throughput as a function of
 * mem-bench's working-set size and cache access rate.
 * Paper: below ~6 MB competing WSS the throughput barely moves;
 * above it, CAR becomes the dominant factor.
 */

#include "common.hh"

using namespace tomur;
using namespace tomur::bench;

int
main()
{
    printHeader("Figure 9: FlowStats vs competing (WSS, CAR)",
                "two regimes around the 6 MB LLC: WSS-dominated "
                "below, CAR-dominated above");
    BenchEnv env;
    auto defaults = traffic::TrafficProfile::defaults();
    const auto &w = env.workload("FlowStats", defaults);

    const double cars[] = {5e6, 10e6, 20e6, 40e6, 80e6, 100e6};
    std::vector<std::string> header = {"WSS \\ CAR"};
    for (double car : cars)
        header.push_back(strf("%.0fM", car / 1e6));
    AsciiTable table(header);

    for (double wss : {1.0, 2.0, 4.0, 6.0, 8.0, 12.0, 20.0, 40.0}) {
        std::vector<std::string> row = {strf("%.0f MB", wss)};
        for (double car : cars) {
            nfs::MemBenchConfig cfg;
            cfg.wssBytes = wss * 1024 * 1024;
            cfg.targetAccessRate = car;
            auto bench = nfs::makeMemBench(cfg);
            auto wb = env.trainer->workloadOf(
                *bench, traffic::TrafficProfile{16, 1500, 0.0});
            auto ms = env.bed.run({w, wb});
            row.push_back(
                strf("%.0fK", ms[0].truthThroughput / 1e3));
        }
        table.addRow(std::move(row));
    }
    table.print(stdout);
    return 0;
}
