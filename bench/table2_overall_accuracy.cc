/**
 * @file
 * Table 2: overall prediction accuracy under both multi-resource
 * contention and varying traffic attributes.
 * Paper: Tomur averages 3.7% MAPE vs SLOMO's 17.5% (78.8% error
 * reduction); Tomur's largest gains are on IPTunnel, FlowMonitor,
 * FlowStats and NIDS; both are accurate on ACL.
 */

#include "common.hh"

#include <algorithm>

using namespace tomur;
using namespace tomur::bench;

int
main()
{
    printHeader("Table 2: overall accuracy (multi-resource "
                "contention + varying traffic)",
                "Tomur ~3.7% MAPE average vs SLOMO ~17.5%; Tomur "
                "wins big on traffic-/accelerator-sensitive NFs");
    BenchEnv env;
    slomo::SlomoTrainer strainer(*env.lib);
    auto defaults = traffic::TrafficProfile::defaults();
    auto names = nfs::evaluationNfNames();

    // 9 distinct test traffic profiles per NF (the paper's setup).
    std::vector<traffic::TrafficProfile> profiles = {defaults};
    for (int i = 0; i < 8; ++i)
        profiles.push_back(env.randomProfile());

    struct Row
    {
        std::string name;
        double t_mape, t_a5, t_a10;
        double s_mape, s_a5, s_a10;
    };
    std::vector<Row> rows;
    RunningStats tomur_mape, slomo_mape;

    for (const auto &target : names) {
        core::TrainOptions topts;
        topts.adaptive.quota = 160;
        auto tomur = env.trainer->train(env.nf(target), defaults,
                                        topts);
        auto slomo = strainer.train(env.nf(target), defaults);

        AccuracyTracker acc;
        Rng rng = env.rng.split();
        for (int t = 0; t < 36; ++t) {
            const auto &p = profiles[rng.uniformInt(profiles.size())];
            int n_comp = 1 + static_cast<int>(rng.uniformInt(3u));
            std::vector<framework::WorkloadProfile> deploy = {
                env.workload(target, p)};
            std::vector<core::ContentionLevel> levels;
            for (int c = 0; c < n_comp; ++c) {
                const auto &comp = rng.pick(names);
                deploy.push_back(env.workload(comp, defaults));
                levels.push_back(env.trainer->contentionOf(
                    env.nf(comp), defaults));
            }
            auto ms = env.bed.run(deploy);
            double truth = ms[0].throughput;
            acc.add("tomur", truth,
                    tomur.predict(levels, p, env.solo(target, p)));
            acc.add("slomo", truth, slomo.predict(levels, p));
        }
        rows.push_back({target, acc.mape("tomur"),
                        acc.accWithin("tomur", 5),
                        acc.accWithin("tomur", 10),
                        acc.mape("slomo"), acc.accWithin("slomo", 5),
                        acc.accWithin("slomo", 10)});
        tomur_mape.add(acc.mape("tomur"));
        slomo_mape.add(acc.mape("slomo"));
        std::printf("  trained %s\n", target.c_str());
        std::fflush(stdout);
    }

    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) {
                  return a.t_mape < b.t_mape;
              });
    AsciiTable table({"NF", "SLOMO MAPE", "SLOMO ±5%", "SLOMO ±10%",
                      "Tomur MAPE", "Tomur ±5%", "Tomur ±10%"});
    for (const auto &r : rows) {
        table.addRow({r.name, fmtDouble(r.s_mape, 1),
                      fmtDouble(r.s_a5, 1), fmtDouble(r.s_a10, 1),
                      fmtDouble(r.t_mape, 1), fmtDouble(r.t_a5, 1),
                      fmtDouble(r.t_a10, 1)});
    }
    table.print(stdout);
    std::printf("Average MAPE: Tomur %.1f%%  SLOMO %.1f%%  "
                "(error reduction %.1f%%)\n",
                tomur_mape.mean(), slomo_mape.mean(),
                100.0 * (1.0 - tomur_mape.mean() /
                                   std::max(1e-9,
                                            slomo_mape.mean())));
    return 0;
}
