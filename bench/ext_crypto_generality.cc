/**
 * @file
 * Extension experiment: the queue-based accelerator model applied to
 * a third accelerator kind — the inline crypto engine (§4.1.1 states
 * the approach "directly applies to other hardware accelerators,
 * e.g., compression and crypto accelerator"). An IPsec ESP gateway
 * is profiled and predicted under crypto-bench contention, alone and
 * combined with memory contention; SLOMO (memory-only) misses the
 * crypto contention entirely.
 */

#include "common.hh"

using namespace tomur;
using namespace tomur::bench;

int
main()
{
    printHeader("Extension: crypto accelerator generality "
                "(IPsecGateway)",
                "the queue model carries over unchanged; a memory-"
                "only baseline cannot see crypto contention");
    BenchEnv env;
    slomo::SlomoTrainer strainer(*env.lib);
    auto defaults = traffic::TrafficProfile::defaults();

    core::TrainOptions topts;
    topts.adaptive.quota = 100;
    auto tomur =
        env.trainer->train(env.nf("IPsecGateway"), defaults, topts);
    auto slomo = strainer.train(env.nf("IPsecGateway"), defaults);
    double solo = env.solo("IPsecGateway", defaults);

    // Sweep crypto-bench offered rate: the paper's Fig. 4 shape
    // should reappear on the crypto engine.
    std::printf("\nIPsecGateway vs crypto-bench (24 KB requests):\n");
    AsciiTable sweep({"bench rate (Kreq/s)", "measured (Kpps)",
                      "Tomur (Kpps)", "SLOMO (Kpps)"});
    AccuracyTracker acc;
    for (double rate :
         {50e3, 100e3, 150e3, 200e3, 250e3, 300e3, 0.0}) {
        const auto &bench =
            env.lib->accelBench(hw::AccelKind::Crypto, rate, 24000.0);
        auto ms = env.bed.run(
            {env.workload("IPsecGateway", defaults), bench.workload});
        double truth = ms[0].throughput;
        double pt = tomur.predict({bench.level}, defaults, solo);
        double ps = slomo.predict({bench.level}, defaults);
        acc.add("tomur", truth, pt);
        acc.add("slomo", truth, ps);
        sweep.addRow({rate > 0 ? fmtDouble(rate / 1e3, 0) : "closed",
                      fmtDouble(truth / 1e3, 1),
                      fmtDouble(pt / 1e3, 1),
                      fmtDouble(ps / 1e3, 1)});
    }
    sweep.print(stdout);

    // Joint memory + crypto contention.
    Rng rng = env.rng.split();
    AccuracyTracker joint;
    for (int i = 0; i < 30; ++i) {
        const auto &mem = env.lib->randomMemBench(rng);
        const auto &cb = env.lib->accelBench(
            hw::AccelKind::Crypto, rng.uniform(0.5e5, 3e5),
            rng.chance(0.5) ? 16000.0 : 24000.0);
        auto ms =
            env.bed.run({env.workload("IPsecGateway", defaults),
                         mem.workload, cb.workload});
        double truth = ms[0].throughput;
        joint.add("tomur", truth,
                  tomur.predict({mem.level, cb.level}, defaults,
                                solo));
        joint.add("slomo", truth,
                  slomo.predict({mem.level, cb.level}, defaults));
    }
    std::printf("\nJoint memory + crypto contention:\n");
    AsciiTable table({"approach", "MAPE (%)", "±10% Acc. (%)"});
    table.addRow({"SLOMO", fmtDouble(joint.mape("slomo"), 1),
                  fmtDouble(joint.accWithin("slomo", 10), 1)});
    table.addRow({"Tomur", fmtDouble(joint.mape("tomur"), 1),
                  fmtDouble(joint.accWithin("tomur", 10), 1)});
    table.print(stdout);
    return 0;
}
