/**
 * @file
 * Chaos-campaign benchmark stage: a small seeded campaign of
 * composed fault plans driven through the runner (autopilot and
 * serve targets), timing how fast the engine burns through plans.
 *
 * Besides the usual serial/parallel wall time ("chaos_campaign"),
 * the serial pass records campaign health and shrinker numbers as
 * BENCH_micro.json extras:
 *
 *   chaos_plans              plans executed in the measured campaign
 *   chaos_violations         invariant violations (must be 0 on a
 *                            healthy tree; gated by
 *                            tools/bench_report.sh)
 *   chaos_plans_per_sec      campaign throughput
 *   chaos_shrink_iterations  ddmin probes spent minimizing a
 *                            deterministic planted failure (> 0
 *                            proves the shrinker engaged; gated)
 */

#ifndef TOMUR_BENCH_CHAOS_CAMPAIGN_HH
#define TOMUR_BENCH_CHAOS_CAMPAIGN_HH

#include "common.hh"

namespace tomur::bench {

/** Run the chaos stage at the current pool width. Extras are
 *  recorded on the serial pass only, so the parallel timing stays a
 *  pure campaign measurement. */
void runChaosCampaignStage(BenchReport &report, bool parallel);

} // namespace tomur::bench

#endif // TOMUR_BENCH_CHAOS_CAMPAIGN_HH
