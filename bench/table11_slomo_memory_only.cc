/**
 * @file
 * Table 11 (Appendix A): SLOMO's prediction error under memory-only
 * contention and a fixed traffic profile — its home turf.
 * Paper: MAPE 0.6%-2.5% across the 9 NFs, >= 88% ±5% accuracy.
 */

#include "common.hh"

using namespace tomur;
using namespace tomur::bench;

int
main()
{
    printHeader("Table 11: SLOMO, memory-only contention, fixed "
                "traffic",
                "MAPE ~0.6-2.5% per NF; the baseline is accurate in "
                "the regime it was designed for");
    BenchEnv env;
    slomo::SlomoTrainer strainer(*env.lib);
    auto defaults = traffic::TrafficProfile::defaults();

    AsciiTable table({"NF", "MAPE (%)", "±5% Acc. (%)",
                      "±10% Acc. (%)"});
    for (const auto &name : nfs::evaluationNfNames()) {
        auto model = strainer.train(env.nf(name), defaults);
        AccuracyTracker acc;
        Rng rng = env.rng.split();
        for (int i = 0; i < 50; ++i) {
            const auto &bench = env.lib->randomMemBench(rng);
            auto ms = env.bed.run(
                {env.workload(name, defaults), bench.workload});
            acc.add("slomo", ms[0].throughput,
                    model.predict({bench.level}, defaults));
        }
        table.addRow({name, fmtDouble(acc.mape("slomo"), 1),
                      fmtDouble(acc.accWithin("slomo", 5), 1),
                      fmtDouble(acc.accWithin("slomo", 10), 1)});
    }
    table.print(stdout);
    return 0;
}
