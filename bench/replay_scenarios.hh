/**
 * @file
 * Nonstationary-replay benchmark stage: a synthesized composite
 * scenario (diurnal swing, flash crowd, MTBR spike) driven through
 * the supervised autopilot with the sampling profiler attached.
 *
 * Besides the usual serial/parallel wall time ("replay_scenarios"),
 * the serial pass records recovery-time and profiler-overhead
 * numbers as BENCH_micro.json extras:
 *
 *   replay_recoveries              regime changes that recovered
 *   replay_recovery_mean_samples   mean time-to-recovery (samples)
 *   replay_recovery_max_samples    worst time-to-recovery (samples)
 *   replay_profiler_overhead_frac  ingest-loop slowdown from the
 *                                  profiler (fraction; budget 0.05,
 *                                  gated by tools/bench_report.sh)
 */

#ifndef TOMUR_BENCH_REPLAY_SCENARIOS_HH
#define TOMUR_BENCH_REPLAY_SCENARIOS_HH

#include "common.hh"

namespace tomur::bench {

/** Run the scenario stage at the current pool width. Extras are
 *  recorded on the serial pass only, so the parallel timing stays a
 *  pure replay measurement. */
void runReplayScenarioStage(BenchReport &report, bool parallel);

} // namespace tomur::bench

#endif // TOMUR_BENCH_REPLAY_SCENARIOS_HH
