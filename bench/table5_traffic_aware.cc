/**
 * @file
 * Table 5: memory-only contention with dynamic traffic profiles.
 * Paper: Tomur keeps MAPE < ~6% with >= 88% ±10% accuracy across
 * the seven traffic-sensitive NFs, while SLOMO degrades badly on
 * the most traffic-sensitive ones (IPTunnel 88%, FlowMonitor ~12%).
 */

#include "common.hh"

using namespace tomur;
using namespace tomur::bench;

int
main()
{
    printHeader("Table 5: memory-only contention + dynamic traffic",
                "Tomur < ~6% MAPE across NFs; SLOMO fails on "
                "traffic-sensitive NFs");
    BenchEnv env;
    slomo::SlomoTrainer strainer(*env.lib);
    auto defaults = traffic::TrafficProfile::defaults();

    // Fixed memory contention level (paper: a set level), varied
    // traffic profiles per test point.
    const auto &bench = env.lib->memBenches()[
        env.lib->memBenches().size() / 2];

    AsciiTable table({"NF", "SLOMO MAPE", "SLOMO ±5%", "SLOMO ±10%",
                      "Tomur MAPE", "Tomur ±5%", "Tomur ±10%"});
    for (const char *name :
         {"NIDS", "FlowClassifier", "NAT", "FlowTracker", "FlowStats",
          "FlowMonitor", "IPTunnel"}) {
        core::TrainOptions topts;
        topts.adaptive.quota = 160;
        auto tomur = env.trainer->train(env.nf(name), defaults,
                                        topts);
        auto slomo = strainer.train(env.nf(name), defaults);

        AccuracyTracker acc;
        for (int i = 0; i < 40; ++i) {
            auto p = env.randomProfile();
            auto ms = env.bed.run(
                {env.workload(name, p), bench.workload});
            double truth = ms[0].throughput;
            acc.add("tomur", truth,
                    tomur.predict({bench.level}, p,
                                  env.solo(name, p)));
            acc.add("slomo", truth,
                    slomo.predict({bench.level}, p));
        }
        table.addRow({name, fmtDouble(acc.mape("slomo"), 1),
                      fmtDouble(acc.accWithin("slomo", 5), 1),
                      fmtDouble(acc.accWithin("slomo", 10), 1),
                      fmtDouble(acc.mape("tomur"), 1),
                      fmtDouble(acc.accWithin("tomur", 5), 1),
                      fmtDouble(acc.accWithin("tomur", 10), 1)});
        std::printf("  evaluated %s\n", name);
        std::fflush(stdout);
    }
    table.print(stdout);
    return 0;
}
