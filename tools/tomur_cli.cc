/**
 * @file
 * tomur — command-line front end to the prediction library.
 *
 * Subcommands:
 *   catalog                         list the NF catalog
 *   solo <NF> [traffic opts]        measured solo throughput
 *   train <NF> --out FILE           train and persist a model
 *   predict <NF> --with A,B,...     predict under co-location and
 *                                   compare against a deployment
 *   diagnose <NF> [traffic opts]    per-resource breakdown
 *   monitor <NF> [--schedule FILE]  replay a traffic schedule through
 *                                   the prediction-quality monitor
 *   autopilot <NF> [--checkpoint-dir D] [--resume]
 *                                   self-healing monitored replay:
 *                                   crash-safe checkpoints, circuit-
 *                                   breaker recalibration, deadlines
 *   replay <NF> [--scenario FILE]   nonstationary stress harness:
 *                                   synthesized regime-change scenario
 *                                   through the autopilot, with time-
 *                                   to-recovery and a sampling profile
 *                                   of the replay loop
 *   report [--metrics FILE] ...     render collected observability
 *                                   artifacts as a text/HTML dashboard
 *   serve <NF> [--port P] ...       prediction daemon: HTTP/JSON over
 *                                   epoll with load shedding, request
 *                                   deadlines, model hot-swap, and
 *                                   graceful SIGTERM drain
 *
 * Traffic options: --flows N --size B --mtbr M (defaults 16000 /
 * 1500 / 600). All runs happen on the built-in BlueField-2 testbed;
 * training uses a reduced quota so invocations stay interactive.
 * `--model FILE` loads a previously trained model instead of
 * retraining; `--faults P` injects a uniform corruption rate into
 * the testbed's measurement path (robustness demos).
 *
 * Observability (any command): `--trace-out FILE` writes a JSON-lines
 * span trace of the run, `--metrics-out FILE` writes a Prometheus-
 * style text dump of the tomur_* metrics registry (see DESIGN.md §8).
 *
 * Exit codes: 0 success, 1 runtime failure, 2 usage error,
 * 3 file I/O error, 4 corrupt model file, 5 internal error
 * (uncaught exception, reported as a structured warn event).
 */

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <typeinfo>
#include <vector>

#include "chaos/campaign.hh"
#include "common/checkpoint.hh"
#include "common/deadline.hh"
#include "common/logging.hh"
#include "common/report.hh"
#include "common/strutil.hh"
#include "common/telemetry.hh"
#include "common/trace.hh"
#include "nfs/registry.hh"
#include "regex/ruleset.hh"
#include "serve/epoll_server.hh"
#include "serve/observe.hh"
#include "serve/registry.hh"
#include "serve/server.hh"
#include "serve/service.hh"
#include "sim/faults.hh"
#include "tomur/monitor.hh"
#include "tomur/profiler.hh"
#include "tomur/supervisor.hh"
#include "traffic/synth.hh"
#include "usecases/diagnosis.hh"

using namespace tomur;

namespace {

/** Distinct exit codes so scripts can tell failure classes apart. */
enum ExitCode
{
    kExitOk = 0,
    kExitRuntime = 1,
    kExitUsage = 2,
    kExitIo = 3,
    kExitCorruptModel = 4,
    kExitInternal = 5,
};

struct Cli
{
    std::string command;
    std::string nf;
    std::vector<std::string> competitors;
    traffic::TrafficProfile profile;
    std::size_t quota = 80;
    std::string modelPath; ///< --model: load instead of training
    std::string outPath;   ///< --out: persist the trained model
    std::string traceOut;  ///< --trace-out: JSONL span trace
    std::string metricsOut; ///< --metrics-out: metrics text dump
    double faultRate = 0.0;

    // monitor
    std::string schedulePath; ///< --schedule: replay script
    std::string scenarioPath; ///< --scenario: synthesizer script
    std::string eventsOut;    ///< --events-out: monitor JSONL
    double biasFactor = 0.7;  ///< --bias: drift magnitude
    long biasAt = -1;         ///< --bias-at: sample index (off < 0)

    // autopilot
    std::string checkpointDir;       ///< --checkpoint-dir
    bool resume = false;             ///< --resume
    std::size_t checkpointEvery = 8; ///< --checkpoint-every
    double deadlineMs = 0.0;         ///< --deadline-ms (0 = off)
    std::size_t maxRecalibrations = 8; ///< --max-recalibrations
    long crashAfter = -1; ///< --crash-after: chaos kill switch

    // replay
    std::string profileOut; ///< --profile-out: sampling profile dump

    // serve
    int port = 0;                      ///< --port (0 = ephemeral)
    std::string bindAddress = "127.0.0.1"; ///< --bind
    std::string portFile;              ///< --port-file: write bound port
    std::size_t maxConnections = 256;  ///< --max-connections
    std::size_t queueDepth = 64;       ///< --queue-depth
    double drainMs = 5000.0;           ///< --drain-ms
    double rate = 0.0;  ///< --rate: bucket refill per second (0 = off)
    double burst = 0.0; ///< --burst: bucket capacity (0 = off)
    std::string accessLogPath; ///< --access-log: request JSONL

    // chaos
    std::uint64_t chaosSeed = 7;   ///< --seed
    std::size_t chaosRuns = 50;    ///< --runs: random-tier plans
    std::string reproOut;          ///< --repro-out: shrunk repro file
    std::string replayPath;        ///< --replay: repro file to re-run
    std::string plant;             ///< --plant: planted regression
    std::string workDir;           ///< --work-dir: scratch directory

    // report
    std::string reportMetrics; ///< --metrics: dump to render
    std::string reportTrace;   ///< --trace: trace JSONL to render
    std::string reportMonitor; ///< --monitor: event JSONL to render
    std::string reportSlo;     ///< --slo: SLO JSONL to render
    std::string reportAccess;  ///< --access: access-log JSONL
    std::string reportChaos;   ///< --chaos: campaign ledger JSONL
    bool reportHtml = false;   ///< --html: HTML instead of text
};

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: tomur_cli <command> [args]\n"
        "  catalog\n"
        "  solo <NF> [--flows N] [--size B] [--mtbr M]\n"
        "  train <NF> --out FILE [--quota Q] [--faults P]\n"
        "  predict <NF> --with A,B[,C] [--flows N] [--size B]\n"
        "          [--mtbr M] [--quota Q] [--model FILE]\n"
        "          [--faults P]\n"
        "  diagnose <NF> [--flows N] [--size B] [--mtbr M]\n"
        "          [--model FILE] [--faults P]\n"
        "  monitor <NF> [--schedule FILE] [--scenario FILE]\n"
        "          [--events-out FILE] [--bias F] [--bias-at K]\n"
        "          [--quota Q] [--model FILE] [--faults P]\n"
        "          [traffic opts]\n"
        "  autopilot <NF> [--checkpoint-dir DIR] [--resume]\n"
        "          [--checkpoint-every N] [--deadline-ms MS]\n"
        "          [--max-recalibrations N] [--crash-after N]\n"
        "          [--schedule FILE] [--scenario FILE]\n"
        "          [--events-out FILE] [--bias F] [--bias-at K]\n"
        "          [--quota Q] [--faults P] [traffic opts]\n"
        "  replay <NF> [--scenario FILE] [--profile-out FILE]\n"
        "          [autopilot opts] [traffic opts]\n"
        "  report [--metrics FILE] [--trace FILE]\n"
        "          [--monitor FILE] [--slo FILE] [--access FILE]\n"
        "          [--chaos FILE] [--out FILE] [--html]\n"
        "  chaos [NF] [--seed S] [--runs N] [--events-out FILE]\n"
        "          [--repro-out FILE] [--replay FILE]\n"
        "          [--plant NAME] [--work-dir DIR]\n"
        "  serve <NF> [--port P] [--bind ADDR] [--port-file FILE]\n"
        "          [--model FILE] [--quota Q] [--deadline-ms MS]\n"
        "          [--max-connections N] [--queue-depth N]\n"
        "          [--drain-ms MS] [--rate R] [--burst B]\n"
        "          [--access-log FILE] [--profile-out FILE]\n"
        "          [--faults P] [traffic opts]\n"
        "common options:\n"
        "  --trace-out FILE    write a JSONL span trace of the run\n"
        "  --metrics-out FILE  write a metrics registry text dump\n");
    std::exit(kExitUsage);
}

double
numArg(int argc, char **argv, int &i)
{
    if (i + 1 >= argc) {
        std::fprintf(stderr, "error: option '%s' needs a value\n",
                     argv[i]);
        usage();
    }
    const char *text = argv[++i];
    char *end = nullptr;
    double v = std::strtod(text, &end);
    if (end == text || *end != '\0') {
        std::fprintf(stderr,
                     "error: option '%s' needs a number, got '%s'\n",
                     argv[i - 1], text);
        usage();
    }
    return v;
}

std::string
strArg(int argc, char **argv, int &i)
{
    if (i + 1 >= argc) {
        std::fprintf(stderr, "error: option '%s' needs a value\n",
                     argv[i]);
        usage();
    }
    return argv[++i];
}

/** Reject unknown NF names before any heavy setup, with the catalog
 *  as the hint (instead of aborting deep inside the registry). */
void
requireKnownNf(const std::string &name)
{
    std::string known;
    for (const auto &info : nfs::catalog()) {
        if (info.name == name)
            return;
        if (!known.empty())
            known += ", ";
        known += info.name;
    }
    std::fprintf(stderr,
                 "error: unknown NF '%s' (known: %s)\n",
                 name.c_str(), known.c_str());
    std::exit(kExitUsage);
}

Cli
parse(int argc, char **argv)
{
    if (argc < 2)
        usage();
    Cli cli;
    cli.command = argv[1];
    int i = 2;
    if (cli.command == "chaos") {
        // The NF operand is optional (defaults to FlowStats).
        if (i < argc && argv[i][0] != '-')
            cli.nf = argv[i++];
    } else if (cli.command != "catalog" && cli.command != "report") {
        if (i >= argc) {
            std::fprintf(stderr, "error: command '%s' needs an NF\n",
                         cli.command.c_str());
            usage();
        }
        cli.nf = argv[i++];
    }
    for (; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--flows") {
            cli.profile = cli.profile.withAttribute(
                traffic::Attribute::FlowCount, numArg(argc, argv, i));
        } else if (arg == "--size") {
            cli.profile = cli.profile.withAttribute(
                traffic::Attribute::PacketSize,
                numArg(argc, argv, i));
        } else if (arg == "--mtbr") {
            cli.profile = cli.profile.withAttribute(
                traffic::Attribute::Mtbr, numArg(argc, argv, i));
        } else if (arg == "--quota") {
            cli.quota = static_cast<std::size_t>(
                numArg(argc, argv, i));
        } else if (arg == "--with") {
            cli.competitors = split(strArg(argc, argv, i), ',');
        } else if (arg == "--model") {
            cli.modelPath = strArg(argc, argv, i);
        } else if (arg == "--out") {
            cli.outPath = strArg(argc, argv, i);
        } else if (arg == "--trace-out") {
            cli.traceOut = strArg(argc, argv, i);
        } else if (arg == "--metrics-out") {
            cli.metricsOut = strArg(argc, argv, i);
        } else if (arg == "--schedule") {
            cli.schedulePath = strArg(argc, argv, i);
        } else if (arg == "--scenario") {
            cli.scenarioPath = strArg(argc, argv, i);
        } else if (arg == "--profile-out") {
            cli.profileOut = strArg(argc, argv, i);
        } else if (arg == "--events-out") {
            cli.eventsOut = strArg(argc, argv, i);
        } else if (arg == "--bias") {
            cli.biasFactor = numArg(argc, argv, i);
            if (cli.biasFactor <= 0.0) {
                std::fprintf(stderr,
                             "error: --bias expects a positive "
                             "factor, got %g\n",
                             cli.biasFactor);
                usage();
            }
        } else if (arg == "--bias-at") {
            cli.biasAt = static_cast<long>(numArg(argc, argv, i));
        } else if (arg == "--checkpoint-dir") {
            cli.checkpointDir = strArg(argc, argv, i);
        } else if (arg == "--resume") {
            cli.resume = true;
        } else if (arg == "--checkpoint-every") {
            cli.checkpointEvery =
                static_cast<std::size_t>(numArg(argc, argv, i));
        } else if (arg == "--deadline-ms") {
            cli.deadlineMs = numArg(argc, argv, i);
            if (cli.deadlineMs < 0.0) {
                std::fprintf(stderr,
                             "error: --deadline-ms expects a "
                             "non-negative budget, got %g\n",
                             cli.deadlineMs);
                usage();
            }
        } else if (arg == "--max-recalibrations") {
            cli.maxRecalibrations =
                static_cast<std::size_t>(numArg(argc, argv, i));
        } else if (arg == "--crash-after") {
            cli.crashAfter =
                static_cast<long>(numArg(argc, argv, i));
        } else if (arg == "--port") {
            cli.port = static_cast<int>(numArg(argc, argv, i));
            if (cli.port < 0 || cli.port > 65535) {
                std::fprintf(stderr,
                             "error: --port expects 0..65535, "
                             "got %d\n",
                             cli.port);
                usage();
            }
        } else if (arg == "--bind") {
            cli.bindAddress = strArg(argc, argv, i);
        } else if (arg == "--port-file") {
            cli.portFile = strArg(argc, argv, i);
        } else if (arg == "--max-connections") {
            cli.maxConnections =
                static_cast<std::size_t>(numArg(argc, argv, i));
        } else if (arg == "--queue-depth") {
            cli.queueDepth =
                static_cast<std::size_t>(numArg(argc, argv, i));
        } else if (arg == "--drain-ms") {
            cli.drainMs = numArg(argc, argv, i);
        } else if (arg == "--rate") {
            cli.rate = numArg(argc, argv, i);
        } else if (arg == "--burst") {
            cli.burst = numArg(argc, argv, i);
        } else if (arg == "--access-log") {
            cli.accessLogPath = strArg(argc, argv, i);
        } else if (arg == "--seed") {
            cli.chaosSeed =
                static_cast<std::uint64_t>(numArg(argc, argv, i));
        } else if (arg == "--runs") {
            cli.chaosRuns =
                static_cast<std::size_t>(numArg(argc, argv, i));
        } else if (arg == "--repro-out") {
            cli.reproOut = strArg(argc, argv, i);
        } else if (arg == "--replay") {
            cli.replayPath = strArg(argc, argv, i);
        } else if (arg == "--plant") {
            cli.plant = strArg(argc, argv, i);
        } else if (arg == "--work-dir") {
            cli.workDir = strArg(argc, argv, i);
        } else if (arg == "--metrics") {
            cli.reportMetrics = strArg(argc, argv, i);
        } else if (arg == "--trace") {
            cli.reportTrace = strArg(argc, argv, i);
        } else if (arg == "--monitor") {
            cli.reportMonitor = strArg(argc, argv, i);
        } else if (arg == "--slo") {
            cli.reportSlo = strArg(argc, argv, i);
        } else if (arg == "--access") {
            cli.reportAccess = strArg(argc, argv, i);
        } else if (arg == "--chaos") {
            cli.reportChaos = strArg(argc, argv, i);
        } else if (arg == "--html") {
            cli.reportHtml = true;
        } else if (arg == "--faults") {
            cli.faultRate = numArg(argc, argv, i);
            if (cli.faultRate < 0.0 || cli.faultRate > 1.0) {
                std::fprintf(stderr,
                             "error: --faults expects a rate in "
                             "[0, 1], got %g\n",
                             cli.faultRate);
                usage();
            }
        } else {
            std::fprintf(stderr, "error: unknown option '%s'\n",
                         arg.c_str());
            usage();
        }
    }
    return cli;
}

/** Lazily constructed heavy state. */
struct Env
{
    explicit Env(double fault_rate = 0.0)
        : rules(regex::defaultRuleSet()), bed(hw::blueField2()),
          faulty(bed, {})
    {
        dev.regex = std::make_shared<framework::RegexDevice>(rules);
        dev.compression =
            std::make_shared<framework::CompressionDevice>();
        dev.crypto = std::make_shared<framework::CryptoDevice>();
        // The bench library is always profiled on the clean testbed
        // (a one-time, controlled step even on a flaky NIC); the
        // fault rate only applies to the runs after it.
        lib = std::make_unique<core::BenchLibrary>(faulty, dev,
                                                   rules);
        trainer = std::make_unique<core::TomurTrainer>(*lib);
        if (fault_rate > 0.0) {
            faulty.setConfig(
                sim::FaultConfig::uniformCorruption(fault_rate));
            std::fprintf(stderr,
                         "injecting measurement faults at rate "
                         "%.2f\n",
                         fault_rate);
        }
    }

    regex::RuleSet rules;
    framework::DeviceSet dev;
    sim::Testbed bed;
    sim::FaultInjectingTestbed faulty;
    std::unique_ptr<core::BenchLibrary> lib;
    std::unique_ptr<core::TomurTrainer> trainer;
};

/** Load a persisted model, mapping failures to exit codes. */
core::TomurModel
loadModelOrExit(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "error: cannot open '%s': %s\n",
                     path.c_str(), std::strerror(errno));
        std::exit(kExitIo);
    }
    core::TomurModel model;
    if (auto st = model.load(in); !st) {
        std::fprintf(stderr, "error: model file '%s' is unusable: "
                             "%s\n",
                     path.c_str(), st.toString().c_str());
        std::exit(kExitCorruptModel);
    }
    return model;
}

/** Save a trained model, mapping failures to exit codes. */
void
saveModelOrExit(const core::TomurModel &model,
                const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        std::fprintf(stderr, "error: cannot create '%s': %s\n",
                     path.c_str(), std::strerror(errno));
        std::exit(kExitIo);
    }
    if (auto st = model.save(out); !st) {
        std::fprintf(stderr, "error: saving to '%s' failed: %s\n",
                     path.c_str(), st.toString().c_str());
        std::exit(kExitIo);
    }
    out.flush();
    if (!out) {
        std::fprintf(stderr, "error: writing '%s' failed: %s\n",
                     path.c_str(), std::strerror(errno));
        std::exit(kExitIo);
    }
}

/** Train (with screening tuned for the injected fault rate) or load
 *  the model for the target NF. */
core::TomurModel
obtainModel(Env &env, const Cli &cli,
            framework::NetworkFunction &nf)
{
    if (!cli.modelPath.empty())
        return loadModelOrExit(cli.modelPath);
    std::fprintf(stderr, "training model for %s (quota %zu)...\n",
                 cli.nf.c_str(), cli.quota);
    core::TrainOptions opts;
    opts.adaptive.quota = cli.quota;
    if (cli.faultRate > 0.0) {
        // Faulty testbed: also screen suspiciously low ratios by
        // repetition (the default screen only rejects implausible
        // values).
        opts.screen.verifyBelowRatio = 0.6;
    }
    core::TrainReport report;
    auto model = env.trainer->train(nf, cli.profile, opts, &report);
    if (report.faultySamplesDetected > 0) {
        std::fprintf(stderr,
                     "screened %zu faulty measurements (%zu "
                     "retries, %zu abandoned, %zu sub-models "
                     "degraded)\n",
                     report.faultySamplesDetected,
                     report.retriesUsed, report.samplesAbandoned,
                     report.subModelsDegraded);
    }
    return model;
}

int
cmdCatalog()
{
    std::printf("%-16s %-6s %-12s %-9s %s\n", "NF", "regex",
                "compression", "crypto", "traffic-sensitive");
    for (const auto &info : nfs::catalog()) {
        std::printf("%-16s %-6s %-12s %-9s %s\n", info.name.c_str(),
                    info.usesRegex ? "yes" : "-",
                    info.usesCompression ? "yes" : "-",
                    info.usesCrypto ? "yes" : "-",
                    info.trafficSensitive ? "yes" : "-");
    }
    return kExitOk;
}

int
cmdSolo(const Cli &cli)
{
    Env env(cli.faultRate);
    auto nf = nfs::makeByName(cli.nf, env.dev);
    auto m = env.faulty.runSolo(
        env.trainer->workloadOf(*nf, cli.profile));
    std::printf("%s @ %s: %.1f Kpps solo (bottleneck: %s)\n",
                cli.nf.c_str(), cli.profile.toString().c_str(),
                m.truthThroughput / 1e3,
                sim::bottleneckName(m.bottleneck));
    return kExitOk;
}

int
cmdTrain(const Cli &cli)
{
    if (cli.outPath.empty()) {
        std::fprintf(stderr, "error: train needs --out FILE\n");
        usage();
    }
    Env env(cli.faultRate);
    auto nf = nfs::makeByName(cli.nf, env.dev);
    auto model = obtainModel(env, cli, *nf);
    saveModelOrExit(model, cli.outPath);
    std::printf("model for %s written to %s%s\n", cli.nf.c_str(),
                cli.outPath.c_str(),
                model.health().anyDegraded()
                    ? " (degraded sub-models; see warnings)"
                    : "");
    return kExitOk;
}

int
cmdPredict(const Cli &cli)
{
    if (cli.competitors.empty()) {
        std::fprintf(stderr, "error: predict needs --with A,B,...\n");
        usage();
    }
    if (cli.competitors.size() > 3) {
        std::fprintf(stderr, "error: at most 3 competitors fit on "
                             "one NIC\n");
        usage();
    }
    for (const auto &name : cli.competitors)
        requireKnownNf(name);
    Env env(cli.faultRate);
    auto nf = nfs::makeByName(cli.nf, env.dev);
    auto model = obtainModel(env, cli, *nf);

    std::vector<core::ContentionLevel> levels;
    std::vector<framework::WorkloadProfile> deploy = {
        env.trainer->workloadOf(*nf, cli.profile)};
    auto defaults = traffic::TrafficProfile::defaults();
    for (const auto &name : cli.competitors) {
        auto comp = nfs::makeByName(name, env.dev);
        levels.push_back(env.trainer->contentionOf(*comp, defaults));
        deploy.push_back(env.trainer->workloadOf(*comp, defaults));
    }

    double solo = env.bed.runSolo(deploy[0]).truthThroughput;
    auto b = model.predictDetailed(levels, cli.profile, solo);
    auto measured = env.bed.run(deploy);

    std::printf("%s with {%s} @ %s\n", cli.nf.c_str(),
                join(cli.competitors, ", ").c_str(),
                cli.profile.toString().c_str());
    std::printf("  solo      : %10.1f Kpps\n", solo / 1e3);
    std::printf("  predicted : %10.1f Kpps (drop %.1f%%)\n",
                b.predicted / 1e3,
                100.0 * (1.0 - b.predicted / solo));
    std::printf("  measured  : %10.1f Kpps (error %.1f%%)\n",
                measured[0].throughput / 1e3,
                100.0 *
                    std::abs(b.predicted - measured[0].throughput) /
                    measured[0].throughput);
    if (b.degraded) {
        std::printf("  CAUTION   : degraded prediction "
                    "(confidence %.2f): %s\n",
                    b.confidence, b.degradedReason.c_str());
    }
    return kExitOk;
}

/** Reference contention: the heaviest large-WSS mem-bench plus a
 *  moderate bench on each accelerator the NF uses (shared by the
 *  diagnose and monitor commands). */
struct ReferenceContention
{
    std::vector<core::ContentionLevel> levels;
    std::vector<framework::WorkloadProfile> workloads;
};

ReferenceContention
referenceContention(Env &env, const framework::WorkloadProfile &w)
{
    const core::BenchLibrary::MemBenchEntry *mem =
        &env.lib->memBenches().front();
    for (const auto &e : env.lib->memBenches()) {
        if (e.config.wssBytes >= 12.0 * 1024 * 1024 &&
            e.level.counters.cacheAccessRate() >
                mem->level.counters.cacheAccessRate()) {
            mem = &e;
        }
    }
    ReferenceContention ref;
    ref.levels.push_back(mem->level);
    ref.workloads.push_back(mem->workload);
    struct
    {
        hw::AccelKind kind;
        double bytesPerSec;
    } accel[] = {
        {hw::AccelKind::Regex, 800.0},
        {hw::AccelKind::Compression, 8000.0},
        {hw::AccelKind::Crypto, 16000.0},
    };
    for (const auto &a : accel) {
        if (!w.usesAccel(a.kind))
            continue;
        const auto &entry =
            env.lib->accelBench(a.kind, 150e3, a.bytesPerSec);
        ref.levels.push_back(entry.level);
        ref.workloads.push_back(entry.workload);
    }
    return ref;
}

int
cmdDiagnose(const Cli &cli)
{
    Env env(cli.faultRate);
    auto nf = nfs::makeByName(cli.nf, env.dev);
    auto model = obtainModel(env, cli, *nf);

    const auto &w = env.trainer->workloadOf(*nf, cli.profile);
    auto levels = referenceContention(env, w).levels;

    double solo = env.bed.runSolo(w).truthThroughput;
    auto b = model.predictDetailed(levels, cli.profile, solo);
    std::printf("%s @ %s under reference contention:\n",
                cli.nf.c_str(), cli.profile.toString().c_str());
    std::printf("  solo                : %10.1f Kpps\n",
                b.soloThroughput / 1e3);
    std::printf("  memory-only         : %10.1f Kpps\n",
                b.memoryOnlyThroughput / 1e3);
    for (int k = 0; k < hw::numAccelKinds; ++k) {
        if (b.accelUsed[k]) {
            std::printf("  %-11s-only    : %10.1f Kpps\n",
                        hw::accelName(static_cast<hw::AccelKind>(k)),
                        b.accelOnlyThroughput[k] / 1e3);
        }
    }
    std::printf("  composed prediction : %10.1f Kpps\n",
                b.predicted / 1e3);
    std::printf("  dominant bottleneck : %s\n",
                usecases::resourceName(
                    usecases::tomurDiagnosis(b)));
    if (b.degraded) {
        std::printf("  CAUTION             : degraded prediction "
                    "(confidence %.2f): %s\n",
                    b.confidence, b.degradedReason.c_str());
    }
    return kExitOk;
}

/** Load --schedule / --scenario (or the built-in default), mapping
 *  failures to exit codes. --scenario goes through the nonstationary
 *  synthesizer DSL and is lowered onto the same ScheduleStep replay
 *  machinery. The `replay` command defaults to the composite stress
 *  scenario instead of the plain monitor schedule. */
std::vector<core::ScheduleStep>
loadScheduleOrExit(const Cli &cli)
{
    if (!cli.schedulePath.empty() && !cli.scenarioPath.empty()) {
        std::fprintf(stderr, "error: --schedule and --scenario are "
                             "mutually exclusive\n");
        std::exit(kExitUsage);
    }
    if (!cli.scenarioPath.empty()) {
        std::ifstream in(cli.scenarioPath);
        if (!in) {
            std::fprintf(stderr, "error: cannot open '%s': %s\n",
                         cli.scenarioPath.c_str(),
                         std::strerror(errno));
            std::exit(kExitIo);
        }
        auto parsed = traffic::parseScenario(in);
        if (!parsed) {
            std::fprintf(stderr, "error: %s\n",
                         parsed.status().toString().c_str());
            std::exit(kExitUsage);
        }
        return core::toSchedule(parsed.value());
    }
    if (cli.schedulePath.empty()) {
        if (cli.command == "replay") {
            return core::toSchedule(
                traffic::defaultComposite(cli.profile));
        }
        return core::defaultSchedule(cli.profile);
    }
    std::ifstream in(cli.schedulePath);
    if (!in) {
        std::fprintf(stderr, "error: cannot open '%s': %s\n",
                     cli.schedulePath.c_str(), std::strerror(errno));
        std::exit(kExitIo);
    }
    auto parsed = core::parseSchedule(in);
    if (!parsed) {
        std::fprintf(stderr, "error: %s\n",
                     parsed.status().toString().c_str());
        std::exit(kExitUsage);
    }
    return parsed.value();
}

int
cmdMonitor(const Cli &cli)
{
    Env env(cli.faultRate);
    auto nf = nfs::makeByName(cli.nf, env.dev);
    auto model = obtainModel(env, cli, *nf);

    std::vector<core::ScheduleStep> schedule =
        loadScheduleOrExit(cli);

    const auto &w = env.trainer->workloadOf(*nf, cli.profile);
    auto ref = referenceContention(env, w);

    core::PredictionMonitor monitor;
    core::ReplayContext ctx;
    ctx.trainer = env.trainer.get();
    ctx.model = &model;
    ctx.nf = nf.get();
    ctx.levels = ref.levels;
    ctx.competitors = ref.workloads;
    ctx.soloBed = &env.bed;
    ctx.measureBed = &env.faulty;
    ctx.label = cli.nf;

    core::ReplayOptions ropts;
    ropts.biasAtSample = cli.biasAt;
    ropts.biasFactor = cli.biasFactor;

    auto res = core::replaySchedule(ctx, schedule, monitor, ropts);

    if (!cli.eventsOut.empty()) {
        std::ofstream out(cli.eventsOut);
        if (out)
            monitor.exportJsonl(out);
        if (!out) {
            std::fprintf(stderr,
                         "error: cannot write events to '%s': %s\n",
                         cli.eventsOut.c_str(),
                         std::strerror(errno));
            return kExitIo;
        }
    }

    const auto &sum = res.summary;
    std::printf("%s: %zu samples replayed (%zu invalid, "
                "%.1f%% degraded)\n",
                cli.nf.c_str(), sum.samples, sum.invalidSamples,
                100.0 * sum.degradedRate);
    std::printf("  |rel error|: ewma %.4f, mean %.4f, "
                "p50/p90/p99 %.4f/%.4f/%.4f\n",
                sum.ewmaAbsError, sum.meanAbsError, sum.p50,
                sum.p90, sum.p99);
    std::printf("  events: %zu total\n", res.events);
    for (int k = 0; k < core::numMonitorEventKinds; ++k) {
        if (sum.eventCounts[k] == 0)
            continue;
        std::printf("    %-26s %zu\n",
                    core::monitorEventName(
                        static_cast<core::MonitorEventKind>(k)),
                    sum.eventCounts[k]);
    }
    for (const auto &ev : monitor.events())
        std::printf("  %s\n", ev.toJson().c_str());
    return kExitOk;
}

/** Shared driver for `autopilot` and `replay`. Replay mode attaches
 *  the sampling profiler and reports the time-to-recovery rollup. */
int
runSupervisedReplay(const Cli &cli, bool replayMode)
{
    // Install SIGTERM/SIGINT -> flag handlers before any heavy work:
    // a signal during initial training is remembered and honoured at
    // the first sample instead of killing the process mid-setup.
    serve::installShutdownHandlers();

    Env env(cli.faultRate);
    auto nf = nfs::makeByName(cli.nf, env.dev);

    std::unique_ptr<CheckpointStore> store;
    if (!cli.checkpointDir.empty())
        store = std::make_unique<CheckpointStore>(cli.checkpointDir);

    // A resumable run gets its model (and all detector state) from
    // the checkpoint; only a fresh start pays for training.
    bool haveCheckpoint = cli.resume && store != nullptr &&
                          !store->listGenerations().empty();
    core::TomurModel model;
    if (!haveCheckpoint)
        model = obtainModel(env, cli, *nf);

    std::vector<core::ScheduleStep> schedule =
        loadScheduleOrExit(cli);

    const auto &w = env.trainer->workloadOf(*nf, cli.profile);
    auto ref = referenceContention(env, w);

    core::PredictionMonitor monitor;
    core::ReplayContext ctx;
    ctx.trainer = env.trainer.get();
    ctx.model = &model;
    ctx.nf = nf.get();
    ctx.levels = ref.levels;
    ctx.competitors = ref.workloads;
    ctx.soloBed = &env.bed;
    ctx.measureBed = &env.faulty;
    ctx.label = cli.nf;

    if (cli.crashAfter >= 0) {
        auto cfg = env.faulty.faultConfig();
        cfg.crashAfterBatches = cli.crashAfter;
        env.faulty.setConfig(cfg);
        std::fprintf(stderr,
                     "chaos: will crash after %ld batches\n",
                     cli.crashAfter);
    }

    // Recalibration = full retrain through the (possibly faulty,
    // possibly biased) measurement path, under the optional wall-
    // clock deadline. Degraded sub-models count as failure — the
    // breaker should not close on a model that is itself limping.
    core::TrainOptions topts;
    topts.adaptive.quota = cli.quota;
    if (cli.faultRate > 0.0)
        topts.screen.verifyBelowRatio = 0.6;
    auto recalibrate = [&](std::size_t sample,
                           std::string *detail) -> Status {
        (void)sample;
        core::TrainReport report;
        core::TomurModel fresh;
        if (cli.deadlineMs > 0.0) {
            Deadline dl = Deadline::afterMillis(cli.deadlineMs);
            ScopedDeadline scope(dl);
            fresh = env.trainer->train(*nf, cli.profile, topts,
                                       &report);
        } else {
            fresh = env.trainer->train(*nf, cli.profile, topts,
                                       &report);
        }
        if (report.subModelsDegraded > 0 ||
            fresh.health().anyDegraded()) {
            return Status::unavailable(
                strf("retrain left %zu sub-models degraded",
                     report.subModelsDegraded));
        }
        model = std::move(fresh);
        if (detail != nullptr) {
            *detail = strf("retrained (%zu memory samples, %zu "
                           "faulty screened)",
                           report.memorySamples,
                           report.faultySamplesDetected);
        }
        return Status::ok();
    };

    core::SupervisorOptions sopts;
    sopts.maxRecalibrations = cli.maxRecalibrations;
    core::Supervisor supervisor(sopts, recalibrate);

    core::AutopilotOptions aopts;
    aopts.replay.biasAtSample = cli.biasAt;
    aopts.replay.biasFactor = cli.biasFactor;
    aopts.checkpointEverySamples =
        store != nullptr ? cli.checkpointEvery : 0;
    aopts.resume = cli.resume;
    // SIGTERM/SIGINT ends the run cleanly: the loop writes a final
    // checkpoint and returns, instead of dying mid-generation.
    aopts.stopRequested = serve::shutdownRequested;
    SamplingProfiler profiler;
    if (replayMode)
        aopts.profiler = &profiler;

    auto res = core::runAutopilot(ctx, schedule, monitor,
                                  supervisor, store.get(), aopts);
    if (!res) {
        std::fprintf(stderr, "error: %s\n",
                     res.status().toString().c_str());
        switch (res.status().code()) {
          case StatusCode::CorruptData:
            return kExitCorruptModel;
          case StatusCode::IoError:
            return kExitIo;
          default:
            return kExitRuntime;
        }
    }

    if (!cli.eventsOut.empty()) {
        std::ofstream out(cli.eventsOut);
        if (out) {
            monitor.exportJsonl(out);
            supervisor.exportJsonl(out);
        }
        if (!out) {
            std::fprintf(stderr,
                         "error: cannot write events to '%s': %s\n",
                         cli.eventsOut.c_str(),
                         std::strerror(errno));
            return kExitIo;
        }
    }

    const auto &r = res.value();
    const auto &sup = r.supervisorSummary;
    if (r.stoppedEarly) {
        std::printf("%s: stopped by signal at sample %zu/%zu "
                    "(final checkpoint %s)\n",
                    cli.nf.c_str(), r.stoppedAtSample, r.samples,
                    store != nullptr ? "written" : "skipped: no "
                                                   "--checkpoint-dir");
    }
    std::printf("%s: %zu samples supervised (%zu resumed past), "
                "breaker %s\n",
                cli.nf.c_str(), r.samples, r.startSample,
                core::breakerStateName(sup.state));
    std::printf("  recalibrations: %zu attempted, %zu succeeded, "
                "%zu failed (%zu breaker trips)\n",
                sup.recalibrationsAttempted,
                sup.recalibrationsSucceeded,
                sup.recalibrationsFailed, sup.breakerTrips);
    std::printf("  deadline misses: %zu\n", sup.deadlineMisses);
    std::printf("  |rel error|: ewma %.4f, mean %.4f\n",
                r.monitorSummary.ewmaAbsError,
                r.monitorSummary.meanAbsError);
    for (int k = 0; k < core::numSupervisorEventKinds; ++k) {
        if (sup.eventCounts[k] == 0)
            continue;
        std::printf("    %-26s %zu\n",
                    core::supervisorEventName(
                        static_cast<core::SupervisorEventKind>(k)),
                    sup.eventCounts[k]);
    }
    const auto &mon = r.monitorSummary;
    if (replayMode || mon.recoveries > 0 || mon.recoveryOpen) {
        std::printf("  recovery: %zu regime changes recovered "
                    "(mean %.1f samples, max %zu)%s\n",
                    mon.recoveries, mon.meanRecoverySamples,
                    mon.maxRecoverySamples,
                    mon.recoveryOpen ? "; one regime still open"
                                     : "");
    }
    if (replayMode) {
        std::printf("  profiler: %llu tokens, %llu sampled "
                    "(%llu dropped from ring)\n",
                    static_cast<unsigned long long>(
                        profiler.tokens()),
                    static_cast<unsigned long long>(
                        profiler.sampledTokens()),
                    static_cast<unsigned long long>(
                        profiler.droppedTokens()));
    }
    if (!cli.profileOut.empty()) {
        std::ofstream out(cli.profileOut);
        if (out)
            profiler.exportText(out);
        if (!out) {
            std::fprintf(stderr,
                         "error: cannot write profile to '%s': %s\n",
                         cli.profileOut.c_str(),
                         std::strerror(errno));
            return kExitIo;
        }
    }
    return kExitOk;
}

int
cmdAutopilot(const Cli &cli)
{
    return runSupervisedReplay(cli, /*replayMode=*/false);
}

int
cmdReplay(const Cli &cli)
{
    return runSupervisedReplay(cli, /*replayMode=*/true);
}

int
cmdServe(const Cli &cli)
{
    Env env(cli.faultRate);
    auto nf = nfs::makeByName(cli.nf, env.dev);
    auto model = obtainModel(env, cli, *nf);

    // Reference contention is captured once, up front: the request
    // hot path predicts against these levels and never touches a
    // testbed, so a /predict costs microseconds.
    const auto &w = env.trainer->workloadOf(*nf, cli.profile);
    auto ref = referenceContention(env, w);

    serve::ModelRegistry registry;
    registry.install(std::move(model), cli.modelPath.empty()
                                           ? "trained"
                                           : cli.modelPath);
    serve::ModelService service(registry, ref.levels, cli.nf);

    // The observatory rides the single-threaded core: the server
    // writes it (access log, SLO folds, phase profiling), /debug
    // reads it. The tracer gets a bounded ring so /debug/trace has
    // recent spans without unbounded daemon memory.
    SamplingProfiler profiler;
    serve::ServerObservatory observatory;
    observatory.profiler = &profiler;
    std::ofstream accessOut;
    if (!cli.accessLogPath.empty()) {
        accessOut.open(cli.accessLogPath);
        if (!accessOut) {
            std::fprintf(
                stderr,
                "error: cannot write access log '%s': %s\n",
                cli.accessLogPath.c_str(), std::strerror(errno));
            return kExitIo;
        }
        observatory.accessSink =
            [&accessOut](const serve::AccessRecord &rec) {
                accessOut << serve::AccessLog::formatRecord(
                                 rec, /*canonical=*/false)
                          << "\n";
            };
    }
    if (!tracer().enabled())
        tracer().enable(1 << 14);
    service.attachObservatory(&observatory);

    serve::ServeOptions sopts;
    sopts.maxConnections = cli.maxConnections;
    sopts.maxQueueDepth = cli.queueDepth;
    sopts.requestDeadlineMs = cli.deadlineMs;
    sopts.bucketCapacity = cli.burst;
    serve::Server core(sopts, service);
    core.setObservatory(&observatory);

    serve::EpollOptions eopts;
    eopts.bindAddress = cli.bindAddress;
    eopts.port = cli.port;
    eopts.drainDeadlineMs = cli.drainMs;
    eopts.bucketRefillPerSec = cli.rate;
    serve::EpollServer daemon(core, eopts);
    if (!daemon.status().isOk()) {
        std::fprintf(stderr, "error: %s\n",
                     daemon.status().toString().c_str());
        return kExitIo;
    }

    if (!cli.portFile.empty()) {
        // Scripts binding port 0 discover the choice here; written
        // before run() so pollers see it as soon as we can serve.
        std::ofstream out(cli.portFile);
        if (out)
            out << daemon.boundPort() << "\n";
        if (!out) {
            std::fprintf(stderr,
                         "error: cannot write port file '%s': %s\n",
                         cli.portFile.c_str(), std::strerror(errno));
            return kExitIo;
        }
    }

    serve::installShutdownHandlers();
    Status st = daemon.run();

    const auto &s = core.stats();
    std::printf("served %zu requests (%zu shed, %zu throttled, "
                "%zu deadline misses, %zu parse errors, "
                "%zu internal errors)\n",
                s.requestsHandled, s.shed + s.acceptShed,
                s.throttled, s.deadlineMisses, s.parseErrors,
                s.internalErrors);
    for (const auto &slo : observatory.slo.states()) {
        std::printf("  slo %s: %llu/%llu bad, budget %.2f "
                    "remaining, %llu burns / %llu recoveries%s\n",
                    slo.name.c_str(),
                    static_cast<unsigned long long>(slo.bad),
                    static_cast<unsigned long long>(slo.total),
                    slo.budgetRemaining,
                    static_cast<unsigned long long>(slo.burnEvents),
                    static_cast<unsigned long long>(
                        slo.recoveredEvents),
                    slo.burning ? " (still burning)" : "");
    }
    if (!cli.profileOut.empty()) {
        std::ofstream out(cli.profileOut);
        if (out)
            profiler.exportText(out);
        if (!out) {
            std::fprintf(stderr,
                         "error: cannot write profile to '%s': %s\n",
                         cli.profileOut.c_str(),
                         std::strerror(errno));
            return kExitIo;
        }
    }
    if (!st.isOk()) {
        std::fprintf(stderr, "error: %s\n", st.toString().c_str());
        return kExitRuntime;
    }
    return kExitOk;
}

/** Read a whole file; empty path -> empty body, missing file -> exit
 *  with an I/O error naming the artifact. */
std::string
readArtifactOrExit(const std::string &path, const char *what)
{
    if (path.empty())
        return "";
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "error: cannot open %s '%s': %s\n",
                     what, path.c_str(), std::strerror(errno));
        std::exit(kExitIo);
    }
    std::ostringstream body;
    body << in.rdbuf();
    return body.str();
}

int
cmdChaos(const Cli &cli)
{
    chaos::ChaosWorld world(cli.nf.empty() ? "FlowStats" : cli.nf);
    chaos::RunnerOptions ropts;
    ropts.workDir = cli.workDir;
    if (ropts.workDir.empty()) {
        ropts.workDir =
            (std::filesystem::temp_directory_path() / "tomur-chaos")
                .string();
    }
    ropts.plant = cli.plant;

    if (!cli.replayPath.empty()) {
        std::ifstream in(cli.replayPath);
        if (!in) {
            std::fprintf(stderr,
                         "error: cannot read repro '%s': %s\n",
                         cli.replayPath.c_str(),
                         std::strerror(errno));
            return kExitIo;
        }
        auto plan = chaos::parsePlan(in);
        if (!plan) {
            std::fprintf(stderr, "error: bad repro file: %s\n",
                         plan.status().toString().c_str());
            return kExitUsage;
        }
        auto outcome = chaos::runPlan(world, plan.value(), ropts);
        auto verdicts = chaos::checkInvariants(
            plan.value(), outcome, ropts.invariants);
        std::size_t violations = 0;
        std::printf("replay %s: seed=%llu target=%s actions=%zu "
                    "samples=%zu crashes=%zu stream=%016llx\n",
                    cli.replayPath.c_str(),
                    static_cast<unsigned long long>(
                        plan.value().seed),
                    chaos::planTargetName(plan.value().target),
                    plan.value().actions.size(), outcome.samples,
                    outcome.crashes,
                    static_cast<unsigned long long>(
                        outcome.streamHash));
        for (const auto &v : verdicts) {
            std::printf("  %-22s %s%s%s\n",
                        chaos::invariantName(v.kind),
                        v.passed ? "pass" : "FAIL",
                        v.passed ? "" : " — ",
                        v.detail.c_str());
            violations += v.passed ? 0 : 1;
        }
        return violations == 0 ? kExitOk : kExitRuntime;
    }

    chaos::CampaignOptions copts;
    copts.seed = cli.chaosSeed;
    copts.runs = cli.chaosRuns;
    copts.runner = ropts;
    auto result = chaos::runCampaign(world, copts);

    std::printf("chaos campaign: %zu plans, %zu violations "
                "(%zu plans), %zu crashes, %zu resumes, "
                "%zu faults injected, %zu determinism re-runs\n",
                result.plans, result.violations,
                result.violatingPlans, result.crashes,
                result.resumes, result.faultsInjected,
                result.determinismReruns);
    for (int k = 0; k < chaos::numInvariants; ++k) {
        std::printf("  %-22s %s\n",
                    chaos::invariantName(
                        static_cast<chaos::InvariantKind>(k)),
                    result.invariantFailures[k] == 0
                        ? "pass"
                        : strf("FAIL x%zu",
                               result.invariantFailures[k])
                              .c_str());
    }
    if (result.haveRepro) {
        std::printf("first violation: plan %zu, %s — %s "
                    "(shrunk to %zu actions in %zu probe runs)\n",
                    result.firstViolationIndex,
                    chaos::invariantName(result.firstViolationKind),
                    result.firstViolationDetail.c_str(),
                    result.shrunkPlan.actions.size(),
                    result.shrinkIterations);
        if (!cli.reproOut.empty()) {
            std::ofstream out(cli.reproOut);
            if (out)
                out << result.reproText;
            if (!out) {
                std::fprintf(stderr,
                             "error: cannot write repro to "
                             "'%s': %s\n",
                             cli.reproOut.c_str(),
                             std::strerror(errno));
                return kExitIo;
            }
            std::printf("repro written to %s\n",
                        cli.reproOut.c_str());
        }
    }
    if (!cli.eventsOut.empty()) {
        std::ofstream out(cli.eventsOut);
        if (out)
            out << result.jsonl;
        if (!out) {
            std::fprintf(stderr,
                         "error: cannot write campaign ledger to "
                         "'%s': %s\n",
                         cli.eventsOut.c_str(),
                         std::strerror(errno));
            return kExitIo;
        }
    }
    return result.violations == 0 ? kExitOk : kExitRuntime;
}

int
cmdReport(const Cli &cli)
{
    ReportArtifacts artifacts;
    artifacts.metricsText =
        readArtifactOrExit(cli.reportMetrics, "metrics dump");
    artifacts.traceJsonl =
        readArtifactOrExit(cli.reportTrace, "trace export");
    artifacts.monitorJsonl =
        readArtifactOrExit(cli.reportMonitor, "monitor stream");
    artifacts.sloJsonl =
        readArtifactOrExit(cli.reportSlo, "SLO stream");
    artifacts.accessJsonl =
        readArtifactOrExit(cli.reportAccess, "access log");
    artifacts.chaosJsonl =
        readArtifactOrExit(cli.reportChaos, "chaos ledger");

    ReportOptions ropts;
    ropts.html = cli.reportHtml;
    auto rendered = renderReport(artifacts, ropts);
    if (!rendered) {
        std::fprintf(stderr, "error: %s\n",
                     rendered.status().toString().c_str());
        return kExitUsage;
    }
    if (cli.outPath.empty()) {
        std::fputs(rendered.value().c_str(), stdout);
        return kExitOk;
    }
    std::ofstream out(cli.outPath);
    if (out)
        out << rendered.value();
    if (!out) {
        std::fprintf(stderr,
                     "error: cannot write report to '%s': %s\n",
                     cli.outPath.c_str(), std::strerror(errno));
        return kExitIo;
    }
    std::printf("report written to %s\n", cli.outPath.c_str());
    return kExitOk;
}

/** Dispatch under a root `cli.<command>` span. */
int
runCommand(const Cli &cli)
{
    std::string root = "cli." + cli.command;
    TraceSpan span(root.c_str());
    if (!cli.nf.empty())
        span.field("nf", cli.nf);
    if (cli.command == "catalog")
        return cmdCatalog();
    if (cli.command == "solo")
        return cmdSolo(cli);
    if (cli.command == "train")
        return cmdTrain(cli);
    if (cli.command == "predict")
        return cmdPredict(cli);
    if (cli.command == "diagnose")
        return cmdDiagnose(cli);
    if (cli.command == "monitor")
        return cmdMonitor(cli);
    if (cli.command == "autopilot")
        return cmdAutopilot(cli);
    if (cli.command == "replay")
        return cmdReplay(cli);
    if (cli.command == "chaos")
        return cmdChaos(cli);
    if (cli.command == "report")
        return cmdReport(cli);
    if (cli.command == "serve")
        return cmdServe(cli);
    std::fprintf(stderr, "error: unknown command '%s'\n",
                 cli.command.c_str());
    usage();
}

/** Write the trace / metrics files requested on the command line. */
int
writeObservability(const Cli &cli)
{
    int rc = kExitOk;
    if (!cli.traceOut.empty()) {
        std::ofstream out(cli.traceOut);
        if (out)
            tracer().exportJsonl(out);
        if (!out) {
            std::fprintf(stderr,
                         "error: cannot write trace to '%s': %s\n",
                         cli.traceOut.c_str(),
                         std::strerror(errno));
            rc = kExitIo;
        }
    }
    if (!cli.metricsOut.empty()) {
        std::ofstream out(cli.metricsOut);
        if (out)
            metrics().dump(out);
        if (!out) {
            std::fprintf(stderr,
                         "error: cannot write metrics to '%s': %s\n",
                         cli.metricsOut.c_str(),
                         std::strerror(errno));
            rc = kExitIo;
        }
    }
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli = parse(argc, argv);
    if (cli.command != "catalog" && !cli.nf.empty())
        requireKnownNf(cli.nf);
    if (!cli.traceOut.empty())
        tracer().enable();
    // Top-level containment: anything that escapes a command is an
    // internal error, reported as a structured event (greppable by
    // the same monitors that watch warnEvent streams) with its own
    // exit code — never a raw terminate(). SimulatedCrash is the
    // chaos harness's kill switch and gets its own event name so
    // crash-resume scripts can tell a planned kill from a real bug.
    try {
        // Root span must close before export, hence the helper scope.
        int rc = runCommand(cli);
        int obs_rc = writeObservability(cli);
        return rc != kExitOk ? rc : obs_rc;
    } catch (const SimulatedCrash &e) {
        warnEvent("cli", "simulated-crash",
                  {{"command", cli.command}, {"what", e.what()}});
        writeObservability(cli);
        return kExitInternal;
    } catch (const std::exception &e) {
        warnEvent("cli", "uncaught-exception",
                  {{"command", cli.command},
                   {"type", typeid(e).name()},
                   {"what", e.what()}});
        return kExitInternal;
    } catch (...) {
        warnEvent("cli", "uncaught-exception",
                  {{"command", cli.command},
                   {"what", "non-standard exception"}});
        return kExitInternal;
    }
}
