/**
 * @file
 * tomur — command-line front end to the prediction library.
 *
 * Subcommands:
 *   catalog                         list the NF catalog
 *   solo <NF> [traffic opts]        measured solo throughput
 *   predict <NF> --with A,B,...     predict under co-location and
 *                                   compare against a deployment
 *   diagnose <NF> [traffic opts]    per-resource breakdown
 *
 * Traffic options: --flows N --size B --mtbr M (defaults 16000 /
 * 1500 / 600). All runs happen on the built-in BlueField-2 testbed;
 * training uses a reduced quota so invocations stay interactive.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "nfs/registry.hh"
#include "regex/ruleset.hh"
#include "tomur/profiler.hh"
#include "usecases/diagnosis.hh"

using namespace tomur;

namespace {

struct Cli
{
    std::string command;
    std::string nf;
    std::vector<std::string> competitors;
    traffic::TrafficProfile profile;
    std::size_t quota = 80;
};

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: tomur_cli <command> [args]\n"
        "  catalog\n"
        "  solo <NF> [--flows N] [--size B] [--mtbr M]\n"
        "  predict <NF> --with A,B[,C] [--flows N] [--size B]\n"
        "          [--mtbr M] [--quota Q]\n"
        "  diagnose <NF> [--flows N] [--size B] [--mtbr M]\n");
    std::exit(2);
}

double
numArg(int argc, char **argv, int &i)
{
    if (i + 1 >= argc)
        usage();
    return std::atof(argv[++i]);
}

Cli
parse(int argc, char **argv)
{
    if (argc < 2)
        usage();
    Cli cli;
    cli.command = argv[1];
    int i = 2;
    if (cli.command != "catalog") {
        if (i >= argc)
            usage();
        cli.nf = argv[i++];
    }
    for (; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--flows") {
            cli.profile = cli.profile.withAttribute(
                traffic::Attribute::FlowCount, numArg(argc, argv, i));
        } else if (arg == "--size") {
            cli.profile = cli.profile.withAttribute(
                traffic::Attribute::PacketSize,
                numArg(argc, argv, i));
        } else if (arg == "--mtbr") {
            cli.profile = cli.profile.withAttribute(
                traffic::Attribute::Mtbr, numArg(argc, argv, i));
        } else if (arg == "--quota") {
            cli.quota = static_cast<std::size_t>(
                numArg(argc, argv, i));
        } else if (arg == "--with") {
            if (i + 1 >= argc)
                usage();
            cli.competitors = split(argv[++i], ',');
        } else {
            std::fprintf(stderr, "unknown option '%s'\n",
                         arg.c_str());
            usage();
        }
    }
    return cli;
}

/** Lazily constructed heavy state. */
struct Env
{
    Env()
        : rules(regex::defaultRuleSet()), bed(hw::blueField2())
    {
        dev.regex = std::make_shared<framework::RegexDevice>(rules);
        dev.compression =
            std::make_shared<framework::CompressionDevice>();
        dev.crypto = std::make_shared<framework::CryptoDevice>();
        lib = std::make_unique<core::BenchLibrary>(bed, dev, rules);
        trainer = std::make_unique<core::TomurTrainer>(*lib);
    }

    regex::RuleSet rules;
    framework::DeviceSet dev;
    sim::Testbed bed;
    std::unique_ptr<core::BenchLibrary> lib;
    std::unique_ptr<core::TomurTrainer> trainer;
};

int
cmdCatalog()
{
    std::printf("%-16s %-6s %-12s %-9s %s\n", "NF", "regex",
                "compression", "crypto", "traffic-sensitive");
    for (const auto &info : nfs::catalog()) {
        std::printf("%-16s %-6s %-12s %-9s %s\n", info.name.c_str(),
                    info.usesRegex ? "yes" : "-",
                    info.usesCompression ? "yes" : "-",
                    info.usesCrypto ? "yes" : "-",
                    info.trafficSensitive ? "yes" : "-");
    }
    return 0;
}

int
cmdSolo(const Cli &cli)
{
    Env env;
    auto nf = nfs::makeByName(cli.nf, env.dev);
    auto m = env.bed.runSolo(
        env.trainer->workloadOf(*nf, cli.profile));
    std::printf("%s @ %s: %.1f Kpps solo (bottleneck: %s)\n",
                cli.nf.c_str(), cli.profile.toString().c_str(),
                m.truthThroughput / 1e3,
                sim::bottleneckName(m.bottleneck));
    return 0;
}

int
cmdPredict(const Cli &cli)
{
    if (cli.competitors.empty())
        fatal("predict: pass --with A,B,...");
    if (cli.competitors.size() > 3)
        fatal("predict: at most 3 competitors fit on one NIC");
    Env env;
    auto nf = nfs::makeByName(cli.nf, env.dev);

    std::fprintf(stderr, "training model for %s (quota %zu)...\n",
                 cli.nf.c_str(), cli.quota);
    core::TrainOptions opts;
    opts.adaptive.quota = cli.quota;
    auto model = env.trainer->train(*nf, cli.profile, opts);

    std::vector<core::ContentionLevel> levels;
    std::vector<framework::WorkloadProfile> deploy = {
        env.trainer->workloadOf(*nf, cli.profile)};
    auto defaults = traffic::TrafficProfile::defaults();
    for (const auto &name : cli.competitors) {
        auto comp = nfs::makeByName(name, env.dev);
        levels.push_back(env.trainer->contentionOf(*comp, defaults));
        deploy.push_back(env.trainer->workloadOf(*comp, defaults));
    }

    double solo =
        env.bed.runSolo(deploy[0]).truthThroughput;
    double predicted = model.predict(levels, cli.profile, solo);
    auto measured = env.bed.run(deploy);

    std::printf("%s with {%s} @ %s\n", cli.nf.c_str(),
                join(cli.competitors, ", ").c_str(),
                cli.profile.toString().c_str());
    std::printf("  solo      : %10.1f Kpps\n", solo / 1e3);
    std::printf("  predicted : %10.1f Kpps (drop %.1f%%)\n",
                predicted / 1e3,
                100.0 * (1.0 - predicted / solo));
    std::printf("  measured  : %10.1f Kpps (error %.1f%%)\n",
                measured[0].throughput / 1e3,
                100.0 *
                    std::abs(predicted - measured[0].throughput) /
                    measured[0].throughput);
    return 0;
}

int
cmdDiagnose(const Cli &cli)
{
    Env env;
    auto nf = nfs::makeByName(cli.nf, env.dev);
    std::fprintf(stderr, "training model for %s...\n",
                 cli.nf.c_str());
    core::TrainOptions opts;
    opts.adaptive.quota = cli.quota;
    auto model = env.trainer->train(*nf, cli.profile, opts);

    // Reference contention: the heaviest large-WSS mem-bench plus a
    // moderate bench on each accelerator the NF uses.
    const core::BenchLibrary::MemBenchEntry *mem =
        &env.lib->memBenches().front();
    for (const auto &e : env.lib->memBenches()) {
        if (e.config.wssBytes >= 12.0 * 1024 * 1024 &&
            e.level.counters.cacheAccessRate() >
                mem->level.counters.cacheAccessRate()) {
            mem = &e;
        }
    }
    std::vector<core::ContentionLevel> levels = {mem->level};
    const auto &w = env.trainer->workloadOf(*nf, cli.profile);
    if (w.usesAccel(hw::AccelKind::Regex)) {
        levels.push_back(env.lib
                             ->accelBench(hw::AccelKind::Regex,
                                          150e3, 800.0)
                             .level);
    }
    if (w.usesAccel(hw::AccelKind::Compression)) {
        levels.push_back(env.lib
                             ->accelBench(hw::AccelKind::Compression,
                                          150e3, 8000.0)
                             .level);
    }
    if (w.usesAccel(hw::AccelKind::Crypto)) {
        levels.push_back(env.lib
                             ->accelBench(hw::AccelKind::Crypto,
                                          150e3, 16000.0)
                             .level);
    }

    double solo = env.bed.runSolo(w).truthThroughput;
    auto b = model.predictDetailed(levels, cli.profile, solo);
    std::printf("%s @ %s under reference contention:\n",
                cli.nf.c_str(), cli.profile.toString().c_str());
    std::printf("  solo                : %10.1f Kpps\n",
                b.soloThroughput / 1e3);
    std::printf("  memory-only         : %10.1f Kpps\n",
                b.memoryOnlyThroughput / 1e3);
    for (int k = 0; k < hw::numAccelKinds; ++k) {
        if (b.accelUsed[k]) {
            std::printf("  %-11s-only    : %10.1f Kpps\n",
                        hw::accelName(static_cast<hw::AccelKind>(k)),
                        b.accelOnlyThroughput[k] / 1e3);
        }
    }
    std::printf("  composed prediction : %10.1f Kpps\n",
                b.predicted / 1e3);
    std::printf("  dominant bottleneck : %s\n",
                usecases::resourceName(
                    usecases::tomurDiagnosis(b)));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli = parse(argc, argv);
    if (cli.command == "catalog")
        return cmdCatalog();
    if (cli.command == "solo")
        return cmdSolo(cli);
    if (cli.command == "predict")
        return cmdPredict(cli);
    if (cli.command == "diagnose")
        return cmdDiagnose(cli);
    usage();
}
