#!/bin/sh
# Regenerate the golden observability fixtures in tests/golden/
# (canonical trace export + filtered metrics dump of the fixed
# scenario in tests/test_telemetry.cc, the monitor event stream of
# the fixed replay plus the nonstationary-scenario replay in
# tests/test_monitor.cc, the autopilot monitor+supervisor event
# stream of the crash/resume scenario in tests/test_supervisor.cc,
# the serving observatory's canonical access-log + SLO + trace
# streams of the fixed server scenario in tests/test_serve.cc, and
# the chaos-campaign JSONL ledger of the fixed seeded campaign in
# tests/test_chaos.cc).
#
# Run this after intentionally changing instrumentation (new spans,
# new fields, new metrics) and commit the updated fixtures together
# with the code change — then review the fixture diff like any other
# diff: it IS the observable behaviour change.
#
# Usage: tools/update_goldens.sh
# Uses the regular build/ directory next to the repo root.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir="$repo_root/build"

cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j "$(nproc 2>/dev/null || echo 4)" \
    --target test_telemetry test_monitor test_supervisor \
    --target test_serve test_chaos

# The serial run writes the fixtures; the wide run then re-runs the
# scenario at TOMUR_THREADS=8 and asserts it reproduces them
# byte-for-byte, so a nondeterministic scenario cannot be committed.
TOMUR_UPDATE_GOLDENS=1 "$build_dir/tests/test_telemetry" \
    --gtest_filter='GoldenTrace.*'
TOMUR_UPDATE_GOLDENS=1 "$build_dir/tests/test_monitor" \
    --gtest_filter='MonitorGolden.*:ReplayGolden.*'
TOMUR_UPDATE_GOLDENS=1 "$build_dir/tests/test_supervisor" \
    --gtest_filter='AutopilotGolden.*'
TOMUR_UPDATE_GOLDENS=1 "$build_dir/tests/test_serve" \
    --gtest_filter='ServeObservatoryGolden.*'
TOMUR_UPDATE_GOLDENS=1 "$build_dir/tests/test_chaos" \
    --gtest_filter='ChaosGolden.*'

echo ""
echo "updated fixtures:"
git -C "$repo_root" status --short tests/golden/
