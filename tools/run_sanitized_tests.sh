#!/bin/sh
# Configure, build, and run the test suite under sanitizers.
#
# Pass 1 (build-asan/, -DTOMUR_SANITIZE=address): the full suite under
# ASan + UBSan. The robustness tests feed load() a corpus of
# truncated/bit-flipped/hostile model files and train against a
# fault-injecting testbed; this pass is how "no crash" is upgraded to
# "no memory error and no UB".
#
# Pass 2 (build-tsan/, -DTOMUR_SANITIZE=thread): the parallel-engine
# tests (thread pool, batched testbed runs, concurrent training),
# the telemetry concurrency properties (striped metric shards,
# MeasurementCache stats, cross-thread span nesting), and the serving
# model registry (concurrent predictions vs hot-swaps) under TSan,
# which is how "bit-identical results" is upgraded to "and no data
# race produced them by luck".
#
# Usage: tools/run_sanitized_tests.sh [ctest-args...]
#   TOMUR_SKIP_TSAN=1   run only the ASan+UBSan pass
# Builds into build-asan/ and build-tsan/ next to the regular build
# directory.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
jobs="$(nproc 2>/dev/null || echo 4)"

echo "=== ASan + UBSan: full test suite ==="
asan_dir="$repo_root/build-asan"
cmake -B "$asan_dir" -S "$repo_root" -DTOMUR_SANITIZE=address
cmake --build "$asan_dir" -j "$jobs"

# halt_on_error keeps UBSan findings fatal so ctest reports them.
UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
ASAN_OPTIONS="detect_leaks=0" \
    ctest --test-dir "$asan_dir" --output-on-failure "$@"

if [ "${TOMUR_SKIP_TSAN:-0}" = "1" ]; then
    echo "TOMUR_SKIP_TSAN=1: skipping TSan pass"
    exit 0
fi

echo ""
echo "=== TSan: parallel-engine tests ==="
# Derive the TSan target list from the sources rather than
# hand-maintaining it here: every test file that defines a
# "Parallel"-prefixed suite participates (that prefix is the marker
# the -R filter below selects on, so the two stay in sync by
# construction).
tsan_targets=$(grep -l '^TEST\(_F\)\{0,1\}(Parallel' \
    "$repo_root"/tests/test_*.cc | sed 's|.*/||; s|\.cc$||')
if [ -z "$tsan_targets" ]; then
    echo "no Parallel-suite test files found; nothing to TSan" >&2
    exit 1
fi
echo "TSan targets:" $tsan_targets

tsan_dir="$repo_root/build-tsan"
cmake -B "$tsan_dir" -S "$repo_root" -DTOMUR_SANITIZE=thread
# shellcheck disable=SC2086  # word-splitting the list is the point
cmake --build "$tsan_dir" -j "$jobs" \
    $(for t in $tsan_targets; do printf -- '--target %s ' "$t"; done)

# Force a real pool even on single-core CI so TSan sees actual
# cross-thread interleavings. Suite names in test_parallel.cc and
# test_telemetry.cc are prefixed "Parallel" so -R selects exactly
# them.
TOMUR_THREADS="${TOMUR_THREADS:-4}" \
TSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir "$tsan_dir" -R '^Parallel' \
        --output-on-failure "$@"
