#!/bin/sh
# Configure, build, and run the test suite under ASan + UBSan
# (-DTOMUR_SANITIZE=ON). The robustness tests feed load() a corpus of
# truncated/bit-flipped/hostile model files and train against a
# fault-injecting testbed; this script is how "no crash" is upgraded
# to "no memory error and no UB".
#
# Usage: tools/run_sanitized_tests.sh [ctest-args...]
# Builds into build-asan/ next to the regular build directory.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir="$repo_root/build-asan"

cmake -B "$build_dir" -S "$repo_root" -DTOMUR_SANITIZE=ON
cmake --build "$build_dir" -j "$(nproc 2>/dev/null || echo 4)"

# halt_on_error keeps UBSan findings fatal so ctest reports them.
UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
ASAN_OPTIONS="detect_leaks=0" \
    ctest --test-dir "$build_dir" --output-on-failure "$@"
