#!/bin/sh
# Build and run the staged pipeline benchmark and leave a
# machine-readable performance record in BENCH_micro.json: wall time
# per pipeline stage (profile sweep, GBR fit, train+predict batch,
# prediction batch, DES run), once with TOMUR_THREADS=1 and once at
# the configured pool width, plus per-stage speedups. Commit-to-commit
# diffs of this file are the repo's perf-regression trail.
#
# Usage: tools/bench_report.sh [output.json]
#   TOMUR_THREADS=N   width of the parallel variant (default: cores)
# Uses the regular build/ directory next to the repo root.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir="$repo_root/build"
out="${1:-$repo_root/BENCH_micro.json}"

cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j "$(nproc 2>/dev/null || echo 4)" \
    --target micro_benchmarks

"$build_dir/bench/micro_benchmarks" --pipeline-only --json="$out"

echo ""
echo "=== $out ==="
cat "$out"
