#!/bin/sh
# Build and run the repo's performance benchmarks, leaving machine-
# readable records whose commit-to-commit diffs are the perf trail:
#
#   BENCH_micro.json  staged pipeline wall times (serial + parallel
#                     variants, per-stage speedups) plus replay
#                     extras: recovery-time samples and the sampling
#                     profiler's ingest-overhead fraction
#   BENCH_serve.json  serving-path QPS and p50/p99 latency from the
#                     closed-loop load generator (bench/serve_load)
#
# After each run the fresh numbers are compared against the baseline
# committed at HEAD (git show HEAD:<file>); a stage slower — or a
# serving path slower / higher-latency — by more than the tolerance
# fails the script, so CI catches perf regressions, not just
# correctness ones. Absent baselines (first run, new file) skip the
# gate instead of failing it.
#
# Usage: tools/bench_report.sh [micro_out.json] [serve_out.json]
#   TOMUR_THREADS=N           width of the parallel variant
#                             (default: cores)
#   TOMUR_BENCH_TOLERANCE=F   allowed relative regression
#                             (default: 0.15 = 15%)
#   TOMUR_SERVE_TOLERANCE=F   allowed serving regression
#                             (default: 0.50 — wall-clock QPS is far
#                             noisier than stage times)
#   TOMUR_BENCH_NO_GATE=1     skip the baseline comparison
# Uses the regular build/ directory next to the repo root.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir="$repo_root/build"
out="${1:-$repo_root/BENCH_micro.json}"
serve_out="${2:-$repo_root/BENCH_serve.json}"

cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j "$(nproc 2>/dev/null || echo 4)" \
    --target micro_benchmarks --target serve_load

"$build_dir/bench/micro_benchmarks" --pipeline-only --json="$out"
"$build_dir/bench/serve_load" --json="$serve_out"

for f in "$out" "$serve_out"; do
    echo ""
    echo "=== $f ==="
    if [ -f "$f" ]; then
        cat "$f"
    else
        echo "(missing: benchmark produced no output)"
    fi
done

if [ "${TOMUR_BENCH_NO_GATE:-0}" = "1" ]; then
    echo "TOMUR_BENCH_NO_GATE=1: skipping baseline comparison"
    exit 0
fi

# baseline_of FILE: print the HEAD-committed baseline to stdout, or
# nothing when HEAD has no copy (first run) — which skips that gate.
baseline_of() {
    (cd "$repo_root" && \
        git show "HEAD:$(basename "$1")" 2>/dev/null || true)
}

status=0

echo ""
echo "=== regression gate: BENCH_micro (vs HEAD baseline) ==="
baseline=$(baseline_of "$out")
if [ ! -f "$out" ]; then
    echo "current run left no $out; skipping gate"
elif [ -z "$baseline" ]; then
    echo "no committed BENCH_micro.json baseline; skipping gate"
else
    base_file=$(mktemp)
    printf '%s' "$baseline" > "$base_file"
    python3 - "$out" "$base_file" \
        "${TOMUR_BENCH_TOLERANCE:-0.15}" <<'EOF' || status=$?
import json, sys

with open(sys.argv[2]) as f:
    baseline = json.load(f)
with open(sys.argv[1]) as f:
    current = json.load(f)
tol = float(sys.argv[3])

base = {s["name"]: s for s in baseline.get("stages", [])}
failed = False
for stage in current.get("stages", []):
    name = stage["name"]
    if name not in base:
        print(f"  {name}: new stage, no baseline")
        continue
    for key in ("serial_sec", "parallel_sec"):
        if key not in base[name] or key not in stage:
            continue
        old, new = base[name][key], stage[key]
        if old <= 0:
            continue
        rel = (new - old) / old
        mark = "FAIL" if rel > tol else "ok"
        print(f"  {name}.{key}: {old:.3f}s -> {new:.3f}s "
              f"({rel:+.1%}) {mark}")
        if rel > tol:
            failed = True
if failed:
    print(f"benchmark regression above {tol:.0%} tolerance")
    sys.exit(1)
print("within tolerance")
EOF
    rm -f "$base_file"
fi

echo ""
echo "=== replay gate: profiler overhead + recovery time ==="
# The replay_scenarios stage records extras: the sampling-profiler
# overhead fraction is held to an absolute budget (5%, widened by
# the tolerance), and the recovery-time metrics are gated against
# the committed baseline like any other perf number. Runs without
# the scenario stage (--no-scenario) simply have no extras and SKIP.
if [ ! -f "$out" ]; then
    echo "current run left no $out; skipping replay gate"
else
    base_file=$(mktemp)
    baseline_of "$out" > "$base_file"
    python3 - "$out" "$base_file" \
        "${TOMUR_BENCH_TOLERANCE:-0.15}" <<'EOF' || status=$?
import json, sys

with open(sys.argv[1]) as f:
    current = json.load(f)
try:
    with open(sys.argv[2]) as f:
        baseline = json.load(f)
except (OSError, ValueError):
    baseline = {}
tol = float(sys.argv[3])

cur = current.get("extras", {})
base = baseline.get("extras", {})
failed = False

key = "replay_profiler_overhead_frac"
if key not in cur:
    print("  SKIP: no replay extras in this run "
          "(scenario stage disabled?)")
    sys.exit(0)
budget = 0.05 * (1.0 + tol)
mark = "FAIL" if cur[key] > budget else "ok"
print(f"  {key}: {cur[key]:.4f} (budget {budget:.4f}) {mark}")
if cur[key] > budget:
    failed = True

# Recovery time is deterministic sample counts, but gate it with
# the same relative tolerance so a genuinely slower-to-recover
# monitor fails while jitterless equality stays trivially green.
for key in ("replay_recovery_mean_samples",
            "replay_recovery_max_samples"):
    if key not in cur:
        print(f"  {key}: absent in current run; skipped")
        continue
    if key not in base:
        print(f"  {key}: {cur[key]:.1f} (no baseline)")
        continue
    old, new = base[key], cur[key]
    if old <= 0:
        continue
    rel = (new - old) / old
    mark = "FAIL" if rel > tol else "ok"
    print(f"  {key}: {old:.1f} -> {new:.1f} ({rel:+.1%}) {mark}")
    if rel > tol:
        failed = True
if failed:
    print("replay gate failed")
    sys.exit(1)
print("replay metrics within budget")
EOF
    rm -f "$base_file"
fi

echo ""
echo "=== chaos gate: campaign health + shrinker engagement ==="
# The chaos_campaign stage records extras: a healthy tree must pass
# the whole seeded campaign with zero invariant violations, and the
# planted-failure self-test must have actually exercised the ddmin
# shrinker (> 0 probe runs). Runs without the chaos stage
# (--no-chaos) simply have no extras and SKIP.
if [ ! -f "$out" ]; then
    echo "current run left no $out; skipping chaos gate"
else
    python3 - "$out" <<'EOF' || status=$?
import json, sys

with open(sys.argv[1]) as f:
    current = json.load(f)

cur = current.get("extras", {})
if "chaos_plans" not in cur:
    print("  SKIP: no chaos extras in this run "
          "(chaos stage disabled?)")
    sys.exit(0)

failed = False
plans = cur.get("chaos_plans", 0)
violations = cur.get("chaos_violations", 0)
mark = "FAIL" if violations > 0 or plans <= 0 else "ok"
print(f"  chaos_violations: {violations:.0f} over {plans:.0f} "
      f"plans (required 0) {mark}")
if violations > 0 or plans <= 0:
    failed = True

shrink = cur.get("chaos_shrink_iterations", 0)
mark = "FAIL" if shrink <= 0 else "ok"
print(f"  chaos_shrink_iterations: {shrink:.0f} "
      f"(required > 0) {mark}")
if shrink <= 0:
    failed = True

rate = cur.get("chaos_plans_per_sec", 0)
print(f"  chaos_plans_per_sec: {rate:.2f}")

if failed:
    print("chaos gate failed")
    sys.exit(1)
print("campaign healthy, shrinker engaged")
EOF
fi

echo ""
echo "=== speedup gate: train_predict parallel scaling ==="
# The training hot path must actually scale: at TOMUR_THREADS=8 the
# parallel train_predict stage is required to beat the serial run by
# >= 1.5x (shrunk by TOMUR_BENCH_TOLERANCE). A 1-thread pool or a
# single-core machine cannot exhibit parallel speedup — those runs
# SKIP with the reason printed rather than fail.
if [ ! -f "$out" ]; then
    echo "current run left no $out; skipping speedup gate"
else
    cores="$(nproc 2>/dev/null || echo 1)"
    python3 - "$out" "$cores" \
        "${TOMUR_BENCH_TOLERANCE:-0.15}" <<'EOF' || status=$?
import json, sys

with open(sys.argv[1]) as f:
    report = json.load(f)
cores = int(sys.argv[2])
tol = float(sys.argv[3])

threads = int(report.get("threads_parallel", 1))
if threads < 2:
    print(f"  SKIP: parallel pass ran with a {threads}-thread pool "
          "(no parallel speedup to assert)")
    sys.exit(0)
if cores < 2:
    print(f"  SKIP: {cores} online core(s) — parallel speedup is "
          "not observable on this machine")
    sys.exit(0)

stage = next((s for s in report.get("stages", [])
              if s["name"] == "train_predict"), None)
if stage is None:
    print("  train_predict stage missing from report")
    sys.exit(1)
serial, parallel = stage["serial_sec"], stage["parallel_sec"]
if parallel <= 0:
    print("  train_predict parallel_sec is zero; cannot assert")
    sys.exit(1)
speedup = serial / parallel
required = 1.5 * (1.0 - tol)
mark = "ok" if speedup >= required else "FAIL"
print(f"  train_predict: {serial:.3f}s serial / {parallel:.3f}s "
      f"at {threads} threads = {speedup:.2f}x "
      f"(required >= {required:.2f}x) {mark}")
if speedup < required:
    sys.exit(1)
EOF
fi

echo ""
echo "=== regression gate: BENCH_serve (vs HEAD baseline) ==="
baseline=$(baseline_of "$serve_out")
if [ ! -f "$serve_out" ]; then
    echo "current run left no $serve_out; skipping gate"
elif [ -z "$baseline" ]; then
    echo "no committed BENCH_serve.json baseline; skipping gate"
else
    base_file=$(mktemp)
    printf '%s' "$baseline" > "$base_file"
    python3 - "$serve_out" "$base_file" \
        "${TOMUR_SERVE_TOLERANCE:-0.50}" <<'EOF' || status=$?
import json, sys

with open(sys.argv[2]) as f:
    baseline = json.load(f)
with open(sys.argv[1]) as f:
    current = json.load(f)
tol = float(sys.argv[3])

# (metric, direction): qps must not drop, latencies must not grow.
checks = [("qps", -1), ("p50_ms", +1), ("p99_ms", +1)]
failed = False
for key, sign in checks:
    if key not in baseline or key not in current:
        print(f"  {key}: absent in baseline or current; skipped")
        continue
    old, new = baseline[key], current[key]
    if old <= 0:
        continue
    rel = sign * (new - old) / old
    mark = "FAIL" if rel > tol else "ok"
    print(f"  {key}: {old:.3f} -> {new:.3f} ({rel:+.1%} worse) "
          f"{mark}")
    if rel > tol:
        failed = True
if failed:
    print(f"serving regression above {tol:.0%} tolerance")
    sys.exit(1)
print("within tolerance")
EOF
    rm -f "$base_file"
fi

echo ""
echo "=== serve gate: /debug introspection overhead ==="
# serve_load's phase B adds a sidecar scraper polling /debug/vars
# and /debug/slo; the phase-B-vs-phase-A p50 delta is the measured
# cost of live introspection, held to an absolute 5% budget (widened
# by the serve tolerance — wall-clock p50 on a saturated closed loop
# is noisy). Runs without the extras object (old binaries) SKIP.
if [ ! -f "$serve_out" ]; then
    echo "current run left no $serve_out; skipping debug gate"
else
    python3 - "$serve_out" \
        "${TOMUR_SERVE_TOLERANCE:-0.50}" <<'EOF' || status=$?
import json, sys

with open(sys.argv[1]) as f:
    current = json.load(f)
tol = float(sys.argv[2])

cur = current.get("extras", {})
key = "serve_debug_overhead_frac"
if key not in cur:
    print("  SKIP: no serve extras in this run")
    sys.exit(0)
if cur.get("debug_polls", 0) <= 0:
    print("  SKIP: scraper issued no /debug polls")
    sys.exit(0)
budget = 0.05 * (1.0 + tol)
mark = "FAIL" if cur[key] > budget else "ok"
print(f"  {key}: {cur[key]:.4f} (budget {budget:.4f}, "
      f"{cur['debug_polls']:.0f} polls) {mark}")
if cur[key] > budget:
    sys.exit(1)
print("debug overhead within budget")
EOF
fi

exit "$status"
