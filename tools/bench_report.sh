#!/bin/sh
# Build and run the staged pipeline benchmark and leave a
# machine-readable performance record in BENCH_micro.json: wall time
# per pipeline stage (profile sweep, GBR fit, train+predict batch,
# prediction batch, DES run), once with TOMUR_THREADS=1 and once at
# the configured pool width, plus per-stage speedups. Commit-to-commit
# diffs of this file are the repo's perf-regression trail.
#
# After the run, per-stage times are compared against the baseline
# committed at HEAD (git show HEAD:BENCH_micro.json); any stage slower
# by more than the tolerance fails the script, so CI catches perf
# regressions, not just correctness ones.
#
# Usage: tools/bench_report.sh [output.json]
#   TOMUR_THREADS=N           width of the parallel variant
#                             (default: cores)
#   TOMUR_BENCH_TOLERANCE=F   allowed relative slowdown per stage
#                             (default: 0.15 = 15%)
#   TOMUR_BENCH_NO_GATE=1     skip the baseline comparison
# Uses the regular build/ directory next to the repo root.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir="$repo_root/build"
out="${1:-$repo_root/BENCH_micro.json}"

cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j "$(nproc 2>/dev/null || echo 4)" \
    --target micro_benchmarks

"$build_dir/bench/micro_benchmarks" --pipeline-only --json="$out"

echo ""
echo "=== $out ==="
cat "$out"

if [ "${TOMUR_BENCH_NO_GATE:-0}" = "1" ]; then
    echo "TOMUR_BENCH_NO_GATE=1: skipping baseline comparison"
    exit 0
fi

baseline=$(cd "$repo_root" && \
    git show HEAD:BENCH_micro.json 2>/dev/null || true)
if [ -z "$baseline" ]; then
    echo "no committed BENCH_micro.json baseline; skipping gate"
    exit 0
fi

echo ""
echo "=== regression gate (vs HEAD baseline) ==="
base_file=$(mktemp)
printf '%s' "$baseline" > "$base_file"
status=0
python3 - "$out" "$base_file" \
    "${TOMUR_BENCH_TOLERANCE:-0.15}" <<'EOF' || status=$?
import json, sys

with open(sys.argv[2]) as f:
    baseline = json.load(f)
with open(sys.argv[1]) as f:
    current = json.load(f)
tol = float(sys.argv[3])

base = {s["name"]: s for s in baseline.get("stages", [])}
failed = False
for stage in current.get("stages", []):
    name = stage["name"]
    if name not in base:
        print(f"  {name}: new stage, no baseline")
        continue
    for key in ("serial_sec", "parallel_sec"):
        old, new = base[name][key], stage[key]
        if old <= 0:
            continue
        rel = (new - old) / old
        mark = "FAIL" if rel > tol else "ok"
        print(f"  {name}.{key}: {old:.3f}s -> {new:.3f}s "
              f"({rel:+.1%}) {mark}")
        if rel > tol:
            failed = True
if failed:
    print(f"benchmark regression above {tol:.0%} tolerance")
    sys.exit(1)
print("within tolerance")
EOF
rm -f "$base_file"
exit "$status"
