#!/bin/sh
# One-command CI gate: everything a change must pass before merging.
#
#   1. Tier-1: regular build + full ctest suite (the contract every
#      PR is held to).
#   2. Serve smoke: start the real daemon on an ephemeral port with
#      an access log, hit /healthz + /predict + /metrics plus the
#      /debug/vars and /debug/slo introspection views over actual
#      sockets, then SIGTERM it and assert a clean drain (exit 0)
#      that flushed at least one access-log record. The in-memory
#      transports cover the core exhaustively; this is the one place
#      the epoll/signal path is exercised end-to-end.
#   3. Replay smoke: compile a small scenario script through
#      `tomur_cli replay --scenario` and assert the run recovers
#      from its regime change (the CLI + DSL + autopilot wiring,
#      end-to-end, without the minutes-long bench stage).
#   4. Chaos smoke: a small seeded campaign through `tomur_cli
#      chaos` must pass with zero violations, and a planted
#      regression (--plant registry-no-commit) must be caught,
#      shrunk to a tiny repro, and replay deterministically — the
#      detect/shrink/replay loop proven live on every merge.
#   5. Sanitizers: tools/run_sanitized_tests.sh (ASan+UBSan full
#      suite, TSan on the parallel-engine tests).
#   6. Performance: tools/bench_report.sh (micro benchmark stages and
#      serving QPS/latency gated against the committed BENCH_*.json
#      baselines, plus the train_predict parallel-speedup assertion —
#      >= 1.5x at TOMUR_THREADS=8, skipped on single-core machines).
#
# Usage: tools/ci_check.sh
#   TOMUR_SKIP_TSAN=1      forwarded to run_sanitized_tests.sh
#   TOMUR_BENCH_NO_GATE=1  forwarded to bench_report.sh (report only,
#                          no regression gate)
# Exits non-zero on the first failing stage.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir="$repo_root/build"
jobs="$(nproc 2>/dev/null || echo 4)"

echo "=== Tier 1: build + test suite ==="
cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j "$jobs"
ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"

echo ""
echo "=== Tier 2: serve smoke (daemon + graceful drain) ==="
smoke_dir=$(mktemp -d)
port_file="$smoke_dir/port"
"$build_dir/tools/tomur_cli" serve FlowMonitor --port 0 \
    --port-file "$port_file" \
    --access-log "$smoke_dir/access.jsonl" \
    > "$smoke_dir/serve.log" 2>&1 &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true; rm -rf "$smoke_dir"' \
    EXIT

# The daemon trains before it binds; wait for the port file.
i=0
while [ ! -s "$port_file" ]; do
    if ! kill -0 "$serve_pid" 2>/dev/null; then
        echo "serve smoke: daemon died before binding" >&2
        cat "$smoke_dir/serve.log" >&2
        exit 1
    fi
    i=$((i + 1))
    if [ "$i" -gt 240 ]; then
        echo "serve smoke: daemon never wrote $port_file" >&2
        exit 1
    fi
    sleep 0.5
done

python3 - "$port_file" <<'EOF'
import json, sys, urllib.request

port = int(open(sys.argv[1]).read().strip())
base = f"http://127.0.0.1:{port}"

with urllib.request.urlopen(base + "/healthz", timeout=10) as r:
    health = json.load(r)
assert health["status"] == "ok", health

body = json.dumps({"flows": 20000, "size": 512, "mtbr": 400})
req = urllib.request.Request(base + "/predict",
                             data=body.encode(), method="POST")
with urllib.request.urlopen(req, timeout=10) as r:
    pred = json.load(r)
assert pred.get("predicted_pps", 0) > 0, pred

with urllib.request.urlopen(base + "/metrics", timeout=10) as r:
    metrics = r.read().decode()
assert "tomur_server_requests_total" in metrics, metrics[:200]

# Live introspection: the /debug views must answer while serving.
with urllib.request.urlopen(base + "/debug/vars", timeout=10) as r:
    dbg = json.load(r)
assert "tomur_server_requests_total" in dbg, list(dbg)[:5]

with urllib.request.urlopen(base + "/debug/slo", timeout=10) as r:
    slo = r.read().decode()
assert "slo_summary" in slo and "objectives" in slo, slo[:200]
print("serve smoke: healthz/predict/metrics/debug answered "
      "correctly")
EOF

kill -TERM "$serve_pid"
smoke_status=0
wait "$serve_pid" || smoke_status=$?
trap - EXIT
if [ "$smoke_status" -ne 0 ]; then
    cat "$smoke_dir/serve.log" >&2 || true
    rm -rf "$smoke_dir"
    echo "serve smoke: daemon exit $smoke_status (wanted 0)" >&2
    exit 1
fi
# The drained daemon must have flushed at least one access line
# (one JSON object per answered request).
if ! grep -q '"verdict"' "$smoke_dir/access.jsonl"; then
    echo "serve smoke: $smoke_dir/access.jsonl has no records" >&2
    rm -rf "$smoke_dir"
    exit 1
fi
rm -rf "$smoke_dir"
echo "serve smoke: SIGTERM drained cleanly (exit 0, access log" \
    "written)"

echo ""
echo "=== Tier 3: replay smoke (scenario DSL -> autopilot) ==="
replay_dir=$(mktemp -d)
trap 'rm -rf "$replay_dir"' EXIT
cat > "$replay_dir/smoke.scn" <<'EOF'
# ci_check replay smoke: one flash crowd between steady shoulders.
base flows=16000 size=512 mtbr=600
steady n=12
flash peak=5 ramp=2 hold=3 decay=2
steady n=8
EOF
"$build_dir/tools/tomur_cli" replay FlowMonitor \
    --scenario "$replay_dir/smoke.scn" \
    --profile-out "$replay_dir/profile.txt" \
    > "$replay_dir/replay.log" 2>&1 || {
    echo "replay smoke: tomur_cli replay failed" >&2
    cat "$replay_dir/replay.log" >&2
    exit 1
}
grep -q "recovery: " "$replay_dir/replay.log" || {
    echo "replay smoke: no recovery line in output" >&2
    cat "$replay_dir/replay.log" >&2
    exit 1
}
grep -q "sampling profiler:" "$replay_dir/profile.txt" || {
    echo "replay smoke: profiler export missing" >&2
    exit 1
}
sed -n 's/^/  /p' "$replay_dir/replay.log"
trap - EXIT
rm -rf "$replay_dir"
echo "replay smoke: scenario ran through the autopilot"

echo ""
echo "=== Tier 4: chaos smoke (campaign + planted regression) ==="
chaos_dir=$(mktemp -d)
trap 'rm -rf "$chaos_dir"' EXIT
# A healthy tree survives a small seeded campaign with zero
# violations (exit 0).
"$build_dir/tools/tomur_cli" chaos --seed 7 --runs 12 \
    --work-dir "$chaos_dir/clean" \
    > "$chaos_dir/clean.log" 2>&1 || {
    echo "chaos smoke: clean campaign reported violations" >&2
    cat "$chaos_dir/clean.log" >&2
    exit 1
}
grep -q " 0 violations" "$chaos_dir/clean.log" || {
    echo "chaos smoke: clean campaign summary missing" >&2
    cat "$chaos_dir/clean.log" >&2
    exit 1
}
# A planted registry bug must be detected (exit != 0), shrunk, and
# written out as a replayable repro.
if "$build_dir/tools/tomur_cli" chaos --seed 7 --runs 30 \
    --plant registry-no-commit \
    --work-dir "$chaos_dir/planted" \
    --repro-out "$chaos_dir/repro.chaos" \
    > "$chaos_dir/planted.log" 2>&1; then
    echo "chaos smoke: planted regression went undetected" >&2
    cat "$chaos_dir/planted.log" >&2
    exit 1
fi
if [ ! -s "$chaos_dir/repro.chaos" ]; then
    echo "chaos smoke: no repro written for planted failure" >&2
    cat "$chaos_dir/planted.log" >&2
    exit 1
fi
actions=$(grep -c '^action ' "$chaos_dir/repro.chaos" || true)
if [ "$actions" -gt 3 ]; then
    echo "chaos smoke: shrunk repro still has $actions actions" >&2
    cat "$chaos_dir/repro.chaos" >&2
    exit 1
fi
# The repro replays deterministically: still failing with the
# plant, passing without it.
if "$build_dir/tools/tomur_cli" chaos \
    --replay "$chaos_dir/repro.chaos" \
    --plant registry-no-commit \
    --work-dir "$chaos_dir/replay" \
    > "$chaos_dir/replay.log" 2>&1; then
    echo "chaos smoke: repro did not reproduce under plant" >&2
    cat "$chaos_dir/replay.log" >&2
    exit 1
fi
"$build_dir/tools/tomur_cli" chaos \
    --replay "$chaos_dir/repro.chaos" \
    --work-dir "$chaos_dir/replay2" \
    > "$chaos_dir/replay2.log" 2>&1 || {
    echo "chaos smoke: repro fails even without the plant" >&2
    cat "$chaos_dir/replay2.log" >&2
    exit 1
}
trap - EXIT
rm -rf "$chaos_dir"
echo "chaos smoke: clean campaign green; planted regression" \
    "caught, shrunk ($actions actions), replayed"

echo ""
echo "=== Tier 5: sanitizer passes ==="
"$repo_root/tools/run_sanitized_tests.sh"

echo ""
echo "=== Tier 6: performance gate ==="
"$repo_root/tools/bench_report.sh"

echo ""
echo "ci_check: all stages passed"
