#!/bin/sh
# One-command CI gate: everything a change must pass before merging.
#
#   1. Tier-1: regular build + full ctest suite (the contract every
#      PR is held to).
#   2. Sanitizers: tools/run_sanitized_tests.sh (ASan+UBSan full
#      suite, TSan on the parallel-engine tests).
#   3. Performance: tools/bench_report.sh (micro benchmark stages
#      gated against the committed BENCH_micro.json baseline).
#
# Usage: tools/ci_check.sh
#   TOMUR_SKIP_TSAN=1      forwarded to run_sanitized_tests.sh
#   TOMUR_BENCH_NO_GATE=1  forwarded to bench_report.sh (report only,
#                          no regression gate)
# Exits non-zero on the first failing stage.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir="$repo_root/build"
jobs="$(nproc 2>/dev/null || echo 4)"

echo "=== Tier 1: build + test suite ==="
cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j "$jobs"
ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"

echo ""
echo "=== Tier 2: sanitizer passes ==="
"$repo_root/tools/run_sanitized_tests.sh"

echo ""
echo "=== Tier 3: performance gate ==="
"$repo_root/tools/bench_report.sh"

echo ""
echo "ci_check: all stages passed"
