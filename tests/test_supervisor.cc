/**
 * @file
 * Self-healing runtime tests: the crash-safe checkpoint store (write
 * protocol, corruption corpus, injected crash points), cooperative
 * deadlines (granule budgets through parallelFor and runBatch), the
 * supervisor's circuit breaker (scripted hooks and a real retrain
 * under heavy fault injection), and the autopilot chaos golden: a run
 * killed mid-replay and resumed from its checkpoint must export a
 * monitor+supervisor event stream byte-identical to an uninterrupted
 * run, at any TOMUR_THREADS width.
 *
 * Golden fixtures live in tests/golden/ (path baked in via
 * TOMUR_GOLDEN_DIR); regenerate with tools/update_goldens.sh or by
 * running this binary with TOMUR_UPDATE_GOLDENS=1.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>

#include "common/checkpoint.hh"
#include "common/deadline.hh"
#include "common/logging.hh"
#include "common/telemetry.hh"
#include "common/threadpool.hh"
#include "nfs/registry.hh"
#include "regex/ruleset.hh"
#include "tomur/supervisor.hh"

namespace tomur {
namespace {

namespace fs = std::filesystem;
namespace fw = framework;
using core::BreakerState;
using core::Supervisor;
using core::SupervisorEventKind;
using core::SupervisorOptions;

/** RAII global pool width (restores the configured width on exit). */
struct PoolWidth
{
    explicit PoolWidth(int threads) { setGlobalThreadCount(threads); }
    ~PoolWidth() { setGlobalThreadCount(configuredThreadCount()); }
};

/** A fresh, empty directory under the test temp root. */
std::string
freshDir(const std::string &name)
{
    fs::path dir = fs::path(::testing::TempDir()) / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
}

/** Path of generation `gen` inside `dir` (mirrors the store's
 *  naming so tests can hand-corrupt records). */
std::string
genPath(const std::string &dir, unsigned gen)
{
    char name[32];
    std::snprintf(name, sizeof(name), "ckpt-%08u.tomur", gen);
    return (fs::path(dir) / name).string();
}

/** Store with fsync off: the tests exercise the protocol, not the
 *  disk, and single-core CI appreciates the difference. */
CheckpointStore
makeStore(const std::string &dir, std::size_t generations = 3)
{
    CheckpointOptions opts;
    opts.generations = generations;
    opts.fsync = false;
    return CheckpointStore(dir, opts);
}

// ---------------------------------------------------------------
// Checkpoint store: write protocol and retention
// ---------------------------------------------------------------

TEST(Checkpoint, WriteAndLoadRoundTrip)
{
    auto dir = freshDir("ckpt_roundtrip");
    auto store = makeStore(dir);
    ASSERT_TRUE(store.writeGeneration("hello autopilot"));
    auto rec = store.loadLatestValid();
    ASSERT_TRUE(rec);
    EXPECT_EQ(rec.value().generation, 1u);
    EXPECT_EQ(rec.value().body, "hello autopilot");
}

TEST(Checkpoint, RetentionPrunesOldestGenerations)
{
    auto dir = freshDir("ckpt_retention");
    auto store = makeStore(dir, 2);
    for (int i = 1; i <= 4; ++i)
        ASSERT_TRUE(store.writeGeneration("gen " + std::to_string(i)));
    auto gens = store.listGenerations();
    ASSERT_EQ(gens.size(), 2u);
    EXPECT_EQ(gens[0], 3u);
    EXPECT_EQ(gens[1], 4u);
    auto rec = store.loadLatestValid();
    ASSERT_TRUE(rec);
    EXPECT_EQ(rec.value().body, "gen 4");
}

TEST(Checkpoint, NumbersContinueAcrossReopen)
{
    auto dir = freshDir("ckpt_reopen");
    {
        auto store = makeStore(dir);
        ASSERT_TRUE(store.writeGeneration("first"));
        ASSERT_TRUE(store.writeGeneration("second"));
    }
    auto store = makeStore(dir);
    EXPECT_EQ(store.nextGeneration(), 3u);
    ASSERT_TRUE(store.writeGeneration("third"));
    auto gens = store.listGenerations();
    ASSERT_EQ(gens.size(), 3u);
    EXPECT_EQ(gens.back(), 3u);
}

TEST(Checkpoint, FrameVerifiesAndRejects)
{
    std::string framed = CheckpointStore::frame("payload");
    std::string body;
    ASSERT_TRUE(CheckpointStore::verifyFrame(framed, &body));
    EXPECT_EQ(body, "payload");

    EXPECT_FALSE(CheckpointStore::verifyFrame("random bytes", nullptr));

    // Flip one body byte: the FNV-1a checksum must catch it.
    std::string flipped = framed;
    flipped.back() ^= 0x01;
    auto st = CheckpointStore::verifyFrame(flipped, nullptr);
    ASSERT_FALSE(st);
    EXPECT_EQ(st.code(), StatusCode::CorruptData);
}

// ---------------------------------------------------------------
// Checkpoint store: corruption corpus
// ---------------------------------------------------------------

TEST(CheckpointCorruption, TruncatedLatestFallsBackToPrevious)
{
    auto dir = freshDir("ckpt_truncated");
    auto store = makeStore(dir);
    ASSERT_TRUE(store.writeGeneration("good generation"));
    ASSERT_TRUE(store.writeGeneration("torn generation"));
    auto bytes = readFile(genPath(dir, 2));
    writeFile(genPath(dir, 2), bytes.substr(0, bytes.size() / 2));

    resetWarnCount();
    auto rec = store.loadLatestValid();
    ASSERT_TRUE(rec);
    EXPECT_EQ(rec.value().generation, 1u);
    EXPECT_EQ(rec.value().body, "good generation");
    EXPECT_GT(warnCount(), 0u) << "stale restore must be reported";
}

TEST(CheckpointCorruption, FlippedChecksumByteFallsBack)
{
    auto dir = freshDir("ckpt_bitflip");
    auto store = makeStore(dir);
    ASSERT_TRUE(store.writeGeneration("good generation"));
    ASSERT_TRUE(store.writeGeneration("flipped generation"));
    auto bytes = readFile(genPath(dir, 2));
    bytes[bytes.size() / 2] ^= 0x10;
    writeFile(genPath(dir, 2), bytes);

    auto rec = store.loadLatestValid();
    ASSERT_TRUE(rec);
    EXPECT_EQ(rec.value().generation, 1u);
    EXPECT_EQ(rec.value().body, "good generation");
}

TEST(CheckpointCorruption, MissingLatestGenerationFallsBack)
{
    auto dir = freshDir("ckpt_missing");
    auto store = makeStore(dir);
    ASSERT_TRUE(store.writeGeneration("survivor"));
    ASSERT_TRUE(store.writeGeneration("deleted"));
    fs::remove(genPath(dir, 2));

    auto rec = store.loadLatestValid();
    ASSERT_TRUE(rec);
    EXPECT_EQ(rec.value().generation, 1u);
    EXPECT_EQ(rec.value().body, "survivor");
}

TEST(CheckpointCorruption, EmptyDirectoryIsNotFound)
{
    auto dir = freshDir("ckpt_empty");
    auto store = makeStore(dir);
    auto rec = store.loadLatestValid();
    ASSERT_FALSE(rec);
    EXPECT_EQ(rec.status().code(), StatusCode::NotFound);
}

TEST(CheckpointCorruption, AllGenerationsCorruptIsCorruptData)
{
    auto dir = freshDir("ckpt_allbad");
    auto store = makeStore(dir);
    ASSERT_TRUE(store.writeGeneration("one"));
    ASSERT_TRUE(store.writeGeneration("two"));
    for (unsigned g = 1; g <= 2; ++g)
        writeFile(genPath(dir, g), "not a checkpoint at all");

    auto rec = store.loadLatestValid();
    ASSERT_FALSE(rec);
    EXPECT_EQ(rec.status().code(), StatusCode::CorruptData);
}

// ---------------------------------------------------------------
// Checkpoint store: injected crash points
// ---------------------------------------------------------------

TEST(CheckpointCrash, EveryCrashPointLeavesARecoverableStore)
{
    struct Case
    {
        CheckpointCrashPoint point;
        std::uint64_t survivingGen; ///< after the simulated kill
        const char *survivingBody;
    } cases[] = {
        {CheckpointCrashPoint::BeforeTempWrite, 1u, "stable"},
        {CheckpointCrashPoint::MidTempWrite, 1u, "stable"},
        {CheckpointCrashPoint::BeforeRename, 1u, "stable"},
        // Rename already happened: the new generation is durable.
        {CheckpointCrashPoint::BeforePrune, 2u, "doomed write"},
    };
    for (const auto &c : cases) {
        auto dir = freshDir("ckpt_crash");
        {
            auto store = makeStore(dir);
            ASSERT_TRUE(store.writeGeneration("stable"));
            store.setCrashPoint(c.point);
            EXPECT_THROW(
                { (void)store.writeGeneration("doomed write"); },
                SimulatedCrash);
        }
        // "Restart": a fresh store over the crashed directory.
        auto reopened = makeStore(dir);
        auto rec = reopened.loadLatestValid();
        ASSERT_TRUE(rec) << "crash point "
                         << static_cast<int>(c.point);
        EXPECT_EQ(rec.value().generation, c.survivingGen);
        EXPECT_EQ(rec.value().body, c.survivingBody);
        // Leftover .tmp files are write debris, not generations.
        for (auto g : reopened.listGenerations())
            EXPECT_LE(g, c.survivingGen);
    }
}

// ---------------------------------------------------------------
// Deadlines: granule budgets at task boundaries
// ---------------------------------------------------------------

TEST(DeadlineTest, GranuleBudgetTripsDeterministically)
{
    Deadline d = Deadline::afterGranules(3);
    EXPECT_FALSE(d.check());
    EXPECT_FALSE(d.check());
    EXPECT_FALSE(d.check());
    EXPECT_TRUE(d.check()) << "fourth granule exceeds the budget";
    EXPECT_TRUE(d.expired());
    EXPECT_EQ(d.checksMade(), 4u);
}

TEST(DeadlineTest, CancelTripsImmediately)
{
    Deadline d = Deadline::never();
    EXPECT_FALSE(d.check());
    d.cancel();
    EXPECT_TRUE(d.check());
}

TEST(DeadlineTest, CheckDeadlineThrowsWhereItTripped)
{
    Deadline d = Deadline::afterGranules(0);
    ScopedDeadline scope(d);
    try {
        checkDeadline("test.phase");
        FAIL() << "expected DeadlineExceeded";
    } catch (const DeadlineExceeded &e) {
        EXPECT_EQ(e.where(), "test.phase");
    }
}

TEST(DeadlineTest, SerialParallelForRunsExactlyTheBudget)
{
    PoolWidth width(1);
    Deadline d = Deadline::afterGranules(3);
    ScopedDeadline scope(d);
    std::atomic<int> ran{0};
    EXPECT_THROW(parallelFor(10, [&](std::size_t) { ++ran; }),
                 DeadlineExceeded);
    // Serial path: a granule either runs the body or trips — zero
    // overshoot.
    EXPECT_EQ(ran.load(), 3);
}

TEST(DeadlineTest, WideParallelForNeverExceedsTheBudget)
{
    PoolWidth width(4);
    Deadline d = Deadline::afterGranules(5);
    ScopedDeadline scope(d);
    std::atomic<int> ran{0};
    EXPECT_THROW(parallelFor(32, [&](std::size_t) { ++ran; }),
                 DeadlineExceeded);
    // Every executed iteration consumed a passing granule check, so
    // at most `budget` bodies ran no matter the interleaving; the
    // loop still drained (no hang) and the error was rethrown.
    EXPECT_LE(ran.load(), 5);
}

TEST(DeadlineTest, MissesAreCountedOncePerDeadline)
{
    auto &misses = metrics().counter("tomur_deadline_misses_total");
    auto before = misses.value();
    Deadline d = Deadline::afterGranules(1);
    (void)d.check();
    (void)d.check(); // trips
    (void)d.check(); // still tripped: no double count
    EXPECT_EQ(misses.value(), before + 1);
}

// ---------------------------------------------------------------
// Supervisor: circuit breaker with scripted hooks
// ---------------------------------------------------------------

/** One RECALIBRATION_RECOMMENDED monitor event at `sample`. */
std::vector<core::MonitorEvent>
recommend(std::size_t sample)
{
    core::MonitorEvent ev;
    ev.kind = core::MonitorEventKind::RecalibrationRecommended;
    ev.sample = sample;
    ev.deployment = "test";
    return {ev};
}

/** Count retained supervisor events of one kind. */
std::size_t
countKind(const Supervisor &sup, SupervisorEventKind kind)
{
    std::size_t n = 0;
    for (const auto &ev : sup.events())
        n += ev.kind == kind;
    return n;
}

SupervisorOptions
fastBreaker()
{
    SupervisorOptions o;
    o.failureThreshold = 2;
    o.baseBackoffSamples = 4;
    o.backoffFactor = 2.0;
    o.maxBackoffSamples = 16;
    o.maxRecalibrations = 16;
    return o;
}

TEST(SupervisorTest, SuccessfulRecalibrationKeepsBreakerClosed)
{
    int calls = 0;
    Supervisor sup(fastBreaker(),
                   [&](std::size_t, std::string *detail) {
                       ++calls;
                       if (detail)
                           *detail = "scripted success";
                       return Status::ok();
                   });
    auto fired = sup.observe(1, recommend(1));
    EXPECT_EQ(sup.state(), BreakerState::Closed);
    EXPECT_EQ(calls, 1);
    ASSERT_EQ(fired.size(), 2u);
    EXPECT_EQ(fired[0].kind, SupervisorEventKind::RecalibrationStarted);
    EXPECT_EQ(fired[1].kind,
              SupervisorEventKind::RecalibrationSucceeded);
    // No recommendation, no hook call.
    EXPECT_TRUE(sup.observe(2, {}).empty());
    EXPECT_EQ(calls, 1);
}

TEST(SupervisorTest, ConsecutiveFailuresOpenTheBreaker)
{
    auto &opens =
        metrics().counter("tomur_supervisor_breaker_open_total");
    auto opensBefore = opens.value();

    bool healthy = false;
    int calls = 0;
    Supervisor sup(fastBreaker(),
                   [&](std::size_t, std::string *) {
                       ++calls;
                       return healthy
                                  ? Status::ok()
                                  : Status::unavailable("scripted");
                   });

    (void)sup.observe(1, recommend(1));
    EXPECT_EQ(sup.state(), BreakerState::Closed) << "one failure";
    (void)sup.observe(2, recommend(2));
    EXPECT_EQ(sup.state(), BreakerState::Open) << "second failure";
    EXPECT_EQ(opens.value(), opensBefore + 1);

    // While open, recommendations are swallowed: no hook calls.
    (void)sup.observe(3, recommend(3));
    (void)sup.observe(4, recommend(4));
    EXPECT_EQ(calls, 2);
    EXPECT_EQ(sup.state(), BreakerState::Open);

    // Backoff (4 samples from sample 2) elapses at sample 6: the
    // half-open probe runs even without a recommendation, succeeds,
    // and closes the breaker.
    healthy = true;
    auto fired = sup.observe(6, {});
    EXPECT_EQ(sup.state(), BreakerState::Closed);
    EXPECT_EQ(calls, 3);
    EXPECT_EQ(countKind(sup, SupervisorEventKind::BreakerHalfOpen),
              1u);
    EXPECT_EQ(countKind(sup, SupervisorEventKind::BreakerClosed), 1u);
    ASSERT_FALSE(fired.empty());
    EXPECT_EQ(fired.back().kind, SupervisorEventKind::BreakerClosed);

    auto sum = sup.summary();
    EXPECT_EQ(sum.breakerTrips, 1u);
    EXPECT_EQ(sum.recalibrationsAttempted, 3u);
    EXPECT_EQ(sum.recalibrationsSucceeded, 1u);
    EXPECT_EQ(sum.recalibrationsFailed, 2u);
}

TEST(SupervisorTest, FailedProbeReopensWithExponentialBackoff)
{
    Supervisor sup(fastBreaker(), [&](std::size_t, std::string *) {
        return Status::unavailable("always broken");
    });

    (void)sup.observe(1, recommend(1));
    (void)sup.observe(2, recommend(2)); // trip 1: backoff 4
    EXPECT_EQ(sup.state(), BreakerState::Open);

    (void)sup.observe(6, {}); // probe fails: trip 2, backoff 8
    EXPECT_EQ(sup.state(), BreakerState::Open);
    (void)sup.observe(13, {}); // still inside backoff (6 + 8 = 14)
    EXPECT_EQ(countKind(sup, SupervisorEventKind::BreakerHalfOpen),
              1u);
    (void)sup.observe(14, {}); // probe fails: trip 3, backoff 16
    EXPECT_EQ(sup.state(), BreakerState::Open);
    (void)sup.observe(30, {}); // probe fails: trip 4, capped at 16
    EXPECT_EQ(sup.summary().breakerTrips, 4u);

    // The BREAKER_OPENED events carry the chosen backoff in `value`.
    std::vector<double> backoffs;
    for (const auto &ev : sup.events()) {
        if (ev.kind == SupervisorEventKind::BreakerOpened)
            backoffs.push_back(ev.value);
    }
    ASSERT_EQ(backoffs.size(), 4u);
    EXPECT_DOUBLE_EQ(backoffs[0], 4.0);
    EXPECT_DOUBLE_EQ(backoffs[1], 8.0);
    EXPECT_DOUBLE_EQ(backoffs[2], 16.0);
    EXPECT_DOUBLE_EQ(backoffs[3], 16.0) << "capped at the ceiling";
}

TEST(SupervisorTest, RetryBudgetExhaustsOnce)
{
    SupervisorOptions o = fastBreaker();
    o.failureThreshold = 100; // never trip: isolate the budget
    o.maxRecalibrations = 2;
    int calls = 0;
    Supervisor sup(o, [&](std::size_t, std::string *) {
        ++calls;
        return Status::unavailable("scripted");
    });
    (void)sup.observe(1, recommend(1));
    (void)sup.observe(2, recommend(2));
    (void)sup.observe(3, recommend(3));
    (void)sup.observe(4, recommend(4));
    EXPECT_EQ(calls, 2);
    EXPECT_EQ(countKind(sup,
                        SupervisorEventKind::RetryBudgetExhausted),
              1u)
        << "the exhaustion event fires exactly once";
}

TEST(SupervisorTest, DeadlineExceededCountsAsMissAndFailure)
{
    Supervisor sup(fastBreaker(), [&](std::size_t, std::string *) {
        throw DeadlineExceeded("trainer.phase");
        return Status::ok();
    });
    auto fired = sup.observe(1, recommend(1));
    auto sum = sup.summary();
    EXPECT_EQ(sum.deadlineMisses, 1u);
    EXPECT_EQ(sum.recalibrationsFailed, 1u);
    EXPECT_EQ(countKind(sup, SupervisorEventKind::DeadlineMissed),
              1u);
    bool sawMiss = false;
    for (const auto &ev : fired)
        sawMiss |= ev.kind == SupervisorEventKind::DeadlineMissed;
    EXPECT_TRUE(sawMiss);
}

TEST(SupervisorTest, SimulatedCrashPropagates)
{
    Supervisor sup(fastBreaker(), [&](std::size_t, std::string *) {
        throw SimulatedCrash("recalibration");
        return Status::ok();
    });
    EXPECT_THROW((void)sup.observe(1, recommend(1)), SimulatedCrash);
}

TEST(SupervisorTest, SerializeRestoreContinuesIdentically)
{
    auto failing = [](std::size_t, std::string *) {
        return Status::unavailable("scripted");
    };
    Supervisor a(fastBreaker(), failing);
    (void)a.observe(1, recommend(1));
    (void)a.observe(2, recommend(2)); // open, reopen at 6
    a.noteCheckpointWritten(2, 7);

    std::ostringstream state;
    a.serialize(state);

    Supervisor b(fastBreaker(), failing);
    std::istringstream in(state.str());
    ASSERT_TRUE(b.restore(in));
    EXPECT_EQ(b.state(), a.state());

    std::ostringstream ja, jb;
    a.exportJsonl(ja);
    b.exportJsonl(jb);
    EXPECT_EQ(ja.str(), jb.str());

    // Both continue the same way: probe at sample 6 fails, reopens.
    (void)a.observe(6, {});
    (void)b.observe(6, {});
    std::ostringstream ja2, jb2;
    a.exportJsonl(ja2);
    b.exportJsonl(jb2);
    EXPECT_EQ(ja2.str(), jb2.str());
}

TEST(SupervisorTest, RestoreRejectsGarbage)
{
    Supervisor sup(fastBreaker(), nullptr);
    std::istringstream garbage("not supervisor state");
    auto st = sup.restore(garbage);
    ASSERT_FALSE(st);
    EXPECT_EQ(st.code(), StatusCode::CorruptData);

    std::istringstream badKind(
        "supervisor_state 1\nbreaker 9 0 0 0 0\n");
    EXPECT_FALSE(sup.restore(badKind));
}

// ---------------------------------------------------------------
// Shared heavy fixture: a real trainer over the fault testbed
// ---------------------------------------------------------------

/** A full training/measurement environment around FlowStats (the
 *  cheapest NF: no accelerators, so reference contention is just the
 *  heavy mem-bench). `trainInitial` is false when the model is about
 *  to be restored from a checkpoint instead. */
struct AutoEnv
{
    explicit AutoEnv(bool trainInitial)
        : rules(regex::defaultRuleSet()), bed(hw::blueField2()),
          faulty(bed, {})
    {
        dev.regex = std::make_shared<fw::RegexDevice>(rules);
        dev.compression = std::make_shared<fw::CompressionDevice>();
        dev.crypto = std::make_shared<fw::CryptoDevice>();
        lib = std::make_unique<core::BenchLibrary>(faulty, dev,
                                                   rules);
        trainer = std::make_unique<core::TomurTrainer>(*lib);
        nf = nfs::makeByName("FlowStats", dev);
        if (trainInitial)
            model = trainer->train(*nf, defaults(), trainOptions());

        const core::BenchLibrary::MemBenchEntry *mem =
            &lib->memBenches().front();
        for (const auto &e : lib->memBenches()) {
            if (e.config.wssBytes >= 12.0 * 1024 * 1024 &&
                e.level.counters.cacheAccessRate() >
                    mem->level.counters.cacheAccessRate()) {
                mem = &e;
            }
        }
        levels = {mem->level};
        competitors = {mem->workload};
    }

    static traffic::TrafficProfile
    defaults()
    {
        return traffic::TrafficProfile::defaults();
    }

    static core::TrainOptions
    trainOptions()
    {
        core::TrainOptions topts;
        topts.adaptive.quota = 40;
        return topts;
    }

    core::ReplayContext
    ctx()
    {
        core::ReplayContext c;
        c.trainer = trainer.get();
        c.model = &model;
        c.nf = nf.get();
        c.levels = levels;
        c.competitors = competitors;
        c.soloBed = &bed;
        c.measureBed = &faulty;
        c.label = "FlowStats";
        return c;
    }

    /** Real recalibration: retrain through the (possibly faulted,
     *  possibly biased) measurement path; degraded sub-models count
     *  as failure. */
    core::RecalibrateFn
    recalibrate()
    {
        return [this](std::size_t, std::string *detail) -> Status {
            auto topts = trainOptions();
            topts.screen.verifyBelowRatio = 0.6;
            core::TrainReport report;
            auto fresh =
                trainer->train(*nf, defaults(), topts, &report);
            if (report.subModelsDegraded > 0 ||
                fresh.health().anyDegraded()) {
                return Status::unavailable(
                    "retrain left sub-models degraded");
            }
            model = std::move(fresh);
            if (detail)
                *detail = "retrained";
            return Status::ok();
        };
    }

    regex::RuleSet rules;
    fw::DeviceSet dev;
    sim::Testbed bed;
    sim::FaultInjectingTestbed faulty;
    std::unique_ptr<core::BenchLibrary> lib;
    std::unique_ptr<core::TomurTrainer> trainer;
    std::unique_ptr<fw::NetworkFunction> nf;
    core::TomurModel model;
    std::vector<core::ContentionLevel> levels;
    std::vector<fw::WorkloadProfile> competitors;
};

TEST(DeadlineTest, RunBatchHonoursTheGranuleBudget)
{
    PoolWidth width(1);
    AutoEnv env(/*trainInitial=*/false);
    auto w = env.trainer->workloadOf(*env.nf, AutoEnv::defaults());
    std::vector<std::vector<fw::WorkloadProfile>> batch(6, {w});

    Deadline d = Deadline::afterGranules(2);
    ScopedDeadline scope(d);
    EXPECT_THROW((void)env.bed.runBatch(batch), DeadlineExceeded);
}

// ---------------------------------------------------------------
// Breaker under real fault injection
// ---------------------------------------------------------------

TEST(SupervisorFaults, HeavyCorruptionTripsBreakerCleanProbeCloses)
{
    PoolWidth width(1);
    AutoEnv env(/*trainInitial=*/true);

    // The hook retrains through env.faulty; while `faultsOn`, every
    // measurement is dropped outright, so screening abandons every
    // sample, the retrained model comes back degraded, and the
    // recalibration fails — deterministically, no probabilities.
    sim::FaultConfig dropAll;
    dropAll.dropProb = 1.0;
    bool faultsOn = true;
    auto recal = [&](std::size_t sample,
                     std::string *detail) -> Status {
        env.faulty.setConfig(faultsOn ? dropAll
                                      : sim::FaultConfig{});
        return env.recalibrate()(sample, detail);
    };

    auto &opens =
        metrics().counter("tomur_supervisor_breaker_open_total");
    auto opensBefore = opens.value();

    SupervisorOptions sopts = fastBreaker();
    Supervisor sup(sopts, recal);

    (void)sup.observe(1, recommend(1));
    (void)sup.observe(2, recommend(2));
    ASSERT_EQ(sup.state(), BreakerState::Open)
        << "two corrupted retrains must trip the breaker";
    EXPECT_EQ(opens.value(), opensBefore + 1);

    // Faults cleared: the half-open probe retrains cleanly and the
    // breaker closes again.
    faultsOn = false;
    (void)sup.observe(6, {});
    EXPECT_EQ(sup.state(), BreakerState::Closed);
    EXPECT_EQ(sup.summary().recalibrationsSucceeded, 1u);
    env.faulty.setConfig({});
}

// ---------------------------------------------------------------
// Autopilot chaos golden: crash, resume, byte-identical stream
// ---------------------------------------------------------------

#ifndef TOMUR_GOLDEN_DIR
#define TOMUR_GOLDEN_DIR "tests/golden"
#endif

std::string
goldenPath(const std::string &file)
{
    return std::string(TOMUR_GOLDEN_DIR) + "/" + file;
}

void
checkGolden(const std::string &file, const std::string &actual)
{
    const std::string path = goldenPath(file);
    if (std::getenv("TOMUR_UPDATE_GOLDENS")) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << actual;
        return;
    }
    std::string expected = readFile(path);
    ASSERT_FALSE(expected.empty())
        << path << " is missing; regenerate with "
        << "tools/update_goldens.sh";
    EXPECT_EQ(expected, actual)
        << "golden mismatch for " << file
        << "; if the change is intentional, regenerate with "
        << "tools/update_goldens.sh and review the diff";
}

std::vector<core::ScheduleStep>
goldenSchedule()
{
    auto base = AutoEnv::defaults();
    auto shifted = base.withAttribute(
        traffic::Attribute::FlowCount,
        4.0 * static_cast<double>(base.flowCount));
    return {{base, 14}, {shifted, 14}};
}

/** Monitor with a short event cooldown so the drift detector can
 *  re-fire (and recommend recalibration) inside the 28-sample
 *  schedule. Resume reconstructs the monitor with these same
 *  options, per the serialize() contract. */
core::PredictionMonitor
makeGoldenMonitor()
{
    core::MonitorOptions mopts;
    mopts.cooldown = 6;
    return core::PredictionMonitor(mopts);
}

core::AutopilotOptions
goldenOptions()
{
    core::AutopilotOptions aopts;
    aopts.replay.biasAtSample = 8;
    aopts.replay.biasFactor = 0.7;
    aopts.checkpointEverySamples = 5;
    return aopts;
}

std::string
exportStreams(const core::PredictionMonitor &monitor,
              const Supervisor &sup)
{
    std::ostringstream out;
    monitor.exportJsonl(out);
    sup.exportJsonl(out);
    return out.str();
}

/** Uninterrupted supervised replay; the reference stream. */
std::string
runUninterrupted(const std::string &dir)
{
    AutoEnv env(/*trainInitial=*/true);
    auto ctx = env.ctx();
    auto monitor = makeGoldenMonitor();
    Supervisor sup(fastBreaker(), env.recalibrate());
    auto store = makeStore(dir);
    auto res = core::runAutopilot(ctx, goldenSchedule(), monitor,
                                  sup, &store, goldenOptions());
    EXPECT_TRUE(res) << res.status().toString();
    if (res) {
        EXPECT_EQ(res.value().samples, 28u);
        EXPECT_EQ(res.value().startSample, 0u);
    }
    return exportStreams(monitor, sup);
}

/** The same replay killed after `crashAfterBatches` measurement
 *  batches, then resumed in a from-scratch environment (fresh
 *  testbed, fresh bench library, fresh trainer — everything a real
 *  process restart rebuilds) from the surviving checkpoint. */
std::string
runCrashThenResume(const std::string &dir, long crashAfterBatches)
{
    {
        AutoEnv env(/*trainInitial=*/true);
        auto cfg = env.faulty.faultConfig();
        cfg.crashAfterBatches = crashAfterBatches;
        env.faulty.setConfig(cfg);
        auto ctx = env.ctx();
        auto monitor = makeGoldenMonitor();
        Supervisor sup(fastBreaker(), env.recalibrate());
        auto store = makeStore(dir);
        EXPECT_THROW((void)core::runAutopilot(ctx, goldenSchedule(),
                                              monitor, sup, &store,
                                              goldenOptions()),
                     SimulatedCrash);
    }

    AutoEnv env(/*trainInitial=*/false);
    auto ctx = env.ctx();
    auto monitor = makeGoldenMonitor();
    Supervisor sup(fastBreaker(), env.recalibrate());
    auto store = makeStore(dir);
    auto aopts = goldenOptions();
    aopts.resume = true;
    auto res = core::runAutopilot(ctx, goldenSchedule(), monitor,
                                  sup, &store, aopts);
    EXPECT_TRUE(res) << res.status().toString();
    if (res) {
        EXPECT_GT(res.value().startSample, 0u)
            << "the resume must actually skip replayed samples";
    }
    return exportStreams(monitor, sup);
}

TEST(AutopilotGolden, CrashResumeIsByteIdenticalSerial)
{
    PoolWidth width(1);
    auto reference = runUninterrupted(freshDir("ap_golden_ref"));

    // The scenario must exercise the machinery it claims to pin.
    // Match full event lines, not bare kind names — every kind name
    // also appears (with a zero count) in the summary trailers.
    EXPECT_NE(
        reference.find("{\"supervisor_event\":\"RECALIBRATION_"
                       "STARTED\""),
        std::string::npos);
    EXPECT_NE(reference.find(
                  "{\"supervisor_event\":\"CHECKPOINT_WRITTEN\""),
              std::string::npos);
    EXPECT_NE(reference.find("{\"event\":\"DRIFT_DETECTED\""),
              std::string::npos);

    // Killed mid-replay (after the first checkpoint at sample 5)...
    auto midReplay =
        runCrashThenResume(freshDir("ap_golden_crash1"), 13);
    EXPECT_EQ(reference, midReplay);

    // ...and killed later, past the bias switch and any
    // recalibration activity it triggered.
    auto lateCrash =
        runCrashThenResume(freshDir("ap_golden_crash2"), 21);
    EXPECT_EQ(reference, lateCrash);

    checkGolden("autopilot_events.jsonl", reference);
}

TEST(AutopilotGolden, WideRunIsByteIdenticalToFixture)
{
    PoolWidth width(8);
    auto events = runUninterrupted(freshDir("ap_golden_wide"));
    if (std::getenv("TOMUR_UPDATE_GOLDENS")) {
        // The fixture is written by the serial test; here we only
        // verify the wide run reproduces it.
        std::string serial_events;
        {
            PoolWidth serial(1);
            serial_events =
                runUninterrupted(freshDir("ap_golden_wide_ref"));
        }
        EXPECT_EQ(serial_events, events);
        return;
    }
    checkGolden("autopilot_events.jsonl", events);
}

} // namespace
} // namespace tomur
