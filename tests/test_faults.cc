/**
 * @file
 * Robustness tests: Status/Result plumbing, the fault-injection
 * harness, the corrupted-model corpus (clean failures, no crashes,
 * no mutation of the destination model), the prediction fallback
 * chain, and end-to-end training against a faulty testbed.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/status.hh"
#include "nfs/bench_nfs.hh"
#include "nfs/registry.hh"
#include "regex/ruleset.hh"
#include "sim/faults.hh"
#include "tomur/profiler.hh"

namespace tomur {
namespace {

namespace fw = framework;

// ---------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------

TEST(StatusTest, OkAndErrors)
{
    auto ok = Status::ok();
    EXPECT_TRUE(ok.isOk());
    EXPECT_TRUE(static_cast<bool>(ok));
    EXPECT_EQ(ok.code(), StatusCode::Ok);

    auto bad = Status::corruptData("broken header");
    EXPECT_FALSE(bad.isOk());
    EXPECT_FALSE(static_cast<bool>(bad));
    EXPECT_EQ(bad.code(), StatusCode::CorruptData);
    EXPECT_NE(bad.toString().find("broken header"),
              std::string::npos);

    auto wrapped = bad.withContext("loading model");
    EXPECT_EQ(wrapped.code(), StatusCode::CorruptData);
    EXPECT_NE(wrapped.message().find("loading model"),
              std::string::npos);
    EXPECT_NE(wrapped.message().find("broken header"),
              std::string::npos);
}

TEST(StatusTest, ResultCarriesValueOrStatus)
{
    Result<double> good = 4.5;
    ASSERT_TRUE(good.isOk());
    EXPECT_DOUBLE_EQ(good.value(), 4.5);
    EXPECT_DOUBLE_EQ(good.valueOr(-1.0), 4.5);

    Result<double> bad = Status::unavailable("no estimate");
    EXPECT_FALSE(bad.isOk());
    EXPECT_EQ(bad.status().code(), StatusCode::Unavailable);
    EXPECT_DOUBLE_EQ(bad.valueOr(-1.0), -1.0);
}

TEST(StatsTest, MedianAbsoluteDeviation)
{
    EXPECT_DOUBLE_EQ(mad({}), 0.0);
    EXPECT_DOUBLE_EQ(mad({3.0}), 0.0);
    // median = 5, deviations {4, 1, 0, 1, 4} -> mad = 1.
    EXPECT_DOUBLE_EQ(mad({1.0, 4.0, 5.0, 6.0, 9.0}), 1.0);
    // A wild outlier barely moves the MAD (that is the point).
    EXPECT_DOUBLE_EQ(mad({1.0, 4.0, 5.0, 6.0, 1e9}), 1.0);
}

TEST(LoggingTest, WarnEventCounts)
{
    resetWarnCount();
    EXPECT_EQ(warnCount(), 0u);
    warnEvent("test", "something-odd", {{"k", "v"}});
    EXPECT_EQ(warnCount(), 1u);
    resetWarnCount();
}

// ---------------------------------------------------------------
// Fault-injection harness
// ---------------------------------------------------------------

fw::WorkloadProfile
memBenchWorkload()
{
    nfs::MemBenchConfig cfg;
    cfg.wssBytes = 8.0 * 1024 * 1024;
    cfg.targetAccessRate = 40e6;
    auto nf = nfs::makeMemBench(cfg);
    traffic::TrafficProfile p;
    p.flowCount = 16;
    p.mtbr = 0.0; // no regex traffic: no ruleset needed
    return fw::profileWorkload(*nf, p, nullptr);
}

TEST(FaultInjection, CleanConfigIsPassthrough)
{
    sim::Testbed bed(hw::blueField2(), {});
    sim::FaultInjectingTestbed faulty(bed, {});
    auto w = memBenchWorkload();
    auto ms = faulty.run({w, w});
    ASSERT_EQ(ms.size(), 2u);
    EXPECT_TRUE(std::isfinite(ms[0].throughput));
    EXPECT_GT(ms[0].throughput, 0.0);
    EXPECT_EQ(faulty.stats().total(), 0u);
    EXPECT_EQ(faulty.stats().batches, 1u);
    EXPECT_EQ(faulty.stats().measurements, 2u);
}

TEST(FaultInjection, SeededAndReproducible)
{
    auto cfg = sim::FaultConfig::uniformCorruption(0.5, 42);
    auto w = memBenchWorkload();

    auto sequence = [&] {
        sim::Testbed bed(hw::blueField2(), {});
        sim::FaultInjectingTestbed faulty(bed, cfg);
        std::vector<double> out;
        for (int i = 0; i < 30; ++i) {
            for (const auto &m : faulty.run({w, w}))
                out.push_back(m.throughput);
        }
        return out;
    };
    auto a = sequence();
    auto b = sequence();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (std::isnan(a[i])) {
            EXPECT_TRUE(std::isnan(b[i]));
        } else {
            EXPECT_DOUBLE_EQ(a[i], b[i]);
        }
    }
}

TEST(FaultInjection, InjectsAndCountsFaults)
{
    sim::Testbed bed(hw::blueField2(), {});
    sim::FaultInjectingTestbed faulty(
        bed, sim::FaultConfig::uniformCorruption(0.6, 7));
    auto w = memBenchWorkload();
    bool saw_truncation = false;
    for (int i = 0; i < 40; ++i) {
        auto ms = faulty.run({w, w, w});
        EXPECT_LE(ms.size(), 3u);
        saw_truncation |= ms.size() < 3u;
        // Ground-truth fields are never corrupted.
        for (const auto &m : ms) {
            EXPECT_TRUE(std::isfinite(m.truthThroughput));
            EXPECT_GT(m.truthThroughput, 0.0);
        }
    }
    EXPECT_TRUE(saw_truncation);
    EXPECT_GT(faulty.stats().total(), 0u);
    using sim::FaultMode;
    EXPECT_GT(faulty.stats()
                  .injected[static_cast<int>(FaultMode::TruncatedBatch)],
              0u);
}

TEST(FaultInjection, ReconfigureResetsStatsButKeepsRngStream)
{
    sim::Testbed bed(hw::blueField2(), {});
    sim::FaultInjectingTestbed faulty(
        bed, sim::FaultConfig::uniformCorruption(0.6, 7));
    auto w = memBenchWorkload();
    for (int i = 0; i < 20; ++i)
        faulty.run({w, w});
    ASSERT_GT(faulty.stats().total(), 0u);

    // Re-arming mid-run must not carry the old campaign's injection
    // counts into the new config's ledger.
    faulty.setConfig(sim::FaultConfig::uniformCorruption(0.1, 99));
    EXPECT_EQ(faulty.stats().total(), 0u);
    EXPECT_EQ(faulty.stats().batches, 0u);
    EXPECT_EQ(faulty.stats().measurements, 0u);
    for (std::size_t c : faulty.stats().injected)
        EXPECT_EQ(c, 0u);

    // And the new config is live: fresh counts accumulate.
    for (int i = 0; i < 40; ++i)
        faulty.run({w, w});
    EXPECT_GT(faulty.stats().total(), 0u);
    EXPECT_EQ(faulty.stats().batches, 40u);
}

TEST(FaultInjection, DegradedAccelIsDeterministic)
{
    auto rules = regex::defaultRuleSet();
    fw::DeviceSet dev;
    dev.regex = std::make_shared<fw::RegexDevice>(rules);
    nfs::RegexBenchConfig cfg;
    cfg.requestRate = 100e3;
    auto nf = nfs::makeRegexBench(dev, cfg);
    traffic::TrafficProfile p;
    p.flowCount = 16;
    p.mtbr = 600;
    auto w = fw::profileWorkload(*nf, p, &rules);
    ASSERT_TRUE(w.usesAccel(hw::AccelKind::Regex));

    // Two identically seeded inner testbeds: the only difference is
    // the injector's deterministic degradation factor.
    sim::Testbed clean(hw::blueField2(), {});
    sim::Testbed inner(hw::blueField2(), {});
    sim::FaultConfig fc;
    fc.degradedAccelEnabled = true;
    fc.degradedAccelKind = hw::AccelKind::Regex;
    fc.degradedAccelFactor = 0.5;
    sim::FaultInjectingTestbed faulty(inner, fc);

    auto m_clean = clean.run({w});
    auto m_faulty = faulty.run({w});
    ASSERT_EQ(m_clean.size(), 1u);
    ASSERT_EQ(m_faulty.size(), 1u);
    EXPECT_NEAR(m_faulty[0].throughput,
                0.5 * m_clean[0].throughput,
                1e-9 * m_clean[0].throughput);
}

// ---------------------------------------------------------------
// Corrupted-model corpus
// ---------------------------------------------------------------

/** Hand-build a valid serialized model body (the format is text and
 *  documented, so tests need no trained TomurModel to get one). */
std::string
craftValidBody()
{
    Rng rng(17);
    core::MemoryModel mm;
    ml::Dataset mem_data(mm.featureNames());
    auto defaults = traffic::TrafficProfile::defaults();
    for (int i = 0; i < 80; ++i) {
        core::ContentionLevel lvl;
        lvl.counters.l2ReadRate = rng.uniform(1e5, 5e7);
        lvl.counters.memReadRate = rng.uniform(1e5, 2e7);
        lvl.counters.wssBytes = rng.uniform(1e6, 3e7);
        auto p = defaults.withAttribute(
            traffic::Attribute::FlowCount, rng.uniform(1e3, 5e5));
        mem_data.add(mm.featuresFor({lvl}, p),
                     rng.uniform(0.3, 1.0));
    }
    EXPECT_TRUE(mm.fit(mem_data));

    ml::Dataset solo_data(
        std::vector<std::string>{"flow_count", "packet_size",
                                 "mtbr"});
    for (int i = 0; i < 40; ++i) {
        double flows = rng.uniform(1e3, 5e5);
        solo_data.add({flows, 1500.0, 600.0}, 1e6 - flows);
    }
    ml::GradientBoostingRegressor solo;
    solo.fit(solo_data);

    std::ostringstream body;
    body << "nf crafted\n";
    body << "pattern rtc\n";
    body << "health 0 0";
    for (int k = 0; k < hw::numAccelKinds; ++k)
        body << " 0";
    body << "\n";
    EXPECT_TRUE(mm.save(body));
    body << "solo_models 1\n";
    solo.save(body);
    for (int k = 0; k < hw::numAccelKinds; ++k)
        body << "accel " << k << " 0\n";
    return body.str();
}

/** Wrap a body in a well-formed v2 header (correct length and
 *  checksum), so corruption *inside* the body is what gets tested. */
std::string
wrapV2(const std::string &body)
{
    std::ostringstream out;
    out << "tomur_model 2 " << body.size() << " " << std::hex
        << core::modelBodyChecksum(body) << "\n"
        << body;
    return out.str();
}

/** Expect load() to fail cleanly: error status with a message, and
 *  the destination model untouched. */
void
expectCleanRejection(const std::string &file,
                     const std::string &label)
{
    // The destination already holds a valid model; a failed load
    // must not disturb it.
    core::TomurModel m;
    std::istringstream valid(wrapV2(craftValidBody()));
    ASSERT_TRUE(m.load(valid)) << label;
    auto p = traffic::TrafficProfile::defaults();
    double before = m.soloThroughput(p);

    std::istringstream in(file);
    auto st = m.load(in);
    EXPECT_FALSE(st) << label << ": load should have failed";
    EXPECT_FALSE(st.message().empty()) << label;
    EXPECT_EQ(m.nfName(), "crafted") << label;
    EXPECT_DOUBLE_EQ(m.soloThroughput(p), before) << label;
}

TEST(CorruptModelCorpus, ValidCraftedFileLoads)
{
    core::TomurModel m;
    std::istringstream in(wrapV2(craftValidBody()));
    ASSERT_TRUE(m.load(in));
    EXPECT_EQ(m.nfName(), "crafted");
    EXPECT_FALSE(m.health().anyDegraded());
    EXPECT_TRUE(m.memoryModel().fitted());
    auto p = traffic::TrafficProfile::defaults();
    EXPECT_TRUE(std::isfinite(m.soloThroughput(p)));
}

TEST(CorruptModelCorpus, HeaderCorruptions)
{
    std::string valid = wrapV2(craftValidBody());
    // Wrong magic.
    expectCleanRejection("not_a_model 2 10 abc\nxxxxxxxxxx",
                         "wrong magic");
    // Wrong version (the v1 upgrade path is an explicit error).
    expectCleanRejection("tomur_model 1 10 abc\nxxxxxxxxxx",
                         "old version");
    expectCleanRejection("tomur_model 99 10 abc\nxxxxxxxxxx",
                         "future version");
    // Unparseable checksum token.
    expectCleanRejection("tomur_model 2 10 zzzz\nxxxxxxxxxx",
                         "bad checksum token");
    // Hostile body length: must be rejected before any allocation.
    expectCleanRejection("tomur_model 2 999999999999 abc\n",
                         "huge declared length");
    expectCleanRejection("tomur_model 2 0 abc\n", "zero length");
    // Declared length larger than the actual body (truncated file).
    {
        auto cut = valid.substr(0, valid.size() / 2);
        expectCleanRejection(cut, "body shorter than declared");
    }
}

TEST(CorruptModelCorpus, TruncationsAtEveryStride)
{
    std::string valid = wrapV2(craftValidBody());
    core::TomurModel m;
    // Truncations march through the header and the whole body; every
    // prefix must be rejected without crash or UB.
    for (std::size_t cut = 0; cut < valid.size();
         cut += std::max<std::size_t>(1, valid.size() / 97)) {
        std::istringstream in(valid.substr(0, cut));
        auto st = m.load(in);
        EXPECT_FALSE(st) << "prefix of " << cut << " bytes loaded";
        EXPECT_FALSE(st.message().empty());
    }
}

TEST(CorruptModelCorpus, BitFlipsAreDetected)
{
    std::string valid = wrapV2(craftValidBody());
    // The checksum covers every body byte, so any body flip must be
    // caught (header damage is covered by HeaderCorruptions).
    std::size_t body_start = valid.find('\n') + 1;
    Rng rng(23);
    for (int trial = 0; trial < 64; ++trial) {
        std::string damaged = valid;
        auto pos = body_start +
                   rng.uniformInt(damaged.size() - body_start);
        damaged[pos] =
            static_cast<char>(damaged[pos] ^
                              (1 << rng.uniformInt(std::uint64_t{8})));
        core::TomurModel m;
        std::istringstream in(damaged);
        auto st = m.load(in);
        if (st.isOk()) {
            ADD_FAILURE() << "bit flip at byte " << pos
                          << " went undetected";
        } else {
            EXPECT_FALSE(st.message().empty());
        }
    }
}

TEST(CorruptModelCorpus, ChecksummedButPoisonedBodies)
{
    // Correct header + checksum over a hostile body: the per-section
    // bounds still reject it (the checksum only proves integrity,
    // not trustworthiness).
    std::string base = craftValidBody();

    // Hostile ensemble count in the memory model section.
    {
        auto poisoned = base;
        auto pos = poisoned.find("memory_model ");
        ASSERT_NE(pos, std::string::npos);
        poisoned.replace(pos, std::string("memory_model 3").size(),
                         "memory_model 1000000");
        expectCleanRejection(wrapV2(poisoned),
                             "huge memory ensemble");
    }
    // Hostile solo-model count.
    {
        auto poisoned = base;
        auto pos = poisoned.find("solo_models 1");
        ASSERT_NE(pos, std::string::npos);
        poisoned.replace(pos, std::string("solo_models 1").size(),
                         "solo_models 999999");
        expectCleanRejection(wrapV2(poisoned), "huge solo count");
    }
    // Unknown execution pattern.
    {
        auto poisoned = base;
        auto pos = poisoned.find("pattern rtc");
        ASSERT_NE(pos, std::string::npos);
        poisoned.replace(pos, std::string("pattern rtc").size(),
                         "pattern xyz");
        expectCleanRejection(wrapV2(poisoned), "bad pattern");
    }
}

TEST(CorruptModelCorpus, HealthFlagsRoundTrip)
{
    core::TomurModel m;
    std::istringstream in(wrapV2(craftValidBody()));
    ASSERT_TRUE(m.load(in));
    m.markAccelDegraded(hw::AccelKind::Regex, "unit test");
    m.markSoloDegraded("unit test");
    ASSERT_TRUE(m.health().anyDegraded());

    std::stringstream ss;
    ASSERT_TRUE(m.save(ss));
    core::TomurModel reloaded;
    ASSERT_TRUE(reloaded.load(ss));
    EXPECT_TRUE(reloaded.health().soloDegraded);
    EXPECT_FALSE(reloaded.health().memoryDegraded);
    EXPECT_TRUE(reloaded.health().accelDegraded[static_cast<int>(
        hw::AccelKind::Regex)]);
}

// ---------------------------------------------------------------
// Fallback chain
// ---------------------------------------------------------------

core::ContentionLevel
someContention()
{
    core::ContentionLevel lvl;
    lvl.counters.l2ReadRate = 2e7;
    lvl.counters.memReadRate = 1e7;
    lvl.counters.wssBytes = 2e7;
    return lvl;
}

TEST(FallbackChain, FullModelIsNotDegraded)
{
    core::TomurModel m;
    std::istringstream in(wrapV2(craftValidBody()));
    ASSERT_TRUE(m.load(in));
    auto p = traffic::TrafficProfile::defaults();
    auto b = m.predictDetailed({someContention()}, p, 5e5);
    EXPECT_FALSE(b.degraded);
    EXPECT_DOUBLE_EQ(b.confidence, 1.0);
    EXPECT_TRUE(b.degradedReason.empty());
}

TEST(FallbackChain, DegradedAccelCapsConfidence)
{
    core::TomurModel m;
    std::istringstream in(wrapV2(craftValidBody()));
    ASSERT_TRUE(m.load(in));
    m.markAccelDegraded(hw::AccelKind::Regex, "unit test");
    auto p = traffic::TrafficProfile::defaults();
    resetWarnCount();
    auto b = m.predictDetailed({someContention()}, p, 5e5);
    EXPECT_TRUE(b.degraded);
    EXPECT_LE(b.confidence, 0.6);
    EXPECT_NE(b.degradedReason.find("regex"), std::string::npos);
    EXPECT_GT(warnCount(), 0u); // the fallback logged a WARN event
    resetWarnCount();
}

TEST(FallbackChain, DegradedMemoryFallsBackToSoloHint)
{
    core::TomurModel m;
    std::istringstream in(wrapV2(craftValidBody()));
    ASSERT_TRUE(m.load(in));
    m.markMemoryDegraded("unit test");
    auto p = traffic::TrafficProfile::defaults();
    const double hint = 4.2e5;
    auto b = m.predictDetailed({someContention()}, p, hint);
    EXPECT_TRUE(b.degraded);
    EXPECT_LE(b.confidence, 0.25);
    // Solo-hint passthrough: contention is ignored entirely.
    EXPECT_DOUBLE_EQ(b.predicted, hint);
    resetWarnCount();
}

TEST(FallbackChain, UntrainedModelReportsNoInformation)
{
    core::TomurModel m; // never trained, never loaded
    auto p = traffic::TrafficProfile::defaults();
    auto r = m.trySoloThroughput(p);
    EXPECT_FALSE(r.isOk());
    EXPECT_EQ(r.status().code(), StatusCode::FailedPrecondition);
    EXPECT_DOUBLE_EQ(m.soloThroughput(p), 0.0); // warns, no panic

    auto b = m.predictDetailed({someContention()}, p, -1.0);
    EXPECT_TRUE(b.degraded);
    EXPECT_DOUBLE_EQ(b.confidence, 0.0);
    EXPECT_DOUBLE_EQ(b.predicted, 0.0);
    resetWarnCount();
}

// ---------------------------------------------------------------
// Fault-injected end-to-end training
// ---------------------------------------------------------------

TEST(FaultyTraining, CompletesAndStaysAccurate)
{
    auto rules = regex::defaultRuleSet();
    fw::DeviceSet dev;
    dev.regex = std::make_shared<fw::RegexDevice>(rules);
    dev.compression = std::make_shared<fw::CompressionDevice>();
    dev.crypto = std::make_shared<fw::CryptoDevice>();
    auto defaults = traffic::TrafficProfile::defaults();

    core::TrainOptions opts;
    opts.adaptive.quota = 50;

    // Clean reference run.
    sim::Testbed clean_bed(hw::blueField2(), {});
    core::BenchLibrary clean_lib(clean_bed, dev, rules);
    core::TomurTrainer clean_trainer(clean_lib);
    auto clean_nf = nfs::makeByName("FlowStats", dev);
    core::TrainReport clean_report;
    auto clean_model = clean_trainer.train(*clean_nf, defaults, opts,
                                           &clean_report);
    EXPECT_EQ(clean_report.faultySamplesDetected, 0u);
    EXPECT_EQ(clean_report.samplesAbandoned, 0u);
    EXPECT_EQ(clean_report.subModelsDegraded, 0u);
    EXPECT_FALSE(clean_model.health().anyDegraded());

    // Faulty run: 10% sample corruption, library profiled cleanly
    // first (it is a one-time controlled step), then faults on.
    sim::Testbed inner(hw::blueField2(), {});
    sim::FaultInjectingTestbed faulty(inner, {});
    core::BenchLibrary faulty_lib(faulty, dev, rules);
    core::TomurTrainer faulty_trainer(faulty_lib);
    faulty.setConfig(sim::FaultConfig::uniformCorruption(0.10, 99));

    auto faulty_nf = nfs::makeByName("FlowStats", dev);
    core::TrainOptions fopts = opts;
    fopts.screen.verifyBelowRatio = 0.6; // deep screen on bad gear
    core::TrainReport report;
    auto model = faulty_trainer.train(*faulty_nf, defaults, fopts,
                                      &report);

    // Training completed and the screens actually caught things.
    EXPECT_GT(report.faultySamplesDetected, 0u);
    EXPECT_GT(report.memorySamples, 0u);

    // Score both models against noise-free ground truth on unseen
    // co-runs (the evaluation itself uses the clean testbed).
    auto eval = [&](const core::TomurModel &mdl,
                    core::BenchLibrary &lib) {
        Rng rng(5);
        double err_sum = 0.0;
        int n = 0;
        auto nf = nfs::makeByName("FlowStats", dev);
        core::TomurTrainer probe(lib); // workload profiling only
        for (int i = 0; i < 6; ++i) {
            auto p = defaults.withAttribute(
                traffic::Attribute::FlowCount,
                rng.uniform(2e3, 4e5));
            const auto &w = probe.workloadOf(*nf, p);
            const auto &bench = clean_lib.randomMemBench(rng);
            auto ms = clean_bed.run({w, bench.workload});
            double truth = ms[0].truthThroughput;
            double solo = clean_bed.runSolo(w).truthThroughput;
            double pred =
                mdl.predict({bench.level}, p, solo);
            err_sum += std::abs(pred - truth) / truth;
            ++n;
        }
        return err_sum / n;
    };
    double clean_err = eval(clean_model, clean_lib);
    double faulty_err = eval(model, clean_lib);

    // Graceful degradation: the fault-trained model stays within 2x
    // of the fault-free error (with a small absolute floor so a
    // near-perfect clean run does not make the bound vacuous).
    EXPECT_LE(faulty_err, std::max(2.0 * clean_err, 0.10))
        << "clean_err=" << clean_err
        << " faulty_err=" << faulty_err;

    // Clean-model predictions are never flagged degraded.
    Rng pick(1);
    std::vector<core::ContentionLevel> one_bench = {
        clean_lib.randomMemBench(pick).level};
    auto b = clean_model.predictDetailed(one_bench, defaults, 5e5);
    EXPECT_FALSE(b.degraded);
    resetWarnCount();
}

} // namespace
} // namespace tomur
