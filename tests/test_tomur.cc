/**
 * @file
 * Tests for the Tomur core: accelerator queue model calibration,
 * composition formulas, adaptive profiling, contention descriptors,
 * and a small end-to-end train/predict round trip.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nfs/registry.hh"
#include "nfs/synthetic.hh"
#include "regex/ruleset.hh"
#include "tomur/adaptive.hh"
#include "tomur/composition.hh"
#include "tomur/profiler.hh"

namespace tomur::core {
namespace {

namespace fw = framework;

TEST(Composition, PipelineTakesWorstDrop)
{
    double t = compose(CompositionKind::ExecutionPattern,
                       fw::ExecutionPattern::Pipeline, 1000.0,
                       {100.0, 300.0, 50.0});
    EXPECT_DOUBLE_EQ(t, 700.0);
}

TEST(Composition, RtcMatchesEquation4)
{
    // Eq. 4 with r = 2: T = 1/(1/(T0-d1) + 1/(T0-d2) - 1/T0).
    double t0 = 1000.0, d1 = 200.0, d2 = 100.0;
    double expected =
        1.0 / (1.0 / (t0 - d1) + 1.0 / (t0 - d2) - 1.0 / t0);
    double got = compose(CompositionKind::ExecutionPattern,
                         fw::ExecutionPattern::RunToCompletion, t0,
                         {d1, d2});
    EXPECT_NEAR(got, expected, 1e-9);
}

TEST(Composition, SingleResourcePatternsCoincide)
{
    for (double drop : {0.0, 100.0, 900.0}) {
        double p = compose(CompositionKind::ExecutionPattern,
                           fw::ExecutionPattern::Pipeline, 1000.0,
                           {drop});
        double r = compose(CompositionKind::ExecutionPattern,
                           fw::ExecutionPattern::RunToCompletion,
                           1000.0, {drop});
        EXPECT_NEAR(p, r, 1e-6);
    }
}

TEST(Composition, SumAndMinStrawmen)
{
    std::vector<double> drops = {100.0, 300.0};
    EXPECT_DOUBLE_EQ(compose(CompositionKind::Sum,
                             fw::ExecutionPattern::Pipeline, 1000.0,
                             drops),
                     600.0);
    EXPECT_DOUBLE_EQ(compose(CompositionKind::Min,
                             fw::ExecutionPattern::Pipeline, 1000.0,
                             drops),
                     700.0);
}

TEST(Composition, ClampsToValidRange)
{
    EXPECT_DOUBLE_EQ(compose(CompositionKind::Sum,
                             fw::ExecutionPattern::Pipeline, 100.0,
                             {80.0, 80.0}),
                     0.0);
    EXPECT_DOUBLE_EQ(compose(CompositionKind::ExecutionPattern,
                             fw::ExecutionPattern::Pipeline, 100.0,
                             {}),
                     100.0);
}

TEST(Composition, RtcAlwaysBelowPipeline)
{
    // Property: with equal drops, run-to-completion predicts lower
    // throughput (sojourns add up).
    Rng rng(4);
    for (int i = 0; i < 100; ++i) {
        double t0 = rng.uniform(100, 10000);
        std::vector<double> drops = {rng.uniform(0, t0 * 0.8),
                                     rng.uniform(0, t0 * 0.8)};
        double p = compose(CompositionKind::ExecutionPattern,
                           fw::ExecutionPattern::Pipeline, t0, drops);
        double r = compose(CompositionKind::ExecutionPattern,
                           fw::ExecutionPattern::RunToCompletion, t0,
                           drops);
        EXPECT_LE(r, p + 1e-9);
    }
}

TEST(PatternDetection, RecoversBothPatterns)
{
    // Synthesize observations from each branch of Eq. 7 and check
    // the detector recovers the generating pattern.
    Rng rng(5);
    for (auto truth : {fw::ExecutionPattern::Pipeline,
                       fw::ExecutionPattern::RunToCompletion}) {
        std::vector<PatternObservation> obs;
        for (int i = 0; i < 6; ++i) {
            PatternObservation o;
            o.soloThroughput = 1000.0;
            o.drops = {rng.uniform(50, 600), rng.uniform(50, 600)};
            o.measuredThroughput =
                compose(CompositionKind::ExecutionPattern, truth,
                        o.soloThroughput, o.drops) *
                rng.lognormalFactor(0.01);
            obs.push_back(std::move(o));
        }
        EXPECT_EQ(detectPattern(obs), truth);
    }
}

TEST(AccelModel, RecoversKnownSystem)
{
    // Ground truth: n = 1 queue, t(p, m) = t0 + b p + a (m p / 1e6).
    const double t0 = 0.3e-6, b = 1.25e-10, a = 0.5e-6;
    auto service = [&](double mtbr, double payload) {
        return t0 + b * payload + a * mtbr * payload / 1e6;
    };
    std::vector<AccelCalibrationPoint> points;
    for (double mtbr : {100.0, 500.0, 900.0}) {
        for (double payload : {400.0, 1434.0}) {
            for (double tb : {1e-6, 2e-6}) {
                AccelCalibrationPoint p;
                p.benchServiceTime = tb;
                p.mtbr = mtbr;
                p.payloadBytes = payload;
                // Equilibrium of Eq. 2: 1/T = t + t_b / n, n = 1.
                p.measuredThroughput =
                    1.0 / (service(mtbr, payload) + tb);
                points.push_back(p);
            }
        }
    }
    AccelQueueModel m;
    ASSERT_TRUE(m.calibrate(points));
    EXPECT_EQ(m.queues(), 1);
    EXPECT_NEAR(m.baseServiceTime(), t0, t0 * 0.05);
    EXPECT_NEAR(m.perMatchTime(), a, a * 0.05);
    EXPECT_NEAR(m.serviceTime(600, 1434),
                service(600, 1434), service(600, 1434) * 0.02);
}

TEST(AccelModel, RecoversMultipleQueues)
{
    const int n = 3;
    const double t = 1e-6;
    std::vector<AccelCalibrationPoint> points;
    for (double tb : {1e-6, 2e-6, 3e-6}) {
        AccelCalibrationPoint p;
        p.benchServiceTime = tb;
        p.mtbr = 600;
        p.payloadBytes = 1434;
        p.measuredThroughput = 1.0 / (t + tb / n);
        points.push_back(p);
    }
    AccelQueueModel m;
    ASSERT_TRUE(m.calibrate(points));
    EXPECT_EQ(m.queues(), n);
}

TEST(AccelModel, PredictsEquilibriumAgainstClosedCompetitor)
{
    AccelQueueModel m;
    std::vector<AccelCalibrationPoint> points;
    const double t = 1e-6;
    for (double tb : {1e-6, 2e-6}) {
        AccelCalibrationPoint p;
        p.benchServiceTime = tb;
        p.mtbr = 600;
        p.payloadBytes = 1434;
        p.measuredThroughput = 1.0 / (t + tb);
        points.push_back(p);
    }
    ASSERT_TRUE(m.calibrate(points));

    AccelContention comp;
    comp.used = true;
    comp.queues = 1;
    comp.serviceTime = t;
    comp.closedLoop = true;
    // Two equal closed-loop queues: each gets 1/(2t).
    double pred = m.predictThroughput(600, 1434, {comp});
    EXPECT_NEAR(pred, 1.0 / (2 * t), 1.0 / (2 * t) * 0.05);
    // No competitors: full rate 1/t.
    EXPECT_NEAR(m.predictThroughput(600, 1434, {}), 1.0 / t,
                1.0 / t * 0.05);
}

TEST(AccelModel, CalibrationValidationErrors)
{
    // Calibration failures are reported as Status errors (the
    // trainer degrades the accelerator sub-model instead of
    // aborting the whole run).
    AccelQueueModel m;
    auto empty = m.calibrate({});
    EXPECT_FALSE(empty);
    EXPECT_NE(empty.message().find("two calibration points"),
              std::string::npos);
    std::vector<AccelCalibrationPoint> same_tb(
        3, AccelCalibrationPoint{1e-6, 5e5, 600, 1434});
    auto degenerate = m.calibrate(same_tb);
    EXPECT_FALSE(degenerate);
    EXPECT_NE(degenerate.message().find("constrain"),
              std::string::npos);
    EXPECT_FALSE(m.calibrated());
}

TEST(Contention, AggregationAndFeatures)
{
    ContentionLevel a, b;
    a.counters.l2ReadRate = 10;
    b.counters.l2ReadRate = 32;
    auto agg = aggregateCounters({a, b});
    EXPECT_DOUBLE_EQ(agg.l2ReadRate, 42.0);

    auto f = memoryFeatures({a, b}, traffic::TrafficProfile::defaults());
    ASSERT_EQ(f.size(), memoryFeatureNames().size());
    EXPECT_DOUBLE_EQ(f[2], 42.0);       // L2CRD position
    EXPECT_DOUBLE_EQ(f[7], 16000.0);    // flow count appended
}

TEST(Adaptive, PrunesInsensitiveAttributes)
{
    // Synthetic NF: only sensitive to flow count.
    AdaptiveCallbacks cb;
    cb.solo = [](const traffic::TrafficProfile &p) {
        return 1e6 / (1.0 + p.flowCount / 50e3);
    };
    int collected = 0;
    cb.collect = [&](const traffic::TrafficProfile &) { ++collected; };

    auto res = adaptiveProfile(cb, traffic::TrafficProfile::defaults());
    ASSERT_EQ(res.keptAttributes.size(), 1u);
    EXPECT_EQ(res.keptAttributes[0], traffic::Attribute::FlowCount);
    EXPECT_GT(collected, 0);
    EXPECT_GT(res.samplesUsed, 0u);
}

TEST(Adaptive, RespectsQuota)
{
    AdaptiveCallbacks cb;
    cb.solo = [](const traffic::TrafficProfile &p) {
        return 1e6 / (1.0 + p.flowCount / 1e3 + p.mtbr);
    };
    int collected = 0;
    cb.collect = [&](const traffic::TrafficProfile &) { ++collected; };
    AdaptiveOptions opts;
    opts.quota = 30;
    auto res = adaptiveProfile(cb, traffic::TrafficProfile::defaults(),
                               opts);
    EXPECT_LE(res.samplesUsed, opts.quota + 1);
}

TEST(Adaptive, SamplesConcentrateWhereCurveMoves)
{
    // Piece-wise solo curve: changes only below 100K flows; sampled
    // midpoints should cluster there.
    AdaptiveCallbacks cb;
    cb.solo = [](const traffic::TrafficProfile &p) {
        double f = static_cast<double>(p.flowCount);
        return f < 100e3 ? 1e6 - 8.0 * f : 0.2e6;
    };
    std::vector<traffic::TrafficProfile> sampled;
    cb.collect = [&](const traffic::TrafficProfile &p) {
        sampled.push_back(p);
    };
    AdaptiveOptions opts;
    opts.quota = 200;
    auto res = adaptiveProfile(cb, traffic::TrafficProfile::defaults(),
                               opts,
                               {traffic::Attribute::FlowCount});
    std::size_t low = 0, high = 0;
    for (const auto &p : sampled) {
        // Skip anchors at default/extremes; count split midpoints.
        if (p.flowCount == 16000 || p.flowCount == 1000 ||
            p.flowCount == 500000) {
            continue;
        }
        (p.flowCount < 150e3 ? low : high)++;
    }
    EXPECT_GT(low, 2 * high);
}

TEST(EndToEnd, TrainedModelBeatsNaiveOnRegexNf)
{
    // Small end-to-end round trip: train on FlowMonitor with a tight
    // quota, verify prediction under combined contention lands near
    // ground truth while a memory-only view does not.
    auto rules = regex::defaultRuleSet();
    fw::DeviceSet dev;
    dev.regex = std::make_shared<fw::RegexDevice>(rules);
    dev.compression = std::make_shared<fw::CompressionDevice>();
        dev.crypto = std::make_shared<fw::CryptoDevice>();
    sim::Testbed bed(hw::blueField2(), {});
    BenchLibrary lib(bed, dev, rules);
    TomurTrainer trainer(lib);

    auto defaults = traffic::TrafficProfile::defaults();
    auto nf = nfs::makeFlowMonitor(dev);
    TrainOptions opts;
    opts.adaptive.quota = 80;
    TrainReport report;
    auto model = trainer.train(*nf, defaults, opts, &report);

    // Note: FlowMonitor's execution pattern is only weakly
    // observable (its solo throughput is already regex-bound, so
    // memory-only probes reveal little about the CPU stage); either
    // Eq. 7 branch predicts within a few percent, so the detected
    // label is not asserted here — prediction quality below is.
    EXPECT_TRUE(model.accelModel(hw::AccelKind::Regex).has_value());
    EXPECT_FALSE(
        model.accelModel(hw::AccelKind::Compression).has_value());
    EXPECT_GT(report.memorySamples, 20u);

    // Combined contention scenario.
    const auto &rx = lib.accelBench(hw::AccelKind::Regex, 400e3, 800);
    const auto &mem = lib.memBenches()[50];
    auto ms = bed.run({trainer.workloadOf(*nf, defaults), mem.workload,
                       rx.workload});
    double truth = ms[0].truthThroughput;
    double solo =
        bed.runSolo(trainer.workloadOf(*nf, defaults)).truthThroughput;
    double pred =
        model.predict({mem.level, rx.level}, defaults, solo);
    EXPECT_NEAR(pred / truth, 1.0, 0.15);

    // The memory-only per-resource view misses the regex contention.
    auto breakdown =
        model.predictDetailed({mem.level, rx.level}, defaults, solo);
    EXPECT_GT(breakdown.memoryOnlyThroughput,
              breakdown.accelOnlyThroughput[0]);
}

} // namespace
} // namespace tomur::core
