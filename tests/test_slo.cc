/**
 * @file
 * SLO tracker tests: bad-outcome classification per objective kind,
 * path slicing, the multi-window burn rule with its full-fast-window
 * guard, recovery hysteresis, verdict-ring eviction at the window
 * edges, the bounded event ring, metric mirroring, and the pure-fold
 * determinism the serve-observatory golden depends on.
 */

#include <gtest/gtest.h>

#include "common/slo.hh"
#include "common/telemetry.hh"

namespace tomur {
namespace {

/** A permissive objective: nothing fires unless a test wants it. */
SloObjective
quietObjective(const std::string &name)
{
    SloObjective o;
    o.name = name;
    o.target = 0.9;
    o.fastWindow = 4;
    o.slowWindow = 8;
    o.burnThreshold = 1e9; // never fires
    return o;
}

SloOutcome
outcome(int status, const std::string &path = "/predict",
        double latencyMs = 1.0, bool deadlineMiss = false)
{
    SloOutcome out;
    out.path = path;
    out.status = status;
    out.latencyMs = latencyMs;
    out.deadlineMiss = deadlineMiss;
    return out;
}

TEST(SloTracker, AvailabilityCountsOnly5xxAsBad)
{
    SloTracker t({quietObjective("avail_class")});
    t.ingest(outcome(200));
    t.ingest(outcome(404)); // client error: not an availability loss
    t.ingest(outcome(429)); // throttle: refused, not failed
    t.ingest(outcome(503)); // shed: availability loss
    t.ingest(outcome(500));
    auto st = t.states().at(0);
    EXPECT_EQ(st.total, 5u);
    EXPECT_EQ(st.bad, 2u);
}

TEST(SloTracker, LatencyKindCountsThresholdAndDeadline)
{
    auto obj = quietObjective("lat_class");
    obj.kind = SloKind::Latency;
    obj.latencyThresholdMs = 50.0;
    SloTracker t({obj});
    t.ingest(outcome(200, "/predict", 10.0));          // good
    t.ingest(outcome(200, "/predict", 60.0));          // too slow
    t.ingest(outcome(200, "/predict", 10.0, true));    // missed
    t.ingest(outcome(503, "/predict", 1.0));           // 5xx
    auto st = t.states().at(0);
    EXPECT_EQ(st.total, 4u);
    EXPECT_EQ(st.bad, 3u);
}

TEST(SloTracker, PathFilterSlicesTraffic)
{
    auto obj = quietObjective("sliced");
    obj.pathFilter = "/predict";
    SloTracker t({obj});
    t.ingest(outcome(503, "/healthz"));
    t.ingest(outcome(200, "/predict"));
    t.ingest(outcome(503, "/predict"));
    auto st = t.states().at(0);
    EXPECT_EQ(st.total, 2u); // the /healthz 503 never matched
    EXPECT_EQ(st.bad, 1u);
}

/** target 0.9 => burn = bad_fraction / 0.1; threshold 2 needs a bad
 *  fraction of at least 0.2 in BOTH windows. */
SloObjective
burnObjective(const std::string &name)
{
    SloObjective o;
    o.name = name;
    o.target = 0.9;
    o.fastWindow = 4;
    o.slowWindow = 8;
    o.burnThreshold = 2.0;
    o.recoverFactor = 0.5;
    o.recoverStable = 3;
    return o;
}

TEST(SloTracker, BurnWaitsForAFullFastWindow)
{
    SloTracker t({burnObjective("guarded")});
    // A lone bad first request is a burn of 1/0.1 = 10 in both
    // windows — but the fast window isn't full, so nothing fires.
    auto fired = t.ingest(outcome(503));
    EXPECT_TRUE(fired.empty());
    EXPECT_FALSE(t.states().at(0).burning);

    // Three good outcomes fill the fast window: bad fraction 1/4 =
    // burn 2.5 in both windows, at or above threshold -> SLO_BURN.
    t.ingest(outcome(200));
    t.ingest(outcome(200));
    fired = t.ingest(outcome(200));
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0].kind, SloEventKind::Burn);
    EXPECT_EQ(fired[0].objective, "guarded");
    EXPECT_EQ(fired[0].sample, 4u);
    EXPECT_NEAR(fired[0].fastBurn, 2.5, 1e-12);
    EXPECT_TRUE(t.states().at(0).burning);
}

TEST(SloTracker, RecoveryRequiresStableHysteresis)
{
    SloTracker t({burnObjective("recovering")});
    t.ingest(outcome(503));
    for (int i = 0; i < 3; ++i)
        t.ingest(outcome(200)); // fires at the 4th outcome
    ASSERT_TRUE(t.states().at(0).burning);

    // One more good outcome evicts the bad verdict from the fast
    // window (fast burn 0 < 0.5*2) — stable for 1, not yet 3.
    auto fired = t.ingest(outcome(200));
    EXPECT_TRUE(fired.empty());
    EXPECT_TRUE(t.states().at(0).burning);
    fired = t.ingest(outcome(200));
    EXPECT_TRUE(fired.empty());
    fired = t.ingest(outcome(200));
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0].kind, SloEventKind::Recovered);
    auto st = t.states().at(0);
    EXPECT_FALSE(st.burning);
    EXPECT_EQ(st.burnEvents, 1u);
    EXPECT_EQ(st.recoveredEvents, 1u);
}

TEST(SloTracker, RecoveryStreakResetsOnRelapse)
{
    SloTracker t({burnObjective("relapsing")});
    t.ingest(outcome(503));
    for (int i = 0; i < 3; ++i)
        t.ingest(outcome(200)); // burning
    // Two stable-good outcomes, then a relapse: the streak restarts,
    // and the new bad verdict keeps the fast burn at 2.5 until it
    // slides out of the 4-wide window — so recovery needs the window
    // to clear AND three more consecutive quiet outcomes.
    t.ingest(outcome(200));
    t.ingest(outcome(200));
    t.ingest(outcome(503)); // fast burn back to 2.5
    EXPECT_TRUE(t.states().at(0).burning);
    for (int i = 0; i < 5; ++i) {
        EXPECT_TRUE(t.ingest(outcome(200)).empty());
        EXPECT_TRUE(t.states().at(0).burning);
    }
    // Window clean since the 4th good; this is quiet outcome 3 of 3.
    auto fired = t.ingest(outcome(200));
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0].kind, SloEventKind::Recovered);
}

TEST(SloTracker, WindowSlideEvictsOldVerdicts)
{
    SloTracker t({quietObjective("sliding")});
    t.ingest(outcome(503));
    for (int i = 0; i < 4; ++i)
        t.ingest(outcome(200));
    // The bad verdict left the fast window (4) but not the slow (8):
    // fast burn 0, slow burn (1/5)/0.1 = 2.
    auto st = t.states().at(0);
    EXPECT_NEAR(st.fastBurn, 0.0, 1e-12);
    EXPECT_NEAR(st.slowBurn, 2.0, 1e-12);
    EXPECT_NEAR(st.budgetRemaining, -1.0, 1e-12);
    for (int i = 0; i < 4; ++i)
        t.ingest(outcome(200));
    // Nine outcomes in: the bad one left the slow window too.
    st = t.states().at(0);
    EXPECT_NEAR(st.slowBurn, 0.0, 1e-12);
    EXPECT_NEAR(st.budgetRemaining, 1.0, 1e-12);
}

TEST(SloTracker, EventRingBoundsAndDropsOldest)
{
    // fast=slow=1, recoverStable=1: every bad outcome opens a burn,
    // every good one closes it — one event per outcome.
    SloObjective o;
    o.name = "flapping";
    o.target = 0.5;
    o.fastWindow = 1;
    o.slowWindow = 1;
    o.burnThreshold = 1.0;
    o.recoverFactor = 0.5;
    o.recoverStable = 1;
    SloTracker t({o});
    for (int i = 0; i < 1100; ++i)
        t.ingest(outcome(i % 2 == 0 ? 503 : 200));
    EXPECT_EQ(t.events().size(), 1024u);
    EXPECT_EQ(t.eventsDropped(), 76u);
    // The export still carries every drop in the trailer.
    auto text = t.exportString();
    EXPECT_NE(text.find("\"events_dropped\":76"), std::string::npos);
}

TEST(SloTracker, MirrorsStateIntoMetrics)
{
    SloTracker t({quietObjective("mirrored")});
    t.ingest(outcome(503));
    t.ingest(outcome(200));
    EXPECT_EQ(
        metrics().counter("tomur_slo_mirrored_requests_total")
            .value(),
        2u);
    EXPECT_EQ(
        metrics().counter("tomur_slo_mirrored_bad_total").value(),
        1u);
    EXPECT_NEAR(
        metrics().gauge("tomur_slo_mirrored_fast_burn").value(),
        5.0, 1e-12); // 1 bad of 2, target 0.9
}

TEST(SloTracker, ExportIsAPureFoldOfTheOutcomeStream)
{
    auto drive = [](SloTracker &t) {
        t.ingest(outcome(503));
        for (int i = 0; i < 6; ++i)
            t.ingest(outcome(200));
        t.ingest(outcome(200, "/predict", 80.0));
    };
    SloTracker a({burnObjective("pure_fold")});
    SloTracker b({burnObjective("pure_fold")});
    drive(a);
    drive(b);
    EXPECT_EQ(a.exportString(), b.exportString());
    // Event lines precede exactly one summary trailer.
    auto text = a.exportString();
    EXPECT_EQ(text.find("{\"event\":\"SLO_BURN\""), 0u);
    EXPECT_NE(text.find("{\"slo_summary\":{\"objectives\":["),
              std::string::npos);
}

TEST(SloTrackerDeath, RejectsMalformedObjectives)
{
    SloObjective bad_name = quietObjective("ok_name");
    bad_name.name = "Has-Caps-And-Dashes";
    EXPECT_DEATH((void)SloTracker({bad_name}), "metric-safe");

    SloObjective bad_target = quietObjective("bad_target");
    bad_target.target = 1.0;
    EXPECT_DEATH((void)SloTracker({bad_target}), "outside");

    SloObjective bad_windows = quietObjective("bad_windows");
    bad_windows.fastWindow = 9;
    bad_windows.slowWindow = 8;
    EXPECT_DEATH((void)SloTracker({bad_windows}), "windows");
}

} // namespace
} // namespace tomur
