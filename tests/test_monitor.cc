/**
 * @file
 * Prediction-quality observatory tests: contention attribution
 * semantics, the online monitor's detectors (Page–Hinkley drift,
 * accuracy EWMA, traffic shift, recalibration) on synthetic sample
 * streams, the JSONL event stream and summary, the report renderer,
 * and a golden end-to-end replay whose event stream must be
 * byte-identical at any TOMUR_THREADS width.
 *
 * Golden fixtures live in tests/golden/ (path baked in via
 * TOMUR_GOLDEN_DIR); regenerate with tools/update_goldens.sh or by
 * running this binary with TOMUR_UPDATE_GOLDENS=1.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/report.hh"
#include "common/rng.hh"
#include "common/sampler.hh"
#include "common/strutil.hh"
#include "common/threadpool.hh"
#include "nfs/registry.hh"
#include "regex/ruleset.hh"
#include "tomur/monitor.hh"
#include "tomur/supervisor.hh"
#include "traffic/synth.hh"

namespace tomur {
namespace {

namespace fw = framework;
using namespace std::string_literals;
using core::MonitorEvent;
using core::MonitorEventKind;
using core::MonitorOptions;
using core::MonitorSample;
using core::PredictionMonitor;

/** RAII global pool width (restores the configured width on exit). */
struct PoolWidth
{
    explicit PoolWidth(int threads) { setGlobalThreadCount(threads); }
    ~PoolWidth() { setGlobalThreadCount(configuredThreadCount()); }
};

/** A synthetic sample at the default traffic profile. */
MonitorSample
sample(double predicted, double measured)
{
    MonitorSample s;
    s.deployment = "test";
    s.profile = traffic::TrafficProfile::defaults();
    s.predicted = predicted;
    s.measured = measured;
    return s;
}

/** Count events of a kind in the monitor's retained stream. */
std::size_t
countKind(const PredictionMonitor &m, MonitorEventKind kind)
{
    std::size_t n = 0;
    for (const auto &ev : m.events())
        n += ev.kind == kind;
    return n;
}

// ---------------------------------------------------------------
// Contention attribution
// ---------------------------------------------------------------

TEST(Attribution, RanksLargestDropFirst)
{
    core::PredictionBreakdown b;
    b.soloThroughput = 1000.0;
    b.memoryOnlyThroughput = 900.0; // memory drop 100
    b.accelUsed[0] = true;
    b.accelOnlyThroughput[0] = 600.0; // regex drop 400
    b.predicted = 550.0;
    auto a = core::attributeContention(b);
    ASSERT_EQ(a.ranked.size(), 2u);
    EXPECT_EQ(a.ranked[0].resource, 1); // regex
    EXPECT_DOUBLE_EQ(a.ranked[0].drop, 400.0);
    EXPECT_EQ(a.ranked[1].resource, 0); // memory
    EXPECT_DOUBLE_EQ(a.ranked[1].drop, 100.0);
    EXPECT_EQ(a.dominantResource, 1);
    EXPECT_DOUBLE_EQ(a.totalDrop, 450.0);
}

TEST(Attribution, SharesSumToOne)
{
    core::PredictionBreakdown b;
    b.soloThroughput = 1000.0;
    b.memoryOnlyThroughput = 700.0;
    b.accelUsed[2] = true;
    b.accelOnlyThroughput[2] = 800.0;
    auto a = core::attributeContention(b);
    double sum = 0.0;
    for (const auto &c : a.ranked)
        sum += c.share;
    EXPECT_NEAR(sum, 1.0, 1e-12);
    EXPECT_NEAR(a.ranked[0].share, 0.6, 1e-12); // memory 300/500
}

TEST(Attribution, AllZeroTieGoesToMemory)
{
    // No contention at all: every drop is zero and the stable sort
    // must keep memory first, matching the predictor's historical
    // strict-> argmax.
    core::PredictionBreakdown b;
    b.soloThroughput = 1000.0;
    b.memoryOnlyThroughput = 1000.0;
    b.accelUsed[0] = b.accelUsed[1] = true;
    b.accelOnlyThroughput[0] = 1000.0;
    b.accelOnlyThroughput[1] = 1000.0;
    auto a = core::attributeContention(b);
    EXPECT_EQ(a.dominantResource, 0);
    for (const auto &c : a.ranked)
        EXPECT_DOUBLE_EQ(c.share, 0.0);
}

TEST(Attribution, UnusedAccelsAreNotRanked)
{
    core::PredictionBreakdown b;
    b.soloThroughput = 1000.0;
    b.memoryOnlyThroughput = 950.0;
    auto a = core::attributeContention(b);
    ASSERT_EQ(a.ranked.size(), 1u);
    EXPECT_EQ(a.ranked[0].resource, 0);
}

TEST(Attribution, ToStringRendersRanking)
{
    core::PredictionBreakdown b;
    b.soloThroughput = 1000.0;
    b.memoryOnlyThroughput = 800.0;
    auto a = core::attributeContention(b);
    auto text = a.toString();
    EXPECT_NE(text.find("memory"), std::string::npos);
    EXPECT_NE(text.find("100%"), std::string::npos);
}

TEST(Attribution, ResourceNames)
{
    EXPECT_STREQ(core::attributedResourceName(0), "memory");
    EXPECT_STREQ(core::attributedResourceName(1), "regex");
    EXPECT_STREQ(core::attributedResourceName(2), "compression");
    EXPECT_STREQ(core::attributedResourceName(3), "crypto");
}

// ---------------------------------------------------------------
// Histogram quantiles
// ---------------------------------------------------------------

TEST(HistogramQuantile, InterpolatesWithinBucket)
{
    Histogram h({1.0, 2.0, 4.0});
    for (int i = 0; i < 10; ++i)
        h.observe(0.5); // all in the first bucket
    auto s = h.snapshot();
    // Rank 5 of 10 lands mid-bucket: lower 0 + 0.5 * (1 - 0).
    EXPECT_NEAR(core::histogramQuantile(s, 0.5), 0.5, 1e-12);
    EXPECT_NEAR(core::histogramQuantile(s, 1.0), 1.0, 1e-12);
}

TEST(HistogramQuantile, EmptySnapshotIsZero)
{
    Histogram h({1.0});
    EXPECT_DOUBLE_EQ(core::histogramQuantile(h.snapshot(), 0.9), 0.0);
}

TEST(HistogramQuantile, OverflowBucketReportsLastBound)
{
    Histogram h({1.0, 2.0});
    h.observe(100.0);
    EXPECT_DOUBLE_EQ(core::histogramQuantile(h.snapshot(), 0.99),
                     2.0);
}

// ---------------------------------------------------------------
// Monitor detectors (synthetic streams)
// ---------------------------------------------------------------

TEST(Monitor, StationaryStreamFiresNothing)
{
    PredictionMonitor m;
    for (int i = 0; i < 300; ++i) {
        // Small alternating error around zero: accurate and stable.
        double measured = 1000.0 * (1.0 + (i % 2 ? 0.02 : -0.02));
        auto fired = m.ingest(sample(1000.0, measured));
        EXPECT_TRUE(fired.empty()) << "event at sample " << i;
    }
    EXPECT_TRUE(m.events().empty());
    auto sum = m.summary();
    EXPECT_EQ(sum.samples, 300u);
    EXPECT_EQ(sum.invalidSamples, 0u);
    // |err| is ~0.02/0.98 at worst; the bucketed p99 rounds up to
    // its bucket, staying well under 5%.
    EXPECT_LT(sum.p99, 0.05);
}

TEST(Monitor, ConstantModelOffsetIsNotDrift)
{
    // A systematically wrong model (constant +10% error) is an
    // accuracy problem, not drift: Page–Hinkley tracks deviations
    // from its own running mean and must stay quiet.
    PredictionMonitor m;
    for (int i = 0; i < 300; ++i)
        m.ingest(sample(900.0, 1000.0));
    EXPECT_EQ(countKind(m, MonitorEventKind::DriftDetected), 0u);
}

TEST(Monitor, LevelShiftFiresDriftWithinBoundedSamples)
{
    PredictionMonitor m;
    for (int i = 0; i < 50; ++i)
        m.ingest(sample(1000.0, 1000.0));
    EXPECT_TRUE(m.events().empty());
    // The measured throughput drops 30% below the prediction —
    // the signature of the workload drifting off the trained model.
    std::size_t fired_at = 0;
    for (int i = 0; i < 30 && fired_at == 0; ++i) {
        for (const auto &ev : m.ingest(sample(1000.0, 700.0))) {
            if (ev.kind == MonitorEventKind::DriftDetected)
                fired_at = ev.sample;
        }
    }
    ASSERT_NE(fired_at, 0u) << "drift never detected";
    EXPECT_LE(fired_at, 60u) << "detection not within 10 samples";
}

TEST(Monitor, AccuracyDegradedHasHysteresis)
{
    PredictionMonitor m;
    for (int i = 0; i < 20; ++i)
        m.ingest(sample(1000.0, 1000.0));
    // Push the EWMA above the threshold...
    for (int i = 0; i < 60; ++i)
        m.ingest(sample(1000.0, 1400.0));
    EXPECT_EQ(countKind(m, MonitorEventKind::AccuracyDegraded), 1u);
    // ...recover, then degrade again: a second event may fire only
    // because the alarm re-armed below 0.8x the threshold.
    for (int i = 0; i < 100; ++i)
        m.ingest(sample(1000.0, 1000.0));
    for (int i = 0; i < 60; ++i)
        m.ingest(sample(1000.0, 1400.0));
    EXPECT_EQ(countKind(m, MonitorEventKind::AccuracyDegraded), 2u);
}

TEST(Monitor, TrafficShiftDetectedOnAttributeJump)
{
    PredictionMonitor m;
    auto base = traffic::TrafficProfile::defaults();
    for (int i = 0; i < 40; ++i) {
        auto s = sample(1000.0, 1000.0);
        s.profile = base;
        EXPECT_TRUE(m.ingest(s).empty());
    }
    auto shifted = base.withAttribute(
        traffic::Attribute::FlowCount,
        4.0 * static_cast<double>(base.flowCount));
    auto s = sample(1000.0, 1000.0);
    s.profile = shifted;
    auto fired = m.ingest(s);
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0].kind, MonitorEventKind::TrafficShift);
    EXPECT_EQ(fired[0].sample, 41u);
    EXPECT_NE(fired[0].detail.find("flow_count"),
              std::string::npos);
    // The shifted regime becomes the baseline: staying there is not
    // another shift. Accuracy is already healthy, so the only event
    // in the aftermath is the recovery that closes the window the
    // shift opened.
    for (int i = 0; i < 40; ++i) {
        auto s2 = sample(1000.0, 1000.0);
        s2.profile = shifted;
        for (const auto &ev : m.ingest(s2))
            EXPECT_EQ(ev.kind, MonitorEventKind::AccuracyRecovered);
    }
    EXPECT_EQ(countKind(m, MonitorEventKind::TrafficShift), 1u);
    EXPECT_EQ(countKind(m, MonitorEventKind::AccuracyRecovered), 1u);
}

TEST(Monitor, RecalibrationRecommendedAfterDriftWhileInaccurate)
{
    PredictionMonitor m;
    for (int i = 0; i < 30; ++i)
        m.ingest(sample(1000.0, 1000.0));
    // First level shift: drift fires, accuracy follows.
    for (int i = 0; i < 60; ++i)
        m.ingest(sample(1000.0, 600.0));
    EXPECT_GE(countKind(m, MonitorEventKind::DriftDetected), 1u);
    EXPECT_GE(countKind(m, MonitorEventKind::AccuracyDegraded), 1u);
    // Second shift while the accuracy alarm is still raised: the
    // drift detector re-trips and recalibration is recommended.
    for (int i = 0; i < 60; ++i)
        m.ingest(sample(1000.0, 300.0));
    EXPECT_GE(
        countKind(m, MonitorEventKind::RecalibrationRecommended),
        1u);
}

TEST(Monitor, CooldownBoundsEventRate)
{
    MonitorOptions opts;
    opts.cooldown = 50;
    PredictionMonitor m(opts);
    for (int i = 0; i < 20; ++i)
        m.ingest(sample(1000.0, 1000.0));
    // A wildly oscillating error would re-trip Page–Hinkley every
    // few samples without the cooldown.
    for (int i = 0; i < 200; ++i) {
        double measured = i % 8 < 4 ? 400.0 : 1600.0;
        m.ingest(sample(1000.0, measured));
    }
    EXPECT_LE(countKind(m, MonitorEventKind::DriftDetected), 5u);
}

TEST(Monitor, InvalidMeasurementsAreCountedNotIngested)
{
    PredictionMonitor m;
    for (int i = 0; i < 30; ++i)
        m.ingest(sample(1000.0, 1000.0));
    auto nan = std::numeric_limits<double>::quiet_NaN();
    m.ingest(sample(1000.0, nan));
    m.ingest(sample(1000.0, 0.0));
    auto sum = m.summary();
    EXPECT_EQ(sum.samples, 32u);
    EXPECT_EQ(sum.invalidSamples, 2u);
    // A faulted reading must not register as a huge error.
    EXPECT_LT(sum.ewmaAbsError, 0.01);
    EXPECT_TRUE(m.events().empty());
}

TEST(Monitor, DegradedRateTracksFlag)
{
    PredictionMonitor m;
    for (int i = 0; i < 10; ++i) {
        auto s = sample(1000.0, 1000.0);
        s.degraded = i < 4;
        m.ingest(s);
    }
    EXPECT_DOUBLE_EQ(m.summary().degradedRate, 0.4);
}

TEST(Monitor, ExportJsonlHasEventsThenSummaryTrailer)
{
    PredictionMonitor m;
    for (int i = 0; i < 30; ++i)
        m.ingest(sample(1000.0, 1000.0));
    for (int i = 0; i < 30; ++i)
        m.ingest(sample(1000.0, 500.0));
    ASSERT_FALSE(m.events().empty());
    std::ostringstream out;
    m.exportJsonl(out);
    auto lines = split(out.str(), '\n');
    ASSERT_GE(lines.size(), 2u);
    EXPECT_EQ(lines[0].find("{\"event\":\""), 0u);
    // Last non-empty line is the summary trailer.
    const auto &trailer = lines[lines.size() - 2];
    EXPECT_EQ(trailer.find("{\"summary\":{"), 0u);
    EXPECT_NE(trailer.find("\"ewma_abs_error\""),
              std::string::npos);
}

TEST(Monitor, EventSinkSeesEventsAsTheyFire)
{
    std::ostringstream sink;
    PredictionMonitor m;
    m.setEventSink(&sink);
    for (int i = 0; i < 30; ++i)
        m.ingest(sample(1000.0, 1000.0));
    for (int i = 0; i < 30; ++i)
        m.ingest(sample(1000.0, 500.0));
    ASSERT_FALSE(m.events().empty());
    EXPECT_EQ(sink.str(),
              [&] {
                  std::string all;
                  for (const auto &ev : m.events())
                      all += ev.toJson() + "\n";
                  return all;
              }());
}

// ---------------------------------------------------------------
// Schedule parsing
// ---------------------------------------------------------------

TEST(Schedule, ParsesLinesWithCommentsAndRepeats)
{
    std::istringstream in("# demo schedule\n"
                          "16000 1500 600 30\n"
                          "\n"
                          "64000 1500 600  # shifted phase\n");
    auto parsed = core::parseSchedule(in);
    ASSERT_TRUE(parsed);
    const auto &steps = parsed.value();
    ASSERT_EQ(steps.size(), 2u);
    EXPECT_EQ(steps[0].repeats, 30);
    EXPECT_EQ(steps[0].profile.flowCount, 16000u);
    EXPECT_EQ(steps[1].repeats, 1);
    EXPECT_EQ(steps[1].profile.flowCount, 64000u);
}

TEST(Schedule, RejectsMalformedAndEmptyInput)
{
    std::istringstream bad("16000 1500\n");
    EXPECT_FALSE(core::parseSchedule(bad));
    std::istringstream empty("# nothing here\n");
    EXPECT_FALSE(core::parseSchedule(empty));
    std::istringstream negative("-5 1500 600\n");
    EXPECT_FALSE(core::parseSchedule(negative));
}

/** Invariants every accepted schedule must satisfy (the documented
 *  field ranges): a fuzz input may be rejected, but anything that
 *  parses must be safe to replay. */
void
expectScheduleInvariants(const std::vector<core::ScheduleStep> &steps,
                         const std::string &input)
{
    for (const auto &s : steps) {
        EXPECT_GE(s.repeats, 1) << input;
        EXPECT_LE(s.repeats, 1000000) << input;
        EXPECT_GE(s.profile.flowCount, 1u) << input;
        EXPECT_LE(s.profile.flowCount, 1000000000u) << input;
        EXPECT_GE(s.profile.packetSize, 1u) << input;
        EXPECT_LE(s.profile.packetSize, 1000000u) << input;
        EXPECT_TRUE(std::isfinite(s.profile.mtbr)) << input;
        EXPECT_GE(s.profile.mtbr, 0.0) << input;
    }
}

TEST(ScheduleFuzz, RandomByteSoupNeverCrashesOrLeaksGarbage)
{
    // Seeded and deterministic: the same 500 hostile inputs on every
    // run. The property is "no crash, and whatever parses satisfies
    // the range invariants" — not that any particular input parses.
    Rng rng(20260807);
    const std::string alphabet =
        "0123456789.-+eE \t#\nxyz\\\"\0\x01\x7f"s;
    for (int iter = 0; iter < 500; ++iter) {
        std::string input;
        std::size_t len = rng.uniformInt(std::uint64_t(120));
        for (std::size_t i = 0; i < len; ++i)
            input.push_back(
                alphabet[rng.uniformInt(alphabet.size())]);
        std::istringstream in(input);
        auto parsed = core::parseSchedule(in);
        if (parsed)
            expectScheduleInvariants(parsed.value(), input);
    }
}

TEST(ScheduleFuzz, HostileTokensAreRejectedNotAccepted)
{
    // Structured fuzz: lines of 3-4 tokens drawn from a pool that is
    // mostly poison. Any line containing a poison token must fail the
    // whole parse (parseSchedule is all-or-nothing per stream).
    static const char *const poison[] = {
        "nan", "inf", "-inf", "1e999",   "1.5.2", "12ab",
        "--5", "+",   ".",    "1e",      "-0.5",  "\x7f7",
        "2,5",
    };
    static const char *const valid[] = {"16000", "1500", "600", "4"};
    Rng rng(777);
    for (int iter = 0; iter < 500; ++iter) {
        bool poisoned = false;
        std::string input;
        std::size_t tokens = 3 + rng.uniformInt(std::uint64_t(2));
        for (std::size_t i = 0; i < tokens; ++i) {
            if (rng.uniform() < 0.3) {
                input += poison[rng.uniformInt(
                    std::uint64_t(sizeof(poison) /
                                  sizeof(poison[0])))];
                poisoned = true;
            } else {
                input += valid[i < 4 ? i : 3];
            }
            input += ' ';
        }
        input += '\n';
        std::istringstream in(input);
        auto parsed = core::parseSchedule(in);
        if (poisoned) {
            EXPECT_FALSE(parsed) << "accepted poison: " << input;
        }
        if (parsed)
            expectScheduleInvariants(parsed.value(), input);
    }
}

TEST(ScheduleFuzz, InRangeSchedulesRoundTrip)
{
    // The positive property: any schedule rendered from in-range
    // values parses back to exactly those values.
    Rng rng(4242);
    for (int iter = 0; iter < 200; ++iter) {
        std::uint64_t flows =
            1 + rng.uniformInt(std::uint64_t(999999999));
        std::uint64_t size =
            1 + rng.uniformInt(std::uint64_t(999999));
        std::uint64_t mtbr =
            rng.uniformInt(std::uint64_t(1000000));
        int repeats =
            1 + static_cast<int>(
                    rng.uniformInt(std::uint64_t(999999)));
        std::string input = strf("%llu %llu %llu %d # fuzz\n",
                                 (unsigned long long)flows,
                                 (unsigned long long)size,
                                 (unsigned long long)mtbr, repeats);
        std::istringstream in(input);
        auto parsed = core::parseSchedule(in);
        ASSERT_TRUE(parsed) << input << ": "
                            << parsed.status().toString();
        ASSERT_EQ(parsed.value().size(), 1u);
        const auto &s = parsed.value()[0];
        EXPECT_EQ(s.profile.flowCount, flows) << input;
        EXPECT_EQ(s.profile.packetSize, size) << input;
        EXPECT_DOUBLE_EQ(s.profile.mtbr,
                         static_cast<double>(mtbr))
            << input;
        EXPECT_EQ(s.repeats, repeats) << input;
    }
}

TEST(Schedule, DefaultScheduleShiftsAndReturns)
{
    auto base = traffic::TrafficProfile::defaults();
    auto steps = core::defaultSchedule(base);
    ASSERT_EQ(steps.size(), 3u);
    EXPECT_EQ(steps[0].profile, base);
    EXPECT_EQ(steps[1].profile.flowCount, 4 * base.flowCount);
    EXPECT_EQ(steps[2].profile, base);
}

// ---------------------------------------------------------------
// Time-to-recovery
// ---------------------------------------------------------------

/** Feed warm-up, then a synthesized scenario family, then a steady
 *  tail through a monitor with perfect predictions: regime changes
 *  come only from the traffic stream, and every recovery window must
 *  close during the tail. */
PredictionMonitor
runFamilyThroughMonitor(const std::vector<traffic::SynthStep> &family)
{
    PredictionMonitor m;
    auto base = traffic::TrafficProfile::defaults();
    auto feed = [&](const traffic::TrafficProfile &p, int repeats) {
        for (int i = 0; i < repeats; ++i) {
            auto s = sample(1000.0, 1000.0);
            s.profile = p;
            m.ingest(s);
        }
    };
    feed(base, 40);
    for (const auto &step : family)
        feed(step.profile, step.repeats);
    feed(base, 40);
    return m;
}

TEST(Recovery, EveryScenarioFamilyRecoversFinitely)
{
    auto base = traffic::TrafficProfile::defaults();
    traffic::DiurnalOptions diurnal;
    diurnal.base = base;
    diurnal.amplitude = 0.9;
    diurnal.period = 8;
    traffic::FlashCrowdOptions flash;
    flash.base = base;
    traffic::FlowChurnOptions churn;
    churn.base = base;
    traffic::MtbrSpikeOptions spike;
    spike.base = base;
    struct
    {
        const char *name;
        std::vector<traffic::SynthStep> steps;
    } families[] = {
        {"diurnal", traffic::diurnalSteps(diurnal)},
        {"flash", traffic::flashCrowdSteps(flash)},
        {"churn", traffic::flowChurnSteps(churn)},
        {"mtbr_spike", traffic::mtbrSpikeSteps(spike)},
    };
    for (const auto &f : families) {
        auto m = runFamilyThroughMonitor(f.steps);
        auto sum = m.summary();
        EXPECT_GE(sum.eventCounts[static_cast<int>(
                      MonitorEventKind::TrafficShift)],
                  1u)
            << f.name;
        // Every regime change recovered, in finite sample time.
        EXPECT_GE(sum.recoveries, 1u) << f.name;
        EXPECT_FALSE(sum.recoveryOpen) << f.name;
        EXPECT_TRUE(std::isfinite(sum.meanRecoverySamples))
            << f.name;
        EXPECT_GE(sum.meanRecoverySamples, 1.0) << f.name;
        EXPECT_GE(sum.maxRecoverySamples, 1u) << f.name;
        EXPECT_LE(sum.maxRecoverySamples, sum.samples) << f.name;
        EXPECT_EQ(sum.recoveries,
                  countKind(m, MonitorEventKind::AccuracyRecovered))
            << f.name;
    }
}

TEST(Recovery, NoShiftScenarioEmitsNoEvents)
{
    // False-positive guard: a stationary scenario with benign
    // measurement wobble must not open recovery windows or fire any
    // detector.
    auto steps =
        traffic::steadySteps(traffic::TrafficProfile::defaults(),
                             300);
    PredictionMonitor m;
    std::size_t i = 0;
    for (const auto &step : steps) {
        for (int r = 0; r < step.repeats; ++r) {
            auto s = sample(1000.0, 1000.0 + (i++ % 16) - 8.0);
            s.profile = step.profile;
            EXPECT_TRUE(m.ingest(s).empty());
        }
    }
    auto sum = m.summary();
    for (int k = 0; k < core::numMonitorEventKinds; ++k)
        EXPECT_EQ(sum.eventCounts[k], 0u) << k;
    EXPECT_EQ(sum.recoveries, 0u);
    EXPECT_FALSE(sum.recoveryOpen);
    EXPECT_DOUBLE_EQ(sum.meanRecoverySamples, 0.0);
}

TEST(Recovery, ReTriggerRestartsTheWindow)
{
    // A second regime change before the first window closes restarts
    // the span: the recovery measures from the LATEST change.
    MonitorOptions opts;
    opts.recoveryStableSamples = 8;
    opts.cooldown = 2;
    PredictionMonitor m(opts);
    auto base = traffic::TrafficProfile::defaults();
    for (int i = 0; i < 20; ++i) {
        auto s = sample(1000.0, 1000.0);
        s.profile = base;
        m.ingest(s);
    }
    auto shifted = base.withAttribute(
        traffic::Attribute::FlowCount,
        4.0 * static_cast<double>(base.flowCount));
    auto s1 = sample(1000.0, 1000.0);
    s1.profile = shifted;
    m.ingest(s1); // shift #1 opens the window at sample 21
    for (int i = 0; i < 3; ++i) {
        auto s = sample(1000.0, 1000.0);
        s.profile = shifted;
        m.ingest(s);
    }
    auto shifted2 = shifted.withAttribute(
        traffic::Attribute::FlowCount,
        4.0 * static_cast<double>(shifted.flowCount));
    auto s2 = sample(1000.0, 1000.0);
    s2.profile = shifted2;
    m.ingest(s2); // shift #2 at sample 25 restarts the span
    for (int i = 0; i < 20; ++i) {
        auto s = sample(1000.0, 1000.0);
        s.profile = shifted2;
        m.ingest(s);
    }
    auto sum = m.summary();
    EXPECT_EQ(sum.eventCounts[static_cast<int>(
                  MonitorEventKind::TrafficShift)],
              2u);
    ASSERT_EQ(sum.recoveries, 1u);
    // Span counts from shift #2 (sample 25), not shift #1: 8 stable
    // samples after it.
    EXPECT_EQ(sum.maxRecoverySamples, 8u);
    EXPECT_FALSE(sum.recoveryOpen);
}

TEST(Recovery, OpenWindowSurvivesSerializeRestore)
{
    // Crash-resume faithfulness: a monitor checkpointed mid-window
    // must fire the same recovery at the same sample after restore.
    auto drive = [](PredictionMonitor &m, int from, int to) {
        auto base = traffic::TrafficProfile::defaults();
        auto shifted = base.withAttribute(
            traffic::Attribute::FlowCount,
            4.0 * static_cast<double>(base.flowCount));
        for (int i = from; i < to; ++i) {
            auto s = sample(1000.0, 1000.0);
            s.profile = i >= 20 ? shifted : base;
            m.ingest(s);
        }
    };
    PredictionMonitor full;
    drive(full, 0, 40);

    PredictionMonitor first;
    drive(first, 0, 22); // window opened at 21, still open
    std::ostringstream saved;
    first.serialize(saved);
    PredictionMonitor second;
    std::istringstream in(saved.str());
    ASSERT_TRUE(second.restore(in).isOk());
    EXPECT_TRUE(second.summary().recoveryOpen);
    drive(second, 22, 40);

    std::ostringstream a, b;
    full.exportJsonl(a);
    second.exportJsonl(b);
    EXPECT_EQ(a.str(), b.str());
}

// ---------------------------------------------------------------
// Report renderer
// ---------------------------------------------------------------

TEST(Report, ParsesMetricsSkippingCommentsAndBuckets)
{
    std::string body = "# TYPE tomur_x_total counter\n"
                       "tomur_x_total 42\n"
                       "# TYPE tomur_h histogram\n"
                       "tomur_h_bucket{le=\"1\"} 3\n"
                       "tomur_h_sum 1.5\n"
                       "tomur_h_count 3\n";
    auto samples = parseMetricsText(body);
    ASSERT_EQ(samples.size(), 3u);
    EXPECT_EQ(samples[0].name, "tomur_x_total");
    EXPECT_DOUBLE_EQ(samples[0].value, 42.0);
    EXPECT_EQ(samples[1].name, "tomur_h_sum");
}

TEST(Report, AggregatesTraceByName)
{
    std::string body =
        "{\"type\":\"span\",\"id\":1,\"parent\":0,\"name\":\"a\","
        "\"start_ns\":0,\"dur_ns\":1000000}\n"
        "{\"type\":\"span\",\"id\":2,\"parent\":1,\"name\":\"a\","
        "\"start_ns\":0,\"dur_ns\":2000000}\n"
        "{\"type\":\"event\",\"parent\":1,\"name\":\"b\"}\n";
    auto stats = parseTraceJsonl(body);
    ASSERT_EQ(stats.size(), 2u);
    EXPECT_EQ(stats[0].name, "a");
    EXPECT_EQ(stats[0].count, 2u);
    EXPECT_EQ(stats[0].totalDurNs, 3000000u);
    EXPECT_EQ(stats[1].name, "b");
}

TEST(Report, DigestsMonitorStream)
{
    std::string body =
        "{\"event\":\"DRIFT_DETECTED\",\"sample\":12}\n"
        "{\"event\":\"TRAFFIC_SHIFT\",\"sample\":20}\n"
        "{\"summary\":{\"samples\":40}}\n";
    auto d = parseMonitorJsonl(body);
    EXPECT_EQ(d.eventCounts[0], 1u); // drift
    EXPECT_EQ(d.eventCounts[2], 1u); // traffic shift
    EXPECT_EQ(d.lastEvents.size(), 2u);
    EXPECT_EQ(d.summaryLine.find("{\"summary\":"), 0u);
}

TEST(Report, RendersTextAndHtml)
{
    ReportArtifacts artifacts;
    artifacts.monitorJsonl =
        "{\"event\":\"DRIFT_DETECTED\",\"sample\":12,"
        "\"deployment\":\"x<y\"}\n"
        "{\"summary\":{\"samples\":40}}\n";
    auto text = renderReport(artifacts);
    ASSERT_TRUE(text);
    EXPECT_NE(text.value().find("DRIFT_DETECTED"),
              std::string::npos);

    ReportOptions opts;
    opts.html = true;
    auto html = renderReport(artifacts, opts);
    ASSERT_TRUE(html);
    EXPECT_EQ(html.value().find("<!DOCTYPE html>"), 0u);
    // Raw event lines are HTML-escaped.
    EXPECT_NE(html.value().find("x&lt;y"), std::string::npos);
    EXPECT_EQ(html.value().find("x<y"), std::string::npos);
}

TEST(Report, AllArtifactsEmptyIsAnError)
{
    auto r = renderReport(ReportArtifacts{});
    ASSERT_FALSE(r);
    EXPECT_EQ(r.status().code(), StatusCode::InvalidArgument);
}

// ---------------------------------------------------------------
// Golden end-to-end replay
// ---------------------------------------------------------------

#ifndef TOMUR_GOLDEN_DIR
#define TOMUR_GOLDEN_DIR "tests/golden"
#endif

std::string
goldenPath(const std::string &file)
{
    return std::string(TOMUR_GOLDEN_DIR) + "/" + file;
}

std::string
readFileOrEmpty(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Compare against (or, with TOMUR_UPDATE_GOLDENS=1, rewrite) one
 *  golden fixture. */
void
checkGolden(const std::string &file, const std::string &actual)
{
    const std::string path = goldenPath(file);
    if (std::getenv("TOMUR_UPDATE_GOLDENS")) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << actual;
        return;
    }
    std::string expected = readFileOrEmpty(path);
    ASSERT_FALSE(expected.empty())
        << path << " is missing; regenerate with "
        << "tools/update_goldens.sh";
    EXPECT_EQ(expected, actual)
        << "golden mismatch for " << file
        << "; if the change is intentional, regenerate with "
        << "tools/update_goldens.sh and review the diff";
}

/**
 * The fixed golden scenario: train FlowMonitor on the (fault-free)
 * testbed, then replay a schedule that exercises every event kind —
 * a stationary phase, a 4x flow-count shift, and a deterministic
 * 0.75x measurement bias switched on mid-stream. Training, the
 * replay's measurements, and the monitor fold are all deterministic
 * under the PR-2 width contracts, so the exported event stream is
 * byte-identical at any TOMUR_THREADS.
 */
std::string
runGoldenReplay()
{
    regex::RuleSet rules = regex::defaultRuleSet();
    fw::DeviceSet dev;
    dev.regex = std::make_shared<fw::RegexDevice>(rules);
    dev.compression = std::make_shared<fw::CompressionDevice>();
    dev.crypto = std::make_shared<fw::CryptoDevice>();

    sim::Testbed bed(hw::blueField2());
    sim::FaultInjectingTestbed faulty(bed, {});
    core::BenchLibrary lib(faulty, dev, rules);
    core::TomurTrainer trainer(lib);

    auto defaults = traffic::TrafficProfile::defaults();
    auto nf = nfs::makeByName("FlowMonitor", dev);
    core::TrainOptions topts;
    topts.adaptive.quota = 60;
    auto model = trainer.train(*nf, defaults, topts);

    // Reference contention: the heaviest large-WSS mem-bench plus a
    // moderate regex bench (FlowMonitor's accelerator).
    const core::BenchLibrary::MemBenchEntry *mem =
        &lib.memBenches().front();
    for (const auto &e : lib.memBenches()) {
        if (e.config.wssBytes >= 12.0 * 1024 * 1024 &&
            e.level.counters.cacheAccessRate() >
                mem->level.counters.cacheAccessRate()) {
            mem = &e;
        }
    }
    const auto &rx =
        lib.accelBench(hw::AccelKind::Regex, 150e3, 800.0);

    core::ReplayContext ctx;
    ctx.trainer = &trainer;
    ctx.model = &model;
    ctx.nf = nf.get();
    ctx.levels = {mem->level, rx.level};
    ctx.competitors = {mem->workload, rx.workload};
    ctx.soloBed = &bed;
    ctx.measureBed = &faulty;
    ctx.label = "FlowMonitor";

    auto shifted = defaults.withAttribute(
        traffic::Attribute::FlowCount,
        4.0 * static_cast<double>(defaults.flowCount));
    std::vector<core::ScheduleStep> schedule = {{defaults, 30},
                                                {shifted, 30}};
    core::ReplayOptions ropts;
    ropts.biasAtSample = 45;
    ropts.biasFactor = 0.75;

    core::PredictionMonitor monitor;
    core::replaySchedule(ctx, schedule, monitor, ropts);

    std::ostringstream out;
    monitor.exportJsonl(out);
    return out.str();
}

TEST(MonitorGolden, SerialReplayMatchesFixture)
{
    PoolWidth width(1);
    auto events = runGoldenReplay();
    // The scenario must actually exercise the detectors.
    EXPECT_NE(events.find("TRAFFIC_SHIFT"), std::string::npos);
    EXPECT_NE(events.find("DRIFT_DETECTED"), std::string::npos);
    checkGolden("monitor_events.jsonl", events);
}

TEST(MonitorGolden, WideReplayIsByteIdenticalToFixture)
{
    PoolWidth width(8);
    auto events = runGoldenReplay();
    if (std::getenv("TOMUR_UPDATE_GOLDENS")) {
        // The fixture is written by the serial test; here we only
        // verify the wide run reproduces it.
        std::string serial_events;
        {
            PoolWidth serial(1);
            serial_events = runGoldenReplay();
        }
        EXPECT_EQ(serial_events, events);
        return;
    }
    checkGolden("monitor_events.jsonl", events);
}

// ---------------------------------------------------------------
// Golden nonstationary scenario replay (through the autopilot)
// ---------------------------------------------------------------

/**
 * The nonstationary golden scenario: a compact synthesized composite
 * (diurnal swing, flash crowd, MTBR spike with steady tails) driven
 * through the supervised autopilot, with the sampling profiler
 * attached — the profiler reads the wall clock but must not be able
 * to perturb the event stream, which this fixture pins together with
 * width invariance.
 */
std::string
runGoldenScenarioReplay()
{
    regex::RuleSet rules = regex::defaultRuleSet();
    fw::DeviceSet dev;
    dev.regex = std::make_shared<fw::RegexDevice>(rules);
    dev.compression = std::make_shared<fw::CompressionDevice>();
    dev.crypto = std::make_shared<fw::CryptoDevice>();

    sim::Testbed bed(hw::blueField2());
    sim::FaultInjectingTestbed faulty(bed, {});
    core::BenchLibrary lib(faulty, dev, rules);
    core::TomurTrainer trainer(lib);

    auto defaults = traffic::TrafficProfile::defaults();
    auto nf = nfs::makeByName("FlowMonitor", dev);
    core::TrainOptions topts;
    topts.adaptive.quota = 60;
    auto model = trainer.train(*nf, defaults, topts);

    const core::BenchLibrary::MemBenchEntry *mem =
        &lib.memBenches().front();
    for (const auto &e : lib.memBenches()) {
        if (e.config.wssBytes >= 12.0 * 1024 * 1024 &&
            e.level.counters.cacheAccessRate() >
                mem->level.counters.cacheAccessRate()) {
            mem = &e;
        }
    }
    const auto &rx =
        lib.accelBench(hw::AccelKind::Regex, 150e3, 800.0);

    core::ReplayContext ctx;
    ctx.trainer = &trainer;
    ctx.model = &model;
    ctx.nf = nf.get();
    ctx.levels = {mem->level, rx.level};
    ctx.competitors = {mem->workload, rx.workload};
    ctx.soloBed = &bed;
    ctx.measureBed = &faulty;
    ctx.label = "FlowMonitor";

    std::vector<traffic::SynthStep> steps;
    auto append = [&](std::vector<traffic::SynthStep> more) {
        steps.insert(steps.end(), more.begin(), more.end());
    };
    append(traffic::steadySteps(defaults, 16));
    traffic::DiurnalOptions diurnal;
    diurnal.base = defaults;
    diurnal.amplitude = 0.85;
    diurnal.period = 12;
    append(traffic::diurnalSteps(diurnal));
    append(traffic::steadySteps(defaults, 8));
    traffic::FlashCrowdOptions flash;
    flash.base = defaults;
    flash.peak = 6.0;
    flash.ramp = 2;
    flash.hold = 4;
    flash.decay = 2;
    append(traffic::flashCrowdSteps(flash));
    append(traffic::steadySteps(defaults, 8));
    traffic::MtbrSpikeOptions spike;
    spike.base = defaults;
    spike.mtbr = 1100.0;
    spike.ramp = 2;
    spike.hold = 4;
    append(traffic::mtbrSpikeSteps(spike));
    append(traffic::steadySteps(defaults, 12));
    auto schedule = core::toSchedule(steps);

    core::PredictionMonitor monitor;
    core::Supervisor supervisor(
        {}, [](std::size_t, std::string *) { return Status::ok(); });
    SamplingProfiler profiler;
    core::AutopilotOptions aopts;
    aopts.profiler = &profiler;
    auto res = core::runAutopilot(ctx, schedule, monitor,
                                  supervisor, nullptr, aopts);
    EXPECT_TRUE(res) << res.status().toString();

    std::ostringstream out;
    monitor.exportJsonl(out);
    supervisor.exportJsonl(out);
    return out.str();
}

TEST(ReplayGolden, SerialScenarioMatchesFixture)
{
    PoolWidth width(1);
    auto events = runGoldenScenarioReplay();
    // The scenario must exercise regime changes AND their recovery.
    EXPECT_NE(events.find("TRAFFIC_SHIFT"), std::string::npos);
    EXPECT_NE(events.find("ACCURACY_RECOVERED"), std::string::npos);
    checkGolden("replay_events.jsonl", events);
}

TEST(ReplayGolden, WideScenarioIsByteIdenticalToFixture)
{
    PoolWidth width(8);
    auto events = runGoldenScenarioReplay();
    if (std::getenv("TOMUR_UPDATE_GOLDENS")) {
        std::string serial_events;
        {
            PoolWidth serial(1);
            serial_events = runGoldenScenarioReplay();
        }
        EXPECT_EQ(serial_events, events);
        return;
    }
    checkGolden("replay_events.jsonl", events);
}

} // namespace
} // namespace tomur
