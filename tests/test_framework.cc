/**
 * @file
 * Tests for the Click-like framework: cost accounting, flow table,
 * accelerator devices, NF chains, and workload profiling.
 */

#include <gtest/gtest.h>

#include "framework/accel_dev.hh"
#include "framework/flow_table.hh"
#include "framework/nf.hh"
#include "framework/profile.hh"
#include "regex/ruleset.hh"
#include "traffic/generator.hh"

namespace tomur::framework {
namespace {

net::Packet
makePacket(std::uint16_t src_port, std::size_t payload = 64)
{
    net::FiveTuple t;
    t.srcIp = net::Ipv4Addr::fromOctets(10, 0, 0, 1);
    t.dstIp = net::Ipv4Addr::fromOctets(192, 168, 0, 1);
    t.srcPort = src_port;
    t.dstPort = 80;
    std::vector<std::uint8_t> pl(payload, 'x');
    return net::PacketBuilder::build(t, pl);
}

TEST(CostContext, AccumulatesAndResets)
{
    CostContext ctx;
    MemRegion r{"tbl", 1024.0, 1.0};
    ctx.addInstructions(100);
    ctx.addMemAccess(r, 3, 1);
    ctx.offload({hw::AccelKind::Regex, 500.0, 2.0});
    EXPECT_DOUBLE_EQ(ctx.instructions(), 100.0);
    EXPECT_DOUBLE_EQ(ctx.memReads(), 3.0);
    EXPECT_DOUBLE_EQ(ctx.memWrites(), 1.0);
    ASSERT_EQ(ctx.offloads().size(), 1u);
    EXPECT_EQ(ctx.regions().at("tbl").accesses, 4.0);
    ctx.reset();
    EXPECT_DOUBLE_EQ(ctx.instructions(), 0.0);
    EXPECT_TRUE(ctx.offloads().empty());
}

TEST(FlowTable, InsertFindGrow)
{
    FlowTable<int> table("t", 4);
    CostContext ctx;
    for (std::uint16_t p = 0; p < 200; ++p) {
        auto pkt = makePacket(1000 + p);
        bool inserted = false;
        int &v = table.findOrInsert(*pkt.fiveTuple(), ctx, &inserted);
        EXPECT_TRUE(inserted);
        v = p;
    }
    EXPECT_EQ(table.size(), 200u);
    // Lookups find the right values after growth.
    for (std::uint16_t p = 0; p < 200; ++p) {
        auto pkt = makePacket(1000 + p);
        int *v = table.find(*pkt.fiveTuple(), ctx);
        ASSERT_NE(v, nullptr);
        EXPECT_EQ(*v, p);
    }
    // Missing key.
    auto pkt = makePacket(9999);
    EXPECT_EQ(table.find(*pkt.fiveTuple(), ctx), nullptr);
    // Footprint grows with entries.
    EXPECT_GT(table.bytes(), 200 * 8.0);
    table.clear();
    EXPECT_EQ(table.size(), 0u);
}

TEST(FlowTable, CostsRecorded)
{
    FlowTable<int> table("cost_t");
    CostContext ctx;
    auto pkt = makePacket(42);
    table.findOrInsert(*pkt.fiveTuple(), ctx);
    EXPECT_GT(ctx.instructions(), 0.0);
    EXPECT_GT(ctx.memReads(), 0.0);
    EXPECT_GT(ctx.memWrites(), 0.0); // insertion writes
}

TEST(RegexDevice, ScansAndRecords)
{
    RegexDevice dev(regex::tinyRuleSet());
    CostContext ctx;
    std::string s = "zzabcdzz";
    std::vector<std::uint8_t> payload(s.begin(), s.end());
    auto res = dev.scan(payload, ctx);
    EXPECT_EQ(res.matchCount, 1u);
    EXPECT_EQ(res.matchedRules, 1u);
    ASSERT_EQ(ctx.offloads().size(), 1u);
    EXPECT_DOUBLE_EQ(ctx.offloads()[0].bytes, 8.0);
    EXPECT_DOUBLE_EQ(ctx.offloads()[0].matches, 1.0);
}

TEST(RegexDevice, NonFunctionalSkips)
{
    RegexDevice dev(regex::tinyRuleSet());
    CostContext ctx;
    ctx.setAccelFunctional(false);
    std::vector<std::uint8_t> payload = {'a', 'b', 'c', 'd'};
    auto res = dev.scan(payload, ctx);
    EXPECT_EQ(res.matchCount, 0u);
    EXPECT_TRUE(ctx.offloads().empty());
}

TEST(CompressionDevice, RoundTrip)
{
    Rng rng(5);
    for (int iter = 0; iter < 20; ++iter) {
        std::vector<std::uint8_t> data(100 + rng.uniformInt(1000u));
        for (auto &b : data) {
            // Compressible: small alphabet with repeats.
            b = static_cast<std::uint8_t>('a' + rng.uniformInt(4u));
        }
        auto compressed = CompressionDevice::lzCompress(data);
        auto restored = CompressionDevice::lzDecompress(compressed);
        ASSERT_EQ(restored, data) << "iter " << iter;
        EXPECT_LT(compressed.size(), data.size());
    }
}

TEST(CompressionDevice, IncompressibleDataSurvives)
{
    Rng rng(6);
    std::vector<std::uint8_t> data(512);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.uniformInt(256u));
    auto compressed = CompressionDevice::lzCompress(data);
    auto restored = CompressionDevice::lzDecompress(compressed);
    EXPECT_EQ(restored, data);
}

TEST(CompressionDevice, EmptyInput)
{
    auto c = CompressionDevice::lzCompress({});
    EXPECT_TRUE(CompressionDevice::lzDecompress(c).empty());
}

TEST(Nf, ChainStopsOnDrop)
{
    class DropAll : public Element
    {
      public:
        DropAll() : Element("DropAll") {}
        Verdict
        process(net::Packet &, CostContext &) override
        {
            return Verdict::Drop;
        }
    };
    class Counter : public Element
    {
      public:
        Counter() : Element("Counter") {}
        Verdict
        process(net::Packet &, CostContext &) override
        {
            ++count;
            return Verdict::Forward;
        }
        int count = 0;
    };

    NetworkFunction nf("test", ExecutionPattern::RunToCompletion);
    nf.add(std::make_unique<DropAll>());
    auto counter = std::make_unique<Counter>();
    Counter *cp = counter.get();
    nf.add(std::move(counter));

    CostContext ctx;
    auto pkt = makePacket(1);
    EXPECT_EQ(nf.processPacket(pkt, ctx), Verdict::Drop);
    EXPECT_EQ(cp->count, 0);
}

TEST(Nf, MetadataValidation)
{
    NetworkFunction nf("m", ExecutionPattern::Pipeline);
    nf.setCores(4);
    EXPECT_EQ(nf.cores(), 4);
    nf.setQueueCount(hw::AccelKind::Regex, 3);
    EXPECT_EQ(nf.queueCount(hw::AccelKind::Regex), 3);
    EXPECT_EQ(nf.queueCount(hw::AccelKind::Compression), 1);
    nf.setPacedRate(5e6);
    EXPECT_DOUBLE_EQ(nf.pacedRate(), 5e6);
    EXPECT_STREQ(patternName(nf.pattern()), "pipeline");
}

class CountingNf
{
  public:
    /** NF with one flow table, to exercise profiling. */
    static std::unique_ptr<NetworkFunction>
    make()
    {
        class TableElement : public Element
        {
          public:
            TableElement() : Element("T"), table_("profile_table") {}
            Verdict
            process(net::Packet &pkt, CostContext &ctx) override
            {
                auto t = pkt.fiveTuple();
                if (!t)
                    return Verdict::Drop;
                ++table_.findOrInsert(*t, ctx);
                ctx.addInstructions(100);
                return Verdict::Forward;
            }
            void reset() override { table_.clear(); }
            std::vector<MemRegion>
            regions() const override
            {
                return {table_.region()};
            }

          private:
            FlowTable<int> table_;
        };
        auto nf = std::make_unique<NetworkFunction>(
            "counting", ExecutionPattern::RunToCompletion);
        nf->add(std::make_unique<TableElement>());
        return nf;
    }
};

TEST(Profiling, WssTracksFlowCount)
{
    auto nf = CountingNf::make();
    traffic::TrafficProfile small;
    small.flowCount = 1000;
    small.mtbr = 0;
    traffic::TrafficProfile big = small;
    big.flowCount = 100000;

    auto w_small = profileWorkload(*nf, small, nullptr);
    auto w_big = profileWorkload(*nf, big, nullptr);
    EXPECT_GT(w_big.wssBytes, 10 * w_small.wssBytes);
    EXPECT_GT(w_small.instrPerPacket, 0.0);
    EXPECT_GT(w_small.llcReadsPerPacket, 0.0);
}

TEST(Profiling, FrameBytesMatchProfile)
{
    auto nf = CountingNf::make();
    traffic::TrafficProfile p;
    p.packetSize = 512;
    p.mtbr = 0;
    auto w = profileWorkload(*nf, p, nullptr);
    EXPECT_NEAR(w.frameBytes, 512.0, 1.0);
}

TEST(Profiling, RegexUseCaptured)
{
    auto rules = regex::defaultRuleSet();
    DeviceSet dev;
    dev.regex = std::make_shared<RegexDevice>(rules);

    class ScanNf : public Element
    {
      public:
        explicit ScanNf(std::shared_ptr<RegexDevice> d)
            : Element("S"), dev_(std::move(d))
        {
        }
        Verdict
        process(net::Packet &pkt, CostContext &ctx) override
        {
            dev_->scan(pkt.payload(), ctx);
            return Verdict::Forward;
        }

      private:
        std::shared_ptr<RegexDevice> dev_;
    };

    NetworkFunction nf("scan", ExecutionPattern::Pipeline);
    nf.add(std::make_unique<ScanNf>(dev.regex));

    traffic::TrafficProfile p;
    p.mtbr = 600;
    auto w = profileWorkload(nf, p, &rules);
    ASSERT_TRUE(w.usesAccel(hw::AccelKind::Regex));
    const auto &use = w.accelUse(hw::AccelKind::Regex);
    EXPECT_NEAR(use.requestsPerPacket, 1.0, 1e-9);
    EXPECT_GT(use.bytesPerRequest, 1000.0);
    EXPECT_GT(use.matchesPerRequest, 0.1);
    EXPECT_FALSE(w.usesAccel(hw::AccelKind::Compression));
}

TEST(Profiling, MtbrScalesMatches)
{
    auto rules = regex::defaultRuleSet();
    DeviceSet dev;
    dev.regex = std::make_shared<RegexDevice>(rules);
    NetworkFunction nf("scan", ExecutionPattern::Pipeline);
    class ScanNf : public Element
    {
      public:
        explicit ScanNf(std::shared_ptr<RegexDevice> d)
            : Element("S"), dev_(std::move(d))
        {
        }
        Verdict
        process(net::Packet &pkt, CostContext &ctx) override
        {
            dev_->scan(pkt.payload(), ctx);
            return Verdict::Forward;
        }

      private:
        std::shared_ptr<RegexDevice> dev_;
    };
    nf.add(std::make_unique<ScanNf>(dev.regex));

    traffic::TrafficProfile lo, hi;
    lo.mtbr = 100;
    hi.mtbr = 1000;
    auto wl = profileWorkload(nf, lo, &rules);
    auto wh = profileWorkload(nf, hi, &rules);
    EXPECT_GT(wh.accelUse(hw::AccelKind::Regex).matchesPerRequest,
              3 * wl.accelUse(hw::AccelKind::Regex).matchesPerRequest);
}

} // namespace
} // namespace tomur::framework
