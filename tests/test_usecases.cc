/**
 * @file
 * Tests for the use cases: contention-aware placement and
 * performance diagnosis.
 */

#include <gtest/gtest.h>

#include "nfs/registry.hh"
#include "regex/ruleset.hh"
#include "usecases/diagnosis.hh"
#include "usecases/placement.hh"

namespace tomur::usecases {
namespace {

namespace fw = framework;

struct Fixture
{
    Fixture()
        : rules(regex::defaultRuleSet()), bed(hw::blueField2(), {})
    {
        dev.regex = std::make_shared<fw::RegexDevice>(rules);
        dev.compression = std::make_shared<fw::CompressionDevice>();
        dev.crypto = std::make_shared<fw::CryptoDevice>();
        lib = std::make_unique<core::BenchLibrary>(bed, dev, rules);
    }

    regex::RuleSet rules;
    fw::DeviceSet dev;
    sim::Testbed bed;
    std::unique_ptr<core::BenchLibrary> lib;
};

std::vector<Arrival>
makeArrivals(const std::vector<std::string> &names, int count,
             Rng &rng)
{
    std::vector<Arrival> out;
    for (int i = 0; i < count; ++i) {
        Arrival a;
        a.nfName = names[rng.uniformInt(names.size())];
        a.profile = traffic::TrafficProfile::defaults();
        a.slaMaxDrop = rng.uniform(0.05, 0.20);
        out.push_back(std::move(a));
    }
    return out;
}

TEST(Placement, StrategyNames)
{
    EXPECT_STREQ(strategyName(Strategy::Monopolization),
                 "Monopolization");
    EXPECT_STREQ(strategyName(Strategy::Tomur), "Tomur");
}

TEST(Placement, EndToEndComparison)
{
    // Small-scale version of Table 6's qualitative ordering.
    Fixture f;
    std::vector<std::string> mix = {"FlowStats", "IPRouter",
                                    "FlowClassifier", "NIDS"};
    PlacementContext ctx(*f.lib, mix,
                         traffic::TrafficProfile::defaults(), 60);
    Rng rng(11);
    auto arrivals = makeArrivals(mix, 24, rng);

    auto mono = ctx.place(arrivals, Strategy::Monopolization);
    auto greedy = ctx.place(arrivals, Strategy::Greedy);
    auto tomur = ctx.place(arrivals, Strategy::Tomur);
    auto oracle = ctx.place(arrivals, Strategy::Oracle);

    // Monopolization: no violations, maximal NIC usage.
    EXPECT_EQ(mono.slaViolations, 0);
    EXPECT_EQ(mono.nicsUsed, 24);

    // Greedy packs tightly but violates SLAs.
    EXPECT_LT(greedy.nicsUsed, mono.nicsUsed);

    // Oracle is feasible by construction.
    EXPECT_EQ(oracle.slaViolations, 0);

    // Tomur stays close to the oracle in NICs with few violations.
    EXPECT_LE(tomur.slaViolations, greedy.slaViolations);
    EXPECT_LE(tomur.nicsUsed, mono.nicsUsed);
    EXPECT_GE(tomur.nicsUsed, oracle.nicsUsed - 1);

    // Violation-rate helper.
    EXPECT_DOUBLE_EQ(mono.violationRate(), 0.0);
    EXPECT_EQ(tomur.totalNfs, 24);
}

TEST(Placement, UnknownNfIsFatal)
{
    Fixture f;
    PlacementContext ctx(*f.lib, {"FlowStats"},
                         traffic::TrafficProfile::defaults(), 40);
    std::vector<Arrival> arrivals = {
        {"NoSuchNF", traffic::TrafficProfile::defaults(), 0.1}};
    EXPECT_DEATH(ctx.place(arrivals, Strategy::Greedy),
                 "not trained");
}

TEST(Diagnosis, ResourceNames)
{
    EXPECT_STREQ(resourceName(Resource::Memory), "memory");
    EXPECT_STREQ(resourceName(Resource::Regex), "regex");
    EXPECT_STREQ(resourceName(Resource::Compression), "compression");
}

TEST(Diagnosis, TruthMapping)
{
    sim::Measurement m;
    m.bottleneck = sim::Bottleneck::Regex;
    EXPECT_EQ(truthBottleneck(m), Resource::Regex);
    m.bottleneck = sim::Bottleneck::CpuMemory;
    EXPECT_EQ(truthBottleneck(m), Resource::Memory);
    m.bottleneck = sim::Bottleneck::Compression;
    EXPECT_EQ(truthBottleneck(m), Resource::Compression);
}

TEST(Diagnosis, BreakdownMapping)
{
    // The breakdown overload derives the bottleneck through the
    // attribution module (largest predicted drop wins), not from the
    // stored dominantResource field.
    core::PredictionBreakdown b;
    b.soloThroughput = 1000.0;
    b.memoryOnlyThroughput = 900.0;
    EXPECT_EQ(tomurDiagnosis(b), Resource::Memory);
    b.accelUsed[0] = true; // regex drop overtakes memory
    b.accelOnlyThroughput[0] = 700.0;
    EXPECT_EQ(tomurDiagnosis(b), Resource::Regex);
    b.accelUsed[1] = true; // compression drops even more
    b.accelOnlyThroughput[1] = 500.0;
    EXPECT_EQ(tomurDiagnosis(b), Resource::Compression);
}

TEST(Diagnosis, ResourceFromAttributionMapping)
{
    EXPECT_EQ(resourceFromAttribution(0), Resource::Memory);
    EXPECT_EQ(resourceFromAttribution(1), Resource::Regex);
    EXPECT_EQ(resourceFromAttribution(2), Resource::Compression);
    EXPECT_EQ(resourceFromAttribution(3), Resource::Crypto);
}

TEST(Diagnosis, MakeTrialCarriesAttribution)
{
    core::PredictionBreakdown b;
    b.soloThroughput = 1000.0;
    b.memoryOnlyThroughput = 800.0;
    b.accelUsed[2] = true; // crypto dominates
    b.accelOnlyThroughput[2] = 600.0;
    b.confidence = 0.9;
    b.degraded = true;
    auto a = core::attributeContention(b);
    auto t = makeTrial(700.0, Resource::Crypto, a);
    EXPECT_DOUBLE_EQ(t.mtbr, 700.0);
    EXPECT_EQ(t.truth, Resource::Crypto);
    EXPECT_EQ(t.tomur, Resource::Crypto);
    EXPECT_EQ(t.slomo, Resource::Memory);
    EXPECT_TRUE(t.degraded);
    EXPECT_DOUBLE_EQ(t.confidence, 0.9);
}

TEST(Diagnosis, Scoring)
{
    std::vector<DiagnosisTrial> trials(4);
    trials[0] = {100, Resource::Memory, Resource::Memory,
                 Resource::Memory};
    trials[1] = {500, Resource::Regex, Resource::Regex,
                 Resource::Memory};
    trials[2] = {900, Resource::Regex, Resource::Regex,
                 Resource::Memory};
    trials[3] = {1100, Resource::Regex, Resource::Memory,
                 Resource::Memory};
    auto s = scoreTrials(trials);
    EXPECT_DOUBLE_EQ(s.tomurCorrectPct, 75.0);
    EXPECT_DOUBLE_EQ(s.slomoCorrectPct, 25.0);
    EXPECT_EQ(s.trials, 4u);
}

TEST(Diagnosis, BottleneckShiftDetectedEndToEnd)
{
    // FlowMonitor co-run with mem-bench + regex-bench: at low MTBR
    // the truth bottleneck is memory, at high MTBR regex, and Tomur
    // follows the shift (§7.5.2).
    Fixture f;
    core::TomurTrainer trainer(*f.lib);
    auto defaults = traffic::TrafficProfile::defaults();
    auto nf = nfs::makeFlowMonitor(f.dev);
    core::TrainOptions topts;
    topts.adaptive.quota = 80;
    auto model = trainer.train(*nf, defaults, topts);

    // Fixed memory contention + closed-loop regex bench.
    const auto &mem = f.lib->memBenches()[160];
    const auto &rx =
        f.lib->accelBench(hw::AccelKind::Regex, 300e3, 800.0);

    for (double mtbr : {50.0, 1000.0}) {
        auto p =
            defaults.withAttribute(traffic::Attribute::Mtbr, mtbr);
        const auto &w = trainer.workloadOf(*nf, p);
        auto ms = f.bed.run({w, mem.workload, rx.workload});
        double solo = f.bed.runSolo(w).truthThroughput;
        auto breakdown = model.predictDetailed(
            {mem.level, rx.level}, p, solo);
        EXPECT_EQ(tomurDiagnosis(breakdown),
                  truthBottleneck(ms[0]))
            << "mtbr=" << mtbr;
    }
}

} // namespace
} // namespace tomur::usecases
