/**
 * @file
 * Chaos campaign engine tests: the plan repro format (round-trip
 * identity and the rejection corpus), the invariant checkers over
 * synthetic outcomes, a full seeded campaign of 500+ composed fault
 * plans that must finish with zero violations on a healthy tree, the
 * planted-regression self-test (a disabled commit-on-success reload
 * guard must be detected, shrunk to a minimal action sequence, and
 * reproduced deterministically from the emitted repro file), and the
 * chaos golden: the campaign JSONL ledger is byte-identical across
 * thread-pool widths.
 *
 * Golden fixtures live in tests/golden/ (path baked in via
 * TOMUR_GOLDEN_DIR); regenerate with tools/update_goldens.sh or by
 * running this binary with TOMUR_UPDATE_GOLDENS=1.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "chaos/campaign.hh"
#include "chaos/invariants.hh"
#include "chaos/plan.hh"
#include "chaos/runner.hh"
#include "chaos/shrink.hh"
#include "common/telemetry.hh"
#include "common/threadpool.hh"

namespace tomur {
namespace {

namespace fs = std::filesystem;
using chaos::ActionKind;
using chaos::FaultAction;
using chaos::FaultPlan;
using chaos::InvariantKind;
using chaos::PlanTarget;
using chaos::RunOutcome;

/** RAII global pool width (restores the configured width on exit). */
struct PoolWidth
{
    explicit PoolWidth(int threads) { setGlobalThreadCount(threads); }
    ~PoolWidth() { setGlobalThreadCount(configuredThreadCount()); }
};

/** A fresh, empty directory under the test temp root. */
std::string
freshDir(const std::string &name)
{
    fs::path dir = fs::path(::testing::TempDir()) / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** The heavy fixture, built once per process: every plan run resets
 *  its own seeded state, so sharing is observationally invisible. */
chaos::ChaosWorld &
world()
{
    static chaos::ChaosWorld w("FlowStats");
    return w;
}

chaos::RunnerOptions
runnerOpts(const std::string &work_dir)
{
    chaos::RunnerOptions opts;
    opts.workDir = work_dir;
    return opts;
}

Result<FaultPlan>
parseText(const std::string &text)
{
    std::istringstream in(text);
    return chaos::parsePlan(in);
}

// ---------------------------------------------------------------
// Plan format: round trip and rejection corpus
// ---------------------------------------------------------------

TEST(ChaosPlan, GeneratedPlansRoundTripThroughReproFormat)
{
    for (std::size_t i = 0; i < 24; ++i) {
        auto target = i % 3 == 2 ? PlanTarget::Serve
                                 : PlanTarget::Autopilot;
        FaultPlan plan = chaos::randomPlan(7, i, target);
        auto back = parseText(chaos::emitPlan(plan));
        ASSERT_TRUE(back) << back.status().toString();
        EXPECT_EQ(plan, back.value()) << "index " << i;
    }
    for (const auto &plan : chaos::modePairPlans(7)) {
        auto back = parseText(chaos::emitPlan(plan));
        ASSERT_TRUE(back) << back.status().toString();
        EXPECT_EQ(plan, back.value());
    }
}

TEST(ChaosPlan, LargeSeedsSurviveTheRoundTripExactly)
{
    // 2^64 - 1 and a seed that rounds when forced through a double.
    for (std::uint64_t seed :
         {std::uint64_t{18446744073709551615ull},
          std::uint64_t{15650974698129236480ull}}) {
        FaultPlan plan = chaos::randomPlan(3, 0, PlanTarget::Serve);
        plan.seed = seed;
        auto back = parseText(chaos::emitPlan(plan));
        ASSERT_TRUE(back) << back.status().toString();
        EXPECT_EQ(back.value().seed, seed);
    }
}

TEST(ChaosPlan, CommentsAndBlankLinesAreIgnored)
{
    auto plan = parseText("# a repro file\n"
                          "plan seed=42 target=serve\n"
                          "\n"
                          "action kind=queue_storm at=3 magnitude=6 "
                          "span=4 variant=0  # storm\n");
    ASSERT_TRUE(plan) << plan.status().toString();
    EXPECT_EQ(plan.value().seed, 42u);
    EXPECT_EQ(plan.value().actions.size(), 1u);
    EXPECT_EQ(plan.value().actions[0].kind, ActionKind::QueueStorm);
}

TEST(ChaosPlan, RejectionCorpus)
{
    const char *bad[] = {
        // action before the header
        "action kind=crash at=3 magnitude=0 span=1 variant=0\n",
        // duplicate header
        "plan seed=1 target=serve\nplan seed=2 target=serve\n",
        // unknown target
        "plan seed=1 target=warp\n",
        // unknown plan key
        "plan seed=1 target=serve frobnicate=1\n",
        // non-numeric seed
        "plan seed=banana target=serve\n",
        // seed overflows u64
        "plan seed=99999999999999999999999 target=serve\n",
        // unknown action kind
        "plan seed=1 target=serve\n"
        "action kind=meteor at=1 magnitude=0 span=1 variant=0\n",
        // unknown action key
        "plan seed=1 target=serve\n"
        "action kind=crash at=1 magnitude=0 span=1 variant=0 "
        "color=red\n",
        // zero span
        "plan seed=1 target=serve\n"
        "action kind=queue_storm at=1 magnitude=4 span=0 "
        "variant=0\n",
        // unsorted actions
        "plan seed=1 target=serve\n"
        "action kind=queue_storm at=9 magnitude=4 span=2 variant=0\n"
        "action kind=drain_drill at=2 magnitude=0 span=1 "
        "variant=0\n",
        // autopilot plan without a scenario
        "plan seed=1 target=autopilot\n"
        "action kind=crash at=3 magnitude=0 span=1 variant=0\n",
    };
    for (const char *text : bad)
        EXPECT_FALSE(parseText(text)) << text;
}

TEST(ChaosPlan, GenerationIsDeterministic)
{
    for (std::size_t i = 0; i < 8; ++i) {
        EXPECT_EQ(chaos::randomPlan(7, i, PlanTarget::Autopilot),
                  chaos::randomPlan(7, i, PlanTarget::Autopilot));
    }
    EXPECT_NE(chaos::randomPlan(7, 0, PlanTarget::Autopilot),
              chaos::randomPlan(8, 0, PlanTarget::Autopilot));
    EXPECT_EQ(chaos::modePairPlans(7).size(), 21u);
}

// ---------------------------------------------------------------
// Invariant checkers over synthetic outcomes
// ---------------------------------------------------------------

/** A baseline outcome that passes every checker. */
RunOutcome
healthyOutcome()
{
    RunOutcome o;
    o.completed = true;
    o.samples = 36;
    return o;
}

bool
fails(const RunOutcome &o, InvariantKind kind,
      const FaultPlan &plan = {})
{
    for (const auto &v :
         chaos::checkInvariants(plan, o, {})) {
        if (v.kind == kind)
            return !v.passed;
    }
    ADD_FAILURE() << "kind not reported";
    return false;
}

TEST(ChaosInvariants, HealthyOutcomePassesAll)
{
    auto verdicts = chaos::checkInvariants({}, healthyOutcome(), {});
    ASSERT_EQ(verdicts.size(), 4u); // determinism is appended later
    for (const auto &v : verdicts)
        EXPECT_TRUE(v.passed) << chaos::invariantName(v.kind)
                              << ": " << v.detail;
}

TEST(ChaosInvariants, HangAndCorruptionAreViolations)
{
    auto o = healthyOutcome();
    o.hung = true;
    o.hangWhere = "supervisor.autopilot";
    EXPECT_TRUE(fails(o, InvariantKind::NoHang));

    o = healthyOutcome();
    o.checkpointHealthy = false;
    o.checkpointDetail = "checksum mismatch";
    EXPECT_TRUE(fails(o, InvariantKind::NoCorruptState));

    o = healthyOutcome();
    o.modelRoundTripOk = false;
    EXPECT_TRUE(fails(o, InvariantKind::NoCorruptState));
}

TEST(ChaosInvariants, RecoveryWindowMustCloseAfterQuietTail)
{
    auto o = healthyOutcome();
    o.monitor.recoveryOpen = true;
    o.lastDisturbanceSample = 10;
    o.samples = 100; // 90 quiet samples > the 40-sample bound
    EXPECT_TRUE(fails(o, InvariantKind::BoundedRecovery));

    // Still inside the bound: not a violation yet.
    o.samples = 30;
    EXPECT_FALSE(fails(o, InvariantKind::BoundedRecovery));

    // Serve plans have no recovery window.
    o.samples = 100;
    o.serveTarget = true;
    EXPECT_FALSE(fails(o, InvariantKind::BoundedRecovery));
}

TEST(ChaosInvariants, BreakerMustOpenAfterConsecutiveFailures)
{
    auto o = healthyOutcome();
    core::SupervisorEvent failed;
    failed.kind = core::SupervisorEventKind::RecalibrationFailed;
    failed.sample = 9;
    o.supervisorEvents = {failed, failed}; // threshold 2, no open
    EXPECT_TRUE(fails(o, InvariantKind::GracefulDegradation));

    core::SupervisorEvent opened;
    opened.kind = core::SupervisorEventKind::BreakerOpened;
    opened.sample = 9;
    o.supervisorEvents = {failed, failed, opened};
    EXPECT_FALSE(fails(o, InvariantKind::GracefulDegradation));

    // A success in between resets the streak.
    core::SupervisorEvent ok;
    ok.kind = core::SupervisorEventKind::RecalibrationSucceeded;
    ok.sample = 9;
    o.supervisorEvents = {failed, ok, failed};
    EXPECT_FALSE(fails(o, InvariantKind::GracefulDegradation));
}

TEST(ChaosInvariants, ServeRefusalsMustDegradeGracefully)
{
    auto o = healthyOutcome();
    o.serveTarget = true;

    // 503 shedding is the desired degradation mode, not a failure...
    o.serveStatus[5] = 12;
    EXPECT_FALSE(fails(o, InvariantKind::GracefulDegradation));

    // ...500s are.
    o.serveInternalErrors = 1;
    EXPECT_TRUE(fails(o, InvariantKind::GracefulDegradation));

    o = healthyOutcome();
    o.serveTarget = true;
    o.retryAfterOnRefusals = false;
    EXPECT_TRUE(fails(o, InvariantKind::GracefulDegradation));

    o = healthyOutcome();
    o.serveTarget = true;
    o.reloadKeptServing = false;
    EXPECT_TRUE(fails(o, InvariantKind::GracefulDegradation));

    o = healthyOutcome();
    o.serveTarget = true;
    o.drainConverged = false;
    EXPECT_TRUE(fails(o, InvariantKind::GracefulDegradation));
}

// ---------------------------------------------------------------
// Single-plan runs through the real stack
// ---------------------------------------------------------------

TEST(ChaosRunner, CrashPlanResumesAndStaysDeterministic)
{
    FaultPlan plan;
    plan.seed = 1234;
    plan.target = PlanTarget::Autopilot;
    plan.scenario = traffic::steadySteps(
        traffic::TrafficProfile::defaults(), 24);
    plan.actions = {{ActionKind::Crash, 11, 0.0, 1, 0}};

    auto opts = runnerOpts(freshDir("chaos_crash_plan"));
    auto first = chaos::runPlan(world(), plan, opts);
    EXPECT_TRUE(first.completed) << first.error;
    EXPECT_EQ(first.crashes, 1u);
    EXPECT_EQ(first.resumes, 1u);
    EXPECT_FALSE(first.hung);

    auto second = chaos::runPlan(world(), plan, opts);
    EXPECT_EQ(first.streamHash, second.streamHash)
        << "crash-resume replay must be deterministic";
}

TEST(ChaosRunner, ServePlanShedsWithRetryAfterUnderStorm)
{
    FaultPlan plan;
    plan.seed = 77;
    plan.target = PlanTarget::Serve;
    plan.actions = {
        {ActionKind::QueueStorm, 6, 10.0, 12, 0},
        {ActionKind::TransportFault, 20, 0.3, 10, 2},
        {ActionKind::DrainDrill, chaos::kServePlanSteps - 10, 0.0, 1,
         0},
    };

    auto opts = runnerOpts(freshDir("chaos_serve_storm"));
    auto outcome = chaos::runPlan(world(), plan, opts);
    EXPECT_TRUE(outcome.completed) << outcome.error;
    EXPECT_GT(outcome.serveResponses, 0u);
    EXPECT_GT(outcome.serveStatus[2] + outcome.serveStatus[4] +
                  outcome.serveStatus[5],
              0u);
    EXPECT_TRUE(outcome.retryAfterOnRefusals)
        << outcome.refusalDetail;
    EXPECT_TRUE(outcome.drainConverged);
    EXPECT_EQ(outcome.serveInternalErrors, 0u);

    auto verdicts =
        chaos::checkInvariants(plan, outcome, opts.invariants);
    for (const auto &v : verdicts)
        EXPECT_TRUE(v.passed) << chaos::invariantName(v.kind)
                              << ": " << v.detail;
}

TEST(ChaosRunner, CorruptReloadKeepsPriorModelServing)
{
    FaultPlan plan;
    plan.seed = 501;
    plan.target = PlanTarget::Serve;
    plan.actions = {
        {ActionKind::CorruptReload, 10, 0.0, 1, 0},
        {ActionKind::CorruptReload, 20, 0.0, 1, 1},
        {ActionKind::CorruptReload, 30, 0.0, 1, 2},
    };

    auto opts = runnerOpts(freshDir("chaos_corrupt_reload"));
    auto outcome = chaos::runPlan(world(), plan, opts);
    EXPECT_TRUE(outcome.completed) << outcome.error;
    EXPECT_TRUE(outcome.reloadKeptServing) << outcome.reloadDetail;
    EXPECT_EQ(outcome.serveInternalErrors, 0u);
}

// ---------------------------------------------------------------
// Campaigns
// ---------------------------------------------------------------

chaos::CampaignOptions
campaignOpts(const std::string &work_dir, std::size_t runs)
{
    chaos::CampaignOptions opts;
    opts.seed = 7;
    opts.runs = runs;
    opts.runner = runnerOpts(work_dir);
    return opts;
}

TEST(ChaosCampaign, FiveHundredPlansZeroViolations)
{
    // The acceptance bar: 21 combinatorial + 480 random composed
    // plans, all invariants green on a healthy tree.
    auto opts = campaignOpts(freshDir("chaos_500"), 480);
    opts.determinismEveryN = 16; // keep the re-run cost bounded
    auto result = chaos::runCampaign(world(), opts);
    EXPECT_GE(result.plans, 500u);
    EXPECT_EQ(result.violations, 0u) << result.firstViolationDetail;
    EXPECT_FALSE(result.haveRepro);
    EXPECT_GT(result.crashes, 0u)
        << "the plan space must actually exercise crash-resume";
    EXPECT_GT(result.faultsInjected, 0u);
    EXPECT_GT(result.determinismReruns, 0u);
}

TEST(ChaosCampaign, PlantedRegressionIsCaughtShrunkAndReplayable)
{
    auto opts = campaignOpts(freshDir("chaos_planted"), 12);
    opts.combinatorial = false; // the plant lives in serve plans
    opts.runner.plant = chaos::kPlantRegistryNoCommit;
    auto result = chaos::runCampaign(world(), opts);

    ASSERT_TRUE(result.haveRepro)
        << "campaign missed the planted regression";
    EXPECT_EQ(result.firstViolationKind,
              InvariantKind::GracefulDegradation);
    EXPECT_GT(result.violations, 0u);
    EXPECT_GT(result.shrinkIterations, 0u);
    ASSERT_LE(result.shrunkPlan.actions.size(), 3u)
        << "shrinker left a non-minimal plan";

    // The repro file round-trips to the shrunk plan...
    auto replayPlan = parseText(result.reproText);
    ASSERT_TRUE(replayPlan) << replayPlan.status().toString();
    EXPECT_EQ(replayPlan.value(), result.shrunkPlan);

    // ...replays deterministically to the same violation...
    auto once =
        chaos::runPlan(world(), replayPlan.value(), opts.runner);
    auto twice =
        chaos::runPlan(world(), replayPlan.value(), opts.runner);
    EXPECT_EQ(once.streamHash, twice.streamHash);
    EXPECT_TRUE(fails(once, InvariantKind::GracefulDegradation,
                      replayPlan.value()));

    // ...and passes once the plant is removed (the minimal plan
    // isolates the regression, not some background fault).
    auto clean = opts.runner;
    clean.plant.clear();
    auto healthy =
        chaos::runPlan(world(), replayPlan.value(), clean);
    EXPECT_FALSE(
        fails(healthy, InvariantKind::GracefulDegradation,
              replayPlan.value()));
}

TEST(ChaosCampaign, MetricsCountPlansAndViolations)
{
    auto &plans = metrics().counter("tomur_chaos_plans_total");
    auto &violations =
        metrics().counter("tomur_chaos_violations_total");
    double plansBefore = plans.value();
    double violationsBefore = violations.value();

    auto opts = campaignOpts(freshDir("chaos_metrics"), 6);
    opts.combinatorial = false;
    opts.determinismEveryN = 0;
    auto result = chaos::runCampaign(world(), opts);
    EXPECT_EQ(result.violations, 0u);
    EXPECT_GE(plans.value(), plansBefore + 6.0);
    EXPECT_EQ(violations.value(), violationsBefore);
}

// ---------------------------------------------------------------
// Campaign golden: byte-identical ledger across widths
// ---------------------------------------------------------------

#ifndef TOMUR_GOLDEN_DIR
#define TOMUR_GOLDEN_DIR "tests/golden"
#endif

std::string
goldenPath(const std::string &file)
{
    return std::string(TOMUR_GOLDEN_DIR) + "/" + file;
}

void
checkGolden(const std::string &file, const std::string &actual)
{
    const std::string path = goldenPath(file);
    if (std::getenv("TOMUR_UPDATE_GOLDENS")) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << actual;
        return;
    }
    std::string expected = readFile(path);
    ASSERT_FALSE(expected.empty())
        << path << " is missing; regenerate with "
        << "tools/update_goldens.sh";
    EXPECT_EQ(expected, actual)
        << "golden mismatch for " << file
        << "; if the change is intentional, regenerate with "
        << "tools/update_goldens.sh and review the diff";
}

std::string
goldenCampaignLedger(const std::string &work_dir)
{
    auto opts = campaignOpts(work_dir, 9);
    opts.determinismEveryN = 5;
    auto result = chaos::runCampaign(world(), opts);
    EXPECT_EQ(result.violations, 0u);
    return result.jsonl;
}

TEST(ChaosGolden, CampaignLedgerIsByteStableSerial)
{
    PoolWidth width(1);
    auto ledger = goldenCampaignLedger(freshDir("chaos_golden_1"));
    // The fixture must exercise both targets and the trailer.
    EXPECT_NE(ledger.find("\"target\":\"autopilot\""),
              std::string::npos);
    EXPECT_NE(ledger.find("\"target\":\"serve\""),
              std::string::npos);
    EXPECT_NE(ledger.find("\"chaos_summary\""), std::string::npos);
    checkGolden("chaos_campaign.jsonl", ledger);
}

TEST(ChaosGolden, WideCampaignIsByteIdenticalToFixture)
{
    PoolWidth width(8);
    auto ledger = goldenCampaignLedger(freshDir("chaos_golden_8"));
    if (std::getenv("TOMUR_UPDATE_GOLDENS")) {
        // The fixture is written by the serial test; here we only
        // verify the wide run reproduces it.
        std::string serial;
        {
            PoolWidth one(1);
            serial =
                goldenCampaignLedger(freshDir("chaos_golden_8r"));
        }
        EXPECT_EQ(serial, ledger);
        return;
    }
    checkGolden("chaos_campaign.jsonl", ledger);
}

} // namespace
} // namespace tomur
