/**
 * @file
 * Unit tests for common utilities: RNG, statistics, strings, tables.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/strutil.hh"
#include "common/table.hh"

namespace tomur {
namespace {

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a() == b());
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange)
{
    Rng r(5);
    for (int i = 0; i < 1000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
    for (int i = 0; i < 1000; ++i) {
        auto v = r.uniformInt(std::int64_t(-3), std::int64_t(7));
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 7);
    }
}

TEST(Rng, UniformIntCoversAll)
{
    Rng r(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(r.uniformInt(std::uint64_t(5)));
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMoments)
{
    Rng r(11);
    std::vector<double> xs(20000);
    for (auto &x : xs)
        x = r.normal();
    EXPECT_NEAR(mean(xs), 0.0, 0.05);
    EXPECT_NEAR(stddev(xs), 1.0, 0.05);
}

TEST(Rng, LognormalMedianNearOne)
{
    Rng r(13);
    std::vector<double> xs(20001);
    for (auto &x : xs)
        x = r.lognormalFactor(0.1);
    EXPECT_NEAR(median(xs), 1.0, 0.02);
    for (double x : xs)
        EXPECT_GT(x, 0.0);
}

TEST(Rng, SplitIndependence)
{
    Rng a(17);
    Rng c = a.split();
    EXPECT_NE(a(), c());
}

TEST(Stats, MeanStd)
{
    std::vector<double> xs = {1, 2, 3, 4, 5};
    EXPECT_DOUBLE_EQ(mean(xs), 3.0);
    EXPECT_NEAR(stddev(xs), std::sqrt(2.5), 1e-12);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, Percentiles)
{
    std::vector<double> xs = {10, 20, 30, 40};
    EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
    EXPECT_DOUBLE_EQ(median({7.0}), 7.0);
}

TEST(Stats, BoxStatsOrdered)
{
    Rng r(23);
    std::vector<double> xs(1000);
    for (auto &x : xs)
        x = r.uniform();
    BoxStats b = BoxStats::from(xs);
    EXPECT_LE(b.p5, b.p25);
    EXPECT_LE(b.p25, b.p50);
    EXPECT_LE(b.p50, b.p75);
    EXPECT_LE(b.p75, b.p95);
}

TEST(Stats, RunningStats)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    s.add(3);
    s.add(-1);
    s.add(4);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), -1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(Stats, PercentileBadRangePanics)
{
    EXPECT_DEATH(percentile({1.0, 2.0}, 150.0), "out of range");
}

TEST(Strutil, StrfLongOutput)
{
    std::string big(5000, 'y');
    EXPECT_EQ(strf("%s!", big.c_str()).size(), 5001u);
}

TEST(Strutil, Strf)
{
    EXPECT_EQ(strf("x=%d y=%.2f", 3, 1.5), "x=3 y=1.50");
    EXPECT_EQ(strf("%s", ""), "");
}

TEST(Strutil, SplitJoin)
{
    auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(join(parts, "-"), "a-b--c");
}

TEST(Table, RendersAligned)
{
    AsciiTable t({"NF", "MAPE"});
    t.addRow({"NIDS", "1.5"});
    t.addRow({"FlowMonitor", "4.5"});
    std::string s = t.toString();
    EXPECT_NE(s.find("NIDS"), std::string::npos);
    EXPECT_NE(s.find("FlowMonitor"), std::string::npos);
    // All lines have equal width.
    auto lines = split(s, '\n');
    std::size_t w = lines[0].size();
    for (const auto &l : lines) {
        if (!l.empty()) {
            EXPECT_EQ(l.size(), w);
        }
    }
}

TEST(TableDeath, ArityMismatch)
{
    AsciiTable t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "arity");
}

} // namespace
} // namespace tomur
