/**
 * @file
 * Tests for the testbed: solo baselines, contention phenomenology
 * (the shapes the paper measures in §2 and §4), counters, and noise.
 */

#include <gtest/gtest.h>

#include "framework/profile.hh"
#include "nfs/bench_nfs.hh"
#include "nfs/registry.hh"
#include "nfs/synthetic.hh"
#include "regex/ruleset.hh"
#include "sim/testbed.hh"

namespace tomur::sim {
namespace {

namespace fw = framework;

struct Fixture
{
    Fixture()
        : rules(regex::defaultRuleSet()),
          bed(hw::blueField2(), noiseless())
    {
        dev.regex = std::make_shared<fw::RegexDevice>(rules);
        dev.compression = std::make_shared<fw::CompressionDevice>();
        dev.crypto = std::make_shared<fw::CryptoDevice>();
    }

    static TestbedOptions
    noiseless()
    {
        TestbedOptions o;
        o.noiseSigma = 0.0;
        return o;
    }

    fw::WorkloadProfile
    profileOf(fw::NetworkFunction &nf,
              traffic::TrafficProfile tp =
                  traffic::TrafficProfile::defaults())
    {
        return fw::profileWorkload(nf, tp, &rules);
    }

    fw::WorkloadProfile
    memBench(double wss_mb, double car)
    {
        nfs::MemBenchConfig cfg;
        cfg.wssBytes = wss_mb * 1024 * 1024;
        cfg.targetAccessRate = car;
        auto nf = nfs::makeMemBench(cfg);
        traffic::TrafficProfile tp;
        tp.flowCount = 16;
        tp.mtbr = 0;
        return fw::profileWorkload(*nf, tp, nullptr);
    }

    fw::WorkloadProfile
    regexBench(double rate)
    {
        auto nf = nfs::makeRegexBench(dev, {.requestRate = rate});
        return profileOf(*nf);
    }

    regex::RuleSet rules;
    fw::DeviceSet dev;
    Testbed bed;
};

TEST(Testbed, SoloThroughputsPlausible)
{
    Fixture f;
    for (const auto &name : nfs::evaluationNfNames()) {
        auto nf = nfs::makeByName(name, f.dev);
        auto m = f.bed.runSolo(f.profileOf(*nf));
        EXPECT_GT(m.truthThroughput, 100e3) << name;
        EXPECT_LT(m.truthThroughput, 50e6) << name;
    }
}

TEST(Testbed, SoloDeterministicWithoutNoise)
{
    Fixture f;
    auto nf = nfs::makeFlowStats();
    auto w = f.profileOf(*nf);
    auto a = f.bed.runSolo(w);
    auto b = f.bed.runSolo(w);
    EXPECT_DOUBLE_EQ(a.truthThroughput, b.truthThroughput);
    EXPECT_DOUBLE_EQ(a.throughput, a.truthThroughput);
}

TEST(Testbed, NoiseIsSmallAndNonzero)
{
    Fixture f;
    TestbedOptions opts;
    opts.noiseSigma = 0.01;
    Testbed noisy(hw::blueField2(), opts);
    auto nf = nfs::makeFlowStats();
    auto w = f.profileOf(*nf);
    auto a = noisy.runSolo(w);
    auto b = noisy.runSolo(w);
    EXPECT_NE(a.throughput, b.throughput);
    EXPECT_NEAR(a.throughput / a.truthThroughput, 1.0, 0.1);
}

TEST(Testbed, CoresOversubscriptionFatal)
{
    Fixture f;
    auto nf = nfs::makeFlowStats();
    auto w = f.profileOf(*nf);
    std::vector<fw::WorkloadProfile> five(5, w); // 10 cores > 8
    EXPECT_DEATH(f.bed.run(five), "cores");
}

TEST(Testbed, MemoryContentionDegradesVictim)
{
    Fixture f;
    auto nf = nfs::makeFlowStats();
    auto w = f.profileOf(*nf);
    double solo = f.bed.runSolo(w).truthThroughput;
    double prev = solo;
    // Monotone degradation as competitor CAR rises (Fig. 3a).
    for (double car : {5e6, 20e6, 40e6, 80e6}) {
        auto ms = f.bed.run({w, f.memBench(12.0, car)});
        EXPECT_LE(ms[0].truthThroughput, prev * 1.001)
            << "car=" << car;
        prev = ms[0].truthThroughput;
    }
    EXPECT_LT(prev, solo * 0.85); // at least ~15% drop at the top end
}

TEST(Testbed, SmallCompetitorWssHarmless)
{
    Fixture f;
    auto nf = nfs::makeFlowStats();
    auto w = f.profileOf(*nf);
    double solo = f.bed.runSolo(w).truthThroughput;
    auto ms = f.bed.run({w, f.memBench(1.0, 80e6)});
    EXPECT_GT(ms[0].truthThroughput, solo * 0.97);
}

TEST(Testbed, RegexEquilibrium)
{
    // Fig. 4: linear decline then a shared-equilibrium plateau.
    Fixture f;
    auto rnf = nfs::makeRegexNf(f.dev);
    auto w = f.profileOf(*rnf);
    double solo = f.bed.runSolo(w).truthThroughput;

    std::vector<double> thr;
    for (double rate :
         {50e3, 100e3, 150e3, 200e3, 600e3, 800e3, 1000e3}) {
        auto ms = f.bed.run({w, f.regexBench(rate)});
        thr.push_back(ms[0].truthThroughput);
    }
    // Linear region: equal decrements for equal rate steps.
    double d1 = thr[0] - thr[1];
    double d2 = thr[1] - thr[2];
    double d3 = thr[2] - thr[3];
    EXPECT_NEAR(d1, d2, 0.15 * d1);
    EXPECT_NEAR(d2, d3, 0.15 * d2);
    EXPECT_LT(thr[0], solo);
    // Plateau region: further rate increases change nothing.
    EXPECT_NEAR(thr[4], thr[5], thr[4] * 0.01);
    EXPECT_NEAR(thr[5], thr[6], thr[5] * 0.01);
    // At equilibrium both NFs converge to the same rate.
    auto ms = f.bed.run({w, f.regexBench(1000e3)});
    EXPECT_NEAR(ms[0].truthThroughput, ms[1].truthThroughput,
                ms[0].truthThroughput * 0.02);
}

TEST(Testbed, TwoClosedLoopRegexNfsShareEqually)
{
    Fixture f;
    auto a = nfs::makeRegexNf(f.dev);
    auto b = nfs::makeRegexNf(f.dev);
    auto wa = f.profileOf(*a);
    auto wb = f.profileOf(*b);
    auto ms = f.bed.run({wa, wb});
    EXPECT_NEAR(ms[0].truthThroughput, ms[1].truthThroughput,
                ms[0].truthThroughput * 0.02);
    double solo = f.bed.runSolo(wa).truthThroughput;
    EXPECT_NEAR(ms[0].truthThroughput, solo / 2, solo * 0.03);
}

TEST(Testbed, PipelinePlateausUnderMemoryContention)
{
    // Fig. 5 (top), O1: a regex-bottlenecked pipeline NF ignores
    // moderate memory contention.
    Fixture f;
    auto nf = nfs::makeSyntheticNf1(f.dev,
                                    fw::ExecutionPattern::Pipeline);
    auto w = f.profileOf(*nf);
    auto high_regex = f.regexBench(800e3);
    auto base = f.bed.run({w, high_regex});
    auto with_mem =
        f.bed.run({w, high_regex, f.memBench(8.0, 20e6)});
    EXPECT_NEAR(with_mem[0].truthThroughput,
                base[0].truthThroughput,
                base[0].truthThroughput * 0.02);
}

TEST(Testbed, RtcCompoundsContention)
{
    // Fig. 5 (bottom), O2: run-to-completion degrades under both
    // contention sources simultaneously.
    Fixture f;
    auto nf = nfs::makeSyntheticNf1(
        f.dev, fw::ExecutionPattern::RunToCompletion);
    auto w = f.profileOf(*nf);
    auto rx = f.regexBench(300e3);
    double base = f.bed.run({w, rx})[0].truthThroughput;
    double with_mem =
        f.bed.run({w, rx, f.memBench(10.0, 60e6)})[0].truthThroughput;
    EXPECT_LT(with_mem, base * 0.97);
}

TEST(Testbed, CountersScaleWithThroughput)
{
    Fixture f;
    auto nf = nfs::makeFlowStats();
    auto w = f.profileOf(*nf);
    auto m = f.bed.runSolo(w);
    EXPECT_NEAR(m.counters.instrRetired,
                m.truthThroughput * w.instrPerPacket,
                m.counters.instrRetired * 0.01);
    EXPECT_NEAR(m.counters.l2ReadRate,
                m.truthThroughput * w.llcReadsPerPacket,
                m.counters.l2ReadRate * 0.01);
    EXPECT_GT(m.counters.ipc, 0.0);
    EXPECT_LE(m.counters.ipc, hw::blueField2().baseIpc * 1.01);
    EXPECT_DOUBLE_EQ(m.counters.wssBytes, w.wssBytes);
    // Memory traffic is the missing fraction of cache traffic.
    EXPECT_LT(m.counters.memReadRate, m.counters.l2ReadRate);
}

TEST(Testbed, PacedWorkloadHitsItsRate)
{
    Fixture f;
    auto w = f.memBench(4.0, 10e6);
    auto m = f.bed.runSolo(w);
    EXPECT_NEAR(m.truthThroughput * 64.0, 10e6, 10e6 * 0.01);
    EXPECT_EQ(m.bottleneck, Bottleneck::Pacing);
}

TEST(Testbed, BottleneckIdentifiesRegex)
{
    Fixture f;
    auto nf = nfs::makeFlowMonitor(f.dev);
    auto m = f.bed.runSolo(f.profileOf(*nf));
    EXPECT_EQ(m.bottleneck, Bottleneck::Regex);
    EXPECT_STREQ(bottleneckName(m.bottleneck), "regex");
}

TEST(Testbed, BottleneckShiftsWithMtbr)
{
    // §7.5.2: FlowMonitor's bottleneck moves from memory to regex as
    // MTBR grows.
    Fixture f;
    auto nf = nfs::makeFlowMonitor(f.dev);
    auto tp = traffic::TrafficProfile::defaults();
    auto low = f.profileOf(
        *nf, tp.withAttribute(traffic::Attribute::Mtbr, 0.0));
    auto high = f.profileOf(
        *nf, tp.withAttribute(traffic::Attribute::Mtbr, 1000.0));
    auto mem = f.memBench(12.0, 60e6);
    auto m_low = f.bed.run({low, mem})[0];
    auto m_high = f.bed.run({high, mem})[0];
    EXPECT_EQ(m_low.bottleneck, Bottleneck::CpuMemory);
    EXPECT_EQ(m_high.bottleneck, Bottleneck::Regex);
}

TEST(Testbed, FlowCountPiecewiseEffect)
{
    // Fig. 6(a): throughput falls with flow count, then flattens
    // once the table far exceeds the LLC.
    Fixture f;
    auto mem = f.memBench(10.0, 40e6);
    std::vector<double> thr;
    for (double flows : {1e3, 16e3, 64e3, 256e3, 500e3}) {
        auto nf = nfs::makeFlowStats();
        auto tp = traffic::TrafficProfile::defaults().withAttribute(
            traffic::Attribute::FlowCount, flows);
        auto w = f.profileOf(*nf, tp);
        thr.push_back(f.bed.run({w, mem})[0].truthThroughput);
    }
    EXPECT_LT(thr[2], thr[0] * 0.8);  // mid-range: significant drop
    // Tail: change between 256K and 500K flows is comparatively
    // small (LLC long since saturated).
    double mid_drop = thr[1] - thr[2];
    double tail_drop = std::abs(thr[3] - thr[4]);
    EXPECT_LT(tail_drop, mid_drop);
}

TEST(Testbed, PacketSizeIrrelevantForHeaderNf)
{
    // Fig. 6(b): FlowStats ignores packet size.
    Fixture f;
    auto nf = nfs::makeFlowStats();
    auto tp = traffic::TrafficProfile::defaults();
    auto small = f.profileOf(
        *nf, tp.withAttribute(traffic::Attribute::PacketSize, 64.0));
    auto big = f.profileOf(
        *nf,
        tp.withAttribute(traffic::Attribute::PacketSize, 1500.0));
    double ts = f.bed.runSolo(small).truthThroughput;
    double tb = f.bed.runSolo(big).truthThroughput;
    EXPECT_NEAR(ts, tb, ts * 0.05);
}

TEST(Testbed, MtbrSlowsRegexNfs)
{
    Fixture f;
    auto nf = nfs::makeNids(f.dev);
    auto tp = traffic::TrafficProfile::defaults();
    auto lo = f.profileOf(
        *nf, tp.withAttribute(traffic::Attribute::Mtbr, 100.0));
    auto hi = f.profileOf(
        *nf, tp.withAttribute(traffic::Attribute::Mtbr, 1000.0));
    EXPECT_GT(f.bed.runSolo(lo).truthThroughput,
              1.3 * f.bed.runSolo(hi).truthThroughput);
}

TEST(Testbed, PensandoRunsFirewall)
{
    Fixture f;
    Testbed pen(hw::pensando(), Fixture::noiseless());
    auto nf = nfs::makeFirewall(f.dev);
    auto m = pen.runSolo(f.profileOf(*nf));
    EXPECT_GT(m.truthThroughput, 50e3);
}

} // namespace
} // namespace tomur::sim
