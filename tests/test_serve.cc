/**
 * @file
 * Serving-daemon tests: the hardened HTTP parser (including seeded
 * byte-soup fuzz, truncation at every offset, and pipelined garbage),
 * the deterministic server core's shedding / deadline / drain
 * machinery, chaos runs through the fault-injecting transports, the
 * versioned model registry's atomic hot-swap, and the real
 * ModelService endpoints. The ParallelServe suite hammers the
 * registry from concurrent readers and swappers and is picked up by
 * the TSan target derivation in tools/run_sanitized_tests.sh.
 *
 * Everything here drives the core through MemoryTransports: no
 * sockets, no wall-clock dependence (deadline tests use granule
 * budgets), every chaos scenario seeded and reproducible.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "common/deadline.hh"
#include "common/rng.hh"
#include "common/sampler.hh"
#include "common/slo.hh"
#include "common/strutil.hh"
#include "common/telemetry.hh"
#include "common/threadpool.hh"
#include "common/trace.hh"
#include "serve/observe.hh"
#include "nfs/registry.hh"
#include "regex/ruleset.hh"
#include "serve/registry.hh"
#include "serve/server.hh"
#include "serve/service.hh"
#include "serve/transport.hh"
#include "sim/faults.hh"
#include "tomur/profiler.hh"

namespace tomur {
namespace {

namespace fw = framework;
using namespace std::string_literals;
using serve::HttpRequest;
using serve::HttpRequestParser;
using serve::HttpResponse;
using serve::MemoryListener;
using serve::MemoryTransport;
using serve::ParserLimits;
using serve::ServeOptions;
using serve::Server;
using serve::ServiceReply;
using serve::SharedTransport;
using serve::TransportFaults;

// ---------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------

/** Scan one complete response off `rx`; 0 when incomplete. */
int
takeResponse(std::string &rx, std::string *body_out = nullptr)
{
    std::size_t hdr_end = rx.find("\r\n\r\n");
    if (hdr_end == std::string::npos)
        return 0;
    std::size_t body_len = 0;
    std::size_t cl = rx.find("Content-Length:");
    if (cl != std::string::npos && cl < hdr_end)
        body_len = std::strtoul(rx.c_str() + cl + 15, nullptr, 10);
    std::size_t total = hdr_end + 4 + body_len;
    if (rx.size() < total)
        return 0;
    int status = 0;
    std::size_t sp = rx.find(' ');
    if (sp != std::string::npos && sp < hdr_end)
        status = std::atoi(rx.c_str() + sp + 1);
    if (body_out != nullptr)
        *body_out = rx.substr(hdr_end + 4, body_len);
    rx.erase(0, total);
    return status;
}

/** Every byte the server wrote must be a well-formed response
 *  stream: parseable one response after another, nothing left over
 *  but a possibly-incomplete tail. Returns the statuses seen. */
std::vector<int>
drainResponses(std::string &rx)
{
    std::vector<int> statuses;
    while (int s = takeResponse(rx))
        statuses.push_back(s);
    return statuses;
}

/** takeResponse plus whether the header block carried Retry-After. */
int
takeResponseRetryAfter(std::string &rx, bool *retry_after)
{
    std::size_t hdr_end = rx.find("\r\n\r\n");
    if (hdr_end == std::string::npos)
        return 0;
    std::size_t ra = rx.find("Retry-After:");
    if (retry_after != nullptr)
        *retry_after = ra != std::string::npos && ra < hdr_end;
    return takeResponse(rx);
}

/** Service stub with a pluggable handler. */
struct StubService : serve::Service
{
    std::function<ServiceReply(const HttpRequest &)> fn;
    bool drainSignalled = false;

    StubService()
    {
        fn = [](const HttpRequest &req) {
            ServiceReply r;
            r.body = "{\"echo\":\"" + req.target + "\"}";
            return r;
        };
    }

    ServiceReply handle(const HttpRequest &req) override
    {
        return fn(req);
    }
    void onDrain() override { drainSignalled = true; }
};

std::string
simpleGet(const std::string &target)
{
    return "GET " + target + " HTTP/1.1\r\n\r\n";
}

std::string
simplePost(const std::string &target, const std::string &body)
{
    return strf("POST %s HTTP/1.1\r\nContent-Length: %zu\r\n\r\n%s",
                target.c_str(), body.size(), body.c_str());
}

/** Step until `pred` holds or `cap` steps elapse. */
template <typename Pred>
void
stepUntil(Server &server, Pred pred, int cap = 200)
{
    for (int i = 0; i < cap && !pred(); ++i)
        server.step();
}

// ---------------------------------------------------------------
// Parser: correct streams
// ---------------------------------------------------------------

TEST(HttpParser, ParsesSimpleGet)
{
    HttpRequestParser p;
    std::string req = "GET /healthz?html=1 HTTP/1.1\r\n"
                      "Host: x\r\n\r\n";
    ASSERT_TRUE(p.feed(req.data(), req.size()).isOk());
    ASSERT_TRUE(p.hasRequest());
    HttpRequest r = p.takeRequest();
    EXPECT_EQ(r.method, "GET");
    EXPECT_EQ(r.path(), "/healthz");
    EXPECT_EQ(r.queryParam("html"), "1");
    EXPECT_EQ(r.header("host"), "x");
    EXPECT_TRUE(r.keepAlive);
    EXPECT_FALSE(p.midRequest());
}

TEST(HttpParser, ParsesPostBodyExactly)
{
    HttpRequestParser p;
    std::string req = simplePost("/predict", "{\"flows\":1}");
    ASSERT_TRUE(p.feed(req.data(), req.size()).isOk());
    ASSERT_TRUE(p.hasRequest());
    EXPECT_EQ(p.takeRequest().body, "{\"flows\":1}");
}

TEST(HttpParser, ByteAtATimeFeedIsEquivalent)
{
    std::string req = simplePost("/predict", "{\"flows\":42}") +
                      simpleGet("/metrics");
    HttpRequestParser p;
    for (char c : req)
        ASSERT_TRUE(p.feed(&c, 1).isOk());
    ASSERT_TRUE(p.hasRequest());
    EXPECT_EQ(p.takeRequest().body, "{\"flows\":42}");
    ASSERT_TRUE(p.hasRequest());
    EXPECT_EQ(p.takeRequest().target, "/metrics");
}

TEST(HttpParser, TruncationAtEveryOffsetThenResumption)
{
    // A valid request split at every possible byte boundary must
    // parse identically; the truncated prefix alone must never be an
    // error (only incomplete).
    std::string req = "POST /predict HTTP/1.1\r\n"
                      "Content-Length: 11\r\n"
                      "Connection: keep-alive\r\n\r\n"
                      "{\"flows\":1}";
    for (std::size_t cut = 0; cut <= req.size(); ++cut) {
        HttpRequestParser p;
        ASSERT_TRUE(p.feed(req.data(), cut).isOk())
            << "cut at " << cut;
        EXPECT_FALSE(p.failed()) << "cut at " << cut;
        EXPECT_EQ(p.hasRequest(), cut == req.size());
        ASSERT_TRUE(
            p.feed(req.data() + cut, req.size() - cut).isOk())
            << "resume at " << cut;
        ASSERT_TRUE(p.hasRequest()) << "resume at " << cut;
        EXPECT_EQ(p.takeRequest().body, "{\"flows\":1}");
    }
}

TEST(HttpParser, Http10DefaultsToClose)
{
    HttpRequestParser p;
    std::string req = "GET / HTTP/1.0\r\n\r\n";
    ASSERT_TRUE(p.feed(req.data(), req.size()).isOk());
    ASSERT_TRUE(p.hasRequest());
    EXPECT_FALSE(p.takeRequest().keepAlive);
}

TEST(HttpParser, ConnectionCloseHonoured)
{
    HttpRequestParser p;
    std::string req = "GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
    ASSERT_TRUE(p.feed(req.data(), req.size()).isOk());
    ASSERT_TRUE(p.hasRequest());
    EXPECT_FALSE(p.takeRequest().keepAlive);
}

// ---------------------------------------------------------------
// Parser: hostile streams
// ---------------------------------------------------------------

struct Poisoning
{
    const char *stream;
    int http;
};

TEST(HttpParserRejects, MalformedStreamsPoisonWithRightStatus)
{
    const Poisoning cases[] = {
        {"NOT-A-REQUEST\r\n\r\n", 400},
        {"GET\r\n\r\n", 400},
        {"GET / HTTP/2.0\r\n\r\n", 505},
        {"GET / FTP/1.1\r\n\r\n", 505},
        {"POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n", 400},
        {"POST / HTTP/1.1\r\nContent-Length: 12x\r\n\r\n", 400},
        {"POST / HTTP/1.1\r\nContent-Length: 1\r\n"
         "Content-Length: 2\r\n\r\n",
         400},
        {"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
         501},
        {"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n", 400},
    };
    for (const auto &c : cases) {
        HttpRequestParser p;
        Status st = p.feed(c.stream, std::strlen(c.stream));
        EXPECT_FALSE(st.isOk()) << c.stream;
        EXPECT_TRUE(p.failed()) << c.stream;
        EXPECT_EQ(p.httpErrorStatus(), c.http) << c.stream;
        EXPECT_FALSE(p.hasRequest()) << c.stream;
        // Poison is permanent: further bytes change nothing.
        EXPECT_FALSE(p.feed("GET / HTTP/1.1\r\n\r\n", 18).isOk());
        EXPECT_FALSE(p.hasRequest());
    }
}

TEST(HttpParserRejects, OversizedDimensionsAreCappedBeforeBuffering)
{
    ParserLimits tight;
    tight.maxRequestLineBytes = 64;
    tight.maxHeaderBytes = 128;
    tight.maxHeaders = 4;
    tight.maxBodyBytes = 32;

    { // request line
        HttpRequestParser p(tight);
        std::string line = "GET /" + std::string(200, 'a');
        EXPECT_FALSE(p.feed(line.data(), line.size()).isOk());
        EXPECT_EQ(p.httpErrorStatus(), 431);
    }
    { // total header bytes (no terminating newline needed)
        HttpRequestParser p(tight);
        std::string req =
            "GET / HTTP/1.1\r\nX: " + std::string(200, 'b');
        EXPECT_FALSE(p.feed(req.data(), req.size()).isOk());
        EXPECT_EQ(p.httpErrorStatus(), 431);
    }
    { // header count
        HttpRequestParser p(tight);
        std::string req = "GET / HTTP/1.1\r\n";
        for (int i = 0; i < 6; ++i)
            req += strf("H%d: v\r\n", i);
        req += "\r\n";
        EXPECT_FALSE(p.feed(req.data(), req.size()).isOk());
        EXPECT_EQ(p.httpErrorStatus(), 431);
    }
    { // declared body size: rejected before any body byte arrives
        HttpRequestParser p(tight);
        std::string req =
            "POST / HTTP/1.1\r\nContent-Length: 1000000\r\n\r\n";
        EXPECT_FALSE(p.feed(req.data(), req.size()).isOk());
        EXPECT_EQ(p.httpErrorStatus(), 413);
    }
}

TEST(HttpParserFuzz, ByteSoupNeverCrashes)
{
    // Seeded and deterministic: the same hostile streams every run.
    // The property is "no crash, no hang, and a poisoned parser
    // reports one of the documented HTTP statuses" — not that any
    // particular soup parses.
    Rng rng(20260808);
    const std::string alphabet =
        "GET POST/predict HTTP/1.1\r\n\t:0123456789"
        "Content-Length Transfer-Encoding{}\"\\\x01\x7f\x00"s;
    for (int iter = 0; iter < 500; ++iter) {
        HttpRequestParser p;
        std::size_t len =
            1 + rng.uniformInt(std::uint64_t(300));
        std::string soup;
        for (std::size_t i = 0; i < len; ++i)
            soup.push_back(
                alphabet[rng.uniformInt(alphabet.size())]);
        // Feed in random-sized chunks to hit every resume path.
        std::size_t off = 0;
        while (off < soup.size()) {
            std::size_t chunk = 1 + rng.uniformInt(std::uint64_t(7));
            chunk = std::min(chunk, soup.size() - off);
            (void)p.feed(soup.data() + off, chunk);
            off += chunk;
        }
        while (p.hasRequest())
            (void)p.takeRequest();
        if (p.failed()) {
            int s = p.httpErrorStatus();
            EXPECT_TRUE(s == 400 || s == 413 || s == 431 ||
                        s == 501 || s == 505)
                << "status " << s << " for: " << soup;
        }
    }
}

TEST(HttpParserFuzz, PipelinedGarbageAfterValidRequests)
{
    // Valid requests followed by garbage: everything before the
    // poison parses; the poison is reported; nothing after it leaks.
    Rng rng(4242);
    for (int iter = 0; iter < 200; ++iter) {
        std::size_t valid =
            1 + rng.uniformInt(std::uint64_t(3));
        std::string stream;
        for (std::size_t i = 0; i < valid; ++i)
            stream += simplePost("/predict", "{\"flows\":7}");
        std::string garbage = "\x01\x02garbage without structure";
        stream += garbage.substr(
            0, 1 + rng.uniformInt(garbage.size() - 1));

        HttpRequestParser p;
        Status st = p.feed(stream.data(), stream.size());
        std::size_t got = 0;
        while (p.hasRequest()) {
            EXPECT_EQ(p.takeRequest().body, "{\"flows\":7}");
            ++got;
        }
        EXPECT_EQ(got, valid);
        // The garbage tail either poisoned the parser already or is
        // an incomplete prefix; never a parsed request.
        if (!st.isOk()) {
            EXPECT_EQ(p.httpErrorStatus(), 400);
        }
    }
}

// ---------------------------------------------------------------
// Server core: shedding, deadlines, drain
// ---------------------------------------------------------------

struct CoreHarness
{
    explicit CoreHarness(ServeOptions opts = {},
                         StubService *svc = nullptr)
        : service(svc != nullptr ? *svc : ownService),
          server(opts, service)
    {
    }

    /** Connect a client pipe under `id`. */
    std::shared_ptr<MemoryTransport>
    connect(const std::string &id)
    {
        auto pipe = std::make_shared<MemoryTransport>();
        server.addConnection(std::make_unique<SharedTransport>(pipe),
                             id);
        return pipe;
    }

    StubService ownService;
    StubService &service;
    Server server;
};

TEST(ServerCore, EchoesThroughMemoryTransport)
{
    CoreHarness h;
    auto pipe = h.connect("c1");
    pipe->clientWrite(simpleGet("/ping"));
    stepUntil(h.server, [&] { return pipe->clientPending() > 0; });
    std::string rx = pipe->clientRead(), body;
    EXPECT_EQ(takeResponse(rx, &body), 200);
    EXPECT_EQ(body, "{\"echo\":\"/ping\"}");
    EXPECT_EQ(h.server.stats().requestsHandled, 1u);
}

TEST(ServerCore, QueueOverflowSheds503ButKeepsConnection)
{
    ServeOptions opts;
    opts.maxQueueDepth = 2;
    opts.maxRequestsPerStep = 1;
    CoreHarness h(opts);
    auto pipe = h.connect("c1");
    // Four pipelined requests hit an empty queue of depth 2: two are
    // admitted, two shed — and the shed answers arrive first only if
    // ordering broke, so check the full sequence.
    std::string burst;
    for (int i = 0; i < 4; ++i)
        burst += simpleGet(strf("/r%d", i));
    pipe->clientWrite(burst);
    stepUntil(h.server, [&] {
        return h.server.stats().requestsHandled >= 2;
    });
    std::string rx = pipe->clientRead();
    auto statuses = drainResponses(rx);
    ASSERT_EQ(statuses.size(), 4u);
    EXPECT_EQ(h.server.stats().shed, 2u);
    EXPECT_EQ(std::count(statuses.begin(), statuses.end(), 503), 2);
    EXPECT_EQ(std::count(statuses.begin(), statuses.end(), 200), 2);
    EXPECT_FALSE(pipe->closed()); // keep-alive survives shedding
}

TEST(ServerCore, TokenBucketThrottles429AndRecoversOnRefill)
{
    ServeOptions opts;
    opts.bucketCapacity = 2.0;
    CoreHarness h(opts);
    auto pipe = h.connect("tenant-a");
    std::string burst;
    for (int i = 0; i < 4; ++i)
        burst += simpleGet("/r");
    pipe->clientWrite(burst);
    stepUntil(h.server, [&] {
        return h.server.stats().requestsHandled >= 2;
    });
    std::string rx = pipe->clientRead();
    auto statuses = drainResponses(rx);
    ASSERT_EQ(statuses.size(), 4u);
    EXPECT_EQ(std::count(statuses.begin(), statuses.end(), 429), 2);
    EXPECT_EQ(h.server.stats().throttled, 2u);
    EXPECT_TRUE(rx.empty());

    // Refill restores admission for the same client.
    h.server.tickTokens(2.0);
    pipe->clientWrite(simpleGet("/again"));
    stepUntil(h.server, [&] {
        return h.server.stats().requestsHandled >= 3;
    });
    rx = pipe->clientRead();
    EXPECT_EQ(takeResponse(rx), 200);
}

TEST(ServerCore, PerClientBucketsAreIndependent)
{
    ServeOptions opts;
    opts.bucketCapacity = 1.0;
    CoreHarness h(opts);
    auto a = h.connect("tenant-a");
    auto b = h.connect("tenant-b");
    a->clientWrite(simpleGet("/a1") + simpleGet("/a2"));
    b->clientWrite(simpleGet("/b1"));
    stepUntil(h.server, [&] {
        return h.server.stats().requestsHandled >= 2;
    });
    std::string rxa = a->clientRead(), rxb = b->clientRead();
    auto sa = drainResponses(rxa);
    ASSERT_EQ(sa.size(), 2u);
    // Refusals are fast-fail: the 429 for the over-budget second
    // request goes out at admission time, before the admitted first
    // request finishes — so it arrives first on the wire.
    EXPECT_EQ(sa[0], 429); // tenant-a over budget
    EXPECT_EQ(sa[1], 200);
    EXPECT_EQ(takeResponse(rxb), 200); // tenant-b unaffected
}

TEST(ServerCore, ConnectionCapSheds503AndCloses)
{
    ServeOptions opts;
    opts.maxConnections = 1;
    CoreHarness h(opts);
    auto keep = h.connect("c1");
    auto shed = h.connect("c2");
    std::string rx = shed->clientRead();
    EXPECT_EQ(takeResponse(rx), 503);
    EXPECT_TRUE(shed->closed());
    EXPECT_FALSE(keep->closed());
    EXPECT_EQ(h.server.stats().acceptShed, 1u);
}

TEST(ServerCore, DeadlineTripMaps504AndCountsMiss)
{
    ServeOptions opts;
    opts.requestDeadlineGranules = 2; // deterministic budget
    StubService slow;
    slow.fn = [](const HttpRequest &) -> ServiceReply {
        for (int i = 0; i < 8; ++i)
            checkDeadline("test.slow-handler");
        return {};
    };
    CoreHarness h(opts, &slow);
    auto pipe = h.connect("c1");
    pipe->clientWrite(simpleGet("/slow"));
    stepUntil(h.server, [&] { return pipe->clientPending() > 0; });
    std::string rx = pipe->clientRead();
    EXPECT_EQ(takeResponse(rx), 504);
    EXPECT_EQ(h.server.stats().deadlineMisses, 1u);
    EXPECT_EQ(h.server.stats().requestsHandled, 0u);

    // The daemon moves on: the next (fast) request still succeeds.
    slow.fn = [](const HttpRequest &) { return ServiceReply{}; };
    pipe->clientWrite(simpleGet("/fast"));
    stepUntil(h.server, [&] { return pipe->clientPending() > 0; });
    rx = pipe->clientRead();
    EXPECT_EQ(takeResponse(rx), 200);
}

TEST(ServerCore, HandlerExceptionMaps500AndServerSurvives)
{
    StubService bad;
    bad.fn = [](const HttpRequest &) -> ServiceReply {
        throw std::runtime_error("handler bug");
    };
    CoreHarness h({}, &bad);
    auto pipe = h.connect("c1");
    pipe->clientWrite(simpleGet("/boom"));
    stepUntil(h.server, [&] { return pipe->clientPending() > 0; });
    std::string rx = pipe->clientRead();
    EXPECT_EQ(takeResponse(rx), 500);
    EXPECT_EQ(h.server.stats().internalErrors, 1u);

    bad.fn = [](const HttpRequest &) { return ServiceReply{}; };
    pipe->clientWrite(simpleGet("/ok"));
    stepUntil(h.server, [&] { return pipe->clientPending() > 0; });
    rx = pipe->clientRead();
    EXPECT_EQ(takeResponse(rx), 200);
}

TEST(ServerCore, ParseErrorAnswers4xxAfterEarlierResponses)
{
    CoreHarness h;
    auto pipe = h.connect("c1");
    // A valid request pipelined ahead of garbage: the 200 must come
    // out before the 400, then the connection closes.
    pipe->clientWrite(simpleGet("/ok") + "\x01garbage\r\n\r\n");
    stepUntil(h.server, [&] { return pipe->closed(); });
    std::string rx = pipe->clientRead();
    auto statuses = drainResponses(rx);
    ASSERT_EQ(statuses.size(), 2u);
    EXPECT_EQ(statuses[0], 200);
    EXPECT_EQ(statuses[1], 400);
    EXPECT_TRUE(pipe->closed());
    EXPECT_EQ(h.server.stats().parseErrors, 1u);
}

TEST(ServerCore, GracefulDrainFinishesAdmittedShedsNew)
{
    ServeOptions opts;
    opts.maxRequestsPerStep = 1;
    CoreHarness h(opts);
    auto pipe = h.connect("c1");
    pipe->clientWrite(simpleGet("/admitted"));
    // Read+admit without handling: one step admits and handles one —
    // so preload two, drain, then watch both finish and a third shed.
    pipe->clientWrite(simpleGet("/admitted2"));
    h.server.step(); // admits both, handles the first
    h.server.beginDrain();
    EXPECT_TRUE(h.service.drainSignalled);
    EXPECT_FALSE(h.server.drained()); // one admitted request pending
    pipe->clientWrite(simpleGet("/late"));
    stepUntil(h.server, [&] { return h.server.drained(); });
    EXPECT_TRUE(h.server.drained());
    std::string rx = pipe->clientRead();
    auto statuses = drainResponses(rx);
    ASSERT_EQ(statuses.size(), 3u);
    EXPECT_EQ(statuses[0], 200); // handled before drain began
    // Admitted work finished (a second 200) and the post-drain
    // request was shed (503, fast-fail so it may precede the 200).
    EXPECT_EQ(std::count(statuses.begin(), statuses.end(), 200), 2);
    EXPECT_EQ(std::count(statuses.begin(), statuses.end(), 503), 1);
    EXPECT_EQ(h.server.stats().requestsHandled, 2u);
}

TEST(ServerCore, DrainingServerRefusesNewConnections)
{
    CoreHarness h;
    h.server.beginDrain();
    auto pipe = h.connect("late");
    std::string rx = pipe->clientRead();
    EXPECT_EQ(takeResponse(rx), 503);
    EXPECT_TRUE(pipe->closed());
    EXPECT_TRUE(h.server.drained());
}

TEST(ServerCore, EveryRefusalPathCarriesRetryAfter)
{
    // Refusals are back-pressure signals, not errors: 429s and all
    // three 503 shed paths (queue overflow, connection cap, drain)
    // must tell the client when to come back.

    // Queue overflow: two 503s carry Retry-After, 200s don't.
    {
        ServeOptions opts;
        opts.maxQueueDepth = 2;
        opts.maxRequestsPerStep = 1;
        CoreHarness h(opts);
        auto pipe = h.connect("c1");
        std::string burst;
        for (int i = 0; i < 4; ++i)
            burst += simpleGet(strf("/r%d", i));
        pipe->clientWrite(burst);
        stepUntil(h.server, [&] {
            return h.server.stats().requestsHandled >= 2;
        });
        std::string rx = pipe->clientRead();
        int refusals = 0;
        bool ra = false;
        while (int s = takeResponseRetryAfter(rx, &ra)) {
            if (s == 503) {
                ++refusals;
                EXPECT_TRUE(ra) << "queue-shed 503 lacks Retry-After";
            } else {
                EXPECT_FALSE(ra) << "Retry-After on a " << s;
            }
        }
        EXPECT_EQ(refusals, 2);
    }

    // Token-bucket throttle: 429s carry Retry-After.
    {
        ServeOptions opts;
        opts.bucketCapacity = 2.0;
        CoreHarness h(opts);
        auto pipe = h.connect("tenant-a");
        std::string burst;
        for (int i = 0; i < 4; ++i)
            burst += simpleGet("/r");
        pipe->clientWrite(burst);
        stepUntil(h.server, [&] {
            return h.server.stats().requestsHandled >= 2;
        });
        std::string rx = pipe->clientRead();
        int refusals = 0;
        bool ra = false;
        while (int s = takeResponseRetryAfter(rx, &ra)) {
            if (s == 429) {
                ++refusals;
                EXPECT_TRUE(ra) << "429 lacks Retry-After";
            }
        }
        EXPECT_EQ(refusals, 2);
    }

    // Connection cap: the shed connection's 503 carries Retry-After.
    {
        ServeOptions opts;
        opts.maxConnections = 1;
        CoreHarness h(opts);
        auto keep = h.connect("c1");
        auto shed = h.connect("c2");
        (void)keep;
        std::string rx = shed->clientRead();
        bool ra = false;
        EXPECT_EQ(takeResponseRetryAfter(rx, &ra), 503);
        EXPECT_TRUE(ra) << "accept-shed 503 lacks Retry-After";
    }

    // Drain: late connections get a 503 with Retry-After.
    {
        CoreHarness h;
        h.server.beginDrain();
        auto pipe = h.connect("late");
        std::string rx = pipe->clientRead();
        bool ra = false;
        EXPECT_EQ(takeResponseRetryAfter(rx, &ra), 503);
        EXPECT_TRUE(ra) << "drain 503 lacks Retry-After";
    }
}

TEST(ServerCore, WriteBufferOverflowDropsNonReadingClient)
{
    ServeOptions opts;
    opts.maxWriteBufferBytes = 64;
    StubService big;
    big.fn = [](const HttpRequest &) {
        ServiceReply r;
        r.body = std::string(4096, 'x');
        return r;
    };
    CoreHarness h(opts, &big);
    // Reads flow but every write would block (a client that sends
    // and never reads): the response can never flush, the buffer
    // crosses the cap, and the connection is dropped instead of
    // growing without bound.
    struct WriteBlocked : SharedTransport
    {
        using SharedTransport::SharedTransport;
        serve::IoResult write(const char *, std::size_t) override
        {
            serve::IoResult r;
            r.wouldBlock = true;
            return r;
        }
    };
    auto inner = std::make_shared<MemoryTransport>();
    h.server.addConnection(std::make_unique<WriteBlocked>(inner),
                           "firehose");
    inner->clientWrite(simpleGet("/big"));
    stepUntil(h.server, [&] {
        return h.server.openConnections() == 0;
    });
    EXPECT_EQ(h.server.openConnections(), 0u);
    EXPECT_EQ(h.server.stats().connectionsClosed, 1u);
}

// ---------------------------------------------------------------
// Chaos: fault-injecting transports and listeners
// ---------------------------------------------------------------

TEST(ServeChaos, ShortReadsStillProduceCorrectResponses)
{
    CoreHarness h;
    auto inner = std::make_shared<MemoryTransport>();
    TransportFaults faults;
    faults.shortReadRate = 1.0; // every read delivers one byte
    faults.seed = 11;
    auto chaos = std::make_unique<serve::FaultInjectingTransport>(
        std::make_unique<SharedTransport>(inner), faults);
    auto *chaosPtr = chaos.get();
    h.server.addConnection(std::move(chaos), "slowpoke");
    inner->clientWrite(simplePost("/predict", "{\"flows\":5}"));
    stepUntil(h.server, [&] { return inner->clientPending() > 0; },
              2000);
    std::string rx = inner->clientRead(), body;
    EXPECT_EQ(takeResponse(rx, &body), 200);
    EXPECT_EQ(body, "{\"echo\":\"/predict\"}");
    EXPECT_GT(chaosPtr->faultsInjected(), 0u);
}

TEST(ServeChaos, EagainStormsOnlyDelayService)
{
    CoreHarness h;
    auto inner = std::make_shared<MemoryTransport>();
    TransportFaults faults;
    faults.eagainRate = 0.8;
    faults.shortWriteRate = 0.5;
    faults.seed = 13;
    h.server.addConnection(
        std::make_unique<serve::FaultInjectingTransport>(
            std::make_unique<SharedTransport>(inner), faults),
        "stormy");
    for (int i = 0; i < 3; ++i)
        inner->clientWrite(simpleGet(strf("/r%d", i)));
    stepUntil(h.server,
              [&] { return h.server.stats().requestsHandled >= 3; },
              2000);
    stepUntil(h.server, [&] { return inner->clientPending() > 0; },
              2000);
    std::string rx = inner->clientRead();
    // Flush progress is fault-gated; keep stepping until all three
    // responses arrived.
    for (int i = 0; i < 2000 && drainResponses(rx).size() < 3; ++i) {
        h.server.step();
        rx += inner->clientRead();
    }
    EXPECT_EQ(h.server.stats().requestsHandled, 3u);
}

TEST(ServeChaos, MidRequestDisconnectsNeverCrashTheServer)
{
    // Seeded chaos soup: many clients, some sending valid requests,
    // some garbage, all through transports that tear connections and
    // starve reads. Property: the server survives, and every byte it
    // emitted frames as well-formed HTTP.
    Rng rng(987);
    CoreHarness h;
    struct Chaotic
    {
        std::shared_ptr<MemoryTransport> pipe;
    };
    std::vector<Chaotic> clients;
    for (int i = 0; i < 24; ++i) {
        Chaotic c;
        c.pipe = std::make_shared<MemoryTransport>();
        TransportFaults faults;
        faults.shortReadRate = 0.3;
        faults.eagainRate = 0.3;
        faults.disconnectRate = 0.05;
        faults.seed = deriveSeed(555, static_cast<std::size_t>(i));
        h.server.addConnection(
            std::make_unique<serve::FaultInjectingTransport>(
                std::make_unique<SharedTransport>(c.pipe), faults),
            strf("chaos-%d", i));
        if (rng.uniform() < 0.7) {
            c.pipe->clientWrite(
                simplePost("/predict", "{\"flows\":9}"));
        } else {
            c.pipe->clientWrite("\x7f\x01 torn garbage \r\n\r\n");
        }
        if (rng.uniform() < 0.3)
            c.pipe->clientShutdown(); // half-close mid-stream
        clients.push_back(std::move(c));
    }
    for (int s = 0; s < 500; ++s)
        h.server.step();
    // No crash is most of the property; the rest is well-formedness.
    for (auto &c : clients) {
        std::string rx = c.pipe->clientRead();
        std::string copy = rx;
        auto statuses = drainResponses(copy);
        for (int s : statuses) {
            EXPECT_TRUE(s == 200 || s == 400 || s == 503)
                << "unexpected status " << s;
        }
        // Leftover bytes may only be an incomplete tail, and only if
        // the connection died mid-flush.
        if (!copy.empty()) {
            EXPECT_EQ(copy.find("HTTP/1.1 "), 0u);
        }
    }
}

TEST(ServeChaos, TornRequestIsReapedWithoutAResponse)
{
    CoreHarness h;
    auto pipe = h.connect("torn");
    std::string full = simplePost("/predict", "{\"flows\":3}");
    pipe->clientWrite(full.substr(0, full.size() / 2));
    pipe->clientShutdown();
    stepUntil(h.server, [&] {
        return h.server.openConnections() == 0;
    });
    EXPECT_EQ(h.server.openConnections(), 0u);
    EXPECT_EQ(pipe->clientPending(), 0u); // no half response
    EXPECT_EQ(h.server.stats().requestsHandled, 0u);
}

TEST(ServeChaos, AcceptFailuresAreCountedNotFatal)
{
    StubService svc;
    Server server({}, svc);
    MemoryListener inner;
    serve::FaultInjectingListener listener(inner, 0.5, 99);
    server.setListener(&listener);
    std::vector<std::shared_ptr<MemoryTransport>> pipes;
    for (int i = 0; i < 8; ++i) {
        auto pipe = std::make_shared<MemoryTransport>();
        inner.enqueue(std::make_unique<SharedTransport>(pipe),
                      strf("c%d", i));
        pipes.push_back(pipe);
    }
    inner.enqueueFailure(Status::ioError("EMFILE"));
    stepUntil(server, [&] { return server.stats().accepted == 8; },
              500);
    EXPECT_EQ(server.stats().accepted, 8u);
    EXPECT_GE(server.stats().acceptFailures, 1u);
    // Accepted connections actually serve.
    pipes[0]->clientWrite(simpleGet("/after-chaos"));
    stepUntil(server, [&] { return pipes[0]->clientPending() > 0; });
    std::string rx = pipes[0]->clientRead();
    EXPECT_EQ(takeResponse(rx), 200);
    server.setListener(nullptr);
}

// ---------------------------------------------------------------
// Model registry: versioning + atomic hot-swap
// ---------------------------------------------------------------

/** Shared trained model + reference levels (built once: training is
 *  the expensive part of this binary). */
struct ModelWorld
{
    ModelWorld()
        : rules(regex::defaultRuleSet()), bed(hw::blueField2()),
          faulty(bed, {})
    {
        dev.regex = std::make_shared<fw::RegexDevice>(rules);
        dev.compression = std::make_shared<fw::CompressionDevice>();
        dev.crypto = std::make_shared<fw::CryptoDevice>();
        lib = std::make_unique<core::BenchLibrary>(faulty, dev,
                                                   rules);
        trainer = std::make_unique<core::TomurTrainer>(*lib);
        nf = nfs::makeByName("FlowMonitor", dev);
        core::TrainOptions topts;
        topts.adaptive.quota = 60;
        model = trainer->train(*nf,
                               traffic::TrafficProfile::defaults(),
                               topts);

        const core::BenchLibrary::MemBenchEntry *mem =
            &lib->memBenches().front();
        for (const auto &e : lib->memBenches()) {
            if (e.config.wssBytes >= 12.0 * 1024 * 1024 &&
                e.level.counters.cacheAccessRate() >
                    mem->level.counters.cacheAccessRate())
                mem = &e;
        }
        levels.push_back(mem->level);
        levels.push_back(
            lib->accelBench(hw::AccelKind::Regex, 150e3, 800.0)
                .level);

        modelFile = testing::TempDir() + "tomur_serve_model.bin";
        std::ofstream out(modelFile, std::ios::binary);
        saveStatus = model.save(out);
    }

    regex::RuleSet rules;
    fw::DeviceSet dev;
    sim::Testbed bed;
    sim::FaultInjectingTestbed faulty;
    std::unique_ptr<core::BenchLibrary> lib;
    std::unique_ptr<core::TomurTrainer> trainer;
    std::unique_ptr<fw::NetworkFunction> nf;
    core::TomurModel model;
    std::vector<core::ContentionLevel> levels;
    std::string modelFile;
    Status saveStatus = Status::ok();
};

ModelWorld &
world()
{
    static ModelWorld *w = new ModelWorld();
    return *w;
}

TEST(ModelRegistry, InstallBumpsVersionAndPublishesSnapshot)
{
    serve::ModelRegistry reg;
    EXPECT_EQ(reg.version(), 0u);
    EXPECT_FALSE(reg.current());
    reg.install(world().model, "trained");
    EXPECT_EQ(reg.version(), 1u);
    auto snap = reg.current();
    ASSERT_TRUE(snap);
    EXPECT_EQ(snap.source, "trained");
}

TEST(ModelRegistry, HotSwapFromFilePublishesNewVersion)
{
    ASSERT_TRUE(world().saveStatus.isOk())
        << world().saveStatus.toString();
    serve::ModelRegistry reg;
    reg.install(world().model, "trained");
    auto swapped = reg.swapFromFile(world().modelFile);
    ASSERT_TRUE(swapped.isOk()) << swapped.status().toString();
    EXPECT_EQ(swapped.value(), 2u);
    EXPECT_EQ(reg.current().source, world().modelFile);
    EXPECT_EQ(reg.swapsSucceeded(), 1u);
}

TEST(ModelRegistry, FailedSwapKeepsPreviousVersionServing)
{
    serve::ModelRegistry reg;
    reg.install(world().model, "trained");
    auto before = reg.current();

    // Missing file.
    auto missing = reg.swapFromFile("/nonexistent/model.bin");
    EXPECT_FALSE(missing.isOk());

    // Corrupt file: valid path, garbage bytes.
    std::string corrupt =
        testing::TempDir() + "tomur_serve_corrupt.bin";
    {
        std::ofstream out(corrupt, std::ios::binary);
        out << "not a model at all";
    }
    auto bad = reg.swapFromFile(corrupt);
    EXPECT_FALSE(bad.isOk());

    EXPECT_EQ(reg.version(), 1u);
    EXPECT_EQ(reg.swapsFailed(), 2u);
    auto after = reg.current();
    EXPECT_EQ(before.model.get(), after.model.get());

    // The retained model still predicts.
    auto b = after.model->predictDetailed(
        world().levels, traffic::TrafficProfile::defaults());
    EXPECT_GT(b.predicted, 0.0);
}

TEST(ModelRegistry, CorruptedModelCorpusNeverDisplacesServing)
{
    ASSERT_TRUE(world().saveStatus.isOk())
        << world().saveStatus.toString();
    std::string good;
    {
        std::ifstream in(world().modelFile, std::ios::binary);
        std::stringstream ss;
        ss << in.rdbuf();
        good = ss.str();
    }
    ASSERT_GT(good.size(), 16u);

    // Three ways a model file arrives broken: cut short mid-write,
    // bit-rotted in place, and zero-length after a failed copy.
    struct Corrupt
    {
        const char *name;
        std::string bytes;
    };
    std::string flipped = good;
    flipped[flipped.size() / 2] ^= 0x20;
    std::vector<Corrupt> corpus = {
        {"truncated", good.substr(0, good.size() / 2)},
        {"bitflip", flipped},
        {"empty", ""},
    };

    serve::ModelRegistry reg;
    reg.install(world().model, "trained");
    auto before = reg.current();
    auto &reloadFails =
        metrics().counter("tomur_server_reload_failures_total");

    std::size_t fails = 0;
    for (const auto &c : corpus) {
        std::string path = testing::TempDir() +
                           strf("tomur_serve_corpus_%s.v2", c.name);
        {
            std::ofstream out(path, std::ios::binary);
            out.write(c.bytes.data(),
                      static_cast<std::streamsize>(c.bytes.size()));
        }
        std::uint64_t metricBefore = reloadFails.value();
        auto swapped = reg.swapFromFile(path);
        EXPECT_FALSE(swapped.isOk()) << c.name << " swapped in";
        EXPECT_EQ(reloadFails.value(), metricBefore + 1)
            << c.name << " not counted as a reload failure";
        ++fails;
        EXPECT_EQ(reg.swapsFailed(), fails);
        EXPECT_EQ(reg.version(), 1u) << c.name;
        EXPECT_EQ(reg.current().model.get(), before.model.get())
            << c.name << " displaced the serving snapshot";
    }

    // After the whole corpus, the retained model still predicts.
    auto b = reg.current().model->predictDetailed(
        world().levels, traffic::TrafficProfile::defaults());
    EXPECT_GT(b.predicted, 0.0);

    // And a good file still swaps in afterwards.
    auto ok = reg.swapFromFile(world().modelFile);
    ASSERT_TRUE(ok.isOk()) << ok.status().toString();
    EXPECT_EQ(reg.version(), 2u);
}

TEST(ModelRegistry, SnapshotOutlivesSwap)
{
    serve::ModelRegistry reg;
    reg.install(world().model, "trained");
    auto snap = reg.current(); // a request in flight
    ASSERT_TRUE(reg.swapFromFile(world().modelFile).isOk());
    // The old snapshot keeps working after the swap dropped it.
    auto b = snap.model->predictDetailed(
        world().levels, traffic::TrafficProfile::defaults());
    EXPECT_GT(b.predicted, 0.0);
    EXPECT_NE(snap.model.get(), reg.current().model.get());
}

// ---------------------------------------------------------------
// ModelService endpoints
// ---------------------------------------------------------------

struct ServiceHarness
{
    ServiceHarness()
        : service(registry, world().levels, "FlowMonitor"),
          server({}, service)
    {
        registry.install(world().model, "trained");
        pipe = std::make_shared<MemoryTransport>();
        server.addConnection(std::make_unique<SharedTransport>(pipe),
                             "tester");
    }

    /** Round-trip one request; returns status, stores body. */
    int
    roundTrip(const std::string &request)
    {
        pipe->clientWrite(request);
        std::size_t handledBefore = server.stats().requestsHandled;
        stepUntil(server, [&] { return pipe->clientPending() > 0; });
        (void)handledBefore;
        std::string rx = pipe->clientRead();
        return takeResponse(rx, &body);
    }

    serve::ModelRegistry registry;
    serve::ModelService service;
    Server server;
    std::shared_ptr<MemoryTransport> pipe;
    std::string body;
};

TEST(ModelServiceEndpoints, HealthzReportsVersionAndDrain)
{
    ServiceHarness h;
    EXPECT_EQ(h.roundTrip(simpleGet("/healthz")), 200);
    EXPECT_NE(h.body.find("\"status\":\"ok\""), std::string::npos);
    EXPECT_NE(h.body.find("\"model_version\":1"),
              std::string::npos);
    h.service.setDraining(true);
    EXPECT_EQ(h.roundTrip(simpleGet("/healthz")), 200);
    EXPECT_NE(h.body.find("\"status\":\"draining\""),
              std::string::npos);
}

TEST(ModelServiceEndpoints, PredictReturnsPrediction)
{
    ServiceHarness h;
    EXPECT_EQ(h.roundTrip(simplePost(
                  "/predict",
                  "{\"flows\":20000,\"size\":512,\"mtbr\":400}")),
              200);
    EXPECT_NE(h.body.find("\"predicted_pps\":"), std::string::npos);
    EXPECT_NE(h.body.find("\"dominant\":"), std::string::npos);
}

TEST(ModelServiceEndpoints, PredictValidatesProfile)
{
    ServiceHarness h;
    EXPECT_EQ(h.roundTrip(simplePost("/predict",
                                     "{\"flows\":-5}")),
              400);
    EXPECT_EQ(h.roundTrip(simplePost("/predict",
                                     "{\"flows\":\"many\"}")),
              400);
    EXPECT_EQ(h.roundTrip(simplePost("/predict",
                                     "{\"flows\":nan}")),
              400);
    // A body with no recognised field falls back to the default
    // traffic profile — degraded input degrades gracefully.
    EXPECT_EQ(h.roundTrip(simplePost("/predict", "not json")), 200);
}

TEST(ModelServiceEndpoints, DiagnoseRanksResources)
{
    ServiceHarness h;
    EXPECT_EQ(h.roundTrip(simplePost("/diagnose",
                                     "{\"flows\":20000}")),
              200);
    EXPECT_NE(h.body.find("\"ranked\":["), std::string::npos);
}

TEST(ModelServiceEndpoints, MethodAndPathErrors)
{
    ServiceHarness h;
    EXPECT_EQ(h.roundTrip(simpleGet("/predict")), 405);
    EXPECT_EQ(h.roundTrip(simplePost("/healthz", "{}")), 405);
    EXPECT_EQ(h.roundTrip(simpleGet("/no-such-endpoint")), 404);
}

TEST(ModelServiceEndpoints, MetricsEndpointDumpsRegistry)
{
    ServiceHarness h;
    EXPECT_EQ(h.roundTrip(simpleGet("/metrics")), 200);
    EXPECT_NE(h.body.find("tomur_server_requests_total"),
              std::string::npos);
}

TEST(ModelServiceEndpoints, ReloadHotSwapsAndReportsFailure)
{
    ServiceHarness h;
    EXPECT_EQ(h.roundTrip(simplePost(
                  "/reload",
                  "{\"model\":\"" + world().modelFile + "\"}")),
              200);
    EXPECT_EQ(h.registry.version(), 2u);

    int status = h.roundTrip(simplePost(
        "/reload", "{\"model\":\"/nonexistent/model.bin\"}"));
    EXPECT_GE(status, 400);
    EXPECT_NE(h.body.find("\"retained_version\":2"),
              std::string::npos);
    EXPECT_EQ(h.registry.version(), 2u); // still serving v2
}

TEST(ModelServiceEndpoints, ReloadOfCorruptCorpusKeepsServing)
{
    ASSERT_TRUE(world().saveStatus.isOk())
        << world().saveStatus.toString();
    std::string good;
    {
        std::ifstream in(world().modelFile, std::ios::binary);
        std::stringstream ss;
        ss << in.rdbuf();
        good = ss.str();
    }
    std::string flipped = good;
    flipped[flipped.size() / 2] ^= 0x20;
    std::vector<std::pair<const char *, std::string>> corpus = {
        {"truncated", good.substr(0, good.size() / 2)},
        {"bitflip", flipped},
        {"empty", ""},
    };

    ServiceHarness h;
    auto before = h.registry.current();
    auto &reloadFails =
        metrics().counter("tomur_server_reload_failures_total");

    for (const auto &c : corpus) {
        std::string path = testing::TempDir() +
                           strf("tomur_reload_corpus_%s.v2", c.first);
        {
            std::ofstream out(path, std::ios::binary);
            out.write(c.second.data(),
                      static_cast<std::streamsize>(c.second.size()));
        }
        std::uint64_t metricBefore = reloadFails.value();
        int status = h.roundTrip(
            simplePost("/reload", "{\"model\":\"" + path + "\"}"));
        // A bad file is the client's fault, never a server error.
        EXPECT_GE(status, 400) << c.first;
        EXPECT_LT(status, 500) << c.first;
        EXPECT_NE(h.body.find("\"retained_version\":1"),
                  std::string::npos)
            << c.first << ": " << h.body;
        EXPECT_EQ(reloadFails.value(), metricBefore + 1) << c.first;
        EXPECT_EQ(h.registry.version(), 1u) << c.first;
        EXPECT_EQ(h.registry.current().model.get(),
                  before.model.get())
            << c.first << " displaced the serving snapshot";

        // The retained model answers predictions between failures.
        EXPECT_EQ(h.roundTrip(simplePost(
                      "/predict",
                      "{\"flows\":20000,\"size\":512,\"mtbr\":400}")),
                  200)
            << c.first;
        EXPECT_NE(h.body.find("\"predicted_pps\":"),
                  std::string::npos);
    }
}

// ---------------------------------------------------------------
// Parallel (TSan-covered): concurrent readers vs hot-swaps
// ---------------------------------------------------------------

TEST(ParallelServeRegistry, ConcurrentPredictionsDuringHotSwaps)
{
    serve::ModelRegistry reg;
    reg.install(world().model, "trained");

    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&reg] {
            auto profile = traffic::TrafficProfile::defaults();
            for (int i = 0; i < 200; ++i) {
                auto snap = reg.current();
                ASSERT_TRUE(snap);
                auto b = snap.model->predictDetailed(
                    world().levels, profile);
                EXPECT_GT(b.predicted, 0.0);
            }
        });
    }
    for (int t = 0; t < 2; ++t) {
        threads.emplace_back([&reg] {
            for (int i = 0; i < 20; ++i) {
                auto r = reg.swapFromFile(world().modelFile);
                EXPECT_TRUE(r.isOk());
            }
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(reg.version(), 41u); // 1 install + 40 swaps
    EXPECT_EQ(reg.swapsSucceeded(), 40u);
}

// ---------------------------------------------------------------
// Access log
// ---------------------------------------------------------------

serve::AccessRecord
accessRecord(const std::string &id, int status = 200)
{
    serve::AccessRecord rec;
    rec.id = id;
    rec.peer = "tester";
    rec.method = "GET";
    rec.path = "/x";
    rec.status = status;
    rec.queueWaitMs = 1.5;
    rec.handleMs = 2.5;
    return rec;
}

TEST(AccessLog, RingOverwritesOldestAndCountsDrops)
{
    serve::AccessLogOptions opts;
    opts.capacity = 2;
    serve::AccessLog log(opts);
    log.record(accessRecord("r1"));
    log.record(accessRecord("r2"));
    log.record(accessRecord("r3"));
    EXPECT_EQ(log.size(), 2u);
    EXPECT_EQ(log.recorded(), 3u);
    EXPECT_EQ(log.dropped(), 1u);
    auto snap = log.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[0].id, "r2"); // oldest retained first
    EXPECT_EQ(snap[1].id, "r3");
}

TEST(AccessLog, CanonicalExportOmitsWallClockAndCapsLines)
{
    serve::AccessLog log;
    log.record(accessRecord("r1"));
    log.record(accessRecord("r2"));

    std::string full = log.exportString(false);
    EXPECT_NE(full.find("\"queue_wait_ms\":1.500"),
              std::string::npos);
    EXPECT_NE(full.find("\"handle_ms\":2.500"), std::string::npos);

    // Canonical: wall-clock fields gone, logical fields kept — this
    // is what makes the serve-observatory golden thread-invariant.
    std::string canon = log.exportString(true);
    EXPECT_EQ(canon.find("queue_wait_ms"), std::string::npos);
    EXPECT_EQ(canon.find("handle_ms"), std::string::npos);
    EXPECT_NE(canon.find("\"step\":"), std::string::npos);

    // maxLines keeps only the newest complete records.
    std::string tail = log.exportString(true, 1);
    EXPECT_EQ(tail.find("r1"), std::string::npos);
    EXPECT_NE(tail.find("r2"), std::string::npos);
}

// ---------------------------------------------------------------
// Server core + observatory integration
// ---------------------------------------------------------------

TEST(ServerObservatory, CorrelationIdsAndAccessRecords)
{
    serve::ServerObservatory obs;
    CoreHarness h;
    h.server.setObservatory(&obs);
    auto pipe = h.connect("c1");

    pipe->clientWrite(simpleGet("/one"));
    stepUntil(h.server, [&] { return pipe->clientPending() > 0; });
    std::string raw = pipe->clientRead();
    // The response echoes the correlation id as a header.
    EXPECT_NE(raw.find("X-Request-Id: c1-r1"), std::string::npos);

    pipe->clientWrite(simpleGet("/two"));
    stepUntil(h.server, [&] { return pipe->clientPending() > 0; });
    raw = pipe->clientRead();
    EXPECT_NE(raw.find("X-Request-Id: c1-r2"), std::string::npos);

    auto records = obs.accessLog.snapshot();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].id, "c1-r1");
    EXPECT_EQ(records[0].peer, "c1");
    EXPECT_EQ(records[0].path, "/one");
    EXPECT_EQ(records[0].status, 200);
    EXPECT_EQ(records[0].verdict, "ok");
    EXPECT_EQ(records[1].id, "c1-r2");
}

TEST(ServerObservatory, RefusalsAndParseErrorsAreLoggedAndCharged)
{
    SloObjective avail;
    avail.name = "itest_avail";
    avail.target = 0.9;
    avail.fastWindow = 4;
    avail.slowWindow = 8;
    avail.burnThreshold = 1e9; // classification only, no events
    serve::ServerObservatory obs({avail});

    ServeOptions opts;
    opts.maxQueueDepth = 2;
    opts.maxRequestsPerStep = 1;
    CoreHarness h(opts);
    h.server.setObservatory(&obs);

    auto pipe = h.connect("c1");
    std::string burst;
    for (int i = 0; i < 4; ++i)
        burst += simpleGet(strf("/r%d", i));
    pipe->clientWrite(burst);
    stepUntil(h.server, [&] {
        return h.server.stats().requestsHandled >= 2;
    });

    auto garbage = h.connect("c2");
    garbage->clientWrite("\x01garbage\r\n\r\n");
    stepUntil(h.server, [&] { return garbage->closed(); });

    std::size_t shed = 0, ok = 0, parse = 0;
    for (const auto &rec : obs.accessLog.snapshot()) {
        if (rec.verdict == "shed") {
            ++shed;
            EXPECT_EQ(rec.status, 503);
        } else if (rec.verdict == "ok") {
            ++ok;
        } else if (rec.verdict == "parse") {
            ++parse;
            EXPECT_EQ(rec.status, 400);
            EXPECT_EQ(rec.id, "c2-parse");
        }
    }
    EXPECT_EQ(shed, 2u);
    EXPECT_EQ(ok, 2u);
    EXPECT_EQ(parse, 1u);

    // The SLO fold saw every outcome: 2 shed (bad) + 2 ok + the
    // parse error's 400 (not an availability loss).
    auto st = obs.slo.states().at(0);
    EXPECT_EQ(st.total, 5u);
    EXPECT_EQ(st.bad, 2u);
}

TEST(ServerObservatory, AccessSinkStreamsEveryRecord)
{
    serve::ServerObservatory obs;
    std::vector<std::string> streamed;
    obs.accessSink = [&](const serve::AccessRecord &rec) {
        streamed.push_back(rec.id);
    };
    CoreHarness h;
    h.server.setObservatory(&obs);
    auto pipe = h.connect("c1");
    pipe->clientWrite(simpleGet("/a") + simpleGet("/b"));
    stepUntil(h.server, [&] {
        return h.server.stats().requestsHandled >= 2;
    });
    EXPECT_EQ(streamed,
              (std::vector<std::string>{"c1-r1", "c1-r2"}));
}

TEST(ServerObservatory, AbortLogsQueuedRequestsAsDropped)
{
    serve::ServerObservatory obs;
    ServeOptions opts;
    opts.maxRequestsPerStep = 1;
    CoreHarness h(opts);
    h.server.setObservatory(&obs);
    auto pipe = h.connect("c1");
    pipe->clientWrite(simpleGet("/done") + simpleGet("/queued"));
    h.server.step(); // admits both, handles and flushes the first
    h.server.abortConnections();

    auto records = obs.accessLog.snapshot();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].verdict, "ok");
    EXPECT_EQ(records[1].verdict, "dropped");
    EXPECT_EQ(records[1].status, 0);
    EXPECT_EQ(records[1].path, "/queued");
}

// ---------------------------------------------------------------
// /debug endpoints
// ---------------------------------------------------------------

TEST(DebugEndpoints, VarsAndTraceAnswerWithoutObservatory)
{
    ServiceHarness h;
    EXPECT_EQ(h.roundTrip(simpleGet("/debug/vars")), 200);
    EXPECT_EQ(h.body.front(), '{');
    EXPECT_NE(h.body.find("\"tomur_server_requests_total\":"),
              std::string::npos);
    EXPECT_EQ(h.roundTrip(simpleGet("/debug/trace")), 200);

    // The observatory-backed endpoints refuse cleanly instead.
    EXPECT_EQ(h.roundTrip(simpleGet("/debug/slo")), 503);
    EXPECT_EQ(h.roundTrip(simpleGet("/debug/access")), 503);
    EXPECT_EQ(h.roundTrip(simpleGet("/debug/profile")), 503);
}

TEST(DebugEndpoints, ObservatoryBackedEndpointsServeArtifacts)
{
    ServiceHarness h;
    serve::ServerObservatory obs;
    h.service.attachObservatory(&obs);
    h.server.setObservatory(&obs);

    EXPECT_EQ(h.roundTrip(simpleGet("/healthz")), 200);
    EXPECT_EQ(h.roundTrip(simpleGet("/debug/slo")), 200);
    EXPECT_NE(h.body.find("\"slo_summary\":"), std::string::npos);
    EXPECT_NE(h.body.find("\"availability\""), std::string::npos);

    EXPECT_EQ(h.roundTrip(simpleGet("/debug/access")), 200);
    EXPECT_NE(h.body.find("\"verdict\":\"ok\""), std::string::npos);
    EXPECT_NE(h.body.find("\"path\":\"/healthz\""),
              std::string::npos);

    // No profiler attached yet; then attach one and retry.
    EXPECT_EQ(h.roundTrip(simpleGet("/debug/profile")), 503);
    SamplingProfiler profiler;
    obs.profiler = &profiler;
    EXPECT_EQ(h.roundTrip(simpleGet("/debug/profile")), 200);
    EXPECT_NE(h.body.find("sampling profiler"), std::string::npos);
}

TEST(DebugEndpoints, MethodAndUnknownPathContracts)
{
    ServiceHarness h;
    EXPECT_EQ(h.roundTrip(simplePost("/debug/vars", "{}")), 405);
    EXPECT_EQ(h.roundTrip(simpleGet("/debug/no-such-view")), 404);
}

TEST(DebugEndpointsFuzz, ByteSoupDebugPathsNeverCrash)
{
    // Hostile /debug suffixes straight into the service router: the
    // contract is a clean status from the documented set, never a
    // crash — same seed discipline as the parser fuzz.
    ServiceHarness h;
    Rng rng(20260808);
    const std::string alphabet =
        "varstraceslprofileacs/.%\\\x01\x7f\x00 {}\"?=&"s;
    for (int iter = 0; iter < 500; ++iter) {
        std::size_t len = rng.uniformInt(std::uint64_t(24));
        std::string suffix;
        for (std::size_t i = 0; i < len; ++i)
            suffix.push_back(
                alphabet[rng.uniformInt(alphabet.size())]);
        HttpRequest req;
        req.method = "GET";
        req.target = "/debug/" + suffix;
        ServiceReply reply = h.service.handle(req);
        EXPECT_TRUE(reply.status == 200 || reply.status == 404 ||
                    reply.status == 503)
            << "status " << reply.status << " for: " << suffix;
    }
}

// ---------------------------------------------------------------
// Serve-observatory golden: canonical access + SLO + trace streams
// ---------------------------------------------------------------

#ifndef TOMUR_GOLDEN_DIR
#define TOMUR_GOLDEN_DIR "tests/golden"
#endif

std::string
goldenPath(const std::string &file)
{
    return std::string(TOMUR_GOLDEN_DIR) + "/" + file;
}

std::string
readFileOrEmpty(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Compare against (or, with TOMUR_UPDATE_GOLDENS=1, rewrite) one
 *  golden fixture. */
void
checkGolden(const std::string &file, const std::string &actual)
{
    const std::string path = goldenPath(file);
    if (std::getenv("TOMUR_UPDATE_GOLDENS")) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << actual;
        return;
    }
    std::string expected = readFileOrEmpty(path);
    ASSERT_FALSE(expected.empty())
        << path << " is missing; regenerate with "
        << "tools/update_goldens.sh";
    EXPECT_EQ(expected, actual)
        << "golden mismatch for " << file
        << "; if the change is intentional, regenerate with "
        << "tools/update_goldens.sh and review the diff";
}

/** RAII global pool width (restores the configured width on exit). */
struct PoolWidth
{
    explicit PoolWidth(int threads) { setGlobalThreadCount(threads); }
    ~PoolWidth() { setGlobalThreadCount(configuredThreadCount()); }
};

/**
 * The fixed observatory scenario: one deterministic server run that
 * produces every access-log verdict and both SLO transitions —
 * two plain requests, a granule-deadline 504, a handler-exception
 * 500 (opens SLO_BURN), a queue-overflow burst (2 ok + 2 shed), a
 * token-bucket exhaustion run (8 ok + 2 throttled, recovering the
 * SLO on the way), a parser poisoning, and an aborted queued
 * request. Everything is logical (step indices, granule deadlines,
 * pure-fold burn math), so the canonical export must be
 * byte-identical at any pool width.
 */
std::string
runObservatoryScenario()
{
    tracer().enable(1 << 14);

    StubService svc;
    ServeOptions opts;
    opts.maxQueueDepth = 2;
    opts.maxRequestsPerStep = 1;
    opts.requestDeadlineGranules = 2;
    opts.bucketCapacity = 8.0;
    Server server(opts, svc);

    SloObjective avail;
    avail.name = "golden_availability";
    avail.target = 0.9;
    avail.fastWindow = 4;
    avail.slowWindow = 16;
    avail.burnThreshold = 2.0;
    avail.recoverFactor = 0.5;
    avail.recoverStable = 4;
    SloObjective deadline;
    deadline.name = "golden_deadline";
    deadline.kind = SloKind::Latency;
    deadline.target = 0.9;
    deadline.fastWindow = 4;
    deadline.slowWindow = 16;
    deadline.burnThreshold = 1e9; // classification only
    serve::ServerObservatory obs({avail, deadline});
    server.setObservatory(&obs);

    auto connect = [&](const std::string &id) {
        auto pipe = std::make_shared<MemoryTransport>();
        server.addConnection(std::make_unique<SharedTransport>(pipe),
                             id);
        return pipe;
    };
    auto oneShot = [&](std::shared_ptr<MemoryTransport> &pipe,
                       const std::string &req) {
        pipe->clientWrite(req);
        std::string rx;
        int status = 0;
        for (int i = 0; i < 200 && status == 0; ++i) {
            server.step();
            rx += pipe->clientRead();
            status = takeResponse(rx);
        }
        return status;
    };

    auto alpha = connect("alpha");
    oneShot(alpha, simpleGet("/alpha1"));
    oneShot(alpha, simpleGet("/alpha2"));

    svc.fn = [](const HttpRequest &) -> ServiceReply {
        for (int i = 0; i < 8; ++i)
            checkDeadline("golden.slow-handler");
        return {};
    };
    oneShot(alpha, simpleGet("/slow")); // 504, deadline verdict

    svc.fn = [](const HttpRequest &) -> ServiceReply {
        throw std::runtime_error("golden handler bug");
    };
    oneShot(alpha, simpleGet("/boom")); // 500 -> SLO_BURN opens
    svc.fn = [](const HttpRequest &req) {
        ServiceReply r;
        r.body = "{\"echo\":\"" + req.target + "\"}";
        return r;
    };

    // Queue overflow: 4 pipelined into a depth-2 queue.
    auto bravo = connect("bravo");
    std::string burst;
    for (int i = 0; i < 4; ++i)
        burst += simpleGet(strf("/b%d", i));
    bravo->clientWrite(burst);
    std::string rx;
    for (int i = 0, got = 0; i < 200 && got < 4; ++i) {
        server.step();
        rx += bravo->clientRead();
        while (takeResponse(rx) != 0)
            ++got;
    }

    // Token-bucket exhaustion: 10 sequential requests against an
    // 8-token bucket with no refill — the last two are throttled,
    // and the good run recovers the availability SLO.
    auto charlie = connect("charlie");
    for (int i = 0; i < 10; ++i)
        oneShot(charlie, simpleGet(strf("/c%d", i)));

    auto delta = connect("delta");
    delta->clientWrite("\x01garbage\r\n\r\n");
    for (int i = 0; i < 200 && !delta->closed(); ++i)
        server.step();

    auto echo = connect("echo");
    echo->clientWrite(simpleGet("/handled") + simpleGet("/queued"));
    server.step(); // admits both, handles the first
    server.abortConnections(); // the queued request is dropped

    std::string out;
    out += "{\"golden_section\":\"access\"}\n";
    out += obs.accessLog.exportString(/*canonical=*/true);
    out += "{\"golden_section\":\"slo\"}\n";
    out += obs.slo.exportString();
    out += "{\"golden_section\":\"trace\"}\n";
    TraceExportOptions topts;
    topts.canonical = true;
    out += tracer().exportString(topts);
    return out;
}

TEST(ServeObservatoryGolden, SerialRunMatchesFixture)
{
    PoolWidth width(1);
    checkGolden("serve_observatory.jsonl",
                runObservatoryScenario());
}

TEST(ServeObservatoryGolden, WideRunIsByteIdenticalToFixture)
{
    // In update mode the serial test just rewrote the fixture; this
    // re-run asserts the wide pool reproduces it exactly, so a
    // thread-dependent scenario cannot be committed.
    PoolWidth width(8);
    std::string actual = runObservatoryScenario();
    std::string expected =
        readFileOrEmpty(goldenPath("serve_observatory.jsonl"));
    ASSERT_FALSE(expected.empty())
        << "fixture missing; run tools/update_goldens.sh";
    EXPECT_EQ(expected, actual);
}

TEST(ServeObservatoryGolden, ScenarioCoversEveryVerdict)
{
    PoolWidth width(1);
    std::string out = runObservatoryScenario();
    for (const char *verdict :
         {"\"verdict\":\"ok\"", "\"verdict\":\"shed\"",
          "\"verdict\":\"throttled\"", "\"verdict\":\"deadline\"",
          "\"verdict\":\"error\"", "\"verdict\":\"parse\"",
          "\"verdict\":\"dropped\""}) {
        EXPECT_NE(out.find(verdict), std::string::npos)
            << "scenario lost coverage of " << verdict;
    }
    EXPECT_NE(out.find("\"event\":\"SLO_BURN\""),
              std::string::npos);
    EXPECT_NE(out.find("\"event\":\"SLO_RECOVERED\""),
              std::string::npos);
    EXPECT_NE(out.find("\"name\":\"server.request\""),
              std::string::npos);
}

} // namespace
} // namespace tomur
