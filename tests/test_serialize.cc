/**
 * @file
 * Serialization round trips: saved and reloaded models predict
 * bit-identically, and malformed inputs are rejected.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hh"
#include "ml/gbr.hh"
#include "ml/linreg.hh"
#include "nfs/registry.hh"
#include "regex/ruleset.hh"
#include "tomur/profiler.hh"

namespace tomur {
namespace {

ml::Dataset
sampleData(int n, std::uint64_t seed)
{
    Rng rng(seed);
    ml::Dataset d({"a", "b", "c"});
    for (int i = 0; i < n; ++i) {
        double a = rng.uniform(0, 10), b = rng.uniform(0, 10),
               c = rng.uniform(0, 10);
        d.add({a, b, c}, a * 2 + (b > 5 ? 3 : 0) + 0.1 * c);
    }
    return d;
}

TEST(Serialize, GbrRoundTripBitIdentical)
{
    auto data = sampleData(300, 7);
    ml::GradientBoostingRegressor gbr;
    gbr.fit(data);

    std::stringstream ss;
    gbr.save(ss);
    ml::GradientBoostingRegressor loaded;
    ASSERT_TRUE(loaded.load(ss));

    Rng rng(9);
    for (int i = 0; i < 100; ++i) {
        std::vector<double> x = {rng.uniform(0, 10),
                                 rng.uniform(0, 10),
                                 rng.uniform(0, 10)};
        EXPECT_EQ(gbr.predict(x), loaded.predict(x));
    }
}

TEST(Serialize, LinRegRoundTrip)
{
    ml::LinearRegression lr;
    lr.fit1d({0, 1, 2, 3}, {5, 7, 9, 11});
    std::stringstream ss;
    lr.save(ss);
    ml::LinearRegression loaded;
    ASSERT_TRUE(loaded.load(ss));
    EXPECT_EQ(lr.predict1d(42.0), loaded.predict1d(42.0));
    EXPECT_EQ(lr.intercept(), loaded.intercept());
}

TEST(Serialize, MalformedInputsRejected)
{
    ml::GradientBoostingRegressor gbr;
    std::stringstream bad1("not_a_model 3");
    EXPECT_FALSE(gbr.load(bad1));
    std::stringstream bad2("gbr 2 0.5 0.1\ntree 1\n0 0 1 5 -1\n");
    // child index 5 out of range
    EXPECT_FALSE(gbr.load(bad2));
    std::stringstream truncated("gbr 2 0.5 0.1\ntree 1\n");
    EXPECT_FALSE(gbr.load(truncated));

    ml::LinearRegression lr;
    std::stringstream bad3("linreg 3 1.0 2.0");
    EXPECT_FALSE(lr.load(bad3)); // missing coefficients
}

TEST(Serialize, SaveBeforeFitPanics)
{
    ml::GradientBoostingRegressor gbr;
    std::stringstream ss;
    EXPECT_DEATH(gbr.save(ss), "before fit");
}

TEST(Serialize, TomurModelRoundTrip)
{
    // Train a real (small-quota) model, persist it, reload it, and
    // check predictions match exactly on fresh inputs.
    auto rules = regex::defaultRuleSet();
    framework::DeviceSet dev;
    dev.regex = std::make_shared<framework::RegexDevice>(rules);
    dev.compression =
        std::make_shared<framework::CompressionDevice>();
    dev.crypto = std::make_shared<framework::CryptoDevice>();
    sim::Testbed bed(hw::blueField2(), {});
    core::BenchLibrary lib(bed, dev, rules);
    core::TomurTrainer trainer(lib);

    auto defaults = traffic::TrafficProfile::defaults();
    auto nf = nfs::makeNids(dev);
    core::TrainOptions opts;
    opts.adaptive.quota = 50;
    auto model = trainer.train(*nf, defaults, opts);

    std::stringstream ss;
    ASSERT_TRUE(model.save(ss));
    core::TomurModel loaded;
    ASSERT_TRUE(loaded.load(ss));

    EXPECT_EQ(loaded.nfName(), model.nfName());
    EXPECT_EQ(loaded.pattern(), model.pattern());
    ASSERT_EQ(loaded.accelModel(hw::AccelKind::Regex).has_value(),
              model.accelModel(hw::AccelKind::Regex).has_value());

    Rng rng(5);
    for (int i = 0; i < 10; ++i) {
        auto p = defaults
                     .withAttribute(traffic::Attribute::Mtbr,
                                    rng.uniform(0, 1100))
                     .withAttribute(traffic::Attribute::FlowCount,
                                    rng.uniform(1e3, 5e5));
        const auto &bench = lib.randomMemBench(rng);
        const auto &rx = lib.accelBench(hw::AccelKind::Regex,
                                        rng.uniform(1e5, 4e5), 800.0);
        std::vector<core::ContentionLevel> levels = {bench.level,
                                                     rx.level};
        EXPECT_EQ(model.predict(levels, p),
                  loaded.predict(levels, p));
        EXPECT_EQ(model.soloThroughput(p), loaded.soloThroughput(p));
    }
}

TEST(Serialize, TomurModelRejectsWrongVersion)
{
    core::TomurModel m;
    std::stringstream ss("tomur_model 99\n");
    auto st = m.load(ss);
    EXPECT_FALSE(st);
    EXPECT_NE(st.message().find("version"), std::string::npos);
}

} // namespace
} // namespace tomur
