/**
 * @file
 * Unit and property tests for the regex engine: parser, NFA, DFA,
 * generator, and rulesets.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/rng.hh"
#include "regex/dfa.hh"
#include "regex/generator.hh"
#include "regex/matcher.hh"
#include "regex/parser.hh"
#include "regex/ruleset.hh"

namespace tomur::regex {
namespace {

std::vector<std::uint8_t>
bytes(const std::string &s)
{
    return {s.begin(), s.end()};
}

std::uint64_t
countIn(const std::string &pattern, const std::string &text,
        bool ci = false)
{
    RuleSet rs;
    rs.name = "test";
    rs.rules = {{"r", pattern, ci}};
    MultiMatcher m(rs);
    auto b = bytes(text);
    return m.countMatches(b);
}

TEST(RegexParser, RejectsBadSyntax)
{
    EXPECT_FALSE(parse("a(b").ok);
    EXPECT_FALSE(parse("[a-").ok);
    EXPECT_FALSE(parse("*a").ok);
    EXPECT_FALSE(parse("a\\").ok);
    EXPECT_FALSE(parse("[z-a]").ok);
}

TEST(RegexParser, AcceptsDialect)
{
    EXPECT_TRUE(parse("abc").ok);
    EXPECT_TRUE(parse("a|b|c").ok);
    EXPECT_TRUE(parse("(ab)+c?").ok);
    EXPECT_TRUE(parse("[a-z0-9_]{2,5}").ok);
    EXPECT_TRUE(parse("\\x13bittorrent").ok);
    EXPECT_TRUE(parse("^anchored$").ok);
    EXPECT_TRUE(parse("a{3}").ok);
    EXPECT_TRUE(parse("a{3,}").ok);
}

TEST(RegexParser, AnchorsDetected)
{
    auto p = parse("^abc$");
    ASSERT_TRUE(p.ok);
    EXPECT_TRUE(p.pattern.anchorStart);
    EXPECT_TRUE(p.pattern.anchorEnd);

    auto q = parse("a$b");
    ASSERT_TRUE(q.ok);
    EXPECT_FALSE(q.pattern.anchorEnd); // '$' mid-pattern is literal
}

TEST(RegexMatch, LiteralCounts)
{
    EXPECT_EQ(countIn("abc", "xxabcxxabc"), 2u);
    EXPECT_EQ(countIn("abc", "ababab"), 0u);
    EXPECT_EQ(countIn("abc", ""), 0u);
}

TEST(RegexMatch, OverlappingEndPositions)
{
    // One event per (rule, end-position): "aa" in "aaaa" ends at
    // positions 2,3,4.
    EXPECT_EQ(countIn("aa", "aaaa"), 3u);
    // "a+" also yields one event per end position.
    EXPECT_EQ(countIn("a+", "aaa"), 3u);
}

TEST(RegexMatch, Alternation)
{
    EXPECT_EQ(countIn("foo|bar", "foo bar foobar"), 4u);
}

TEST(RegexMatch, Classes)
{
    EXPECT_EQ(countIn("[0-9]{3}", "abc123def4567"), 3u); // 123,456,567
    EXPECT_EQ(countIn("[^a]b", "ab bb cb"), 3u); // " b", "bb", "cb"
    EXPECT_EQ(countIn("\\d\\d", "a12b34"), 2u);
    EXPECT_EQ(countIn("\\s", "a b\tc"), 2u);
}

TEST(RegexMatch, Repeats)
{
    EXPECT_EQ(countIn("ab{2,3}c", "abbc abbbc abc abbbbc"), 2u);
    EXPECT_EQ(countIn("ab?c", "ac abc abbc"), 2u);
    EXPECT_EQ(countIn("ab*c", "ac abc abbbbc"), 3u);
}

TEST(RegexMatch, Anchors)
{
    EXPECT_EQ(countIn("^abc", "abcabc"), 1u);
    EXPECT_EQ(countIn("abc$", "abcabc"), 1u);
    EXPECT_EQ(countIn("^abc$", "abc"), 1u);
    EXPECT_EQ(countIn("^abc$", "abcx"), 0u);
    EXPECT_EQ(countIn("^abc$", "xabc"), 0u);
}

TEST(RegexMatch, CaseInsensitive)
{
    EXPECT_EQ(countIn("http", "HTTP http HtTp", true), 3u);
    EXPECT_EQ(countIn("http", "HTTP http HtTp", false), 1u);
}

TEST(RegexMatch, HexEscapes)
{
    std::string text = "x";
    text += '\x13';
    text += "bittorrent";
    EXPECT_EQ(countIn("\\x13bittorrent", text), 1u);
}

TEST(RegexMatch, DotExcludesNewline)
{
    EXPECT_EQ(countIn("a.c", "abc a\nc adc"), 2u);
}

TEST(RegexMatch, MultiRuleCounts)
{
    RuleSet rs = tinyRuleSet();
    MultiMatcher m(rs);
    auto b = bytes("abcd x12y foobaz zzz end");
    // alpha: abcd (1), beta: x12y (1), gamma: foobaz (1),
    // delta: 'end' at end (1)
    EXPECT_EQ(m.countMatches(b), 4u);
    EXPECT_EQ(m.matchedRules(b), 0xfu);
}

TEST(RegexMatch, EmptyPatternRejected)
{
    RuleSet rs;
    rs.name = "bad";
    rs.rules = {{"empty", "a*", false}};
    EXPECT_DEATH({ MultiMatcher m(rs); }, "empty string");
}

TEST(RegexDfa, AgreesWithNfa)
{
    // Property: per rule, DFA and NFA report identical counts on
    // random inputs (the matcher's fast path equals the reference
    // semantics).
    RuleSet rs = defaultRuleSet();
    Rng rng(42);
    for (const auto &rule : rs.rules) {
        ParseOptions o;
        o.caseInsensitive = rule.caseInsensitive;
        std::vector<Pattern> pats;
        pats.push_back(parseOrDie(rule.pattern, o));
        Nfa nfa(pats);
        auto dfa = Dfa::build(nfa, 4096);
        ASSERT_NE(dfa, nullptr) << rule.name;

        for (int iter = 0; iter < 10; ++iter) {
            std::vector<std::uint8_t> data(200 + rng.uniformInt(400u));
            for (auto &b : data) {
                // Mix printable text and binary to exercise both.
                b = rng.chance(0.7)
                    ? static_cast<std::uint8_t>(
                          rng.uniformInt(0x20, 0x7e))
                    : static_cast<std::uint8_t>(
                          rng.uniformInt(std::int64_t(0), 255));
            }
            // Sometimes embed a signature of this very rule.
            if (rng.chance(0.6)) {
                auto sig = generateMatch(pats[0], rng);
                if (sig.size() < data.size()) {
                    std::size_t pos =
                        rng.uniformInt(data.size() - sig.size());
                    std::copy(sig.begin(), sig.end(),
                              data.begin() + pos);
                }
            }
            EXPECT_EQ(dfa->countMatches(data.data(), data.size()),
                      nfa.countMatches(data.data(), data.size()))
                << rule.name << " iter " << iter;
            EXPECT_EQ(dfa->matchedRules(data.data(), data.size()),
                      nfa.matchedRules(data.data(), data.size()))
                << rule.name << " iter " << iter;
        }
    }
}

TEST(RegexGenerator, OutputAlwaysMatches)
{
    // Property: a string generated from pattern P matches P.
    const char *patterns[] = {
        "abc+d",
        "(get|post|head) [\\x21-\\x7e]{1,16} http/1\\.[01]",
        "ssh-[12]\\.[0-9]+-[\\x21-\\x7e]{2,12}",
        "[a-f]{2,8}[0-9]?z",
        "x(y|z){3}w",
    };
    Rng rng(7);
    for (const char *ps : patterns) {
        Pattern p = parseOrDie(ps);
        RuleSet rs;
        rs.name = "gen";
        rs.rules = {{"r", ps, false}};
        MultiMatcher m(rs);
        for (int i = 0; i < 40; ++i) {
            auto s = generateMatch(p, rng);
            ASSERT_FALSE(s.empty());
            EXPECT_GE(m.countMatches(s), 1u)
                << ps << " generated non-matching string";
        }
    }
}

TEST(RegexGenerator, DefaultRulesGenerate)
{
    // Every default rule can synthesize a matching string, and the
    // compiled set detects it.
    RuleSet rs = defaultRuleSet();
    MultiMatcher m(rs);
    Rng rng(99);
    for (std::size_t r = 0; r < rs.rules.size(); ++r) {
        const auto &pat = m.patterns()[r];
        for (int i = 0; i < 10; ++i) {
            auto s = generateMatch(pat, rng);
            std::uint64_t rules = m.matchedRules(s);
            EXPECT_TRUE(rules & (std::uint64_t(1) << r))
                << "rule " << rs.rules[r].name << " iteration " << i;
        }
    }
}

TEST(RegexParser, NonCapturingGroup)
{
    EXPECT_EQ(countIn("(?:ab)+c", "ababc abc xc"), 2u);
}

TEST(RegexParser, RepeatExpansionCapFatal)
{
    // Counted repeats are expanded into the automaton; a cap keeps
    // hostile patterns from exploding it.
    RuleSet rs;
    rs.name = "cap";
    rs.rules = {{"big", "a{1000}", false}};
    EXPECT_DEATH({ MultiMatcher m(rs); }, "expansion cap");
}

TEST(RegexMatch, ClassWithHexRange)
{
    EXPECT_EQ(countIn("[\\x41-\\x43]+z", "ABCz Dz"), 1u);
}

TEST(RegexRuleset, CompilesWithDfa)
{
    MultiMatcher m(defaultRuleSet());
    EXPECT_TRUE(m.usesDfa());
    EXPECT_EQ(m.numRules(), 20);
}

TEST(RegexRuleset, RandomBinaryRarelyMatches)
{
    // Background filler must stay low-MTBR: random high bytes should
    // almost never trigger protocol signatures.
    MultiMatcher m(defaultRuleSet());
    Rng rng(3);
    std::uint64_t total = 0;
    const int kIters = 30;
    for (int i = 0; i < kIters; ++i) {
        std::vector<std::uint8_t> data(1400);
        for (auto &b : data)
            b = static_cast<std::uint8_t>(rng.uniformInt(0x80, 0xff));
        total += m.countMatches(data);
    }
    EXPECT_EQ(total, 0u);
}

} // namespace
} // namespace tomur::regex
