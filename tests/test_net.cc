/**
 * @file
 * Unit tests for packet headers, parsing, and rewriting.
 */

#include <gtest/gtest.h>

#include "net/packet.hh"

namespace tomur::net {
namespace {

FiveTuple
sampleTuple(IpProto proto = IpProto::Udp)
{
    FiveTuple t;
    t.srcIp = Ipv4Addr::fromOctets(10, 0, 0, 1);
    t.dstIp = Ipv4Addr::fromOctets(192, 168, 1, 2);
    t.srcPort = 12345;
    t.dstPort = 80;
    t.proto = static_cast<std::uint8_t>(proto);
    return t;
}

TEST(Headers, AddrFormatting)
{
    EXPECT_EQ(Ipv4Addr::fromOctets(1, 2, 3, 4).toString(), "1.2.3.4");
    EXPECT_EQ(MacAddr::fromId(0x0102030405ULL).toString(),
              "02:01:02:03:04:05");
}

TEST(Headers, BigEndianRoundTrip)
{
    std::uint8_t buf[4];
    storeBe16(buf, 0xbeef);
    EXPECT_EQ(loadBe16(buf), 0xbeef);
    storeBe32(buf, 0xdeadbeef);
    EXPECT_EQ(loadBe32(buf), 0xdeadbeefu);
}

TEST(Headers, ChecksumDetectsCorruption)
{
    std::uint8_t data[20] = {0x45, 0, 0, 40, 1, 2, 3, 4,
                             64, 17, 0, 0, 10, 0, 0, 1,
                             192, 168, 1, 2};
    std::uint16_t c = internetChecksum(data, 20);
    storeBe16(data + 10, c);
    EXPECT_EQ(internetChecksum(data, 20), 0);
    data[0] ^= 1;
    EXPECT_NE(internetChecksum(data, 20), 0);
}

TEST(Headers, FiveTupleHashStable)
{
    FiveTuple a = sampleTuple(), b = sampleTuple();
    EXPECT_EQ(a.hash(), b.hash());
    b.srcPort++;
    EXPECT_NE(a.hash(), b.hash());
}

TEST(Packet, BuildAndParseUdp)
{
    std::vector<std::uint8_t> payload(100, 0xab);
    Packet p = PacketBuilder::build(sampleTuple(), payload);
    EXPECT_EQ(p.size(), PacketBuilder::frameSize(100, IpProto::Udp));

    auto eth = p.eth();
    ASSERT_TRUE(eth);
    EXPECT_EQ(eth->etherType, etherTypeIpv4);

    auto ip = p.ipv4();
    ASSERT_TRUE(ip);
    EXPECT_EQ(ip->src.toString(), "10.0.0.1");
    EXPECT_EQ(ip->dst.toString(), "192.168.1.2");
    EXPECT_TRUE(p.ipv4ChecksumOk());

    auto udp = p.udp();
    ASSERT_TRUE(udp);
    EXPECT_EQ(udp->srcPort, 12345);
    EXPECT_EQ(udp->dstPort, 80);
    EXPECT_EQ(udp->length, udpHeaderLen + 100);

    auto pl = p.payload();
    ASSERT_EQ(pl.size(), 100u);
    EXPECT_EQ(pl[0], 0xab);
}

TEST(Packet, BuildAndParseTcp)
{
    std::vector<std::uint8_t> payload(50, 0x42);
    Packet p = PacketBuilder::build(sampleTuple(IpProto::Tcp), payload);
    auto tcp = p.tcp();
    ASSERT_TRUE(tcp);
    EXPECT_EQ(tcp->srcPort, 12345);
    EXPECT_EQ(p.payload().size(), 50u);
    EXPECT_FALSE(p.udp());
}

TEST(Packet, FiveTupleRoundTrip)
{
    FiveTuple t = sampleTuple(IpProto::Tcp);
    Packet p = PacketBuilder::build(t, {});
    auto got = p.fiveTuple();
    ASSERT_TRUE(got);
    EXPECT_EQ(*got, t);
}

TEST(Packet, RewriteAddressing)
{
    Packet p = PacketBuilder::build(sampleTuple(), {});
    FiveTuple nat = sampleTuple();
    nat.srcIp = Ipv4Addr::fromOctets(100, 64, 0, 1);
    nat.srcPort = 40000;
    p.rewriteAddressing(nat);
    auto got = p.fiveTuple();
    ASSERT_TRUE(got);
    EXPECT_EQ(*got, nat);
    EXPECT_TRUE(p.ipv4ChecksumOk());
}

TEST(Packet, TtlDecrement)
{
    Packet p = PacketBuilder::build(sampleTuple(), {});
    auto before = p.ipv4()->ttl;
    EXPECT_TRUE(p.decrementTtl());
    EXPECT_EQ(p.ipv4()->ttl, before - 1);
    EXPECT_TRUE(p.ipv4ChecksumOk());
}

TEST(Packet, TtlExpiry)
{
    Packet p = PacketBuilder::build(sampleTuple(), {});
    for (int i = 0; i < 63; ++i)
        EXPECT_TRUE(p.decrementTtl());
    EXPECT_EQ(p.ipv4()->ttl, 1);
    EXPECT_FALSE(p.decrementTtl());
}

TEST(Packet, TruncatedParseFails)
{
    Packet p(std::vector<std::uint8_t>(10, 0));
    EXPECT_FALSE(p.eth());
    EXPECT_FALSE(p.ipv4());
    EXPECT_FALSE(p.fiveTuple());
}

TEST(Packet, PayloadForFrameClamps)
{
    EXPECT_EQ(PacketBuilder::payloadForFrame(1500, IpProto::Udp),
              1500 - ethHeaderLen - ipv4HeaderLen - udpHeaderLen);
    EXPECT_EQ(PacketBuilder::payloadForFrame(10, IpProto::Udp), 0u);
}

} // namespace
} // namespace tomur::net
