/**
 * @file
 * Tests for configuration-aware prediction (§8 future-work
 * extension): the IPTunnel MTU knob, anchor selection, and
 * interpolation between anchor models.
 */

#include <gtest/gtest.h>

#include "nfs/registry.hh"
#include "regex/ruleset.hh"
#include "tomur/config_aware.hh"

namespace tomur::core {
namespace {

namespace fw = framework;

struct Fixture
{
    Fixture() : rules(regex::defaultRuleSet()), bed(hw::blueField2(),
                                                    noiseless())
    {
        dev.regex = std::make_shared<fw::RegexDevice>(rules);
        dev.compression = std::make_shared<fw::CompressionDevice>();
        dev.crypto = std::make_shared<fw::CryptoDevice>();
        lib = std::make_unique<BenchLibrary>(bed, dev, rules);
        trainer = std::make_unique<TomurTrainer>(*lib);
    }
    static sim::TestbedOptions
    noiseless()
    {
        sim::TestbedOptions o;
        o.noiseSigma = 0.0;
        return o;
    }
    regex::RuleSet rules;
    fw::DeviceSet dev;
    sim::Testbed bed;
    std::unique_ptr<BenchLibrary> lib;
    std::unique_ptr<TomurTrainer> trainer;
};

TEST(IpTunnelConfig, MtuChangesPerformance)
{
    // The configuration knob is real: a smaller tunnel MTU means
    // more fragments per packet and lower throughput.
    Fixture f;
    auto coarse = nfs::makeIpTunnel(1400);
    auto fine = nfs::makeIpTunnel(400);
    auto p = traffic::TrafficProfile::defaults();
    double t_coarse =
        f.bed.runSolo(f.trainer->workloadOf(*coarse, p))
            .truthThroughput;
    double t_fine =
        f.bed.runSolo(f.trainer->workloadOf(*fine, p))
            .truthThroughput;
    EXPECT_GT(t_coarse, 1.3 * t_fine);
}

TEST(ConfigAware, TrainsAnchorsAndInterpolates)
{
    Fixture f;
    auto defaults = traffic::TrafficProfile::defaults();
    ConfigAttribute attr{"tunnel_mtu", 400.0, 1400.0};
    ConfigAwareOptions opts;
    opts.maxConfigPoints = 3;
    opts.train.adaptive.quota = 50;

    auto model = ConfigAwareModel::train(
        *f.trainer,
        [&](double mtu) {
            return nfs::makeIpTunnel(
                static_cast<std::size_t>(mtu));
        },
        attr, defaults, opts);

    // MTU matters, so pruning must keep multiple anchors.
    EXPECT_FALSE(model.configInsensitive());
    EXPECT_GE(model.anchorValues().size(), 2u);
    EXPECT_LE(model.anchorValues().size(), 3u);

    // Predict at an unseen configuration under memory contention.
    double mtu = 900.0;
    auto nf = nfs::makeIpTunnel(static_cast<std::size_t>(mtu));
    const auto &bench =
        f.lib->memBenches()[f.lib->memBenches().size() / 2];
    auto ms = f.bed.run(
        {f.trainer->workloadOf(*nf, defaults), bench.workload});
    double solo = f.bed.runSolo(f.trainer->workloadOf(*nf, defaults))
                      .truthThroughput;
    double pred =
        model.predict(mtu, {bench.level}, defaults, solo);
    EXPECT_NEAR(pred / ms[0].truthThroughput, 1.0, 0.15);
}

TEST(ConfigAware, InsensitiveNfCollapsesToOneModel)
{
    // FlowStats ignores a dummy configuration knob entirely: the
    // pruning step must keep a single anchor.
    Fixture f;
    auto defaults = traffic::TrafficProfile::defaults();
    ConfigAttribute attr{"dummy", 0.0, 100.0};
    ConfigAwareOptions opts;
    opts.train.adaptive.quota = 40;
    auto model = ConfigAwareModel::train(
        *f.trainer, [&](double) { return nfs::makeFlowStats(); },
        attr, defaults, opts);
    EXPECT_TRUE(model.configInsensitive());
    EXPECT_EQ(model.anchorValues().size(), 1u);
}

TEST(ConfigAware, ValidationErrors)
{
    Fixture f;
    ConfigAttribute bad{"x", 5.0, 5.0};
    EXPECT_DEATH(ConfigAwareModel::train(
                     *f.trainer,
                     [&](double) { return nfs::makeFlowStats(); },
                     bad, traffic::TrafficProfile::defaults()),
                 "range");
}

} // namespace
} // namespace tomur::core
