/**
 * @file
 * Parallel-engine tests: thread-pool semantics (exception
 * propagation, empty/nested loops, map ordering), per-task seed
 * derivation, the parallel-equals-serial determinism contract
 * (GBR fits, batched testbed runs, end-to-end training), and the
 * deployment-measurement cache (hit/miss accounting, key
 * discrimination, fault-injection bypass).
 *
 * Every suite here is prefixed "Parallel" so
 * tools/run_sanitized_tests.sh can select exactly these tests for
 * the TSan pass (ctest -R '^Parallel').
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "common/rng.hh"
#include "common/threadpool.hh"
#include "framework/profile.hh"
#include "ml/gbr.hh"
#include "nfs/bench_nfs.hh"
#include "nfs/registry.hh"
#include "regex/ruleset.hh"
#include "sim/faults.hh"
#include "sim/measurement_cache.hh"
#include "sim/testbed.hh"
#include "tomur/profiler.hh"

namespace tomur {
namespace {

namespace fw = framework;

/** RAII global pool width (restores the configured width on exit). */
struct PoolWidth
{
    explicit PoolWidth(int threads) { setGlobalThreadCount(threads); }
    ~PoolWidth() { setGlobalThreadCount(configuredThreadCount()); }
};

// ---------------------------------------------------------------
// Pool semantics
// ---------------------------------------------------------------

TEST(ParallelPool, MapCollectsInIndexOrder)
{
    PoolWidth width(4);
    auto out = parallelMap(100, [](std::size_t i) {
        return static_cast<int>(i * i);
    });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i * i));
}

TEST(ParallelPool, EmptyRangeIsANoOp)
{
    PoolWidth width(4);
    std::atomic<int> calls{0};
    parallelFor(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
    EXPECT_TRUE(parallelMap(0, [](std::size_t i) { return i; })
                    .empty());
}

TEST(ParallelPool, SingleIterationRunsInline)
{
    PoolWidth width(4);
    auto caller = std::this_thread::get_id();
    std::thread::id ran;
    parallelFor(1, [&](std::size_t) {
        ran = std::this_thread::get_id();
    });
    EXPECT_EQ(ran, caller);
}

TEST(ParallelPool, LowestIndexExceptionPropagates)
{
    PoolWidth width(4);
    try {
        parallelFor(64, [](std::size_t i) {
            if (i == 7)
                throw std::runtime_error("boom at 7");
            if (i == 33)
                throw std::runtime_error("boom at 33");
        });
        FAIL() << "expected the loop to rethrow";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "boom at 7");
    }

    // The pool must stay usable after an exception drained through.
    std::atomic<int> sum{0};
    parallelFor(10, [&](std::size_t i) {
        sum += static_cast<int>(i);
    });
    EXPECT_EQ(sum.load(), 45);
}

TEST(ParallelPool, NestedLoopsRunInlineWithoutDeadlock)
{
    PoolWidth width(4);
    std::atomic<int> inner_total{0};
    parallelFor(8, [&](std::size_t) {
        // Inside a pool worker a nested loop must not queue new pool
        // jobs (a fixed-size pool would deadlock waiting on itself).
        parallelFor(8, [&](std::size_t) { ++inner_total; });
    });
    EXPECT_EQ(inner_total.load(), 64);
}

TEST(ParallelPool, GlobalWidthIsAdjustable)
{
    PoolWidth width(3);
    EXPECT_EQ(globalThreadCount(), 3);
    setGlobalThreadCount(1);
    EXPECT_EQ(globalThreadCount(), 1);
    // Values below 1 clamp rather than wedge the pool.
    setGlobalThreadCount(0);
    EXPECT_EQ(globalThreadCount(), 1);
}

TEST(ParallelPool, DeriveSeedIsStatelessAndDistinct)
{
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 1000; ++i) {
        std::uint64_t s = deriveSeed(42, i);
        EXPECT_EQ(s, deriveSeed(42, i)); // stateless
        seen.insert(s);
    }
    EXPECT_EQ(seen.size(), 1000u);
    // Streams from different bases do not collide at low indices.
    EXPECT_NE(deriveSeed(42, 0), deriveSeed(43, 0));
    EXPECT_NE(deriveSeed(42, 1), deriveSeed(43, 0));
}

// ---------------------------------------------------------------
// Determinism: parallel == serial, bit for bit
// ---------------------------------------------------------------

namespace {

ml::Dataset
syntheticDataset(std::size_t rows)
{
    ml::Dataset data(std::vector<std::string>{
        "a", "b", "c", "d", "e", "f", "g", "h"});
    Rng rng(7);
    for (std::size_t i = 0; i < rows; ++i) {
        std::vector<double> x;
        for (int j = 0; j < 8; ++j)
            x.push_back(rng.uniform(0, 1));
        double y = 3 * x[0] + (x[1] > 0.5 ? 2 : 0) + x[2] * x[3];
        data.add(x, y);
    }
    return data;
}

} // namespace

TEST(ParallelDeterminism, GbrFitIsBitIdenticalAcrossWidths)
{
    // Large enough to cross both parallel thresholds (row passes and
    // per-feature split search).
    auto data = syntheticDataset(1024);
    ml::GbrParams gp;
    gp.numTrees = 30;

    std::vector<double> serial, parallel;
    {
        PoolWidth width(1);
        ml::GradientBoostingRegressor gbr(gp);
        gbr.fit(data);
        serial = gbr.predictAll(data);
    }
    {
        PoolWidth width(4);
        ml::GradientBoostingRegressor gbr(gp);
        gbr.fit(data);
        parallel = gbr.predictAll(data);
    }
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], parallel[i]) << "row " << i;
}

TEST(ParallelDeterminism, GbrModelBytesIdenticalAtWidths1And8)
{
    // Stronger than prediction equality: the serialized model bytes
    // (every threshold, leaf value and tree shape) must not depend
    // on the pool width. 8 threads exceeds this machine's cores on
    // purpose — oversubscription must not change the answer either.
    auto data = syntheticDataset(1024);
    ml::GbrParams gp;
    gp.numTrees = 30;

    auto fitBytes = [&](int width) {
        PoolWidth pool(width);
        ml::GradientBoostingRegressor gbr(gp);
        gbr.fit(data);
        std::ostringstream out;
        gbr.save(out);
        return out.str();
    };
    std::string at1 = fitBytes(1);
    std::string at8 = fitBytes(8);
    EXPECT_FALSE(at1.empty());
    EXPECT_EQ(at1, at8);
}

TEST(ParallelDeterminism, RunBatchMatchesSerialRunLoop)
{
    auto rules = regex::defaultRuleSet();
    auto defaults = traffic::TrafficProfile::defaults();
    std::vector<fw::WorkloadProfile> w;
    for (double wss : {1e6, 8e6, 32e6}) {
        nfs::MemBenchConfig cfg;
        cfg.wssBytes = wss;
        auto nf = nfs::makeMemBench(cfg);
        w.push_back(fw::profileWorkload(*nf, defaults, &rules));
    }
    // Duplicates on purpose: the batch path must hit the solve cache
    // without perturbing the noise stream.
    std::vector<std::vector<fw::WorkloadProfile>> batch = {
        {w[0]}, {w[1]}, {w[0], w[1]}, {w[0]}, {w[2]}, {w[0], w[1]}};

    sim::Testbed serial_bed(hw::blueField2(), {});
    std::vector<std::vector<sim::Measurement>> serial;
    for (const auto &deploy : batch)
        serial.push_back(serial_bed.run(deploy));

    sim::Testbed batch_bed(hw::blueField2(), {});
    PoolWidth width(4);
    auto parallel = batch_bed.runBatch(batch);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        ASSERT_EQ(serial[i].size(), parallel[i].size());
        for (std::size_t j = 0; j < serial[i].size(); ++j) {
            EXPECT_EQ(serial[i][j].throughput,
                      parallel[i][j].throughput);
            EXPECT_EQ(serial[i][j].truthThroughput,
                      parallel[i][j].truthThroughput);
        }
    }
    EXPECT_GT(batch_bed.cacheHits(), 0u);
}

TEST(ParallelDeterminism, TrainedModelIsBitIdenticalAcrossWidths)
{
    auto rules = regex::defaultRuleSet();
    fw::DeviceSet dev;
    dev.regex = std::make_shared<fw::RegexDevice>(rules);
    dev.compression = std::make_shared<fw::CompressionDevice>();
    dev.crypto = std::make_shared<fw::CryptoDevice>();
    auto defaults = traffic::TrafficProfile::defaults();

    core::TrainOptions topts;
    topts.sampling = core::SamplingStrategy::Random;
    topts.adaptive.quota = 20;

    auto trainOnce = [&](int threads) {
        PoolWidth width(threads);
        sim::Testbed bed(hw::blueField2(), {});
        core::BenchLibrary lib(bed, dev, rules);
        core::TomurTrainer trainer(lib);
        auto nf = nfs::makeByName("FlowStats", dev);
        auto model = trainer.train(*nf, defaults, topts);
        std::ostringstream out;
        EXPECT_TRUE(model.save(out));
        return out.str();
    };

    auto serial = trainOnce(1);
    auto parallel = trainOnce(4);
    EXPECT_EQ(serial, parallel)
        << "serialized models differ between pool widths";
}

// ---------------------------------------------------------------
// Measurement cache
// ---------------------------------------------------------------

namespace {

fw::WorkloadProfile
memBenchWorkload(double wss_bytes)
{
    auto rules = regex::defaultRuleSet();
    nfs::MemBenchConfig cfg;
    cfg.wssBytes = wss_bytes;
    auto nf = nfs::makeMemBench(cfg);
    return fw::profileWorkload(
        *nf, traffic::TrafficProfile::defaults(), &rules);
}

} // namespace

TEST(ParallelCache, HitMissAccounting)
{
    sim::Testbed bed(hw::blueField2(), {});
    auto w = memBenchWorkload(4e6);

    EXPECT_EQ(bed.cacheHits(), 0u);
    EXPECT_EQ(bed.cacheMisses(), 0u);

    auto first = bed.run({w});
    EXPECT_EQ(bed.cacheMisses(), 1u);
    EXPECT_EQ(bed.cacheHits(), 0u);

    auto second = bed.run({w});
    EXPECT_EQ(bed.cacheMisses(), 1u);
    EXPECT_EQ(bed.cacheHits(), 1u);

    // Memoization is invisible below the noise layer: the noise-free
    // truth is identical, the noisy readings still differ per call.
    ASSERT_EQ(first.size(), 1u);
    ASSERT_EQ(second.size(), 1u);
    EXPECT_EQ(first[0].truthThroughput, second[0].truthThroughput);
    EXPECT_NE(first[0].throughput, second[0].throughput);

    bed.clearCache();
    bed.run({w});
    EXPECT_EQ(bed.cacheMisses(), 1u) << "clearCache resets stats";
}

TEST(ParallelCache, DisabledCacheGivesIdenticalMeasurements)
{
    sim::TestbedOptions no_cache;
    no_cache.cacheSolves = false;
    sim::Testbed cached(hw::blueField2(), {});
    sim::Testbed uncached(hw::blueField2(), no_cache);
    auto w = memBenchWorkload(4e6);

    for (int i = 0; i < 3; ++i) {
        auto a = cached.run({w});
        auto b = uncached.run({w});
        ASSERT_EQ(a.size(), 1u);
        ASSERT_EQ(b.size(), 1u);
        EXPECT_EQ(a[0].throughput, b[0].throughput);
        EXPECT_EQ(a[0].truthThroughput, b[0].truthThroughput);
    }
    EXPECT_EQ(uncached.cacheHits(), 0u);
    EXPECT_EQ(uncached.cacheMisses(), 0u);
}

TEST(ParallelCache, KeyDiscriminatesDeployments)
{
    sim::TestbedOptions opts;
    auto w_small = memBenchWorkload(4e6);
    auto w_large = memBenchWorkload(32e6);

    auto k1 = sim::deploymentKey(opts, {w_small});
    auto k2 = sim::deploymentKey(opts, {w_small});
    EXPECT_EQ(k1, k2);

    EXPECT_NE(k1, sim::deploymentKey(opts, {w_large}));
    EXPECT_NE(k1, sim::deploymentKey(opts, {w_small, w_small}));

    // Solver options are part of the key: a different solver setup
    // may converge differently, so results must not be shared.
    sim::TestbedOptions damped;
    damped.damping = 0.25;
    EXPECT_NE(k1, sim::deploymentKey(damped, {w_small}));

    // Noise parameters are deliberately NOT keyed — noise is applied
    // above the cache, the solve does not depend on it.
    sim::TestbedOptions noisy;
    noisy.noiseSigma = 0.5;
    noisy.seed = 1;
    EXPECT_EQ(k1, sim::deploymentKey(noisy, {w_small}));

    EXPECT_NE(sim::fnv1a64(k1),
              sim::fnv1a64(sim::deploymentKey(opts, {w_large})));
}

TEST(ParallelCache, CloneSharesPhysicsNotNoise)
{
    sim::Testbed bed(hw::blueField2(), {});
    auto w = memBenchWorkload(4e6);

    auto twin = bed.clone(/*seed=*/555);
    ASSERT_NE(twin, nullptr);
    auto a = bed.run({w});
    auto b = twin->run({w});
    ASSERT_EQ(a.size(), 1u);
    ASSERT_EQ(b.size(), 1u);
    // Same NIC and solver → same noise-free physics; independent
    // noise streams → different noisy readings.
    EXPECT_EQ(a[0].truthThroughput, b[0].truthThroughput);
    EXPECT_NE(a[0].throughput, b[0].throughput);
}

TEST(ParallelCache, FaultInjectionBypassesTheCache)
{
    auto w = memBenchWorkload(4e6);

    sim::Testbed inner(hw::blueField2(), {});
    sim::FaultConfig fc;
    fc.dropProb = 1.0; // every measurement comes back all-zero
    sim::FaultInjectingTestbed faulty(inner, fc);

    // Prewarming warms the *inner* solve cache without drawing noise
    // or faults...
    faulty.prewarm({{w}});
    EXPECT_EQ(inner.cacheMisses(), 1u);
    EXPECT_EQ(inner.cacheHits(), 0u);

    // ...and every subsequent run() still takes a fresh fault draw:
    // the cached clean solve can never leak past the injector.
    for (int i = 0; i < 3; ++i) {
        auto ms = faulty.run({w});
        ASSERT_EQ(ms.size(), 1u);
        EXPECT_EQ(ms[0].throughput, 0.0);
    }
    EXPECT_GT(inner.cacheHits(), 0u);

    // The inner testbed still serves clean measurements off the same
    // cache entry.
    auto clean = inner.run({w});
    ASSERT_EQ(clean.size(), 1u);
    EXPECT_GT(clean[0].throughput, 0.0);
}

TEST(ParallelCache, BatchedFaultyRunsStayPerCallRandom)
{
    auto w = memBenchWorkload(4e6);

    sim::Testbed inner(hw::blueField2(), {});
    sim::FaultConfig fc;
    fc.outlierProb = 0.5;
    fc.seed = 123;
    sim::FaultInjectingTestbed faulty(inner, fc);

    // The same faulty harness, run twice over an identical batch:
    // solves all hit the warm cache, yet fault draws keep advancing
    // per call — a memoized corrupted reading would repeat exactly.
    std::vector<std::vector<fw::WorkloadProfile>> batch(8, {w});
    auto first = faulty.runBatch(batch);
    auto second = faulty.runBatch(batch);
    ASSERT_EQ(first.size(), second.size());
    bool any_differs = false;
    for (std::size_t i = 0; i < first.size(); ++i) {
        if (first[i].size() != second[i].size() ||
            first[i][0].throughput != second[i][0].throughput)
            any_differs = true;
    }
    EXPECT_TRUE(any_differs)
        << "fault/noise draws must not be memoized";
    EXPECT_GT(inner.cacheHits(), 0u);
}

} // namespace
} // namespace tomur
