/**
 * @file
 * Tests for traffic profiles and the packet generator, including the
 * MTBR-targeting property (generated payload match density tracks
 * the configured matches/MB), plus the nonstationary scenario
 * synthesizer: generator shapes, the scenario DSL's all-or-nothing
 * parsing, the parse -> emit -> parse round-trip property, and
 * seeded fuzz over hostile scripts.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>
#include <string>

#include "common/rng.hh"
#include "common/strutil.hh"
#include "regex/ruleset.hh"
#include "traffic/generator.hh"
#include "traffic/synth.hh"

namespace tomur::traffic {
namespace {

using namespace std::string_literals;

TEST(Profile, VectorRoundTrip)
{
    TrafficProfile p = TrafficProfile::defaults();
    auto v = p.toVector();
    ASSERT_EQ(v.size(), 3u);
    EXPECT_DOUBLE_EQ(v[0], 16000.0);
    EXPECT_DOUBLE_EQ(v[1], 1500.0);
    EXPECT_DOUBLE_EQ(v[2], 600.0);
    EXPECT_EQ(p.toString(), "(16000, 1500, 600)");
}

TEST(Profile, WithAttribute)
{
    TrafficProfile p = TrafficProfile::defaults();
    auto q = p.withAttribute(Attribute::FlowCount, 500.5);
    EXPECT_EQ(q.flowCount, 501u); // rounded
    EXPECT_EQ(q.packetSize, p.packetSize);
    auto r = p.withAttribute(Attribute::Mtbr, -5.0);
    EXPECT_DOUBLE_EQ(r.mtbr, 0.0); // clamped
    auto s = p.withAttribute(Attribute::PacketSize, 10.0);
    EXPECT_EQ(s.packetSize, 64u); // floor at minimum frame
}

TEST(Profile, Ranges)
{
    for (int a = 0; a < numAttributes; ++a) {
        auto r = defaultRange(static_cast<Attribute>(a));
        EXPECT_LT(r.min, r.max);
    }
}

TEST(Generator, FlowCountRespected)
{
    TrafficProfile p;
    p.flowCount = 10;
    p.mtbr = 0;
    TrafficGen gen(p, nullptr, 1);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 400; ++i) {
        auto pkt = gen.next();
        auto tuple = pkt.fiveTuple();
        ASSERT_TRUE(tuple);
        seen.insert(tuple->hash());
    }
    EXPECT_EQ(seen.size(), 10u);
}

TEST(Generator, DeterministicAcrossInstances)
{
    TrafficProfile p;
    p.flowCount = 100;
    p.mtbr = 0;
    TrafficGen a(p, nullptr, 7), b(p, nullptr, 7);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(a.next().bytes(), b.next().bytes());
}

TEST(Generator, FrameSizeMatchesProfile)
{
    TrafficProfile p;
    p.packetSize = 512;
    p.mtbr = 0;
    TrafficGen gen(p, nullptr, 2);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(gen.next().size(), 512u);
}

TEST(Generator, MtbrTargetingProperty)
{
    // Property: measured match density tracks the configured MTBR
    // within a factor accounting for multi-event signatures.
    auto rules = regex::defaultRuleSet();
    regex::MultiMatcher matcher(rules);
    for (double target : {100.0, 600.0, 1200.0}) {
        TrafficProfile p;
        p.mtbr = target;
        TrafficGen gen(p, &rules, 3);
        double bytes = 0.0, matches = 0.0;
        for (int i = 0; i < 150; ++i) {
            auto payload = gen.makePayload();
            bytes += static_cast<double>(payload.size());
            matches +=
                static_cast<double>(matcher.countMatches(payload));
        }
        double measured = matches / bytes * 1e6;
        EXPECT_GT(measured, 0.8 * target) << "target " << target;
        EXPECT_LT(measured, 6.0 * target) << "target " << target;
    }
}

TEST(Generator, MtbrMonotone)
{
    auto rules = regex::defaultRuleSet();
    regex::MultiMatcher matcher(rules);
    double prev = -1.0;
    for (double target : {0.0, 200.0, 800.0}) {
        TrafficProfile p;
        p.mtbr = target;
        TrafficGen gen(p, &rules, 5);
        double matches = 0.0;
        for (int i = 0; i < 100; ++i)
            matches += static_cast<double>(
                matcher.countMatches(gen.makePayload()));
        EXPECT_GT(matches, prev);
        prev = matches;
    }
}

TEST(Generator, ZeroMtbrHasNoMatches)
{
    auto rules = regex::defaultRuleSet();
    regex::MultiMatcher matcher(rules);
    TrafficProfile p;
    p.mtbr = 0;
    TrafficGen gen(p, &rules, 9);
    std::uint64_t total = 0;
    for (int i = 0; i < 50; ++i)
        total += matcher.countMatches(gen.makePayload());
    EXPECT_EQ(total, 0u);
}

TEST(Generator, RequiresRulesetForMtbr)
{
    TrafficProfile p;
    p.mtbr = 500;
    EXPECT_DEATH(TrafficGen(p, nullptr, 1), "ruleset");
}

TEST(Generator, FlowTuplesStable)
{
    TrafficProfile p;
    p.mtbr = 0;
    TrafficGen a(p, nullptr, 1), b(p, nullptr, 99);
    // flowTuple() is seed-independent: profiles share flow identity.
    for (std::uint64_t i = 0; i < 20; ++i)
        EXPECT_EQ(a.flowTuple(i), b.flowTuple(i));
}

// ---------------------------------------------------------------
// Nonstationary scenario synthesis
// ---------------------------------------------------------------

/** Every compiled step must satisfy the parser/clamp invariants no
 *  matter which generator or script produced it. */
void
expectSynthInvariants(const std::vector<SynthStep> &steps,
                      const std::string &context)
{
    for (const auto &s : steps) {
        EXPECT_GE(s.repeats, 1) << context;
        EXPECT_LE(s.repeats, 1000000) << context;
        EXPECT_GE(s.profile.flowCount, 1u) << context;
        EXPECT_LE(s.profile.flowCount, 1000000000u) << context;
        EXPECT_GE(s.profile.packetSize, 64u) << context;
        EXPECT_LE(s.profile.packetSize, 1000000u) << context;
        EXPECT_TRUE(std::isfinite(s.profile.mtbr)) << context;
        EXPECT_GE(s.profile.mtbr, 0.0) << context;
    }
    EXPECT_LE(steps.size(), std::size_t(100000)) << context;
}

TEST(Synth, DiurnalSweepsAroundBase)
{
    DiurnalOptions o;
    o.base = TrafficProfile::defaults();
    o.amplitude = 0.5;
    o.period = 8;
    o.cycles = 2;
    auto steps = diurnalSteps(o);
    ASSERT_EQ(steps.size(), 16u);
    // Step 0 starts at base, the quarter-period step crests at
    // base * (1 + amplitude), the three-quarter step troughs.
    EXPECT_EQ(steps[0].profile.flowCount, o.base.flowCount);
    EXPECT_EQ(steps[2].profile.flowCount,
              static_cast<std::uint64_t>(1.5 * 16000));
    EXPECT_EQ(steps[6].profile.flowCount,
              static_cast<std::uint64_t>(0.5 * 16000));
    // Second cycle repeats the first exactly.
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(steps[i].profile, steps[i + 8].profile);
    expectSynthInvariants(steps, "diurnal");
}

TEST(Synth, FlashCrowdRampsHoldsDecays)
{
    FlashCrowdOptions o;
    o.base = TrafficProfile::defaults();
    o.peak = 4.0;
    o.ramp = 2;
    o.hold = 3;
    o.decay = 2;
    auto steps = flashCrowdSteps(o);
    ASSERT_EQ(steps.size(), 7u);
    EXPECT_LT(steps[0].profile.flowCount,
              steps[1].profile.flowCount);
    for (int i = 1; i <= 4; ++i) {
        EXPECT_EQ(steps[i].profile.flowCount,
                  4 * o.base.flowCount);
    }
    // Decay ends exactly back at base.
    EXPECT_EQ(steps.back().profile.flowCount, o.base.flowCount);
    expectSynthInvariants(steps, "flash");
}

TEST(Synth, FlowChurnSweepsInclusive)
{
    FlowChurnOptions o;
    o.base = TrafficProfile::defaults();
    o.fromFlows = 4000.0;
    o.toFlows = 256000.0;
    o.steps = 8;
    auto steps = flowChurnSteps(o);
    ASSERT_EQ(steps.size(), 8u);
    EXPECT_EQ(steps.front().profile.flowCount, 4000u);
    EXPECT_EQ(steps.back().profile.flowCount, 256000u);
    for (std::size_t i = 1; i < steps.size(); ++i) {
        EXPECT_GT(steps[i].profile.flowCount,
                  steps[i - 1].profile.flowCount);
    }
    expectSynthInvariants(steps, "churn");
}

TEST(Synth, MtbrSpikeIsSymmetric)
{
    MtbrSpikeOptions o;
    o.base = TrafficProfile::defaults();
    o.mtbr = 1100.0;
    o.ramp = 2;
    o.hold = 3;
    auto steps = mtbrSpikeSteps(o);
    ASSERT_EQ(steps.size(), 7u);
    for (int i = 1; i <= 4; ++i)
        EXPECT_DOUBLE_EQ(steps[i].profile.mtbr, 1100.0);
    EXPECT_DOUBLE_EQ(steps.back().profile.mtbr, o.base.mtbr);
    // Only the MTBR moves; flows and size stay at base.
    for (const auto &s : steps) {
        EXPECT_EQ(s.profile.flowCount, o.base.flowCount);
        EXPECT_EQ(s.profile.packetSize, o.base.packetSize);
    }
    expectSynthInvariants(steps, "mtbr_spike");
}

TEST(Synth, ScenarioSamplesSumsRepeats)
{
    std::vector<SynthStep> steps = {
        {TrafficProfile::defaults(), 3},
        {TrafficProfile::defaults(), 7}};
    EXPECT_EQ(scenarioSamples(steps), 10u);
    auto composite = defaultComposite(TrafficProfile::defaults());
    EXPECT_GT(scenarioSamples(composite), 100u);
    // The composite opens and closes at the base regime.
    EXPECT_EQ(composite.front().profile,
              TrafficProfile::defaults());
    EXPECT_EQ(composite.back().profile,
              TrafficProfile::defaults());
    expectSynthInvariants(composite, "composite");
}

// ---------------------------------------------------------------
// Scenario DSL
// ---------------------------------------------------------------

Result<std::vector<SynthStep>>
parseText(const std::string &text)
{
    std::istringstream in(text);
    return parseScenario(in);
}

TEST(ScenarioDsl, ParsesEveryDirective)
{
    auto parsed = parseText(
        "# composite stress script\n"
        "base flows=8000 size=512 mtbr=300\n"
        "steady n=5\n"
        "diurnal period=8 cycles=2 amplitude=0.5\n"
        "flash peak=4 ramp=2 hold=3 decay=2\n"
        "churn from=4000 to=64000 steps=8\n"
        "mtbr_spike mtbr=900 ramp=2 hold=3\n"
        "step flows=123 size=128 mtbr=50 repeats=9\n");
    ASSERT_TRUE(parsed) << parsed.status().toString();
    const auto &steps = parsed.value();
    // 1 steady + 16 diurnal + 7 flash + 8 churn + 7 spike + 1 step
    ASSERT_EQ(steps.size(), 40u);
    EXPECT_EQ(steps[0].profile.flowCount, 8000u);
    EXPECT_EQ(steps[0].profile.packetSize, 512u);
    EXPECT_EQ(steps[0].repeats, 5);
    EXPECT_EQ(steps.back().profile.flowCount, 123u);
    EXPECT_EQ(steps.back().repeats, 9);
    expectSynthInvariants(steps, "every-directive");
}

TEST(ScenarioDsl, DirectiveDefaultsApply)
{
    auto parsed = parseText("steady\n");
    ASSERT_TRUE(parsed) << parsed.status().toString();
    ASSERT_EQ(parsed.value().size(), 1u);
    EXPECT_EQ(parsed.value()[0].repeats, 20); // steady default n
    EXPECT_EQ(parsed.value()[0].profile,
              TrafficProfile::defaults());
}

TEST(ScenarioDsl, RejectsMalformedScripts)
{
    const char *bad[] = {
        "",                            // no steps at all
        "base flows=8000\n",           // base alone emits nothing
        "wobble n=5\n",                // unknown directive
        "steady n=5 bogus=1\n",        // unknown key
        "steady n=5 n=6\n",            // duplicate key
        "steady n=abc\n",              // non-numeric value
        "steady n=inf\n",              // non-finite value
        "steady n=0\n",                // below range
        "steady n=2.5\n",              // non-integer count
        "diurnal amplitude=1.5\n",     // amplitude cap
        "diurnal period=1\n",          // degenerate period
        "flash peak=0.5\n",            // peak below base
        "churn from=0\n",              // zero flows
        "step flows=2e9\n",            // flows cap
        "step mtbr=-1\n",              // negative mtbr
        "steady =5\n",                 // empty key
        "steady 5\n",                  // bare token, no key=
    };
    for (const char *script : bad) {
        auto parsed = parseText(script);
        EXPECT_FALSE(parsed) << "accepted: " << script;
    }
}

TEST(ScenarioDsl, EnforcesWholeScenarioStepBudget)
{
    // Each churn lands 4096 steps; 25 of them blow the 100000-step
    // budget even though every line is individually valid.
    std::string script;
    for (int i = 0; i < 25; ++i)
        script += "churn from=1000 to=2000 steps=4096\n";
    auto parsed = parseText(script);
    ASSERT_FALSE(parsed);
    EXPECT_NE(parsed.status().toString().find("exceeds"),
              std::string::npos);
}

TEST(ScenarioDsl, EmitRoundTripsGeneratedScenarios)
{
    // Property: parse -> emit -> parse is the identity, across
    // randomized in-range scripts from every directive family.
    Rng rng(20260808);
    for (int iter = 0; iter < 200; ++iter) {
        std::string script = strf(
            "base flows=%llu size=%llu mtbr=%llu\n",
            (unsigned long long)(1 + rng.uniformInt(
                                         std::uint64_t(999999))),
            (unsigned long long)(64 + rng.uniformInt(
                                          std::uint64_t(9000))),
            (unsigned long long)rng.uniformInt(
                std::uint64_t(2000)));
        int directives =
            1 + static_cast<int>(rng.uniformInt(std::uint64_t(4)));
        for (int d = 0; d < directives; ++d) {
            switch (rng.uniformInt(std::uint64_t(5))) {
              case 0:
                script += strf("steady n=%llu\n",
                               (unsigned long long)(
                                   1 + rng.uniformInt(
                                           std::uint64_t(40))));
                break;
              case 1:
                script += strf(
                    "diurnal period=%llu cycles=%llu "
                    "amplitude=0.%llu\n",
                    (unsigned long long)(2 + rng.uniformInt(
                                                 std::uint64_t(30))),
                    (unsigned long long)(1 + rng.uniformInt(
                                                 std::uint64_t(3))),
                    (unsigned long long)rng.uniformInt(
                        std::uint64_t(99)));
                break;
              case 2:
                script += strf(
                    "flash peak=%llu ramp=%llu hold=%llu "
                    "decay=%llu\n",
                    (unsigned long long)(2 + rng.uniformInt(
                                                 std::uint64_t(9))),
                    (unsigned long long)(1 + rng.uniformInt(
                                                 std::uint64_t(5))),
                    (unsigned long long)(1 + rng.uniformInt(
                                                 std::uint64_t(8))),
                    (unsigned long long)(1 + rng.uniformInt(
                                                 std::uint64_t(5))));
                break;
              case 3:
                script += strf(
                    "churn from=%llu to=%llu steps=%llu\n",
                    (unsigned long long)(1 + rng.uniformInt(
                                                 std::uint64_t(
                                                     99999))),
                    (unsigned long long)(1 + rng.uniformInt(
                                                 std::uint64_t(
                                                     999999))),
                    (unsigned long long)(2 + rng.uniformInt(
                                                 std::uint64_t(
                                                     30))));
                break;
              default:
                script += strf(
                    "mtbr_spike mtbr=%llu ramp=%llu hold=%llu\n",
                    (unsigned long long)rng.uniformInt(
                        std::uint64_t(5000)),
                    (unsigned long long)(1 + rng.uniformInt(
                                                 std::uint64_t(4))),
                    (unsigned long long)(1 + rng.uniformInt(
                                                 std::uint64_t(8))));
                break;
            }
        }
        auto first = parseText(script);
        ASSERT_TRUE(first)
            << script << ": " << first.status().toString();
        std::string canonical = emitScenario(first.value());
        auto second = parseText(canonical);
        ASSERT_TRUE(second)
            << canonical << ": " << second.status().toString();
        ASSERT_EQ(first.value().size(), second.value().size())
            << script;
        for (std::size_t i = 0; i < first.value().size(); ++i) {
            EXPECT_EQ(first.value()[i], second.value()[i])
                << script << " step " << i;
        }
        expectSynthInvariants(first.value(), script);
    }
}

TEST(ScenarioDsl, RandomByteSoupNeverCrashesOrLeaksGarbage)
{
    // Same discipline as the schedule parser's fuzz suite: seeded,
    // deterministic hostile inputs; the property is "no crash, and
    // whatever parses satisfies the range invariants".
    Rng rng(20260807);
    const std::string alphabet =
        "0123456789.-+eE= \t#\n"
        "basestdyflchurnmtbr_spike\\\"\0\x01\x7f"s;
    for (int iter = 0; iter < 500; ++iter) {
        std::string input;
        std::size_t len = rng.uniformInt(std::uint64_t(160));
        for (std::size_t i = 0; i < len; ++i)
            input.push_back(
                alphabet[rng.uniformInt(alphabet.size())]);
        auto parsed = parseText(input);
        if (parsed)
            expectSynthInvariants(parsed.value(), input);
    }
}

TEST(ScenarioDsl, HostileValuesAreRejectedNotAccepted)
{
    // Structured fuzz: valid directive skeletons with mostly-poison
    // values spliced in. Any poisoned line must fail the whole
    // parse (parseScenario is all-or-nothing per script).
    static const char *const poison[] = {
        "nan", "inf", "-inf", "1e999", "1.5.2", "12ab",
        "--5", "+",   ".",    "1e",    "-7",    "\x7f7",
        "2,5",
    };
    static const char *const keys[] = {"flows", "size", "mtbr"};
    Rng rng(777);
    for (int iter = 0; iter < 500; ++iter) {
        bool poisoned = false;
        std::string input = "step";
        std::size_t kvs = 1 + rng.uniformInt(std::uint64_t(3));
        for (std::size_t i = 0; i < kvs && i < 3; ++i) {
            input += ' ';
            input += keys[i];
            input += '=';
            if (rng.uniform() < 0.4) {
                input += poison[rng.uniformInt(
                    std::uint64_t(sizeof(poison) /
                                  sizeof(poison[0])))];
                poisoned = true;
            } else {
                input += strf(
                    "%llu",
                    (unsigned long long)(
                        64 + rng.uniformInt(std::uint64_t(9000))));
            }
        }
        input += '\n';
        auto parsed = parseText(input);
        if (poisoned) {
            EXPECT_FALSE(parsed) << "accepted poison: " << input;
        } else {
            EXPECT_TRUE(parsed)
                << input << ": " << parsed.status().toString();
        }
        if (parsed)
            expectSynthInvariants(parsed.value(), input);
    }
}

} // namespace
} // namespace tomur::traffic
