/**
 * @file
 * Tests for traffic profiles and the packet generator, including the
 * MTBR-targeting property (generated payload match density tracks
 * the configured matches/MB).
 */

#include <gtest/gtest.h>

#include <set>

#include "regex/ruleset.hh"
#include "traffic/generator.hh"

namespace tomur::traffic {
namespace {

TEST(Profile, VectorRoundTrip)
{
    TrafficProfile p = TrafficProfile::defaults();
    auto v = p.toVector();
    ASSERT_EQ(v.size(), 3u);
    EXPECT_DOUBLE_EQ(v[0], 16000.0);
    EXPECT_DOUBLE_EQ(v[1], 1500.0);
    EXPECT_DOUBLE_EQ(v[2], 600.0);
    EXPECT_EQ(p.toString(), "(16000, 1500, 600)");
}

TEST(Profile, WithAttribute)
{
    TrafficProfile p = TrafficProfile::defaults();
    auto q = p.withAttribute(Attribute::FlowCount, 500.5);
    EXPECT_EQ(q.flowCount, 501u); // rounded
    EXPECT_EQ(q.packetSize, p.packetSize);
    auto r = p.withAttribute(Attribute::Mtbr, -5.0);
    EXPECT_DOUBLE_EQ(r.mtbr, 0.0); // clamped
    auto s = p.withAttribute(Attribute::PacketSize, 10.0);
    EXPECT_EQ(s.packetSize, 64u); // floor at minimum frame
}

TEST(Profile, Ranges)
{
    for (int a = 0; a < numAttributes; ++a) {
        auto r = defaultRange(static_cast<Attribute>(a));
        EXPECT_LT(r.min, r.max);
    }
}

TEST(Generator, FlowCountRespected)
{
    TrafficProfile p;
    p.flowCount = 10;
    p.mtbr = 0;
    TrafficGen gen(p, nullptr, 1);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 400; ++i) {
        auto pkt = gen.next();
        auto tuple = pkt.fiveTuple();
        ASSERT_TRUE(tuple);
        seen.insert(tuple->hash());
    }
    EXPECT_EQ(seen.size(), 10u);
}

TEST(Generator, DeterministicAcrossInstances)
{
    TrafficProfile p;
    p.flowCount = 100;
    p.mtbr = 0;
    TrafficGen a(p, nullptr, 7), b(p, nullptr, 7);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(a.next().bytes(), b.next().bytes());
}

TEST(Generator, FrameSizeMatchesProfile)
{
    TrafficProfile p;
    p.packetSize = 512;
    p.mtbr = 0;
    TrafficGen gen(p, nullptr, 2);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(gen.next().size(), 512u);
}

TEST(Generator, MtbrTargetingProperty)
{
    // Property: measured match density tracks the configured MTBR
    // within a factor accounting for multi-event signatures.
    auto rules = regex::defaultRuleSet();
    regex::MultiMatcher matcher(rules);
    for (double target : {100.0, 600.0, 1200.0}) {
        TrafficProfile p;
        p.mtbr = target;
        TrafficGen gen(p, &rules, 3);
        double bytes = 0.0, matches = 0.0;
        for (int i = 0; i < 150; ++i) {
            auto payload = gen.makePayload();
            bytes += static_cast<double>(payload.size());
            matches +=
                static_cast<double>(matcher.countMatches(payload));
        }
        double measured = matches / bytes * 1e6;
        EXPECT_GT(measured, 0.8 * target) << "target " << target;
        EXPECT_LT(measured, 6.0 * target) << "target " << target;
    }
}

TEST(Generator, MtbrMonotone)
{
    auto rules = regex::defaultRuleSet();
    regex::MultiMatcher matcher(rules);
    double prev = -1.0;
    for (double target : {0.0, 200.0, 800.0}) {
        TrafficProfile p;
        p.mtbr = target;
        TrafficGen gen(p, &rules, 5);
        double matches = 0.0;
        for (int i = 0; i < 100; ++i)
            matches += static_cast<double>(
                matcher.countMatches(gen.makePayload()));
        EXPECT_GT(matches, prev);
        prev = matches;
    }
}

TEST(Generator, ZeroMtbrHasNoMatches)
{
    auto rules = regex::defaultRuleSet();
    regex::MultiMatcher matcher(rules);
    TrafficProfile p;
    p.mtbr = 0;
    TrafficGen gen(p, &rules, 9);
    std::uint64_t total = 0;
    for (int i = 0; i < 50; ++i)
        total += matcher.countMatches(gen.makePayload());
    EXPECT_EQ(total, 0u);
}

TEST(Generator, RequiresRulesetForMtbr)
{
    TrafficProfile p;
    p.mtbr = 500;
    EXPECT_DEATH(TrafficGen(p, nullptr, 1), "ruleset");
}

TEST(Generator, FlowTuplesStable)
{
    TrafficProfile p;
    p.mtbr = 0;
    TrafficGen a(p, nullptr, 1), b(p, nullptr, 99);
    // flowTuple() is seed-independent: profiles share flow identity.
    for (std::uint64_t i = 0; i < 20; ++i)
        EXPECT_EQ(a.flowTuple(i), b.flowTuple(i));
}

} // namespace
} // namespace tomur::traffic
