/**
 * @file
 * Tests for the crypto accelerator extension: ChaCha20 correctness
 * (RFC 7539 test vector), device round trips, the IPsecGateway NF,
 * and the queue model's applicability to the crypto engine.
 */

#include <gtest/gtest.h>

#include "framework/accel_dev.hh"
#include "framework/profile.hh"
#include "nfs/bench_nfs.hh"
#include "nfs/registry.hh"
#include "regex/ruleset.hh"
#include "sim/testbed.hh"
#include "tomur/profiler.hh"

namespace tomur {
namespace {

namespace fw = framework;

fw::CryptoDevice::Key
rfc7539Key()
{
    // RFC 7539 §2.3.2: key bytes 00 01 02 ... 1f, nonce
    // 00:00:00:09 00:00:00:4a 00:00:00:00 (words little-endian).
    fw::CryptoDevice::Key key;
    for (int w = 0; w < 8; ++w) {
        key.words[w] = 0;
        for (int b = 3; b >= 0; --b)
            key.words[w] = (key.words[w] << 8) |
                           static_cast<std::uint32_t>(4 * w + b);
    }
    key.nonce[0] = 0x09000000;
    key.nonce[1] = 0x4a000000;
    key.nonce[2] = 0x00000000;
    return key;
}

TEST(ChaCha20, Rfc7539BlockVector)
{
    std::uint8_t out[64];
    fw::CryptoDevice::block(rfc7539Key(), 1, out);
    const std::uint8_t expected[16] = {
        0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15,
        0x50, 0x0f, 0xdd, 0x1f, 0xa3, 0x20, 0x71, 0xc4};
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(out[i], expected[i]) << "byte " << i;
}

TEST(ChaCha20, RoundTrip)
{
    Rng rng(9);
    fw::CryptoDevice::Key key;
    for (int iter = 0; iter < 20; ++iter) {
        std::vector<std::uint8_t> data(1 + rng.uniformInt(500u));
        for (auto &b : data)
            b = static_cast<std::uint8_t>(rng.uniformInt(256u));
        auto cipher = fw::CryptoDevice::chacha20(data, key, 7);
        EXPECT_NE(cipher, data);
        auto plain = fw::CryptoDevice::chacha20(cipher, key, 7);
        EXPECT_EQ(plain, data);
    }
}

TEST(ChaCha20, CounterAndKeyMatter)
{
    fw::CryptoDevice::Key a, b;
    b.words[0] ^= 1;
    std::vector<std::uint8_t> data(100, 0x55);
    EXPECT_NE(fw::CryptoDevice::chacha20(data, a, 1),
              fw::CryptoDevice::chacha20(data, a, 2));
    EXPECT_NE(fw::CryptoDevice::chacha20(data, a, 1),
              fw::CryptoDevice::chacha20(data, b, 1));
}

TEST(CryptoDevice, RecordsRequests)
{
    fw::CryptoDevice dev;
    fw::CostContext ctx;
    std::vector<std::uint8_t> data(256, 1);
    auto out = dev.encrypt(data, ctx);
    EXPECT_EQ(out.size(), data.size());
    ASSERT_EQ(ctx.offloads().size(), 1u);
    EXPECT_EQ(ctx.offloads()[0].kind, hw::AccelKind::Crypto);
    EXPECT_DOUBLE_EQ(ctx.offloads()[0].bytes, 256.0);

    // Non-functional mode skips work and accounting.
    fw::CostContext off;
    off.setAccelFunctional(false);
    auto same = dev.encrypt(data, off);
    EXPECT_EQ(same, data);
    EXPECT_TRUE(off.offloads().empty());
}

struct Fixture
{
    Fixture() : rules(regex::defaultRuleSet()), bed(hw::blueField2(),
                                                    noiseless())
    {
        dev.regex = std::make_shared<fw::RegexDevice>(rules);
        dev.compression = std::make_shared<fw::CompressionDevice>();
        dev.crypto = std::make_shared<fw::CryptoDevice>();
    }
    static sim::TestbedOptions
    noiseless()
    {
        sim::TestbedOptions o;
        o.noiseSigma = 0.0;
        return o;
    }
    regex::RuleSet rules;
    fw::DeviceSet dev;
    sim::Testbed bed;
};

TEST(IpsecNf, EncryptsPayloadInPlace)
{
    Fixture f;
    auto nf = nfs::makeIpsecGateway(f.dev);
    fw::CostContext ctx;
    net::FiveTuple t;
    t.srcIp = net::Ipv4Addr::fromOctets(10, 0, 0, 1);
    t.dstIp = net::Ipv4Addr::fromOctets(10, 0, 0, 2);
    t.srcPort = 1000;
    t.dstPort = 2000;
    std::vector<std::uint8_t> payload(200, 0x41);
    auto pkt = net::PacketBuilder::build(t, payload);
    auto before = pkt.bytes();
    ASSERT_EQ(nf->processPacket(pkt, ctx), fw::Verdict::Forward);
    // Payload transformed, headers intact.
    EXPECT_NE(pkt.bytes(), before);
    EXPECT_EQ(*pkt.fiveTuple(), t);

    // Same flow, next packet: different keystream (sequence moved).
    auto pkt2 = net::PacketBuilder::build(t, payload);
    nf->processPacket(pkt2, ctx);
    EXPECT_NE(pkt.bytes(), pkt2.bytes());
}

TEST(IpsecNf, WorkloadUsesCryptoOnly)
{
    Fixture f;
    auto nf = nfs::makeIpsecGateway(f.dev);
    traffic::TrafficProfile p;
    p.flowCount = 256;
    auto w = fw::profileWorkload(*nf, p, &f.rules);
    EXPECT_TRUE(w.usesAccel(hw::AccelKind::Crypto));
    EXPECT_FALSE(w.usesAccel(hw::AccelKind::Regex));
    EXPECT_FALSE(w.usesAccel(hw::AccelKind::Compression));
    EXPECT_NEAR(
        w.accelUse(hw::AccelKind::Crypto).requestsPerPacket, 1.0,
        1e-9);
}

TEST(IpsecNf, CryptoContentionDegrades)
{
    Fixture f;
    auto nf = nfs::makeIpsecGateway(f.dev);
    auto w = fw::profileWorkload(
        *nf, traffic::TrafficProfile::defaults(), &f.rules);
    double solo = f.bed.runSolo(w).truthThroughput;
    EXPECT_GT(solo, 100e3);

    nfs::CryptoBenchConfig cfg;
    cfg.requestBytes = 16000;
    auto bench = nfs::makeCryptoBench(f.dev, cfg); // closed loop
    auto wb = fw::profileWorkload(
        *bench, traffic::TrafficProfile{16, 1500, 0.0}, &f.rules);
    auto ms = f.bed.run({w, wb});
    EXPECT_LT(ms[0].truthThroughput, solo * 0.8);
}

TEST(IpsecNf, TomurModelsCryptoAccelerator)
{
    // The queue model carries over to the crypto engine (§4.1.1
    // "other accelerators"): calibrate on IPsecGateway and predict
    // under crypto-bench contention.
    Fixture f;
    core::BenchLibrary lib(f.bed, f.dev, f.rules);
    core::TomurTrainer trainer(lib);
    auto defaults = traffic::TrafficProfile::defaults();
    auto nf = nfs::makeIpsecGateway(f.dev);
    core::TrainOptions opts;
    opts.adaptive.quota = 60;
    auto model = trainer.train(*nf, defaults, opts);
    ASSERT_TRUE(model.accelModel(hw::AccelKind::Crypto).has_value());
    EXPECT_FALSE(model.accelModel(hw::AccelKind::Regex).has_value());

    const auto &bench =
        lib.accelBench(hw::AccelKind::Crypto, 150e3, 24000.0);
    auto ms = f.bed.run(
        {trainer.workloadOf(*nf, defaults), bench.workload});
    double solo =
        f.bed.runSolo(trainer.workloadOf(*nf, defaults))
            .truthThroughput;
    double pred = model.predict({bench.level}, defaults, solo);
    EXPECT_NEAR(pred / ms[0].truthThroughput, 1.0, 0.12);
}

} // namespace
} // namespace tomur
