/**
 * @file
 * Functional tests for the network functions: each NF genuinely
 * transforms/classifies packets, plus catalog and LPM substrate
 * coverage.
 */

#include <gtest/gtest.h>

#include "framework/profile.hh"
#include "nfs/bench_nfs.hh"
#include "nfs/common_elements.hh"
#include "nfs/flowstats.hh"
#include "nfs/lpm.hh"
#include "nfs/registry.hh"
#include "nfs/synthetic.hh"
#include "regex/generator.hh"
#include "regex/ruleset.hh"
#include "traffic/generator.hh"

namespace tomur::nfs {
namespace {

namespace fw = framework;

fw::DeviceSet
devices()
{
    fw::DeviceSet dev;
    dev.regex =
        std::make_shared<fw::RegexDevice>(regex::defaultRuleSet());
    dev.compression = std::make_shared<fw::CompressionDevice>();
        dev.crypto = std::make_shared<fw::CryptoDevice>();
    return dev;
}

net::Packet
packetFor(std::uint16_t src_port, std::size_t payload_len = 64,
          std::uint8_t fill = 0x80)
{
    net::FiveTuple t;
    t.srcIp = net::Ipv4Addr::fromOctets(10, 1, 2, 3);
    t.dstIp = net::Ipv4Addr::fromOctets(192, 168, 9, 9);
    t.srcPort = src_port;
    t.dstPort = 443;
    std::vector<std::uint8_t> pl(payload_len, fill);
    return net::PacketBuilder::build(t, pl);
}

TEST(Lpm, LongestPrefixWins)
{
    LpmTable t;
    t.insert(net::Ipv4Addr::fromOctets(10, 0, 0, 0), 8, 1);
    t.insert(net::Ipv4Addr::fromOctets(10, 1, 0, 0), 16, 2);
    t.insert(net::Ipv4Addr::fromOctets(10, 1, 2, 0), 24, 3);
    std::size_t steps = 0;
    EXPECT_EQ(*t.lookup(net::Ipv4Addr::fromOctets(10, 1, 2, 9), steps),
              3u);
    EXPECT_EQ(*t.lookup(net::Ipv4Addr::fromOctets(10, 1, 9, 9), steps),
              2u);
    EXPECT_EQ(*t.lookup(net::Ipv4Addr::fromOctets(10, 9, 9, 9), steps),
              1u);
    EXPECT_FALSE(
        t.lookup(net::Ipv4Addr::fromOctets(11, 0, 0, 1), steps));
}

TEST(Lpm, DefaultRouteCatchesAll)
{
    LpmTable t = LpmTable::synthetic(100);
    std::size_t steps = 0;
    auto hop = t.lookup(net::Ipv4Addr::fromOctets(1, 2, 3, 4), steps);
    ASSERT_TRUE(hop);
    EXPECT_GE(steps, 1u);
}

TEST(FlowStatsNf, CountsPerFlow)
{
    FlowStatsElement el;
    fw::CostContext ctx;
    auto p1 = packetFor(100);
    auto p2 = packetFor(200);
    el.process(p1, ctx);
    el.process(p1, ctx);
    el.process(p2, ctx);
    const auto *e1 = el.peek(*p1.fiveTuple());
    const auto *e2 = el.peek(*p2.fiveTuple());
    ASSERT_NE(e1, nullptr);
    ASSERT_NE(e2, nullptr);
    EXPECT_EQ(e1->packets, 2u);
    EXPECT_EQ(e2->packets, 1u);
    EXPECT_EQ(e1->bytes, 2 * p1.size());
    EXPECT_EQ(el.flowsTracked(), 2u);
}

TEST(NatNf, RewritesConsistently)
{
    auto nf = makeNat();
    fw::CostContext ctx;
    auto p1 = packetFor(1111);
    auto p1_again = packetFor(1111);
    auto p2 = packetFor(2222);
    ASSERT_EQ(nf->processPacket(p1, ctx), fw::Verdict::Forward);
    ASSERT_EQ(nf->processPacket(p1_again, ctx), fw::Verdict::Forward);
    ASSERT_EQ(nf->processPacket(p2, ctx), fw::Verdict::Forward);

    auto t1 = *p1.fiveTuple();
    auto t1a = *p1_again.fiveTuple();
    auto t2 = *p2.fiveTuple();
    // Same flow -> same binding; different flow -> different port.
    EXPECT_EQ(t1, t1a);
    EXPECT_NE(t1.srcPort, t2.srcPort);
    // External address space applied.
    EXPECT_EQ(t1.srcIp.toString().substr(0, 7), "100.64.");
    EXPECT_TRUE(p1.ipv4ChecksumOk());
}

TEST(NidsNf, BlocksAlertTraffic)
{
    auto dev = devices();
    auto nf = makeNids(dev);
    fw::CostContext ctx;

    // Benign payload passes.
    auto benign = packetFor(1, 200, 0x81);
    EXPECT_EQ(nf->processPacket(benign, ctx), fw::Verdict::Forward);

    // Payload carrying an alert-rule signature is dropped. Rule ids
    // in kAlertMask include bittorrent (id 3).
    Rng rng(1);
    auto pat = dev.regex->matcher().patterns()[3].root->clone();
    auto sig = regex::generateMatch(*pat, rng);
    std::vector<std::uint8_t> payload(300, 0x82);
    std::copy(sig.begin(), sig.end(), payload.begin() + 10);
    net::FiveTuple t = *benign.fiveTuple();
    auto evil = net::PacketBuilder::build(t, payload);
    EXPECT_EQ(nf->processPacket(evil, ctx), fw::Verdict::Drop);
}

TEST(PacketFilterNf, DropsOnAnyMatch)
{
    auto dev = devices();
    auto nf = makePacketFilter(dev);
    fw::CostContext ctx;
    auto benign = packetFor(1, 128, 0x90);
    EXPECT_EQ(nf->processPacket(benign, ctx), fw::Verdict::Forward);

    std::string sig = "ssh-2.0-openssh_8";
    std::vector<std::uint8_t> payload(sig.begin(), sig.end());
    auto evil =
        net::PacketBuilder::build(*benign.fiveTuple(), payload);
    EXPECT_EQ(nf->processPacket(evil, ctx), fw::Verdict::Drop);
}

TEST(IpRouterNf, ForwardsAndDecrementsTtl)
{
    auto nf = makeIpRouter();
    fw::CostContext ctx;
    auto pkt = packetFor(5);
    auto ttl_before = pkt.ipv4()->ttl;
    ASSERT_EQ(nf->processPacket(pkt, ctx), fw::Verdict::Forward);
    EXPECT_EQ(pkt.ipv4()->ttl, ttl_before - 1);
    EXPECT_TRUE(pkt.ipv4ChecksumOk());
}

TEST(IpTunnelNf, MarksFragments)
{
    auto nf = makeIpTunnel();
    fw::CostContext ctx;
    auto big = packetFor(5, 1400);
    ASSERT_EQ(nf->processPacket(big, ctx), fw::Verdict::Forward);
    EXPECT_TRUE(big.ipv4()->moreFragments());

    auto small = packetFor(6, 100);
    ASSERT_EQ(nf->processPacket(small, ctx), fw::Verdict::Forward);
    EXPECT_FALSE(small.ipv4()->moreFragments());
}

TEST(AclNf, DeterministicVerdicts)
{
    auto nf = makeAcl();
    fw::CostContext ctx;
    int drops = 0, total = 0;
    for (std::uint16_t p = 0; p < 300; ++p) {
        auto pkt = packetFor(1000 + p);
        ++total;
        if (nf->processPacket(pkt, ctx) == fw::Verdict::Drop)
            ++drops;
    }
    // Same packets replay to identical verdicts.
    auto nf2 = makeAcl();
    int drops2 = 0;
    for (std::uint16_t p = 0; p < 300; ++p) {
        auto pkt = packetFor(1000 + p);
        if (nf2->processPacket(pkt, ctx) == fw::Verdict::Drop)
            ++drops2;
    }
    EXPECT_EQ(drops, drops2);
    EXPECT_LT(drops, total); // not everything denied
}

TEST(Catalog, AllEntriesInstantiate)
{
    auto dev = devices();
    for (const auto &info : catalog()) {
        auto nf = makeByName(info.name, dev);
        ASSERT_NE(nf, nullptr) << info.name;
        EXPECT_EQ(nf->name(), info.name);
        // Process a packet without crashing.
        fw::CostContext ctx;
        auto pkt = packetFor(7, 256, 0x85);
        nf->processPacket(pkt, ctx);
        // Regex usage flag matches profiled behaviour.
        traffic::TrafficProfile p;
        p.flowCount = 64;
        auto rules = regex::defaultRuleSet();
        auto w = fw::profileWorkload(*nf, p, &rules);
        EXPECT_EQ(w.usesAccel(hw::AccelKind::Regex), info.usesRegex)
            << info.name;
        EXPECT_EQ(w.usesAccel(hw::AccelKind::Compression),
                  info.usesCompression)
            << info.name;
    }
}

TEST(Catalog, EvaluationSetIsNineKnownNfs)
{
    auto names = evaluationNfNames();
    EXPECT_EQ(names.size(), 9u);
    auto dev = devices();
    for (const auto &n : names)
        EXPECT_NE(makeByName(n, dev), nullptr);
}

TEST(BenchNfs, MemBenchPacing)
{
    MemBenchConfig cfg;
    cfg.targetAccessRate = 32e6;
    cfg.accessesPerIteration = 64;
    auto nf = makeMemBench(cfg);
    EXPECT_DOUBLE_EQ(nf->pacedRate(), 32e6 / 64);

    traffic::TrafficProfile p;
    p.flowCount = 16;
    p.mtbr = 0;
    auto w = fw::profileWorkload(*nf, p, nullptr);
    EXPECT_NEAR(w.llcReadsPerPacket + w.llcWritesPerPacket, 64.0,
                1e-6);
    EXPECT_NEAR(w.wssBytes, cfg.wssBytes, cfg.wssBytes * 0.01);
}

TEST(BenchNfs, StreamModeHasLowReuse)
{
    MemBenchConfig stream;
    stream.mode = MemAccessMode::Stream;
    MemBenchConfig random;
    random.mode = MemAccessMode::Random;
    traffic::TrafficProfile p;
    p.flowCount = 16;
    p.mtbr = 0;
    auto ws = fw::profileWorkload(*makeMemBench(stream), p, nullptr);
    auto wr = fw::profileWorkload(*makeMemBench(random), p, nullptr);
    EXPECT_LT(ws.reuse, 0.3);
    EXPECT_GT(wr.reuse, 0.8);
}

TEST(BenchNfs, RegexBenchConfiguration)
{
    auto dev = devices();
    RegexBenchConfig cfg;
    cfg.requestRate = 250e3;
    cfg.queues = 2;
    auto nf = makeRegexBench(dev, cfg);
    EXPECT_DOUBLE_EQ(nf->pacedRate(), 250e3);
    EXPECT_EQ(nf->queueCount(hw::AccelKind::Regex), 2);
}

TEST(SyntheticNfs, PatternsApplied)
{
    auto dev = devices();
    auto p = makeSyntheticNf1(dev, fw::ExecutionPattern::Pipeline);
    auto r =
        makeSyntheticNf1(dev, fw::ExecutionPattern::RunToCompletion);
    EXPECT_EQ(p->pattern(), fw::ExecutionPattern::Pipeline);
    EXPECT_EQ(r->pattern(), fw::ExecutionPattern::RunToCompletion);

    traffic::TrafficProfile tp;
    tp.flowCount = 128;
    auto rules = regex::defaultRuleSet();
    auto w2 = fw::profileWorkload(
        *makeSyntheticNf2(dev, fw::ExecutionPattern::Pipeline), tp,
        &rules);
    EXPECT_TRUE(w2.usesAccel(hw::AccelKind::Regex));
    EXPECT_TRUE(w2.usesAccel(hw::AccelKind::Compression));
}

} // namespace
} // namespace tomur::nfs
