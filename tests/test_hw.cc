/**
 * @file
 * Tests for the hardware model: cache sharing fixed point, DRAM
 * congestion, round-robin accelerator solver vs discrete-event
 * simulation, performance counters.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "hw/accel.hh"
#include "hw/accel_des.hh"
#include "hw/cache.hh"
#include "hw/config.hh"
#include "hw/counters.hh"
#include "hw/dram.hh"

namespace tomur::hw {
namespace {

constexpr double MB = 1024.0 * 1024.0;

TEST(Config, Factories)
{
    NicConfig bf2 = blueField2();
    EXPECT_EQ(bf2.cores, 8);
    EXPECT_TRUE(bf2.accelerator(AccelKind::Regex).present);
    EXPECT_TRUE(bf2.accelerator(AccelKind::Compression).present);

    NicConfig pen = pensando();
    EXPECT_NE(pen.name, bf2.name);
    EXPECT_FALSE(pen.accelerator(AccelKind::Compression).present);
    EXPECT_STREQ(accelName(AccelKind::Regex), "regex");
}

TEST(Cache, SoloFitsInCache)
{
    std::vector<CacheWorkload> w = {{1 * MB, 10e6, 1.0}};
    auto r = solveCacheSharing(6 * MB, 0.02, w);
    EXPECT_NEAR(r[0].occupancyBytes, 1 * MB, 1.0);
    EXPECT_DOUBLE_EQ(r[0].missRatio, 0.02);
}

TEST(Cache, SoloExceedsCache)
{
    std::vector<CacheWorkload> w = {{12 * MB, 10e6, 1.0}};
    auto r = solveCacheSharing(6 * MB, 0.02, w);
    EXPECT_NEAR(r[0].occupancyBytes, 6 * MB, 1e4);
    EXPECT_NEAR(r[0].missRatio, 0.5, 0.01);
}

TEST(Cache, AllFitNoContention)
{
    std::vector<CacheWorkload> w = {{1 * MB, 50e6, 1.0},
                                    {2 * MB, 5e6, 1.0}};
    auto r = solveCacheSharing(6 * MB, 0.02, w);
    EXPECT_DOUBLE_EQ(r[0].missRatio, 0.02);
    EXPECT_DOUBLE_EQ(r[1].missRatio, 0.02);
}

TEST(Cache, CompetitorWssRaisesMissRatio)
{
    // Property: the victim's miss ratio rises monotonically with
    // competitor working-set size.
    double prev = 0.0;
    for (double comp_wss : {2.0, 6.0, 10.0, 20.0, 40.0}) {
        std::vector<CacheWorkload> w = {{4 * MB, 20e6, 1.0},
                                        {comp_wss * MB, 20e6, 1.0}};
        auto r = solveCacheSharing(6 * MB, 0.02, w);
        EXPECT_GE(r[0].missRatio, prev - 1e-9)
            << "comp_wss=" << comp_wss;
        prev = r[0].missRatio;
    }
    EXPECT_GT(prev, 0.1); // big competitor hurts noticeably
}

TEST(Cache, CompetitorRateRaisesMissRatio)
{
    double prev = 0.0;
    for (double rate : {1e6, 10e6, 40e6, 100e6}) {
        std::vector<CacheWorkload> w = {{4 * MB, 20e6, 1.0},
                                        {12 * MB, rate, 1.0}};
        auto r = solveCacheSharing(6 * MB, 0.02, w);
        EXPECT_GE(r[0].missRatio, prev - 1e-9) << "rate=" << rate;
        prev = r[0].missRatio;
    }
}

TEST(Cache, OccupanciesWithinCapacity)
{
    std::vector<CacheWorkload> w = {{8 * MB, 30e6, 1.0},
                                    {10 * MB, 10e6, 1.0},
                                    {4 * MB, 50e6, 0.5}};
    auto r = solveCacheSharing(6 * MB, 0.02, w);
    double total = 0.0;
    for (const auto &s : r) {
        EXPECT_GE(s.occupancyBytes, 0.0);
        total += s.occupancyBytes;
    }
    EXPECT_LE(total, 6 * MB * 1.01);
}

TEST(Cache, StreamingNeverHits)
{
    std::vector<CacheWorkload> w = {{4 * MB, 20e6, 0.0}};
    auto r = solveCacheSharing(6 * MB, 0.02, w);
    EXPECT_DOUBLE_EQ(r[0].missRatio, 1.0);
}

TEST(Dram, FactorMonotoneConvex)
{
    double peak = 4e9;
    EXPECT_DOUBLE_EQ(dramLatencyFactor(0, peak), 1.0);
    double prev = 1.0, prev_slope = 0.0;
    for (double d = 0.5e9; d <= 4e9; d += 0.5e9) {
        double f = dramLatencyFactor(d, peak);
        EXPECT_GE(f, prev);
        double slope = f - prev;
        EXPECT_GE(slope, prev_slope - 1e-9); // convex
        prev = f;
        prev_slope = slope;
    }
    // Saturates, never explodes to infinity.
    EXPECT_LT(dramLatencyFactor(100e9, peak), 100.0);
}

TEST(Accel, SingleClosedQueueGetsFullRate)
{
    std::vector<AccelQueue> qs = {{1e-6, 0.0, true}};
    auto r = solveRoundRobin(qs);
    EXPECT_NEAR(r[0].throughput, 1e6, 1e3);
    EXPECT_TRUE(r[0].backlogged);
    EXPECT_NEAR(r[0].sojournTime, 1e-6, 1e-9);
}

TEST(Accel, OpenUnderloadedKeepsOfferedRate)
{
    std::vector<AccelQueue> qs = {{1e-6, 2e5, false},
                                  {2e-6, 1e5, false}};
    auto r = solveRoundRobin(qs);
    EXPECT_DOUBLE_EQ(r[0].throughput, 2e5);
    EXPECT_DOUBLE_EQ(r[1].throughput, 1e5);
    EXPECT_FALSE(r[0].backlogged);
}

TEST(Accel, TwoClosedQueuesShareEqually)
{
    // Equal request rates regardless of service times (RR queue-level
    // fairness, paper §4.1.1).
    std::vector<AccelQueue> qs = {{1e-6, 0.0, true},
                                  {3e-6, 0.0, true}};
    auto r = solveRoundRobin(qs);
    EXPECT_NEAR(r[0].throughput, r[1].throughput, 1.0);
    EXPECT_NEAR(r[0].throughput, 1.0 / 4e-6, 1e3);
}

TEST(Accel, LinearDeclineThenEquilibrium)
{
    // Fig. 4's two observations: linear throughput decline of the
    // closed-loop NF as the open competitor's rate rises, then a
    // plateau at the equilibrium point.
    const double s_nf = 1e-6, s_bench = 1e-6;
    double equilibrium = 1.0 / (s_nf + s_bench);
    std::vector<double> thr;
    for (double rate = 0; rate <= 1e6; rate += 1e5) {
        std::vector<AccelQueue> qs = {{s_nf, 0.0, true},
                                      {s_bench, rate, false}};
        auto r = solveRoundRobin(qs);
        thr.push_back(r[0].throughput);
    }
    // Linear region: slope approx -1 (1 - rate*s)/s.
    double slope01 = thr[1] - thr[0];
    double slope12 = thr[2] - thr[1];
    EXPECT_NEAR(slope01, -1e5, 2e3);
    EXPECT_NEAR(slope12, -1e5, 2e3);
    // Plateau: beyond equilibrium arrival rate, throughput constant.
    EXPECT_NEAR(thr.back(), equilibrium, 1e3);
    EXPECT_NEAR(thr[thr.size() - 2], equilibrium, 1e3);
}

TEST(Accel, AllOpenOverloadBacklogsHeaviest)
{
    std::vector<AccelQueue> qs = {{1e-6, 9.5e5, false},
                                  {1e-6, 1e5, false}};
    auto r = solveRoundRobin(qs);
    EXPECT_TRUE(r[0].backlogged);
    EXPECT_FALSE(r[1].backlogged);
    EXPECT_DOUBLE_EQ(r[1].throughput, 1e5);
    EXPECT_NEAR(r[0].throughput, 9e5, 1e4);
    // Server fully utilised.
    double util = r[0].throughput * 1e-6 + r[1].throughput * 1e-6;
    EXPECT_NEAR(util, 1.0, 0.01);
}

struct RrCase
{
    std::vector<AccelQueue> queues;
    const char *name;
};

class AccelDesAgreement : public ::testing::TestWithParam<RrCase>
{
};

TEST_P(AccelDesAgreement, AnalyticMatchesDes)
{
    const auto &qs = GetParam().queues;
    auto analytic = solveRoundRobin(qs);
    DesOptions opts;
    opts.duration = 2.0;
    opts.warmup = 0.2;
    auto des = simulateRoundRobin(qs, opts);
    for (std::size_t i = 0; i < qs.size(); ++i) {
        double a = analytic[i].throughput;
        double d = des[i].throughput;
        ASSERT_GT(d, 0.0);
        EXPECT_NEAR(a / d, 1.0, 0.05)
            << GetParam().name << " queue " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    RoundRobin, AccelDesAgreement,
    ::testing::Values(
        RrCase{{{1e-6, 0.0, true}}, "solo_closed"},
        RrCase{{{1e-6, 0.0, true}, {1e-6, 0.0, true}}, "two_closed"},
        RrCase{{{1e-6, 0.0, true}, {3e-6, 0.0, true}},
               "two_closed_uneven"},
        RrCase{{{1e-6, 0.0, true}, {1e-6, 3e5, false}},
               "closed_vs_light_open"},
        RrCase{{{1e-6, 0.0, true}, {1e-6, 2e6, false}},
               "closed_vs_heavy_open"},
        RrCase{{{2e-6, 1e5, false}, {1e-6, 2e5, false}},
               "all_open_light"},
        RrCase{{{1e-6, 9e5, false}, {1e-6, 3e5, false}},
               "open_overload"},
        RrCase{{{1e-6, 0.0, true},
                {2e-6, 0.0, true},
                {0.5e-6, 4e5, false}},
               "three_mixed"}),
    [](const ::testing::TestParamInfo<RrCase> &info) {
        return info.param.name;
    });

TEST(AccelDes, SojournGrowsWithContention)
{
    std::vector<AccelQueue> solo = {{1e-6, 0.0, true}};
    std::vector<AccelQueue> shared = {{1e-6, 0.0, true},
                                      {2e-6, 0.0, true}};
    auto a = simulateRoundRobin(solo);
    auto b = simulateRoundRobin(shared);
    EXPECT_GT(b[0].meanSojourn, a[0].meanSojourn * 2);
}

TEST(AccelDes, ExponentialServiceMatchesMeanRate)
{
    // With exponential service times the long-run throughput of a
    // solo closed-loop queue still equals 1/mean.
    std::vector<AccelQueue> qs = {{2e-6, 0.0, true}};
    DesOptions opts;
    opts.duration = 2.0;
    opts.warmup = 0.2;
    opts.exponentialService = true;
    auto res = simulateRoundRobin(qs, opts);
    EXPECT_NEAR(res[0].throughput, 5e5, 5e5 * 0.05);
}

TEST(AccelDes, NoArrivalsNoCompletions)
{
    std::vector<AccelQueue> qs = {{1e-6, 0.0, false}};
    auto res = simulateRoundRobin(qs);
    EXPECT_EQ(res[0].completions, 0u);
}

TEST(DramDeath, BadPeakPanics)
{
    EXPECT_DEATH(dramLatencyFactor(1e9, 0.0), "peak");
}

TEST(Counters, VectorOrderMatchesNames)
{
    PerfCounters c;
    c.ipc = 1;
    c.instrRetired = 2;
    c.l2ReadRate = 3;
    c.l2WriteRate = 4;
    c.memReadRate = 5;
    c.memWriteRate = 6;
    c.wssBytes = 7;
    auto v = c.toVector();
    ASSERT_EQ(v.size(), PerfCounters::featureNames().size());
    for (std::size_t i = 0; i < v.size(); ++i)
        EXPECT_DOUBLE_EQ(v[i], double(i + 1));
    EXPECT_DOUBLE_EQ(c.cacheAccessRate(), 7.0);
}

TEST(Counters, Aggregation)
{
    PerfCounters a, b;
    a.l2ReadRate = 10;
    a.wssBytes = 100;
    b.l2ReadRate = 5;
    b.wssBytes = 50;
    PerfCounters s = a + b;
    EXPECT_DOUBLE_EQ(s.l2ReadRate, 15);
    EXPECT_DOUBLE_EQ(s.wssBytes, 150);
}

} // namespace
} // namespace tomur::hw
