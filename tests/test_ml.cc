/**
 * @file
 * Tests for the ML library: dataset handling, regression trees,
 * gradient boosting, linear regression, metrics.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "ml/dataset.hh"
#include "ml/gbr.hh"
#include "ml/linreg.hh"
#include "ml/metrics.hh"
#include "ml/tree.hh"

namespace tomur::ml {
namespace {

Dataset
makeDataset(int n, std::uint64_t seed,
            double (*f)(double, double), double noise = 0.0)
{
    Rng rng(seed);
    Dataset d({"a", "b"});
    for (int i = 0; i < n; ++i) {
        double a = rng.uniform(0, 10);
        double b = rng.uniform(-5, 5);
        d.add({a, b}, f(a, b) + noise * rng.normal());
    }
    return d;
}

double
piecewise(double a, double b)
{
    // Piece-wise linear with an interaction, like the memory model's
    // target function.
    return (a < 5 ? 3 * a : 15.0) + (b > 0 ? 2 * b : 0.0);
}

double
linearFn(double a, double b)
{
    return 2.0 + 3.0 * a - 1.5 * b;
}

TEST(Dataset, AddAndArity)
{
    Dataset d({"x", "y"});
    d.add({1, 2}, 3);
    EXPECT_EQ(d.size(), 1u);
    EXPECT_EQ(d.numFeatures(), 2u);
    EXPECT_DOUBLE_EQ(d.label(0), 3.0);
    EXPECT_DEATH(d.add({1}, 0), "arity");
}

TEST(Dataset, SplitPreservesAll)
{
    Dataset d = makeDataset(100, 1, linearFn);
    Rng rng(2);
    auto [train, test] = d.split(0.3, rng);
    EXPECT_EQ(train.size() + test.size(), 100u);
    EXPECT_EQ(test.size(), 30u);
}

TEST(Dataset, AppendMergesRows)
{
    Dataset a = makeDataset(10, 1, linearFn);
    Dataset b = makeDataset(5, 2, linearFn);
    a.append(b);
    EXPECT_EQ(a.size(), 15u);
}

TEST(Tree, FitsConstant)
{
    Dataset d({"x"});
    for (int i = 0; i < 10; ++i)
        d.add({double(i)}, 7.0);
    std::vector<std::size_t> rows{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
    RegressionTree t;
    t.fit(d, d.labels(), rows, TreeParams{});
    EXPECT_DOUBLE_EQ(t.predict({3.0}), 7.0);
    EXPECT_EQ(t.numNodes(), 1u); // no split improves SSE
}

TEST(Tree, FitsStepFunction)
{
    Dataset d({"x"});
    std::vector<std::size_t> rows;
    for (int i = 0; i < 40; ++i) {
        d.add({double(i)}, i < 20 ? 1.0 : 9.0);
        rows.push_back(i);
    }
    RegressionTree t;
    TreeParams p;
    p.maxDepth = 2;
    t.fit(d, d.labels(), rows, p);
    EXPECT_NEAR(t.predict({5.0}), 1.0, 1e-9);
    EXPECT_NEAR(t.predict({30.0}), 9.0, 1e-9);
}

TEST(Tree, RespectsMaxDepth)
{
    Dataset d = makeDataset(200, 3, piecewise);
    std::vector<std::size_t> rows(d.size());
    for (std::size_t i = 0; i < rows.size(); ++i)
        rows[i] = i;
    RegressionTree t;
    TreeParams p;
    p.maxDepth = 4;
    t.fit(d, d.labels(), rows, p);
    EXPECT_LE(t.depth(), 5); // depth counts nodes on path
}

TEST(Gbr, LearnsPiecewiseFunction)
{
    Dataset train = makeDataset(800, 5, piecewise, 0.05);
    Dataset test = makeDataset(200, 6, piecewise);

    GbrParams p;
    p.numTrees = 200;
    GradientBoostingRegressor gbr(p);
    gbr.fit(train);

    std::vector<double> truth, pred;
    for (std::size_t i = 0; i < test.size(); ++i) {
        truth.push_back(test.label(i) + 20.0); // shift away from zero
        pred.push_back(gbr.predict(test.row(i)) + 20.0);
    }
    EXPECT_LT(mape(truth, pred), 2.0);
}

TEST(Gbr, SeedsProduceDifferentModels)
{
    Dataset train = makeDataset(300, 7, piecewise, 0.2);
    GbrParams p1, p2;
    p1.seed = 1;
    p2.seed = 2;
    GradientBoostingRegressor a(p1), b(p2);
    a.fit(train);
    b.fit(train);
    bool differs = false;
    for (double x = 0.5; x < 10; x += 0.7)
        differs |= a.predict({x, 1.0}) != b.predict({x, 1.0});
    EXPECT_TRUE(differs);
}

TEST(Gbr, MoreTreesReduceTrainError)
{
    Dataset train = makeDataset(300, 9, piecewise, 0.0);
    GbrParams small, big;
    small.numTrees = 5;
    big.numTrees = 150;
    small.subsample = 1.0;
    big.subsample = 1.0;
    GradientBoostingRegressor a(small), b(big);
    a.fit(train);
    b.fit(train);
    std::vector<double> truth, pa, pb;
    for (std::size_t i = 0; i < train.size(); ++i) {
        truth.push_back(train.label(i) + 20.0);
        pa.push_back(a.predict(train.row(i)) + 20.0);
        pb.push_back(b.predict(train.row(i)) + 20.0);
    }
    EXPECT_LT(mape(truth, pb), mape(truth, pa));
}

TEST(Gbr, PredictBeforeFitPanics)
{
    GradientBoostingRegressor gbr;
    EXPECT_DEATH(gbr.predict({1.0}), "before fit");
}

TEST(LinReg, RecoversCoefficients)
{
    Dataset d = makeDataset(100, 11, linearFn, 0.0);
    LinearRegression lr;
    lr.fit(d);
    EXPECT_NEAR(lr.intercept(), 2.0, 1e-6);
    ASSERT_EQ(lr.coefficients().size(), 2u);
    EXPECT_NEAR(lr.coefficients()[0], 3.0, 1e-6);
    EXPECT_NEAR(lr.coefficients()[1], -1.5, 1e-6);
}

TEST(LinReg, Fit1d)
{
    LinearRegression lr;
    lr.fit1d({0, 1, 2, 3}, {1, 3, 5, 7});
    EXPECT_NEAR(lr.predict1d(10), 21.0, 1e-6);
    EXPECT_NEAR(lr.intercept(), 1.0, 1e-6);
}

TEST(LinReg, NoisyFitCloseEnough)
{
    Dataset d = makeDataset(500, 13, linearFn, 0.1);
    LinearRegression lr;
    lr.fit(d);
    EXPECT_NEAR(lr.coefficients()[0], 3.0, 0.05);
}

TEST(Tree, AllEqualFeatureValuesNoSplit)
{
    // Equal feature values admit no split point; the tree must stay
    // a single leaf rather than splitting on noise.
    Dataset d({"x"});
    std::vector<std::size_t> rows;
    Rng rng(31);
    for (int i = 0; i < 20; ++i) {
        d.add({5.0}, rng.uniform(0, 10));
        rows.push_back(i);
    }
    RegressionTree t;
    t.fit(d, d.labels(), rows, TreeParams{});
    EXPECT_EQ(t.numNodes(), 1u);
}

TEST(Dataset, SplitEdgeFractions)
{
    Dataset d = makeDataset(10, 21, linearFn);
    Rng rng(1);
    auto [train_all, test_none] = d.split(0.0, rng);
    EXPECT_EQ(train_all.size(), 10u);
    EXPECT_EQ(test_none.size(), 0u);
    auto [train_none, test_all] = d.split(1.0, rng);
    EXPECT_EQ(train_none.size(), 0u);
    EXPECT_EQ(test_all.size(), 10u);
}

TEST(Metrics, Mape)
{
    EXPECT_DOUBLE_EQ(mape({100, 200}, {110, 180}), 10.0);
    EXPECT_DOUBLE_EQ(mape({}, {}), 0.0);
    EXPECT_DEATH(absPctError(0.0, 1.0), "zero ground truth");
}

TEST(Metrics, AccWithin)
{
    std::vector<double> truth = {100, 100, 100, 100};
    std::vector<double> pred = {101, 104, 109, 120};
    EXPECT_DOUBLE_EQ(accWithin(truth, pred, 5), 50.0);
    EXPECT_DOUBLE_EQ(accWithin(truth, pred, 10), 75.0);
}

TEST(Metrics, Rmse)
{
    EXPECT_DOUBLE_EQ(rmse({1, 2}, {1, 2}), 0.0);
    EXPECT_DOUBLE_EQ(rmse({0, 0}, {3, 4}), std::sqrt(12.5));
}

} // namespace
} // namespace tomur::ml
