/**
 * @file
 * Tests for the ML library: dataset handling, regression trees,
 * gradient boosting, linear regression, metrics.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/rng.hh"
#include "ml/dataset.hh"
#include "ml/gbr.hh"
#include "ml/linreg.hh"
#include "ml/metrics.hh"
#include "ml/tree.hh"

namespace tomur::ml {
namespace {

Dataset
makeDataset(int n, std::uint64_t seed,
            double (*f)(double, double), double noise = 0.0)
{
    Rng rng(seed);
    Dataset d({"a", "b"});
    for (int i = 0; i < n; ++i) {
        double a = rng.uniform(0, 10);
        double b = rng.uniform(-5, 5);
        d.add({a, b}, f(a, b) + noise * rng.normal());
    }
    return d;
}

double
piecewise(double a, double b)
{
    // Piece-wise linear with an interaction, like the memory model's
    // target function.
    return (a < 5 ? 3 * a : 15.0) + (b > 0 ? 2 * b : 0.0);
}

double
linearFn(double a, double b)
{
    return 2.0 + 3.0 * a - 1.5 * b;
}

TEST(Dataset, AddAndArity)
{
    Dataset d({"x", "y"});
    d.add({1, 2}, 3);
    EXPECT_EQ(d.size(), 1u);
    EXPECT_EQ(d.numFeatures(), 2u);
    EXPECT_DOUBLE_EQ(d.label(0), 3.0);
    EXPECT_DEATH(d.add({1}, 0), "arity");
}

TEST(Dataset, SplitPreservesAll)
{
    Dataset d = makeDataset(100, 1, linearFn);
    Rng rng(2);
    auto [train, test] = d.split(0.3, rng);
    EXPECT_EQ(train.size() + test.size(), 100u);
    EXPECT_EQ(test.size(), 30u);
}

TEST(Dataset, AppendMergesRows)
{
    Dataset a = makeDataset(10, 1, linearFn);
    Dataset b = makeDataset(5, 2, linearFn);
    a.append(b);
    EXPECT_EQ(a.size(), 15u);
}

TEST(Tree, FitsConstant)
{
    Dataset d({"x"});
    for (int i = 0; i < 10; ++i)
        d.add({double(i)}, 7.0);
    std::vector<std::size_t> rows{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
    RegressionTree t;
    t.fit(d, d.labels(), rows, TreeParams{});
    EXPECT_DOUBLE_EQ(t.predict({3.0}), 7.0);
    EXPECT_EQ(t.numNodes(), 1u); // no split improves SSE
}

TEST(Tree, FitsStepFunction)
{
    Dataset d({"x"});
    std::vector<std::size_t> rows;
    for (int i = 0; i < 40; ++i) {
        d.add({double(i)}, i < 20 ? 1.0 : 9.0);
        rows.push_back(i);
    }
    RegressionTree t;
    TreeParams p;
    p.maxDepth = 2;
    t.fit(d, d.labels(), rows, p);
    EXPECT_NEAR(t.predict({5.0}), 1.0, 1e-9);
    EXPECT_NEAR(t.predict({30.0}), 9.0, 1e-9);
}

TEST(Tree, RespectsMaxDepth)
{
    Dataset d = makeDataset(200, 3, piecewise);
    std::vector<std::size_t> rows(d.size());
    for (std::size_t i = 0; i < rows.size(); ++i)
        rows[i] = i;
    RegressionTree t;
    TreeParams p;
    p.maxDepth = 4;
    t.fit(d, d.labels(), rows, p);
    EXPECT_LE(t.depth(), 5); // depth counts nodes on path
}

TEST(Gbr, LearnsPiecewiseFunction)
{
    Dataset train = makeDataset(800, 5, piecewise, 0.05);
    Dataset test = makeDataset(200, 6, piecewise);

    GbrParams p;
    p.numTrees = 200;
    GradientBoostingRegressor gbr(p);
    gbr.fit(train);

    std::vector<double> truth, pred;
    for (std::size_t i = 0; i < test.size(); ++i) {
        truth.push_back(test.label(i) + 20.0); // shift away from zero
        pred.push_back(gbr.predict(test.row(i)) + 20.0);
    }
    EXPECT_LT(mape(truth, pred), 2.0);
}

TEST(Gbr, SeedsProduceDifferentModels)
{
    Dataset train = makeDataset(300, 7, piecewise, 0.2);
    GbrParams p1, p2;
    p1.seed = 1;
    p2.seed = 2;
    GradientBoostingRegressor a(p1), b(p2);
    a.fit(train);
    b.fit(train);
    bool differs = false;
    for (double x = 0.5; x < 10; x += 0.7)
        differs |= a.predict({x, 1.0}) != b.predict({x, 1.0});
    EXPECT_TRUE(differs);
}

TEST(Gbr, MoreTreesReduceTrainError)
{
    Dataset train = makeDataset(300, 9, piecewise, 0.0);
    GbrParams small, big;
    small.numTrees = 5;
    big.numTrees = 150;
    small.subsample = 1.0;
    big.subsample = 1.0;
    GradientBoostingRegressor a(small), b(big);
    a.fit(train);
    b.fit(train);
    std::vector<double> truth, pa, pb;
    for (std::size_t i = 0; i < train.size(); ++i) {
        truth.push_back(train.label(i) + 20.0);
        pa.push_back(a.predict(train.row(i)) + 20.0);
        pb.push_back(b.predict(train.row(i)) + 20.0);
    }
    EXPECT_LT(mape(truth, pb), mape(truth, pa));
}

TEST(Gbr, PredictBeforeFitPanics)
{
    GradientBoostingRegressor gbr;
    EXPECT_DEATH(gbr.predict({1.0}), "before fit");
}

TEST(LinReg, RecoversCoefficients)
{
    Dataset d = makeDataset(100, 11, linearFn, 0.0);
    LinearRegression lr;
    lr.fit(d);
    EXPECT_NEAR(lr.intercept(), 2.0, 1e-6);
    ASSERT_EQ(lr.coefficients().size(), 2u);
    EXPECT_NEAR(lr.coefficients()[0], 3.0, 1e-6);
    EXPECT_NEAR(lr.coefficients()[1], -1.5, 1e-6);
}

TEST(LinReg, Fit1d)
{
    LinearRegression lr;
    lr.fit1d({0, 1, 2, 3}, {1, 3, 5, 7});
    EXPECT_NEAR(lr.predict1d(10), 21.0, 1e-6);
    EXPECT_NEAR(lr.intercept(), 1.0, 1e-6);
}

TEST(LinReg, NoisyFitCloseEnough)
{
    Dataset d = makeDataset(500, 13, linearFn, 0.1);
    LinearRegression lr;
    lr.fit(d);
    EXPECT_NEAR(lr.coefficients()[0], 3.0, 0.05);
}

TEST(Tree, AllEqualFeatureValuesNoSplit)
{
    // Equal feature values admit no split point; the tree must stay
    // a single leaf rather than splitting on noise.
    Dataset d({"x"});
    std::vector<std::size_t> rows;
    Rng rng(31);
    for (int i = 0; i < 20; ++i) {
        d.add({5.0}, rng.uniform(0, 10));
        rows.push_back(i);
    }
    RegressionTree t;
    t.fit(d, d.labels(), rows, TreeParams{});
    EXPECT_EQ(t.numNodes(), 1u);
}

TEST(Dataset, SplitEdgeFractions)
{
    Dataset d = makeDataset(10, 21, linearFn);
    Rng rng(1);
    auto [train_all, test_none] = d.split(0.0, rng);
    EXPECT_EQ(train_all.size(), 10u);
    EXPECT_EQ(test_none.size(), 0u);
    auto [train_none, test_all] = d.split(1.0, rng);
    EXPECT_EQ(train_none.size(), 0u);
    EXPECT_EQ(test_all.size(), 10u);
}

TEST(Metrics, Mape)
{
    EXPECT_DOUBLE_EQ(mape({100, 200}, {110, 180}), 10.0);
    EXPECT_DOUBLE_EQ(mape({}, {}), 0.0);
    EXPECT_DEATH(absPctError(0.0, 1.0), "zero ground truth");
}

TEST(Metrics, AccWithin)
{
    std::vector<double> truth = {100, 100, 100, 100};
    std::vector<double> pred = {101, 104, 109, 120};
    EXPECT_DOUBLE_EQ(accWithin(truth, pred, 5), 50.0);
    EXPECT_DOUBLE_EQ(accWithin(truth, pred, 10), 75.0);
}

TEST(Metrics, Rmse)
{
    EXPECT_DOUBLE_EQ(rmse({1, 2}, {1, 2}), 0.0);
    EXPECT_DOUBLE_EQ(rmse({0, 0}, {3, 4}), std::sqrt(12.5));
}

// ---- Histogram-fit properties ----

/**
 * Reference exact-greedy tree: sorts each feature's node values and
 * scans candidate midpoints between adjacent distinct values with
 * the same gain measure, guards and tie-breaking (ascending
 * thresholds, features in index order, strict '>') the histogram
 * scan claims to reproduce. Integer-valued features and labels keep
 * every sum exact, so agreement must be bitwise.
 */
struct RefTree
{
    struct RefNode
    {
        int feature = -1;
        double threshold = 0.0;
        double value = 0.0;
        int left = -1, right = -1;
    };
    std::vector<RefNode> nodes;

    int grow(const Dataset &d, std::vector<std::size_t> rows,
             int depth, double sum, const TreeParams &p)
    {
        const std::size_t n = rows.size();
        int idx = static_cast<int>(nodes.size());
        nodes.push_back({});
        nodes[idx].value = sum / static_cast<double>(n);
        if (depth >= p.maxDepth || n < 2 * p.minSamplesLeaf)
            return idx;

        double best_gain = 1e-12, best_thr = 0.0;
        int best_f = -1;
        for (std::size_t f = 0; f < d.numFeatures(); ++f) {
            std::vector<std::pair<double, double>> vl; // (value,label)
            for (std::size_t r : rows)
                vl.push_back({d.at(r, f), d.labels()[r]});
            std::sort(vl.begin(), vl.end(),
                      [](const auto &a, const auto &b) {
                          return a.first < b.first;
                      });
            double ls = 0.0;
            std::size_t lc = 0;
            for (std::size_t k = 0; k + 1 < n; ++k) {
                ls += vl[k].second;
                ++lc;
                if (vl[k].first == vl[k + 1].first)
                    continue;
                if (lc < p.minSamplesLeaf ||
                    n - lc < p.minSamplesLeaf)
                    continue;
                double rs = sum - ls;
                double gain =
                    ls * ls / lc + rs * rs / (n - lc) -
                    sum * sum / static_cast<double>(n);
                if (gain > best_gain) {
                    best_gain = gain;
                    best_f = static_cast<int>(f);
                    best_thr =
                        0.5 * (vl[k].first + vl[k + 1].first);
                }
            }
        }
        if (best_f < 0)
            return idx;

        std::vector<std::size_t> lrows, rrows;
        double lsum = 0.0;
        for (std::size_t r : rows) {
            if (d.at(r, static_cast<std::size_t>(best_f)) <=
                best_thr) {
                lrows.push_back(r);
                lsum += d.labels()[r];
            } else {
                rrows.push_back(r);
            }
        }
        nodes[idx].feature = best_f;
        nodes[idx].threshold = best_thr;
        int l = grow(d, std::move(lrows), depth + 1, lsum, p);
        int r = grow(d, std::move(rrows), depth + 1, sum - lsum, p);
        nodes[idx].left = l;
        nodes[idx].right = r;
        return idx;
    }

    double predict(const std::vector<double> &x) const
    {
        int idx = 0;
        for (;;) {
            const RefNode &nd = nodes[idx];
            if (nd.feature < 0)
                return nd.value;
            idx = x[nd.feature] <= nd.threshold ? nd.left : nd.right;
        }
    }
};

TEST(TreeProperty, HistogramMatchesExactGreedyOnDistinctValues)
{
    // Fewer distinct values than bins -> binning is lossless (one
    // bin per value) and the histogram scan must reproduce the
    // exact-greedy tree: same structure, same thresholds, same leaf
    // values, bit for bit.
    for (std::uint64_t seed : {11u, 12u, 13u, 14u}) {
        Rng rng(seed);
        Dataset d({"a", "b", "c"});
        for (int i = 0; i < 300; ++i) {
            double a = rng.uniformInt(12);
            double b = rng.uniformInt(7);
            double c = rng.uniformInt(3);
            double y = rng.uniformInt(40);
            d.add({a, b, c}, y);
        }
        std::vector<std::size_t> rows(d.size());
        std::iota(rows.begin(), rows.end(), 0);

        TreeParams p;
        p.maxDepth = 5;
        RegressionTree t;
        t.fit(d, d.labels(), rows, p);

        RefTree ref;
        double sum = 0.0;
        for (std::size_t r : rows)
            sum += d.labels()[r];
        ref.grow(d, rows, 0, sum, p);

        ASSERT_EQ(t.numNodes(), ref.nodes.size()) << "seed " << seed;
        for (std::size_t i = 0; i < d.size(); ++i) {
            EXPECT_EQ(t.predictRow(d, i), ref.predict(d.row(i)))
                << "seed " << seed << " row " << i;
        }
    }
}

TEST(GbrProperty, WarmRefitOnUnchangedDataIsByteIdentical)
{
    Dataset d = makeDataset(400, 31, piecewise, 0.1);
    GbrParams gp;
    gp.numTrees = 25;

    ml::GradientBoostingRegressor cold(gp);
    cold.fit(d);
    std::ostringstream cold_bytes;
    cold.save(cold_bytes);

    // Warm path: refit the already-fitted model on the same data.
    ml::GradientBoostingRegressor warm(gp);
    warm.fit(d);
    warm.fit(d); // no-op: fingerprints match
    std::ostringstream warm_bytes;
    warm.save(warm_bytes);
    EXPECT_EQ(cold_bytes.str(), warm_bytes.str());

    // Same features, new labels: binning is reused, the boosting
    // rerun — and still byte-identical to a cold fit on that data.
    Dataset relabeled(d.featureNames());
    for (std::size_t i = 0; i < d.size(); ++i)
        relabeled.add(d.row(i), d.labels()[i] + 1.0);
    warm.fit(relabeled);
    ml::GradientBoostingRegressor cold2(gp);
    cold2.fit(relabeled);
    std::ostringstream warm2_bytes, cold2_bytes;
    warm.save(warm2_bytes);
    cold2.save(cold2_bytes);
    EXPECT_EQ(cold2_bytes.str(), warm2_bytes.str());
}

} // namespace
} // namespace tomur::ml
