/**
 * @file
 * Tests for the SLOMO baseline: fixed-traffic accuracy (it should be
 * good at the training profile under memory-only contention) and its
 * documented failure modes (traffic deviation, accelerator
 * contention) that motivate Tomur.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "ml/metrics.hh"
#include "nfs/bench_nfs.hh"
#include "nfs/registry.hh"
#include "regex/ruleset.hh"
#include "slomo/slomo.hh"

namespace tomur::slomo {
namespace {

namespace fw = framework;

struct Fixture
{
    Fixture()
        : rules(regex::defaultRuleSet()), bed(hw::blueField2(), {})
    {
        dev.regex = std::make_shared<fw::RegexDevice>(rules);
        dev.compression = std::make_shared<fw::CompressionDevice>();
        dev.crypto = std::make_shared<fw::CryptoDevice>();
        lib = std::make_unique<core::BenchLibrary>(bed, dev, rules);
    }

    regex::RuleSet rules;
    fw::DeviceSet dev;
    sim::Testbed bed;
    std::unique_ptr<core::BenchLibrary> lib;
};

TEST(Slomo, AccurateAtFixedTrafficMemoryOnly)
{
    // Appendix A, Table 11: SLOMO is accurate in the regime it was
    // designed for.
    Fixture f;
    SlomoTrainer trainer(*f.lib);
    auto defaults = traffic::TrafficProfile::defaults();
    auto nf = nfs::makeFlowStats();
    auto model = trainer.train(*nf, defaults);

    auto w = fw::profileWorkload(*nf, defaults, &f.rules);
    Rng rng(3);
    std::vector<double> truth, pred;
    for (int i = 0; i < 30; ++i) {
        const auto &bench = f.lib->randomMemBench(rng);
        auto ms = f.bed.run({w, bench.workload});
        truth.push_back(ms[0].throughput);
        pred.push_back(model.predict({bench.level}, defaults));
    }
    EXPECT_LT(ml::mape(truth, pred), 8.0);
}

TEST(Slomo, ExtrapolatesSmallFlowDeviation)
{
    Fixture f;
    SlomoTrainer trainer(*f.lib);
    auto defaults = traffic::TrafficProfile::defaults();
    auto nf = nfs::makeFlowStats();
    auto model = trainer.train(*nf, defaults);
    EXPECT_NE(model.flowSensitivitySlope(), 0.0);

    // +15% flows: extrapolation keeps error moderate.
    auto p = defaults.withAttribute(traffic::Attribute::FlowCount,
                                    16000.0 * 1.15);
    auto nf2 = nfs::makeFlowStats();
    auto w = fw::profileWorkload(*nf2, p, &f.rules);
    const auto &bench = f.lib->memBenches()[30];
    auto ms = f.bed.run({w, bench.workload});
    double pred = model.predict({bench.level}, p);
    EXPECT_NEAR(pred / ms[0].truthThroughput, 1.0, 0.15);
}

TEST(Slomo, FailsOnLargeFlowDeviation)
{
    // §2.3 / Fig. 7(b): far outside the training flow count the
    // extrapolation breaks down.
    Fixture f;
    SlomoTrainer trainer(*f.lib);
    auto defaults = traffic::TrafficProfile::defaults();
    auto nf = nfs::makeFlowStats();
    auto model = trainer.train(*nf, defaults);

    auto p = defaults.withAttribute(traffic::Attribute::FlowCount,
                                    400e3);
    auto nf2 = nfs::makeFlowStats();
    auto w = fw::profileWorkload(*nf2, p, &f.rules);
    const auto &bench = f.lib->memBenches()[30];
    auto ms = f.bed.run({w, bench.workload});
    double pred = model.predict({bench.level}, p);
    double err = std::fabs(pred - ms[0].truthThroughput) /
                 ms[0].truthThroughput;
    EXPECT_GT(err, 0.10);
}

TEST(Slomo, BlindToRegexContention)
{
    // §2.2: under accelerator contention SLOMO's prediction barely
    // moves although the ground truth collapses.
    Fixture f;
    SlomoTrainer trainer(*f.lib);
    auto defaults = traffic::TrafficProfile::defaults();
    auto nf = nfs::makeNids(f.dev);
    auto model = trainer.train(*nf, defaults);

    auto w = fw::profileWorkload(*nf, defaults, &f.rules);
    double solo = f.bed.runSolo(w).truthThroughput;
    const auto &rx =
        f.lib->accelBench(hw::AccelKind::Regex, 0.0, 800.0);
    auto ms = f.bed.run({w, rx.workload});
    double truth = ms[0].truthThroughput;
    double pred = model.predict({rx.level}, defaults);
    // Truth halves; SLOMO predicts nearly solo.
    EXPECT_LT(truth, 0.7 * solo);
    EXPECT_GT(pred, 0.85 * solo);
}

TEST(Slomo, TrainingValidation)
{
    Fixture f;
    SlomoTrainer trainer(*f.lib);
    auto nf = nfs::makeFlowStats();
    SlomoTrainOptions opts;
    opts.samples = 2;
    EXPECT_DEATH(
        trainer.train(*nf, traffic::TrafficProfile::defaults(), opts),
        "too few samples");
}

} // namespace
} // namespace tomur::slomo
