/**
 * @file
 * Observability-layer tests: metrics registry semantics (striped
 * counters, gauges, fixed-bucket histograms, deterministic dumps),
 * span tracer behaviour (nesting, ring bounds, canonical export),
 * solver invariants read off the trace (residual monotonicity,
 * iteration bounds), golden-trace regression against committed
 * fixtures, and concurrency property tests.
 *
 * Suites prefixed "Parallel" are selected by
 * tools/run_sanitized_tests.sh for the TSan pass
 * (ctest -R '^Parallel'), covering the registry's striped shards and
 * the MeasurementCache stats path under real data races.
 *
 * Golden fixtures live in tests/golden/ (path baked in via
 * TOMUR_GOLDEN_DIR); regenerate with tools/update_goldens.sh or by
 * running this binary with TOMUR_UPDATE_GOLDENS=1.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "common/sampler.hh"
#include "common/telemetry.hh"
#include "common/threadpool.hh"
#include "common/trace.hh"
#include "framework/profile.hh"
#include "ml/gbr.hh"
#include "nfs/registry.hh"
#include "regex/ruleset.hh"
#include "sim/faults.hh"
#include "sim/measurement_cache.hh"
#include "sim/testbed.hh"

namespace tomur {
namespace {

namespace fw = framework;

/** RAII global pool width (restores the configured width on exit). */
struct PoolWidth
{
    explicit PoolWidth(int threads) { setGlobalThreadCount(threads); }
    ~PoolWidth() { setGlobalThreadCount(configuredThreadCount()); }
};

/** The value of a record's field, or nullptr. */
const std::string *
fieldOf(const TraceRecord &r, const std::string &key)
{
    for (const auto &f : r.fields) {
        if (f.key == key)
            return &f.value;
    }
    return nullptr;
}

// ---------------------------------------------------------------
// Registry semantics
// ---------------------------------------------------------------

TEST(TelemetryRegistry, CounterAccumulatesAndResets)
{
    MetricsRegistry r;
    Counter &c = r.counter("tomur_test_total");
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    // Same name returns the same metric.
    EXPECT_EQ(&r.counter("tomur_test_total"), &c);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(TelemetryRegistry, GaugeSetAddReset)
{
    MetricsRegistry r;
    Gauge &g = r.gauge("tomur_test_gauge");
    g.set(2.5);
    EXPECT_DOUBLE_EQ(g.value(), 2.5);
    g.add(-1.0);
    EXPECT_DOUBLE_EQ(g.value(), 1.5);
    g.reset();
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(TelemetryRegistry, HistogramBucketsAreInclusiveUpperBounds)
{
    MetricsRegistry r;
    Histogram &h = r.histogram("tomur_test_hist", {1.0, 10.0});
    h.observe(1.0);  // le="1" (inclusive)
    h.observe(5.0);  // le="10"
    h.observe(99.0); // +Inf
    auto s = h.snapshot();
    ASSERT_EQ(s.counts.size(), 3u);
    EXPECT_EQ(s.counts[0], 1u);
    EXPECT_EQ(s.counts[1], 1u);
    EXPECT_EQ(s.counts[2], 1u);
    EXPECT_EQ(s.count, 3u);
    EXPECT_DOUBLE_EQ(s.sum, 105.0);
}

TEST(TelemetryRegistry, HistogramValueExactlyOnBoundIsInclusive)
{
    MetricsRegistry r;
    Histogram &h = r.histogram("tomur_test_edge_hist",
                               {1.0, 10.0, 100.0});
    // Values landing exactly on an upper bound belong to that
    // bucket, not the next one.
    h.observe(1.0);
    h.observe(10.0);
    h.observe(100.0);
    auto s = h.snapshot();
    ASSERT_EQ(s.counts.size(), 4u);
    EXPECT_EQ(s.counts[0], 1u);
    EXPECT_EQ(s.counts[1], 1u);
    EXPECT_EQ(s.counts[2], 1u);
    EXPECT_EQ(s.counts[3], 0u);
}

TEST(TelemetryRegistry, HistogramAboveLastBoundLandsInOverflow)
{
    MetricsRegistry r;
    Histogram &h = r.histogram("tomur_test_inf_hist", {1.0, 2.0});
    h.observe(2.0000001);
    h.observe(1e30);
    auto s = h.snapshot();
    ASSERT_EQ(s.counts.size(), 3u);
    EXPECT_EQ(s.counts[0], 0u);
    EXPECT_EQ(s.counts[1], 0u);
    EXPECT_EQ(s.counts[2], 2u);
    EXPECT_EQ(s.count, 2u);
}

TEST(TelemetryRegistry, HistogramNegativeValuesLandInFirstBucket)
{
    MetricsRegistry r;
    Histogram &h = r.histogram("tomur_test_neg_hist", {1.0, 2.0});
    h.observe(-5.0);
    h.observe(-0.0);
    auto s = h.snapshot();
    ASSERT_EQ(s.counts.size(), 3u);
    EXPECT_EQ(s.counts[0], 2u);
    EXPECT_EQ(s.count, 2u);
    EXPECT_DOUBLE_EQ(s.sum, -5.0);
}

TEST(TelemetryRegistry, ExponentialBoundsGrowByFactor)
{
    auto b = Histogram::exponentialBounds(2.0, 4.0, 3);
    ASSERT_EQ(b.size(), 3u);
    EXPECT_DOUBLE_EQ(b[0], 2.0);
    EXPECT_DOUBLE_EQ(b[1], 8.0);
    EXPECT_DOUBLE_EQ(b[2], 32.0);
}

TEST(TelemetryRegistry, DumpIsSortedPrometheusText)
{
    MetricsRegistry r;
    // Registered out of name order on purpose.
    r.histogram("tomur_b_hist", {1.0, 2.0}).observe(1.5);
    r.counter("tomur_c_total").inc(3);
    r.gauge("tomur_a_gauge").set(1.5);
    EXPECT_EQ(r.size(), 3u);
    EXPECT_EQ(r.dumpString(),
              "# TYPE tomur_a_gauge gauge\n"
              "tomur_a_gauge 1.5\n"
              "# TYPE tomur_b_hist histogram\n"
              "tomur_b_hist_bucket{le=\"1\"} 0\n"
              "tomur_b_hist_bucket{le=\"2\"} 1\n"
              "tomur_b_hist_bucket{le=\"+Inf\"} 1\n"
              "tomur_b_hist_sum 1.5\n"
              "tomur_b_hist_count 1\n"
              "# TYPE tomur_c_total counter\n"
              "tomur_c_total 3\n");
}

TEST(TelemetryRegistry, DumpBucketSeriesAreCumulative)
{
    // Prometheus histogram convention: each _bucket series counts
    // everything at or below its bound, so the series must be
    // monotonically nondecreasing and end at _count on +Inf.
    MetricsRegistry r;
    Histogram &h = r.histogram("tomur_cum_hist", {1.0, 2.0, 4.0});
    h.observe(0.5);
    h.observe(1.5);
    h.observe(3.0);
    h.observe(100.0);
    EXPECT_EQ(r.dumpString(),
              "# TYPE tomur_cum_hist histogram\n"
              "tomur_cum_hist_bucket{le=\"1\"} 1\n"
              "tomur_cum_hist_bucket{le=\"2\"} 2\n"
              "tomur_cum_hist_bucket{le=\"4\"} 3\n"
              "tomur_cum_hist_bucket{le=\"+Inf\"} 4\n"
              "tomur_cum_hist_sum 105\n"
              "tomur_cum_hist_count 4\n");
}

TEST(TelemetryRegistry, DumpEmptyHistogramIsAllZeroes)
{
    MetricsRegistry r;
    r.histogram("tomur_empty_hist", {1.0, 2.0});
    EXPECT_EQ(r.dumpString(),
              "# TYPE tomur_empty_hist histogram\n"
              "tomur_empty_hist_bucket{le=\"1\"} 0\n"
              "tomur_empty_hist_bucket{le=\"2\"} 0\n"
              "tomur_empty_hist_bucket{le=\"+Inf\"} 0\n"
              "tomur_empty_hist_sum 0\n"
              "tomur_empty_hist_count 0\n");
}

TEST(TelemetryRegistry, DumpSingleBucketAndOverflowOnly)
{
    MetricsRegistry r;
    Histogram &h = r.histogram("tomur_one_hist", {5.0});
    // Overflow-only: every observation above the lone bound keeps
    // the finite bucket at zero while +Inf carries the count.
    h.observe(6.0);
    h.observe(7.0);
    EXPECT_EQ(r.dumpString(),
              "# TYPE tomur_one_hist histogram\n"
              "tomur_one_hist_bucket{le=\"5\"} 0\n"
              "tomur_one_hist_bucket{le=\"+Inf\"} 2\n"
              "tomur_one_hist_sum 13\n"
              "tomur_one_hist_count 2\n");
}

TEST(TelemetryRegistry, DumpJsonMirrorsTextConventions)
{
    // The /debug/vars body: same sorted order, same cumulative
    // bucket convention, same number formatting as the text dump —
    // one JSON object, machine-parseable without Prometheus tooling.
    MetricsRegistry r;
    r.histogram("tomur_b_hist", {1.0, 2.0}).observe(1.5);
    r.counter("tomur_c_total").inc(3);
    r.gauge("tomur_a_gauge").set(1.5);
    EXPECT_EQ(r.dumpJsonString(),
              "{\"tomur_a_gauge\":1.5,"
              "\"tomur_b_hist\":{\"count\":1,\"sum\":1.5,"
              "\"buckets\":[{\"le\":1,\"cum\":0},"
              "{\"le\":2,\"cum\":1},"
              "{\"le\":\"+Inf\",\"cum\":1}]},"
              "\"tomur_c_total\":3}");
}

TEST(TelemetryRegistry, DumpJsonEdgeCases)
{
    MetricsRegistry empty;
    EXPECT_EQ(empty.dumpJsonString(), "{}");

    MetricsRegistry r;
    r.histogram("tomur_inf_only", {1.0}).observe(9.0);
    EXPECT_EQ(r.dumpJsonString(),
              "{\"tomur_inf_only\":{\"count\":1,\"sum\":9,"
              "\"buckets\":[{\"le\":1,\"cum\":0},"
              "{\"le\":\"+Inf\",\"cum\":1}]}}");

    DumpOptions opts;
    opts.excludePrefixes = {"tomur_inf_"};
    EXPECT_EQ(r.dumpJsonString(opts), "{}");
}

TEST(TelemetryRegistry, ExcludePrefixesFilterTheDump)
{
    MetricsRegistry r;
    r.counter("tomur_keep_total").inc();
    r.counter("tomur_pool_jobs_total").inc();
    DumpOptions opts;
    opts.excludePrefixes = {"tomur_pool_"};
    std::string out = r.dumpString(opts);
    EXPECT_NE(out.find("tomur_keep_total"), std::string::npos);
    EXPECT_EQ(out.find("tomur_pool_jobs_total"), std::string::npos);
}

TEST(TelemetryRegistry, ResetZeroesButKeepsRegistrations)
{
    MetricsRegistry r;
    r.counter("tomur_x_total").inc(7);
    r.gauge("tomur_y").set(3.0);
    r.histogram("tomur_z", {1.0}).observe(0.5);
    r.reset();
    EXPECT_EQ(r.size(), 3u);
    EXPECT_EQ(r.counter("tomur_x_total").value(), 0u);
    EXPECT_DOUBLE_EQ(r.gauge("tomur_y").value(), 0.0);
    EXPECT_EQ(r.histogram("tomur_z", {1.0}).snapshot().count, 0u);
}

TEST(TelemetryRegistryDeathTest, CrossTypeNameReusePanics)
{
    MetricsRegistry r;
    r.counter("tomur_clash");
    EXPECT_DEATH(r.gauge("tomur_clash"),
                 "registered with another type");
}

TEST(TelemetryRegistryDeathTest, HistogramLayoutDriftPanics)
{
    MetricsRegistry r;
    r.histogram("tomur_h", {1.0, 2.0});
    EXPECT_DEATH(r.histogram("tomur_h", {1.0, 3.0}),
                 "different bucket layout");
}

// ---------------------------------------------------------------
// Tracer semantics
// ---------------------------------------------------------------

TEST(TelemetryTrace, DisabledTracerRecordsNothing)
{
    tracer().disable();
    {
        TraceSpan span("noop");
        EXPECT_FALSE(span.active());
        span.field("k", std::string("v")); // must be a no-op
        tracePoint("noop.point");
    }
    EXPECT_EQ(tracer().recordCount(), 0u);
}

TEST(TelemetryTrace, SpansNestWithFieldsAndSteps)
{
    tracer().enable();
    {
        TraceSpan outer("outer");
        outer.field("who", std::string("test"));
        {
            TraceSpan inner("inner");
            inner.step(3);
            tracePoint("tick", {{"v", "1"}}, 7);
        }
    }
    auto recs = tracer().snapshot();
    tracer().disable();
    ASSERT_EQ(recs.size(), 3u); // point, inner, outer (close order)

    const TraceRecord *outer = nullptr, *inner = nullptr,
                      *point = nullptr;
    for (const auto &r : recs) {
        if (r.name == "outer")
            outer = &r;
        else if (r.name == "inner")
            inner = &r;
        else if (r.name == "tick")
            point = &r;
    }
    ASSERT_TRUE(outer && inner && point);
    EXPECT_TRUE(outer->isSpan);
    EXPECT_EQ(outer->parent, 0u);
    ASSERT_NE(fieldOf(*outer, "who"), nullptr);
    EXPECT_EQ(*fieldOf(*outer, "who"), "test");
    EXPECT_EQ(inner->parent, outer->id);
    EXPECT_EQ(inner->step, 3);
    EXPECT_FALSE(point->isSpan);
    EXPECT_EQ(point->parent, inner->id);
    EXPECT_EQ(point->step, 7);
    EXPECT_GE(outer->durNs, inner->durNs);
}

TEST(TelemetryTrace, RingBufferBoundsMemoryAndCountsDrops)
{
    tracer().enable(8);
    for (int i = 0; i < 100; ++i)
        tracePoint("flood", {}, i);
    EXPECT_EQ(tracer().recordCount(), 8u);
    EXPECT_EQ(tracer().droppedCount(), 92u);
    tracer().disable();
}

TEST(TelemetryTrace, DroppedCounterIsRegisteredEagerly)
{
    // Constructing the tracer (any tracer() call) registers the drop
    // counter, so every --metrics-out dump shows the series even
    // when nothing was ever dropped.
    tracer();
    auto dump = metrics().dumpString();
    EXPECT_NE(dump.find("tomur_trace_dropped_total"),
              std::string::npos);
}

TEST(TelemetryTrace, EnableClearsPreviousRecords)
{
    tracer().enable();
    tracePoint("old");
    tracer().enable();
    EXPECT_EQ(tracer().recordCount(), 0u);
    tracer().disable();
}

TEST(TelemetryTrace, CanonicalExportOmitsTimestampsAndRenumbers)
{
    tracer().enable();
    {
        TraceSpan a("beta");
    }
    {
        TraceSpan b("alpha");
    }
    std::string text =
        tracer().exportString(TraceExportOptions{.canonical = true});
    tracer().disable();
    // Siblings sorted by serialized form: alpha before beta, ids
    // renumbered depth-first, no wall-clock fields.
    EXPECT_EQ(text,
              "{\"type\":\"span\",\"id\":1,\"parent\":0,"
              "\"name\":\"alpha\"}\n"
              "{\"type\":\"span\",\"id\":2,\"parent\":0,"
              "\"name\":\"beta\"}\n");
}

// ---------------------------------------------------------------
// Solver invariants, read off the trace
// ---------------------------------------------------------------

struct SolverFixture
{
    SolverFixture()
        : rules(regex::defaultRuleSet()),
          bed(hw::blueField2(), noiseless())
    {
        dev.regex = std::make_shared<fw::RegexDevice>(rules);
        dev.compression =
            std::make_shared<fw::CompressionDevice>();
        dev.crypto = std::make_shared<fw::CryptoDevice>();
    }

    static sim::TestbedOptions
    noiseless()
    {
        sim::TestbedOptions o;
        o.noiseSigma = 0.0;
        return o;
    }

    regex::RuleSet rules;
    fw::DeviceSet dev;
    sim::Testbed bed;
};

/**
 * The damped fixed-point solver must contract: per-iteration
 * residuals never increase, every solo solve converges, and it does
 * so well inside the documented bound (64 iterations for a solo
 * deployment — observed maxima are ~30, maxIterations is 400).
 */
TEST(SolverInvariants, ResidualsDecreaseAndIterationsBounded)
{
    SolverFixture f;
    auto tp = traffic::TrafficProfile::defaults();
    for (const auto &info : nfs::catalog()) {
        auto nf = nfs::makeByName(info.name, f.dev);
        auto w = fw::profileWorkload(*nf, tp, &f.rules);

        tracer().enable();
        f.bed.runSolo(w);
        auto recs = tracer().snapshot();
        tracer().disable();

        std::size_t solves = 0;
        for (const auto &r : recs) {
            if (!r.isSpan || r.name != "sim.solve")
                continue;
            ++solves;
            ASSERT_NE(fieldOf(r, "converged"), nullptr) << info.name;
            EXPECT_EQ(*fieldOf(r, "converged"), "true") << info.name;
            ASSERT_NE(fieldOf(r, "iterations"), nullptr);
            long iters = std::stol(*fieldOf(r, "iterations"));
            EXPECT_GE(iters, 1) << info.name;
            EXPECT_LE(iters, 64) << info.name;

            // The residual series under this span, in step order.
            std::vector<double> residuals;
            for (const auto &p : recs) {
                if (!p.isSpan && p.name == "sim.solve.iter" &&
                    p.parent == r.id) {
                    EXPECT_EQ(p.step,
                              static_cast<std::int64_t>(
                                  residuals.size()))
                        << info.name;
                    residuals.push_back(
                        std::stod(*fieldOf(p, "residual")));
                }
            }
            EXPECT_EQ(static_cast<long>(residuals.size()), iters);
            for (std::size_t i = 1; i < residuals.size(); ++i) {
                EXPECT_LE(residuals[i], residuals[i - 1])
                    << info.name << " iteration " << i;
            }
        }
        EXPECT_GE(solves, 1u) << info.name;
    }
}

TEST(SolverInvariants, SolverMetricsAgreeWithTrace)
{
    SolverFixture f;
    auto tp = traffic::TrafficProfile::defaults();
    auto nf = nfs::makeByName("NAT", f.dev);
    auto w = fw::profileWorkload(*nf, tp, &f.rules);

    metrics().reset();
    tracer().enable();
    f.bed.runSolo(w);
    auto recs = tracer().snapshot();
    tracer().disable();

    std::uint64_t traced_iters = 0, traced_solves = 0;
    for (const auto &r : recs) {
        if (!r.isSpan && r.name == "sim.solve.iter")
            ++traced_iters;
        if (r.isSpan && r.name == "sim.solve")
            ++traced_solves;
    }
    EXPECT_EQ(metrics().counter("tomur_solver_solves_total").value(),
              traced_solves);
    EXPECT_EQ(
        metrics().counter("tomur_solver_iterations_total").value(),
        traced_iters);
    EXPECT_EQ(
        metrics().counter("tomur_solver_converged_total").value(),
        traced_solves);
    EXPECT_EQ(
        metrics().counter("tomur_solver_maxed_out_total").value(),
        0u);
}

// ---------------------------------------------------------------
// Golden-trace regression
// ---------------------------------------------------------------

#ifndef TOMUR_GOLDEN_DIR
#define TOMUR_GOLDEN_DIR "tests/golden"
#endif

std::string
goldenPath(const std::string &file)
{
    return std::string(TOMUR_GOLDEN_DIR) + "/" + file;
}

std::string
readFileOrEmpty(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/**
 * The fixed golden scenario: a noise-free, fixed-seed walk through
 * the pipeline's instrumented layers — workload profiling (region /
 * accelerator attribution), a batch of *distinct* deployments
 * (distinct keys keep hit/miss counts width-independent), a cache
 * hit, deterministic-seed fault injection, and a GBR fit. Everything
 * it records is a pure function of the inputs, so the canonical
 * trace export and the filtered metrics dump are byte-identical at
 * any TOMUR_THREADS — and regression-diffed against the committed
 * fixtures.
 */
void
runGoldenScenario(std::string *trace_text, std::string *metrics_text)
{
    metrics().reset();
    tracer().enable();
    {
        TraceSpan root("golden.scenario");

        regex::RuleSet rules = regex::defaultRuleSet();
        fw::DeviceSet dev;
        dev.regex = std::make_shared<fw::RegexDevice>(rules);
        dev.compression =
            std::make_shared<fw::CompressionDevice>();
        dev.crypto = std::make_shared<fw::CryptoDevice>();

        sim::TestbedOptions opts;
        opts.noiseSigma = 0.0;
        opts.seed = 7;
        sim::Testbed bed(hw::blueField2(), opts);

        traffic::TrafficProfile tp;
        tp.flowCount = 64;
        tp.packetSize = 512;
        tp.mtbr = 600;
        fw::ProfileOptions po;
        po.seed = 99;

        auto nat = nfs::makeByName("NAT", dev);
        auto stats = nfs::makeByName("FlowStats", dev);
        auto nids = nfs::makeByName("NIDS", dev);
        auto w_nat = fw::profileWorkload(*nat, tp, &rules, po);
        auto w_stats = fw::profileWorkload(*stats, tp, &rules, po);
        auto w_nids = fw::profileWorkload(*nids, tp, &rules, po);

        // Distinct deployments fan out across the pool; the repeated
        // run() afterwards must hit the cache.
        bed.runBatch({{w_nat},
                      {w_stats},
                      {w_nids},
                      {w_nat, w_stats},
                      {w_nat, w_nids},
                      {w_stats, w_nids}});
        bed.run({w_nat});

        // Fault injection: the draw order is fixed (serial run()
        // calls), so the injected set is deterministic.
        sim::FaultInjectingTestbed faulty(
            bed, sim::FaultConfig::uniformCorruption(0.5, 11));
        faulty.run({w_nat, w_stats});
        faulty.run({w_nids});

        // A small deterministic GBR fit for the ml.gbr round curve.
        ml::Dataset ds(std::vector<std::string>{"x0", "x1"});
        for (int i = 0; i < 32; ++i) {
            double x0 = 0.1 * i, x1 = (i % 5) - 2.0;
            ds.add({x0, x1}, 3.0 * x0 - 2.0 * x1 + 0.5);
        }
        ml::GbrParams gp;
        gp.numTrees = 8;
        gp.seed = 17;
        ml::GradientBoostingRegressor gbr(gp);
        gbr.fit(ds);
    }
    *trace_text =
        tracer().exportString(TraceExportOptions{.canonical = true});
    DumpOptions dump_opts;
    // Pool introspection depends on scheduling; the trace-drop
    // counter depends on whatever ran earlier in this process.
    dump_opts.excludePrefixes = {"tomur_pool_", "tomur_trace_"};
    *metrics_text = metrics().dumpString(dump_opts);
    tracer().disable();
}

/** Compare against (or, with TOMUR_UPDATE_GOLDENS=1, rewrite) one
 *  golden fixture. */
void
checkGolden(const std::string &file, const std::string &actual)
{
    const std::string path = goldenPath(file);
    if (std::getenv("TOMUR_UPDATE_GOLDENS")) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << actual;
        return;
    }
    std::string expected = readFileOrEmpty(path);
    ASSERT_FALSE(expected.empty())
        << path << " is missing; regenerate with "
        << "tools/update_goldens.sh";
    EXPECT_EQ(expected, actual)
        << "golden mismatch for " << file
        << "; if the change is intentional, regenerate with "
        << "tools/update_goldens.sh and review the diff";
}

TEST(GoldenTrace, SerialRunMatchesFixtures)
{
    PoolWidth width(1);
    std::string trace, mx;
    runGoldenScenario(&trace, &mx);
    checkGolden("trace_canonical.jsonl", trace);
    checkGolden("metrics.txt", mx);
}

TEST(GoldenTrace, WideRunIsByteIdenticalToFixtures)
{
    PoolWidth width(8);
    std::string trace, mx;
    runGoldenScenario(&trace, &mx);
    if (std::getenv("TOMUR_UPDATE_GOLDENS")) {
        // Fixtures are written by the serial test; here we only
        // verify the wide run reproduces them.
        std::string trace1, mx1;
        {
            PoolWidth serial(1);
            runGoldenScenario(&trace1, &mx1);
        }
        EXPECT_EQ(trace1, trace);
        EXPECT_EQ(mx1, mx);
        return;
    }
    checkGolden("trace_canonical.jsonl", trace);
    checkGolden("metrics.txt", mx);
}

TEST(GoldenTrace, ScenarioCoversEveryInstrumentedPhase)
{
    PoolWidth width(4);
    std::string trace, mx;
    runGoldenScenario(&trace, &mx);
    for (const char *needle :
         {"\"name\":\"profile.workload\"", "\"name\":\"profile.region\"",
          "\"name\":\"sim.runBatch\"", "\"name\":\"sim.prewarm\"",
          "\"name\":\"sim.cache\"", "\"name\":\"sim.solve\"",
          "\"name\":\"sim.solve.iter\"", "\"name\":\"sim.faults.run\"",
          "\"name\":\"ml.gbr.fit\"", "\"name\":\"ml.gbr.round\"",
          "\"outcome\":\"hit\""}) {
        EXPECT_NE(trace.find(needle), std::string::npos) << needle;
    }
    for (const char *metric :
         {"tomur_solver_solves_total", "tomur_cache_hits_total",
          "tomur_cache_misses_total", "tomur_faults_measurements_total",
          "tomur_gbr_fits_total", "tomur_profile_workloads_total"}) {
        EXPECT_NE(mx.find(metric), std::string::npos) << metric;
    }
}

// ---------------------------------------------------------------
// Concurrency properties (TSan-selected "Parallel" suites)
// ---------------------------------------------------------------

TEST(ParallelTelemetryCounters, ConcurrentIncrementsSumExactly)
{
    MetricsRegistry r;
    Counter &c = r.counter("tomur_test_total");
    constexpr int kThreads = 8;
    constexpr int kIncs = 20000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&c] {
            for (int i = 0; i < kIncs; ++i)
                c.inc();
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(c.value(),
              static_cast<std::uint64_t>(kThreads) * kIncs);
}

TEST(ParallelTelemetryCounters, PoolIncrementsSumExactly)
{
    PoolWidth width(8);
    MetricsRegistry r;
    Counter &c = r.counter("tomur_test_total");
    Gauge &g = r.gauge("tomur_test_gauge");
    parallelFor(10000, [&](std::size_t i) {
        c.inc(i % 3 + 1);
        g.set(static_cast<double>(i));
    });
    std::uint64_t expect = 0;
    for (std::size_t i = 0; i < 10000; ++i)
        expect += i % 3 + 1;
    EXPECT_EQ(c.value(), expect);
}

TEST(ParallelTelemetryHistogram, BucketCountsMatchObservations)
{
    PoolWidth width(8);
    MetricsRegistry r;
    Histogram &h =
        r.histogram("tomur_test_hist",
                    Histogram::exponentialBounds(1.0, 2.0, 10));
    constexpr std::size_t kObs = 50000;
    parallelFor(kObs, [&](std::size_t i) {
        h.observe(static_cast<double>(i % 1500));
    });
    auto s = h.snapshot();
    EXPECT_EQ(s.count, kObs);
    std::uint64_t bucket_sum = 0;
    for (auto c : s.counts)
        bucket_sum += c;
    EXPECT_EQ(bucket_sum, kObs);
}

TEST(ParallelTelemetryDump, ByteIdenticalAcrossPoolWidths)
{
    SolverFixture f;
    auto tp = traffic::TrafficProfile::defaults();
    auto nat = nfs::makeByName("NAT", f.dev);
    auto acl = nfs::makeByName("ACL", f.dev);
    auto w_nat = fw::profileWorkload(*nat, tp, &f.rules);
    auto w_acl = fw::profileWorkload(*acl, tp, &f.rules);

    DumpOptions opts;
    opts.excludePrefixes = {"tomur_pool_", "tomur_trace_"};
    auto dump_at = [&](int threads) {
        PoolWidth width(threads);
        metrics().reset();
        sim::Testbed bed(hw::blueField2(),
                         SolverFixture::noiseless());
        bed.runBatch({{w_nat}, {w_acl}, {w_nat, w_acl}});
        return metrics().dumpString(opts);
    };
    std::string serial = dump_at(1);
    EXPECT_EQ(dump_at(2), serial);
    EXPECT_EQ(dump_at(8), serial);
}

TEST(ParallelTelemetryCache, StatsRaceFree)
{
    // Hammer lookup/store/stats concurrently: the atomic hit/miss
    // path must be race-free (TSan) and exact (hits + misses ==
    // lookups).
    sim::MeasurementCache cache;
    constexpr int kThreads = 8;
    constexpr int kOps = 2000;
    std::vector<std::thread> threads;
    std::atomic<std::uint64_t> lookups{0};
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kOps; ++i) {
                std::string key =
                    "k" + std::to_string((t * 7 + i) % 64);
                std::vector<sim::Measurement> out;
                cache.lookup(key, &out);
                lookups.fetch_add(1);
                if (i % 3 == 0)
                    cache.store(key, {});
                if (i % 17 == 0)
                    cache.stats();
            }
        });
    }
    for (auto &t : threads)
        t.join();
    auto s = cache.stats();
    EXPECT_EQ(s.hits + s.misses, lookups.load());
    EXPECT_LE(s.entries, 64u);
}

TEST(ParallelTelemetryTrace, ConcurrentSpansAreWellFormed)
{
    PoolWidth width(8);
    tracer().enable();
    {
        TraceSpan root("parallel.root");
        parallelFor(64, [](std::size_t i) {
            TraceSpan span("parallel.task");
            span.step(static_cast<std::int64_t>(i));
            tracePoint("parallel.tick", {}, 0);
        });
    }
    auto recs = tracer().snapshot();
    tracer().disable();

    // Every record's parent is either a root or a recorded span id,
    // and pool tasks inherited the caller's root span.
    std::uint64_t root_id = 0;
    for (const auto &r : recs) {
        if (r.isSpan && r.name == "parallel.root")
            root_id = r.id;
    }
    ASSERT_NE(root_id, 0u);
    std::size_t tasks = 0;
    for (const auto &r : recs) {
        if (r.isSpan && r.name == "parallel.task") {
            ++tasks;
            EXPECT_EQ(r.parent, root_id);
        }
    }
    EXPECT_EQ(tasks, 64u);
}

TEST(ParallelTelemetryTrace, CanonicalExportIdenticalAcrossWidths)
{
    auto run_at = [](int threads) {
        PoolWidth width(threads);
        tracer().enable();
        {
            TraceSpan root("parallel.root");
            parallelFor(16, [](std::size_t i) {
                TraceSpan span("parallel.task");
                span.step(static_cast<std::int64_t>(i));
            });
        }
        std::string text = tracer().exportString(
            TraceExportOptions{.canonical = true});
        tracer().disable();
        return text;
    };
    std::string serial = run_at(1);
    EXPECT_EQ(run_at(8), serial);
}

// ---------------------------------------------------------------
// Sampling profiler
// ---------------------------------------------------------------

TEST(Sampler, BoundedMemoryUnderMillionTokens)
{
    SamplerOptions opts;
    opts.ringCapacity = 256;
    opts.meanPeriod = 8;
    SamplingProfiler prof(opts);
    int site = prof.registerSite("loop");
    for (int i = 0; i < 1000000; ++i) {
        if (prof.beginToken(site))
            prof.endToken(site, 1);
    }
    EXPECT_EQ(prof.tokens(), 1000000u);
    // Retention is the ring, nothing else: the ring never exceeds
    // its capacity and every sampled token beyond it was evicted.
    auto ring = prof.ringContents();
    EXPECT_EQ(ring.size(), 256u);
    EXPECT_EQ(prof.droppedTokens(), prof.sampledTokens() - 256);
    // Sampling rate tracks 1/meanPeriod (gaps are uniform on
    // [1, 2*meanPeriod-1], so the expectation is exact; 20% slack
    // covers the variance at a million draws).
    EXPECT_GT(prof.sampledTokens(), 1000000u / 8 * 8 / 10);
    EXPECT_LT(prof.sampledTokens(), 1000000u / 8 * 12 / 10);
}

TEST(Sampler, SampledIndicesAreAFunctionOfTheSeed)
{
    SamplerOptions opts;
    opts.ringCapacity = 64;
    opts.meanPeriod = 16;
    opts.seed = 99;
    SamplingProfiler a(opts), b(opts);
    int sa = a.registerSite("x"), sb = b.registerSite("x");
    std::vector<int> ia, ib;
    for (int i = 0; i < 5000; ++i) {
        if (a.beginToken(sa)) {
            a.endToken(sa, 7);
            ia.push_back(i);
        }
        if (b.beginToken(sb)) {
            b.endToken(sb, 7);
            ib.push_back(i);
        }
    }
    EXPECT_FALSE(ia.empty());
    EXPECT_EQ(ia, ib);
    // A different seed picks a different subset.
    opts.seed = 100;
    SamplingProfiler c(opts);
    int sc = c.registerSite("x");
    std::vector<int> ic;
    for (int i = 0; i < 5000; ++i) {
        if (c.beginToken(sc)) {
            c.endToken(sc, 7);
            ic.push_back(i);
        }
    }
    EXPECT_NE(ia, ic);
}

TEST(Sampler, RingEvictsOldestFirst)
{
    SamplerOptions opts;
    opts.ringCapacity = 4;
    opts.meanPeriod = 1; // gap is always 1: every token sampled
    SamplingProfiler prof(opts);
    int site = prof.registerSite("s");
    for (std::uint64_t i = 1; i <= 10; ++i) {
        ASSERT_TRUE(prof.beginToken(site));
        prof.endToken(site, i);
    }
    EXPECT_EQ(prof.sampledTokens(), 10u);
    EXPECT_EQ(prof.droppedTokens(), 6u);
    auto ring = prof.ringContents();
    ASSERT_EQ(ring.size(), 4u);
    for (std::size_t i = 0; i < ring.size(); ++i) {
        EXPECT_EQ(ring[i].durNs, 7 + i); // tokens 7..10 survive
        EXPECT_EQ(ring[i].index, 7 + i);
    }
}

TEST(Sampler, SiteStatsAggregateAndDedupe)
{
    SamplingProfiler prof;
    int a = prof.registerSite("solve");
    int b = prof.registerSite("ingest");
    EXPECT_NE(a, b);
    EXPECT_EQ(prof.registerSite("solve"), a); // lookup, not new id
    for (int i = 0; i < 100; ++i) {
        if (prof.beginToken(a))
            prof.endToken(a, 5);
    }
    for (int i = 0; i < 50; ++i) {
        if (prof.beginToken(b))
            prof.endToken(b, 9);
    }
    auto stats = prof.siteStats();
    ASSERT_EQ(stats.size(), 2u);
    EXPECT_EQ(stats[0].name, "solve");
    EXPECT_EQ(stats[0].tokens, 100u);
    EXPECT_EQ(stats[1].name, "ingest");
    EXPECT_EQ(stats[1].tokens, 50u);
    EXPECT_EQ(stats[0].sampled + stats[1].sampled,
              prof.sampledTokens());

    std::ostringstream out;
    prof.exportText(out);
    EXPECT_NE(out.str().find("solve"), std::string::npos);
    EXPECT_NE(out.str().find("ingest"), std::string::npos);
}

TEST(Sampler, NullProfilerScopeIsANoOp)
{
    // Call sites wrap phases unconditionally; a null profiler must
    // make that free (and obviously must not crash).
    for (int i = 0; i < 10; ++i) {
        SamplingProfiler::Scope scope(nullptr, 3);
    }
    SUCCEED();
}

TEST(Sampler, UnsampledPathCostIsBounded)
{
    // The unsampled fast path is a counter decrement — no clock
    // read. Structurally: with a huge mean period almost nothing is
    // sampled; and even the timing bound is generous enough (5 us
    // per token amortized) to never flake on a loaded machine.
    SamplerOptions opts;
    opts.meanPeriod = 1 << 20;
    SamplingProfiler prof(opts);
    int site = prof.registerSite("hot");
    const int n = 200000;
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < n; ++i) {
        SamplingProfiler::Scope scope(&prof, site);
    }
    auto t1 = std::chrono::steady_clock::now();
    EXPECT_EQ(prof.tokens(), static_cast<std::uint64_t>(n));
    EXPECT_LE(prof.sampledTokens(), 4u);
    double per_token =
        std::chrono::duration<double>(t1 - t0).count() / n;
    EXPECT_LT(per_token, 5e-6);
}

} // namespace
} // namespace tomur
