/**
 * @file
 * Cross-module property tests: invariants checked over parameterized
 * and randomized sweeps rather than single examples.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_map>

#include "common/rng.hh"
#include "framework/flow_table.hh"
#include "hw/accel.hh"
#include "hw/cache.hh"
#include "hw/config.hh"
#include "net/packet.hh"
#include "tomur/composition.hh"

namespace tomur {
namespace {

namespace fw = framework;

// ---------------------------------------------------------------
// Round-robin solver invariants
// ---------------------------------------------------------------

class RrInvariants : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RrInvariants, ConservationAndFairness)
{
    Rng rng(GetParam());
    for (int iter = 0; iter < 40; ++iter) {
        std::vector<hw::AccelQueue> queues;
        int n = 1 + static_cast<int>(rng.uniformInt(5u));
        bool any_closed = false;
        for (int q = 0; q < n; ++q) {
            hw::AccelQueue a;
            a.serviceTime = rng.uniform(0.2e-6, 5e-6);
            a.closedLoop = rng.chance(0.4);
            any_closed |= a.closedLoop;
            if (!a.closedLoop)
                a.arrivalRate = rng.uniform(1e4, 1.5e6);
            queues.push_back(a);
        }
        auto res = hw::solveRoundRobin(queues);

        // Work conservation: total utilisation never exceeds 1, and
        // equals 1 when any queue is backlogged.
        double util = 0.0;
        bool any_backlogged = false;
        for (std::size_t q = 0; q < queues.size(); ++q) {
            util += res[q].throughput * queues[q].serviceTime;
            any_backlogged |= res[q].backlogged;
            // No open queue exceeds its offered rate.
            if (!queues[q].closedLoop) {
                EXPECT_LE(res[q].throughput,
                          queues[q].arrivalRate * 1.0001);
            }
            EXPECT_GE(res[q].throughput, 0.0);
            EXPECT_GT(res[q].sojournTime, 0.0);
        }
        EXPECT_LE(util, 1.0001);
        if (any_closed) {
            EXPECT_TRUE(any_backlogged);
        }
        if (any_backlogged) {
            EXPECT_NEAR(util, 1.0, 0.01);
        }

        // Queue-level fairness: all backlogged queues complete at
        // the same rate (RR serves one request per round each).
        double r = -1.0;
        for (std::size_t q = 0; q < queues.size(); ++q) {
            if (!res[q].backlogged)
                continue;
            if (r < 0.0) {
                r = res[q].throughput;
            } else {
                EXPECT_NEAR(res[q].throughput, r, r * 0.01);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RrInvariants,
                         ::testing::Values(1u, 17u, 99u, 12345u));

// ---------------------------------------------------------------
// Cache-sharing invariants
// ---------------------------------------------------------------

class CacheInvariants : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CacheInvariants, CapacityAndBounds)
{
    Rng rng(GetParam());
    const double llc = 6.0 * 1024 * 1024;
    for (int iter = 0; iter < 60; ++iter) {
        std::vector<hw::CacheWorkload> ws;
        int n = 1 + static_cast<int>(rng.uniformInt(5u));
        for (int i = 0; i < n; ++i) {
            hw::CacheWorkload w;
            w.wssBytes = rng.uniform(0.1, 64.0) * 1024 * 1024;
            w.accessRate = rng.uniform(1e5, 2e8);
            w.reuse = rng.chance(0.2) ? 0.0 : rng.uniform(0.3, 1.0);
            ws.push_back(w);
        }
        auto res = hw::solveCacheSharing(llc, 0.02, ws);
        double total = 0.0;
        for (int i = 0; i < n; ++i) {
            EXPECT_GE(res[i].occupancyBytes, -1.0);
            EXPECT_LE(res[i].occupancyBytes,
                      ws[i].wssBytes * 1.0001);
            EXPECT_GE(res[i].missRatio, 0.02 - 1e-12);
            EXPECT_LE(res[i].missRatio, 1.0 + 1e-12);
            total += res[i].occupancyBytes;
        }
        EXPECT_LE(total, llc * 1.01);
    }
}

TEST_P(CacheInvariants, VictimMonotoneInCompetitorPressure)
{
    Rng rng(GetParam() + 1);
    for (int iter = 0; iter < 20; ++iter) {
        hw::CacheWorkload victim;
        victim.wssBytes = rng.uniform(1.0, 8.0) * 1024 * 1024;
        victim.accessRate = rng.uniform(1e6, 5e7);
        hw::CacheWorkload comp;
        comp.wssBytes = rng.uniform(4.0, 32.0) * 1024 * 1024;
        double prev = 0.0;
        for (double rate = 1e6; rate <= 2e8; rate *= 4) {
            comp.accessRate = rate;
            auto res = hw::solveCacheSharing(6.0 * 1024 * 1024, 0.02,
                                             {victim, comp});
            EXPECT_GE(res[0].missRatio, prev - 1e-9)
                << "iter " << iter << " rate " << rate;
            prev = res[0].missRatio;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheInvariants,
                         ::testing::Values(3u, 71u, 2024u));

// ---------------------------------------------------------------
// Composition invariants (Eq. 7)
// ---------------------------------------------------------------

TEST(CompositionInvariants, BoundedAndMonotone)
{
    Rng rng(5);
    for (auto pattern : {fw::ExecutionPattern::Pipeline,
                         fw::ExecutionPattern::RunToCompletion}) {
        for (int iter = 0; iter < 200; ++iter) {
            double t0 = rng.uniform(1e3, 1e7);
            std::vector<double> drops;
            int r = 1 + static_cast<int>(rng.uniformInt(3u));
            for (int k = 0; k < r; ++k)
                drops.push_back(rng.uniform(0.0, t0 * 0.95));
            double base =
                core::compose(core::CompositionKind::ExecutionPattern,
                              pattern, t0, drops);
            EXPECT_GE(base, 0.0);
            EXPECT_LE(base, t0);
            // Raising any single drop never raises the prediction.
            int k = static_cast<int>(rng.uniformInt(
                static_cast<std::uint64_t>(r)));
            auto worse = drops;
            worse[k] = std::min(t0 * 0.99,
                                worse[k] + rng.uniform(0, t0 * 0.3));
            double worse_pred =
                core::compose(core::CompositionKind::ExecutionPattern,
                              pattern, t0, worse);
            EXPECT_LE(worse_pred, base + 1e-6);
        }
    }
}

TEST(CompositionInvariants, ZeroDropsIdentity)
{
    for (auto pattern : {fw::ExecutionPattern::Pipeline,
                         fw::ExecutionPattern::RunToCompletion}) {
        double t = core::compose(
            core::CompositionKind::ExecutionPattern, pattern, 1e6,
            {0.0, 0.0, 0.0});
        EXPECT_NEAR(t, 1e6, 1.0);
    }
}

// ---------------------------------------------------------------
// Packet round-trip sweep
// ---------------------------------------------------------------

struct PacketCase
{
    std::size_t payload;
    net::IpProto proto;
};

class PacketRoundTrip : public ::testing::TestWithParam<PacketCase>
{
};

TEST_P(PacketRoundTrip, BuildParseConsistent)
{
    auto [payload_len, proto] = GetParam();
    net::FiveTuple t;
    t.srcIp = net::Ipv4Addr::fromOctets(172, 16, 0, 9);
    t.dstIp = net::Ipv4Addr::fromOctets(10, 10, 10, 10);
    t.srcPort = 40000;
    t.dstPort = 53;
    t.proto = static_cast<std::uint8_t>(proto);
    std::vector<std::uint8_t> payload(payload_len);
    for (std::size_t i = 0; i < payload_len; ++i)
        payload[i] = static_cast<std::uint8_t>(i * 31 + 7);

    auto pkt = net::PacketBuilder::build(t, payload);
    EXPECT_EQ(pkt.size(),
              net::PacketBuilder::frameSize(payload_len, proto));
    ASSERT_TRUE(pkt.fiveTuple());
    EXPECT_EQ(*pkt.fiveTuple(), t);
    EXPECT_TRUE(pkt.ipv4ChecksumOk());
    auto got = pkt.payload();
    ASSERT_EQ(got.size(), payload_len);
    EXPECT_TRUE(std::equal(got.begin(), got.end(), payload.begin()));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, PacketRoundTrip,
    ::testing::Values(PacketCase{0, net::IpProto::Udp},
                      PacketCase{1, net::IpProto::Udp},
                      PacketCase{64, net::IpProto::Tcp},
                      PacketCase{733, net::IpProto::Udp},
                      PacketCase{1458, net::IpProto::Udp},
                      PacketCase{1444, net::IpProto::Tcp}));

// ---------------------------------------------------------------
// FlowTable against a reference model
// ---------------------------------------------------------------

TEST(FlowTableProperty, MatchesUnorderedMapReference)
{
    fw::FlowTable<int> table("ref");
    std::unordered_map<net::FiveTuple, int> reference;
    fw::CostContext ctx;
    Rng rng(21);
    for (int op = 0; op < 5000; ++op) {
        net::FiveTuple t;
        t.srcIp.value = 0x0a000000u |
                        static_cast<std::uint32_t>(rng.uniformInt(64u));
        t.dstIp.value = 0xc0a80001u;
        t.srcPort = static_cast<std::uint16_t>(rng.uniformInt(256u));
        t.dstPort = 80;
        t.proto = 17;
        if (rng.chance(0.7)) {
            int &v = table.findOrInsert(t, ctx);
            ++v;
            ++reference[t];
        } else {
            int *v = table.find(t, ctx);
            auto it = reference.find(t);
            if (it == reference.end()) {
                EXPECT_EQ(v, nullptr);
            } else {
                ASSERT_NE(v, nullptr);
                EXPECT_EQ(*v, it->second);
            }
        }
    }
    EXPECT_EQ(table.size(), reference.size());
    // Every reference entry is visible via forEach.
    std::size_t seen = 0;
    table.forEach([&](const net::FiveTuple &k, const int &v) {
        auto it = reference.find(k);
        ASSERT_NE(it, reference.end());
        EXPECT_EQ(v, it->second);
        ++seen;
    });
    EXPECT_EQ(seen, reference.size());
}

} // namespace
} // namespace tomur
