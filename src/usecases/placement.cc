#include "usecases/placement.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "nfs/registry.hh"

namespace tomur::usecases {

namespace fw = framework;

const char *
strategyName(Strategy s)
{
    switch (s) {
      case Strategy::Monopolization:
        return "Monopolization";
      case Strategy::Greedy:
        return "Greedy";
      case Strategy::Slomo:
        return "SLOMO";
      case Strategy::Tomur:
        return "Tomur";
      case Strategy::Oracle:
        return "Oracle";
    }
    panic("strategyName: bad strategy");
}

PlacementContext::PlacementContext(
    core::BenchLibrary &library,
    const std::vector<std::string> &nf_names,
    const traffic::TrafficProfile &profile, std::size_t quota)
    : library_(library), trainer_(library), profile_(profile),
      names_(nf_names)
{
    nfsPerNic_ = library_.testbed().config().cores / 2;
    core::TrainOptions topts;
    topts.adaptive.quota = quota;
    slomo::SlomoTrainOptions sopts;
    sopts.samples = quota;

    slomo::SlomoTrainer strainer(library_);
    for (const auto &name : nf_names) {
        if (kits_.count(name))
            continue;
        NfKit kit;
        kit.nf = nfs::makeByName(name, library_.devices());
        kit.tomur = trainer_.train(*kit.nf, profile, topts);
        kit.slomo = strainer.train(*kit.nf, profile, sopts);
        kit.workload = trainer_.workloadOf(*kit.nf, profile);
        kit.contention = trainer_.contentionOf(*kit.nf, profile);
        kit.soloThroughput =
            library_.testbed().runSolo(kit.workload).truthThroughput;
        kits_.emplace(name, std::move(kit));
    }
}

const core::TomurModel &
PlacementContext::tomurModel(const std::string &nf) const
{
    auto it = kits_.find(nf);
    if (it == kits_.end())
        fatal(strf("PlacementContext: unknown NF '%s'", nf.c_str()));
    return it->second.tomur;
}

const slomo::SlomoModel &
PlacementContext::slomoModel(const std::string &nf) const
{
    auto it = kits_.find(nf);
    if (it == kits_.end())
        fatal(strf("PlacementContext: unknown NF '%s'", nf.c_str()));
    return it->second.slomo;
}

PlacementOutcome
PlacementContext::place(const std::vector<Arrival> &arrivals,
                        Strategy strategy)
{
    // Per-NIC resident lists, as indices into `arrivals`.
    std::vector<std::vector<std::size_t>> nics;

    auto kitOf = [&](std::size_t arrival) -> const NfKit & {
        return kits_.at(arrivals[arrival].nfName);
    };

    auto measuredOk = [&](const std::vector<std::size_t> &resident) {
        std::vector<fw::WorkloadProfile> deploy;
        for (std::size_t a : resident)
            deploy.push_back(kitOf(a).workload);
        auto ms = library_.testbed().run(deploy);
        for (std::size_t i = 0; i < resident.size(); ++i) {
            double drop = 1.0 - ms[i].truthThroughput /
                                    kitOf(resident[i]).soloThroughput;
            if (drop > arrivals[resident[i]].slaMaxDrop)
                return false;
        }
        return true;
    };

    auto predictedOk = [&](const std::vector<std::size_t> &resident) {
        for (std::size_t i = 0; i < resident.size(); ++i) {
            const NfKit &target = kitOf(resident[i]);
            std::vector<core::ContentionLevel> levels;
            for (std::size_t j = 0; j < resident.size(); ++j)
                if (j != i)
                    levels.push_back(kitOf(resident[j]).contention);
            double pred;
            if (strategy == Strategy::Tomur) {
                auto d = target.tomur.predictDetailed(
                    levels, arrivals[resident[i]].profile,
                    target.soloThroughput);
                if (d.degraded &&
                    d.confidence < minPredictionConfidence) {
                    // Not enough model health to vouch for this
                    // co-location: refuse it rather than risk an
                    // SLA violation on a low-confidence guess.
                    return false;
                }
                pred = d.predicted;
            } else {
                pred = target.slomo.predict(
                    levels, arrivals[resident[i]].profile);
            }
            double drop = 1.0 - pred / target.soloThroughput;
            if (drop > arrivals[resident[i]].slaMaxDrop)
                return false;
        }
        return true;
    };

    for (std::size_t a = 0; a < arrivals.size(); ++a) {
        if (!kits_.count(arrivals[a].nfName))
            fatal(strf("place: NF '%s' was not trained",
                       arrivals[a].nfName.c_str()));
        int chosen = -1;
        switch (strategy) {
          case Strategy::Monopolization:
            break; // always a fresh NIC
          case Strategy::Greedy: {
            // E3-style resource-greedy [41, 53]: contention-blind,
            // but respects nominal capacity budgets (cores, solo
            // accelerator utilisation, solo DRAM bandwidth). Picks
            // the feasible NIC with the most free cores.
            auto nominalFits =
                [&](const std::vector<std::size_t> &resident) {
                    if (static_cast<int>(resident.size()) >
                        nfsPerNic_) {
                        return false;
                    }
                    double accel_util[hw::numAccelKinds] = {};
                    double dram = 0.0;
                    for (std::size_t r : resident) {
                        const NfKit &k = kitOf(r);
                        dram += (k.contention.counters.memReadRate +
                                 k.contention.counters.memWriteRate) *
                                64.0;
                        for (int a = 0; a < hw::numAccelKinds; ++a) {
                            const auto &ac = k.contention.accel[a];
                            if (ac.used) {
                                accel_util[a] += ac.offeredRate *
                                                 ac.serviceTime;
                            }
                        }
                    }
                    for (double u : accel_util)
                        if (u > 1.0)
                            return false;
                    return dram <= library_.testbed()
                                       .config()
                                       .dramPeakBytesPerSec;
                };
            int best_count = nfsPerNic_;
            for (std::size_t n = 0; n < nics.size(); ++n) {
                auto trial = nics[n];
                trial.push_back(a);
                if (!nominalFits(trial))
                    continue;
                int c = static_cast<int>(nics[n].size());
                if (c < best_count) {
                    best_count = c;
                    chosen = static_cast<int>(n);
                }
            }
            break;
          }
          case Strategy::Slomo:
          case Strategy::Tomur:
          case Strategy::Oracle: {
            for (std::size_t n = 0; n < nics.size(); ++n) {
                if (static_cast<int>(nics[n].size()) >= nfsPerNic_)
                    continue;
                auto trial = nics[n];
                trial.push_back(a);
                bool ok = strategy == Strategy::Oracle
                    ? measuredOk(trial)
                    : predictedOk(trial);
                if (ok) {
                    chosen = static_cast<int>(n);
                    break;
                }
            }
            break;
          }
        }
        if (chosen < 0) {
            nics.emplace_back();
            chosen = static_cast<int>(nics.size()) - 1;
        }
        nics[static_cast<std::size_t>(chosen)].push_back(a);
    }

    // Final accounting against ground truth.
    PlacementOutcome out;
    out.nicsUsed = static_cast<int>(nics.size());
    out.totalNfs = static_cast<int>(arrivals.size());
    for (const auto &resident : nics) {
        std::vector<fw::WorkloadProfile> deploy;
        for (std::size_t a : resident)
            deploy.push_back(kitOf(a).workload);
        auto ms = library_.testbed().run(deploy);
        for (std::size_t i = 0; i < resident.size(); ++i) {
            double drop = 1.0 - ms[i].truthThroughput /
                                    kitOf(resident[i]).soloThroughput;
            if (drop > arrivals[resident[i]].slaMaxDrop)
                ++out.slaViolations;
        }
    }
    return out;
}

int
PlacementContext::oracleNics(const std::vector<Arrival> &arrivals)
{
    return place(arrivals, Strategy::Oracle).nicsUsed;
}

} // namespace tomur::usecases
