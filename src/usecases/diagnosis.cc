#include "usecases/diagnosis.hh"

#include "common/logging.hh"

namespace tomur::usecases {

const char *
resourceName(Resource r)
{
    switch (r) {
      case Resource::Memory:
        return "memory";
      case Resource::Regex:
        return "regex";
      case Resource::Compression:
        return "compression";
      case Resource::Crypto:
        return "crypto";
    }
    panic("resourceName: bad resource");
}

Resource
truthBottleneck(const sim::Measurement &m)
{
    switch (m.bottleneck) {
      case sim::Bottleneck::Regex:
        return Resource::Regex;
      case sim::Bottleneck::Compression:
        return Resource::Compression;
      case sim::Bottleneck::Crypto:
        return Resource::Crypto;
      default:
        // CPU+memory (and the rare NIC/pacing cases) all present as
        // "not the accelerator" to an operator profiling hotspots.
        return Resource::Memory;
    }
}

Resource
resourceFromAttribution(int resource)
{
    switch (resource) {
      case 1:
        return Resource::Regex;
      case 2:
        return Resource::Compression;
      case 3:
        return Resource::Crypto;
      default:
        return Resource::Memory;
    }
}

Resource
tomurDiagnosis(const core::ContentionAttribution &a)
{
    return resourceFromAttribution(a.dominantResource);
}

Resource
tomurDiagnosis(const core::PredictionBreakdown &b)
{
    return tomurDiagnosis(core::attributeContention(b));
}

DiagnosisTrial
makeTrial(double mtbr, Resource truth,
          const core::ContentionAttribution &a)
{
    DiagnosisTrial t;
    t.mtbr = mtbr;
    t.truth = truth;
    t.tomur = tomurDiagnosis(a);
    t.slomo = Resource::Memory;
    t.degraded = a.degraded;
    t.confidence = a.confidence;
    return t;
}

DiagnosisScore
scoreTrials(const std::vector<DiagnosisTrial> &trials,
            double min_confidence)
{
    DiagnosisScore s;
    std::size_t tomur_ok = 0, slomo_ok = 0;
    for (const auto &t : trials) {
        if (t.confidence < min_confidence) {
            ++s.skippedLowConfidence;
            continue;
        }
        ++s.trials;
        tomur_ok += t.tomur == t.truth;
        slomo_ok += t.slomo == t.truth;
    }
    if (s.trials == 0)
        return s;
    s.tomurCorrectPct = 100.0 * tomur_ok / s.trials;
    s.slomoCorrectPct = 100.0 * slomo_ok / s.trials;
    return s;
}

} // namespace tomur::usecases
