/**
 * @file
 * Contention-aware NF scheduling (§7.5.1): place arriving NFs onto a
 * growing fleet of SmartNICs, maximising utilisation while keeping
 * SLAs (maximum allowed throughput drop vs running solo). Online
 * strategies: monopolization, resource-greedy, and prediction-guided
 * (SLOMO or Tomur). An oracle using true testbed measurements
 * provides the near-optimal NIC count used as the wastage baseline
 * (the paper uses exhaustive search, infeasible at this scale).
 */

#ifndef TOMUR_USECASES_PLACEMENT_HH
#define TOMUR_USECASES_PLACEMENT_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "slomo/slomo.hh"
#include "tomur/profiler.hh"

namespace tomur::usecases {

/** Placement strategies compared in Table 6. */
enum class Strategy
{
    Monopolization, ///< one NF per NIC
    Greedy,         ///< most-available-resources first [41, 53]
    Slomo,          ///< place when SLOMO predicts no SLA violation
    Tomur,          ///< place when Tomur predicts no SLA violation
    Oracle,         ///< true-measurement-guided (wastage baseline)
};

/** Strategy name for reports. */
const char *strategyName(Strategy s);

/** One NF arrival. */
struct Arrival
{
    std::string nfName;
    traffic::TrafficProfile profile;
    /** SLA: maximum allowed relative throughput drop vs solo. */
    double slaMaxDrop = 0.1;
};

/** Outcome of placing one arrival sequence. */
struct PlacementOutcome
{
    int nicsUsed = 0;
    int slaViolations = 0; ///< NFs below SLA in the final deployment
    int totalNfs = 0;

    double
    violationRate() const
    {
        return totalNfs ? 100.0 * slaViolations / totalNfs : 0.0;
    }
};

/**
 * Shared placement context: trained models and profiled workloads
 * for every NF type in the arrival mix.
 */
class PlacementContext
{
  public:
    /**
     * Train models for the given NF types at the default profile.
     * @param quota training quota per NF (kept small: placement uses
     *        a fixed traffic profile)
     */
    PlacementContext(core::BenchLibrary &library,
                     const std::vector<std::string> &nf_names,
                     const traffic::TrafficProfile &profile,
                     std::size_t quota = 80);

    /** Run one arrival sequence under a strategy. */
    PlacementOutcome place(const std::vector<Arrival> &arrivals,
                           Strategy strategy);

    /** NICs a (near-)optimal plan needs, via the oracle strategy. */
    int oracleNics(const std::vector<Arrival> &arrivals);

    core::BenchLibrary &library() { return library_; }
    core::TomurTrainer &trainer() { return trainer_; }

    const core::TomurModel &tomurModel(const std::string &nf) const;
    const slomo::SlomoModel &slomoModel(const std::string &nf) const;

    /**
     * Minimum Tomur prediction confidence accepted when deciding a
     * co-location. A degraded prediction below this is treated as
     * "cannot guarantee the SLA" and the NF goes to a fresh NIC —
     * the conservative direction: a degraded model costs NICs, never
     * SLA violations.
     */
    double minPredictionConfidence = 0.5;

  private:
    struct NfKit
    {
        std::unique_ptr<framework::NetworkFunction> nf;
        framework::WorkloadProfile workload;
        core::ContentionLevel contention;
        double soloThroughput = 0.0;
        core::TomurModel tomur;
        slomo::SlomoModel slomo;
    };

    core::BenchLibrary &library_;
    core::TomurTrainer trainer_;
    traffic::TrafficProfile profile_;
    std::map<std::string, NfKit> kits_;
    std::vector<std::string> names_;
    int nfsPerNic_ = 4;
};

} // namespace tomur::usecases

#endif // TOMUR_USECASES_PLACEMENT_HH
