/**
 * @file
 * Performance diagnosis (§7.5.2): identify which resource bottlenecks
 * an NF under contention as traffic shifts. Ground truth comes from
 * hotspot analysis (here: the testbed's noise-free internals, the
 * stand-in for perf-tools); Tomur diagnoses from its per-resource
 * predictions, SLOMO can only ever point at memory.
 */

#ifndef TOMUR_USECASES_DIAGNOSIS_HH
#define TOMUR_USECASES_DIAGNOSIS_HH

#include <string>
#include <vector>

#include "sim/testbed.hh"
#include "tomur/attribution.hh"
#include "tomur/predictor.hh"

namespace tomur::usecases {

/** Diagnosable resources. */
enum class Resource
{
    Memory,
    Regex,
    Compression,
    Crypto,
};

/** Resource name for reports. */
const char *resourceName(Resource r);

/** Ground-truth resource from a testbed measurement. */
Resource truthBottleneck(const sim::Measurement &m);

/** Diagnosable resource for one attributed-resource index (the
 *  attribution module's convention: 0 = memory, else 1 + accel). */
Resource resourceFromAttribution(int resource);

/**
 * Tomur's diagnosis: the top-ranked resource of a prediction's
 * contention attribution.
 */
Resource tomurDiagnosis(const core::ContentionAttribution &a);

/** Convenience overload: attribute the breakdown, then diagnose. */
Resource tomurDiagnosis(const core::PredictionBreakdown &breakdown);

/** One diagnosis trial outcome. */
struct DiagnosisTrial
{
    double mtbr = 0.0;
    Resource truth = Resource::Memory;
    Resource tomur = Resource::Memory;
    Resource slomo = Resource::Memory; ///< always Memory
    /** Carried over from the prediction's attribution: a diagnosis
     *  made on a degraded fallback path is flagged so scoring can
     *  discount it instead of counting a guess as a verdict. */
    bool degraded = false;
    double confidence = 1.0;
};

/**
 * Build a trial from the prediction's contention attribution (the
 * one place Tomur's verdict, its confidence, and the degraded flag
 * are read off a prediction).
 */
DiagnosisTrial makeTrial(double mtbr, Resource truth,
                         const core::ContentionAttribution &a);

/** Correctness percentages over a set of trials. */
struct DiagnosisScore
{
    double tomurCorrectPct = 0.0;
    double slomoCorrectPct = 0.0;
    std::size_t trials = 0;
    /** Trials excluded because their prediction confidence fell
     *  below the minConfidence given to scoreTrials(). */
    std::size_t skippedLowConfidence = 0;
};

/**
 * Score a batch of trials. Trials whose prediction confidence is
 * below min_confidence are excluded from the percentages (counted in
 * skippedLowConfidence); the default 0.0 keeps every trial, matching
 * the pre-robustness behaviour.
 */
DiagnosisScore scoreTrials(const std::vector<DiagnosisTrial> &trials,
                           double min_confidence = 0.0);

} // namespace tomur::usecases

#endif // TOMUR_USECASES_DIAGNOSIS_HH
