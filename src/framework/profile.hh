/**
 * @file
 * Workload profiling: run sample traffic through an NF and distil its
 * per-packet resource demand into a WorkloadProfile the testbed can
 * schedule. This corresponds to deploying the NF and watching it
 * process real packets — no source-level knowledge is extracted
 * beyond what execution reveals.
 */

#ifndef TOMUR_FRAMEWORK_PROFILE_HH
#define TOMUR_FRAMEWORK_PROFILE_HH

#include <cstdint>
#include <string>

#include "framework/nf.hh"
#include "regex/matcher.hh"
#include "traffic/generator.hh"
#include "traffic/profile.hh"

namespace tomur::framework {

/** Per-accelerator demand of a workload. */
struct AccelUse
{
    bool used = false;
    double requestsPerPacket = 0.0;
    double bytesPerRequest = 0.0;
    double matchesPerRequest = 0.0;
    int queues = 1;
};

/**
 * The resource demand of one NF under one traffic profile.
 */
struct WorkloadProfile
{
    std::string nfName;
    ExecutionPattern pattern = ExecutionPattern::RunToCompletion;
    int cores = 2;

    double instrPerPacket = 0.0;
    double llcReadsPerPacket = 0.0;
    double llcWritesPerPacket = 0.0;
    double wssBytes = 0.0;
    double reuse = 1.0;         ///< access-weighted temporal reuse
    double frameBytes = 0.0;    ///< mean wire size per packet
    double dropFraction = 0.0;  ///< share of packets dropped
    double pacedRate = 0.0;     ///< open-loop pacing (0 = closed loop)

    AccelUse accel[hw::numAccelKinds];

    traffic::TrafficProfile traffic;

    /** Does the workload touch the given accelerator? */
    bool
    usesAccel(hw::AccelKind kind) const
    {
        return accel[static_cast<int>(kind)].used;
    }

    const AccelUse &
    accelUse(hw::AccelKind kind) const
    {
        return accel[static_cast<int>(kind)];
    }
};

/** Profiling options. */
struct ProfileOptions
{
    std::size_t samplePackets = 384;
    std::uint64_t seed = 12345;
    /**
     * Warm per-flow state by pushing one (payload-free, accelerator-
     * non-functional) packet per distinct flow before measuring, so
     * table footprints reflect the profile's flow count.
     */
    bool warmFlows = true;
    /** Cap on warm-up packets (one per flow up to this). */
    std::size_t maxWarmupPackets = 600000;
};

/**
 * Incremental profiling session over one NF.
 *
 * Flow identities are a pure function of the flow index
 * (TrafficGen::flowTuple), so the warm set of a profile with fewer
 * flows is a prefix of the warm set of any larger profile. A session
 * exploits that: profiling a sequence of traffic profiles in
 * ascending flow-count order warms each flow exactly once instead of
 * re-warming from scratch per profile — the dominant cost of a
 * training sweep. Profiling a smaller flow count than the NF
 * currently holds (or detecting that the NF was driven or reset
 * behind the session's back, via NetworkFunction::packetsProcessed)
 * falls back to a full reset + re-warm, which is exactly the
 * one-shot profileWorkload behaviour.
 */
class WorkloadProfiler
{
  public:
    /**
     * @param ruleset ruleset for MTBR payload synthesis (may be null
     *        for mtbr == 0 profiles)
     */
    WorkloadProfiler(NetworkFunction &nf,
                     const regex::RuleSet *ruleset,
                     ProfileOptions opts = {});

    /** Profile one traffic profile, reusing warm flow state from
     *  earlier calls of this session when sound. */
    WorkloadProfile
    profile(const traffic::TrafficProfile &traffic_profile);

    /** The NF this session profiles (identity check for caches). */
    const NetworkFunction *target() const { return &nf_; }

  private:
    NetworkFunction &nf_;
    const regex::RuleSet *ruleset_;
    ProfileOptions opts_;
    std::uint64_t warmedFlows_ = 0;   ///< flows [0, n) in NF tables
    std::uint64_t expectedPackets_ = 0; ///< tamper detection
    bool warmed_ = false;
};

/**
 * Profile one NF under one traffic profile (one-shot).
 *
 * The NF is reset, warmed across the profile's flows, then measured
 * over opts.samplePackets fully-functional packets. Equivalent to a
 * fresh WorkloadProfiler's first profile() call.
 *
 * @param ruleset ruleset for MTBR payload synthesis (may be null for
 *        mtbr == 0 profiles)
 */
WorkloadProfile
profileWorkload(NetworkFunction &nf,
                const traffic::TrafficProfile &traffic_profile,
                const regex::RuleSet *ruleset,
                const ProfileOptions &opts = {});

} // namespace tomur::framework

#endif // TOMUR_FRAMEWORK_PROFILE_HH
