#include "framework/cost.hh"

namespace tomur::framework {

void
CostContext::addMemAccess(const MemRegion &region, double reads,
                          double writes)
{
    memReads_ += reads;
    memWrites_ += writes;
    auto &use = regions_[region.name];
    use.bytes = region.bytes;
    use.reuse = region.reuse;
    use.accesses += reads + writes;
}

void
CostContext::offload(const AccelRequest &req)
{
    offloads_.push_back(req);
}

void
CostContext::reset()
{
    instructions_ = 0.0;
    memReads_ = 0.0;
    memWrites_ = 0.0;
    offloads_.clear();
    regions_.clear();
}

} // namespace tomur::framework
