#include "framework/accel_dev.hh"

#include <algorithm>
#include <unordered_map>

#include "common/logging.hh"
#include "net/headers.hh"

namespace tomur::framework {

RegexDevice::RegexDevice(const regex::RuleSet &rules)
    : matcher_(rules)
{
}

RegexScanResult
RegexDevice::scan(std::span<const std::uint8_t> payload,
                  CostContext &ctx)
{
    RegexScanResult res;
    if (!ctx.accelFunctional())
        return res;
    res.matchCount = matcher_.countMatches(payload);
    res.matchedRules = matcher_.matchedRules(payload);
    AccelRequest req;
    req.kind = hw::AccelKind::Regex;
    req.bytes = static_cast<double>(payload.size());
    req.matches = static_cast<double>(res.matchCount);
    ctx.offload(req);
    return res;
}

namespace {

constexpr std::size_t minMatchLen = 4;
constexpr std::size_t maxMatchLen = 131;
constexpr std::size_t maxLiteralRun = 128;

std::uint32_t
hash3(const std::uint8_t *p)
{
    return (std::uint32_t(p[0]) << 16) ^ (std::uint32_t(p[1]) << 8) ^
           p[2];
}

} // namespace

std::vector<std::uint8_t>
CompressionDevice::lzCompress(std::span<const std::uint8_t> input)
{
    std::vector<std::uint8_t> out;
    out.reserve(input.size() + input.size() / 64 + 16);
    std::unordered_map<std::uint32_t, std::size_t> table;

    std::size_t lit_start = 0;
    auto flushLiterals = [&](std::size_t end) {
        std::size_t pos = lit_start;
        while (pos < end) {
            std::size_t run = std::min(maxLiteralRun, end - pos);
            out.push_back(static_cast<std::uint8_t>(run - 1));
            out.insert(out.end(), input.begin() + pos,
                       input.begin() + pos + run);
            pos += run;
        }
        lit_start = end;
    };

    std::size_t i = 0;
    while (i + minMatchLen <= input.size()) {
        std::uint32_t h = hash3(input.data() + i);
        auto it = table.find(h);
        std::size_t match_len = 0;
        std::size_t match_pos = 0;
        if (it != table.end()) {
            std::size_t cand = it->second;
            std::size_t dist = i - cand;
            if (dist >= 1 && dist <= 0xffff) {
                std::size_t len = 0;
                std::size_t max_len =
                    std::min(maxMatchLen, input.size() - i);
                while (len < max_len &&
                       input[cand + len] == input[i + len]) {
                    ++len;
                }
                if (len >= minMatchLen) {
                    match_len = len;
                    match_pos = cand;
                }
            }
        }
        table[h] = i;
        if (match_len) {
            flushLiterals(i);
            out.push_back(static_cast<std::uint8_t>(
                0x80 | (match_len - minMatchLen)));
            out.resize(out.size() + 2);
            net::storeBe16(out.data() + out.size() - 2,
                           static_cast<std::uint16_t>(i - match_pos));
            i += match_len;
            lit_start = i;
        } else {
            ++i;
        }
    }
    flushLiterals(input.size());
    return out;
}

std::vector<std::uint8_t>
CompressionDevice::lzDecompress(std::span<const std::uint8_t> input)
{
    std::vector<std::uint8_t> out;
    std::size_t i = 0;
    while (i < input.size()) {
        std::uint8_t ctl = input[i++];
        if (ctl < 0x80) {
            std::size_t run = std::size_t(ctl) + 1;
            if (i + run > input.size())
                fatal("lzDecompress: truncated literal run");
            out.insert(out.end(), input.begin() + i,
                       input.begin() + i + run);
            i += run;
        } else {
            if (i + 2 > input.size())
                fatal("lzDecompress: truncated match token");
            std::size_t len = std::size_t(ctl & 0x7f) + minMatchLen;
            std::size_t dist = net::loadBe16(input.data() + i);
            i += 2;
            if (dist == 0 || dist > out.size())
                fatal("lzDecompress: bad match distance");
            std::size_t from = out.size() - dist;
            for (std::size_t k = 0; k < len; ++k)
                out.push_back(out[from + k]);
        }
    }
    return out;
}

CompressResult
CompressionDevice::compress(std::span<const std::uint8_t> payload,
                            CostContext &ctx)
{
    CompressResult res;
    res.compressedSize = payload.size();
    if (!ctx.accelFunctional())
        return res;
    auto compressed = lzCompress(payload);
    res.compressedSize = compressed.size();
    res.ratio = payload.empty()
        ? 1.0
        : static_cast<double>(compressed.size()) / payload.size();
    AccelRequest req;
    req.kind = hw::AccelKind::Compression;
    req.bytes = static_cast<double>(payload.size());
    req.matches = 0.0;
    ctx.offload(req);
    return res;
}

namespace {

inline std::uint32_t
rotl32(std::uint32_t x, int k)
{
    return (x << k) | (x >> (32 - k));
}

inline void
quarterRound(std::uint32_t s[16], int a, int b, int c, int d)
{
    s[a] += s[b];
    s[d] = rotl32(s[d] ^ s[a], 16);
    s[c] += s[d];
    s[b] = rotl32(s[b] ^ s[c], 12);
    s[a] += s[b];
    s[d] = rotl32(s[d] ^ s[a], 8);
    s[c] += s[d];
    s[b] = rotl32(s[b] ^ s[c], 7);
}

} // namespace

void
CryptoDevice::block(const Key &key, std::uint32_t counter,
                    std::uint8_t out[64])
{
    // RFC 7539 state: constants, 256-bit key, counter, 96-bit nonce.
    std::uint32_t state[16] = {
        0x61707865, 0x3320646e, 0x79622d32, 0x6b206574,
        key.words[0], key.words[1], key.words[2], key.words[3],
        key.words[4], key.words[5], key.words[6], key.words[7],
        counter, key.nonce[0], key.nonce[1], key.nonce[2],
    };
    std::uint32_t working[16];
    for (int i = 0; i < 16; ++i)
        working[i] = state[i];
    for (int round = 0; round < 10; ++round) {
        quarterRound(working, 0, 4, 8, 12);
        quarterRound(working, 1, 5, 9, 13);
        quarterRound(working, 2, 6, 10, 14);
        quarterRound(working, 3, 7, 11, 15);
        quarterRound(working, 0, 5, 10, 15);
        quarterRound(working, 1, 6, 11, 12);
        quarterRound(working, 2, 7, 8, 13);
        quarterRound(working, 3, 4, 9, 14);
    }
    for (int i = 0; i < 16; ++i) {
        std::uint32_t v = working[i] + state[i];
        out[4 * i + 0] = static_cast<std::uint8_t>(v);
        out[4 * i + 1] = static_cast<std::uint8_t>(v >> 8);
        out[4 * i + 2] = static_cast<std::uint8_t>(v >> 16);
        out[4 * i + 3] = static_cast<std::uint8_t>(v >> 24);
    }
}

std::vector<std::uint8_t>
CryptoDevice::chacha20(std::span<const std::uint8_t> input,
                       const Key &key, std::uint32_t counter)
{
    std::vector<std::uint8_t> out(input.begin(), input.end());
    std::uint8_t keystream[64];
    for (std::size_t off = 0; off < out.size(); off += 64) {
        block(key, counter++, keystream);
        std::size_t n = std::min<std::size_t>(64, out.size() - off);
        for (std::size_t i = 0; i < n; ++i)
            out[off + i] ^= keystream[i];
    }
    return out;
}

std::vector<std::uint8_t>
CryptoDevice::encrypt(std::span<const std::uint8_t> payload,
                      CostContext &ctx)
{
    return encrypt(payload, ctx, Key{}, 1);
}

std::vector<std::uint8_t>
CryptoDevice::encrypt(std::span<const std::uint8_t> payload,
                      CostContext &ctx, const Key &key,
                      std::uint32_t counter)
{
    if (!ctx.accelFunctional())
        return {payload.begin(), payload.end()};
    auto out = chacha20(payload, key, counter);
    AccelRequest req;
    req.kind = hw::AccelKind::Crypto;
    req.bytes = static_cast<double>(payload.size());
    req.matches = 0.0;
    ctx.offload(req);
    return out;
}

} // namespace tomur::framework
