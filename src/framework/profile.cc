#include "framework/profile.hh"

#include <algorithm>

#include "common/logging.hh"

namespace tomur::framework {

WorkloadProfile
profileWorkload(NetworkFunction &nf,
                const traffic::TrafficProfile &traffic_profile,
                const regex::RuleSet *ruleset,
                const ProfileOptions &opts)
{
    if (opts.samplePackets == 0)
        fatal("profileWorkload: zero sample packets");

    nf.reset();
    traffic::TrafficGen gen(traffic_profile, ruleset, opts.seed);

    // Phase 1: warm per-flow state so data-structure footprints match
    // the flow count (accelerator-non-functional, empty payloads —
    // flow state depends only on addressing).
    if (opts.warmFlows) {
        CostContext warm_ctx;
        warm_ctx.setAccelFunctional(false);
        std::uint64_t n = std::min<std::uint64_t>(
            traffic_profile.flowCount, opts.maxWarmupPackets);
        // Reuse one buffer, rewriting the addressing per flow: the
        // warm-up only needs flow identity, not payload bytes.
        net::Packet pkt =
            net::PacketBuilder::build(gen.flowTuple(0), {});
        for (std::uint64_t i = 0; i < n; ++i) {
            // Restore the TTL before rewriting (NFs may have
            // decremented or re-addressed the shared buffer).
            pkt.bytes()[net::ethHeaderLen + 8] = 64;
            pkt.rewriteAddressing(gen.flowTuple(i));
            nf.processPacket(pkt, warm_ctx);
        }
    }

    // Phase 2: measure over fully-functional sample packets.
    CostContext ctx;
    double frame_bytes = 0.0;
    std::size_t drops = 0;
    for (std::size_t i = 0; i < opts.samplePackets; ++i) {
        net::Packet pkt = gen.next();
        frame_bytes += static_cast<double>(pkt.size());
        if (nf.processPacket(pkt, ctx) == Verdict::Drop)
            ++drops;
    }

    const double n = static_cast<double>(opts.samplePackets);
    WorkloadProfile w;
    w.nfName = nf.name();
    w.pattern = nf.pattern();
    w.cores = nf.cores();
    w.traffic = traffic_profile;
    w.pacedRate = nf.pacedRate();
    w.instrPerPacket = ctx.instructions() / n;
    w.llcReadsPerPacket = ctx.memReads() / n;
    w.llcWritesPerPacket = ctx.memWrites() / n;
    w.frameBytes = frame_bytes / n;
    w.dropFraction = static_cast<double>(drops) / n;

    // Working set: sum of region footprints; reuse: access-weighted.
    double wss = 0.0, reuse_weighted = 0.0, accesses = 0.0;
    for (const auto &[name, use] : ctx.regions()) {
        wss += use.bytes;
        reuse_weighted += use.reuse * use.accesses;
        accesses += use.accesses;
    }
    w.wssBytes = wss;
    w.reuse = accesses > 0.0 ? reuse_weighted / accesses : 1.0;

    // Accelerator demand.
    double req_count[hw::numAccelKinds] = {};
    double req_bytes[hw::numAccelKinds] = {};
    double req_matches[hw::numAccelKinds] = {};
    for (const auto &r : ctx.offloads()) {
        int k = static_cast<int>(r.kind);
        req_count[k] += 1.0;
        req_bytes[k] += r.bytes;
        req_matches[k] += r.matches;
    }
    for (int k = 0; k < hw::numAccelKinds; ++k) {
        AccelUse &use = w.accel[k];
        if (req_count[k] <= 0.0)
            continue;
        use.used = true;
        use.requestsPerPacket = req_count[k] / n;
        use.bytesPerRequest = req_bytes[k] / req_count[k];
        use.matchesPerRequest = req_matches[k] / req_count[k];
        use.queues = nf.queueCount(static_cast<hw::AccelKind>(k));
    }
    return w;
}

} // namespace tomur::framework
