#include "framework/profile.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/telemetry.hh"
#include "common/trace.hh"

namespace tomur::framework {

namespace {

/** Process-wide profiling metrics (tomur_profile_*). */
struct ProfileMetrics
{
    Counter &workloads =
        metrics().counter("tomur_profile_workloads_total");
    Counter &packets =
        metrics().counter("tomur_profile_packets_total");
    Counter &warmupPackets =
        metrics().counter("tomur_profile_warmup_packets_total");
    Histogram &instrPerPacket = metrics().histogram(
        "tomur_profile_instr_per_packet",
        Histogram::exponentialBounds(64.0, 4.0, 8));
};

ProfileMetrics &
profileMetrics()
{
    static ProfileMetrics pm;
    return pm;
}

} // namespace

WorkloadProfiler::WorkloadProfiler(NetworkFunction &nf,
                                   const regex::RuleSet *ruleset,
                                   ProfileOptions opts)
    : nf_(nf), ruleset_(ruleset), opts_(opts)
{
}

WorkloadProfile
WorkloadProfiler::profile(
    const traffic::TrafficProfile &traffic_profile)
{
    if (opts_.samplePackets == 0)
        fatal("profileWorkload: zero sample packets");

    TraceSpan span("profile.workload");
    span.field("nf", nf_.name());
    span.field("flows",
               static_cast<std::uint64_t>(traffic_profile.flowCount));
    span.field("packet_size", static_cast<std::uint64_t>(
                                  traffic_profile.packetSize));
    span.field("mtbr", traceFormat(traffic_profile.mtbr));

    // Incremental warm state is sound only when the NF still holds
    // exactly the flows this session warmed (flow identity is a pure
    // function of the flow index, so warm sets nest by flow count)
    // and the new profile wants at least as many.
    std::uint64_t want = opts_.warmFlows
        ? std::min<std::uint64_t>(traffic_profile.flowCount,
                                  opts_.maxWarmupPackets)
        : 0;
    bool incremental = warmed_ && opts_.warmFlows &&
                       nf_.packetsProcessed() == expectedPackets_ &&
                       want >= warmedFlows_;
    if (!incremental) {
        nf_.reset();
        warmedFlows_ = 0;
    }
    span.field("warm", incremental ? "incremental" : "fresh");

    traffic::TrafficGen gen(traffic_profile, ruleset_, opts_.seed);

    // Phase 1: warm per-flow state so data-structure footprints match
    // the flow count (accelerator-non-functional, empty payloads —
    // flow state depends only on addressing).
    if (opts_.warmFlows && want > warmedFlows_) {
        CostContext warm_ctx;
        warm_ctx.setAccelFunctional(false);
        // Reuse one buffer, rewriting the addressing per flow: the
        // warm-up only needs flow identity, not payload bytes.
        net::Packet pkt =
            net::PacketBuilder::build(gen.flowTuple(0), {});
        for (std::uint64_t i = warmedFlows_; i < want; ++i) {
            // Restore the TTL before rewriting (NFs may have
            // decremented or re-addressed the shared buffer).
            pkt.bytes()[net::ethHeaderLen + 8] = 64;
            pkt.rewriteAddressing(gen.flowTuple(i));
            nf_.processPacket(pkt, warm_ctx);
        }
        profileMetrics().warmupPackets.inc(want - warmedFlows_);
        warmedFlows_ = want;
    }

    // Phase 2: measure over fully-functional sample packets.
    CostContext ctx;
    double frame_bytes = 0.0;
    std::size_t drops = 0;
    for (std::size_t i = 0; i < opts_.samplePackets; ++i) {
        net::Packet pkt = gen.next();
        frame_bytes += static_cast<double>(pkt.size());
        if (nf_.processPacket(pkt, ctx) == Verdict::Drop)
            ++drops;
    }

    const double n = static_cast<double>(opts_.samplePackets);
    WorkloadProfile w;
    w.nfName = nf_.name();
    w.pattern = nf_.pattern();
    w.cores = nf_.cores();
    w.traffic = traffic_profile;
    w.pacedRate = nf_.pacedRate();
    w.instrPerPacket = ctx.instructions() / n;
    w.llcReadsPerPacket = ctx.memReads() / n;
    w.llcWritesPerPacket = ctx.memWrites() / n;
    w.frameBytes = frame_bytes / n;
    w.dropFraction = static_cast<double>(drops) / n;

    // Working set: sum of region footprints; reuse: access-weighted.
    // Per-region attribution points ride on the sorted region map, so
    // the emitted order is deterministic.
    double wss = 0.0, reuse_weighted = 0.0, accesses = 0.0;
    for (const auto &[name, use] : ctx.regions()) {
        wss += use.bytes;
        reuse_weighted += use.reuse * use.accesses;
        accesses += use.accesses;
        if (span.active()) {
            tracePoint("profile.region",
                       {{"region", name},
                        {"bytes", traceFormat(use.bytes)},
                        {"accesses", traceFormat(use.accesses)},
                        {"reuse", traceFormat(use.reuse)}});
        }
    }
    w.wssBytes = wss;
    w.reuse = accesses > 0.0 ? reuse_weighted / accesses : 1.0;

    // Accelerator demand.
    double req_count[hw::numAccelKinds] = {};
    double req_bytes[hw::numAccelKinds] = {};
    double req_matches[hw::numAccelKinds] = {};
    for (const auto &r : ctx.offloads()) {
        int k = static_cast<int>(r.kind);
        req_count[k] += 1.0;
        req_bytes[k] += r.bytes;
        req_matches[k] += r.matches;
    }
    for (int k = 0; k < hw::numAccelKinds; ++k) {
        AccelUse &use = w.accel[k];
        if (req_count[k] <= 0.0)
            continue;
        use.used = true;
        use.requestsPerPacket = req_count[k] / n;
        use.bytesPerRequest = req_bytes[k] / req_count[k];
        use.matchesPerRequest = req_matches[k] / req_count[k];
        use.queues = nf_.queueCount(static_cast<hw::AccelKind>(k));
        if (span.active()) {
            tracePoint(
                "profile.accel",
                {{"kind",
                  hw::accelName(static_cast<hw::AccelKind>(k))},
                 {"req_per_pkt", traceFormat(use.requestsPerPacket)},
                 {"bytes_per_req", traceFormat(use.bytesPerRequest)}},
                k);
        }
    }

    profileMetrics().workloads.inc();
    profileMetrics().packets.inc(opts_.samplePackets);
    profileMetrics().instrPerPacket.observe(w.instrPerPacket);
    span.field("instr_per_pkt", traceFormat(w.instrPerPacket));
    span.field("wss_bytes", traceFormat(w.wssBytes));
    span.field("drop_fraction", traceFormat(w.dropFraction));

    expectedPackets_ = nf_.packetsProcessed();
    warmed_ = true;
    return w;
}

WorkloadProfile
profileWorkload(NetworkFunction &nf,
                const traffic::TrafficProfile &traffic_profile,
                const regex::RuleSet *ruleset,
                const ProfileOptions &opts)
{
    WorkloadProfiler session(nf, ruleset, opts);
    return session.profile(traffic_profile);
}

} // namespace tomur::framework
