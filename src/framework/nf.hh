/**
 * @file
 * Network function: a named chain of elements plus deployment
 * metadata (execution pattern, core allocation, accelerator queue
 * counts).
 */

#ifndef TOMUR_FRAMEWORK_NF_HH
#define TOMUR_FRAMEWORK_NF_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "framework/element.hh"
#include "hw/config.hh"

namespace tomur::framework {

/** How the NF schedules its per-packet work across resources
 *  (paper §4.2). */
enum class ExecutionPattern
{
    Pipeline,        ///< stages decoupled; throughput = slowest stage
    RunToCompletion, ///< a core carries the packet end to end
};

/** Pattern name for reports. */
const char *patternName(ExecutionPattern p);

/**
 * A deployable network function.
 */
class NetworkFunction
{
  public:
    NetworkFunction(std::string name, ExecutionPattern pattern);

    NetworkFunction(const NetworkFunction &) = delete;
    NetworkFunction &operator=(const NetworkFunction &) = delete;
    virtual ~NetworkFunction() = default;

    const std::string &name() const { return name_; }
    ExecutionPattern pattern() const { return pattern_; }

    /** Dedicated SoC cores (the paper pins 2 per NF). */
    int cores() const { return cores_; }
    void setCores(int n);

    /** Request queues toward an accelerator (n_j in Eq. 2). */
    int queueCount(hw::AccelKind kind) const;
    void setQueueCount(hw::AccelKind kind, int n);

    /**
     * Open-loop pacing in packets/s; 0 means closed loop (driven at
     * maximum rate, the paper's default). The synthetic benchmark NFs
     * use pacing to assert controllable contention levels (§6).
     */
    double pacedRate() const { return pacedRate_; }
    void setPacedRate(double pps);

    /** Append an element to the chain. */
    void add(std::unique_ptr<Element> element);

    /** Run one packet through the chain. */
    Verdict processPacket(net::Packet &pkt, CostContext &ctx);

    /** Packets processed since construction or the last reset().
     *  Lets an incremental profiler detect that the NF was driven
     *  (or reset) behind its back and rebuild its warm state. */
    std::uint64_t packetsProcessed() const
    {
        return packetsProcessed_;
    }

    /** Reset all element state. */
    void reset();

    /** Union of element memory regions. */
    std::vector<MemRegion> regions() const;

    const std::vector<std::unique_ptr<Element>> &elements() const
    {
        return elements_;
    }

  private:
    std::string name_;
    ExecutionPattern pattern_;
    int cores_ = 2;
    double pacedRate_ = 0.0;
    int queues_[hw::numAccelKinds] = {1, 1, 1};
    std::uint64_t packetsProcessed_ = 0;
    std::vector<std::unique_ptr<Element>> elements_;
};

} // namespace tomur::framework

#endif // TOMUR_FRAMEWORK_NF_HH
