#include "framework/flow_table.hh"

// FlowTable is a header-only template; this TU anchors the target.

namespace tomur::framework {
} // namespace tomur::framework
