/**
 * @file
 * Per-packet resource-cost accounting.
 *
 * Elements process packets functionally (real parsing, table updates,
 * payload scans) and simultaneously record the resource demand of
 * that work: retired instructions, LLC-visible memory accesses per
 * named region, and accelerator requests. The workload profiler
 * aggregates these into a WorkloadProfile the testbed can schedule.
 */

#ifndef TOMUR_FRAMEWORK_COST_HH
#define TOMUR_FRAMEWORK_COST_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "hw/config.hh"

namespace tomur::framework {

/** One accelerator request recorded during packet processing. */
struct AccelRequest
{
    hw::AccelKind kind = hw::AccelKind::Regex;
    double bytes = 0.0;
    double matches = 0.0; ///< regex match events (0 for compression)
};

/**
 * A named data region an NF touches, with its current size and reuse
 * behaviour. Elements own their regions and keep `bytes` up to date
 * as structures grow (e.g. flow tables).
 */
struct MemRegion
{
    std::string name;
    double bytes = 0.0;
    /** Temporal reuse of accesses to this region (see CacheWorkload). */
    double reuse = 1.0;
};

/** Accumulated cost of processing packets. */
class CostContext
{
  public:
    /** Add retired instructions. */
    void addInstructions(double n) { instructions_ += n; }

    /**
     * Record LLC-visible accesses to a region.
     * @param region descriptor (identity keyed by name)
     */
    void addMemAccess(const MemRegion &region, double reads,
                      double writes);

    /** Record an accelerator request. */
    void offload(const AccelRequest &req);

    double instructions() const { return instructions_; }
    double memReads() const { return memReads_; }
    double memWrites() const { return memWrites_; }
    const std::vector<AccelRequest> &offloads() const
    {
        return offloads_;
    }

    /** Per-region access-weighted stats observed so far. */
    struct RegionUse
    {
        double bytes = 0.0;  ///< last observed region size
        double reuse = 1.0;
        double accesses = 0.0;
    };
    const std::map<std::string, RegionUse> &regions() const
    {
        return regions_;
    }

    /** Clear all accumulators. */
    void reset();

    /**
     * When false, accelerator devices skip functional work (payload
     * scans/compression) and record no requests. Used by the profiler
     * to warm flow-table state over large flow counts cheaply; the
     * measurement phase always runs fully functional.
     */
    void setAccelFunctional(bool on) { accelFunctional_ = on; }
    bool accelFunctional() const { return accelFunctional_; }

  private:
    bool accelFunctional_ = true;
    double instructions_ = 0.0;
    double memReads_ = 0.0;
    double memWrites_ = 0.0;
    std::vector<AccelRequest> offloads_;
    std::map<std::string, RegionUse> regions_;
};

} // namespace tomur::framework

#endif // TOMUR_FRAMEWORK_COST_HH
