#include "framework/nf.hh"

#include "common/logging.hh"
#include "common/strutil.hh"

namespace tomur::framework {

const char *
patternName(ExecutionPattern p)
{
    switch (p) {
      case ExecutionPattern::Pipeline:
        return "pipeline";
      case ExecutionPattern::RunToCompletion:
        return "run-to-completion";
    }
    panic("patternName: bad pattern");
}

NetworkFunction::NetworkFunction(std::string name,
                                 ExecutionPattern pattern)
    : name_(std::move(name)), pattern_(pattern)
{
}

void
NetworkFunction::setCores(int n)
{
    if (n < 1)
        fatal(strf("NF %s: invalid core count %d", name_.c_str(), n));
    cores_ = n;
}

int
NetworkFunction::queueCount(hw::AccelKind kind) const
{
    return queues_[static_cast<int>(kind)];
}

void
NetworkFunction::setQueueCount(hw::AccelKind kind, int n)
{
    if (n < 1)
        fatal(strf("NF %s: invalid queue count %d", name_.c_str(), n));
    queues_[static_cast<int>(kind)] = n;
}

void
NetworkFunction::setPacedRate(double pps)
{
    if (pps < 0.0)
        fatal(strf("NF %s: negative paced rate", name_.c_str()));
    pacedRate_ = pps;
}

void
NetworkFunction::add(std::unique_ptr<Element> element)
{
    elements_.push_back(std::move(element));
}

Verdict
NetworkFunction::processPacket(net::Packet &pkt, CostContext &ctx)
{
    ++packetsProcessed_;
    for (auto &e : elements_) {
        if (e->process(pkt, ctx) == Verdict::Drop)
            return Verdict::Drop;
    }
    return Verdict::Forward;
}

void
NetworkFunction::reset()
{
    packetsProcessed_ = 0;
    for (auto &e : elements_)
        e->reset();
}

std::vector<MemRegion>
NetworkFunction::regions() const
{
    std::vector<MemRegion> out;
    for (const auto &e : elements_)
        for (const auto &r : e->regions())
            out.push_back(r);
    return out;
}

} // namespace tomur::framework
