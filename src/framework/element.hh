/**
 * @file
 * Click-like packet-processing elements.
 *
 * An NF is a chain of elements (a simplified Click configuration).
 * Each element both performs the real packet transformation and
 * records its resource cost into the CostContext.
 */

#ifndef TOMUR_FRAMEWORK_ELEMENT_HH
#define TOMUR_FRAMEWORK_ELEMENT_HH

#include <memory>
#include <string>
#include <vector>

#include "framework/cost.hh"
#include "net/packet.hh"

namespace tomur::framework {

/** What an element decided about the packet. */
enum class Verdict
{
    Forward, ///< pass to the next element
    Drop,    ///< discard (end of chain)
};

/** Nominal instruction costs for common operations, used by elements
 *  when annotating their work. Values are in retired instructions and
 *  reflect typical ARMv8 packet-processing budgets. */
namespace cost {
constexpr double parseHeaders = 120;
constexpr double hashFlow = 60;
constexpr double tableProbe = 40;
constexpr double checksum = 90;
constexpr double perByteTouch = 0.4; ///< per payload byte handled
constexpr double accelSubmit = 250;  ///< doorbell + descriptor setup
constexpr double accelReap = 150;
}

/**
 * Base class for packet-processing elements.
 */
class Element
{
  public:
    explicit Element(std::string name) : name_(std::move(name)) {}
    virtual ~Element() = default;

    Element(const Element &) = delete;
    Element &operator=(const Element &) = delete;

    const std::string &name() const { return name_; }

    /** Process one packet, recording costs into ctx. */
    virtual Verdict process(net::Packet &pkt, CostContext &ctx) = 0;

    /** Reset any per-run state (flow tables, counters). */
    virtual void reset() {}

    /** Current memory regions owned by this element. */
    virtual std::vector<MemRegion> regions() const { return {}; }

  private:
    std::string name_;
};

} // namespace tomur::framework

#endif // TOMUR_FRAMEWORK_ELEMENT_HH
