/**
 * @file
 * Open-addressing flow table with cost accounting.
 *
 * Most of the Table 1 NFs keep per-flow state; this hash table is
 * their shared substrate. It performs real linear-probing lookups
 * and reports its probe counts and byte footprint so the cost model
 * sees realistic memory behaviour (the footprint growing with flow
 * count is exactly the LLC effect §5.2 relies on).
 */

#ifndef TOMUR_FRAMEWORK_FLOW_TABLE_HH
#define TOMUR_FRAMEWORK_FLOW_TABLE_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "framework/element.hh"
#include "net/headers.hh"

namespace tomur::framework {

/**
 * Linear-probing hash table keyed by FiveTuple.
 *
 * @tparam V per-flow value type (trivially copyable state structs)
 */
template <typename V>
class FlowTable
{
  public:
    /** @param name region name reported to the cost model */
    explicit FlowTable(std::string name, std::size_t initial_buckets = 64)
        : regionName_(std::move(name))
    {
        buckets_.resize(roundUpPow2(initial_buckets));
    }

    /**
     * Find or insert an entry, recording probe costs.
     * @param inserted set true when a new entry was created
     * @return reference to the entry's value
     */
    V &
    findOrInsert(const net::FiveTuple &key, CostContext &ctx,
                 bool *inserted = nullptr)
    {
        maybeGrow();
        std::size_t probes = 0;
        std::size_t idx = probe(key, probes);
        bool is_new = !buckets_[idx].used;
        if (is_new) {
            buckets_[idx].used = true;
            buckets_[idx].key = key;
            buckets_[idx].value = V{};
            ++size_;
        }
        if (inserted)
            *inserted = is_new;
        // One read per probe plus one write when inserting/updating.
        ctx.addInstructions(cost::hashFlow +
                            cost::tableProbe * double(probes));
        ctx.addMemAccess(region(), double(probes), is_new ? 1.0 : 0.0);
        return buckets_[idx].value;
    }

    /** Lookup without insertion; nullptr when absent. */
    V *
    find(const net::FiveTuple &key, CostContext &ctx)
    {
        std::size_t probes = 0;
        std::size_t idx = probe(key, probes);
        ctx.addInstructions(cost::hashFlow +
                            cost::tableProbe * double(probes));
        ctx.addMemAccess(region(), double(probes), 0.0);
        return buckets_[idx].used ? &buckets_[idx].value : nullptr;
    }

    /** Number of live entries. */
    std::size_t size() const { return size_; }

    /** Current byte footprint (buckets incl. key + metadata). */
    double
    bytes() const
    {
        return static_cast<double>(buckets_.size() * sizeof(Bucket));
    }

    /** Memory region descriptor for cost accounting. */
    MemRegion
    region() const
    {
        return MemRegion{regionName_, bytes(), 1.0};
    }

    /** Drop all entries and shrink back to the initial footprint. */
    void
    clear()
    {
        buckets_.assign(64, Bucket{});
        size_ = 0;
    }

    /** Iterate live entries (test/diagnostic use). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &b : buckets_)
            if (b.used)
                fn(b.key, b.value);
    }

  private:
    struct Bucket
    {
        bool used = false;
        net::FiveTuple key;
        V value{};
    };

    static std::size_t
    roundUpPow2(std::size_t v)
    {
        std::size_t p = 1;
        while (p < v)
            p <<= 1;
        return p;
    }

    std::size_t
    probe(const net::FiveTuple &key, std::size_t &probes) const
    {
        std::size_t mask = buckets_.size() - 1;
        std::size_t idx = key.hash() & mask;
        probes = 1;
        while (buckets_[idx].used && !(buckets_[idx].key == key)) {
            idx = (idx + 1) & mask;
            ++probes;
            if (probes > buckets_.size())
                panic("FlowTable: table full");
        }
        return idx;
    }

    void
    maybeGrow()
    {
        if (size_ * 4 < buckets_.size() * 3) // load factor 0.75
            return;
        std::vector<Bucket> old = std::move(buckets_);
        buckets_.assign(old.size() * 2, Bucket{});
        size_ = 0;
        for (const auto &b : old) {
            if (!b.used)
                continue;
            std::size_t probes = 0;
            std::size_t idx = probe(b.key, probes);
            buckets_[idx] = b;
            ++size_;
        }
    }

    std::string regionName_;
    std::vector<Bucket> buckets_;
    std::size_t size_ = 0;
};

} // namespace tomur::framework

#endif // TOMUR_FRAMEWORK_FLOW_TABLE_HH
