#include "framework/element.hh"

// Element is header-only apart from the vtable anchor below.

namespace tomur::framework {
} // namespace tomur::framework
