/**
 * @file
 * Functional accelerator devices.
 *
 * Elements that offload work talk to a device object: the regex
 * device runs the real multi-pattern matcher over the payload (so
 * match results are genuine, as on the BlueField RXP), and the
 * compression device runs a small LZ-style compressor. Each call
 * records the corresponding AccelRequest into the CostContext.
 */

#ifndef TOMUR_FRAMEWORK_ACCEL_DEV_HH
#define TOMUR_FRAMEWORK_ACCEL_DEV_HH

#include <memory>
#include <span>

#include "framework/cost.hh"
#include "regex/matcher.hh"

namespace tomur::framework {

/** Result of a regex scan request. */
struct RegexScanResult
{
    std::uint64_t matchCount = 0;
    std::uint64_t matchedRules = 0; ///< bitmask by rule id
};

/**
 * Regex accelerator device wrapping a compiled ruleset.
 */
class RegexDevice
{
  public:
    explicit RegexDevice(const regex::RuleSet &rules);

    /**
     * Scan a payload; records the request into ctx. Skipped (zero
     * matches, no recorded request) when ctx.accelFunctional() is
     * off — see CostContext::setAccelFunctional().
     */
    RegexScanResult scan(std::span<const std::uint8_t> payload,
                         CostContext &ctx);

    const regex::MultiMatcher &matcher() const { return matcher_; }

  private:
    regex::MultiMatcher matcher_;
};

/** Result of a compression request. */
struct CompressResult
{
    std::size_t compressedSize = 0;
    double ratio = 1.0; ///< compressed / original
};

/**
 * Compression accelerator device: byte-pair LZ-style compressor
 * (functional stand-in for the BlueField deflate engine).
 */
class CompressionDevice
{
  public:
    /** Compress a payload; records the request into ctx. Skipped
     *  when ctx.accelFunctional() is off. */
    CompressResult compress(std::span<const std::uint8_t> payload,
                            CostContext &ctx);

    /** The raw compressor (exposed for tests). */
    static std::vector<std::uint8_t>
    lzCompress(std::span<const std::uint8_t> input);

    /** Inverse of lzCompress (round-trip tested). */
    static std::vector<std::uint8_t>
    lzDecompress(std::span<const std::uint8_t> input);
};

/**
 * Crypto accelerator device: a real ChaCha20 stream cipher (RFC 7539)
 * standing in for the NIC's inline IPsec/TLS engine. Encryption and
 * decryption are the same keystream XOR, so round-trips are testable.
 */
class CryptoDevice
{
  public:
    /** 256-bit key + 96-bit nonce. */
    struct Key
    {
        std::uint32_t words[8] = {1, 2, 3, 4, 5, 6, 7, 8};
        std::uint32_t nonce[3] = {0x1234, 0x5678, 0x9abc};
    };

    /**
     * Encrypt (or decrypt) a payload in place semantics: returns the
     * transformed bytes; records the request into ctx. Skipped when
     * ctx.accelFunctional() is off (input returned unchanged).
     */
    std::vector<std::uint8_t>
    encrypt(std::span<const std::uint8_t> payload, CostContext &ctx,
            const Key &key, std::uint32_t counter);

    /** Encrypt with the default key and counter 1. */
    std::vector<std::uint8_t>
    encrypt(std::span<const std::uint8_t> payload, CostContext &ctx);

    /**
     * Raw ChaCha20 XOR-keystream transform (exposed for tests; RFC
     * 7539 test vectors apply).
     */
    static std::vector<std::uint8_t>
    chacha20(std::span<const std::uint8_t> input, const Key &key,
             std::uint32_t counter);

    /** One 64-byte keystream block (RFC 7539 block function). */
    static void block(const Key &key, std::uint32_t counter,
                      std::uint8_t out[64]);
};

/** Bundle of devices an NF chain may use. */
struct DeviceSet
{
    std::shared_ptr<RegexDevice> regex;
    std::shared_ptr<CompressionDevice> compression;
    std::shared_ptr<CryptoDevice> crypto;
};

} // namespace tomur::framework

#endif // TOMUR_FRAMEWORK_ACCEL_DEV_HH
