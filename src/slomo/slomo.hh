/**
 * @file
 * SLOMO baseline [42]: contention-aware NF performance prediction
 * with gradient boosting over the competitors' memory performance
 * counters, trained under a fixed (default) traffic profile, with
 * sensitivity extrapolation to adapt to moderate traffic deviations
 * (SLOMO §6). It models the memory subsystem only — the limitation
 * §2.2 demonstrates.
 */

#ifndef TOMUR_SLOMO_SLOMO_HH
#define TOMUR_SLOMO_SLOMO_HH

#include "tomur/memory_model.hh"
#include "tomur/profiler.hh"

namespace tomur::slomo {

/** SLOMO training options. */
struct SlomoTrainOptions
{
    /** Contended samples collected at the default profile (matched
     *  to Tomur's quota for fair comparison, §7.3). */
    std::size_t samples = 160;
    int seeds = 3;
    ml::GbrParams gbr{};
    std::uint64_t seed = 7;
};

/**
 * A trained SLOMO model for one NF.
 */
class SlomoModel
{
  public:
    SlomoModel() = default;

    /**
     * Predict throughput under a competitor set.
     *
     * SLOMO's model is traffic-agnostic except for first-order
     * sensitivity extrapolation in the flow count (SLOMO §6): the
     * prediction is scaled by a locally-measured solo-throughput
     * slope around the training flow count. Deviations in other
     * attributes (packet size, MTBR) and large flow-count deviations
     * are not captured — the limitation §2.3/§7.4 quantifies.
     *
     * @param competitors competitor contention levels (only memory
     *        counters are consumed)
     * @param profile the target's current traffic profile
     */
    double predict(
        const std::vector<core::ContentionLevel> &competitors,
        const traffic::TrafficProfile &profile) const;

    /** Solo throughput at the training (default) profile. */
    double trainingSolo() const { return trainingSolo_; }

    /** Relative solo-throughput slope per relative flow change. */
    double flowSensitivitySlope() const { return flowSlope_; }

    const traffic::TrafficProfile &trainingProfile() const
    {
        return trainingProfile_;
    }

  private:
    friend class SlomoTrainer;

    core::MemoryModel memory_{core::MemoryModelOptions{
        3, ml::GbrParams{}, /*trafficAware=*/false}};
    traffic::TrafficProfile trainingProfile_;
    double trainingSolo_ = 0.0;
    double flowSlope_ = 0.0;
};

/**
 * Trains SLOMO models against the same testbed and bench library as
 * Tomur (§7.1: both see the same amount of data).
 */
class SlomoTrainer
{
  public:
    explicit SlomoTrainer(core::BenchLibrary &library);

    /** Train at a fixed traffic profile. */
    SlomoModel train(framework::NetworkFunction &nf,
                     const traffic::TrafficProfile &training_profile,
                     const SlomoTrainOptions &opts = {});

  private:
    core::BenchLibrary &library_;
};

} // namespace tomur::slomo

#endif // TOMUR_SLOMO_SLOMO_HH
