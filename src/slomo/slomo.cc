#include "slomo/slomo.hh"

#include <algorithm>

#include "common/logging.hh"

namespace tomur::slomo {

namespace fw = framework;

double
SlomoModel::predict(
    const std::vector<core::ContentionLevel> &competitors,
    const traffic::TrafficProfile &profile) const
{
    double base = memory_.predict(competitors, profile);
    base = std::max(0.0, base);
    // Sensitivity extrapolation in the flow count: first-order
    // correction from the locally measured solo slope. Accurate
    // while the deviation stays small (the paper's <= 20% regime),
    // systematically off for large deviations or for attributes
    // SLOMO does not model (packet size, MTBR).
    double train_flows =
        static_cast<double>(trainingProfile_.flowCount);
    if (train_flows > 0.0) {
        double rel = (static_cast<double>(profile.flowCount) -
                      train_flows) / train_flows;
        double factor = 1.0 + flowSlope_ * rel;
        base *= std::clamp(factor, 0.25, 2.5);
    }
    return base;
}

SlomoTrainer::SlomoTrainer(core::BenchLibrary &library)
    : library_(library)
{
}

SlomoModel
SlomoTrainer::train(fw::NetworkFunction &nf,
                    const traffic::TrafficProfile &training_profile,
                    const SlomoTrainOptions &opts)
{
    if (opts.samples < 8)
        fatal("SlomoTrainer: too few samples");
    Rng rng(opts.seed);

    SlomoModel model;
    core::MemoryModelOptions mo;
    mo.seeds = opts.seeds;
    mo.gbr = opts.gbr;
    mo.trafficAware = false;
    model.memory_ = core::MemoryModel(mo);
    model.trainingProfile_ = training_profile;

    auto w = fw::profileWorkload(nf, training_profile,
                                 &library_.rules());
    auto &bed = library_.testbed();

    ml::Dataset data(model.memory_.featureNames());
    // Solo anchors.
    std::size_t solos = std::max<std::size_t>(4, opts.samples / 5);
    double solo_sum = 0.0;
    for (std::size_t i = 0; i < solos; ++i) {
        auto m = bed.runSolo(w);
        solo_sum += m.throughput;
        data.add(model.memory_.featuresFor({}, training_profile),
                 m.throughput);
    }
    model.trainingSolo_ = solo_sum / solos;
    // Contended samples across the mem-bench contention space.
    for (std::size_t i = solos; i < opts.samples; ++i) {
        const auto &bench = library_.randomMemBench(rng);
        auto ms = bed.run({w, bench.workload});
        data.add(model.memory_.featuresFor({bench.level},
                                           training_profile),
                 ms[0].throughput);
    }
    if (auto st = model.memory_.fit(data); !st)
        fatal("SlomoTrainer: " + st.toString());

    // Local flow-count sensitivity: measure solo at +-20% of the
    // training flow count and take the central-difference slope.
    double f0 = static_cast<double>(training_profile.flowCount);
    auto solo_at = [&](double flows) {
        auto p = training_profile.withAttribute(
            traffic::Attribute::FlowCount, flows);
        auto wp = fw::profileWorkload(nf, p, &library_.rules());
        return bed.runSolo(wp).truthThroughput;
    };
    double lo = solo_at(f0 * 0.8);
    double hi = solo_at(f0 * 1.2);
    if (model.trainingSolo_ > 0.0) {
        model.flowSlope_ =
            (hi - lo) / (0.4 * model.trainingSolo_);
    }
    return model;
}

} // namespace tomur::slomo
