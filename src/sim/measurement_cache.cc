#include "sim/measurement_cache.hh"

#include <cstring>

#include "common/serial.hh"
#include "common/telemetry.hh"

namespace tomur::sim {

namespace {

/**
 * Process-wide cache metrics (tomur_cache_*), shared by every
 * MeasurementCache instance; references resolved once. Key-size
 * buckets span the observed canonical-key range (one workload is a
 * few hundred bytes; deployments of 2-4 scale linearly).
 */
struct CacheMetrics
{
    Counter &hits = metrics().counter("tomur_cache_hits_total");
    Counter &misses = metrics().counter("tomur_cache_misses_total");
    Counter &stores = metrics().counter("tomur_cache_stores_total");
    Counter &storeDropped =
        metrics().counter("tomur_cache_store_dropped_total");
    Gauge &entries = metrics().gauge("tomur_cache_entries");
    Histogram &keyBytes = metrics().histogram(
        "tomur_cache_key_bytes",
        Histogram::exponentialBounds(256.0, 2.0, 6));
};

CacheMetrics &
cacheMetrics()
{
    static CacheMetrics cm;
    return cm;
}

} // namespace

namespace {

/** Append a double's bit pattern (byte-exact, no rounding). */
void
putDouble(std::string &out, double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((bits >> (8 * i)) & 0xff));
}

void
putInt(std::string &out, std::int64_t v)
{
    putDouble(out, static_cast<double>(v));
}

/** Length-prefixed so "ab"+"c" cannot alias "a"+"bc". */
void
putString(std::string &out, const std::string &s)
{
    putInt(out, static_cast<std::int64_t>(s.size()));
    out += s;
}

} // namespace

std::string
deploymentKey(const TestbedOptions &opts,
              const std::vector<framework::WorkloadProfile> &w)
{
    std::string key;
    key.reserve(64 + w.size() * 200);
    // Solver options that shape the noise-free fixed point. Noise
    // parameters are deliberately excluded: noise is applied above
    // the cache, per call.
    putInt(key, opts.maxIterations);
    putDouble(key, opts.damping);
    putInt(key, static_cast<std::int64_t>(w.size()));
    for (const auto &p : w) {
        putString(key, p.nfName);
        putInt(key, static_cast<std::int64_t>(p.pattern));
        putInt(key, p.cores);
        putDouble(key, p.instrPerPacket);
        putDouble(key, p.llcReadsPerPacket);
        putDouble(key, p.llcWritesPerPacket);
        putDouble(key, p.wssBytes);
        putDouble(key, p.reuse);
        putDouble(key, p.frameBytes);
        putDouble(key, p.dropFraction);
        putDouble(key, p.pacedRate);
        for (const auto &a : p.accel) {
            putInt(key, a.used ? 1 : 0);
            putDouble(key, a.requestsPerPacket);
            putDouble(key, a.bytesPerRequest);
            putDouble(key, a.matchesPerRequest);
            putInt(key, a.queues);
        }
        for (double v : p.traffic.toVector())
            putDouble(key, v);
    }
    return key;
}

std::uint64_t
fnv1a64(const std::string &bytes)
{
    // Thin delegate kept for source compatibility; the shared
    // implementation lives in common/serial.hh.
    return tomur::fnv1a64(std::string_view(bytes));
}

MeasurementCache::MeasurementCache()
{
    cacheMetrics(); // resolve the metric references up front
}

bool
MeasurementCache::lookup(const std::string &key,
                         std::vector<Measurement> *out) const
{
    bool hit;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = map_.find(key);
        hit = it != map_.end();
        if (hit)
            *out = it->second;
    }
    if (hit) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        cacheMetrics().hits.inc();
    } else {
        misses_.fetch_add(1, std::memory_order_relaxed);
        cacheMetrics().misses.inc();
    }
    return hit;
}

void
MeasurementCache::store(const std::string &key,
                        std::vector<Measurement> value)
{
    cacheMetrics().keyBytes.observe(
        static_cast<double>(key.size()));
    bool inserted;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        inserted = map_.emplace(key, std::move(value)).second;
        // Gauge update stays under the lock so concurrent stores
        // cannot publish entry counts out of order.
        if (inserted) {
            cacheMetrics().entries.set(
                static_cast<double>(map_.size()));
        }
    }
    if (inserted)
        cacheMetrics().stores.inc();
    else
        cacheMetrics().storeDropped.inc();
}

MeasurementCache::Stats
MeasurementCache::stats() const
{
    Stats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mutex_);
    s.entries = map_.size();
    return s;
}

void
MeasurementCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    map_.clear();
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
}

} // namespace tomur::sim
