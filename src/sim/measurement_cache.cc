#include "sim/measurement_cache.hh"

#include <cstring>

namespace tomur::sim {

namespace {

/** Append a double's bit pattern (byte-exact, no rounding). */
void
putDouble(std::string &out, double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((bits >> (8 * i)) & 0xff));
}

void
putInt(std::string &out, std::int64_t v)
{
    putDouble(out, static_cast<double>(v));
}

/** Length-prefixed so "ab"+"c" cannot alias "a"+"bc". */
void
putString(std::string &out, const std::string &s)
{
    putInt(out, static_cast<std::int64_t>(s.size()));
    out += s;
}

} // namespace

std::string
deploymentKey(const TestbedOptions &opts,
              const std::vector<framework::WorkloadProfile> &w)
{
    std::string key;
    key.reserve(64 + w.size() * 200);
    // Solver options that shape the noise-free fixed point. Noise
    // parameters are deliberately excluded: noise is applied above
    // the cache, per call.
    putInt(key, opts.maxIterations);
    putDouble(key, opts.damping);
    putInt(key, static_cast<std::int64_t>(w.size()));
    for (const auto &p : w) {
        putString(key, p.nfName);
        putInt(key, static_cast<std::int64_t>(p.pattern));
        putInt(key, p.cores);
        putDouble(key, p.instrPerPacket);
        putDouble(key, p.llcReadsPerPacket);
        putDouble(key, p.llcWritesPerPacket);
        putDouble(key, p.wssBytes);
        putDouble(key, p.reuse);
        putDouble(key, p.frameBytes);
        putDouble(key, p.dropFraction);
        putDouble(key, p.pacedRate);
        for (const auto &a : p.accel) {
            putInt(key, a.used ? 1 : 0);
            putDouble(key, a.requestsPerPacket);
            putDouble(key, a.bytesPerRequest);
            putDouble(key, a.matchesPerRequest);
            putInt(key, a.queues);
        }
        for (double v : p.traffic.toVector())
            putDouble(key, v);
    }
    return key;
}

std::uint64_t
fnv1a64(const std::string &bytes)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : bytes) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

bool
MeasurementCache::lookup(const std::string &key,
                         std::vector<Measurement> *out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(key);
    if (it == map_.end()) {
        ++stats_.misses;
        return false;
    }
    ++stats_.hits;
    *out = it->second;
    return true;
}

void
MeasurementCache::store(const std::string &key,
                        std::vector<Measurement> value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    map_.emplace(key, std::move(value));
}

MeasurementCache::Stats
MeasurementCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Stats s = stats_;
    s.entries = map_.size();
    return s;
}

void
MeasurementCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    map_.clear();
    stats_ = Stats{};
}

} // namespace tomur::sim
