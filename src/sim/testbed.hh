/**
 * @file
 * The SmartNIC testbed: co-locates workloads on one NIC model and
 * solves the coupled performance equilibrium — shared-LLC occupancy,
 * DRAM bandwidth congestion, and round-robin accelerator sharing —
 * then reports per-NF throughput and performance counters with
 * measurement noise.
 *
 * This object stands in for the physical BlueField-2 deployment: the
 * prediction frameworks only ever see its measured outputs
 * (throughput + Table 13 counters), never the solver internals.
 */

#ifndef TOMUR_SIM_TESTBED_HH
#define TOMUR_SIM_TESTBED_HH

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "framework/profile.hh"
#include "hw/accel.hh"
#include "hw/config.hh"
#include "hw/counters.hh"

namespace tomur::sim {

class MeasurementCache;

/** Which resource limits an NF's throughput. */
enum class Bottleneck
{
    CpuMemory,   ///< core compute + memory stalls
    Regex,       ///< regex accelerator stage / sojourn
    Compression, ///< compression accelerator stage / sojourn
    Crypto,      ///< crypto accelerator stage / sojourn
    NicLineRate, ///< wire bandwidth
    Pacing,      ///< open-loop pacing (benchmark NFs)
};

/** Bottleneck name for reports. */
const char *bottleneckName(Bottleneck b);

/** One NF's measured behaviour in a deployment. */
struct Measurement
{
    std::string nfName;
    double throughput = 0.0; ///< packets/s (noisy, as measured)
    hw::PerfCounters counters;

    // Ground-truth internals (noise-free), used only for validating
    // the models and the diagnosis use case -- a real testbed exposes
    // these via hotspot profiling (perf), not via the NIC.
    double truthThroughput = 0.0;
    double cpuMemTimePerPacket = 0.0;
    double accelSojourn[hw::numAccelKinds] = {};
    double accelStageCapacity[hw::numAccelKinds] = {};
    Bottleneck bottleneck = Bottleneck::CpuMemory;
};

/** Testbed options. */
struct TestbedOptions
{
    /** Relative measurement noise (log-normal sigma); 0 disables. */
    double noiseSigma = 0.01;
    std::uint64_t seed = 2024;
    int maxIterations = 400;
    double damping = 0.5;
    /**
     * Memoize noise-free equilibrium solves (sim/measurement_cache.hh).
     * The solve is a pure function of (workloads, config, solver
     * options), so caching it is observationally invisible — noise
     * and any fault injection stay per-call above the cache.
     */
    bool cacheSolves = true;
};

/**
 * A NIC plus its measurement harness.
 *
 * Reentrancy contract (enforced, not just documented):
 *  - config_ and opts_ are set in the constructor and never mutated
 *    afterwards — any method may read them from any thread.
 *  - solve() is const and touches no members beyond those two; it is
 *    safe to run concurrently (prewarm() relies on this).
 *  - rng_ (the measurement-noise stream) is the only member that
 *    mutates across run() calls; noiseMutex_ serializes it, so
 *    concurrent run() calls are data-race-free. They are however
 *    NOT deterministic (noise order follows scheduling); callers
 *    wanting parallel speed *and* bit-identical results must use
 *    runBatch(), which solves in parallel and draws noise in
 *    submission order.
 *  - the solve cache is internally synchronized.
 */
class Testbed
{
  public:
    explicit Testbed(hw::NicConfig config, TestbedOptions opts = {});
    virtual ~Testbed();

    /**
     * Deploy a set of workloads together and measure all of them.
     *
     * Virtual so a measurement harness (sim/faults.hh) can interpose
     * on the measured outputs; robust consumers must not assume the
     * returned batch is complete — a faulted collection may come back
     * short.
     */
    virtual std::vector<Measurement>
    run(const std::vector<framework::WorkloadProfile> &workloads);

    /**
     * Measure many independent deployments: equilibrium solves fan
     * out across the global thread pool (prewarm), then noise — and,
     * in an interposing harness, fault injection — is applied by
     * calling run() per deployment in submission order. The result
     * is therefore bit-identical to the equivalent serial run() loop
     * at any TOMUR_THREADS setting.
     */
    std::vector<std::vector<Measurement>>
    runBatch(const std::vector<std::vector<framework::WorkloadProfile>>
                 &batch);

    /**
     * Solve (and cache) deployments in parallel without consuming
     * the noise stream. Overridden by interposers to warm the real
     * testbed underneath them.
     */
    virtual void
    prewarm(const std::vector<std::vector<framework::WorkloadProfile>>
                &batch);

    /** Deploy one workload alone. */
    Measurement runSolo(const framework::WorkloadProfile &workload);

    /**
     * Noise-free equilibrium measurement of one deployment (through
     * the memoization layer). Consumes NO noise-stream draws, so
     * resumable drivers (the autopilot) can use it for ground-truth
     * baselines without desynchronizing a checkpointed RNG state.
     */
    std::vector<Measurement>
    solveNoiseFree(const std::vector<framework::WorkloadProfile> &w)
        const
    {
        return solveCached(w);
    }

    /** Snapshot / restore the measurement-noise stream for
     *  checkpointing (crash-safe resume must continue the stream
     *  exactly where the snapshot left off). */
    RngState noiseState() const;
    void setNoiseState(const RngState &st);

    /**
     * An independent testbed over the same NIC and solver options
     * but its own noise stream — per-worker instances for harnesses
     * that want concurrent noisy measurement without sharing rng_.
     */
    std::unique_ptr<Testbed> clone(std::uint64_t seed) const;

    const hw::NicConfig &config() const { return config_; }
    const TestbedOptions &options() const { return opts_; }

    /** Solve-cache hit/miss counters (empty stats when disabled). */
    std::size_t cacheHits() const;
    std::size_t cacheMisses() const;
    void clearCache();

  private:
    /** Noise-free equilibrium solve (pure; thread-safe). */
    std::vector<Measurement>
    solve(const std::vector<framework::WorkloadProfile> &w) const;

    /** solve() through the memoization layer. */
    std::vector<Measurement>
    solveCached(const std::vector<framework::WorkloadProfile> &w) const;

    const hw::NicConfig config_; ///< immutable after construction
    const TestbedOptions opts_;  ///< immutable after construction
    Rng rng_;                    ///< noise stream; noiseMutex_ guards
    mutable std::mutex noiseMutex_;
    std::unique_ptr<MeasurementCache> cache_; ///< self-synchronized
};

} // namespace tomur::sim

#endif // TOMUR_SIM_TESTBED_HH
