/**
 * @file
 * The SmartNIC testbed: co-locates workloads on one NIC model and
 * solves the coupled performance equilibrium — shared-LLC occupancy,
 * DRAM bandwidth congestion, and round-robin accelerator sharing —
 * then reports per-NF throughput and performance counters with
 * measurement noise.
 *
 * This object stands in for the physical BlueField-2 deployment: the
 * prediction frameworks only ever see its measured outputs
 * (throughput + Table 13 counters), never the solver internals.
 */

#ifndef TOMUR_SIM_TESTBED_HH
#define TOMUR_SIM_TESTBED_HH

#include <string>
#include <vector>

#include "common/rng.hh"
#include "framework/profile.hh"
#include "hw/accel.hh"
#include "hw/config.hh"
#include "hw/counters.hh"

namespace tomur::sim {

/** Which resource limits an NF's throughput. */
enum class Bottleneck
{
    CpuMemory,   ///< core compute + memory stalls
    Regex,       ///< regex accelerator stage / sojourn
    Compression, ///< compression accelerator stage / sojourn
    Crypto,      ///< crypto accelerator stage / sojourn
    NicLineRate, ///< wire bandwidth
    Pacing,      ///< open-loop pacing (benchmark NFs)
};

/** Bottleneck name for reports. */
const char *bottleneckName(Bottleneck b);

/** One NF's measured behaviour in a deployment. */
struct Measurement
{
    std::string nfName;
    double throughput = 0.0; ///< packets/s (noisy, as measured)
    hw::PerfCounters counters;

    // Ground-truth internals (noise-free), used only for validating
    // the models and the diagnosis use case -- a real testbed exposes
    // these via hotspot profiling (perf), not via the NIC.
    double truthThroughput = 0.0;
    double cpuMemTimePerPacket = 0.0;
    double accelSojourn[hw::numAccelKinds] = {};
    double accelStageCapacity[hw::numAccelKinds] = {};
    Bottleneck bottleneck = Bottleneck::CpuMemory;
};

/** Testbed options. */
struct TestbedOptions
{
    /** Relative measurement noise (log-normal sigma); 0 disables. */
    double noiseSigma = 0.01;
    std::uint64_t seed = 2024;
    int maxIterations = 400;
    double damping = 0.5;
};

/**
 * A NIC plus its measurement harness.
 */
class Testbed
{
  public:
    explicit Testbed(hw::NicConfig config, TestbedOptions opts = {});
    virtual ~Testbed() = default;

    /**
     * Deploy a set of workloads together and measure all of them.
     *
     * Virtual so a measurement harness (sim/faults.hh) can interpose
     * on the measured outputs; robust consumers must not assume the
     * returned batch is complete — a faulted collection may come back
     * short.
     */
    virtual std::vector<Measurement>
    run(const std::vector<framework::WorkloadProfile> &workloads);

    /** Deploy one workload alone. */
    Measurement runSolo(const framework::WorkloadProfile &workload);

    const hw::NicConfig &config() const { return config_; }

  private:
    /** Noise-free equilibrium solve. */
    std::vector<Measurement>
    solve(const std::vector<framework::WorkloadProfile> &w) const;

    hw::NicConfig config_;
    TestbedOptions opts_;
    Rng rng_;
};

} // namespace tomur::sim

#endif // TOMUR_SIM_TESTBED_HH
