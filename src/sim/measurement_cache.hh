/**
 * @file
 * Deployment-measurement memoization.
 *
 * Profiling sweeps re-deploy identical (workload set, traffic)
 * combinations thousands of times — solo anchors, bench co-runs and
 * calibration pairs recur across training strategies and across the
 * experiment harnesses. The equilibrium solve is deterministic in
 * its inputs, so its result can be memoized; only the measurement
 * noise (and any fault injection layered above) must stay per-call.
 *
 * The cache key is a canonical byte-exact serialization of the
 * solver options plus every field of every WorkloadProfile in the
 * deployment (doubles are serialized by bit pattern, so two profiles
 * differing in the last ulp key differently — the cache can never
 * substitute an "almost identical" deployment).
 *
 * Thread safety: all operations take an internal mutex, so pool
 * workers prewarming disjoint deployments may share one cache.
 */

#ifndef TOMUR_SIM_MEASUREMENT_CACHE_HH
#define TOMUR_SIM_MEASUREMENT_CACHE_HH

#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/testbed.hh"

namespace tomur::sim {

/**
 * Canonical cache key for one deployment under one solver setup.
 * FNV-1a of this string is the "canonical hash"; the full string is
 * kept as the map key so hash collisions cannot alias deployments.
 */
std::string
deploymentKey(const TestbedOptions &opts,
              const std::vector<framework::WorkloadProfile> &w);

/** FNV-1a 64-bit over a byte string (logging / key digests). */
std::uint64_t fnv1a64(const std::string &bytes);

/** Memoized noise-free measurement batches, keyed by deploymentKey. */
class MeasurementCache
{
  public:
    struct Stats
    {
        std::size_t hits = 0;
        std::size_t misses = 0;
        std::size_t entries = 0;
    };

    /** Copy the cached batch into *out; counts a hit or a miss. */
    bool lookup(const std::string &key,
                std::vector<Measurement> *out) const;

    /** Insert (first writer wins; duplicate stores are dropped). */
    void store(const std::string &key,
               std::vector<Measurement> value);

    Stats stats() const;
    void clear();

  private:
    mutable std::mutex mutex_;
    std::unordered_map<std::string, std::vector<Measurement>> map_;
    mutable Stats stats_;
};

} // namespace tomur::sim

#endif // TOMUR_SIM_MEASUREMENT_CACHE_HH
