/**
 * @file
 * Deployment-measurement memoization.
 *
 * Profiling sweeps re-deploy identical (workload set, traffic)
 * combinations thousands of times — solo anchors, bench co-runs and
 * calibration pairs recur across training strategies and across the
 * experiment harnesses. The equilibrium solve is deterministic in
 * its inputs, so its result can be memoized; only the measurement
 * noise (and any fault injection layered above) must stay per-call.
 *
 * The cache key is a canonical byte-exact serialization of the
 * solver options plus every field of every WorkloadProfile in the
 * deployment (doubles are serialized by bit pattern, so two profiles
 * differing in the last ulp key differently — the cache can never
 * substitute an "almost identical" deployment).
 *
 * Thread safety: the map takes an internal mutex; the hit/miss
 * statistics are lock-free atomics routed through the process-wide
 * metrics registry (tomur_cache_*), so stats() never races the
 * counting done inside concurrent lookup()/store() calls — TSan
 * verifies this via ParallelTelemetryCache.StatsRaceFree.
 */

#ifndef TOMUR_SIM_MEASUREMENT_CACHE_HH
#define TOMUR_SIM_MEASUREMENT_CACHE_HH

#include <atomic>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/testbed.hh"

namespace tomur::sim {

/**
 * Canonical cache key for one deployment under one solver setup.
 * FNV-1a of this string is the "canonical hash"; the full string is
 * kept as the map key so hash collisions cannot alias deployments.
 */
std::string
deploymentKey(const TestbedOptions &opts,
              const std::vector<framework::WorkloadProfile> &w);

/** FNV-1a 64-bit over a byte string (logging / key digests). */
std::uint64_t fnv1a64(const std::string &bytes);

/** Memoized noise-free measurement batches, keyed by deploymentKey. */
class MeasurementCache
{
  public:
    MeasurementCache();

    struct Stats
    {
        std::size_t hits = 0;
        std::size_t misses = 0;
        std::size_t entries = 0;
    };

    /** Copy the cached batch into *out; counts a hit or a miss. */
    bool lookup(const std::string &key,
                std::vector<Measurement> *out) const;

    /** Insert (first writer wins; duplicate stores are dropped). */
    void store(const std::string &key,
               std::vector<Measurement> value);

    /** Per-instance counters (process-wide aggregates additionally
     *  accumulate in the tomur_cache_* metrics). Safe to call while
     *  other threads look up or store. */
    Stats stats() const;
    void clear();

  private:
    mutable std::mutex mutex_; ///< guards map_ only
    std::unordered_map<std::string, std::vector<Measurement>> map_;
    // Lock-free so readers (stats()) never race the counting writes
    // issued under concurrent lookup()/store().
    mutable std::atomic<std::size_t> hits_{0};
    mutable std::atomic<std::size_t> misses_{0};
};

} // namespace tomur::sim

#endif // TOMUR_SIM_MEASUREMENT_CACHE_HH
