/**
 * @file
 * Fault-injection harness over Testbed measurements.
 *
 * Real SmartNIC profiling runs are not pristine: PMU counters
 * glitch to zero or saturate, a measurement window gets cut short, a
 * co-run batch loses members, throughput readings spike from
 * unrelated host activity, and a multi-tenant accelerator can be
 * persistently degraded by a neighbour. FaultInjectingTestbed wraps
 * an inner Testbed and corrupts its measurements with configurable,
 * seeded (reproducible) fault modes so the training/prediction
 * pipeline can be hardened and its graceful degradation tested —
 * the same role chaos testing plays for a service.
 *
 * The injector only rewrites *measured* fields (throughput +
 * counters); ground-truth fields (truthThroughput, bottleneck, ...)
 * stay intact so tests can always score against the clean truth.
 */

#ifndef TOMUR_SIM_FAULTS_HH
#define TOMUR_SIM_FAULTS_HH

#include <cstddef>
#include <string>

#include "sim/testbed.hh"

namespace tomur::sim {

/** Fault modes, for reporting and per-mode counters. */
enum class FaultMode
{
    DroppedMeasurement, ///< measurement lost (all-zero readings)
    NanCounters,        ///< counter readout returns NaN
    ZeroCounters,       ///< counter glitch: perf counters read zero
    SaturatedCounters,  ///< counters stuck at a saturated sentinel
    ThroughputOutlier,  ///< throughput reading off by a large factor
    TruncatedBatch,     ///< co-run batch loses trailing members
    DegradedAccel,      ///< accelerator persistently degraded
};

constexpr int numFaultModes = 7;

/** Fault mode name for reports. */
const char *faultModeName(FaultMode mode);

/** Per-mode injection probabilities (all independent, per sample). */
struct FaultConfig
{
    double dropProb = 0.0;     ///< whole measurement lost
    double nanProb = 0.0;      ///< NaN perf counters + throughput
    double zeroProb = 0.0;     ///< zeroed perf counters
    double saturateProb = 0.0; ///< saturated perf counters
    double outlierProb = 0.0;  ///< throughput outlier
    /** Outlier magnitude: throughput is multiplied or divided by a
     *  factor drawn uniformly from [2, outlierFactor]. */
    double outlierFactor = 8.0;
    /** Probability a co-run batch is truncated (loses a uniformly
     *  chosen suffix, possibly the whole batch). */
    double truncateBatchProb = 0.0;

    /** Deterministic degraded-accelerator mode: when enabled, every
     *  measurement of a workload using this accelerator kind has its
     *  throughput scaled by degradedAccelFactor (no randomness —
     *  a degraded engine is degraded for everyone, every time). */
    bool degradedAccelEnabled = false;
    hw::AccelKind degradedAccelKind = hw::AccelKind::Regex;
    double degradedAccelFactor = 0.5;

    /** Deterministic measurement bias: every throughput reading is
     *  scaled by this factor (1.0 = off). Models a systematic level
     *  shift — the workload drifting away from the trained model —
     *  and consumes no randomness, so switching it mid-stream leaves
     *  the injector's fault-draw sequence untouched (the monitor's
     *  drift-detection tests depend on exactly that). */
    double biasFactor = 1.0;

    std::uint64_t seed = 7777;

    /** Chaos hook: when >= 0, run() throws SimulatedCrash after this
     *  many further batches (the counter decrements per run() call;
     *  the throwing call completes no measurement). Simulates a
     *  kill -9 landing mid-replay for crash-resume tests; -1 = off. */
    long crashAfterBatches = -1;

    /** Uniform shorthand: all random corruption modes at rate p
     *  (split evenly across drop/NaN/zero/saturate/outlier, plus
     *  batch truncation at p/2). */
    static FaultConfig uniformCorruption(double p,
                                         std::uint64_t seed = 7777);
};

/** Per-mode injection counters (observability + test assertions). */
struct FaultStats
{
    std::size_t injected[numFaultModes] = {};
    std::size_t measurements = 0; ///< measurements passed through
    std::size_t batches = 0;      ///< run() calls seen

    std::size_t
    total() const
    {
        std::size_t t = 0;
        for (std::size_t c : injected)
            t += c;
        return t;
    }
};

/**
 * A Testbed whose measurements pass through a fault injector.
 *
 * Construct over an inner testbed (which keeps sole ownership of the
 * equilibrium solver and its noise stream; the injector draws from
 * its own seeded Rng so enabling faults never perturbs the inner
 * testbed's measurement-noise sequence). The fault configuration can
 * be swapped at any time, so a harness can profile its bench library
 * cleanly and only then turn faults on.
 */
class FaultInjectingTestbed : public Testbed
{
  public:
    FaultInjectingTestbed(Testbed &inner, FaultConfig config = {});

    std::vector<Measurement>
    run(const std::vector<framework::WorkloadProfile> &workloads)
        override;

    /**
     * Warm the *inner* testbed's solve cache. Fault injection sits
     * above the memoization layer: prewarming solves draws no noise
     * and injects no faults, so every subsequent run() still passes
     * through corrupt() with a fresh fault draw — a cached solve can
     * never replay a corrupted (or clean) reading.
     */
    void prewarm(
        const std::vector<std::vector<framework::WorkloadProfile>>
            &batch) override;

    /** Replace the fault configuration (keeps the Rng stream).
     *  Injection counters reset so stats() reflects only the new
     *  config — per-plan fault accounting in chaos campaigns depends
     *  on reconfigure starting from a clean ledger. */
    void
    setConfig(const FaultConfig &config)
    {
        config_ = config;
        resetStats();
    }
    const FaultConfig &faultConfig() const { return config_; }

    /** Injection counters so far. */
    const FaultStats &stats() const { return stats_; }
    void resetStats() { stats_ = FaultStats{}; }

    /** Snapshot / restore the fault-draw stream for checkpointing
     *  (resume must replay the exact same fault sequence). */
    RngState faultRngState() const { return rng_.state(); }
    void setFaultRngState(const RngState &st) { rng_.setState(st); }

  private:
    void corrupt(Measurement &m, bool uses_degraded_accel);

    Testbed &inner_;
    FaultConfig config_;
    FaultStats stats_;
    Rng rng_;
};

} // namespace tomur::sim

#endif // TOMUR_SIM_FAULTS_HH
