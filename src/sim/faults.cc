#include "sim/faults.hh"

#include <cmath>
#include <limits>

#include "common/checkpoint.hh"
#include "common/logging.hh"
#include "common/strutil.hh"
#include "common/telemetry.hh"
#include "common/trace.hh"

namespace tomur::sim {

namespace {

/** tomur_faults_* metric name for one mode ('-' -> '_'). */
std::string
faultMetricName(FaultMode mode)
{
    std::string n = faultModeName(mode);
    for (char &c : n) {
        if (c == '-')
            c = '_';
    }
    return "tomur_faults_injected_" + n + "_total";
}

/** Per-mode injection counters plus pass-through volume. */
struct FaultMetrics
{
    Counter *injected[numFaultModes];
    Counter &measurements =
        metrics().counter("tomur_faults_measurements_total");
    Counter &batches =
        metrics().counter("tomur_faults_batches_total");

    FaultMetrics()
    {
        for (int m = 0; m < numFaultModes; ++m) {
            injected[m] = &metrics().counter(
                faultMetricName(static_cast<FaultMode>(m)));
        }
    }
};

FaultMetrics &
faultMetrics()
{
    static FaultMetrics fm;
    return fm;
}

/** Apply f to every measured counter field. */
template <typename F>
void
forEachCounter(hw::PerfCounters &c, F f)
{
    f(c.ipc);
    f(c.instrRetired);
    f(c.l2ReadRate);
    f(c.l2WriteRate);
    f(c.memReadRate);
    f(c.memWriteRate);
    f(c.wssBytes);
}

} // namespace

const char *
faultModeName(FaultMode mode)
{
    switch (mode) {
      case FaultMode::DroppedMeasurement:
        return "dropped-measurement";
      case FaultMode::NanCounters:
        return "nan-counters";
      case FaultMode::ZeroCounters:
        return "zero-counters";
      case FaultMode::SaturatedCounters:
        return "saturated-counters";
      case FaultMode::ThroughputOutlier:
        return "throughput-outlier";
      case FaultMode::TruncatedBatch:
        return "truncated-batch";
      case FaultMode::DegradedAccel:
        return "degraded-accel";
    }
    return "unknown";
}

FaultConfig
FaultConfig::uniformCorruption(double p, std::uint64_t seed)
{
    FaultConfig c;
    c.dropProb = p / 5.0;
    c.nanProb = p / 5.0;
    c.zeroProb = p / 5.0;
    c.saturateProb = p / 5.0;
    c.outlierProb = p / 5.0;
    c.truncateBatchProb = p / 2.0;
    c.seed = seed;
    return c;
}

FaultInjectingTestbed::FaultInjectingTestbed(Testbed &inner,
                                             FaultConfig config)
    : Testbed(inner.config(), TestbedOptions{}), inner_(inner),
      config_(config), rng_(config.seed)
{
}

void
FaultInjectingTestbed::corrupt(Measurement &m,
                               bool uses_degraded_accel)
{
    auto note = [&](FaultMode mode) {
        ++stats_.injected[static_cast<int>(mode)];
        faultMetrics().injected[static_cast<int>(mode)]->inc();
        if (tracer().enabled()) {
            tracePoint("sim.fault",
                       {{"mode", faultModeName(mode)},
                        {"nf", m.nfName}});
        }
    };

    // Deterministic corruptions apply first (they model the hardware
    // or a systematic shift, not the read-out path); random faults
    // can then still hit the already-biased reading.
    if (config_.biasFactor != 1.0)
        m.throughput *= config_.biasFactor;
    if (uses_degraded_accel) {
        m.throughput *= config_.degradedAccelFactor;
        note(FaultMode::DegradedAccel);
    }

    if (rng_.chance(config_.dropProb)) {
        m.throughput = 0.0;
        forEachCounter(m.counters, [](double &v) { v = 0.0; });
        note(FaultMode::DroppedMeasurement);
        return; // a lost measurement cannot be further corrupted
    }
    if (rng_.chance(config_.nanProb)) {
        double nan = std::numeric_limits<double>::quiet_NaN();
        m.throughput = nan;
        forEachCounter(m.counters, [&](double &v) { v = nan; });
        note(FaultMode::NanCounters);
        return;
    }
    if (rng_.chance(config_.zeroProb)) {
        forEachCounter(m.counters, [](double &v) { v = 0.0; });
        note(FaultMode::ZeroCounters);
    }
    if (rng_.chance(config_.saturateProb)) {
        // Stuck-at-all-ones 48-bit PMU register, a classic glitch.
        double sat = static_cast<double>((1ULL << 48) - 1);
        forEachCounter(m.counters, [&](double &v) { v = sat; });
        note(FaultMode::SaturatedCounters);
    }
    if (rng_.chance(config_.outlierProb)) {
        double f = rng_.uniform(2.0, std::max(2.0,
                                              config_.outlierFactor));
        m.throughput *= rng_.chance(0.5) ? f : 1.0 / f;
        note(FaultMode::ThroughputOutlier);
    }
}

void
FaultInjectingTestbed::prewarm(
    const std::vector<std::vector<framework::WorkloadProfile>> &batch)
{
    inner_.prewarm(batch);
}

std::vector<Measurement>
FaultInjectingTestbed::run(
    const std::vector<framework::WorkloadProfile> &workloads)
{
    TraceSpan span("sim.faults.run");
    span.field("n",
               static_cast<std::uint64_t>(workloads.size()));
    if (config_.crashAfterBatches >= 0) {
        if (config_.crashAfterBatches == 0)
            throw SimulatedCrash("sim.faults.run");
        --config_.crashAfterBatches;
    }
    auto out = inner_.run(workloads);
    ++stats_.batches;
    stats_.measurements += out.size();
    faultMetrics().batches.inc();
    faultMetrics().measurements.inc(out.size());

    if (out.size() > 1 && rng_.chance(config_.truncateBatchProb)) {
        // Keep a uniformly chosen prefix; [0, n-1] members survive.
        out.resize(rng_.uniformInt(out.size()));
        ++stats_.injected[static_cast<int>(FaultMode::TruncatedBatch)];
        faultMetrics()
            .injected[static_cast<int>(FaultMode::TruncatedBatch)]
            ->inc();
        if (tracer().enabled()) {
            tracePoint("sim.fault",
                       {{"mode",
                         faultModeName(FaultMode::TruncatedBatch)},
                        {"kept", strf("%zu", out.size())}});
        }
    }

    for (std::size_t i = 0; i < out.size(); ++i) {
        bool degraded = config_.degradedAccelEnabled &&
                        workloads[i]
                            .accel[static_cast<int>(
                                config_.degradedAccelKind)]
                            .used;
        corrupt(out[i], degraded);
    }
    return out;
}

} // namespace tomur::sim
