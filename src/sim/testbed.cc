#include "sim/testbed.hh"

#include <algorithm>
#include <cmath>

#include "common/deadline.hh"
#include "common/logging.hh"
#include "common/strutil.hh"
#include "common/telemetry.hh"
#include "common/threadpool.hh"
#include "common/trace.hh"
#include "hw/cache.hh"
#include "hw/dram.hh"
#include "sim/measurement_cache.hh"

namespace tomur::sim {

namespace fw = framework;

namespace {

/** Equilibrium-solver metrics (tomur_solver_*). */
struct SolverMetrics
{
    Counter &solves = metrics().counter("tomur_solver_solves_total");
    Counter &iterations =
        metrics().counter("tomur_solver_iterations_total");
    Counter &converged =
        metrics().counter("tomur_solver_converged_total");
    Counter &maxedOut =
        metrics().counter("tomur_solver_maxed_out_total");
    Histogram &perSolve = metrics().histogram(
        "tomur_solver_iterations",
        {4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 400.0});
};

SolverMetrics &
solverMetrics()
{
    static SolverMetrics sm;
    return sm;
}

} // namespace

namespace {

/** Bottleneck tag for accelerator kind index k. */
sim::Bottleneck
accelBottleneck(int k)
{
    switch (static_cast<hw::AccelKind>(k)) {
      case hw::AccelKind::Regex:
        return sim::Bottleneck::Regex;
      case hw::AccelKind::Compression:
        return sim::Bottleneck::Compression;
      case hw::AccelKind::Crypto:
        return sim::Bottleneck::Crypto;
    }
    panic("accelBottleneck: bad kind");
}

} // namespace

const char *
bottleneckName(Bottleneck b)
{
    switch (b) {
      case Bottleneck::CpuMemory:
        return "cpu+memory";
      case Bottleneck::Regex:
        return "regex";
      case Bottleneck::Compression:
        return "compression";
      case Bottleneck::Crypto:
        return "crypto";
      case Bottleneck::NicLineRate:
        return "nic";
      case Bottleneck::Pacing:
        return "pacing";
    }
    panic("bottleneckName: bad value");
}

Testbed::Testbed(hw::NicConfig config, TestbedOptions opts)
    : config_(std::move(config)), opts_(opts), rng_(opts.seed),
      cache_(opts.cacheSolves ? std::make_unique<MeasurementCache>()
                              : nullptr)
{
}

Testbed::~Testbed() = default;

namespace {

/** Per-request accelerator service time for a workload. */
double
accelServiceTime(const hw::NicConfig &cfg,
                 const fw::WorkloadProfile &w, int kind)
{
    const auto &use = w.accel[kind];
    const auto &ac = cfg.accel[kind];
    if (!use.used)
        return 0.0;
    if (!ac.present)
        fatal(strf("NF %s uses absent accelerator %s on %s",
                   w.nfName.c_str(),
                   hw::accelName(static_cast<hw::AccelKind>(kind)),
                   cfg.name.c_str()));
    return ac.setupTime + use.bytesPerRequest / ac.bytesPerSec +
           use.matchesPerRequest * ac.perMatchTime;
}

} // namespace

std::vector<Measurement>
Testbed::solve(const std::vector<fw::WorkloadProfile> &w) const
{
    const std::size_t n = w.size();
    std::vector<Measurement> out(n);
    if (n == 0)
        return out;

    TraceSpan span("sim.solve");
    if (span.active()) {
        // Identity fields are deterministic functions of the inputs,
        // so canonical trace exports sort solve spans stably however
        // the pool scheduled them.
        std::string names;
        for (const auto &wl : w) {
            if (!names.empty())
                names += "+";
            names += wl.nfName;
        }
        span.field("deployment", names);
        span.field("key", strf("%016llx",
                               (unsigned long long)fnv1a64(
                                   deploymentKey(opts_, w))));
        span.field("n", static_cast<std::uint64_t>(n));
    }

    int total_cores = 0;
    for (const auto &wl : w)
        total_cores += wl.cores;
    if (total_cores > config_.cores) {
        fatal(strf("deployment needs %d cores but %s has %d",
                   total_cores, config_.name.c_str(), config_.cores));
    }

    // Static per-workload quantities.
    std::vector<double> instr_time(n), accesses(n);
    std::vector<std::array<double, hw::numAccelKinds>> service(n);
    for (std::size_t i = 0; i < n; ++i) {
        instr_time[i] =
            w[i].instrPerPacket / (config_.baseIpc * config_.coreHz);
        accesses[i] =
            w[i].llcReadsPerPacket + w[i].llcWritesPerPacket;
        for (int k = 0; k < hw::numAccelKinds; ++k)
            service[i][k] = accelServiceTime(config_, w[i], k);
    }

    // Initial throughput guesses: compute-bound estimate. The same
    // uncontended rate also serves as each workload's fixed cache
    // "pressure" for occupancy competition: using the contended rate
    // would close a positive feedback loop (more cache -> faster ->
    // more insertions -> more cache) that makes the fixed point
    // bistable; real LLCs damp this through way-granular eviction.
    std::vector<double> T(n), pressure(n);
    for (std::size_t i = 0; i < n; ++i) {
        double t0 = instr_time[i] +
                    accesses[i] * config_.llcHitTime + 1e-12;
        T[i] = w[i].cores / t0;
        if (w[i].pacedRate > 0.0)
            T[i] = std::min(T[i], w[i].pacedRate);
        pressure[i] = T[i] * accesses[i];
    }

    std::vector<double> t_cm(n, 0.0);
    std::vector<double> miss(n, 0.0);
    std::vector<std::array<double, hw::numAccelKinds>> sojourn(n);
    std::vector<std::array<double, hw::numAccelKinds>> stage_pps(n);
    std::vector<Bottleneck> bottleneck(n, Bottleneck::CpuMemory);

    int iters_run = 0;
    double final_delta = 0.0;
    bool converged = false;
    for (int iter = 0; iter < opts_.maxIterations; ++iter) {
        // --- Memory subsystem ---
        std::vector<hw::CacheWorkload> cache_w(n);
        for (std::size_t i = 0; i < n; ++i) {
            cache_w[i].wssBytes = w[i].wssBytes;
            cache_w[i].accessRate = pressure[i];
            cache_w[i].reuse = w[i].reuse;
        }
        auto shares = hw::solveCacheSharing(
            config_.llcBytes, config_.missFloor, cache_w);

        double dram_demand = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            miss[i] = shares[i].missRatio;
            // Actual (contended) miss traffic drives the memory
            // controller, unlike the occupancy pressure above.
            dram_demand += T[i] * accesses[i] * miss[i] *
                           config_.cacheLineBytes;
        }
        double lat_factor = hw::dramLatencyFactor(
            dram_demand, config_.dramPeakBytesPerSec);

        for (std::size_t i = 0; i < n; ++i) {
            double t_acc = config_.llcHitTime +
                           miss[i] * config_.dramTime * lat_factor;
            t_cm[i] = instr_time[i] + accesses[i] * t_acc;
        }

        // --- Accelerators: per focal NF round-robin equilibrium ---
        for (int k = 0; k < hw::numAccelKinds; ++k) {
            // Collect users of this accelerator.
            std::vector<std::size_t> users;
            for (std::size_t i = 0; i < n; ++i)
                if (w[i].accel[k].used)
                    users.push_back(i);
            if (users.empty())
                continue;

            for (std::size_t i : users) {
                std::vector<hw::AccelQueue> queues;
                std::size_t focal_first = 0;
                int focal_queues = w[i].accel[k].queues;
                for (std::size_t j : users) {
                    const auto &use = w[j].accel[k];
                    double offered = T[j] * use.requestsPerPacket /
                                     use.queues;
                    bool focal = j == i;
                    // The focal NF probes its backlogged share: its
                    // queues are closed-loop, competitors are open at
                    // their current offered load. The focal closed
                    // queue's sojourn then equals the round-robin
                    // round time, which is what a synchronous
                    // submitter waits per request.
                    bool closed = focal;
                    if (focal)
                        focal_first = queues.size();
                    for (int q = 0; q < use.queues; ++q) {
                        queues.push_back(hw::AccelQueue{
                            service[j][k], offered, closed});
                    }
                }
                auto res = hw::solveRoundRobin(queues);
                double req_rate = 0.0;
                double soj = 0.0;
                for (int q = 0; q < focal_queues; ++q) {
                    req_rate += res[focal_first + q].throughput;
                    soj += res[focal_first + q].sojournTime;
                }
                soj /= focal_queues;
                double rpp = w[i].accel[k].requestsPerPacket;
                sojourn[i][k] = soj;
                stage_pps[i][k] = req_rate / rpp;
            }
        }

        // --- Compose per-NF throughput ---
        double delta = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            double cand;
            Bottleneck bn = Bottleneck::CpuMemory;
            double c_cpu = w[i].cores / t_cm[i];
            bool min_compose =
                w[i].pattern == fw::ExecutionPattern::Pipeline ||
                w[i].pacedRate > 0.0;
            if (min_compose) {
                // Decoupled stages (or a load generator): throughput
                // is the slowest stage.
                cand = c_cpu;
                for (int k = 0; k < hw::numAccelKinds; ++k) {
                    if (!w[i].accel[k].used)
                        continue;
                    if (stage_pps[i][k] < cand) {
                        cand = stage_pps[i][k];
                        bn = accelBottleneck(k);
                    }
                }
            } else {
                // Run-to-completion: a core carries its packet end to
                // end, blocking on each in-flight request. Classic
                // closed-network bound: throughput is the minimum of
                // the synchronous cycle rate c / (t_cpu+mem + sum of
                // request sojourns) and each stage's round-robin
                // share (the engine cannot complete more than the
                // focal queues' fair share even when fully pushed).
                double t_total = t_cm[i];
                double worst_time = t_cm[i];
                double cap = c_cpu;
                Bottleneck cap_bn = Bottleneck::CpuMemory;
                for (int k = 0; k < hw::numAccelKinds; ++k) {
                    if (!w[i].accel[k].used)
                        continue;
                    double t_k = w[i].accel[k].requestsPerPacket *
                                 sojourn[i][k];
                    t_total += t_k;
                    if (t_k > worst_time) {
                        worst_time = t_k;
                        bn = accelBottleneck(k);
                    }
                    if (stage_pps[i][k] < cap) {
                        cap = stage_pps[i][k];
                        cap_bn = accelBottleneck(k);
                    }
                }
                cand = w[i].cores / t_total;
                if (cap < cand) {
                    cand = cap;
                    bn = cap_bn;
                }
            }

            double c_nic = w[i].frameBytes > 0.0
                ? config_.nicLineRateBytesPerSec / w[i].frameBytes
                : cand;
            if (c_nic < cand) {
                cand = c_nic;
                bn = Bottleneck::NicLineRate;
            }
            if (w[i].pacedRate > 0.0 && w[i].pacedRate <= cand) {
                cand = w[i].pacedRate;
                bn = Bottleneck::Pacing;
            }
            bottleneck[i] = bn;

            double next = T[i] + opts_.damping * (cand - T[i]);
            delta = std::max(delta,
                             std::fabs(next - T[i]) /
                                 std::max(1.0, T[i]));
            T[i] = next;
        }
        ++iters_run;
        final_delta = delta;
        if (span.active()) {
            // Logical step index = iteration number, so the residual
            // series is diffable run-to-run without wall-clock data.
            tracePoint("sim.solve.iter",
                       {{"residual", traceFormat(delta)}}, iter);
        }
        if (delta < 1e-7) {
            converged = true;
            break;
        }
    }
    auto &sm = solverMetrics();
    sm.solves.inc();
    sm.iterations.inc(static_cast<std::uint64_t>(iters_run));
    sm.perSolve.observe(static_cast<double>(iters_run));
    if (converged) {
        sm.converged.inc();
    } else {
        sm.maxedOut.inc();
        warnEvent("testbed", "solver-maxed-out",
                  {{"iterations", strf("%d", iters_run)},
                   {"residual", strf("%.3g", final_delta)}});
    }
    if (span.active()) {
        span.field("iterations",
                   static_cast<std::int64_t>(iters_run));
        span.field("residual", final_delta);
        span.field("converged", converged ? "true" : "false");
    }

    // --- Emit measurements ---
    for (std::size_t i = 0; i < n; ++i) {
        Measurement &m = out[i];
        m.nfName = w[i].nfName;
        m.truthThroughput = T[i];
        m.throughput = T[i];
        m.cpuMemTimePerPacket = t_cm[i];
        for (int k = 0; k < hw::numAccelKinds; ++k) {
            m.accelSojourn[k] =
                w[i].accel[k].used ? sojourn[i][k] : 0.0;
            m.accelStageCapacity[k] =
                w[i].accel[k].used ? stage_pps[i][k] : 0.0;
        }
        m.bottleneck = bottleneck[i];

        hw::PerfCounters &c = m.counters;
        double instr_rate = T[i] * w[i].instrPerPacket;
        double busy_time_per_pkt = t_cm[i];
        c.instrRetired = instr_rate;
        c.ipc = busy_time_per_pkt > 0.0
            ? w[i].instrPerPacket /
                  (busy_time_per_pkt * config_.coreHz)
            : config_.baseIpc;
        c.l2ReadRate = T[i] * w[i].llcReadsPerPacket;
        c.l2WriteRate = T[i] * w[i].llcWritesPerPacket;
        c.memReadRate = c.l2ReadRate * miss[i];
        c.memWriteRate = c.l2WriteRate * miss[i];
        c.wssBytes = w[i].wssBytes;
    }
    return out;
}

std::vector<Measurement>
Testbed::solveCached(const std::vector<fw::WorkloadProfile> &w) const
{
    if (!cache_)
        return solve(w);
    TraceSpan span("sim.cache");
    auto key = deploymentKey(opts_, w);
    if (span.active()) {
        span.field("key",
                   strf("%016llx",
                        (unsigned long long)fnv1a64(key)));
    }
    std::vector<Measurement> out;
    if (cache_->lookup(key, &out)) {
        span.field("outcome", "hit");
        return out;
    }
    span.field("outcome", "miss");
    out = solve(w);
    cache_->store(key, out);
    return out;
}

std::vector<Measurement>
Testbed::run(const std::vector<fw::WorkloadProfile> &workloads)
{
    TraceSpan span("sim.run");
    span.field("n",
               static_cast<std::uint64_t>(workloads.size()));
    span.field("noise_sigma", opts_.noiseSigma);
    auto out = solveCached(workloads);
    if (opts_.noiseSigma > 0.0) {
        // The noise stream is the one mutable bit of measurement
        // state; serialize it so concurrent run() calls stay
        // race-free (ordered determinism is runBatch's job).
        std::lock_guard<std::mutex> lock(noiseMutex_);
        for (auto &m : out) {
            m.throughput *= rng_.lognormalFactor(opts_.noiseSigma);
            hw::PerfCounters &c = m.counters;
            double s = opts_.noiseSigma;
            c.ipc *= rng_.lognormalFactor(s);
            c.instrRetired *= rng_.lognormalFactor(s);
            c.l2ReadRate *= rng_.lognormalFactor(s);
            c.l2WriteRate *= rng_.lognormalFactor(s);
            c.memReadRate *= rng_.lognormalFactor(s);
            c.memWriteRate *= rng_.lognormalFactor(s);
            c.wssBytes *= rng_.lognormalFactor(s);
        }
    }
    return out;
}

void
Testbed::prewarm(
    const std::vector<std::vector<fw::WorkloadProfile>> &batch)
{
    if (!cache_ || batch.empty())
        return;
    TraceSpan span("sim.prewarm");
    span.field("n", static_cast<std::uint64_t>(batch.size()));
    parallelFor(batch.size(),
                [&](std::size_t i) { solveCached(batch[i]); });
}

std::vector<std::vector<Measurement>>
Testbed::runBatch(
    const std::vector<std::vector<fw::WorkloadProfile>> &batch)
{
    TraceSpan span("sim.runBatch");
    span.field("n", static_cast<std::uint64_t>(batch.size()));
    // Phase 1: fan the deterministic solves across the pool.
    prewarm(batch);
    // Phase 2: draw noise (and, through the virtual run(), any
    // interposed faults) strictly in submission order — bit-identical
    // to the serial loop whatever the pool width. Each deployment is
    // one cancellation granule for the cooperative deadline.
    std::vector<std::vector<Measurement>> out;
    out.reserve(batch.size());
    for (const auto &deploy : batch) {
        checkDeadline("sim.runBatch");
        out.push_back(run(deploy));
    }
    return out;
}

RngState
Testbed::noiseState() const
{
    std::lock_guard<std::mutex> lock(noiseMutex_);
    return rng_.state();
}

void
Testbed::setNoiseState(const RngState &st)
{
    std::lock_guard<std::mutex> lock(noiseMutex_);
    rng_.setState(st);
}

std::unique_ptr<Testbed>
Testbed::clone(std::uint64_t seed) const
{
    TestbedOptions opts = opts_;
    opts.seed = seed;
    return std::make_unique<Testbed>(config_, opts);
}

std::size_t
Testbed::cacheHits() const
{
    return cache_ ? cache_->stats().hits : 0;
}

std::size_t
Testbed::cacheMisses() const
{
    return cache_ ? cache_->stats().misses : 0;
}

void
Testbed::clearCache()
{
    if (cache_)
        cache_->clear();
}

Measurement
Testbed::runSolo(const fw::WorkloadProfile &workload)
{
    auto ms = run({workload});
    if (ms.empty()) {
        // A fault-injecting harness may truncate the batch to
        // nothing; surface that as an all-zero measurement rather
        // than indexing out of range.
        Measurement dropped;
        dropped.nfName = workload.nfName;
        return dropped;
    }
    return ms[0];
}

} // namespace tomur::sim
