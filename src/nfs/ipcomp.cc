/**
 * @file
 * IPComp Gateway: payload scanning (regex accelerator) to classify
 * compressible traffic, then hardware compression of the payload.
 * Pipeline execution across the two accelerator stages.
 */

#include "nfs/common_elements.hh"
#include "nfs/registry.hh"

namespace tomur::nfs {

namespace fw = framework;

namespace {

class IpCompElement : public Element
{
  public:
    IpCompElement(std::shared_ptr<fw::RegexDevice> regex,
                  std::shared_ptr<fw::CompressionDevice> comp)
        : Element("IpComp"), regex_(std::move(regex)),
          comp_(std::move(comp))
    {
    }

    Verdict
    process(net::Packet &pkt, CostContext &ctx) override
    {
        auto payload = pkt.payload();
        ctx.addInstructions(2 * (fw::cost::accelSubmit +
                                 fw::cost::accelReap));
        // Scan classifies traffic (already-compressed or encrypted
        // streams match "skip" signatures and bypass compression).
        auto scan = regex_->scan(payload, ctx);
        if (scan.matchedRules & skipMask_) {
            ++bypassed_;
            return Verdict::Forward;
        }
        auto res = comp_->compress(payload, ctx);
        savedBytes_ += payload.size() > res.compressedSize
            ? payload.size() - res.compressedSize : 0;
        ctx.addInstructions(80); // IPComp header bookkeeping
        ctx.addMemAccess(packetPoolRegion(), 1.0, 1.0);
        return Verdict::Forward;
    }

    void
    reset() override
    {
        bypassed_ = 0;
        savedBytes_ = 0;
    }

    std::uint64_t bypassed() const { return bypassed_; }
    std::uint64_t savedBytes() const { return savedBytes_; }

  private:
    std::shared_ptr<fw::RegexDevice> regex_;
    std::shared_ptr<fw::CompressionDevice> comp_;
    std::uint64_t skipMask_ = 0x1000; // tls-hello rule id
    std::uint64_t bypassed_ = 0;
    std::uint64_t savedBytes_ = 0;
};

} // namespace

std::unique_ptr<NetworkFunction>
makeIpCompGateway(const DeviceSet &dev)
{
    auto nf = std::make_unique<NetworkFunction>(
        "IPCompGateway", fw::ExecutionPattern::Pipeline);
    nf->add(std::make_unique<ParseElement>());
    nf->add(std::make_unique<IpCompElement>(dev.regex,
                                            dev.compression));
    return nf;
}

} // namespace tomur::nfs
