/**
 * @file
 * Longest-prefix-match routing table (binary trie), the substrate of
 * IPRouter. Performs real per-bit trie walks and reports the trie
 * footprint to the cost model.
 */

#ifndef TOMUR_NFS_LPM_HH
#define TOMUR_NFS_LPM_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "framework/element.hh"
#include "net/headers.hh"

namespace tomur::nfs {

/**
 * Binary trie keyed by IPv4 prefixes.
 */
class LpmTable
{
  public:
    LpmTable();

    /** Insert a prefix -> next hop mapping. */
    void insert(net::Ipv4Addr prefix, int prefix_len,
                std::uint32_t next_hop);

    /**
     * Longest-prefix lookup.
     * @param steps out-param: trie nodes visited
     * @return next hop, or nullopt when no prefix covers the address
     */
    std::optional<std::uint32_t> lookup(net::Ipv4Addr addr,
                                        std::size_t &steps) const;

    /** Number of trie nodes. */
    std::size_t nodeCount() const { return nodes_.size(); }

    /** Byte footprint of the trie. */
    double bytes() const;

    /** Memory region descriptor. */
    framework::MemRegion region() const;

    /**
     * Populate with a deterministic synthetic FIB of `routes`
     * prefixes (mixed /8-/28 lengths) plus a default route.
     */
    static LpmTable synthetic(std::size_t routes,
                              std::uint64_t seed = 7);

  private:
    struct Node
    {
        std::int32_t child[2] = {-1, -1};
        std::int32_t nextHop = -1; ///< -1: no route terminates here
    };

    std::vector<Node> nodes_;
};

} // namespace tomur::nfs

#endif // TOMUR_NFS_LPM_HH
