/**
 * @file
 * FlowTracker: DOCA-style pipeline with hardware-offloaded flow
 * tracking — the NIC's flow engine handles key extraction so the SoC
 * spends few instructions, but per-flow state still lives in (and
 * contends for) the memory subsystem.
 */

#include "framework/flow_table.hh"
#include "nfs/common_elements.hh"
#include "nfs/registry.hh"

namespace tomur::nfs {

namespace fw = framework;

namespace {

/** Connection-tracking state. */
struct TrackEntry
{
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    std::uint8_t state = 0; ///< tracked connection FSM state
};

class FlowTrackerElement : public Element
{
  public:
    FlowTrackerElement()
        : Element("FlowTracker"), table_("tracker_table")
    {
    }

    Verdict
    process(net::Packet &pkt, CostContext &ctx) override
    {
        auto tuple = pkt.fiveTuple();
        if (!tuple)
            return Verdict::Drop;
        TrackEntry &e = table_.findOrInsert(*tuple, ctx);
        ++e.packets;
        e.bytes += pkt.size();
        // Small FSM step; the heavy lifting (parsing, key match) is
        // done by the hardware flow engine.
        e.state = static_cast<std::uint8_t>((e.state + 1) & 0x7);
        ctx.addInstructions(40);
        return Verdict::Forward;
    }

    void reset() override { table_.clear(); }

    std::vector<MemRegion>
    regions() const override
    {
        return {table_.region()};
    }

  private:
    framework::FlowTable<TrackEntry> table_;
};

} // namespace

std::unique_ptr<NetworkFunction>
makeFlowTracker()
{
    auto nf = std::make_unique<NetworkFunction>(
        "FlowTracker", fw::ExecutionPattern::RunToCompletion);
    nf->add(std::make_unique<ParseElement>());
    nf->add(std::make_unique<FlowTrackerElement>());
    return nf;
}

} // namespace tomur::nfs
