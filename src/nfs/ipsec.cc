/**
 * @file
 * IPsecGateway: ESP tunnel-mode encryption — per-flow security
 * association lookup, payload encryption on the crypto accelerator
 * (ChaCha20 standing in for the NIC's inline crypto engine), and ESP
 * header bookkeeping. Extension NF exercising the paper's claim that
 * the queue-based accelerator model carries over to other
 * accelerators such as crypto (§4.1.1).
 */

#include "framework/flow_table.hh"
#include "nfs/common_elements.hh"
#include "nfs/registry.hh"

namespace tomur::nfs {

namespace fw = framework;

namespace {

/** Security association state per flow. */
struct SaEntry
{
    std::uint32_t spi = 0;      ///< security parameter index
    std::uint32_t sequence = 0; ///< ESP sequence number
    fw::CryptoDevice::Key key;
};

class IpsecElement : public Element
{
  public:
    explicit IpsecElement(std::shared_ptr<fw::CryptoDevice> crypto)
        : Element("EspEncrypt"), crypto_(std::move(crypto)),
          sadb_("ipsec_sadb")
    {
    }

    Verdict
    process(net::Packet &pkt, CostContext &ctx) override
    {
        auto tuple = pkt.fiveTuple();
        if (!tuple)
            return Verdict::Drop;
        bool inserted = false;
        SaEntry &sa = sadb_.findOrInsert(*tuple, ctx, &inserted);
        if (inserted) {
            sa.spi = nextSpi_++;
            // Derive a per-SA key from the SPI (a real IKE exchange
            // is out of scope; determinism keeps tests simple).
            for (int i = 0; i < 8; ++i)
                sa.key.words[i] = sa.spi * 0x9e3779b9u + i;
            ctx.addInstructions(400); // SA setup path
        }
        ++sa.sequence;

        ctx.addInstructions(fw::cost::accelSubmit +
                            fw::cost::accelReap);
        auto payload = pkt.payload();
        auto cipher =
            crypto_->encrypt(payload, ctx, sa.key, sa.sequence);
        // Write the ciphertext back in place (ESP trailer/ICV
        // bookkeeping approximated as header costs).
        std::size_t off = pkt.payloadOffset();
        std::copy(cipher.begin(), cipher.end(),
                  pkt.bytes().begin() + off);
        ctx.addInstructions(fw::cost::checksum + 90);
        ctx.addMemAccess(packetPoolRegion(), 1.0, 1.0);
        ++encrypted_;
        return Verdict::Forward;
    }

    void
    reset() override
    {
        sadb_.clear();
        nextSpi_ = 0x1000;
        encrypted_ = 0;
    }

    std::vector<MemRegion>
    regions() const override
    {
        return {sadb_.region()};
    }

    std::uint64_t encrypted() const { return encrypted_; }

  private:
    std::shared_ptr<fw::CryptoDevice> crypto_;
    fw::FlowTable<SaEntry> sadb_;
    std::uint32_t nextSpi_ = 0x1000;
    std::uint64_t encrypted_ = 0;
};

} // namespace

std::unique_ptr<NetworkFunction>
makeIpsecGateway(const DeviceSet &dev)
{
    auto nf = std::make_unique<NetworkFunction>(
        "IPsecGateway", fw::ExecutionPattern::RunToCompletion);
    nf->add(std::make_unique<ParseElement>());
    nf->add(std::make_unique<IpsecElement>(dev.crypto));
    return nf;
}

} // namespace tomur::nfs
