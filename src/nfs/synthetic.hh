/**
 * @file
 * Synthetic NFs used by the paper's microbenchmarks: regex-NF
 * (§4.1.1, Fig. 4), and NF1/NF2 (§7.3, Table 4) in pipeline and
 * run-to-completion variants.
 */

#ifndef TOMUR_NFS_SYNTHETIC_HH
#define TOMUR_NFS_SYNTHETIC_HH

#include <memory>

#include "framework/accel_dev.hh"
#include "framework/nf.hh"

namespace tomur::nfs {

/**
 * regex-NF: a minimal closed-loop pattern-matching NF — parse and
 * scan every payload. Its regex service time follows the traffic
 * profile's MTBR.
 */
std::unique_ptr<framework::NetworkFunction>
makeRegexNf(const framework::DeviceSet &dev);

/**
 * NF1: memory work (flow state) + regex scanning, in the given
 * execution pattern.
 */
std::unique_ptr<framework::NetworkFunction>
makeSyntheticNf1(const framework::DeviceSet &dev,
                 framework::ExecutionPattern pattern);

/**
 * NF2: NF1 plus hardware compression (three resources).
 */
std::unique_ptr<framework::NetworkFunction>
makeSyntheticNf2(const framework::DeviceSet &dev,
                 framework::ExecutionPattern pattern);

} // namespace tomur::nfs

#endif // TOMUR_NFS_SYNTHETIC_HH
