/**
 * @file
 * FlowMonitor: per-flow status plus hardware payload scanning — the
 * flow table tracks per-flow match counters fed by the regex
 * accelerator. Pipeline execution: the scan stage is decoupled from
 * the flow-state stage (Metron-style).
 */

#include "framework/flow_table.hh"
#include "nfs/common_elements.hh"
#include "nfs/registry.hh"

namespace tomur::nfs {

namespace fw = framework;

namespace {

/** Per-flow monitoring record. */
struct MonitorEntry
{
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    std::uint64_t matches = 0;
    std::uint64_t suspicious = 0; ///< packets with any rule hit
};

class FlowMonitorElement : public Element
{
  public:
    explicit FlowMonitorElement(
        std::shared_ptr<fw::RegexDevice> regex)
        : Element("FlowMonitor"), regex_(std::move(regex)),
          table_("flowmonitor_table")
    {
    }

    Verdict
    process(net::Packet &pkt, CostContext &ctx) override
    {
        auto tuple = pkt.fiveTuple();
        if (!tuple)
            return Verdict::Drop;
        MonitorEntry &e = table_.findOrInsert(*tuple, ctx);
        ++e.packets;
        e.bytes += pkt.size();
        // Status maintenance: rolling rate estimate, reverse-path
        // entry, and per-flow histogram bucket updates.
        ctx.addInstructions(180);
        ctx.addMemAccess(table_.region(), 6.0, 2.0);

        ctx.addInstructions(fw::cost::accelSubmit +
                            fw::cost::accelReap);
        auto scan = regex_->scan(pkt.payload(), ctx);
        e.matches += scan.matchCount;
        if (scan.matchedRules)
            ++e.suspicious;
        ctx.addInstructions(60); // merge scan result into the record
        return Verdict::Forward;
    }

    void reset() override { table_.clear(); }

    std::vector<MemRegion>
    regions() const override
    {
        return {table_.region()};
    }

  private:
    std::shared_ptr<fw::RegexDevice> regex_;
    framework::FlowTable<MonitorEntry> table_;
};

} // namespace

std::unique_ptr<NetworkFunction>
makeFlowMonitor(const DeviceSet &dev)
{
    auto nf = std::make_unique<NetworkFunction>(
        "FlowMonitor", fw::ExecutionPattern::Pipeline);
    nf->add(std::make_unique<ParseElement>());
    nf->add(std::make_unique<FlowMonitorElement>(dev.regex));
    return nf;
}

} // namespace tomur::nfs
