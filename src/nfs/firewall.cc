/**
 * @file
 * Firewall: the Pensando generalisation NF (§8) — a flow walk over
 * the hardware flow table updating entry metadata, plus payload
 * matching against the input traffic's flows. Uses memory and the
 * regex engine.
 */

#include "framework/flow_table.hh"
#include "nfs/common_elements.hh"
#include "nfs/registry.hh"

namespace tomur::nfs {

namespace fw = framework;

namespace {

/** Per-flow firewall metadata. */
struct FirewallEntry
{
    std::uint64_t packets = 0;
    std::uint64_t matches = 0;
    bool blocked = false;
};

class FirewallElement : public Element
{
  public:
    explicit FirewallElement(std::shared_ptr<fw::RegexDevice> regex)
        : Element("Firewall"), regex_(std::move(regex)),
          table_("firewall_table")
    {
    }

    Verdict
    process(net::Packet &pkt, CostContext &ctx) override
    {
        auto tuple = pkt.fiveTuple();
        if (!tuple)
            return Verdict::Drop;
        FirewallEntry &e = table_.findOrInsert(*tuple, ctx);
        ++e.packets;
        if (e.blocked)
            return Verdict::Drop;

        ctx.addInstructions(fw::cost::accelSubmit +
                            fw::cost::accelReap + 90);
        auto scan = regex_->scan(pkt.payload(), ctx);
        e.matches += scan.matchCount;
        // Block a flow that keeps triggering signatures.
        if (e.matches > 8)
            e.blocked = true;
        return Verdict::Forward;
    }

    void reset() override { table_.clear(); }

    std::vector<MemRegion>
    regions() const override
    {
        return {table_.region()};
    }

  private:
    std::shared_ptr<fw::RegexDevice> regex_;
    framework::FlowTable<FirewallEntry> table_;
};

} // namespace

std::unique_ptr<NetworkFunction>
makeFirewall(const DeviceSet &dev)
{
    auto nf = std::make_unique<NetworkFunction>(
        "Firewall", fw::ExecutionPattern::RunToCompletion);
    nf->add(std::make_unique<ParseElement>());
    nf->add(std::make_unique<FirewallElement>(dev.regex));
    return nf;
}

} // namespace tomur::nfs
