/**
 * @file
 * IPRouter: L3 routing — TTL handling, longest-prefix match over a
 * synthetic FIB, next-hop MAC rewrite. Not traffic-sensitive (Table 1
 * column T is empty): its trie is fixed-size and it ignores payloads.
 */

#include "nfs/lpm.hh"
#include "nfs/common_elements.hh"
#include "nfs/registry.hh"

namespace tomur::nfs {

namespace fw = framework;

namespace {

/** FIB size of the synthetic deployment. */
constexpr std::size_t kRoutes = 512;

class LpmElement : public Element
{
  public:
    LpmElement()
        : Element("LpmLookup"), table_(LpmTable::synthetic(kRoutes))
    {
    }

    Verdict
    process(net::Packet &pkt, CostContext &ctx) override
    {
        auto ip = pkt.ipv4();
        if (!ip)
            return Verdict::Drop;
        std::size_t steps = 0;
        auto hop = table_.lookup(ip->dst, steps);
        ctx.addInstructions(12.0 * static_cast<double>(steps));
        // Path-compressed trie: ~4 nodes per cache line touched.
        ctx.addMemAccess(table_.region(),
                         static_cast<double>(steps) / 4.0, 0.0);
        if (!hop)
            return Verdict::Drop;
        lastHop_ = *hop;
        return Verdict::Forward;
    }

    std::vector<MemRegion>
    regions() const override
    {
        return {table_.region()};
    }

    std::uint32_t lastHop() const { return lastHop_; }

  private:
    LpmTable table_;
    std::uint32_t lastHop_ = 0;
};

} // namespace

std::unique_ptr<NetworkFunction>
makeIpRouter()
{
    auto nf = std::make_unique<NetworkFunction>(
        "IPRouter", fw::ExecutionPattern::RunToCompletion);
    nf->add(std::make_unique<ParseElement>());
    nf->add(std::make_unique<TtlElement>());
    nf->add(std::make_unique<LpmElement>());
    nf->add(std::make_unique<MacRewriteElement>());
    return nf;
}

} // namespace tomur::nfs
