#include "nfs/synthetic.hh"

#include "common/rng.hh"
#include "framework/flow_table.hh"
#include "nfs/common_elements.hh"

namespace tomur::nfs {

namespace fw = framework;

namespace {

/** Plain scan element (no flow state). */
class ScanElement : public Element
{
  public:
    explicit ScanElement(std::shared_ptr<fw::RegexDevice> regex)
        : Element("Scan"), regex_(std::move(regex))
    {
    }

    Verdict
    process(net::Packet &pkt, CostContext &ctx) override
    {
        ctx.addInstructions(fw::cost::accelSubmit +
                            fw::cost::accelReap);
        regex_->scan(pkt.payload(), ctx);
        return Verdict::Forward;
    }

  private:
    std::shared_ptr<fw::RegexDevice> regex_;
};

/** Compression stage element. */
class CompressElement : public Element
{
  public:
    explicit CompressElement(
        std::shared_ptr<fw::CompressionDevice> comp)
        : Element("Compress"), comp_(std::move(comp))
    {
    }

    Verdict
    process(net::Packet &pkt, CostContext &ctx) override
    {
        ctx.addInstructions(fw::cost::accelSubmit +
                            fw::cost::accelReap);
        comp_->compress(pkt.payload(), ctx);
        return Verdict::Forward;
    }

  private:
    std::shared_ptr<fw::CompressionDevice> comp_;
};

/**
 * Dedicated memory-work element: per-packet state touches over a
 * multi-megabyte region, so the synthetic NFs have a CPU+memory stage
 * whose speed genuinely depends on LLC/DRAM contention (the paper's
 * NF1/NF2 stress both memory and accelerators, §7.3).
 */
class MemTouchElement : public Element
{
  public:
    MemTouchElement(double accesses, double wss_bytes)
        : Element("MemTouch"), accesses_(accesses),
          region_{"synthetic_state", wss_bytes, 1.0}, rng_(0x515)
    {
        array_.resize(static_cast<std::size_t>(
                          std::min(wss_bytes, 2.0 * 1024 * 1024)) / 8,
                      3);
    }

    Verdict
    process(net::Packet &, CostContext &ctx) override
    {
        std::uint64_t acc = 0;
        for (int i = 0; i < 8; ++i)
            acc ^= array_[rng_.uniformInt(array_.size())];
        (void)acc;
        ctx.addInstructions(5.0 * accesses_);
        ctx.addMemAccess(region_, accesses_ * 0.75,
                         accesses_ * 0.25);
        return Verdict::Forward;
    }

    std::vector<MemRegion>
    regions() const override
    {
        return {region_};
    }

  private:
    double accesses_;
    MemRegion region_;
    tomur::Rng rng_;
    std::vector<std::uint64_t> array_;
};

/** Memory-work element: per-flow counters (modest footprint). */
class FlowStateElement : public Element
{
  public:
    FlowStateElement()
        : Element("FlowState"), table_("synthetic_flow_state")
    {
    }

    Verdict
    process(net::Packet &pkt, CostContext &ctx) override
    {
        auto tuple = pkt.fiveTuple();
        if (!tuple)
            return Verdict::Drop;
        std::uint64_t &count = table_.findOrInsert(*tuple, ctx);
        ++count;
        ctx.addInstructions(150);
        return Verdict::Forward;
    }

    void reset() override { table_.clear(); }

    std::vector<MemRegion>
    regions() const override
    {
        return {table_.region()};
    }

  private:
    fw::FlowTable<std::uint64_t> table_;
};

} // namespace

std::unique_ptr<fw::NetworkFunction>
makeRegexNf(const fw::DeviceSet &dev)
{
    auto nf = std::make_unique<fw::NetworkFunction>(
        "regex-NF", fw::ExecutionPattern::Pipeline);
    nf->add(std::make_unique<ParseElement>());
    nf->add(std::make_unique<ScanElement>(dev.regex));
    return nf;
}

std::unique_ptr<fw::NetworkFunction>
makeSyntheticNf1(const fw::DeviceSet &dev,
                 fw::ExecutionPattern pattern)
{
    auto nf = std::make_unique<fw::NetworkFunction>(
        std::string("NF1-") + fw::patternName(pattern), pattern);
    nf->add(std::make_unique<ParseElement>());
    nf->add(std::make_unique<FlowStateElement>());
    nf->add(std::make_unique<MemTouchElement>(40.0,
                                              4.0 * 1024 * 1024));
    nf->add(std::make_unique<ScanElement>(dev.regex));
    return nf;
}

std::unique_ptr<fw::NetworkFunction>
makeSyntheticNf2(const fw::DeviceSet &dev,
                 fw::ExecutionPattern pattern)
{
    auto nf = std::make_unique<fw::NetworkFunction>(
        std::string("NF2-") + fw::patternName(pattern), pattern);
    nf->add(std::make_unique<ParseElement>());
    nf->add(std::make_unique<FlowStateElement>());
    nf->add(std::make_unique<MemTouchElement>(40.0,
                                              4.0 * 1024 * 1024));
    nf->add(std::make_unique<ScanElement>(dev.regex));
    nf->add(std::make_unique<CompressElement>(dev.compression));
    return nf;
}

} // namespace tomur::nfs
