/**
 * @file
 * PacketFilter: DOCA-style hardware pattern matching filter — drop
 * any packet whose payload matches a filter rule.
 */

#include "nfs/common_elements.hh"
#include "nfs/registry.hh"

namespace tomur::nfs {

namespace fw = framework;

namespace {

class PacketFilterElement : public Element
{
  public:
    explicit PacketFilterElement(
        std::shared_ptr<fw::RegexDevice> regex)
        : Element("PacketFilter"), regex_(std::move(regex))
    {
    }

    Verdict
    process(net::Packet &pkt, CostContext &ctx) override
    {
        ctx.addInstructions(fw::cost::accelSubmit +
                            fw::cost::accelReap);
        auto scan = regex_->scan(pkt.payload(), ctx);
        if (scan.matchedRules) {
            ++filtered_;
            return Verdict::Drop;
        }
        return Verdict::Forward;
    }

    void reset() override { filtered_ = 0; }
    std::uint64_t filtered() const { return filtered_; }

  private:
    std::shared_ptr<fw::RegexDevice> regex_;
    std::uint64_t filtered_ = 0;
};

} // namespace

std::unique_ptr<NetworkFunction>
makePacketFilter(const DeviceSet &dev)
{
    auto nf = std::make_unique<NetworkFunction>(
        "PacketFilter", fw::ExecutionPattern::RunToCompletion);
    nf->add(std::make_unique<ParseElement>());
    nf->add(std::make_unique<PacketFilterElement>(dev.regex));
    return nf;
}

} // namespace tomur::nfs
