#include "nfs/registry.hh"

#include "common/logging.hh"
#include "common/strutil.hh"

namespace tomur::nfs {

const std::vector<NfInfo> &
catalog()
{
    static const std::vector<NfInfo> entries = {
        {"FlowStats", false, false, false, true, "Click"},
        {"IPRouter", false, false, false, false, "Click"},
        {"IPTunnel", false, false, false, true, "Click"},
        {"NAT", false, false, false, true, "Click"},
        {"FlowMonitor", true, false, false, true, "Click"},
        {"NIDS", true, false, false, true, "Click"},
        {"IPCompGateway", true, true, false, true, "Click"},
        {"ACL", false, false, false, false, "DPDK"},
        {"FlowClassifier", false, false, false, true, "DPDK"},
        {"FlowTracker", false, false, false, true, "DOCA"},
        {"PacketFilter", true, false, false, true, "DOCA"},
        {"IPsecGateway", false, false, true, true, "Click"},
    };
    return entries;
}

std::unique_ptr<NetworkFunction>
makeByName(const std::string &name, const DeviceSet &dev)
{
    if (name == "FlowStats")
        return makeFlowStats();
    if (name == "IPRouter")
        return makeIpRouter();
    if (name == "IPTunnel")
        return makeIpTunnel();
    if (name == "NAT")
        return makeNat();
    if (name == "FlowMonitor")
        return makeFlowMonitor(dev);
    if (name == "NIDS")
        return makeNids(dev);
    if (name == "IPCompGateway")
        return makeIpCompGateway(dev);
    if (name == "ACL")
        return makeAcl();
    if (name == "FlowClassifier")
        return makeFlowClassifier();
    if (name == "FlowTracker")
        return makeFlowTracker();
    if (name == "PacketFilter")
        return makePacketFilter(dev);
    if (name == "Firewall")
        return makeFirewall(dev);
    if (name == "IPsecGateway")
        return makeIpsecGateway(dev);
    fatal(strf("makeByName: unknown NF '%s'", name.c_str()));
}

std::vector<std::string>
evaluationNfNames()
{
    return {"ACL",            "NIDS",       "IPTunnel",
            "IPRouter",       "FlowClassifier", "FlowTracker",
            "FlowStats",      "FlowMonitor",    "NAT"};
}

} // namespace tomur::nfs
