/**
 * @file
 * FlowStats: per-flow packet/byte statistics with aging (Click-style
 * AggregateCounter + aging sweep). Traffic-sensitive through its flow
 * table footprint.
 */

#ifndef TOMUR_NFS_FLOWSTATS_HH
#define TOMUR_NFS_FLOWSTATS_HH

#include "framework/flow_table.hh"
#include "nfs/common_elements.hh"

namespace tomur::nfs {

/** Per-flow statistics record. */
struct FlowStatsEntry
{
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    std::uint64_t firstSeen = 0;
    std::uint64_t lastSeen = 0;
};

/**
 * The statistics-keeping element.
 */
class FlowStatsElement : public Element
{
  public:
    /** @param aging_period sweep one table stripe every N packets */
    explicit FlowStatsElement(std::uint64_t aging_period = 64);

    Verdict process(net::Packet &pkt, CostContext &ctx) override;
    void reset() override;
    std::vector<MemRegion> regions() const override;

    /** Lookup a flow's statistics (test/diagnostic use). */
    const FlowStatsEntry *peek(const net::FiveTuple &flow);

    std::uint64_t flowsTracked() const { return table_.size(); }

  private:
    framework::FlowTable<FlowStatsEntry> table_;
    std::uint64_t agingPeriod_;
    std::uint64_t tick_ = 0;
};

} // namespace tomur::nfs

#endif // TOMUR_NFS_FLOWSTATS_HH
