/**
 * @file
 * Synthetic benchmark NFs (paper §6): mem-bench, regex-bench and
 * compression-bench apply configurable contention on the memory
 * subsystem and accelerators. They are the profiling workhorses —
 * training data for the per-resource models comes from co-running
 * target NFs with these at swept contention levels.
 */

#ifndef TOMUR_NFS_BENCH_NFS_HH
#define TOMUR_NFS_BENCH_NFS_HH

#include <memory>

#include "framework/accel_dev.hh"
#include "framework/nf.hh"

namespace tomur::nfs {

/** mem-bench memory access patterns. */
enum class MemAccessMode
{
    Stream, ///< sequential, no temporal reuse
    Step,   ///< strided with partial reuse
    Random, ///< uniform random over the working set (full reuse)
};

/** mem-bench configuration (§6: pattern, speed, array size). */
struct MemBenchConfig
{
    double wssBytes = 8.0 * 1024 * 1024;
    /** Target cache access rate in accesses/s (the paper's CAR). */
    double targetAccessRate = 20e6;
    MemAccessMode mode = MemAccessMode::Random;
    /** Accesses per iteration ("packet") of the bench loop. */
    double accessesPerIteration = 64.0;
    /**
     * Compute intensity: instructions executed per memory access.
     * Swept independently of the access rate so the synthetic
     * competitor corpus decorrelates instruction-side counters (IRT,
     * IPC) from cache pressure — real competitors vary widely here.
     */
    double instructionsPerAccess = 4.0;
};

/** Build a mem-bench instance. */
std::unique_ptr<framework::NetworkFunction>
makeMemBench(const MemBenchConfig &cfg);

/** regex-bench configuration (§6: processing rate, MTBR). */
struct RegexBenchConfig
{
    /** Offered request rate (requests/s); 0 = closed loop. */
    double requestRate = 0.0;
    /** Payload bytes per request. */
    double payloadBytes = 1434.0;
    /** Request queues toward the accelerator. */
    int queues = 1;
};

/**
 * Build a regex-bench instance. The per-request match count (and so
 * the service time) is controlled by the MTBR of the traffic profile
 * it is profiled under.
 */
std::unique_ptr<framework::NetworkFunction>
makeRegexBench(const framework::DeviceSet &dev,
               const RegexBenchConfig &cfg);

/** compression-bench configuration. */
struct CompressionBenchConfig
{
    double requestRate = 0.0; ///< 0 = closed loop
    int queues = 1;
    /**
     * Bytes per compression request; 0 uses the traffic payload as
     * is. Larger requests raise the bench's per-request service time
     * — calibration runs need it "high enough" that the target NF is
     * accelerator-bound at equilibrium (§4.1.1).
     */
    double requestBytes = 0.0;
};

/** Build a compression-bench instance. */
std::unique_ptr<framework::NetworkFunction>
makeCompressionBench(const framework::DeviceSet &dev,
                     const CompressionBenchConfig &cfg);

/** crypto-bench configuration. */
struct CryptoBenchConfig
{
    double requestRate = 0.0; ///< 0 = closed loop
    int queues = 1;
    /** Bytes per crypto request; 0 uses the traffic payload. */
    double requestBytes = 0.0;
};

/** Build a crypto-bench instance. */
std::unique_ptr<framework::NetworkFunction>
makeCryptoBench(const framework::DeviceSet &dev,
                const CryptoBenchConfig &cfg);

} // namespace tomur::nfs

#endif // TOMUR_NFS_BENCH_NFS_HH
