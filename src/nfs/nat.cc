/**
 * @file
 * NAT: IPv4 source NAT modeled on MazuNAT — allocate an external
 * (address, port) per flow, rewrite addressing, refresh checksums.
 * Traffic-sensitive via the mapping table.
 */

#include "framework/flow_table.hh"
#include "nfs/common_elements.hh"
#include "nfs/registry.hh"

namespace tomur::nfs {

namespace fw = framework;

namespace {

/** One NAT binding. */
struct NatBinding
{
    std::uint32_t externalIp = 0;
    std::uint16_t externalPort = 0;
    std::uint64_t lastUsed = 0;
};

class NatElement : public Element
{
  public:
    NatElement()
        : Element("MazuNat"), table_("nat_bindings")
    {
    }

    Verdict
    process(net::Packet &pkt, CostContext &ctx) override
    {
        auto tuple = pkt.fiveTuple();
        if (!tuple)
            return Verdict::Drop;
        ++tick_;
        bool inserted = false;
        NatBinding &b = table_.findOrInsert(*tuple, ctx, &inserted);
        if (inserted) {
            // Allocate the next external port from the pool.
            b.externalIp =
                net::Ipv4Addr::fromOctets(100, 64, 0, 1).value;
            b.externalPort =
                static_cast<std::uint16_t>(1024 + (nextPort_++ %
                                                   60000));
            ctx.addInstructions(160); // pool allocation path
        }
        b.lastUsed = tick_;

        net::FiveTuple rewritten = *tuple;
        rewritten.srcIp.value = b.externalIp;
        rewritten.srcPort = b.externalPort;
        pkt.rewriteAddressing(rewritten);
        ctx.addInstructions(fw::cost::checksum + 70);
        ctx.addMemAccess(packetPoolRegion(), 1.0, 1.0);
        return Verdict::Forward;
    }

    void
    reset() override
    {
        table_.clear();
        nextPort_ = 0;
        tick_ = 0;
    }

    std::vector<MemRegion>
    regions() const override
    {
        return {table_.region()};
    }

    std::uint64_t bindings() const { return table_.size(); }

  private:
    framework::FlowTable<NatBinding> table_;
    std::uint64_t nextPort_ = 0;
    std::uint64_t tick_ = 0;
};

} // namespace

std::unique_ptr<NetworkFunction>
makeNat()
{
    auto nf = std::make_unique<NetworkFunction>(
        "NAT", fw::ExecutionPattern::RunToCompletion);
    nf->add(std::make_unique<ParseElement>());
    nf->add(std::make_unique<NatElement>());
    return nf;
}

} // namespace tomur::nfs
