#include "nfs/bench_nfs.hh"

#include <vector>

#include "common/rng.hh"
#include "common/strutil.hh"
#include "nfs/common_elements.hh"

namespace tomur::nfs {

namespace fw = framework;

namespace {

double
reuseFor(MemAccessMode mode)
{
    switch (mode) {
      case MemAccessMode::Stream:
        return 0.05;
      case MemAccessMode::Step:
        return 0.5;
      case MemAccessMode::Random:
        return 1.0;
    }
    return 1.0;
}

/**
 * The mem-bench loop body: one "packet" performs a batch of real
 * array accesses over a working set of the configured size.
 */
class MemBenchElement : public Element
{
  public:
    explicit MemBenchElement(const MemBenchConfig &cfg)
        : Element("MemBench"), cfg_(cfg),
          region_{"membench_array", cfg.wssBytes, reuseFor(cfg.mode)},
          rng_(0xbe7c4)
    {
        // Back the region with a real (bounded) array so accesses are
        // genuine work, while the modeled WSS follows the config.
        array_.resize(static_cast<std::size_t>(
            std::min(cfg.wssBytes, 4.0 * 1024 * 1024)) / 8, 1);
    }

    Verdict
    process(net::Packet &, CostContext &ctx) override
    {
        std::uint64_t acc = 0;
        std::size_t n = array_.size();
        for (int i = 0; i < 16 && n > 0; ++i)
            acc += array_[rng_.uniformInt(n)];
        (void)acc;
        ctx.addInstructions(cfg_.instructionsPerAccess *
                            cfg_.accessesPerIteration);
        // Writes to force cache-line ownership: 1/4 of accesses.
        ctx.addMemAccess(region_, cfg_.accessesPerIteration * 0.75,
                         cfg_.accessesPerIteration * 0.25);
        return Verdict::Forward;
    }

    std::vector<MemRegion>
    regions() const override
    {
        return {region_};
    }

  private:
    MemBenchConfig cfg_;
    MemRegion region_;
    Rng rng_;
    std::vector<std::uint64_t> array_;
};

/** regex-bench body: submit one scan request per iteration. */
class RegexBenchElement : public Element
{
  public:
    explicit RegexBenchElement(std::shared_ptr<fw::RegexDevice> regex)
        : Element("RegexBench"), regex_(std::move(regex))
    {
    }

    Verdict
    process(net::Packet &pkt, CostContext &ctx) override
    {
        ctx.addInstructions(fw::cost::accelSubmit +
                            fw::cost::accelReap);
        regex_->scan(pkt.payload(), ctx);
        return Verdict::Forward;
    }

  private:
    std::shared_ptr<fw::RegexDevice> regex_;
};

/** compression-bench body. */
class CompressionBenchElement : public Element
{
  public:
    CompressionBenchElement(
        std::shared_ptr<fw::CompressionDevice> comp,
        double request_bytes)
        : Element("CompressionBench"), comp_(std::move(comp)),
          requestBytes_(request_bytes)
    {
    }

    Verdict
    process(net::Packet &pkt, CostContext &ctx) override
    {
        ctx.addInstructions(fw::cost::accelSubmit +
                            fw::cost::accelReap);
        auto payload = pkt.payload();
        if (requestBytes_ > 0.0) {
            // Build (and reuse) an oversized request buffer by
            // repeating the payload to the configured size.
            std::size_t target =
                static_cast<std::size_t>(requestBytes_);
            if (buffer_.size() != target) {
                buffer_.clear();
                while (buffer_.size() < target && !payload.empty()) {
                    std::size_t take = std::min(
                        payload.size(), target - buffer_.size());
                    buffer_.insert(buffer_.end(), payload.begin(),
                                   payload.begin() + take);
                }
                buffer_.resize(target, 0x5a);
            }
            comp_->compress(buffer_, ctx);
        } else {
            comp_->compress(payload, ctx);
        }
        return Verdict::Forward;
    }

  private:
    std::shared_ptr<fw::CompressionDevice> comp_;
    double requestBytes_;
    std::vector<std::uint8_t> buffer_;
};

/** crypto-bench body. */
class CryptoBenchElement : public Element
{
  public:
    CryptoBenchElement(std::shared_ptr<fw::CryptoDevice> crypto,
                       double request_bytes)
        : Element("CryptoBench"), crypto_(std::move(crypto)),
          requestBytes_(request_bytes)
    {
    }

    Verdict
    process(net::Packet &pkt, CostContext &ctx) override
    {
        ctx.addInstructions(fw::cost::accelSubmit +
                            fw::cost::accelReap);
        auto payload = pkt.payload();
        if (requestBytes_ > 0.0) {
            std::size_t target =
                static_cast<std::size_t>(requestBytes_);
            if (buffer_.size() != target) {
                buffer_.assign(target, 0x42);
            }
            crypto_->encrypt(buffer_, ctx);
        } else {
            crypto_->encrypt(payload, ctx);
        }
        return Verdict::Forward;
    }

  private:
    std::shared_ptr<fw::CryptoDevice> crypto_;
    double requestBytes_;
    std::vector<std::uint8_t> buffer_;
};

} // namespace

std::unique_ptr<fw::NetworkFunction>
makeMemBench(const MemBenchConfig &cfg)
{
    // Encode the configuration in the instance name: distinct
    // contention levels must stay distinct to name-keyed caches.
    auto nf = std::make_unique<fw::NetworkFunction>(
        strf("mem-bench(%.0fK,%.0fK,%.0f,%d)",
             cfg.wssBytes / 1024.0, cfg.targetAccessRate / 1e3,
             cfg.instructionsPerAccess, static_cast<int>(cfg.mode)),
        fw::ExecutionPattern::RunToCompletion);
    nf->add(std::make_unique<MemBenchElement>(cfg));
    if (cfg.targetAccessRate > 0.0 && cfg.accessesPerIteration > 0.0)
        nf->setPacedRate(cfg.targetAccessRate /
                         cfg.accessesPerIteration);
    return nf;
}

std::unique_ptr<fw::NetworkFunction>
makeRegexBench(const fw::DeviceSet &dev, const RegexBenchConfig &cfg)
{
    auto nf = std::make_unique<fw::NetworkFunction>(
        strf("regex-bench(%.0f,%d)", cfg.requestRate, cfg.queues),
        fw::ExecutionPattern::RunToCompletion);
    nf->add(std::make_unique<ParseElement>());
    nf->add(std::make_unique<RegexBenchElement>(dev.regex));
    nf->setQueueCount(hw::AccelKind::Regex, cfg.queues);
    if (cfg.requestRate > 0.0)
        nf->setPacedRate(cfg.requestRate);
    return nf;
}

std::unique_ptr<fw::NetworkFunction>
makeCompressionBench(const fw::DeviceSet &dev,
                     const CompressionBenchConfig &cfg)
{
    auto nf = std::make_unique<fw::NetworkFunction>(
        strf("compression-bench(%.0f,%d,%.0f)", cfg.requestRate,
             cfg.queues, cfg.requestBytes),
        fw::ExecutionPattern::RunToCompletion);
    nf->add(std::make_unique<ParseElement>());
    nf->add(std::make_unique<CompressionBenchElement>(
        dev.compression, cfg.requestBytes));
    nf->setQueueCount(hw::AccelKind::Compression, cfg.queues);
    if (cfg.requestRate > 0.0)
        nf->setPacedRate(cfg.requestRate);
    return nf;
}

std::unique_ptr<fw::NetworkFunction>
makeCryptoBench(const fw::DeviceSet &dev, const CryptoBenchConfig &cfg)
{
    auto nf = std::make_unique<fw::NetworkFunction>(
        strf("crypto-bench(%.0f,%d,%.0f)", cfg.requestRate,
             cfg.queues, cfg.requestBytes),
        fw::ExecutionPattern::RunToCompletion);
    nf->add(std::make_unique<ParseElement>());
    nf->add(std::make_unique<CryptoBenchElement>(dev.crypto,
                                                 cfg.requestBytes));
    nf->setQueueCount(hw::AccelKind::Crypto, cfg.queues);
    if (cfg.requestRate > 0.0)
        nf->setPacedRate(cfg.requestRate);
    return nf;
}

} // namespace tomur::nfs
