/**
 * @file
 * IPTunnel: IP-in-IP encapsulation with fragmentation when the
 * encapsulated frame exceeds the tunnel MTU. Strongly packet-size
 * sensitive: every payload byte is copied into fragments.
 */

#include <cmath>

#include "common/strutil.hh"

#include "nfs/common_elements.hh"
#include "nfs/registry.hh"

namespace tomur::nfs {

namespace fw = framework;

namespace {

constexpr std::size_t kEncapOverhead = net::ipv4HeaderLen;

class TunnelElement : public Element
{
  public:
    explicit TunnelElement(std::size_t mtu)
        : Element("IpTunnel"), mtu_(mtu),
          fragBuffers_{"tunnel_frag_buffers", 128.0 * 1024, 0.3}
    {
    }

    Verdict
    process(net::Packet &pkt, CostContext &ctx) override
    {
        auto ip = pkt.ipv4();
        if (!ip)
            return Verdict::Drop;
        std::size_t inner = pkt.size() + kEncapOverhead;
        std::size_t fragments = (inner + mtu_ - 1) / mtu_;
        fragments = std::max<std::size_t>(1, fragments);

        // Per fragment: buffer allocation from the pool, outer
        // header construction, checksum, and descriptor writes --
        // fragmentation cost scales with the fragment count, which
        // the configured MTU controls.
        ctx.addInstructions(
            (fw::cost::parseHeaders + fw::cost::checksum + 290) *
            static_cast<double>(fragments));
        ctx.addMemAccess(fragBuffers_,
                         4.0 * static_cast<double>(fragments),
                         6.0 * static_cast<double>(fragments));
        // Copy the full packet into fragment buffers: streaming
        // writes (and reads of the source) one per cache line.
        double lines = static_cast<double>(pkt.size()) / 64.0;
        ctx.addInstructions(fw::cost::perByteTouch *
                            static_cast<double>(pkt.size()));
        ctx.addMemAccess(fragBuffers_, lines, lines);

        // Functionally mark the packet as the first tunnel fragment.
        std::uint8_t *ipp = pkt.bytes().data() + net::ethHeaderLen;
        std::uint16_t flags_frag =
            fragments > 1 ? 0x2000 : 0x0000; // MF flag
        net::storeBe16(ipp + 6, flags_frag);
        net::storeBe16(ipp + 10, 0);
        net::storeBe16(ipp + 10,
                       net::internetChecksum(ipp,
                                             net::ipv4HeaderLen));
        fragmentsEmitted_ += fragments;
        return Verdict::Forward;
    }

    void reset() override { fragmentsEmitted_ = 0; }
    std::uint64_t fragmentsEmitted() const { return fragmentsEmitted_; }

    std::vector<MemRegion>
    regions() const override
    {
        return {fragBuffers_};
    }

  private:
    std::size_t mtu_;
    MemRegion fragBuffers_;
    std::uint64_t fragmentsEmitted_ = 0;
};

} // namespace

std::unique_ptr<NetworkFunction>
makeIpTunnel()
{
    return makeIpTunnel(1280);
}

std::unique_ptr<NetworkFunction>
makeIpTunnel(std::size_t mtu)
{
    // The MTU is a *configuration attribute*: same code, different
    // deployment configuration, different performance profile. The
    // instance name carries it so caches treat configurations as
    // distinct deployments.
    auto nf = std::make_unique<NetworkFunction>(
        mtu == 1280 ? std::string("IPTunnel")
                    : strf("IPTunnel(mtu=%zu)", mtu),
        fw::ExecutionPattern::RunToCompletion);
    nf->add(std::make_unique<ParseElement>());
    nf->add(std::make_unique<TunnelElement>(mtu));
    return nf;
}

} // namespace tomur::nfs
