/**
 * @file
 * NIDS: inline intrusion prevention — each packet's payload is
 * inspected by the regex accelerator and the packet is dropped when
 * an alert rule fires. Run-to-completion: the forwarding decision
 * must wait for the scan verdict.
 */

#include "nfs/common_elements.hh"
#include "nfs/registry.hh"

namespace tomur::nfs {

namespace fw = framework;

namespace {

/** Rules whose match means "block" (rule ids in the default set). */
constexpr std::uint64_t kAlertMask = 0x0f0f0f0f0f0f0f0fULL;

class NidsElement : public Element
{
  public:
    explicit NidsElement(std::shared_ptr<fw::RegexDevice> regex)
        : Element("Nids"), regex_(std::move(regex))
    {
    }

    Verdict
    process(net::Packet &pkt, CostContext &ctx) override
    {
        ctx.addInstructions(fw::cost::accelSubmit +
                            fw::cost::accelReap);
        auto scan = regex_->scan(pkt.payload(), ctx);
        ctx.addInstructions(40); // verdict evaluation
        if (scan.matchedRules & kAlertMask) {
            ++blocked_;
            return Verdict::Drop;
        }
        return Verdict::Forward;
    }

    void reset() override { blocked_ = 0; }
    std::uint64_t blocked() const { return blocked_; }

  private:
    std::shared_ptr<fw::RegexDevice> regex_;
    std::uint64_t blocked_ = 0;
};

} // namespace

std::unique_ptr<NetworkFunction>
makeNids(const DeviceSet &dev)
{
    auto nf = std::make_unique<NetworkFunction>(
        "NIDS", fw::ExecutionPattern::RunToCompletion);
    nf->add(std::make_unique<ParseElement>());
    nf->add(std::make_unique<NidsElement>(dev.regex));
    return nf;
}

} // namespace tomur::nfs
