/**
 * @file
 * ACL: access-control list in the style of DPDK librte_acl — a small
 * static rule set evaluated per packet. Compute-dominated, tiny
 * working set, insensitive to traffic attributes (the paper's
 * easiest prediction target).
 */

#include "nfs/common_elements.hh"
#include "nfs/registry.hh"

#include "common/rng.hh"

namespace tomur::nfs {

namespace fw = framework;

namespace {

/** One 5-tuple ACL rule with prefix masks and a port range. */
struct AclRule
{
    std::uint32_t srcNet = 0, srcMask = 0;
    std::uint32_t dstNet = 0, dstMask = 0;
    std::uint16_t portLo = 0, portHi = 0xffff;
    bool permit = true;
};

class AclElement : public Element
{
  public:
    explicit AclElement(std::size_t n_rules = 64)
        : Element("AclClassify"),
          region_{"acl_rules", 0.0, 1.0}
    {
        Rng rng(11);
        rules_.reserve(n_rules);
        for (std::size_t i = 0; i < n_rules; ++i) {
            AclRule r;
            r.srcNet = 0x0a000000u |
                       static_cast<std::uint32_t>(rng.uniformInt(
                           std::uint64_t(1) << 20));
            r.srcMask = 0xfff00000u;
            r.dstNet = 0xc0a80000u;
            r.dstMask = 0xffff0000u;
            r.portLo = static_cast<std::uint16_t>(
                rng.uniformInt(std::int64_t(1024), 30000));
            r.portHi = static_cast<std::uint16_t>(
                r.portLo + rng.uniformInt(std::int64_t(0), 8000));
            // Deny a slice of traffic so drops are exercised.
            r.permit = !rng.chance(0.1);
            rules_.push_back(r);
        }
        region_.bytes =
            static_cast<double>(rules_.size() * sizeof(AclRule));
    }

    Verdict
    process(net::Packet &pkt, CostContext &ctx) override
    {
        auto tuple = pkt.fiveTuple();
        if (!tuple)
            return Verdict::Drop;
        // Trie-compressed evaluation in librte_acl touches only a few
        // lines; the rule walk itself is register/L1 work.
        ctx.addInstructions(6.0 * static_cast<double>(rules_.size()));
        ctx.addMemAccess(region_, 2.0, 0.0);
        for (const auto &r : rules_) {
            bool hit =
                (tuple->srcIp.value & r.srcMask) == r.srcNet &&
                (tuple->dstIp.value & r.dstMask) == r.dstNet &&
                tuple->dstPort >= r.portLo &&
                tuple->dstPort <= r.portHi;
            if (hit)
                return r.permit ? Verdict::Forward : Verdict::Drop;
        }
        return Verdict::Forward; // default permit
    }

    std::vector<MemRegion>
    regions() const override
    {
        return {region_};
    }

  private:
    std::vector<AclRule> rules_;
    MemRegion region_;
};

} // namespace

std::unique_ptr<NetworkFunction>
makeAcl()
{
    auto nf = std::make_unique<NetworkFunction>(
        "ACL", fw::ExecutionPattern::RunToCompletion);
    nf->add(std::make_unique<ParseElement>());
    nf->add(std::make_unique<AclElement>());
    return nf;
}

} // namespace tomur::nfs
