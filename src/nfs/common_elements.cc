#include "nfs/common_elements.hh"

namespace tomur::nfs {

namespace fw = framework;

MemRegion
packetPoolRegion()
{
    // DMA packet buffer pool; kept warm by DDIO-like behaviour, so it
    // competes for LLC like any other resident region.
    return MemRegion{"pkt_pool", 256.0 * 1024, 1.0};
}

ParseElement::ParseElement()
    : Element("Parse"), pktPool_(packetPoolRegion())
{
}

Verdict
ParseElement::process(net::Packet &pkt, CostContext &ctx)
{
    ctx.addInstructions(fw::cost::parseHeaders);
    // Header lines: eth+ip+l4 span ~1 cache line, plus descriptor.
    ctx.addMemAccess(pktPool_, 2.0, 0.0);
    auto eth = pkt.eth();
    if (!eth || eth->etherType != net::etherTypeIpv4) {
        ++dropped_;
        return Verdict::Drop;
    }
    auto tuple = pkt.fiveTuple();
    if (!tuple) {
        ++dropped_;
        return Verdict::Drop;
    }
    return Verdict::Forward;
}

std::vector<MemRegion>
ParseElement::regions() const
{
    return {pktPool_};
}

TtlElement::TtlElement()
    : Element("TtlDec"), pktPool_(packetPoolRegion())
{
}

Verdict
TtlElement::process(net::Packet &pkt, CostContext &ctx)
{
    ctx.addInstructions(fw::cost::checksum);
    ctx.addMemAccess(pktPool_, 1.0, 1.0);
    if (!pkt.decrementTtl())
        return Verdict::Drop;
    return Verdict::Forward;
}

MacRewriteElement::MacRewriteElement()
    : Element("MacRewrite"), pktPool_(packetPoolRegion())
{
}

Verdict
MacRewriteElement::process(net::Packet &pkt, CostContext &ctx)
{
    ctx.addInstructions(30);
    ctx.addMemAccess(pktPool_, 0.0, 1.0);
    auto eth = pkt.eth();
    if (!eth)
        return Verdict::Drop;
    net::EthHeader h = *eth;
    h.dst = net::MacAddr::fromId(h.dst.bytes[5] + 1u);
    net::writeEth(pkt.bytes().data(), h);
    return Verdict::Forward;
}

PayloadTouchElement::PayloadTouchElement(double passes)
    : Element("PayloadTouch"), passes_(passes),
      payloadRegion_{"payload_stream", 64.0 * 1024, 0.0}
{
}

Verdict
PayloadTouchElement::process(net::Packet &pkt, CostContext &ctx)
{
    auto payload = pkt.payload();
    double bytes = static_cast<double>(payload.size()) * passes_;
    // Genuine walk: fold payload into a checksum so the work is real.
    std::uint32_t acc = 0;
    for (std::uint8_t b : payload)
        acc = acc * 31 + b;
    (void)acc;
    ctx.addInstructions(fw::cost::perByteTouch * bytes);
    // Streaming reads, one per cache line.
    ctx.addMemAccess(payloadRegion_, bytes / 64.0, 0.0);
    return Verdict::Forward;
}

} // namespace tomur::nfs
