/**
 * @file
 * FlowClassifier: DPDK ip_pipeline-style flow classification — hash
 * the 5-tuple into a class id, keep per-flow hit counters. Traffic-
 * sensitive through its classification table.
 */

#include "framework/flow_table.hh"
#include "nfs/common_elements.hh"
#include "nfs/registry.hh"

namespace tomur::nfs {

namespace fw = framework;

namespace {

/** Per-flow classification record. */
struct ClassEntry
{
    std::uint32_t classId = 0;
    std::uint64_t hits = 0;
};

constexpr std::uint32_t kClasses = 16;

class FlowClassifierElement : public Element
{
  public:
    FlowClassifierElement()
        : Element("FlowClassifier"), table_("classifier_table")
    {
    }

    Verdict
    process(net::Packet &pkt, CostContext &ctx) override
    {
        auto tuple = pkt.fiveTuple();
        if (!tuple)
            return Verdict::Drop;
        bool inserted = false;
        ClassEntry &e = table_.findOrInsert(*tuple, ctx, &inserted);
        if (inserted) {
            e.classId =
                static_cast<std::uint32_t>(tuple->hash() % kClasses);
        }
        ++e.hits;
        ++classHits_[e.classId];
        ctx.addInstructions(110); // key construction + action table
        ctx.addMemAccess(classTableRegion_, 1.0, 1.0);
        return Verdict::Forward;
    }

    void
    reset() override
    {
        table_.clear();
        for (auto &h : classHits_)
            h = 0;
    }

    std::vector<MemRegion>
    regions() const override
    {
        return {table_.region(), classTableRegion_};
    }

    std::uint64_t classHits(std::uint32_t cls) const
    {
        return cls < kClasses ? classHits_[cls] : 0;
    }

  private:
    framework::FlowTable<ClassEntry> table_;
    MemRegion classTableRegion_{"class_actions", 8.0 * 1024, 1.0};
    std::uint64_t classHits_[kClasses] = {};
};

} // namespace

std::unique_ptr<NetworkFunction>
makeFlowClassifier()
{
    auto nf = std::make_unique<NetworkFunction>(
        "FlowClassifier", fw::ExecutionPattern::RunToCompletion);
    nf->add(std::make_unique<ParseElement>());
    nf->add(std::make_unique<FlowClassifierElement>());
    return nf;
}

} // namespace tomur::nfs
