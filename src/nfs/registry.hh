/**
 * @file
 * Catalog of the paper's network functions (Table 1) plus the
 * synthetic benchmark NFs (§6). Each NF is produced by a factory so
 * experiments can instantiate fresh, stateless copies.
 */

#ifndef TOMUR_NFS_REGISTRY_HH
#define TOMUR_NFS_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "framework/accel_dev.hh"
#include "framework/nf.hh"

namespace tomur::nfs {

using framework::DeviceSet;
using framework::NetworkFunction;

/** Flow statistics with aging (Click). */
std::unique_ptr<NetworkFunction> makeFlowStats();

/** L3 packet routing (Click). */
std::unique_ptr<NetworkFunction> makeIpRouter();

/** L3 fragmentation tunnel (Click), default 1280-byte MTU. */
std::unique_ptr<NetworkFunction> makeIpTunnel();

/** L3 fragmentation tunnel with a configured MTU (§8 extension:
 *  the MTU is a configuration attribute). */
std::unique_ptr<NetworkFunction> makeIpTunnel(std::size_t mtu);

/** IPv4 NAT based on MazuNAT (Click). */
std::unique_ptr<NetworkFunction> makeNat();

/** Per-flow status + hardware payload scanning monitor (Click). */
std::unique_ptr<NetworkFunction> makeFlowMonitor(const DeviceSet &dev);

/** Intrusion prevention by hardware packet inspection (Click). */
std::unique_ptr<NetworkFunction> makeNids(const DeviceSet &dev);

/** Payload scanning + compression gateway (Click). */
std::unique_ptr<NetworkFunction>
makeIpCompGateway(const DeviceSet &dev);

/** Access control list based on DPDK ACL. */
std::unique_ptr<NetworkFunction> makeAcl();

/** Flow tracking via hash table (DPDK). */
std::unique_ptr<NetworkFunction> makeFlowClassifier();

/** Hardware-assisted flow tracking pipeline (DOCA). */
std::unique_ptr<NetworkFunction> makeFlowTracker();

/** Hardware pattern matching packet filter (DOCA). */
std::unique_ptr<NetworkFunction> makePacketFilter(const DeviceSet &dev);

/** Flow-walk firewall used on the Pensando SmartNIC (§8). */
std::unique_ptr<NetworkFunction> makeFirewall(const DeviceSet &dev);

/** ESP tunnel gateway on the crypto accelerator (extension NF). */
std::unique_ptr<NetworkFunction>
makeIpsecGateway(const DeviceSet &dev);

/** Catalog entry describing one NF. */
struct NfInfo
{
    std::string name;
    bool usesRegex = false;
    bool usesCompression = false;
    bool usesCrypto = false;
    /** Paper Table 1 column "T": performance depends on traffic. */
    bool trafficSensitive = false;
    const char *framework = "Click";
};

/** All Table 1 NFs. */
const std::vector<NfInfo> &catalog();

/** Instantiate an NF by catalog name (fatal on unknown name). */
std::unique_ptr<NetworkFunction> makeByName(const std::string &name,
                                            const DeviceSet &dev);

/** The 9 NFs of the paper's overall-accuracy evaluation (Table 2). */
std::vector<std::string> evaluationNfNames();

} // namespace tomur::nfs

#endif // TOMUR_NFS_REGISTRY_HH
