#include "nfs/lpm.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace tomur::nfs {

LpmTable::LpmTable()
{
    nodes_.push_back(Node{}); // root
}

void
LpmTable::insert(net::Ipv4Addr prefix, int prefix_len,
                 std::uint32_t next_hop)
{
    if (prefix_len < 0 || prefix_len > 32)
        panic("LpmTable::insert: bad prefix length");
    std::int32_t cur = 0;
    for (int bit = 0; bit < prefix_len; ++bit) {
        int dir = (prefix.value >> (31 - bit)) & 1;
        if (nodes_[cur].child[dir] < 0) {
            nodes_[cur].child[dir] =
                static_cast<std::int32_t>(nodes_.size());
            nodes_.push_back(Node{});
        }
        cur = nodes_[cur].child[dir];
    }
    nodes_[cur].nextHop = static_cast<std::int32_t>(next_hop);
}

std::optional<std::uint32_t>
LpmTable::lookup(net::Ipv4Addr addr, std::size_t &steps) const
{
    std::int32_t cur = 0;
    std::int32_t best = nodes_[0].nextHop;
    steps = 1;
    for (int bit = 0; bit < 32; ++bit) {
        int dir = (addr.value >> (31 - bit)) & 1;
        cur = nodes_[cur].child[dir];
        if (cur < 0)
            break;
        ++steps;
        if (nodes_[cur].nextHop >= 0)
            best = nodes_[cur].nextHop;
    }
    if (best < 0)
        return std::nullopt;
    return static_cast<std::uint32_t>(best);
}

double
LpmTable::bytes() const
{
    return static_cast<double>(nodes_.size() * sizeof(Node));
}

framework::MemRegion
LpmTable::region() const
{
    return framework::MemRegion{"lpm_trie", bytes(), 1.0};
}

LpmTable
LpmTable::synthetic(std::size_t routes, std::uint64_t seed)
{
    LpmTable t;
    Rng rng(seed);
    t.insert(net::Ipv4Addr{0}, 0, 0); // default route
    for (std::size_t i = 0; i < routes; ++i) {
        int len = static_cast<int>(rng.uniformInt(8, 28));
        std::uint32_t addr = static_cast<std::uint32_t>(rng());
        addr &= ~((len == 32) ? 0u : (0xffffffffu >> len));
        t.insert(net::Ipv4Addr{addr}, len,
                 static_cast<std::uint32_t>(1 + rng.uniformInt(64u)));
    }
    return t;
}

} // namespace tomur::nfs
