#include "nfs/flowstats.hh"

#include "nfs/registry.hh"

namespace tomur::nfs {

namespace fw = framework;

FlowStatsElement::FlowStatsElement(std::uint64_t aging_period)
    : Element("FlowStats"), table_("flowstats_table"),
      agingPeriod_(aging_period)
{
}

Verdict
FlowStatsElement::process(net::Packet &pkt, CostContext &ctx)
{
    auto tuple = pkt.fiveTuple();
    if (!tuple)
        return Verdict::Drop;
    ++tick_;
    FlowStatsEntry &e = table_.findOrInsert(*tuple, ctx);
    if (e.packets == 0)
        e.firstSeen = tick_;
    ++e.packets;
    e.bytes += pkt.size();
    e.lastSeen = tick_;
    ctx.addInstructions(90);

    // Amortised aging sweep: touch a small stripe of the table.
    if (tick_ % agingPeriod_ == 0) {
        ctx.addInstructions(120);
        ctx.addMemAccess(table_.region(), 4.0, 0.0);
    }
    return Verdict::Forward;
}

void
FlowStatsElement::reset()
{
    table_.clear();
    tick_ = 0;
}

std::vector<MemRegion>
FlowStatsElement::regions() const
{
    return {table_.region()};
}

const FlowStatsEntry *
FlowStatsElement::peek(const net::FiveTuple &flow)
{
    CostContext scratch;
    return table_.find(flow, scratch);
}

std::unique_ptr<NetworkFunction>
makeFlowStats()
{
    auto nf = std::make_unique<NetworkFunction>(
        "FlowStats", fw::ExecutionPattern::RunToCompletion);
    nf->add(std::make_unique<ParseElement>());
    nf->add(std::make_unique<FlowStatsElement>());
    return nf;
}

} // namespace tomur::nfs
