/**
 * @file
 * Elements shared by several NFs: header parsing/validation, TTL
 * handling, MAC rewriting, CPU payload touching.
 */

#ifndef TOMUR_NFS_COMMON_ELEMENTS_HH
#define TOMUR_NFS_COMMON_ELEMENTS_HH

#include "framework/element.hh"

namespace tomur::nfs {

using framework::CostContext;
using framework::Element;
using framework::MemRegion;
using framework::Verdict;

/**
 * Parse and validate Ethernet/IPv4/L4 headers; drops anything that is
 * not well-formed IPv4 UDP/TCP. First element of every NF.
 */
class ParseElement : public Element
{
  public:
    ParseElement();
    Verdict process(net::Packet &pkt, CostContext &ctx) override;

    std::vector<MemRegion> regions() const override;

    /** Count of malformed packets dropped (diagnostics). */
    std::uint64_t dropped() const { return dropped_; }
    void reset() override { dropped_ = 0; }

  private:
    MemRegion pktPool_;
    std::uint64_t dropped_ = 0;
};

/** Decrement IPv4 TTL, drop on expiry, refresh checksum. */
class TtlElement : public Element
{
  public:
    TtlElement();
    Verdict process(net::Packet &pkt, CostContext &ctx) override;

  private:
    MemRegion pktPool_;
};

/** Rewrite destination MAC for the chosen next hop. */
class MacRewriteElement : public Element
{
  public:
    MacRewriteElement();
    Verdict process(net::Packet &pkt, CostContext &ctx) override;

  private:
    MemRegion pktPool_;
};

/**
 * CPU-side payload pass (copy/checksum-like work): cost scales with
 * payload size, streaming memory behaviour.
 */
class PayloadTouchElement : public Element
{
  public:
    /** @param passes how many times the payload is walked */
    explicit PayloadTouchElement(double passes = 1.0);
    Verdict process(net::Packet &pkt, CostContext &ctx) override;

  private:
    double passes_;
    MemRegion payloadRegion_;
};

/** Shared packet-buffer-pool region descriptor. */
MemRegion packetPoolRegion();

} // namespace tomur::nfs

#endif // TOMUR_NFS_COMMON_ELEMENTS_HH
