/**
 * @file
 * Multi-pattern matcher: the functional model of a hardware regex
 * engine. Compiles a ruleset once, then scans payloads counting match
 * events exactly as rxpbench-style tooling reports them.
 */

#ifndef TOMUR_REGEX_MATCHER_HH
#define TOMUR_REGEX_MATCHER_HH

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "regex/dfa.hh"
#include "regex/nfa.hh"
#include "regex/parser.hh"

namespace tomur::regex {

/** One named rule of a ruleset. */
struct Rule
{
    std::string name;
    std::string pattern;
    bool caseInsensitive = false;
};

/** A named collection of rules (e.g. the L7-filter protocol set). */
struct RuleSet
{
    std::string name;
    std::vector<Rule> rules;
};

/**
 * Compiled multi-pattern matcher.
 *
 * Each rule compiles to its own NFA and (budget permitting) DFA; a
 * scan runs every rule's automaton over the payload. Per-rule DFAs
 * stay small even when a combined automaton would blow up, which is
 * also how multi-engine hardware matchers partition rule groups.
 * Counts are one event per (rule, end-offset).
 */
class MultiMatcher
{
  public:
    /** Compile a ruleset (fatal() on any parse error). */
    explicit MultiMatcher(const RuleSet &rules,
                          std::size_t dfa_state_budget = 4096);

    /** Number of rules compiled. */
    int numRules() const { return static_cast<int>(engines_.size()); }

    /** True when every rule uses the DFA fast path. */
    bool usesDfa() const;

    /** Count match events over a payload. */
    std::uint64_t countMatches(std::span<const std::uint8_t> data) const;

    /** Bitmask of rules that matched at least once. */
    std::uint64_t matchedRules(std::span<const std::uint8_t> data) const;

    /** Convenience: does any rule match? */
    bool anyMatch(std::span<const std::uint8_t> data) const;

    /** Access the parsed patterns (e.g. for payload generation). */
    const std::vector<Pattern> &patterns() const { return patterns_; }

    /** Rule names, index-aligned with pattern/rule ids. */
    const std::vector<std::string> &ruleNames() const { return names_; }

  private:
    static std::vector<Pattern> parseAll(const RuleSet &rules);

    /** One rule's compiled automata. */
    struct Engine
    {
        std::unique_ptr<Nfa> nfa;
        std::unique_ptr<Dfa> dfa; ///< null if over budget
    };

    std::vector<Pattern> patterns_;
    std::vector<std::string> names_;
    std::vector<Engine> engines_;
};

} // namespace tomur::regex

#endif // TOMUR_REGEX_MATCHER_HH
