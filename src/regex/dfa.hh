/**
 * @file
 * Subset-construction DFA with byte equivalence classes.
 *
 * The DFA is the fast path for payload scanning. Construction is
 * bounded by a state budget; when a ruleset blows past the budget the
 * caller falls back to NFA simulation (see matcher.hh).
 */

#ifndef TOMUR_REGEX_DFA_HH
#define TOMUR_REGEX_DFA_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "regex/nfa.hh"

namespace tomur::regex {

/**
 * Deterministic automaton over byte equivalence classes.
 */
class Dfa
{
  public:
    /**
     * Attempt subset construction.
     * @param nfa source automaton
     * @param max_states state budget
     * @return the DFA, or nullptr when the budget is exceeded
     */
    static std::unique_ptr<Dfa> build(const Nfa &nfa,
                                      std::size_t max_states = 8192);

    /** Number of DFA states. */
    std::size_t numStates() const { return accept_.size(); }

    /** Number of byte equivalence classes. */
    int numClasses() const { return numClasses_; }

    /**
     * Count match events: one per (rule, end-position) pair, plus
     * end-anchored accepts at the final byte.
     */
    std::uint64_t countMatches(const std::uint8_t *data,
                               std::size_t len) const;

    /** Bitmask of rules matching at least once. */
    std::uint64_t matchedRules(const std::uint8_t *data,
                               std::size_t len) const;

  private:
    Dfa() = default;

    /** byte -> equivalence class */
    std::array<std::uint16_t, 256> byteClass_{};
    int numClasses_ = 0;
    /** state*numClasses + class -> next state */
    std::vector<std::uint32_t> trans_;
    /** per-state rule accept mask (unanchored-end rules) */
    std::vector<std::uint64_t> accept_;
    /** per-state rule accept mask for '$'-anchored rules */
    std::vector<std::uint64_t> acceptAtEnd_;
    /** per-state popcount(accept_) cached for the counting loop */
    std::vector<std::uint8_t> acceptCount_;
    std::uint32_t start_ = 0;
};

} // namespace tomur::regex

#endif // TOMUR_REGEX_DFA_HH
