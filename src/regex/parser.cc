#include "regex/parser.hh"

#include <cctype>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace tomur::regex {

namespace {

/**
 * Hand-written recursive-descent parser. Grammar:
 *
 *   pattern   := '^'? alt '$'?          (anchors only at boundaries)
 *   alt       := concat ('|' concat)*
 *   concat    := repeat*
 *   repeat    := atom ('*' | '+' | '?' | '{m}' | '{m,}' | '{m,n}')*
 *   atom      := '(' alt ')' | '[' class ']' | '.' | escape | literal
 */
class Parser
{
  public:
    Parser(const std::string &src, ParseOptions opts)
        : src_(src), opts_(opts)
    {}

    ParseResult
    run()
    {
        ParseResult res;
        res.pattern.source = src_;
        if (peek() == '^') {
            res.pattern.anchorStart = true;
            ++pos_;
        }
        auto node = parseAlt();
        if (!node) {
            res.error = error_;
            return res;
        }
        if (pos_ < src_.size() && src_[pos_] == '$' &&
            pos_ + 1 == src_.size()) {
            res.pattern.anchorEnd = true;
            ++pos_;
        }
        if (pos_ != src_.size()) {
            res.error = strf("unexpected '%c' at offset %zu",
                             src_[pos_], pos_);
            return res;
        }
        res.pattern.root = std::move(node);
        res.ok = true;
        return res;
    }

  private:
    int
    peek() const
    {
        return pos_ < src_.size()
            ? static_cast<unsigned char>(src_[pos_]) : -1;
    }

    bool
    fail(const std::string &msg)
    {
        if (error_.empty())
            error_ = strf("%s at offset %zu", msg.c_str(), pos_);
        return false;
    }

    std::unique_ptr<Node>
    parseAlt()
    {
        auto first = parseConcat();
        if (!first)
            return nullptr;
        if (peek() != '|')
            return first;
        auto alt = std::make_unique<Node>();
        alt->kind = NodeKind::Alternate;
        alt->children.push_back(std::move(first));
        while (peek() == '|') {
            ++pos_;
            auto next = parseConcat();
            if (!next)
                return nullptr;
            alt->children.push_back(std::move(next));
        }
        return alt;
    }

    std::unique_ptr<Node>
    parseConcat()
    {
        auto cat = std::make_unique<Node>();
        cat->kind = NodeKind::Concat;
        for (;;) {
            int c = peek();
            if (c < 0 || c == '|' || c == ')')
                break;
            // '$' is only an anchor if it ends the whole pattern.
            if (c == '$' && pos_ + 1 == src_.size())
                break;
            auto r = parseRepeat();
            if (!r)
                return nullptr;
            cat->children.push_back(std::move(r));
        }
        if (cat->children.empty()) {
            auto empty = std::make_unique<Node>();
            empty->kind = NodeKind::Empty;
            return empty;
        }
        if (cat->children.size() == 1)
            return std::move(cat->children[0]);
        return cat;
    }

    std::unique_ptr<Node>
    parseRepeat()
    {
        auto atom = parseAtom();
        if (!atom)
            return nullptr;
        for (;;) {
            int c = peek();
            int min = 0, max = -1;
            if (c == '*') {
                ++pos_;
            } else if (c == '+') {
                ++pos_;
                min = 1;
            } else if (c == '?') {
                ++pos_;
                min = 0;
                max = 1;
            } else if (c == '{') {
                std::size_t save = pos_;
                if (!parseBounds(min, max)) {
                    pos_ = save;
                    break;
                }
            } else {
                break;
            }
            auto rep = std::make_unique<Node>();
            rep->kind = NodeKind::Repeat;
            rep->repeatMin = min;
            rep->repeatMax = max;
            rep->children.push_back(std::move(atom));
            atom = std::move(rep);
        }
        return atom;
    }

    bool
    parseBounds(int &min, int &max)
    {
        // Called at '{'. Returns false (no error) when the braces do not
        // form a valid bound; the caller treats '{' as a literal then.
        std::size_t p = pos_ + 1;
        int m = 0;
        bool have_digit = false;
        while (p < src_.size() && std::isdigit((unsigned char)src_[p])) {
            m = m * 10 + (src_[p] - '0');
            have_digit = true;
            ++p;
        }
        if (!have_digit)
            return false;
        min = m;
        if (p < src_.size() && src_[p] == '}') {
            max = m;
            pos_ = p + 1;
            return true;
        }
        if (p >= src_.size() || src_[p] != ',')
            return false;
        ++p;
        if (p < src_.size() && src_[p] == '}') {
            max = -1;
            pos_ = p + 1;
            return true;
        }
        int n = 0;
        have_digit = false;
        while (p < src_.size() && std::isdigit((unsigned char)src_[p])) {
            n = n * 10 + (src_[p] - '0');
            have_digit = true;
            ++p;
        }
        if (!have_digit || p >= src_.size() || src_[p] != '}' || n < m)
            return false;
        max = n;
        pos_ = p + 1;
        return true;
    }

    std::unique_ptr<Node>
    parseAtom()
    {
        int c = peek();
        if (c < 0) {
            fail("unexpected end of pattern");
            return nullptr;
        }
        if (c == '(') {
            ++pos_;
            // Non-capturing group syntax is accepted and ignored.
            if (pos_ + 1 < src_.size() && src_[pos_] == '?' &&
                src_[pos_ + 1] == ':') {
                pos_ += 2;
            }
            auto inner = parseAlt();
            if (!inner)
                return nullptr;
            if (peek() != ')') {
                fail("missing ')'");
                return nullptr;
            }
            ++pos_;
            return inner;
        }
        if (c == '[')
            return parseClass();
        if (c == '.') {
            ++pos_;
            return makeClass(anySet());
        }
        if (c == '\\')
            return parseEscape();
        if (c == '*' || c == '+' || c == '?') {
            fail("repeat with nothing to repeat");
            return nullptr;
        }
        ++pos_;
        return literal(static_cast<std::uint8_t>(c));
    }

    std::unique_ptr<Node>
    literal(std::uint8_t b)
    {
        if (opts_.caseInsensitive && std::isalpha(b)) {
            ByteSet s;
            s.set(std::tolower(b));
            s.set(std::toupper(b));
            return makeClass(s);
        }
        return makeByte(b);
    }

    bool
    escapeSet(int c, ByteSet &out)
    {
        switch (c) {
          case 'd': out = digitSet(); return true;
          case 'D': out = ~digitSet(); return true;
          case 'w': out = wordSet(); return true;
          case 'W': out = ~wordSet(); return true;
          case 's': out = spaceSet(); return true;
          case 'S': out = ~spaceSet(); return true;
          default: return false;
        }
    }

    int
    escapeChar(int c)
    {
        switch (c) {
          case 'n': return '\n';
          case 'r': return '\r';
          case 't': return '\t';
          case 'f': return '\f';
          case 'v': return '\v';
          case '0': return '\0';
          default: return c;
        }
    }

    std::unique_ptr<Node>
    parseEscape()
    {
        ++pos_; // consume backslash
        int c = peek();
        if (c < 0) {
            fail("dangling backslash");
            return nullptr;
        }
        ++pos_;
        ByteSet set;
        if (escapeSet(c, set))
            return makeClass(set);
        if (c == 'x') {
            int hi = hexDigit();
            int lo = hexDigit();
            if (hi < 0 || lo < 0) {
                fail("bad \\x escape");
                return nullptr;
            }
            return makeByte(static_cast<std::uint8_t>(hi * 16 + lo));
        }
        return literal(static_cast<std::uint8_t>(escapeChar(c)));
    }

    int
    hexDigit()
    {
        int c = peek();
        if (c < 0)
            return -1;
        ++pos_;
        if (c >= '0' && c <= '9')
            return c - '0';
        if (c >= 'a' && c <= 'f')
            return c - 'a' + 10;
        if (c >= 'A' && c <= 'F')
            return c - 'A' + 10;
        return -1;
    }

    std::unique_ptr<Node>
    parseClass()
    {
        ++pos_; // consume '['
        bool negate = false;
        if (peek() == '^') {
            negate = true;
            ++pos_;
        }
        ByteSet set;
        bool first = true;
        for (;;) {
            int c = peek();
            if (c < 0) {
                fail("missing ']'");
                return nullptr;
            }
            if (c == ']' && !first) {
                ++pos_;
                break;
            }
            first = false;
            int lo;
            if (c == '\\') {
                ++pos_;
                int e = peek();
                if (e < 0) {
                    fail("dangling backslash in class");
                    return nullptr;
                }
                ++pos_;
                ByteSet esc;
                if (escapeSet(e, esc)) {
                    set |= esc;
                    continue;
                }
                if (e == 'x') {
                    int hi = hexDigit();
                    int lo2 = hexDigit();
                    if (hi < 0 || lo2 < 0) {
                        fail("bad \\x escape in class");
                        return nullptr;
                    }
                    lo = hi * 16 + lo2;
                } else {
                    lo = escapeChar(e);
                }
            } else {
                ++pos_;
                lo = c;
            }
            int hi = lo;
            if (peek() == '-' && pos_ + 1 < src_.size() &&
                src_[pos_ + 1] != ']') {
                ++pos_; // consume '-'
                int c2 = peek();
                if (c2 == '\\') {
                    ++pos_;
                    int e = peek();
                    ++pos_;
                    if (e == 'x') {
                        int h = hexDigit();
                        int l = hexDigit();
                        if (h < 0 || l < 0) {
                            fail("bad \\x escape in class range");
                            return nullptr;
                        }
                        hi = h * 16 + l;
                    } else {
                        hi = escapeChar(e);
                    }
                } else {
                    ++pos_;
                    hi = c2;
                }
                if (hi < lo) {
                    fail("reversed class range");
                    return nullptr;
                }
            }
            for (int b = lo; b <= hi; ++b) {
                set.set(b);
                if (opts_.caseInsensitive && std::isalpha(b)) {
                    set.set(std::tolower(b));
                    set.set(std::toupper(b));
                }
            }
        }
        if (negate)
            set = ~set;
        if (set.none()) {
            fail("empty character class");
            return nullptr;
        }
        return makeClass(set);
    }

    const std::string &src_;
    ParseOptions opts_;
    std::size_t pos_ = 0;
    std::string error_;
};

} // namespace

ParseResult
parse(const std::string &src, ParseOptions opts)
{
    return Parser(src, opts).run();
}

Pattern
parseOrDie(const std::string &src, ParseOptions opts)
{
    auto res = parse(src, opts);
    if (!res.ok)
        fatal(strf("regex parse error in '%s': %s", src.c_str(),
                   res.error.c_str()));
    return std::move(res.pattern);
}

} // namespace tomur::regex
