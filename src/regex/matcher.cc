#include "regex/matcher.hh"

#include "common/logging.hh"
#include "common/strutil.hh"

namespace tomur::regex {

std::vector<Pattern>
MultiMatcher::parseAll(const RuleSet &rules)
{
    std::vector<Pattern> out;
    out.reserve(rules.rules.size());
    for (const Rule &r : rules.rules) {
        ParseOptions opts;
        opts.caseInsensitive = r.caseInsensitive;
        auto res = parse(r.pattern, opts);
        if (!res.ok) {
            fatal(strf("ruleset '%s', rule '%s': %s",
                       rules.name.c_str(), r.name.c_str(),
                       res.error.c_str()));
        }
        out.push_back(std::move(res.pattern));
    }
    return out;
}

MultiMatcher::MultiMatcher(const RuleSet &rules,
                           std::size_t dfa_state_budget)
    : patterns_(parseAll(rules))
{
    if (patterns_.empty())
        fatal(strf("ruleset '%s' is empty", rules.name.c_str()));
    names_.reserve(rules.rules.size());
    for (const Rule &r : rules.rules)
        names_.push_back(r.name);

    engines_.reserve(patterns_.size());
    for (std::size_t i = 0; i < patterns_.size(); ++i) {
        Engine e;
        // Single-pattern NFA: the automaton still tags accepts with
        // rule id 0; the engine index supplies the real rule id.
        std::vector<Pattern> one;
        one.push_back(Pattern{patterns_[i].root->clone(),
                              patterns_[i].anchorStart,
                              patterns_[i].anchorEnd,
                              patterns_[i].source});
        e.nfa = std::make_unique<Nfa>(one);
        e.dfa = Dfa::build(*e.nfa, dfa_state_budget);
        if (!e.dfa) {
            warn(strf("rule '%s': DFA budget exceeded, using NFA path",
                      names_[i].c_str()));
        }
        engines_.push_back(std::move(e));
    }
}

bool
MultiMatcher::usesDfa() const
{
    for (const auto &e : engines_)
        if (!e.dfa)
            return false;
    return true;
}

std::uint64_t
MultiMatcher::countMatches(std::span<const std::uint8_t> data) const
{
    std::uint64_t total = 0;
    for (const auto &e : engines_) {
        total += e.dfa ? e.dfa->countMatches(data.data(), data.size())
                       : e.nfa->countMatches(data.data(), data.size());
    }
    return total;
}

std::uint64_t
MultiMatcher::matchedRules(std::span<const std::uint8_t> data) const
{
    std::uint64_t rules = 0;
    for (std::size_t i = 0; i < engines_.size(); ++i) {
        const auto &e = engines_[i];
        std::uint64_t m =
            e.dfa ? e.dfa->matchedRules(data.data(), data.size())
                  : e.nfa->matchedRules(data.data(), data.size());
        if (m)
            rules |= std::uint64_t(1) << i;
    }
    return rules;
}

bool
MultiMatcher::anyMatch(std::span<const std::uint8_t> data) const
{
    for (const auto &e : engines_) {
        std::uint64_t m =
            e.dfa ? e.dfa->matchedRules(data.data(), data.size())
                  : e.nfa->matchedRules(data.data(), data.size());
        if (m)
            return true;
    }
    return false;
}

} // namespace tomur::regex
