/**
 * @file
 * exrex-style string synthesis: generate random strings that match a
 * pattern. Used by the traffic generator to hit a target
 * match-to-byte ratio (MTBR) in packet payloads, mirroring the
 * paper's use of exrex [15].
 */

#ifndef TOMUR_REGEX_GENERATOR_HH
#define TOMUR_REGEX_GENERATOR_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "regex/ast.hh"

namespace tomur::regex {

/** Options bounding generated strings. */
struct GenerateOptions
{
    /** Extra repeats drawn beyond repeatMin for unbounded repeats. */
    int maxExtraRepeats = 4;
    /** Hard cap on generated string length. */
    std::size_t maxLen = 256;
};

/**
 * Generate one random string matching the given pattern.
 *
 * Negated/huge classes pick from printable members when possible so
 * output stays payload-like. The result is guaranteed to match the
 * pattern it was generated from (ignoring anchors).
 */
std::vector<std::uint8_t> generateMatch(const Pattern &pattern, Rng &rng,
                                        const GenerateOptions &opts = {});

/** Generate from a bare AST node. */
std::vector<std::uint8_t> generateMatch(const Node &node, Rng &rng,
                                        const GenerateOptions &opts = {});

} // namespace tomur::regex

#endif // TOMUR_REGEX_GENERATOR_HH
