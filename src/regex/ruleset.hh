/**
 * @file
 * Built-in protocol rulesets.
 *
 * The paper uses the L7-filter pattern collection [8] for all
 * regex-based NFs. The collection itself is not redistributable here,
 * so defaultRuleSet() ships a simplified set of protocol-signature
 * patterns in the same style (HTTP, SSH, BitTorrent, SMTP, ...) with
 * comparable structure: keyword cores, small alternations, classes,
 * and bounded repeats.
 */

#ifndef TOMUR_REGEX_RULESET_HH
#define TOMUR_REGEX_RULESET_HH

#include "regex/matcher.hh"

namespace tomur::regex {

/** The default L7-filter-style protocol signature set (~20 rules). */
RuleSet defaultRuleSet();

/** A small 4-rule set used by unit tests and micro-benchmarks. */
RuleSet tinyRuleSet();

} // namespace tomur::regex

#endif // TOMUR_REGEX_RULESET_HH
