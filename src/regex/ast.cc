#include "regex/ast.hh"

namespace tomur::regex {

std::unique_ptr<Node>
Node::clone() const
{
    auto n = std::make_unique<Node>();
    n->kind = kind;
    n->bytes = bytes;
    n->repeatMin = repeatMin;
    n->repeatMax = repeatMax;
    n->children.reserve(children.size());
    for (const auto &c : children)
        n->children.push_back(c->clone());
    return n;
}

std::unique_ptr<Node>
makeByte(std::uint8_t b)
{
    auto n = std::make_unique<Node>();
    n->kind = NodeKind::ByteClass;
    n->bytes.set(b);
    return n;
}

std::unique_ptr<Node>
makeClass(const ByteSet &set)
{
    auto n = std::make_unique<Node>();
    n->kind = NodeKind::ByteClass;
    n->bytes = set;
    return n;
}

ByteSet
digitSet()
{
    ByteSet s;
    for (int c = '0'; c <= '9'; ++c)
        s.set(c);
    return s;
}

ByteSet
wordSet()
{
    ByteSet s = digitSet();
    for (int c = 'a'; c <= 'z'; ++c)
        s.set(c);
    for (int c = 'A'; c <= 'Z'; ++c)
        s.set(c);
    s.set('_');
    return s;
}

ByteSet
spaceSet()
{
    ByteSet s;
    s.set(' ');
    s.set('\t');
    s.set('\r');
    s.set('\n');
    s.set('\f');
    s.set('\v');
    return s;
}

ByteSet
anySet()
{
    ByteSet s;
    s.set();
    s.reset('\n');
    return s;
}

ByteSet
printableSet()
{
    ByteSet s;
    for (int c = 0x20; c <= 0x7e; ++c)
        s.set(c);
    return s;
}

} // namespace tomur::regex
