#include "regex/generator.hh"

#include "common/logging.hh"

namespace tomur::regex {

namespace {

/** Pick a byte from a set, preferring printable members. */
std::uint8_t
pickByte(const ByteSet &set, Rng &rng)
{
    ByteSet printable = set & printableSet();
    const ByteSet &pool = printable.any() ? printable : set;
    std::size_t n = pool.count();
    if (n == 0)
        panic("generateMatch: empty byte class");
    std::size_t k = rng.uniformInt(static_cast<std::uint64_t>(n));
    for (int b = 0; b < 256; ++b) {
        if (pool.test(b)) {
            if (k == 0)
                return static_cast<std::uint8_t>(b);
            --k;
        }
    }
    panic("generateMatch: pickByte fell through");
}

void
gen(const Node &n, Rng &rng, const GenerateOptions &opts,
    std::vector<std::uint8_t> &out)
{
    if (out.size() >= opts.maxLen)
        return;
    switch (n.kind) {
      case NodeKind::Empty:
        return;
      case NodeKind::ByteClass:
        out.push_back(pickByte(n.bytes, rng));
        return;
      case NodeKind::Concat:
        for (const auto &c : n.children)
            gen(*c, rng, opts, out);
        return;
      case NodeKind::Alternate: {
        std::size_t i = rng.uniformInt(
            static_cast<std::uint64_t>(n.children.size()));
        gen(*n.children[i], rng, opts, out);
        return;
      }
      case NodeKind::Repeat: {
        int count;
        if (n.repeatMax < 0) {
            count = n.repeatMin + static_cast<int>(rng.uniformInt(
                static_cast<std::uint64_t>(opts.maxExtraRepeats + 1)));
        } else {
            count = static_cast<int>(
                rng.uniformInt(n.repeatMin, n.repeatMax));
        }
        for (int i = 0; i < count; ++i)
            gen(*n.children[0], rng, opts, out);
        return;
      }
    }
}

} // namespace

std::vector<std::uint8_t>
generateMatch(const Node &node, Rng &rng, const GenerateOptions &opts)
{
    std::vector<std::uint8_t> out;
    gen(node, rng, opts, out);
    return out;
}

std::vector<std::uint8_t>
generateMatch(const Pattern &pattern, Rng &rng,
              const GenerateOptions &opts)
{
    if (!pattern.root)
        panic("generateMatch: pattern without AST");
    return generateMatch(*pattern.root, rng, opts);
}

} // namespace tomur::regex
