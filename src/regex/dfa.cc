#include "regex/dfa.hh"

#include <algorithm>
#include <bit>
#include <map>

namespace tomur::regex {

namespace {

/**
 * Compute byte equivalence classes: two bytes are equivalent when every
 * Byte state in the NFA either accepts both or rejects both.
 */
int
computeByteClasses(const Nfa &nfa, std::array<std::uint16_t, 256> &cls)
{
    // Signature per byte: membership bit per distinct ByteSet.
    std::vector<const ByteSet *> sets;
    for (const auto &s : nfa.states())
        if (s.kind == NfaState::Kind::Byte)
            sets.push_back(&s.bytes);

    std::map<std::vector<bool>, std::uint16_t> sig_to_class;
    for (int b = 0; b < 256; ++b) {
        std::vector<bool> sig;
        sig.reserve(sets.size());
        for (const ByteSet *s : sets)
            sig.push_back(s->test(b));
        auto [it, inserted] = sig_to_class.try_emplace(
            std::move(sig),
            static_cast<std::uint16_t>(sig_to_class.size()));
        cls[b] = it->second;
    }
    return static_cast<int>(sig_to_class.size());
}

} // namespace

std::unique_ptr<Dfa>
Dfa::build(const Nfa &nfa, std::size_t max_states)
{
    std::unique_ptr<Dfa> dfa(new Dfa);
    dfa->numClasses_ = computeByteClasses(nfa, dfa->byteClass_);

    // Pick one representative byte per class for transition probing.
    std::vector<int> repr(dfa->numClasses_, -1);
    for (int b = 0; b < 256; ++b)
        if (repr[dfa->byteClass_[b]] < 0)
            repr[dfa->byteClass_[b]] = b;

    const std::size_t words = (nfa.numStates() + 63) / 64;
    using StateSet = std::vector<std::uint64_t>;

    std::map<StateSet, std::uint32_t> ids;
    std::vector<StateSet> pending;

    auto intern = [&](StateSet set) -> std::uint32_t {
        auto it = ids.find(set);
        if (it != ids.end())
            return it->second;
        std::uint32_t id = static_cast<std::uint32_t>(ids.size());
        ids.emplace(set, id);
        pending.push_back(std::move(set));
        return id;
    };

    StateSet init(words, 0);
    init[nfa.start() >> 6] |= std::uint64_t(1) << (nfa.start() & 63);
    nfa.closure(init);
    dfa->start_ = intern(std::move(init));

    const auto &states = nfa.states();

    for (std::size_t cur = 0; cur < pending.size(); ++cur) {
        if (pending.size() > max_states)
            return nullptr;
        // Copy: intern() may reallocate pending while we iterate.
        StateSet set = pending[cur];

        std::uint64_t acc = 0, acc_end = 0;
        for (std::size_t w = 0; w < words; ++w) {
            std::uint64_t bits = set[w];
            while (bits) {
                int b = std::countr_zero(bits);
                bits &= bits - 1;
                const NfaState &s = states[w * 64 + b];
                if (s.kind == NfaState::Kind::Accept) {
                    if (s.atEnd)
                        acc_end |= std::uint64_t(1) << s.rule;
                    else
                        acc |= std::uint64_t(1) << s.rule;
                }
            }
        }
        dfa->accept_.push_back(acc);
        dfa->acceptAtEnd_.push_back(acc_end);
        dfa->acceptCount_.push_back(
            static_cast<std::uint8_t>(std::popcount(acc)));

        for (int c = 0; c < dfa->numClasses_; ++c) {
            int byte = repr[c];
            StateSet nxt(words, 0);
            for (std::size_t w = 0; w < words; ++w) {
                std::uint64_t bits = set[w];
                while (bits) {
                    int b = std::countr_zero(bits);
                    bits &= bits - 1;
                    const NfaState &s = states[w * 64 + b];
                    if (s.kind == NfaState::Kind::Byte &&
                        s.bytes.test(byte) && s.next >= 0) {
                        nxt[s.next >> 6] |=
                            std::uint64_t(1) << (s.next & 63);
                    }
                }
            }
            nfa.closure(nxt);
            dfa->trans_.push_back(intern(std::move(nxt)));
        }
    }
    return dfa;
}

std::uint64_t
Dfa::countMatches(const std::uint8_t *data, std::size_t len) const
{
    std::uint64_t count = 0;
    std::uint32_t state = start_;
    const int nc = numClasses_;
    for (std::size_t i = 0; i < len; ++i) {
        state = trans_[state * nc + byteClass_[data[i]]];
        count += acceptCount_[state];
    }
    if (len)
        count += std::popcount(acceptAtEnd_[state]);
    return count;
}

std::uint64_t
Dfa::matchedRules(const std::uint8_t *data, std::size_t len) const
{
    std::uint64_t rules = 0;
    std::uint32_t state = start_;
    const int nc = numClasses_;
    for (std::size_t i = 0; i < len; ++i) {
        state = trans_[state * nc + byteClass_[data[i]]];
        rules |= accept_[state];
    }
    if (len)
        rules |= acceptAtEnd_[state];
    return rules;
}

} // namespace tomur::regex
