/**
 * @file
 * Recursive-descent parser for the regex dialect described in ast.hh.
 */

#ifndef TOMUR_REGEX_PARSER_HH
#define TOMUR_REGEX_PARSER_HH

#include <string>

#include "regex/ast.hh"

namespace tomur::regex {

/** Parse options. */
struct ParseOptions
{
    bool caseInsensitive = false;
};

/**
 * Result of a parse attempt. On failure, ok is false and error holds a
 * message with the offending offset.
 */
struct ParseResult
{
    bool ok = false;
    Pattern pattern;
    std::string error;
};

/** Parse a pattern string. */
ParseResult parse(const std::string &src, ParseOptions opts = {});

/** Parse a pattern or call fatal() with the parse error. */
Pattern parseOrDie(const std::string &src, ParseOptions opts = {});

} // namespace tomur::regex

#endif // TOMUR_REGEX_PARSER_HH
