#include "regex/ruleset.hh"

namespace tomur::regex {

RuleSet
defaultRuleSet()
{
    // Patterns are intentionally unanchored (no '^') so that protocol
    // signatures embedded anywhere in a payload are reported, matching
    // how the synthetic MTBR-targeted payloads place them.
    RuleSet rs;
    rs.name = "l7-default";
    rs.rules = {
        {"http-request",
         "(get|post|head|put|delete) [\\x21-\\x7e]{1,16} http/1\\.[01]",
         true},
        {"http-response", "http/1\\.[01] [1-5][0-9][0-9]", true},
        {"ssh", "ssh-[12]\\.[0-9]+-[\\x21-\\x7e]{2,12}", false},
        {"bittorrent", "\\x13bittorrent protocol", false},
        {"ftp-banner", "220[ -][\\x21-\\x7e ]{0,20}ftp", true},
        {"smtp", "(ehlo|helo|mail from:|rcpt to:)[ ][\\x21-\\x7e]{1,20}",
         true},
        {"pop3", "\\+ok [\\x21-\\x7e]{2,16} pop3", true},
        {"imap", "\\* ok [\\x21-\\x7e ]{2,20}imap", true},
        {"dns-like", "\\x01\\x00\\x00\\x01\\x00\\x00\\x00\\x00\\x00\\x00",
         false},
        {"sip", "(invite|register|options) sip:[a-z0-9@.]{3,24}", true},
        {"rtsp", "rtsp/1\\.0 (200|401|404)", false},
        {"smb", "\\xffsmb[\\x72\\x73\\x25]", false},
        {"tls-hello", "\\x16\\x03[\\x00-\\x03]..\\x01", false},
        {"irc", "(nick|join #)[a-z0-9_]{2,12}", true},
        {"telnet-iac", "\\xff[\\xfb-\\xfe][\\x01-\\x28]", false},
        {"mysql-greet", "\\x0a[5-9]\\.[0-9]\\.[0-9]{1,2}\\x00", false},
        {"vnc", "rfb 00[1-9]\\.00[0-9]", false},
        {"gnutella", "gnutella connect/[01]\\.[0-9]", true},
        {"ntp-like", "\\x1b\\x00{3}", false},
        {"quic-like", "q0[0-9][0-9]\\x01", false},
    };
    return rs;
}

RuleSet
tinyRuleSet()
{
    RuleSet rs;
    rs.name = "tiny";
    rs.rules = {
        {"alpha", "abc+d", false},
        {"beta", "x[0-9]{2}y", false},
        {"gamma", "(foo|bar)baz", false},
        {"delta", "end$", false},
    };
    return rs;
}

} // namespace tomur::regex
