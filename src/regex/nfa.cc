#include "regex/nfa.hh"

#include <bit>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace tomur::regex {

namespace {

/** Cap on counted-repeat expansion to bound automaton size. */
constexpr int maxRepeatExpansion = 256;

} // namespace

bool
Nfa::matchesEmpty(const Node &n)
{
    switch (n.kind) {
      case NodeKind::Empty:
        return true;
      case NodeKind::ByteClass:
        return false;
      case NodeKind::Concat:
        for (const auto &c : n.children)
            if (!matchesEmpty(*c))
                return false;
        return true;
      case NodeKind::Alternate:
        for (const auto &c : n.children)
            if (matchesEmpty(*c))
                return true;
        return false;
      case NodeKind::Repeat:
        return n.repeatMin == 0 || matchesEmpty(*n.children[0]);
    }
    return false;
}

int
Nfa::addState(NfaState s)
{
    states_.push_back(std::move(s));
    return static_cast<int>(states_.size()) - 1;
}

void
Nfa::patch(const Frag &f, int target)
{
    for (auto [idx, slot] : f.outs) {
        if (slot == 0)
            states_[idx].next = target;
        else
            states_[idx].next2 = target;
    }
}

Nfa::Frag
Nfa::build(const Node &n)
{
    switch (n.kind) {
      case NodeKind::Empty: {
        // A no-op split with one dangling branch.
        NfaState s;
        s.kind = NfaState::Kind::Split;
        s.next2 = -2; // unused marker; next2 stays -2 (no branch)
        int idx = addState(s);
        states_[idx].next2 = idx; // self on unused branch: harmless
        Frag f;
        f.start = idx;
        f.outs = {{idx, 0}};
        // Make the second branch identical to the first by patching
        // both slots together would double-add; instead use a single
        // dangling slot and a dead second branch pointing to itself
        // is wrong. Re-do: represent Empty as Split with both slots
        // dangling to the same continuation.
        states_[idx].next2 = -1;
        f.outs.push_back({idx, 1});
        return f;
      }
      case NodeKind::ByteClass: {
        NfaState s;
        s.kind = NfaState::Kind::Byte;
        s.bytes = n.bytes;
        int idx = addState(s);
        Frag f;
        f.start = idx;
        f.outs = {{idx, 0}};
        return f;
      }
      case NodeKind::Concat: {
        Frag acc;
        for (std::size_t i = 0; i < n.children.size(); ++i) {
            Frag f = build(*n.children[i]);
            if (i == 0) {
                acc = std::move(f);
            } else {
                patch(acc, f.start);
                acc.outs = std::move(f.outs);
            }
        }
        if (acc.start < 0)
            return build(Node{}); // empty concat
        return acc;
      }
      case NodeKind::Alternate: {
        // Chain of splits, one per extra branch.
        Frag acc = build(*n.children[0]);
        for (std::size_t i = 1; i < n.children.size(); ++i) {
            Frag g = build(*n.children[i]);
            NfaState s;
            s.kind = NfaState::Kind::Split;
            s.next = acc.start;
            s.next2 = g.start;
            int idx = addState(s);
            Frag merged;
            merged.start = idx;
            merged.outs = std::move(acc.outs);
            merged.outs.insert(merged.outs.end(), g.outs.begin(),
                               g.outs.end());
            acc = std::move(merged);
        }
        return acc;
      }
      case NodeKind::Repeat: {
        const Node &child = *n.children[0];
        int min = n.repeatMin;
        int max = n.repeatMax;
        if (min > maxRepeatExpansion ||
            (max > 0 && max > maxRepeatExpansion)) {
            fatal(strf("counted repeat {%d,%d} exceeds expansion cap",
                       min, max));
        }
        if (max < 0) {
            // child{min,} = child^min followed by child*
            Frag acc;
            acc.start = -1;
            for (int i = 0; i < min; ++i) {
                Frag f = build(child);
                if (acc.start < 0) {
                    acc = std::move(f);
                } else {
                    patch(acc, f.start);
                    acc.outs = std::move(f.outs);
                }
            }
            // Kleene star
            Frag body = build(child);
            NfaState s;
            s.kind = NfaState::Kind::Split;
            s.next = body.start;
            s.next2 = -1;
            int split = addState(s);
            patch(body, split);
            Frag star;
            star.start = split;
            star.outs = {{split, 1}};
            if (acc.start < 0)
                return star;
            patch(acc, star.start);
            acc.outs = std::move(star.outs);
            return acc;
        }
        // child{min,max}: min copies then (max - min) optional copies.
        Frag acc;
        acc.start = -1;
        std::vector<std::pair<int, int>> optional_outs;
        for (int i = 0; i < max; ++i) {
            Frag f = build(child);
            int entry = f.start;
            if (i >= min) {
                NfaState s;
                s.kind = NfaState::Kind::Split;
                s.next = entry;
                s.next2 = -1;
                int split = addState(s);
                optional_outs.push_back({split, 1});
                entry = split;
            }
            if (acc.start < 0) {
                acc.start = entry;
                acc.outs = std::move(f.outs);
            } else {
                patch(acc, entry);
                acc.outs = std::move(f.outs);
            }
        }
        if (acc.start < 0) {
            // {0,0}: equivalent to Empty
            Node empty;
            empty.kind = NodeKind::Empty;
            return build(empty);
        }
        acc.outs.insert(acc.outs.end(), optional_outs.begin(),
                        optional_outs.end());
        return acc;
      }
    }
    panic("Nfa::build: bad node kind");
}

Nfa::Nfa(const std::vector<Pattern> &patterns)
{
    if (patterns.empty())
        fatal("Nfa: empty pattern list");
    if (patterns.size() > static_cast<std::size_t>(maxRules))
        fatal(strf("Nfa: more than %d rules", maxRules));
    numRules_ = static_cast<int>(patterns.size());

    // Root: chain of splits fanning out to each pattern's entry.
    std::vector<int> entries;
    for (int r = 0; r < numRules_; ++r) {
        const Pattern &p = patterns[r];
        if (!p.root)
            fatal("Nfa: pattern without AST");
        if (matchesEmpty(*p.root))
            fatal(strf("Nfa: rule %d ('%s') matches the empty string",
                       r, p.source.c_str()));
        Frag f = build(*p.root);
        NfaState acc;
        acc.kind = NfaState::Kind::Accept;
        acc.rule = r;
        acc.atEnd = p.anchorEnd;
        int acc_idx = addState(acc);
        patch(f, acc_idx);
        int entry = f.start;
        if (!p.anchorStart) {
            // Implicit ".*" prefix: loop state consuming any byte.
            NfaState any;
            any.kind = NfaState::Kind::Byte;
            any.bytes.set();
            int any_idx = addState(any);
            NfaState loop;
            loop.kind = NfaState::Kind::Split;
            loop.next = entry;
            loop.next2 = any_idx;
            int loop_idx = addState(loop);
            states_[any_idx].next = loop_idx;
            entry = loop_idx;
        }
        entries.push_back(entry);
    }

    int root = entries[0];
    for (std::size_t i = 1; i < entries.size(); ++i) {
        NfaState s;
        s.kind = NfaState::Kind::Split;
        s.next = root;
        s.next2 = entries[i];
        root = addState(s);
    }
    start_ = root;
}

void
Nfa::closure(std::vector<std::uint64_t> &set) const
{
    // Worklist expansion along split (epsilon) edges.
    auto test = [&set](int i) {
        return (set[i >> 6] >> (i & 63)) & 1;
    };
    auto mark = [&set](int i) {
        set[i >> 6] |= std::uint64_t(1) << (i & 63);
    };
    std::vector<int> work;
    for (std::size_t w = 0; w < set.size(); ++w) {
        std::uint64_t bits = set[w];
        while (bits) {
            int b = std::countr_zero(bits);
            bits &= bits - 1;
            work.push_back(static_cast<int>(w * 64 + b));
        }
    }
    while (!work.empty()) {
        int i = work.back();
        work.pop_back();
        const NfaState &s = states_[i];
        if (s.kind != NfaState::Kind::Split)
            continue;
        if (s.next >= 0 && !test(s.next)) {
            mark(s.next);
            work.push_back(s.next);
        }
        if (s.next2 >= 0 && !test(s.next2)) {
            mark(s.next2);
            work.push_back(s.next2);
        }
    }
}

void
Nfa::simulate(const std::uint8_t *data, std::size_t len,
              std::uint64_t *match_count,
              std::uint64_t *matched_rules) const
{
    const std::size_t words = (states_.size() + 63) / 64;
    std::vector<std::uint64_t> cur(words, 0), nxt(words, 0);
    cur[start_ >> 6] |= std::uint64_t(1) << (start_ & 63);
    closure(cur);

    std::uint64_t count = 0;
    std::uint64_t rules = 0;

    auto scanAccepts = [&](const std::vector<std::uint64_t> &set,
                           bool at_end) {
        for (std::size_t w = 0; w < words; ++w) {
            std::uint64_t bits = set[w];
            while (bits) {
                int b = std::countr_zero(bits);
                bits &= bits - 1;
                const NfaState &s = states_[w * 64 + b];
                if (s.kind == NfaState::Kind::Accept &&
                    (!s.atEnd || at_end)) {
                    ++count;
                    rules |= std::uint64_t(1) << s.rule;
                }
            }
        }
    };

    for (std::size_t pos = 0; pos < len; ++pos) {
        std::uint8_t byte = data[pos];
        for (auto &w : nxt)
            w = 0;
        for (std::size_t w = 0; w < words; ++w) {
            std::uint64_t bits = cur[w];
            while (bits) {
                int b = std::countr_zero(bits);
                bits &= bits - 1;
                const NfaState &s = states_[w * 64 + b];
                if (s.kind == NfaState::Kind::Byte &&
                    s.bytes.test(byte) && s.next >= 0) {
                    nxt[s.next >> 6] |=
                        std::uint64_t(1) << (s.next & 63);
                }
            }
        }
        closure(nxt);
        scanAccepts(nxt, pos + 1 == len);
        std::swap(cur, nxt);
    }

    if (match_count)
        *match_count = count;
    if (matched_rules)
        *matched_rules = rules;
}

std::uint64_t
Nfa::countMatches(const std::uint8_t *data, std::size_t len) const
{
    std::uint64_t count = 0;
    simulate(data, len, &count, nullptr);
    return count;
}

std::uint64_t
Nfa::matchedRules(const std::uint8_t *data, std::size_t len) const
{
    std::uint64_t rules = 0;
    simulate(data, len, nullptr, &rules);
    return rules;
}

} // namespace tomur::regex
