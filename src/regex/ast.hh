/**
 * @file
 * Regular-expression abstract syntax tree.
 *
 * The supported dialect covers what L7-filter-style protocol patterns
 * need: literals, escapes, character classes with ranges and negation,
 * '.', alternation, grouping, the *, +, ?, {m}, {m,}, {m,n} repeats,
 * and '^' / '$' anchors at pattern boundaries.
 */

#ifndef TOMUR_REGEX_AST_HH
#define TOMUR_REGEX_AST_HH

#include <bitset>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace tomur::regex {

/** Set of byte values a class node matches. */
using ByteSet = std::bitset<256>;

/** AST node kinds. */
enum class NodeKind
{
    Empty,     ///< matches the empty string
    ByteClass, ///< matches one byte in a set
    Concat,    ///< sequence of children
    Alternate, ///< any one child
    Repeat,    ///< child repeated [min, max] times (max < 0 = infinity)
};

/** One AST node; children owned via unique_ptr. */
struct Node
{
    NodeKind kind = NodeKind::Empty;
    ByteSet bytes;                                ///< for ByteClass
    std::vector<std::unique_ptr<Node>> children;  ///< Concat/Alternate
    int repeatMin = 0;                            ///< for Repeat
    int repeatMax = -1;                           ///< for Repeat

    /** Deep copy. */
    std::unique_ptr<Node> clone() const;
};

/** A parsed pattern: AST plus anchor flags. */
struct Pattern
{
    std::unique_ptr<Node> root;
    bool anchorStart = false; ///< '^' at pattern start
    bool anchorEnd = false;   ///< '$' at pattern end
    std::string source;       ///< original text (for diagnostics)
};

/** Make a single-byte class node. */
std::unique_ptr<Node> makeByte(std::uint8_t b);

/** Make a class node from a set. */
std::unique_ptr<Node> makeClass(const ByteSet &set);

/** ByteSet helpers for common escapes. */
ByteSet digitSet();
ByteSet wordSet();
ByteSet spaceSet();
ByteSet anySet();       ///< '.' (any byte except '\n')
ByteSet printableSet(); ///< printable ASCII, used by the generator

} // namespace tomur::regex

#endif // TOMUR_REGEX_AST_HH
