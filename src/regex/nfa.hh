/**
 * @file
 * Thompson NFA construction for one or many patterns.
 *
 * Multiple patterns are combined into one automaton whose accept
 * states are tagged with rule ids, so a single scan over a payload
 * reports matches for the whole ruleset (as a hardware regex engine
 * such as the BlueField RXP does).
 */

#ifndef TOMUR_REGEX_NFA_HH
#define TOMUR_REGEX_NFA_HH

#include <cstdint>
#include <vector>

#include "regex/ast.hh"

namespace tomur::regex {

/** Maximum rules in one combined automaton (accept masks are 64-bit). */
constexpr int maxRules = 64;

/** One NFA state. */
struct NfaState
{
    enum class Kind : std::uint8_t { Split, Byte, Accept };

    Kind kind = Kind::Split;
    ByteSet bytes;     ///< for Byte states
    int next = -1;     ///< Byte target / Split first branch
    int next2 = -1;    ///< Split second branch
    int rule = -1;     ///< for Accept states
    bool atEnd = false; ///< accept only at end of input ('$')
};

/**
 * Combined Thompson NFA over a ruleset.
 *
 * Unanchored patterns are prefixed with an implicit ".*" self-loop so
 * matches may start anywhere; '^'-anchored patterns are reachable only
 * from the initial closure.
 */
class Nfa
{
  public:
    /** Build from parsed patterns (at most maxRules). */
    explicit Nfa(const std::vector<Pattern> &patterns);

    int start() const { return start_; }
    const std::vector<NfaState> &states() const { return states_; }
    std::size_t numStates() const { return states_.size(); }
    int numRules() const { return numRules_; }

    /** True if rule accepts the empty string (match count would be
     *  ill-defined; such rules are rejected at build time). */
    static bool matchesEmpty(const Node &n);

    /**
     * Epsilon closure of a state set (bitset representation, one bit
     * per state packed into 64-bit words).
     */
    void closure(std::vector<std::uint64_t> &set) const;

    /**
     * Count match events by direct NFA simulation: one event per
     * (rule, end-position) pair. Used as the reference semantics and
     * as fallback when DFA construction exceeds its state budget.
     */
    std::uint64_t countMatches(const std::uint8_t *data,
                               std::size_t len) const;

    /** Bitmask of rules that match at least once in the input. */
    std::uint64_t matchedRules(const std::uint8_t *data,
                               std::size_t len) const;

  private:
    /** Fragment under construction: entry state + dangling outs. */
    struct Frag
    {
        int start = -1;
        /** (state index, slot): slot 0 patches next, 1 patches next2 */
        std::vector<std::pair<int, int>> outs;
    };

    int addState(NfaState s);
    void patch(const Frag &f, int target);
    Frag build(const Node &n);

    void simulate(const std::uint8_t *data, std::size_t len,
                  std::uint64_t *match_count,
                  std::uint64_t *matched_rules) const;

    std::vector<NfaState> states_;
    int start_ = -1;
    int numRules_ = 0;
};

} // namespace tomur::regex

#endif // TOMUR_REGEX_NFA_HH
