/**
 * @file
 * Prediction accuracy metrics used throughout the evaluation:
 * MAPE and the paper's ±5% / ±10% accuracy scores (§7.1).
 */

#ifndef TOMUR_ML_METRICS_HH
#define TOMUR_ML_METRICS_HH

#include <vector>

namespace tomur::ml {

/** Absolute percentage error of one prediction, in percent. */
double absPctError(double truth, double predicted);

/** Mean absolute percentage error, in percent. */
double mape(const std::vector<double> &truth,
            const std::vector<double> &predicted);

/**
 * Share of predictions whose absolute percentage error is within
 * +-pct, in percent of the test set ("±5% Acc." / "±10% Acc.").
 */
double accWithin(const std::vector<double> &truth,
                 const std::vector<double> &predicted, double pct);

/** Root mean squared error. */
double rmse(const std::vector<double> &truth,
            const std::vector<double> &predicted);

/** Per-sample absolute percentage errors, in percent. */
std::vector<double> absPctErrors(const std::vector<double> &truth,
                                 const std::vector<double> &predicted);

} // namespace tomur::ml

#endif // TOMUR_ML_METRICS_HH
