/**
 * @file
 * Pre-binned (histogram) view of a Dataset's feature matrix.
 *
 * Bin edges are quantiles of each feature column, computed once per
 * fit; every row is coded into a per-feature bin index. Tree growth
 * then scans O(bins) cumulative sums per node instead of sorting
 * row slices. When a feature has at most maxBins distinct values,
 * every value gets its own bin and the binned split search is
 * lossless: it reproduces the exact-greedy scan's splits.
 */

#ifndef TOMUR_ML_BINNED_HH
#define TOMUR_ML_BINNED_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ml/dataset.hh"

namespace tomur::ml {

/**
 * Immutable binned feature matrix: codes are column-major
 * (feature-contiguous), bin value ranges are global per feature.
 * A BinnedMatrix is a pure function of a Dataset's feature matrix;
 * `fingerprint` records which one (Dataset::featureFingerprint), so
 * callers can reuse a binning across fits on the same features.
 */
class BinnedMatrix
{
  public:
    /** Build from a dataset (quantile edges, per-row codes). */
    static BinnedMatrix build(const Dataset &data,
                              std::size_t max_bins = 256);

    std::size_t rows() const { return rows_; }
    std::size_t numFeatures() const { return features_; }
    std::uint64_t fingerprint() const { return fingerprint_; }

    /** Codes of one feature column (rows() entries). */
    const std::uint16_t *codesOf(std::size_t f) const
    {
        return codes_.data() + f * rows_;
    }

    /** Bin count of one feature. */
    std::size_t numBins(std::size_t f) const
    {
        return binStart_[f + 1] - binStart_[f];
    }

    /** First bin slot of feature f in the flat lo/hi arrays. */
    std::size_t binStart(std::size_t f) const { return binStart_[f]; }

    /** Total bins across features (histogram arena row width). */
    std::size_t totalBins() const { return binStart_[features_]; }

    /** Smallest value observed in a flat bin slot. */
    double binLo(std::size_t slot) const { return lo_[slot]; }

    /** Largest value observed in a flat bin slot. */
    double binHi(std::size_t slot) const { return hi_[slot]; }

  private:
    std::size_t rows_ = 0;
    std::size_t features_ = 0;
    std::uint64_t fingerprint_ = 0;
    std::vector<std::uint16_t> codes_;   ///< [f * rows_ + i]
    std::vector<std::uint32_t> binStart_; ///< features_ + 1 entries
    std::vector<double> lo_, hi_;        ///< per flat bin slot
};

} // namespace tomur::ml

#endif // TOMUR_ML_BINNED_HH
