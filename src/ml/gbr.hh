/**
 * @file
 * Gradient-boosting regressor with least-squares loss — the model
 * family SLOMO [42] uses (sklearn's GradientBoostingRegressor) and
 * that Tomur adopts for the memory-subsystem per-resource model.
 */

#ifndef TOMUR_ML_GBR_HH
#define TOMUR_ML_GBR_HH

#include <iosfwd>
#include <vector>

#include "ml/tree.hh"

namespace tomur::ml {

/** Boosting hyper-parameters (sklearn-like defaults). */
struct GbrParams
{
    int numTrees = 150;
    double learningRate = 0.1;
    int maxDepth = 3;
    std::size_t minSamplesLeaf = 2;
    /** Row subsample fraction per tree (stochastic gradient boosting;
     *  also what makes different seeds yield different models). */
    double subsample = 0.8;
    std::uint64_t seed = 1;
};

/**
 * Least-squares gradient boosting: F_0 = mean(y);
 * F_m = F_{m-1} + lr * tree_m(residuals).
 */
class GradientBoostingRegressor
{
  public:
    explicit GradientBoostingRegressor(GbrParams params = {});

    /** Fit on a dataset (labels taken from the dataset). */
    void fit(const Dataset &data);

    /** Predict one sample. */
    double predict(const std::vector<double> &features) const;

    /** Predict many samples. */
    std::vector<double>
    predictAll(const Dataset &data) const;

    bool fitted() const { return fitted_; }
    const GbrParams &params() const { return params_; }

    /** Serialize the fitted ensemble to a text stream. */
    void save(std::ostream &out) const;

    /** Load from save() output. @return false on malformed input. */
    bool load(std::istream &in);

  private:
    GbrParams params_;
    double base_ = 0.0;
    std::vector<RegressionTree> trees_;
    bool fitted_ = false;
};

} // namespace tomur::ml

#endif // TOMUR_ML_GBR_HH
