/**
 * @file
 * Gradient-boosting regressor with least-squares loss — the model
 * family SLOMO [42] uses (sklearn's GradientBoostingRegressor) and
 * that Tomur adopts for the memory-subsystem per-resource model.
 */

#ifndef TOMUR_ML_GBR_HH
#define TOMUR_ML_GBR_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "ml/tree.hh"

namespace tomur::ml {

/** Boosting hyper-parameters (sklearn-like defaults). */
struct GbrParams
{
    int numTrees = 150;
    double learningRate = 0.1;
    int maxDepth = 3;
    std::size_t minSamplesLeaf = 2;
    /** Row subsample fraction per tree (stochastic gradient boosting;
     *  also what makes different seeds yield different models). */
    double subsample = 0.8;
    std::uint64_t seed = 1;
};

/** Two parameter sets that produce identical fits — the guard for
 *  reusing a fitted regressor object as a warm-start seed. */
bool operator==(const GbrParams &a, const GbrParams &b);

/**
 * Least-squares gradient boosting: F_0 = mean(y);
 * F_m = F_{m-1} + lr * tree_m(residuals).
 *
 * Refits warm-start on dataset fingerprints without ever changing
 * the result: a fit on byte-identical features and labels is a
 * no-op (the fitted model already is the answer), a fit on the same
 * features with new labels reuses the cached histogram binning (a
 * pure function of the features), and anything else falls back to a
 * cold fit. Model bytes are identical to a cold fit in every case.
 */
class GradientBoostingRegressor
{
  public:
    explicit GradientBoostingRegressor(GbrParams params = {});

    /** Fit on a dataset (labels taken from the dataset). */
    void fit(const Dataset &data);

    /**
     * Fit sharing a pre-built binning of data's features (the
     * seed-ensemble case: bin once, fit many members). The binning
     * is used only if its fingerprint matches the dataset.
     */
    void fit(const Dataset &data,
             std::shared_ptr<const BinnedMatrix> binned);

    /** Predict one sample. */
    double predict(const std::vector<double> &features) const;

    /** Predict many samples. */
    std::vector<double>
    predictAll(const Dataset &data) const;

    bool fitted() const { return fitted_; }
    const GbrParams &params() const { return params_; }

    /** Serialize the fitted ensemble to a text stream. */
    void save(std::ostream &out) const;

    /** Load from save() output. @return false on malformed input. */
    bool load(std::istream &in);

  private:
    GbrParams params_;
    double base_ = 0.0;
    std::vector<RegressionTree> trees_;
    bool fitted_ = false;

    /** Warm-start caches: what the fitted model was computed from. */
    std::shared_ptr<const BinnedMatrix> binned_;
    std::uint64_t fitFeatureFp_ = 0;
    std::uint64_t fitLabelFp_ = 0;
};

} // namespace tomur::ml

#endif // TOMUR_ML_GBR_HH
