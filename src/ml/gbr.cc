#include "ml/gbr.hh"

#include <numeric>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/telemetry.hh"
#include "common/threadpool.hh"
#include "common/trace.hh"

namespace {

/** Below this many rows the per-row passes stay serial. */
constexpr std::size_t kParallelRows = 512;

} // namespace

namespace tomur::ml {

bool
operator==(const GbrParams &a, const GbrParams &b)
{
    return a.numTrees == b.numTrees &&
           a.learningRate == b.learningRate &&
           a.maxDepth == b.maxDepth &&
           a.minSamplesLeaf == b.minSamplesLeaf &&
           a.subsample == b.subsample && a.seed == b.seed;
}

GradientBoostingRegressor::GradientBoostingRegressor(GbrParams params)
    : params_(params)
{
}

void
GradientBoostingRegressor::fit(const Dataset &data)
{
    fit(data, nullptr);
}

void
GradientBoostingRegressor::fit(
    const Dataset &data, std::shared_ptr<const BinnedMatrix> binned)
{
    if (data.empty())
        fatal("GradientBoostingRegressor::fit: empty dataset");

    const std::uint64_t feature_fp = data.featureFingerprint();
    const std::uint64_t label_fp = data.labelFingerprint();
    if (fitted_ && feature_fp == fitFeatureFp_ &&
        label_fp == fitLabelFp_) {
        // Warm no-op: the fitted model was computed from this exact
        // dataset (a cold refit would reproduce it byte for byte).
        metrics().counter("tomur_gbr_warm_fits_total").inc();
        tracePoint("ml.gbr.warm", {{"reused", "model"}});
        return;
    }

    TraceSpan span("ml.gbr.fit");
    span.field("rows", static_cast<std::uint64_t>(data.size()));
    span.field("trees",
               static_cast<std::int64_t>(params_.numTrees));
    span.field("seed", static_cast<std::uint64_t>(params_.seed));
    metrics().counter("tomur_gbr_fits_total").inc();
    metrics().counter("tomur_gbr_trees_total")
        .inc(static_cast<std::uint64_t>(
            std::max(0, params_.numTrees)));

    // Binning is a pure function of the feature matrix: reuse a
    // caller-shared or cached one when the fingerprint proves it
    // describes these features, else (re)bin.
    if (binned && binned->fingerprint() == feature_fp &&
        binned->rows() == data.size()) {
        binned_ = std::move(binned);
        span.field("binning", "shared");
    } else if (binned_ && binned_->fingerprint() == feature_fp &&
               binned_->rows() == data.size()) {
        span.field("binning", "cached");
    } else {
        binned_ = std::make_shared<const BinnedMatrix>(
            BinnedMatrix::build(data));
        span.field("binning", "built");
    }
    const BinnedMatrix &bm = *binned_;

    trees_.clear();
    trees_.reserve(static_cast<std::size_t>(
        std::max(0, params_.numTrees)));

    base_ = 0.0;
    for (std::size_t i = 0; i < data.size(); ++i)
        base_ += data.label(i);
    base_ /= data.size();

    std::vector<double> pred(data.size(), base_);
    std::vector<double> residual(data.size());
    std::vector<std::size_t> all(data.size());
    std::iota(all.begin(), all.end(), 0);

    Rng rng(params_.seed);
    TreeParams tp;
    tp.maxDepth = params_.maxDepth;
    tp.minSamplesLeaf = params_.minSamplesLeaf;
    TreeScratch scratch;

    std::size_t n_sub = std::max<std::size_t>(
        2, static_cast<std::size_t>(params_.subsample * data.size()));

    for (int m = 0; m < params_.numTrees; ++m) {
        // Residuals and the per-round least-squares loss in one
        // pass: traced and untraced runs do the same work, tracing
        // only adds the emission.
        double loss = 0.0;
        for (std::size_t i = 0; i < data.size(); ++i) {
            residual[i] = data.label(i) - pred[i];
            loss += residual[i] * residual[i];
        }
        if (span.active()) {
            // Loss before this round's tree, keyed by the round as
            // the logical step: the boosting curve is diffable
            // without timing data.
            tracePoint("ml.gbr.round",
                       {{"loss",
                         traceFormat(
                             loss /
                             static_cast<double>(data.size()))}},
                       m);
        }

        std::vector<std::size_t> rows;
        if (n_sub >= data.size()) {
            rows = all;
        } else {
            std::vector<std::size_t> idx(all);
            rng.shuffle(idx);
            rows.assign(idx.begin(), idx.begin() + n_sub);
        }

        RegressionTree tree;
        tree.fitBinned(bm, residual, rows, tp, &scratch);
        // Per-row prediction updates are independent (each index
        // writes only pred[i]) — no reduction, so parallel execution
        // is bit-identical to the serial loop.
        if (data.size() >= kParallelRows) {
            parallelFor(data.size(), [&](std::size_t i) {
                pred[i] +=
                    params_.learningRate * tree.predictRow(data, i);
            });
        } else {
            for (std::size_t i = 0; i < data.size(); ++i) {
                pred[i] +=
                    params_.learningRate * tree.predictRow(data, i);
            }
        }
        trees_.push_back(std::move(tree));
    }
    fitted_ = true;
    fitFeatureFp_ = feature_fp;
    fitLabelFp_ = label_fp;
}

double
GradientBoostingRegressor::predict(
    const std::vector<double> &features) const
{
    if (!fitted_)
        panic("GradientBoostingRegressor::predict before fit");
    double y = base_;
    for (const auto &t : trees_)
        y += params_.learningRate * t.predict(features);
    return y;
}

std::vector<double>
GradientBoostingRegressor::predictAll(const Dataset &data) const
{
    if (!fitted_)
        panic("GradientBoostingRegressor::predict before fit");
    std::vector<double> out(data.size());
    auto one = [&](std::size_t i) {
        double y = base_;
        for (const auto &t : trees_)
            y += params_.learningRate * t.predictRow(data, i);
        out[i] = y;
    };
    if (data.size() >= kParallelRows) {
        parallelFor(data.size(), one);
    } else {
        for (std::size_t i = 0; i < data.size(); ++i)
            one(i);
    }
    return out;
}

} // namespace tomur::ml
