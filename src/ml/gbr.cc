#include "ml/gbr.hh"

#include <numeric>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/telemetry.hh"
#include "common/threadpool.hh"
#include "common/trace.hh"

namespace {

/** Below this many rows the per-row passes stay serial. */
constexpr std::size_t kParallelRows = 512;

} // namespace

namespace tomur::ml {

GradientBoostingRegressor::GradientBoostingRegressor(GbrParams params)
    : params_(params)
{
}

void
GradientBoostingRegressor::fit(const Dataset &data)
{
    if (data.empty())
        fatal("GradientBoostingRegressor::fit: empty dataset");
    trees_.clear();

    TraceSpan span("ml.gbr.fit");
    span.field("rows", static_cast<std::uint64_t>(data.size()));
    span.field("trees",
               static_cast<std::int64_t>(params_.numTrees));
    span.field("seed", static_cast<std::uint64_t>(params_.seed));
    metrics().counter("tomur_gbr_fits_total").inc();
    metrics().counter("tomur_gbr_trees_total")
        .inc(static_cast<std::uint64_t>(
            std::max(0, params_.numTrees)));

    base_ = 0.0;
    for (std::size_t i = 0; i < data.size(); ++i)
        base_ += data.label(i);
    base_ /= data.size();

    std::vector<double> pred(data.size(), base_);
    std::vector<double> residual(data.size());
    std::vector<std::size_t> all(data.size());
    std::iota(all.begin(), all.end(), 0);

    Rng rng(params_.seed);
    TreeParams tp;
    tp.maxDepth = params_.maxDepth;
    tp.minSamplesLeaf = params_.minSamplesLeaf;

    std::size_t n_sub = std::max<std::size_t>(
        2, static_cast<std::size_t>(params_.subsample * data.size()));

    for (int m = 0; m < params_.numTrees; ++m) {
        for (std::size_t i = 0; i < data.size(); ++i)
            residual[i] = data.label(i) - pred[i];
        if (span.active()) {
            // Per-round least-squares loss (before this round's
            // tree), keyed by the round as the logical step: the
            // boosting curve is diffable without timing data. Only
            // computed while tracing — it is an extra O(rows) pass.
            double loss = 0.0;
            for (std::size_t i = 0; i < data.size(); ++i)
                loss += residual[i] * residual[i];
            loss /= static_cast<double>(data.size());
            tracePoint("ml.gbr.round",
                       {{"loss", traceFormat(loss)}}, m);
        }

        std::vector<std::size_t> rows;
        if (n_sub >= data.size()) {
            rows = all;
        } else {
            std::vector<std::size_t> idx(all);
            rng.shuffle(idx);
            rows.assign(idx.begin(), idx.begin() + n_sub);
        }

        RegressionTree tree;
        tree.fit(data, residual, rows, tp);
        // Per-row prediction updates are independent (each index
        // writes only pred[i]) — no reduction, so parallel execution
        // is bit-identical to the serial loop.
        if (data.size() >= kParallelRows) {
            parallelFor(data.size(), [&](std::size_t i) {
                pred[i] +=
                    params_.learningRate * tree.predict(data.row(i));
            });
        } else {
            for (std::size_t i = 0; i < data.size(); ++i) {
                pred[i] +=
                    params_.learningRate * tree.predict(data.row(i));
            }
        }
        trees_.push_back(std::move(tree));
    }
    fitted_ = true;
}

double
GradientBoostingRegressor::predict(
    const std::vector<double> &features) const
{
    if (!fitted_)
        panic("GradientBoostingRegressor::predict before fit");
    double y = base_;
    for (const auto &t : trees_)
        y += params_.learningRate * t.predict(features);
    return y;
}

std::vector<double>
GradientBoostingRegressor::predictAll(const Dataset &data) const
{
    std::vector<double> out(data.size());
    if (data.size() >= kParallelRows) {
        parallelFor(data.size(), [&](std::size_t i) {
            out[i] = predict(data.row(i));
        });
    } else {
        for (std::size_t i = 0; i < data.size(); ++i)
            out[i] = predict(data.row(i));
    }
    return out;
}

} // namespace tomur::ml
