#include "ml/tree.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"
#include "common/threadpool.hh"

namespace tomur::ml {

namespace {

double
meanOf(const std::vector<double> &labels,
       const std::vector<std::size_t> &rows)
{
    double s = 0.0;
    for (std::size_t r : rows)
        s += labels[r];
    return rows.empty() ? 0.0 : s / rows.size();
}

/** Best split of one feature (gain <= 0 when none qualifies). */
struct FeatureSplit
{
    double gain = 0.0;
    double threshold = 0.0;
};

/**
 * Exact greedy scan of one feature: sort rows by (value, index) —
 * the index tie-break pins the summation order, so the scan is a
 * pure function of (rows, f) and identical whether features are
 * searched serially or across pool workers — then walk the split
 * points tracking the SSE reduction via prefix sums.
 */
FeatureSplit
scanFeature(const Dataset &data, const std::vector<double> &labels,
            const std::vector<std::size_t> &rows, std::size_t f,
            double total_sum, const TreeParams &params)
{
    std::vector<std::size_t> order(rows);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  double va = data.row(a)[f], vb = data.row(b)[f];
                  return va < vb || (va == vb && a < b);
              });

    FeatureSplit best;
    best.gain = 1e-12; // minimum useful SSE reduction
    bool found = false;
    const double n = static_cast<double>(rows.size());
    double left_sum = 0.0;
    for (std::size_t k = 0; k + 1 < order.size(); ++k) {
        left_sum += labels[order[k]];
        double lv = data.row(order[k])[f];
        double rv = data.row(order[k + 1])[f];
        if (lv == rv)
            continue; // cannot split between equal values
        std::size_t nl = k + 1;
        std::size_t nr = order.size() - nl;
        if (nl < params.minSamplesLeaf || nr < params.minSamplesLeaf)
            continue;
        double right_sum = total_sum - left_sum;
        // SSE reduction = sum^2/n terms (constant part cancels).
        double gain = left_sum * left_sum / nl +
                      right_sum * right_sum / nr -
                      total_sum * total_sum / n;
        if (gain > best.gain) {
            best.gain = gain;
            best.threshold = 0.5 * (lv + rv);
            found = true;
        }
    }
    if (!found)
        best.gain = 0.0;
    return best;
}

/** Below this many row*feature scans the pool overhead dominates. */
constexpr std::size_t kParallelSplitWork = 4096;

} // namespace

void
RegressionTree::fit(const Dataset &data,
                    const std::vector<double> &labels,
                    const std::vector<std::size_t> &rows,
                    const TreeParams &params)
{
    nodes_.clear();
    if (rows.empty())
        panic("RegressionTree::fit: no rows");
    std::vector<std::size_t> work = rows;
    grow(data, labels, work, 0, params);
}

int
RegressionTree::grow(const Dataset &data,
                     const std::vector<double> &labels,
                     std::vector<std::size_t> &rows, int depth,
                     const TreeParams &params)
{
    Node node;
    node.value = meanOf(labels, rows);
    int node_idx = static_cast<int>(nodes_.size());
    nodes_.push_back(node);

    if (depth >= params.maxDepth ||
        rows.size() < 2 * params.minSamplesLeaf) {
        return node_idx;
    }

    // Exact greedy split: every feature's scan is independent, so
    // large nodes fan the per-feature search across the pool. The
    // reduction walks features in index order with a strict '>', so
    // ties resolve to the lowest feature exactly as the serial scan
    // did — worker scheduling cannot change the chosen split.
    double total_sum = 0.0;
    for (std::size_t r : rows)
        total_sum += labels[r];

    const std::size_t n_feat = data.numFeatures();
    std::vector<FeatureSplit> splits;
    if (rows.size() * n_feat >= kParallelSplitWork) {
        splits = parallelMap(n_feat, [&](std::size_t f) {
            return scanFeature(data, labels, rows, f, total_sum,
                               params);
        });
    } else {
        splits.reserve(n_feat);
        for (std::size_t f = 0; f < n_feat; ++f) {
            splits.push_back(scanFeature(data, labels, rows, f,
                                         total_sum, params));
        }
    }

    double best_gain = 1e-12;
    int best_feature = -1;
    double best_threshold = 0.0;
    for (std::size_t f = 0; f < n_feat; ++f) {
        if (splits[f].gain > best_gain) {
            best_gain = splits[f].gain;
            best_feature = static_cast<int>(f);
            best_threshold = splits[f].threshold;
        }
    }

    if (best_feature < 0)
        return node_idx;

    std::vector<std::size_t> left_rows, right_rows;
    for (std::size_t r : rows) {
        if (data.row(r)[best_feature] <= best_threshold)
            left_rows.push_back(r);
        else
            right_rows.push_back(r);
    }
    if (left_rows.empty() || right_rows.empty())
        return node_idx;

    nodes_[node_idx].feature = best_feature;
    nodes_[node_idx].threshold = best_threshold;
    int l = grow(data, labels, left_rows, depth + 1, params);
    int r = grow(data, labels, right_rows, depth + 1, params);
    nodes_[node_idx].left = l;
    nodes_[node_idx].right = r;
    return node_idx;
}

double
RegressionTree::predict(const std::vector<double> &features) const
{
    if (nodes_.empty())
        panic("RegressionTree::predict before fit");
    int idx = 0;
    for (;;) {
        const Node &node = nodes_[idx];
        if (node.feature < 0)
            return node.value;
        idx = features[node.feature] <= node.threshold ? node.left
                                                       : node.right;
    }
}

int
RegressionTree::depth() const
{
    // Depth via iterative traversal over the implicit structure.
    if (nodes_.empty())
        return 0;
    std::vector<std::pair<int, int>> stack = {{0, 1}};
    int max_depth = 0;
    while (!stack.empty()) {
        auto [idx, d] = stack.back();
        stack.pop_back();
        max_depth = std::max(max_depth, d);
        const Node &node = nodes_[idx];
        if (node.feature >= 0) {
            stack.push_back({node.left, d + 1});
            stack.push_back({node.right, d + 1});
        }
    }
    return max_depth;
}

} // namespace tomur::ml
