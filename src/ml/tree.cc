#include "ml/tree.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"
#include "common/threadpool.hh"

namespace tomur::ml {

namespace {

/** Below this many row*feature cells histogram work stays serial. */
constexpr std::size_t kParallelSplitWork = 4096;

/** Row-block width for large-node histogram builds. The block
 *  decomposition is fixed (independent of pool width), so block
 *  merges sum partials in the same order at any TOMUR_THREADS. */
constexpr std::size_t kRowBlock = 4096;

/** A node needs at least this many rows before the histogram build
 *  fans out over fixed row blocks instead of features. */
constexpr std::size_t kRowParallelRows = 2 * kRowBlock;

/**
 * Accumulate one feature's histogram over a row set. Codes are
 * feature-contiguous, so the walk touches one code column.
 */
void
accumulateFeature(const BinnedMatrix &bm,
                  const std::vector<double> &labels,
                  const std::size_t *rows, std::size_t n,
                  std::size_t f, HistBin *hist)
{
    const std::uint16_t *codes = bm.codesOf(f);
    HistBin *h = hist + bm.binStart(f);
    for (std::size_t k = 0; k < n; ++k) {
        std::size_t r = rows[k];
        HistBin &cell = h[codes[r]];
        cell.sum += labels[r];
        ++cell.count;
    }
}

/**
 * Build a node's histogram (all features) into `hist`, which is
 * zeroed here. Large nodes fan out over fixed row blocks (partials
 * merged in block order), mid-size nodes over features; both
 * decompositions depend only on the node shape, never on the pool
 * width, so the result is bit-identical at any TOMUR_THREADS.
 */
void
buildHist(const BinnedMatrix &bm, const std::vector<double> &labels,
          const std::size_t *rows, std::size_t n, HistBin *hist)
{
    const std::size_t n_feat = bm.numFeatures();
    const std::size_t total = bm.totalBins();
    std::fill(hist, hist + total, HistBin{});

    if (n >= kRowParallelRows) {
        std::size_t n_blocks = (n + kRowBlock - 1) / kRowBlock;
        auto partials = parallelMap(n_blocks, [&](std::size_t b) {
            std::vector<HistBin> part(total);
            std::size_t lo = b * kRowBlock;
            std::size_t hi = std::min(n, lo + kRowBlock);
            for (std::size_t f = 0; f < n_feat; ++f) {
                accumulateFeature(bm, labels, rows + lo, hi - lo, f,
                                  part.data());
            }
            return part;
        });
        for (const auto &part : partials) {
            for (std::size_t c = 0; c < total; ++c) {
                hist[c].sum += part[c].sum;
                hist[c].count += part[c].count;
            }
        }
    } else if (n * n_feat >= kParallelSplitWork) {
        parallelFor(n_feat, [&](std::size_t f) {
            accumulateFeature(bm, labels, rows, n, f, hist);
        });
    } else {
        for (std::size_t f = 0; f < n_feat; ++f)
            accumulateFeature(bm, labels, rows, n, f, hist);
    }
}

/** Best split found by the bin scan (feature < 0 when none). */
struct BinnedSplit
{
    double gain = 1e-12; // minimum useful SSE reduction
    int feature = -1;
    double threshold = 0.0;
    std::uint16_t splitCode = 0; ///< rows with code <= this go left
    double leftSum = 0.0;
    std::size_t leftCount = 0;
};

/**
 * Scan one feature's histogram for the best split. Candidates sit
 * between adjacent occupied bins, walked in ascending value order
 * with a strict '>' — exactly the exact-greedy scan's candidate set
 * and tie-breaking, so on lossless binnings (one value per bin) the
 * chosen threshold 0.5 * (hi(left bin) + lo(right bin)) is the same
 * midpoint between adjacent node values the sort-based scan picked.
 */
void
scanFeature(const BinnedMatrix &bm, const HistBin *hist,
            std::size_t f, std::size_t n, double total_sum,
            const TreeParams &params, BinnedSplit &best)
{
    const std::size_t base = bm.binStart(f);
    const std::size_t n_bins = bm.numBins(f);
    const HistBin *h = hist + base;
    const double dn = static_cast<double>(n);

    double left_sum = 0.0;
    std::size_t left_cnt = 0;
    std::size_t prev = n_bins; // last occupied bin (none yet)
    for (std::size_t b = 0; b < n_bins; ++b) {
        if (h[b].count == 0)
            continue;
        if (prev != n_bins && left_cnt >= params.minSamplesLeaf &&
            n - left_cnt >= params.minSamplesLeaf) {
            double right_sum = total_sum - left_sum;
            std::size_t right_cnt = n - left_cnt;
            // SSE reduction = sum^2/n terms (constant part cancels).
            double gain = left_sum * left_sum / left_cnt +
                          right_sum * right_sum / right_cnt -
                          total_sum * total_sum / dn;
            if (gain > best.gain) {
                best.gain = gain;
                best.feature = static_cast<int>(f);
                best.threshold = 0.5 * (bm.binHi(base + prev) +
                                        bm.binLo(base + b));
                best.splitCode = static_cast<std::uint16_t>(prev);
                best.leftSum = left_sum;
                best.leftCount = left_cnt;
            }
        }
        left_sum += h[b].sum;
        left_cnt += h[b].count;
        prev = b;
    }
}

} // namespace

void
RegressionTree::fit(const Dataset &data,
                    const std::vector<double> &labels,
                    const std::vector<std::size_t> &rows,
                    const TreeParams &params)
{
    if (rows.empty())
        panic("RegressionTree::fit: no rows");
    BinnedMatrix binned = BinnedMatrix::build(data);
    fitBinned(binned, labels, rows, params);
}

void
RegressionTree::fitBinned(const BinnedMatrix &binned,
                          const std::vector<double> &labels,
                          const std::vector<std::size_t> &rows,
                          const TreeParams &params,
                          TreeScratch *scratch)
{
    nodes_.clear();
    if (rows.empty())
        panic("RegressionTree::fit: no rows");

    TreeScratch local;
    TreeScratch &sc = scratch ? *scratch : local;
    // Arena: one histogram slot for the root plus two child slots
    // per depth level of the DFS spine. Reused across nodes, trees
    // and fits; only grows.
    sc.totalBins_ = binned.totalBins();
    sc.slots_ = 1 + 2 * std::max(1, params.maxDepth);
    std::size_t arena =
        static_cast<std::size_t>(sc.slots_) * sc.totalBins_;
    if (sc.hist_.size() < arena)
        sc.hist_.resize(arena);
    sc.rows_.assign(rows.begin(), rows.end());
    if (sc.tmp_.size() < rows.size())
        sc.tmp_.resize(rows.size());

    // Root mean in row order, matching the pre-binned fit exactly.
    double sum = 0.0;
    for (std::size_t r : rows)
        sum += labels[r];

    buildHist(binned, labels, sc.rows_.data(), sc.rows_.size(),
              sc.hist_.data());
    growBinned(binned, labels, 0, sc.rows_.size(), 0, 0, sum, params,
               sc);
}

int
RegressionTree::growBinned(const BinnedMatrix &binned,
                           const std::vector<double> &labels,
                           std::size_t begin, std::size_t end,
                           int depth, int slot, double sum,
                           const TreeParams &params,
                           TreeScratch &scratch)
{
    const std::size_t n = end - begin;
    Node node;
    node.value = sum / static_cast<double>(n);
    int node_idx = static_cast<int>(nodes_.size());
    nodes_.push_back(node);

    if (depth >= params.maxDepth ||
        n < 2 * params.minSamplesLeaf) {
        return node_idx;
    }

    HistBin *hist =
        scratch.hist_.data() +
        static_cast<std::size_t>(slot) * scratch.totalBins_;

    // Features are scanned in index order with a strict '>', so ties
    // resolve to the lowest feature / lowest threshold exactly as
    // the exact-greedy reduction did. The scan is O(total bins).
    BinnedSplit best;
    for (std::size_t f = 0; f < binned.numFeatures(); ++f)
        scanFeature(binned, hist, f, n, sum, params, best);
    if (best.feature < 0)
        return node_idx;

    // Stable partition by bin code (equivalent to the threshold
    // test for every dataset row: bin value ranges are disjoint).
    const std::uint16_t *codes =
        binned.codesOf(static_cast<std::size_t>(best.feature));
    std::size_t *rows = scratch.rows_.data();
    std::size_t *tmp = scratch.tmp_.data();
    std::size_t nl = 0, nr = 0;
    for (std::size_t k = begin; k < end; ++k) {
        std::size_t r = rows[k];
        if (codes[r] <= best.splitCode)
            rows[begin + nl++] = r;
        else
            tmp[nr++] = r;
    }
    std::copy(tmp, tmp + nr, rows + begin + nl);
    if (nl == 0 || nr == 0)
        return node_idx; // cannot happen past the scan guards
    std::size_t mid = begin + nl;

    // Child histograms: scan the smaller side, subtract for the
    // larger (child = parent - sibling).
    int lslot = 1 + 2 * depth;
    int rslot = 2 + 2 * depth;
    HistBin *lh = scratch.hist_.data() +
                  static_cast<std::size_t>(lslot) *
                      scratch.totalBins_;
    HistBin *rh = scratch.hist_.data() +
                  static_cast<std::size_t>(rslot) *
                      scratch.totalBins_;
    HistBin *small_h = nl <= nr ? lh : rh;
    HistBin *large_h = nl <= nr ? rh : lh;
    const std::size_t small_begin = nl <= nr ? begin : mid;
    const std::size_t small_n = std::min(nl, nr);
    buildHist(binned, labels, rows + small_begin, small_n, small_h);
    for (std::size_t c = 0; c < scratch.totalBins_; ++c) {
        large_h[c].sum = hist[c].sum - small_h[c].sum;
        large_h[c].count = hist[c].count - small_h[c].count;
    }

    nodes_[node_idx].feature = best.feature;
    nodes_[node_idx].threshold = best.threshold;
    int l = growBinned(binned, labels, begin, mid, depth + 1, lslot,
                       best.leftSum, params, scratch);
    int r = growBinned(binned, labels, mid, end, depth + 1, rslot,
                       sum - best.leftSum, params, scratch);
    nodes_[node_idx].left = l;
    nodes_[node_idx].right = r;
    return node_idx;
}

double
RegressionTree::predict(const std::vector<double> &features) const
{
    if (nodes_.empty())
        panic("RegressionTree::predict before fit");
    int idx = 0;
    for (;;) {
        const Node &node = nodes_[idx];
        if (node.feature < 0)
            return node.value;
        idx = features[node.feature] <= node.threshold ? node.left
                                                       : node.right;
    }
}

double
RegressionTree::predictRow(const Dataset &data, std::size_t i) const
{
    if (nodes_.empty())
        panic("RegressionTree::predict before fit");
    int idx = 0;
    for (;;) {
        const Node &node = nodes_[idx];
        if (node.feature < 0)
            return node.value;
        idx = data.at(i, static_cast<std::size_t>(node.feature)) <=
                      node.threshold
                  ? node.left
                  : node.right;
    }
}

int
RegressionTree::depth() const
{
    // Depth via iterative traversal over the implicit structure.
    if (nodes_.empty())
        return 0;
    std::vector<std::pair<int, int>> stack = {{0, 1}};
    int max_depth = 0;
    while (!stack.empty()) {
        auto [idx, d] = stack.back();
        stack.pop_back();
        max_depth = std::max(max_depth, d);
        const Node &node = nodes_[idx];
        if (node.feature >= 0) {
            stack.push_back({node.left, d + 1});
            stack.push_back({node.right, d + 1});
        }
    }
    return max_depth;
}

} // namespace tomur::ml
