#include "ml/metrics.hh"

#include <cmath>

#include "common/logging.hh"

namespace tomur::ml {

double
absPctError(double truth, double predicted)
{
    if (truth == 0.0)
        panic("absPctError: zero ground truth");
    return 100.0 * std::fabs(predicted - truth) / std::fabs(truth);
}

std::vector<double>
absPctErrors(const std::vector<double> &truth,
             const std::vector<double> &predicted)
{
    if (truth.size() != predicted.size())
        panic("absPctErrors: size mismatch");
    std::vector<double> out(truth.size());
    for (std::size_t i = 0; i < truth.size(); ++i)
        out[i] = absPctError(truth[i], predicted[i]);
    return out;
}

double
mape(const std::vector<double> &truth,
     const std::vector<double> &predicted)
{
    if (truth.empty())
        return 0.0;
    double s = 0.0;
    for (double e : absPctErrors(truth, predicted))
        s += e;
    return s / truth.size();
}

double
accWithin(const std::vector<double> &truth,
          const std::vector<double> &predicted, double pct)
{
    if (truth.empty())
        return 0.0;
    std::size_t ok = 0;
    for (double e : absPctErrors(truth, predicted))
        ok += e <= pct;
    return 100.0 * ok / truth.size();
}

double
rmse(const std::vector<double> &truth,
     const std::vector<double> &predicted)
{
    if (truth.size() != predicted.size())
        panic("rmse: size mismatch");
    if (truth.empty())
        return 0.0;
    double s = 0.0;
    for (std::size_t i = 0; i < truth.size(); ++i) {
        double d = predicted[i] - truth[i];
        s += d * d;
    }
    return std::sqrt(s / truth.size());
}

} // namespace tomur::ml
