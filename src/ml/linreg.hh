/**
 * @file
 * Ordinary least squares with optional ridge regularisation, solved
 * via normal equations. Used for the traffic-aware accelerator model
 * (Eq. 5: per-request processing time as a linear function of MTBR).
 */

#ifndef TOMUR_ML_LINREG_HH
#define TOMUR_ML_LINREG_HH

#include <iosfwd>
#include <vector>

#include "ml/dataset.hh"

namespace tomur::ml {

/**
 * Linear model y = b0 + b . x.
 */
class LinearRegression
{
  public:
    /**
     * Fit with normal equations (X^T X + ridge I)^-1 X^T y.
     * @param ridge small L2 regulariser for numerical stability
     */
    void fit(const Dataset &data, double ridge = 1e-9);

    /** Fit a 1-D model from (x, y) pairs. */
    void fit1d(const std::vector<double> &x,
               const std::vector<double> &y, double ridge = 1e-9);

    /** Predict one sample. */
    double predict(const std::vector<double> &features) const;

    /** Predict a 1-D model. */
    double predict1d(double x) const;

    /** Intercept b0. */
    double intercept() const { return intercept_; }

    /** Coefficients b. */
    const std::vector<double> &coefficients() const { return coef_; }

    bool fitted() const { return fitted_; }

    /** Serialize to a text stream. */
    void save(std::ostream &out) const;

    /** Load from save() output. @return false on malformed input. */
    bool load(std::istream &in);

  private:
    double intercept_ = 0.0;
    std::vector<double> coef_;
    bool fitted_ = false;
};

} // namespace tomur::ml

#endif // TOMUR_ML_LINREG_HH
