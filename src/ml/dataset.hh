/**
 * @file
 * Columnar (structure-of-arrays) regression dataset plus split
 * helpers. Features live in one contiguous column-major matrix so
 * per-feature scans (binning, split search) walk sequential memory;
 * rows are materialized on demand for row-oriented consumers.
 */

#ifndef TOMUR_ML_DATASET_HH
#define TOMUR_ML_DATASET_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"

namespace tomur::ml {

/** Feature matrix with labels. All rows share one arity. */
class Dataset
{
  public:
    Dataset() = default;

    /** Construct with named features (names used in diagnostics). */
    explicit Dataset(std::vector<std::string> feature_names);

    /** Append one sample; arity must match. */
    void add(const std::vector<double> &features, double label);

    std::size_t size() const { return y_.size(); }
    std::size_t numFeatures() const { return names_.size(); }
    bool empty() const { return y_.empty(); }

    /** One feature value (column-major lookup, no allocation). */
    double at(std::size_t i, std::size_t f) const
    {
        return cols_[f * stride_ + i];
    }

    /** Contiguous view of one feature column (size() entries). */
    const double *column(std::size_t f) const
    {
        return cols_.data() + f * stride_;
    }

    /** Materialize one row (for row-oriented consumers). */
    std::vector<double> row(std::size_t i) const;

    double label(std::size_t i) const { return y_[i]; }
    const std::vector<std::string> &featureNames() const
    {
        return names_;
    }
    const std::vector<double> &labels() const { return y_; }

    /**
     * Order-independent digest of the feature matrix (FNV-1a over
     * the value bytes in row-major walk order). Two datasets with
     * equal fingerprints and sizes hold bit-identical features —
     * the warm-start oracle for skipping re-binning.
     */
    std::uint64_t featureFingerprint() const;

    /** Digest of the label vector (same scheme). */
    std::uint64_t labelFingerprint() const;

    /**
     * Random train/test split.
     * @param test_fraction fraction of samples in the test set
     */
    std::pair<Dataset, Dataset> split(double test_fraction,
                                      Rng &rng) const;

    /** Concatenate another dataset (same arity). */
    void append(const Dataset &other);

  private:
    void ensureCapacity(std::size_t rows);

    std::vector<std::string> names_;
    /** Column-major feature storage: column f occupies
     *  [f * stride_, f * stride_ + size()). */
    std::vector<double> cols_;
    std::size_t stride_ = 0; ///< row capacity per column
    std::vector<double> y_;
};

} // namespace tomur::ml

#endif // TOMUR_ML_DATASET_HH
