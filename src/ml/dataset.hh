/**
 * @file
 * Row-major regression dataset plus split helpers.
 */

#ifndef TOMUR_ML_DATASET_HH
#define TOMUR_ML_DATASET_HH

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.hh"

namespace tomur::ml {

/** Feature matrix with labels. All rows share one arity. */
class Dataset
{
  public:
    Dataset() = default;

    /** Construct with named features (names used in diagnostics). */
    explicit Dataset(std::vector<std::string> feature_names);

    /** Append one sample; arity must match. */
    void add(std::vector<double> features, double label);

    std::size_t size() const { return y_.size(); }
    std::size_t numFeatures() const { return names_.size(); }
    bool empty() const { return y_.empty(); }

    const std::vector<double> &row(std::size_t i) const { return x_[i]; }
    double label(std::size_t i) const { return y_[i]; }
    const std::vector<std::string> &featureNames() const
    {
        return names_;
    }
    const std::vector<double> &labels() const { return y_; }

    /**
     * Random train/test split.
     * @param test_fraction fraction of samples in the test set
     */
    std::pair<Dataset, Dataset> split(double test_fraction,
                                      Rng &rng) const;

    /** Concatenate another dataset (same arity). */
    void append(const Dataset &other);

  private:
    std::vector<std::string> names_;
    std::vector<std::vector<double>> x_;
    std::vector<double> y_;
};

} // namespace tomur::ml

#endif // TOMUR_ML_DATASET_HH
