/**
 * @file
 * Text serialization of the ML models (save/load round trips).
 *
 * The format is line-oriented and versioned by a leading magic token
 * per object; floating-point values are written with max_digits10 so
 * reloaded models predict bit-identically.
 */

#include <istream>
#include <ostream>
#include <string>

#include "common/logging.hh"
#include "common/serial.hh"
#include "ml/gbr.hh"
#include "ml/linreg.hh"
#include "ml/tree.hh"

namespace tomur::ml {

namespace {

// Shared helpers (common/serial.hh) under the historical local names
// so the save/load bodies read unchanged.
using tomur::expectToken;
constexpr auto writeDouble = writeSerialDouble;

} // namespace

void
RegressionTree::save(std::ostream &out) const
{
    out << "tree " << nodes_.size() << "\n";
    for (const Node &n : nodes_) {
        out << n.feature << " ";
        writeDouble(out, n.threshold);
        out << " ";
        writeDouble(out, n.value);
        out << " " << n.left << " " << n.right << "\n";
    }
}

bool
RegressionTree::load(std::istream &in)
{
    if (!expectToken(in, "tree"))
        return false;
    std::size_t count = 0;
    in >> count;
    if (!in || count > 10'000'000)
        return false;
    std::vector<Node> nodes(count);
    for (auto &n : nodes) {
        in >> n.feature >> n.threshold >> n.value >> n.left >>
            n.right;
        if (!in)
            return false;
        // Children must stay in range (or be absent on leaves).
        auto bad = [&](int idx) {
            return idx < -1 || idx >= static_cast<int>(count);
        };
        if (bad(n.left) || bad(n.right))
            return false;
    }
    nodes_ = std::move(nodes);
    return true;
}

void
GradientBoostingRegressor::save(std::ostream &out) const
{
    if (!fitted_)
        panic("GradientBoostingRegressor::save before fit");
    out << "gbr " << trees_.size() << " ";
    writeDouble(out, base_);
    out << " ";
    writeDouble(out, params_.learningRate);
    out << "\n";
    for (const auto &t : trees_)
        t.save(out);
}

bool
GradientBoostingRegressor::load(std::istream &in)
{
    if (!expectToken(in, "gbr"))
        return false;
    std::size_t count = 0;
    double base = 0.0, lr = 0.0;
    in >> count >> base >> lr;
    if (!in || count > 1'000'000 || lr <= 0.0)
        return false;
    std::vector<RegressionTree> trees(count);
    for (auto &t : trees) {
        if (!t.load(in))
            return false;
    }
    trees_ = std::move(trees);
    base_ = base;
    params_.learningRate = lr;
    params_.numTrees = static_cast<int>(count);
    fitted_ = true;
    // A loaded model matches no in-memory dataset: drop the
    // warm-start caches so the next fit runs cold.
    binned_.reset();
    fitFeatureFp_ = 0;
    fitLabelFp_ = 0;
    return true;
}

void
LinearRegression::save(std::ostream &out) const
{
    if (!fitted_)
        panic("LinearRegression::save before fit");
    out << "linreg " << coef_.size() << " ";
    writeDouble(out, intercept_);
    for (double c : coef_) {
        out << " ";
        writeDouble(out, c);
    }
    out << "\n";
}

bool
LinearRegression::load(std::istream &in)
{
    if (!expectToken(in, "linreg"))
        return false;
    std::size_t count = 0;
    double b0 = 0.0;
    in >> count >> b0;
    if (!in || count > 1'000'000)
        return false;
    std::vector<double> coef(count);
    for (auto &c : coef) {
        in >> c;
        if (!in)
            return false;
    }
    intercept_ = b0;
    coef_ = std::move(coef);
    fitted_ = true;
    return true;
}

} // namespace tomur::ml
