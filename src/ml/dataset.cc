#include "ml/dataset.hh"

#include <numeric>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace tomur::ml {

Dataset::Dataset(std::vector<std::string> feature_names)
    : names_(std::move(feature_names))
{
}

void
Dataset::add(std::vector<double> features, double label)
{
    if (names_.empty() && x_.empty()) {
        // Unnamed dataset: adopt arity from the first row.
        names_.resize(features.size());
        for (std::size_t i = 0; i < names_.size(); ++i)
            names_[i] = strf("f%zu", i);
    }
    if (features.size() != names_.size())
        panic(strf("Dataset::add: arity %zu != %zu", features.size(),
                   names_.size()));
    x_.push_back(std::move(features));
    y_.push_back(label);
}

std::pair<Dataset, Dataset>
Dataset::split(double test_fraction, Rng &rng) const
{
    if (test_fraction < 0.0 || test_fraction > 1.0)
        panic("Dataset::split: bad fraction");
    std::vector<std::size_t> idx(size());
    std::iota(idx.begin(), idx.end(), 0);
    rng.shuffle(idx);
    std::size_t n_test =
        static_cast<std::size_t>(test_fraction * size());
    Dataset train(names_), test(names_);
    for (std::size_t k = 0; k < idx.size(); ++k) {
        auto &dst = k < n_test ? test : train;
        dst.add(x_[idx[k]], y_[idx[k]]);
    }
    return {std::move(train), std::move(test)};
}

void
Dataset::append(const Dataset &other)
{
    if (!other.empty() && !empty() &&
        other.numFeatures() != numFeatures()) {
        panic("Dataset::append: arity mismatch");
    }
    if (empty())
        names_ = other.names_;
    for (std::size_t i = 0; i < other.size(); ++i)
        add(other.x_[i], other.y_[i]);
}

} // namespace tomur::ml
