#include "ml/dataset.hh"

#include <cstring>
#include <numeric>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace tomur::ml {

namespace {

/** FNV-1a over the raw bytes of a double. */
inline std::uint64_t
fnvMix(std::uint64_t h, double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    for (int i = 0; i < 8; ++i) {
        h ^= (bits >> (8 * i)) & 0xff;
        h *= 0x100000001b3ULL;
    }
    return h;
}

constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ULL;

} // namespace

Dataset::Dataset(std::vector<std::string> feature_names)
    : names_(std::move(feature_names))
{
}

void
Dataset::ensureCapacity(std::size_t rows)
{
    if (rows <= stride_)
        return;
    std::size_t grown = stride_ == 0 ? 64 : stride_ * 2;
    while (grown < rows)
        grown *= 2;
    // Repack: every column moves to its new stride-aligned slot.
    std::vector<double> next(grown * names_.size());
    for (std::size_t f = 0; f < names_.size(); ++f) {
        std::memcpy(next.data() + f * grown,
                    cols_.data() + f * stride_,
                    size() * sizeof(double));
    }
    cols_ = std::move(next);
    stride_ = grown;
}

void
Dataset::add(const std::vector<double> &features, double label)
{
    if (names_.empty() && y_.empty()) {
        // Unnamed dataset: adopt arity from the first row.
        names_.resize(features.size());
        for (std::size_t i = 0; i < names_.size(); ++i)
            names_[i] = strf("f%zu", i);
    }
    if (features.size() != names_.size())
        panic(strf("Dataset::add: arity %zu != %zu", features.size(),
                   names_.size()));
    std::size_t i = size();
    ensureCapacity(i + 1);
    for (std::size_t f = 0; f < names_.size(); ++f)
        cols_[f * stride_ + i] = features[f];
    y_.push_back(label);
}

std::vector<double>
Dataset::row(std::size_t i) const
{
    std::vector<double> out(names_.size());
    for (std::size_t f = 0; f < names_.size(); ++f)
        out[f] = cols_[f * stride_ + i];
    return out;
}

std::uint64_t
Dataset::featureFingerprint() const
{
    std::uint64_t h = fnvMix(kFnvBasis,
                             static_cast<double>(size()));
    h = fnvMix(h, static_cast<double>(numFeatures()));
    for (std::size_t i = 0; i < size(); ++i) {
        for (std::size_t f = 0; f < names_.size(); ++f)
            h = fnvMix(h, cols_[f * stride_ + i]);
    }
    return h;
}

std::uint64_t
Dataset::labelFingerprint() const
{
    std::uint64_t h = fnvMix(kFnvBasis,
                             static_cast<double>(size()));
    for (double v : y_)
        h = fnvMix(h, v);
    return h;
}

std::pair<Dataset, Dataset>
Dataset::split(double test_fraction, Rng &rng) const
{
    if (test_fraction < 0.0 || test_fraction > 1.0)
        panic("Dataset::split: bad fraction");
    std::vector<std::size_t> idx(size());
    std::iota(idx.begin(), idx.end(), 0);
    rng.shuffle(idx);
    std::size_t n_test =
        static_cast<std::size_t>(test_fraction * size());
    Dataset train(names_), test(names_);
    for (std::size_t k = 0; k < idx.size(); ++k) {
        auto &dst = k < n_test ? test : train;
        dst.add(row(idx[k]), y_[idx[k]]);
    }
    return {std::move(train), std::move(test)};
}

void
Dataset::append(const Dataset &other)
{
    if (!other.empty() && !empty() &&
        other.numFeatures() != numFeatures()) {
        panic("Dataset::append: arity mismatch");
    }
    if (empty())
        names_ = other.names_;
    for (std::size_t i = 0; i < other.size(); ++i)
        add(other.row(i), other.y_[i]);
}

} // namespace tomur::ml
