#include "ml/linreg.hh"

#include <cmath>

#include "common/logging.hh"

namespace tomur::ml {

namespace {

/**
 * Solve A x = b with Gaussian elimination and partial pivoting.
 * A is n x n row-major and is destroyed.
 */
bool
solveLinear(std::vector<double> &a, std::vector<double> &b,
            std::size_t n)
{
    for (std::size_t col = 0; col < n; ++col) {
        std::size_t pivot = col;
        double best = std::fabs(a[col * n + col]);
        for (std::size_t r = col + 1; r < n; ++r) {
            double v = std::fabs(a[r * n + col]);
            if (v > best) {
                best = v;
                pivot = r;
            }
        }
        if (best < 1e-300)
            return false;
        if (pivot != col) {
            for (std::size_t c = 0; c < n; ++c)
                std::swap(a[col * n + c], a[pivot * n + c]);
            std::swap(b[col], b[pivot]);
        }
        double d = a[col * n + col];
        for (std::size_t r = col + 1; r < n; ++r) {
            double f = a[r * n + col] / d;
            if (f == 0.0)
                continue;
            for (std::size_t c = col; c < n; ++c)
                a[r * n + c] -= f * a[col * n + c];
            b[r] -= f * b[col];
        }
    }
    for (std::size_t col = n; col-- > 0;) {
        double s = b[col];
        for (std::size_t c = col + 1; c < n; ++c)
            s -= a[col * n + c] * b[c];
        b[col] = s / a[col * n + col];
    }
    return true;
}

} // namespace

void
LinearRegression::fit(const Dataset &data, double ridge)
{
    if (data.empty())
        fatal("LinearRegression::fit: empty dataset");
    const std::size_t f = data.numFeatures();
    const std::size_t n = f + 1; // plus intercept column

    // Normal equations over the augmented design matrix [1 | X].
    std::vector<double> ata(n * n, 0.0);
    std::vector<double> atb(n, 0.0);
    std::vector<double> aug(n);
    for (std::size_t i = 0; i < data.size(); ++i) {
        aug[0] = 1.0;
        for (std::size_t j = 0; j < f; ++j)
            aug[j + 1] = data.at(i, j);
        for (std::size_t r = 0; r < n; ++r) {
            for (std::size_t c = 0; c < n; ++c)
                ata[r * n + c] += aug[r] * aug[c];
            atb[r] += aug[r] * data.label(i);
        }
    }
    for (std::size_t r = 1; r < n; ++r)
        ata[r * n + r] += ridge;

    if (!solveLinear(ata, atb, n))
        fatal("LinearRegression::fit: singular system");

    intercept_ = atb[0];
    coef_.assign(atb.begin() + 1, atb.end());
    fitted_ = true;
}

void
LinearRegression::fit1d(const std::vector<double> &x,
                        const std::vector<double> &y, double ridge)
{
    if (x.size() != y.size())
        panic("LinearRegression::fit1d: size mismatch");
    Dataset d({"x"});
    for (std::size_t i = 0; i < x.size(); ++i)
        d.add({x[i]}, y[i]);
    fit(d, ridge);
}

double
LinearRegression::predict(const std::vector<double> &features) const
{
    if (!fitted_)
        panic("LinearRegression::predict before fit");
    if (features.size() != coef_.size())
        panic("LinearRegression::predict: arity mismatch");
    double y = intercept_;
    for (std::size_t i = 0; i < coef_.size(); ++i)
        y += coef_[i] * features[i];
    return y;
}

double
LinearRegression::predict1d(double x) const
{
    return predict({x});
}

} // namespace tomur::ml
