/**
 * @file
 * Least-squares regression tree (CART), the base learner for the
 * gradient-boosting regressor.
 */

#ifndef TOMUR_ML_TREE_HH
#define TOMUR_ML_TREE_HH

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "ml/dataset.hh"

namespace tomur::ml {

/** Tree growth parameters. */
struct TreeParams
{
    int maxDepth = 3;
    std::size_t minSamplesLeaf = 2;
};

/**
 * Binary regression tree fit by exact greedy least-squares splits.
 */
class RegressionTree
{
  public:
    /**
     * Fit on a subset of rows of a dataset.
     * @param data feature matrix provider
     * @param labels regression targets (may differ from data labels,
     *        e.g. boosting residuals), index-aligned with data rows
     * @param rows indices of rows to train on
     */
    void fit(const Dataset &data, const std::vector<double> &labels,
             const std::vector<std::size_t> &rows,
             const TreeParams &params);

    /** Predict one sample. */
    double predict(const std::vector<double> &features) const;

    /** Number of nodes (0 before fit). */
    std::size_t numNodes() const { return nodes_.size(); }

    /** Depth of the fitted tree. */
    int depth() const;

    /** Serialize to a line-oriented text stream. */
    void save(std::ostream &out) const;

    /** Load from save() output. @return false on malformed input. */
    bool load(std::istream &in);

  private:
    struct Node
    {
        int feature = -1;       ///< -1 for leaves
        double threshold = 0.0; ///< go left when x[feature] <= threshold
        double value = 0.0;     ///< leaf prediction
        int left = -1;
        int right = -1;
    };

    int grow(const Dataset &data, const std::vector<double> &labels,
             std::vector<std::size_t> &rows, int depth,
             const TreeParams &params);

    std::vector<Node> nodes_;
};

} // namespace tomur::ml

#endif // TOMUR_ML_TREE_HH
