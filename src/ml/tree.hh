/**
 * @file
 * Least-squares regression tree (CART), the base learner for the
 * gradient-boosting regressor. Growth runs on a histogram-binned
 * view of the dataset: per-node split search walks O(bins)
 * cumulative sums with the histogram-subtraction trick instead of
 * sorting row slices.
 */

#ifndef TOMUR_ML_TREE_HH
#define TOMUR_ML_TREE_HH

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "ml/binned.hh"
#include "ml/dataset.hh"

namespace tomur::ml {

/** Tree growth parameters. */
struct TreeParams
{
    int maxDepth = 3;
    std::size_t minSamplesLeaf = 2;
};

/** One histogram cell: label sum + row count of a bin. */
struct HistBin
{
    double sum = 0.0;
    std::uint32_t count = 0;
};

/**
 * Reusable growth scratch: the histogram arena (one slot per live
 * node level) and the row-partition buffers. A boosting loop keeps
 * one TreeScratch and passes it to every fitBinned call, so no tree
 * after the first allocates.
 */
class TreeScratch
{
  private:
    friend class RegressionTree;
    std::vector<HistBin> hist_;     ///< slots_ * totalBins_ cells
    std::vector<std::size_t> rows_; ///< in-place partitioned rows
    std::vector<std::size_t> tmp_;  ///< stable-partition staging
    std::size_t totalBins_ = 0;
    int slots_ = 0;
};

/**
 * Binary regression tree fit by greedy least-squares splits over
 * histogram bins (lossless vs the exact-greedy scan when every
 * feature has at most max_bins distinct values).
 */
class RegressionTree
{
  public:
    /**
     * Fit on a subset of rows of a dataset. Convenience wrapper
     * that bins the dataset just for this fit — boosting loops
     * should bin once and call fitBinned per tree instead.
     * @param data feature matrix provider
     * @param labels regression targets (may differ from data labels,
     *        e.g. boosting residuals), index-aligned with data rows
     * @param rows indices of rows to train on
     */
    void fit(const Dataset &data, const std::vector<double> &labels,
             const std::vector<std::size_t> &rows,
             const TreeParams &params);

    /**
     * Fit on a pre-binned dataset view.
     * @param scratch optional reusable growth buffers (histograms,
     *        partitions); pass the same object across trees to
     *        amortize allocation. nullptr uses a local scratch.
     */
    void fitBinned(const BinnedMatrix &binned,
                   const std::vector<double> &labels,
                   const std::vector<std::size_t> &rows,
                   const TreeParams &params,
                   TreeScratch *scratch = nullptr);

    /** Predict one sample. */
    double predict(const std::vector<double> &features) const;

    /** Predict one dataset row without materializing it. */
    double predictRow(const Dataset &data, std::size_t i) const;

    /** Number of nodes (0 before fit). */
    std::size_t numNodes() const { return nodes_.size(); }

    /** Depth of the fitted tree. */
    int depth() const;

    /** Serialize to a line-oriented text stream. */
    void save(std::ostream &out) const;

    /** Load from save() output. @return false on malformed input. */
    bool load(std::istream &in);

  private:
    struct Node
    {
        int feature = -1;       ///< -1 for leaves
        double threshold = 0.0; ///< go left when x[feature] <= threshold
        double value = 0.0;     ///< leaf prediction
        int left = -1;
        int right = -1;
    };

    int growBinned(const BinnedMatrix &binned,
                   const std::vector<double> &labels,
                   std::size_t begin, std::size_t end, int depth,
                   int slot, double sum, const TreeParams &params,
                   TreeScratch &scratch);

    std::vector<Node> nodes_;
};

} // namespace tomur::ml

#endif // TOMUR_ML_TREE_HH
