#include "ml/binned.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"
#include "common/threadpool.hh"

namespace tomur::ml {

namespace {

/** One feature's binning, built independently per feature. */
struct FeatureBins
{
    std::vector<std::uint16_t> codes;
    std::vector<double> lo, hi;
};

/** Below this many row*feature cells binning stays serial. */
constexpr std::size_t kParallelBinWork = 4096;

FeatureBins
binFeature(const Dataset &data, std::size_t f, std::size_t max_bins)
{
    const std::size_t n = data.size();
    const double *col = data.column(f);

    std::vector<double> sorted(col, col + n);
    std::sort(sorted.begin(), sorted.end());

    // Inclusive upper edges, always actual data values. One bin per
    // distinct value when they fit (the lossless case); otherwise
    // quantile cuts of the sorted column, deduplicated.
    std::vector<double> upper;
    std::size_t distinct = 1;
    for (std::size_t i = 1; i < n; ++i)
        distinct += sorted[i] != sorted[i - 1];
    if (distinct <= max_bins) {
        upper.reserve(distinct);
        upper.push_back(sorted[0]);
        for (std::size_t i = 1; i < n; ++i) {
            if (sorted[i] != sorted[i - 1])
                upper.push_back(sorted[i]);
        }
    } else {
        upper.reserve(max_bins);
        for (std::size_t b = 1; b <= max_bins; ++b) {
            double edge = sorted[b * n / max_bins - 1];
            if (upper.empty() || edge != upper.back())
                upper.push_back(edge);
        }
    }

    FeatureBins out;
    out.codes.resize(n);
    out.lo.assign(upper.size(),
                  std::numeric_limits<double>::infinity());
    out.hi.assign(upper.size(),
                  -std::numeric_limits<double>::infinity());
    for (std::size_t i = 0; i < n; ++i) {
        double v = col[i];
        std::size_t b = static_cast<std::size_t>(
            std::lower_bound(upper.begin(), upper.end(), v) -
            upper.begin());
        out.codes[i] = static_cast<std::uint16_t>(b);
        out.lo[b] = std::min(out.lo[b], v);
        out.hi[b] = std::max(out.hi[b], v);
    }
    return out;
}

} // namespace

BinnedMatrix
BinnedMatrix::build(const Dataset &data, std::size_t max_bins)
{
    if (data.empty())
        panic("BinnedMatrix::build: empty dataset");
    max_bins = std::clamp<std::size_t>(max_bins, 2, 65535);

    const std::size_t n_feat = data.numFeatures();
    BinnedMatrix bm;
    bm.rows_ = data.size();
    bm.features_ = n_feat;
    bm.fingerprint_ = data.featureFingerprint();

    // Per-feature binning is independent: fan it across the pool at
    // sufficient work, collected in feature order either way.
    std::vector<FeatureBins> per_feature;
    if (data.size() * n_feat >= kParallelBinWork) {
        per_feature = parallelMap(n_feat, [&](std::size_t f) {
            return binFeature(data, f, max_bins);
        });
    } else {
        per_feature.reserve(n_feat);
        for (std::size_t f = 0; f < n_feat; ++f)
            per_feature.push_back(binFeature(data, f, max_bins));
    }

    bm.binStart_.resize(n_feat + 1);
    bm.binStart_[0] = 0;
    for (std::size_t f = 0; f < n_feat; ++f) {
        bm.binStart_[f + 1] =
            bm.binStart_[f] +
            static_cast<std::uint32_t>(per_feature[f].lo.size());
    }
    bm.codes_.resize(n_feat * bm.rows_);
    bm.lo_.resize(bm.binStart_[n_feat]);
    bm.hi_.resize(bm.binStart_[n_feat]);
    for (std::size_t f = 0; f < n_feat; ++f) {
        std::copy(per_feature[f].codes.begin(),
                  per_feature[f].codes.end(),
                  bm.codes_.begin() + f * bm.rows_);
        std::copy(per_feature[f].lo.begin(),
                  per_feature[f].lo.end(),
                  bm.lo_.begin() + bm.binStart_[f]);
        std::copy(per_feature[f].hi.begin(),
                  per_feature[f].hi.end(),
                  bm.hi_.begin() + bm.binStart_[f]);
    }
    return bm;
}

} // namespace tomur::ml
