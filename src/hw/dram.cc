#include "hw/dram.hh"

#include <algorithm>

#include "common/logging.hh"

namespace tomur::hw {

double
dramLatencyFactor(double demand_bytes_per_sec,
                  double peak_bytes_per_sec)
{
    if (peak_bytes_per_sec <= 0.0)
        panic("dramLatencyFactor: bad peak bandwidth");
    double u = std::max(0.0, demand_bytes_per_sec / peak_bytes_per_sec);
    u = std::min(u, 0.97);
    constexpr double k = 0.8;
    return 1.0 + k * u * u / (1.0 - u);
}

} // namespace tomur::hw
