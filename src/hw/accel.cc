#include "hw/accel.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace tomur::hw {

namespace {

/** Server utilisation if every queue were completion-capped at r. */
double
utilisationAt(const std::vector<AccelQueue> &queues, double r)
{
    double u = 0.0;
    for (const auto &q : queues) {
        double rate = q.closedLoop ? r : std::min(q.arrivalRate, r);
        u += rate * q.serviceTime;
    }
    return u;
}

} // namespace

std::vector<AccelQueueResult>
solveRoundRobin(const std::vector<AccelQueue> &queues)
{
    std::vector<AccelQueueResult> out(queues.size());
    if (queues.empty())
        return out;
    for (const auto &q : queues) {
        if (q.serviceTime <= 0.0)
            panic("solveRoundRobin: non-positive service time");
        if (!q.closedLoop && q.arrivalRate < 0.0)
            panic("solveRoundRobin: negative arrival rate");
    }

    bool any_closed = false;
    for (const auto &q : queues)
        any_closed |= q.closedLoop;

    // Underloaded, no closed-loop sources: everyone gets its offered
    // rate and the engine idles part of the time.
    double offered = 0.0;
    for (const auto &q : queues)
        if (!q.closedLoop)
            offered += q.arrivalRate * q.serviceTime;
    if (!any_closed && offered <= 1.0) {
        for (std::size_t i = 0; i < queues.size(); ++i) {
            out[i].throughput = queues[i].arrivalRate;
            out[i].backlogged = false;
        }
    } else {
        // Max-min fair completion rate r: round-robin over backlogged
        // queues serves each at the same request rate; open queues
        // below r keep their offered rate. r solves util(r) = 1.
        double hi = 0.0;
        for (const auto &q : queues)
            hi = std::max(hi, 1.0 / q.serviceTime);
        double lo = 0.0;
        for (int iter = 0; iter < 100; ++iter) {
            double mid = 0.5 * (lo + hi);
            if (utilisationAt(queues, mid) < 1.0)
                lo = mid;
            else
                hi = mid;
        }
        double r = 0.5 * (lo + hi);
        for (std::size_t i = 0; i < queues.size(); ++i) {
            const auto &q = queues[i];
            if (q.closedLoop || q.arrivalRate >= r) {
                out[i].throughput = r;
                out[i].backlogged = true;
            } else {
                out[i].throughput = q.arrivalRate;
                out[i].backlogged = false;
            }
        }
    }

    // Sojourn times: a backlogged (depth-1 closed-loop) submitter sees
    // one full round per request; an open queue sees its service time
    // inflated by total server utilisation (processor-sharing-like),
    // which diverges as the engine saturates — so synchronous
    // (run-to-completion) submitters self-limit below capacity.
    double util = 0.0;
    for (std::size_t i = 0; i < queues.size(); ++i)
        util += out[i].throughput * queues[i].serviceTime;
    util = std::min(util, 0.95);
    for (std::size_t i = 0; i < queues.size(); ++i) {
        if (out[i].backlogged && out[i].throughput > 0.0) {
            out[i].sojournTime = 1.0 / out[i].throughput;
        } else {
            out[i].sojournTime = queues[i].serviceTime /
                                 (1.0 - util);
        }
    }
    return out;
}

} // namespace tomur::hw
