#include "hw/cache.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace tomur::hw {

double
missRatioAt(const CacheWorkload &w, double occupancy_bytes,
            double miss_floor)
{
    if (w.wssBytes <= 0.0)
        return miss_floor;
    double coverage = std::min(1.0, occupancy_bytes / w.wssBytes);
    double m = 1.0 - w.reuse * coverage;
    return std::max(miss_floor, m);
}

std::vector<CacheShare>
solveCacheSharing(double llc_bytes, double miss_floor,
                  const std::vector<CacheWorkload> &workloads)
{
    if (llc_bytes <= 0.0 || miss_floor <= 0.0)
        panic("solveCacheSharing: bad configuration");
    const std::size_t n = workloads.size();
    std::vector<CacheShare> out(n);
    if (n == 0)
        return out;

    // Total demand fits: everyone holds their full working set.
    double total_wss = 0.0;
    for (const auto &w : workloads)
        total_wss += w.wssBytes;
    if (total_wss <= llc_bytes) {
        for (std::size_t i = 0; i < n; ++i) {
            out[i].occupancyBytes = workloads[i].wssBytes;
            out[i].missRatio =
                missRatioAt(workloads[i], workloads[i].wssBytes,
                            miss_floor);
        }
        return out;
    }

    // Under LRU, steady-state occupancy is proportional to insertion
    // rate: occ_i = lambda * A_i * m_i(occ_i), capped at WSS, where
    // lambda (bytes of residency bought per insertion/s) is a shared
    // "price" fixed by the capacity constraint sum(occ) = C.
    //
    // Per workload, occ_i(lambda) has a closed form and is continuous
    // and non-decreasing in lambda, so bisection on lambda finds the
    // unique fixed point (no damped iteration, no multi-stability).
    auto occAt = [&](const CacheWorkload &w, double lambda) {
        if (w.wssBytes <= 0.0 || w.accessRate <= 0.0)
            return 0.0;
        double la = lambda * w.accessRate;
        double occ;
        if (w.reuse <= 0.0) {
            occ = la; // pure streaming: m = 1 regardless
        } else {
            // Unsaturated branch: occ = la * (1 - reuse*occ/wss)
            //   => occ = la * wss / (wss + la * reuse).
            occ = la * w.wssBytes / (w.wssBytes + la * w.reuse);
            // Once the miss floor binds, insertions stop falling.
            double m = 1.0 - w.reuse * occ / w.wssBytes;
            if (m < miss_floor)
                occ = la * miss_floor;
        }
        return std::min(occ, w.wssBytes);
    };

    double lo = 0.0;
    double hi = 1.0;
    auto totalOcc = [&](double lambda) {
        double s = 0.0;
        for (const auto &w : workloads)
            s += occAt(w, lambda);
        return s;
    };
    // Expand hi until demand covers capacity (total WSS > C, so a
    // finite price always exists unless nobody accesses the cache).
    for (int i = 0; i < 200 && totalOcc(hi) < llc_bytes; ++i)
        hi *= 2.0;
    if (totalOcc(hi) < llc_bytes) {
        // Degenerate: no active accessors; split by WSS.
        for (std::size_t i = 0; i < n; ++i) {
            double occ = llc_bytes * workloads[i].wssBytes /
                         total_wss;
            out[i].occupancyBytes =
                std::min(occ, workloads[i].wssBytes);
            out[i].missRatio = missRatioAt(
                workloads[i], out[i].occupancyBytes, miss_floor);
        }
        return out;
    }
    for (int iter = 0; iter < 100; ++iter) {
        double mid = 0.5 * (lo + hi);
        if (totalOcc(mid) < llc_bytes)
            lo = mid;
        else
            hi = mid;
    }
    double lambda = 0.5 * (lo + hi);

    for (std::size_t i = 0; i < n; ++i) {
        out[i].occupancyBytes = occAt(workloads[i], lambda);
        out[i].missRatio = missRatioAt(
            workloads[i], out[i].occupancyBytes, miss_floor);
    }
    return out;
}

} // namespace tomur::hw
