/**
 * @file
 * Performance counters (Table 13 of the paper): the feature vector
 * SLOMO and Tomur's memory model consume. The testbed emits one
 * PerfCounters per running NF; a competitor set's contention level is
 * the aggregate of the competitors' counters, as in SLOMO.
 */

#ifndef TOMUR_HW_COUNTERS_HH
#define TOMUR_HW_COUNTERS_HH

#include <string>
#include <vector>

namespace tomur::hw {

/** The 7 counters of Table 13. Rates are per second. */
struct PerfCounters
{
    double ipc = 0.0;          ///< instructions per cycle
    double instrRetired = 0.0; ///< IRT: instructions retired /s
    double l2ReadRate = 0.0;   ///< L2CRD: L2 data cache reads /s
    double l2WriteRate = 0.0;  ///< L2CWR: L2 data cache writes /s
    double memReadRate = 0.0;  ///< MEMRD: DRAM reads /s
    double memWriteRate = 0.0; ///< MEMWR: DRAM writes /s
    double wssBytes = 0.0;     ///< WSS: working set size

    /** Feature order used across all models. */
    static const std::vector<std::string> &featureNames();

    /** Convert to the model feature vector (featureNames() order). */
    std::vector<double> toVector() const;

    /**
     * Aggregate contention level of a competitor set: rates and WSS
     * add; IPC sums as combined pressure (as SLOMO aggregates
     * competitor counters).
     */
    PerfCounters operator+(const PerfCounters &o) const;
    PerfCounters &operator+=(const PerfCounters &o);

    /** Cache access rate (reads + writes), the paper's CAR metric. */
    double cacheAccessRate() const
    {
        return l2ReadRate + l2WriteRate;
    }
};

} // namespace tomur::hw

#endif // TOMUR_HW_COUNTERS_HH
