#include "hw/counters.hh"

namespace tomur::hw {

const std::vector<std::string> &
PerfCounters::featureNames()
{
    static const std::vector<std::string> names = {
        "IPC", "IRT", "L2CRD", "L2CWR", "MEMRD", "MEMWR", "WSS",
    };
    return names;
}

std::vector<double>
PerfCounters::toVector() const
{
    return {ipc,         instrRetired, l2ReadRate, l2WriteRate,
            memReadRate, memWriteRate, wssBytes};
}

PerfCounters
PerfCounters::operator+(const PerfCounters &o) const
{
    PerfCounters r = *this;
    r += o;
    return r;
}

PerfCounters &
PerfCounters::operator+=(const PerfCounters &o)
{
    ipc += o.ipc;
    instrRetired += o.instrRetired;
    l2ReadRate += o.l2ReadRate;
    l2WriteRate += o.l2WriteRate;
    memReadRate += o.memReadRate;
    memWriteRate += o.memWriteRate;
    wssBytes += o.wssBytes;
    return *this;
}

} // namespace tomur::hw
