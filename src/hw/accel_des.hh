/**
 * @file
 * Discrete-event simulation of the round-robin accelerator queue
 * system. Serves as ground truth for validating the analytic fluid
 * solver in accel.hh (see tests and bench/ablation_models).
 */

#ifndef TOMUR_HW_ACCEL_DES_HH
#define TOMUR_HW_ACCEL_DES_HH

#include <cstdint>
#include <vector>

#include "hw/accel.hh"

namespace tomur::hw {

/** DES measurement for one queue. */
struct DesQueueStats
{
    std::uint64_t completions = 0;
    double throughput = 0.0;   ///< completions / simulated duration
    double meanSojourn = 0.0;  ///< mean request sojourn time (s)
};

/** DES options. */
struct DesOptions
{
    double duration = 1.0;        ///< simulated seconds
    double warmup = 0.05;         ///< discard completions before this
    bool exponentialService = false;
    std::uint64_t seed = 1;
};

/**
 * Event-driven simulation: a single server visits queues in cyclic
 * order, serving one request per non-empty queue and skipping empty
 * ones. Open queues receive deterministic arrivals at their offered
 * rate; closed-loop queues resubmit immediately on completion
 * (depth 1).
 */
std::vector<DesQueueStats>
simulateRoundRobin(const std::vector<AccelQueue> &queues,
                   const DesOptions &opts = {});

} // namespace tomur::hw

#endif // TOMUR_HW_ACCEL_DES_HH
