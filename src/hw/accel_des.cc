#include "hw/accel_des.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "common/logging.hh"
#include "common/rng.hh"

namespace tomur::hw {

std::vector<DesQueueStats>
simulateRoundRobin(const std::vector<AccelQueue> &queues,
                   const DesOptions &opts)
{
    const std::size_t n = queues.size();
    std::vector<DesQueueStats> out(n);
    if (n == 0)
        return out;

    Rng rng(opts.seed);
    auto serviceSample = [&](std::size_t q) {
        double s = queues[q].serviceTime;
        if (opts.exponentialService) {
            double u;
            do {
                u = rng.uniform();
            } while (u <= 1e-12);
            return -s * std::log(u);
        }
        return s;
    };

    // Pending request arrival times per queue.
    std::vector<std::deque<double>> pending(n);
    std::vector<double> next_arrival(
        n, std::numeric_limits<double>::infinity());
    for (std::size_t q = 0; q < n; ++q) {
        if (queues[q].closedLoop) {
            pending[q].push_back(0.0);
        } else if (queues[q].arrivalRate > 0.0) {
            // Stagger first arrivals to avoid lock-step artifacts.
            next_arrival[q] =
                rng.uniform() / queues[q].arrivalRate;
        }
    }

    std::vector<double> sojourn_sum(n, 0.0);
    std::vector<std::uint64_t> completions(n, 0);

    double now = 0.0;
    std::size_t rr = 0;
    while (now < opts.duration) {
        // Deliver due open-loop arrivals.
        for (std::size_t q = 0; q < n; ++q) {
            while (next_arrival[q] <= now) {
                pending[q].push_back(next_arrival[q]);
                next_arrival[q] += 1.0 / queues[q].arrivalRate;
            }
        }

        // Find the next non-empty queue in cyclic order.
        std::size_t chosen = n;
        for (std::size_t k = 0; k < n; ++k) {
            std::size_t q = (rr + k) % n;
            if (!pending[q].empty()) {
                chosen = q;
                break;
            }
        }

        if (chosen == n) {
            // Idle: jump to the earliest future arrival.
            double t = std::numeric_limits<double>::infinity();
            for (std::size_t q = 0; q < n; ++q)
                t = std::min(t, next_arrival[q]);
            if (!std::isfinite(t))
                break; // nothing will ever arrive
            now = t;
            continue;
        }

        double arrived = pending[chosen].front();
        pending[chosen].pop_front();
        double done = now + serviceSample(chosen);
        if (done >= opts.warmup) {
            ++completions[chosen];
            sojourn_sum[chosen] += done - arrived;
        }
        now = done;
        if (queues[chosen].closedLoop)
            pending[chosen].push_back(now); // depth-1 resubmit
        rr = (chosen + 1) % n;
    }

    double measured = opts.duration - opts.warmup;
    if (measured <= 0.0)
        panic("simulateRoundRobin: warmup >= duration");
    for (std::size_t q = 0; q < n; ++q) {
        out[q].completions = completions[q];
        out[q].throughput = completions[q] / measured;
        out[q].meanSojourn = completions[q]
            ? sojourn_sum[q] / completions[q] : 0.0;
    }
    return out;
}

} // namespace tomur::hw
