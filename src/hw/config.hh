/**
 * @file
 * SmartNIC hardware configuration.
 *
 * Parameters are calibrated to public BlueField-2 specifications
 * (8x ARMv8 A72 @ 2.5 GHz, 6 MB L3, 16 GB DDR4, regex + compression
 * accelerators) and a Pensando-like second configuration used for the
 * generalisation experiment (Table 9).
 */

#ifndef TOMUR_HW_CONFIG_HH
#define TOMUR_HW_CONFIG_HH

#include <cstdint>
#include <string>

namespace tomur::hw {

/** Kinds of onboard hardware accelerators. */
enum class AccelKind
{
    Regex,
    Compression,
    Crypto,
};

/** Number of accelerator kinds (array sizing). */
constexpr int numAccelKinds = 3;

/** Accelerator name for reports. */
const char *accelName(AccelKind kind);

/**
 * One accelerator engine's service-time parameters. A request over B
 * payload bytes producing M matches (regex) costs
 * setupTime + B / bytesPerSec + M * perMatchTime seconds.
 */
struct AccelConfig
{
    bool present = false;
    double setupTime = 0.0;    ///< per-request fixed overhead (s)
    double bytesPerSec = 0.0;  ///< streaming scan/compress rate
    double perMatchTime = 0.0; ///< extra time per reported match (s)
};

/** Whole-NIC configuration. */
struct NicConfig
{
    std::string name;
    int cores = 8;
    double coreHz = 2.5e9;
    double baseIpc = 1.2;       ///< instructions per cycle, no stalls

    double llcBytes = 6.0 * 1024 * 1024;
    double cacheLineBytes = 64;
    double llcHitTime = 30e-9;  ///< LLC hit latency (s)
    double dramTime = 90e-9;    ///< uncontended DRAM access (s)
    double dramPeakBytesPerSec = 17e9;
    double missFloor = 0.02;    ///< compulsory miss floor

    double nicLineRateBytesPerSec = 2 * 12.5e9; ///< dual 100 GbE

    AccelConfig accel[numAccelKinds];

    const AccelConfig &
    accelerator(AccelKind kind) const
    {
        return accel[static_cast<int>(kind)];
    }
};

/** NVIDIA BlueField-2-like configuration (the paper's main testbed). */
NicConfig blueField2();

/** AMD Pensando-like configuration (the paper's §8 generalisation). */
NicConfig pensando();

} // namespace tomur::hw

#endif // TOMUR_HW_CONFIG_HH
