/**
 * @file
 * Accelerator queue system with round-robin scheduling.
 *
 * NFs interact with onboard accelerators through per-NF request
 * queues served round-robin (one request per non-empty queue per
 * cycle), as the BlueField regex driver does [9]. The analytic solver
 * computes each queue's equilibrium throughput and request sojourn
 * time in a fluid model; accel_des.hh provides a discrete-event
 * simulation of the same system used to validate the solver.
 */

#ifndef TOMUR_HW_ACCEL_HH
#define TOMUR_HW_ACCEL_HH

#include <vector>

namespace tomur::hw {

/** One request queue attached to an accelerator engine. */
struct AccelQueue
{
    double serviceTime = 0.0; ///< mean per-request service time (s)
    /**
     * Offered request arrival rate (req/s). Ignored when closedLoop
     * is set.
     */
    double arrivalRate = 0.0;
    /**
     * Closed-loop source: the submitter always has a request ready
     * (an NF driven at its maximum rate), so the queue is backlogged
     * whenever the engine can serve it.
     */
    bool closedLoop = false;
};

/** Solver output for one queue. */
struct AccelQueueResult
{
    double throughput = 0.0;  ///< completed requests per second
    double sojournTime = 0.0; ///< mean queueing + service time (s)
    bool backlogged = false;  ///< queue never runs empty
};

/**
 * Solve the round-robin fluid equilibrium.
 *
 * Closed-loop queues are always backlogged. An open queue becomes
 * backlogged when its offered rate exceeds the fair round-robin share
 * it would receive; the solver finds the consistent backlogged set by
 * iterated water-filling. When any queue is backlogged the engine is
 * fully utilised and each backlogged queue completes one request per
 * round (round length = total busy time of all queues).
 */
std::vector<AccelQueueResult>
solveRoundRobin(const std::vector<AccelQueue> &queues);

} // namespace tomur::hw

#endif // TOMUR_HW_ACCEL_HH
