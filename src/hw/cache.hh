/**
 * @file
 * Shared last-level-cache contention model.
 *
 * Under LRU, a workload's steady-state occupancy is proportional to
 * its line-insertion rate (access rate x miss ratio), capped at its
 * working-set size; its miss ratio in turn falls with occupancy.
 * solveCacheSharing() computes the coupled fixed point. The model
 * reproduces the two regimes the paper measures on BlueField-2
 * (Appendix B, Fig. 9): below the LLC capacity the competitor's WSS
 * dominates, above it the competitor's access rate dominates.
 */

#ifndef TOMUR_HW_CACHE_HH
#define TOMUR_HW_CACHE_HH

#include <vector>

namespace tomur::hw {

/** One workload's memory behaviour as seen by the LLC. */
struct CacheWorkload
{
    double wssBytes = 0.0;   ///< bytes of distinct data touched
    double accessRate = 0.0; ///< LLC accesses per second
    /**
     * Fraction of accesses with temporal reuse. 1.0 models random
     * reuse over the working set (hash tables); near 0 models
     * streaming (no reuse regardless of occupancy).
     */
    double reuse = 1.0;
};

/** Result for one workload. */
struct CacheShare
{
    double occupancyBytes = 0.0;
    double missRatio = 1.0;
};

/**
 * Solve the cache-sharing fixed point.
 *
 * @param llc_bytes total LLC capacity
 * @param miss_floor compulsory miss floor (> 0)
 * @param workloads per-workload demands
 * @return per-workload occupancy and miss ratio, index-aligned
 */
std::vector<CacheShare>
solveCacheSharing(double llc_bytes, double miss_floor,
                  const std::vector<CacheWorkload> &workloads);

/**
 * Miss ratio of a workload with the given occupancy:
 * 1 - reuse * min(1, occupancy / wss), floored at miss_floor.
 */
double missRatioAt(const CacheWorkload &w, double occupancy_bytes,
                   double miss_floor);

} // namespace tomur::hw

#endif // TOMUR_HW_CACHE_HH
