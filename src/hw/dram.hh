/**
 * @file
 * DRAM bandwidth contention: a convex latency inflation factor as
 * aggregate miss traffic approaches the effective peak bandwidth.
 */

#ifndef TOMUR_HW_DRAM_HH
#define TOMUR_HW_DRAM_HH

namespace tomur::hw {

/**
 * Latency multiplier for a DRAM access when the memory controller
 * carries `demand_bytes_per_sec` of traffic against a peak of
 * `peak_bytes_per_sec`. Returns 1 at zero load and grows as
 * 1 + k * u^2 / (1 - u) with utilisation capped below 1, so the
 * closed-loop testbed always finds an equilibrium.
 */
double dramLatencyFactor(double demand_bytes_per_sec,
                         double peak_bytes_per_sec);

} // namespace tomur::hw

#endif // TOMUR_HW_DRAM_HH
