#include "hw/config.hh"

#include "common/logging.hh"

namespace tomur::hw {

const char *
accelName(AccelKind kind)
{
    switch (kind) {
      case AccelKind::Regex:
        return "regex";
      case AccelKind::Compression:
        return "compression";
      case AccelKind::Crypto:
        return "crypto";
    }
    panic("accelName: bad kind");
}

NicConfig
blueField2()
{
    NicConfig c;
    c.name = "bluefield2";
    c.cores = 8;
    c.coreHz = 2.5e9;
    c.baseIpc = 1.2;
    c.llcBytes = 6.0 * 1024 * 1024;
    c.cacheLineBytes = 64;
    c.llcHitTime = 30e-9;
    c.dramTime = 90e-9;
    c.dramPeakBytesPerSec = 4e9; // effective random-access bandwidth
    c.missFloor = 0.02;
    c.nicLineRateBytesPerSec = 2 * 12.5e9;

    AccelConfig regex;
    regex.present = true;
    regex.setupTime = 0.2e-6;
    regex.bytesPerSec = 8e9;
    regex.perMatchTime = 0.5e-6;
    c.accel[static_cast<int>(AccelKind::Regex)] = regex;

    AccelConfig comp;
    comp.present = true;
    comp.setupTime = 0.3e-6;
    comp.bytesPerSec = 4e9;
    comp.perMatchTime = 0.0;
    c.accel[static_cast<int>(AccelKind::Compression)] = comp;

    AccelConfig crypto;
    crypto.present = true;
    crypto.setupTime = 0.15e-6;
    crypto.bytesPerSec = 12e9;
    crypto.perMatchTime = 0.0;
    c.accel[static_cast<int>(AccelKind::Crypto)] = crypto;
    return c;
}

NicConfig
pensando()
{
    NicConfig c;
    c.name = "pensando";
    c.cores = 16;
    c.coreHz = 2.8e9;
    c.baseIpc = 1.4;
    c.llcBytes = 8.0 * 1024 * 1024;
    c.cacheLineBytes = 64;
    c.llcHitTime = 25e-9;
    c.dramTime = 80e-9;
    c.dramPeakBytesPerSec = 6e9;
    c.missFloor = 0.02;
    c.nicLineRateBytesPerSec = 2 * 12.5e9;

    AccelConfig regex;
    regex.present = true;
    regex.setupTime = 0.25e-6;
    regex.bytesPerSec = 10e9;
    regex.perMatchTime = 0.4e-6;
    c.accel[static_cast<int>(AccelKind::Regex)] = regex;

    AccelConfig comp;
    comp.present = false; // Pensando config models regex only (§8)
    c.accel[static_cast<int>(AccelKind::Compression)] = comp;
    c.accel[static_cast<int>(AccelKind::Crypto)] = AccelConfig{};
    return c;
}

} // namespace tomur::hw
