#include "tomur/monitor.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "common/logging.hh"
#include "common/serial.hh"
#include "common/strutil.hh"
#include "common/trace.hh"

namespace tomur::core {

namespace {

/** Histogram layout shared by the registry metric and the windowed
 *  percentiles (|relative error| 0.5% .. 256%). */
std::vector<double>
defaultErrorBounds()
{
    return Histogram::exponentialBounds(0.005, 2.0, 10);
}

const char *
kindMetricName(MonitorEventKind kind)
{
    switch (kind) {
      case MonitorEventKind::DriftDetected:
        return "tomur_monitor_drift_detected_total";
      case MonitorEventKind::AccuracyDegraded:
        return "tomur_monitor_accuracy_degraded_total";
      case MonitorEventKind::TrafficShift:
        return "tomur_monitor_traffic_shift_total";
      case MonitorEventKind::RecalibrationRecommended:
        return "tomur_monitor_recalibration_recommended_total";
      case MonitorEventKind::AccuracyRecovered:
        return "tomur_monitor_accuracy_recovered_total";
    }
    panic("kindMetricName: bad event kind");
}

/** Bucket layout of the recovery-span histogram (1 .. 32768
 *  samples, exponential). */
std::vector<double>
recoveryBounds()
{
    return Histogram::exponentialBounds(1.0, 2.0, 16);
}

} // namespace

const char *
monitorEventName(MonitorEventKind kind)
{
    switch (kind) {
      case MonitorEventKind::DriftDetected:
        return "DRIFT_DETECTED";
      case MonitorEventKind::AccuracyDegraded:
        return "ACCURACY_DEGRADED";
      case MonitorEventKind::TrafficShift:
        return "TRAFFIC_SHIFT";
      case MonitorEventKind::RecalibrationRecommended:
        return "RECALIBRATION_RECOMMENDED";
      case MonitorEventKind::AccuracyRecovered:
        return "ACCURACY_RECOVERED";
    }
    panic("monitorEventName: bad event kind");
}

MonitorSample
makeMonitorSample(const std::string &deployment,
                  const traffic::TrafficProfile &p,
                  const PredictionBreakdown &breakdown,
                  double measured)
{
    auto a = attributeContention(breakdown);
    MonitorSample s;
    s.deployment = deployment;
    s.profile = p;
    s.predicted = breakdown.predicted;
    s.measured = measured;
    s.confidence = a.confidence;
    s.degraded = a.degraded;
    s.bottleneck = attributedResourceName(a.dominantResource);
    return s;
}

std::string
MonitorEvent::toJson() const
{
    std::string line = "{\"event\":\"";
    line += monitorEventName(kind);
    line += strf("\",\"sample\":%llu", (unsigned long long)sample);
    line += ",\"deployment\":\"" + jsonEscape(deployment) + "\"";
    line += ",\"value\":\"" + traceFormat(value) + "\"";
    line += ",\"threshold\":\"" + traceFormat(threshold) + "\"";
    line += ",\"detail\":\"" + jsonEscape(detail) + "\"}";
    return line;
}

std::string
MonitorSummary::toJson() const
{
    std::string line = strf(
        "{\"summary\":{\"samples\":%llu,\"invalid\":%llu,"
        "\"degraded\":%llu",
        (unsigned long long)samples, (unsigned long long)invalidSamples,
        (unsigned long long)degradedSamples);
    line += ",\"degraded_rate\":\"" + traceFormat(degradedRate) + "\"";
    line +=
        ",\"ewma_abs_error\":\"" + traceFormat(ewmaAbsError) + "\"";
    line +=
        ",\"mean_abs_error\":\"" + traceFormat(meanAbsError) + "\"";
    line += ",\"p50\":\"" + traceFormat(p50) + "\"";
    line += ",\"p90\":\"" + traceFormat(p90) + "\"";
    line += ",\"p99\":\"" + traceFormat(p99) + "\"";
    line += ",\"events\":{";
    for (int k = 0; k < numMonitorEventKinds; ++k) {
        if (k)
            line += ",";
        line += "\"";
        line +=
            monitorEventName(static_cast<MonitorEventKind>(k));
        line += strf("\":%llu", (unsigned long long)eventCounts[k]);
    }
    line += strf("},\"recovery\":{\"count\":%llu",
                 (unsigned long long)recoveries);
    line += ",\"mean\":\"" + traceFormat(meanRecoverySamples) + "\"";
    line += strf(",\"max\":%llu,\"open\":%d}",
                 (unsigned long long)maxRecoverySamples,
                 recoveryOpen ? 1 : 0);
    line += "}}";
    return line;
}

double
histogramQuantile(const Histogram::Snapshot &snap, double q)
{
    if (snap.count == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    double target = q * static_cast<double>(snap.count);
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < snap.counts.size(); ++b) {
        std::uint64_t prev = cum;
        cum += snap.counts[b];
        if (static_cast<double>(cum) < target)
            continue;
        if (snap.counts[b] == 0)
            continue;
        // +Inf bucket: no finite upper edge to interpolate towards.
        if (b >= snap.bounds.size())
            return snap.bounds.empty() ? 0.0 : snap.bounds.back();
        double lower = b == 0 ? 0.0 : snap.bounds[b - 1];
        double upper = snap.bounds[b];
        double frac = (target - static_cast<double>(prev)) /
                      static_cast<double>(snap.counts[b]);
        return lower + frac * (upper - lower);
    }
    return snap.bounds.empty() ? 0.0 : snap.bounds.back();
}

PredictionMonitor::PredictionMonitor(MonitorOptions opts)
    : opts_(std::move(opts)),
      mSamples_(metrics().counter("tomur_monitor_samples_total")),
      mInvalid_(
          metrics().counter("tomur_monitor_invalid_samples_total")),
      mDegraded_(
          metrics().counter("tomur_monitor_degraded_samples_total")),
      mEvents_(metrics().counter("tomur_monitor_events_total")),
      mEwma_(metrics().gauge("tomur_monitor_ewma_abs_error")),
      mErrHist_(metrics().histogram(
          "tomur_monitor_abs_rel_error",
          opts_.errorBounds.empty() ? defaultErrorBounds()
                                    : opts_.errorBounds)),
      mRecoveryHist_(metrics().histogram("tomur_recovery_samples",
                                         recoveryBounds()))
{
    if (opts_.errorBounds.empty())
        opts_.errorBounds = defaultErrorBounds();
    for (int k = 0; k < numMonitorEventKinds; ++k) {
        mKind_[k] = &metrics().counter(
            kindMetricName(static_cast<MonitorEventKind>(k)));
        lastFired_[k] = 0;
    }
    for (int a = 0; a < traffic::numAttributes; ++a)
        trafficBase_[a] = 0.0;
}

void
PredictionMonitor::resetDriftDetector()
{
    phN_ = 0;
    phMean_ = 0.0;
    phUp_ = phUpMin_ = 0.0;
    phDown_ = phDownMax_ = 0.0;
}

void
PredictionMonitor::fire(std::vector<MonitorEvent> &out,
                        MonitorEventKind kind,
                        const MonitorSample &s, double value,
                        double threshold, std::string detail)
{
    MonitorEvent ev;
    ev.kind = kind;
    ev.sample = samples_;
    ev.deployment = s.deployment;
    ev.value = value;
    ev.threshold = threshold;
    ev.detail = std::move(detail);

    lastFired_[static_cast<int>(kind)] = samples_;
    mEvents_.inc();
    mKind_[static_cast<int>(kind)]->inc();
    if (kind == MonitorEventKind::TrafficShift ||
        kind == MonitorEventKind::DriftDetected) {
        // A regime change opens (or restarts) the recovery window;
        // the span is measured from the latest regime change.
        recoveryOpen_ = true;
        recoveryStartSample_ = samples_;
        recoveryTriggerKind_ = static_cast<int>(kind);
        recoveryStable_ = 0;
    }
    if (tracer().enabled()) {
        tracePoint("monitor.event",
                   {{"kind", monitorEventName(kind)},
                    {"deployment", ev.deployment},
                    {"value", traceFormat(value)},
                    {"threshold", traceFormat(threshold)}},
                   static_cast<std::int64_t>(samples_));
    }
    if (sink_)
        *sink_ << ev.toJson() << "\n";
    events_.push_back(ev);
    out.push_back(std::move(ev));
}

std::vector<MonitorEvent>
PredictionMonitor::ingest(const MonitorSample &s)
{
    std::vector<MonitorEvent> fired;
    ++samples_;
    mSamples_.inc();
    if (s.degraded) {
        ++degraded_;
        mDegraded_.inc();
    }

    // Cooldown: a kind may fire when it never has, or when enough
    // samples passed since its last event.
    auto cool = [&](MonitorEventKind kind) {
        std::size_t last = lastFired_[static_cast<int>(kind)];
        return last == 0 || samples_ - last >= opts_.cooldown;
    };

    // ---- Traffic-shift detector (independent of the error path,
    // so a faulted measurement still advances the baselines) ----
    double attrs[traffic::numAttributes];
    for (int a = 0; a < traffic::numAttributes; ++a)
        attrs[a] =
            s.profile.attribute(static_cast<traffic::Attribute>(a));
    if (trafficSamples_ == 0) {
        for (int a = 0; a < traffic::numAttributes; ++a)
            trafficBase_[a] = attrs[a];
    } else {
        int worst = -1;
        double worst_delta = 0.0;
        for (int a = 0; a < traffic::numAttributes; ++a) {
            double base = trafficBase_[a];
            double delta = std::abs(attrs[a] - base) /
                           std::max(std::abs(base), 1e-9);
            if (delta > worst_delta) {
                worst_delta = delta;
                worst = a;
            }
        }
        if (samples_ > opts_.minSamples &&
            worst_delta > opts_.trafficShiftFactor &&
            cool(MonitorEventKind::TrafficShift)) {
            auto attr = static_cast<traffic::Attribute>(worst);
            fire(fired, MonitorEventKind::TrafficShift, s,
                 worst_delta, opts_.trafficShiftFactor,
                 strf("%s %s -> %s",
                      traffic::attributeName(attr),
                      traceFormat(trafficBase_[worst]).c_str(),
                      traceFormat(attrs[worst]).c_str()));
            // The new regime becomes the baseline immediately, so a
            // sustained shift fires once, not every sample.
            for (int a = 0; a < traffic::numAttributes; ++a)
                trafficBase_[a] = attrs[a];
        } else {
            for (int a = 0; a < traffic::numAttributes; ++a) {
                trafficBase_[a] += opts_.trafficAlpha *
                                   (attrs[a] - trafficBase_[a]);
            }
        }
    }
    ++trafficSamples_;

    // ---- Error path ----
    bool valid = std::isfinite(s.measured) && s.measured > 0.0 &&
                 std::isfinite(s.predicted);
    if (!valid) {
        ++invalid_;
        mInvalid_.inc();
        return fired;
    }
    double err = (s.measured - s.predicted) / s.measured;
    double abs_err = std::abs(err);
    mErrHist_.observe(abs_err);
    ewmaAbsErr_ = errorSamples_ == 0
                      ? abs_err
                      : ewmaAbsErr_ +
                            opts_.ewmaAlpha * (abs_err - ewmaAbsErr_);
    sumAbsErr_ += abs_err;
    ++errorSamples_;
    mEwma_.set(ewmaAbsErr_);
    window_.push_back(abs_err);
    while (window_.size() > opts_.window)
        window_.pop_front();

    // ---- Two-sided Page–Hinkley on the signed error ----
    ++phN_;
    phMean_ += (err - phMean_) / static_cast<double>(phN_);
    phUp_ += err - phMean_ - opts_.phDelta;
    phUpMin_ = std::min(phUpMin_, phUp_);
    phDown_ += err - phMean_ + opts_.phDelta;
    phDownMax_ = std::max(phDownMax_, phDown_);
    double ph_stat =
        std::max(phUp_ - phUpMin_, phDownMax_ - phDown_);
    bool drift_fired = false;
    if (samples_ > opts_.minSamples && ph_stat > opts_.phLambda &&
        cool(MonitorEventKind::DriftDetected)) {
        std::string detail =
            strf("signed-error level shifted (running mean %s)",
                 traceFormat(phMean_).c_str());
        if (!s.bottleneck.empty())
            detail += "; model blames " + s.bottleneck;
        fire(fired, MonitorEventKind::DriftDetected, s, ph_stat,
             opts_.phLambda, std::move(detail));
        ++driftsSinceRecal_;
        drift_fired = true;
        resetDriftDetector();
    }

    // ---- Accuracy threshold with hysteresis ----
    if (samples_ > opts_.minSamples) {
        if (!accuracyAlarm_ &&
            ewmaAbsErr_ > opts_.accuracyThreshold &&
            cool(MonitorEventKind::AccuracyDegraded)) {
            accuracyAlarm_ = true;
            fire(fired, MonitorEventKind::AccuracyDegraded, s,
                 ewmaAbsErr_, opts_.accuracyThreshold,
                 strf("EWMA |relative error| %s above %s",
                      traceFormat(ewmaAbsErr_).c_str(),
                      traceFormat(opts_.accuracyThreshold).c_str()));
        } else if (accuracyAlarm_ &&
                   ewmaAbsErr_ <
                       0.8 * opts_.accuracyThreshold) {
            accuracyAlarm_ = false;
        }
    }

    // ---- Recalibration recommendation: the model is both drifting
    // and inaccurate (or drifting repeatedly) ----
    if (drift_fired &&
        (accuracyAlarm_ || ewmaAbsErr_ > opts_.accuracyThreshold ||
         driftsSinceRecal_ >= 2) &&
        cool(MonitorEventKind::RecalibrationRecommended)) {
        std::string detail = "drift with degraded accuracy";
        if (!s.bottleneck.empty())
            detail += "; dominant resource " + s.bottleneck;
        fire(fired, MonitorEventKind::RecalibrationRecommended, s,
             ewmaAbsErr_, opts_.accuracyThreshold,
             std::move(detail));
        driftsSinceRecal_ = 0;
    }

    // ---- Recovery span: samples from the latest regime change
    // until the error EWMA holds below the recovered threshold. A
    // window opened this very sample cannot close yet (samples_ ==
    // recoveryStartSample_), and invalid samples never reach here,
    // so only valid post-change samples advance the stability run.
    if (recoveryOpen_ && samples_ > recoveryStartSample_) {
        double recovered =
            opts_.recoveredFactor * opts_.accuracyThreshold;
        if (ewmaAbsErr_ <= recovered) {
            ++recoveryStable_;
            if (recoveryStable_ >= opts_.recoveryStableSamples) {
                std::size_t span = samples_ - recoveryStartSample_;
                ++recoveries_;
                sumRecoverySamples_ += static_cast<double>(span);
                maxRecoverySamples_ =
                    std::max(maxRecoverySamples_, span);
                mRecoveryHist_.observe(static_cast<double>(span));
                fire(fired, MonitorEventKind::AccuracyRecovered, s,
                     static_cast<double>(span), recovered,
                     strf("%s at sample %llu recovered after %llu "
                          "samples",
                          monitorEventName(
                              static_cast<MonitorEventKind>(
                                  recoveryTriggerKind_)),
                          (unsigned long long)recoveryStartSample_,
                          (unsigned long long)span));
                recoveryOpen_ = false;
                recoveryStable_ = 0;
            }
        } else {
            recoveryStable_ = 0;
        }
    }
    return fired;
}

MonitorSummary
PredictionMonitor::summary() const
{
    MonitorSummary sum;
    sum.samples = samples_;
    sum.invalidSamples = invalid_;
    sum.degradedSamples = degraded_;
    sum.degradedRate =
        samples_ ? static_cast<double>(degraded_) /
                       static_cast<double>(samples_)
                 : 0.0;
    sum.ewmaAbsError = ewmaAbsErr_;
    sum.meanAbsError =
        errorSamples_ ? sumAbsErr_ /
                            static_cast<double>(errorSamples_)
                      : 0.0;
    if (!window_.empty()) {
        // Windowed percentiles through the telemetry Histogram: the
        // same bucket layout as the registry metric, rebuilt over
        // just the window.
        Histogram h(opts_.errorBounds);
        for (double e : window_)
            h.observe(e);
        auto snap = h.snapshot();
        sum.p50 = histogramQuantile(snap, 0.50);
        sum.p90 = histogramQuantile(snap, 0.90);
        sum.p99 = histogramQuantile(snap, 0.99);
    }
    for (const auto &ev : events_)
        ++sum.eventCounts[static_cast<int>(ev.kind)];
    sum.recoveries = recoveries_;
    sum.meanRecoverySamples =
        recoveries_ ? sumRecoverySamples_ /
                          static_cast<double>(recoveries_)
                    : 0.0;
    sum.maxRecoverySamples = maxRecoverySamples_;
    sum.recoveryOpen = recoveryOpen_;
    return sum;
}

void
PredictionMonitor::exportJsonl(std::ostream &out) const
{
    for (const auto &ev : events_)
        out << ev.toJson() << "\n";
    out << summary().toJson() << "\n";
}

namespace {

/** Read the remainder of the current line after a leading space
 *  (deployment/detail fields may contain spaces but no newlines). */
bool
readRestOfLine(std::istream &in, std::string *out)
{
    if (in.get() != ' ')
        return false;
    return static_cast<bool>(std::getline(in, *out));
}

} // namespace

void
PredictionMonitor::serialize(std::ostream &out) const
{
    auto d = [&](double v) {
        out << ' ';
        writeSerialDouble(out, v);
    };
    out << "monitor_state 2\n";
    out << "counts " << samples_ << ' ' << invalid_ << ' '
        << degraded_ << ' ' << errorSamples_ << ' '
        << trafficSamples_ << "\n";
    out << "ewma";
    d(ewmaAbsErr_);
    d(sumAbsErr_);
    out << ' ' << (accuracyAlarm_ ? 1 : 0) << "\n";
    out << "window " << window_.size();
    for (double v : window_)
        d(v);
    out << "\n";
    out << "ph " << phN_;
    d(phMean_);
    d(phUp_);
    d(phUpMin_);
    d(phDown_);
    d(phDownMax_);
    out << ' ' << driftsSinceRecal_ << "\n";
    out << "traffic";
    for (int a = 0; a < traffic::numAttributes; ++a)
        d(trafficBase_[a]);
    out << "\n";
    out << "cooldown";
    for (int k = 0; k < numMonitorEventKinds; ++k)
        out << ' ' << lastFired_[k];
    out << "\n";
    out << "recovery " << (recoveryOpen_ ? 1 : 0) << ' '
        << recoveryStartSample_ << ' ' << recoveryTriggerKind_
        << ' ' << recoveryStable_ << ' ' << recoveries_;
    d(sumRecoverySamples_);
    out << ' ' << maxRecoverySamples_ << "\n";
    out << "events " << events_.size() << "\n";
    for (const auto &ev : events_) {
        out << "event " << static_cast<int>(ev.kind) << ' '
            << ev.sample;
        d(ev.value);
        d(ev.threshold);
        out << "\n";
        out << "deployment " << ev.deployment << "\n";
        out << "detail " << ev.detail << "\n";
    }
}

Status
PredictionMonitor::restore(std::istream &in)
{
    auto bad = [](const char *section) {
        return Status::corruptData(
            strf("monitor state: unreadable %s section", section));
    };

    if (!expectToken(in, "monitor_state"))
        return bad("magic");
    int version = 0;
    in >> version;
    if (!in || version != 2) {
        return Status::corruptData(
            strf("monitor state: unsupported version %d", version));
    }

    std::size_t samples = 0, invalid = 0, degraded = 0,
                errorSamples = 0, trafficSamples = 0;
    if (!expectToken(in, "counts"))
        return bad("counts");
    in >> samples >> invalid >> degraded >> errorSamples >>
        trafficSamples;
    if (!in)
        return bad("counts");

    double ewma = 0.0, sumAbs = 0.0;
    int alarm = 0;
    if (!expectToken(in, "ewma"))
        return bad("ewma");
    in >> ewma >> sumAbs >> alarm;
    if (!in)
        return bad("ewma");

    std::size_t wn = 0;
    if (!expectToken(in, "window"))
        return bad("window");
    in >> wn;
    if (!in || wn > samples)
        return bad("window");
    std::deque<double> window;
    for (std::size_t i = 0; i < wn; ++i) {
        double v = 0.0;
        in >> v;
        if (!in)
            return bad("window");
        window.push_back(v);
    }

    std::size_t phN = 0, drifts = 0;
    double phMean = 0.0, phUp = 0.0, phUpMin = 0.0, phDown = 0.0,
           phDownMax = 0.0;
    if (!expectToken(in, "ph"))
        return bad("ph");
    in >> phN >> phMean >> phUp >> phUpMin >> phDown >> phDownMax >>
        drifts;
    if (!in)
        return bad("ph");

    double trafficBase[traffic::numAttributes];
    if (!expectToken(in, "traffic"))
        return bad("traffic");
    for (int a = 0; a < traffic::numAttributes; ++a) {
        in >> trafficBase[a];
        if (!in)
            return bad("traffic");
    }

    std::size_t lastFired[numMonitorEventKinds];
    if (!expectToken(in, "cooldown"))
        return bad("cooldown");
    for (int k = 0; k < numMonitorEventKinds; ++k) {
        in >> lastFired[k];
        if (!in)
            return bad("cooldown");
    }

    int recoveryOpen = 0, recoveryTrigger = 0;
    std::size_t recoveryStart = 0, recoveryStable = 0,
                recoveries = 0, maxRecovery = 0;
    double sumRecovery = 0.0;
    if (!expectToken(in, "recovery"))
        return bad("recovery");
    in >> recoveryOpen >> recoveryStart >> recoveryTrigger >>
        recoveryStable >> recoveries >> sumRecovery >> maxRecovery;
    if (!in || recoveryTrigger < 0 ||
        recoveryTrigger >= numMonitorEventKinds)
        return bad("recovery");

    std::size_t nEvents = 0;
    if (!expectToken(in, "events"))
        return bad("events");
    in >> nEvents;
    if (!in || nEvents > samples * numMonitorEventKinds)
        return bad("events");
    std::vector<MonitorEvent> events;
    events.reserve(nEvents);
    for (std::size_t i = 0; i < nEvents; ++i) {
        MonitorEvent ev;
        int kind = -1;
        if (!expectToken(in, "event"))
            return bad("event");
        in >> kind >> ev.sample >> ev.value >> ev.threshold;
        if (!in || kind < 0 || kind >= numMonitorEventKinds)
            return bad("event");
        ev.kind = static_cast<MonitorEventKind>(kind);
        if (!expectToken(in, "deployment") ||
            !readRestOfLine(in, &ev.deployment))
            return bad("event deployment");
        if (!expectToken(in, "detail") ||
            !readRestOfLine(in, &ev.detail))
            return bad("event detail");
        events.push_back(std::move(ev));
    }

    // Commit, then re-apply the observability side effects that a
    // fresh process would otherwise have lost.
    samples_ = samples;
    invalid_ = invalid;
    degraded_ = degraded;
    errorSamples_ = errorSamples;
    trafficSamples_ = trafficSamples;
    ewmaAbsErr_ = ewma;
    sumAbsErr_ = sumAbs;
    accuracyAlarm_ = alarm != 0;
    window_ = std::move(window);
    phN_ = phN;
    phMean_ = phMean;
    phUp_ = phUp;
    phUpMin_ = phUpMin;
    phDown_ = phDown;
    phDownMax_ = phDownMax;
    driftsSinceRecal_ = drifts;
    for (int a = 0; a < traffic::numAttributes; ++a)
        trafficBase_[a] = trafficBase[a];
    for (int k = 0; k < numMonitorEventKinds; ++k)
        lastFired_[k] = lastFired[k];
    recoveryOpen_ = recoveryOpen != 0;
    recoveryStartSample_ = recoveryStart;
    recoveryTriggerKind_ = recoveryTrigger;
    recoveryStable_ = recoveryStable;
    recoveries_ = recoveries;
    sumRecoverySamples_ = sumRecovery;
    maxRecoverySamples_ = maxRecovery;
    events_ = std::move(events);

    mSamples_.inc(samples_);
    mInvalid_.inc(invalid_);
    mDegraded_.inc(degraded_);
    mEvents_.inc(events_.size());
    for (const auto &ev : events_)
        mKind_[static_cast<int>(ev.kind)]->inc();
    if (errorSamples_ > 0)
        mEwma_.set(ewmaAbsErr_);
    return Status::ok();
}

// ---------------------------------------------------------------
// Schedule replay
// ---------------------------------------------------------------

namespace {

/** Sanity bounds on schedule values. Generous — they exist to reject
 *  garbage that happens to lex as a number, not to police realistic
 *  traffic, so a fuzzer can never smuggle an absurd profile (or a
 *  repeat count that melts the replay) through the parser. */
constexpr double kMaxScheduleFlows = 1e9;
constexpr double kMaxSchedulePacketSize = 1e6;
constexpr double kMaxScheduleMtbr = 1e12;
constexpr double kMaxScheduleRepeats = 1e6;

/** Strict full-token numeric parse: the whole token must be one
 *  finite number (no trailing junk, no partial reads). */
bool
parseScheduleNumber(const std::string &token, double *out)
{
    const char *begin = token.c_str();
    char *end = nullptr;
    double v = std::strtod(begin, &end);
    if (end == begin || *end != '\0' || !std::isfinite(v))
        return false;
    *out = v;
    return true;
}

} // namespace

Result<std::vector<ScheduleStep>>
parseSchedule(std::istream &in)
{
    std::vector<ScheduleStep> steps;
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream ss(line);
        std::vector<std::string> tokens;
        std::string tok;
        while (ss >> tok)
            tokens.push_back(tok);
        if (tokens.empty())
            continue; // blank / comment-only line
        if (tokens.size() < 3 || tokens.size() > 4) {
            return Status::invalidArgument(strf(
                "schedule line %d: expected "
                "\"flows size mtbr [repeats]\", found %zu field(s)",
                lineno, tokens.size()));
        }
        double fields[4] = {0.0, 0.0, 0.0, 1.0};
        static const char *const names[4] = {"flows", "size", "mtbr",
                                             "repeats"};
        for (std::size_t i = 0; i < tokens.size(); ++i) {
            if (!parseScheduleNumber(tokens[i], &fields[i])) {
                return Status::invalidArgument(strf(
                    "schedule line %d: %s field '%s' is not a "
                    "finite number",
                    lineno, names[i], tokens[i].c_str()));
            }
        }
        double flows = fields[0], size = fields[1],
               mtbr = fields[2], repeats = fields[3];
        auto rangeError = [&](const char *what, double lo,
                              double hi) {
            return Status::invalidArgument(
                strf("schedule line %d: %s out of range [%g, %g]",
                     lineno, what, lo, hi));
        };
        if (flows < 1.0 || flows > kMaxScheduleFlows)
            return rangeError("flows", 1.0, kMaxScheduleFlows);
        if (size < 1.0 || size > kMaxSchedulePacketSize)
            return rangeError("size", 1.0, kMaxSchedulePacketSize);
        if (mtbr < 0.0 || mtbr > kMaxScheduleMtbr)
            return rangeError("mtbr", 0.0, kMaxScheduleMtbr);
        if (repeats < 1.0 || repeats > kMaxScheduleRepeats)
            return rangeError("repeats", 1.0, kMaxScheduleRepeats);
        if (repeats != std::floor(repeats)) {
            return Status::invalidArgument(
                strf("schedule line %d: repeats must be an integer, "
                     "got '%s'",
                     lineno, tokens[3].c_str()));
        }
        ScheduleStep step;
        step.profile = traffic::TrafficProfile::defaults()
                           .withAttribute(
                               traffic::Attribute::FlowCount, flows)
                           .withAttribute(
                               traffic::Attribute::PacketSize, size)
                           .withAttribute(traffic::Attribute::Mtbr,
                                          mtbr);
        step.repeats = static_cast<int>(repeats);
        steps.push_back(step);
    }
    if (steps.empty())
        return Status::invalidArgument("schedule file has no steps");
    return steps;
}

std::vector<ScheduleStep>
defaultSchedule(const traffic::TrafficProfile &base)
{
    auto shifted = base.withAttribute(
        traffic::Attribute::FlowCount,
        4.0 * static_cast<double>(base.flowCount));
    return {{base, 60}, {shifted, 60}, {base, 40}};
}

std::vector<ScheduleStep>
toSchedule(const std::vector<traffic::SynthStep> &steps)
{
    std::vector<ScheduleStep> out;
    out.reserve(steps.size());
    for (const auto &s : steps)
        out.push_back({s.profile, s.repeats});
    return out;
}

ReplayResult
replaySchedule(ReplayContext &ctx,
               const std::vector<ScheduleStep> &schedule,
               PredictionMonitor &monitor, const ReplayOptions &opts)
{
    if (!ctx.trainer || !ctx.model || !ctx.nf || !ctx.soloBed)
        panic("replaySchedule: incomplete context");
    TraceSpan span("monitor.replay");
    span.field("label", ctx.label);
    span.field("steps", static_cast<std::uint64_t>(schedule.size()));

    // Resolve every step's workload up front (the trainer caches by
    // profile) and prewarm the equilibrium solves across the pool;
    // measurement and ingest then run serially in schedule order, so
    // the sample stream — and with it the event stream — is
    // width-invariant.
    std::vector<std::vector<framework::WorkloadProfile>> deployments;
    std::vector<std::vector<framework::WorkloadProfile>> solos;
    for (const auto &step : schedule) {
        const auto &w = ctx.trainer->workloadOf(*ctx.nf,
                                                step.profile);
        std::vector<framework::WorkloadProfile> deploy = {w};
        deploy.insert(deploy.end(), ctx.competitors.begin(),
                      ctx.competitors.end());
        deployments.push_back(deploy);
        solos.push_back({w});
    }
    ctx.soloBed->prewarm(solos);
    sim::Testbed &measure =
        ctx.measureBed ? static_cast<sim::Testbed &>(*ctx.measureBed)
                       : *ctx.soloBed;
    measure.prewarm(deployments);

    ReplayResult res;
    long sample = 0;
    for (std::size_t i = 0; i < schedule.size(); ++i) {
        const auto &step = schedule[i];
        const auto &w = deployments[i][0];
        double solo =
            ctx.soloBed->runSolo(w).truthThroughput;
        auto breakdown = ctx.model->predictDetailed(
            ctx.levels, step.profile, solo);
        for (int r = 0; r < step.repeats; ++r) {
            if (opts.biasAtSample >= 0 &&
                sample == opts.biasAtSample && ctx.measureBed) {
                auto cfg = ctx.measureBed->faultConfig();
                cfg.biasFactor = opts.biasFactor;
                ctx.measureBed->setConfig(cfg);
            }
            auto ms = measure.run(deployments[i]);
            // A faulted batch may come back short or reordered;
            // find the target by name and let a lost reading take
            // the monitor's invalid-sample path.
            double measured =
                std::numeric_limits<double>::quiet_NaN();
            for (const auto &m : ms) {
                if (m.nfName == w.nfName) {
                    measured = m.throughput;
                    break;
                }
            }
            monitor.ingest(makeMonitorSample(
                ctx.label, step.profile, breakdown, measured));
            ++sample;
        }
    }
    res.samples = static_cast<std::size_t>(sample);
    res.events = monitor.events().size();
    res.summary = monitor.summary();
    return res;
}

} // namespace tomur::core
