#include "tomur/contention.hh"

namespace tomur::core {

hw::PerfCounters
aggregateCounters(const std::vector<ContentionLevel> &competitors)
{
    hw::PerfCounters agg;
    for (const auto &c : competitors)
        agg += c.counters;
    return agg;
}

std::vector<double>
memoryFeatures(const std::vector<ContentionLevel> &competitors,
               const traffic::TrafficProfile &profile)
{
    std::vector<double> v = aggregateCounters(competitors).toVector();
    for (double a : profile.toVector())
        v.push_back(a);
    return v;
}

std::vector<std::string>
memoryFeatureNames()
{
    std::vector<std::string> names = hw::PerfCounters::featureNames();
    for (int a = 0; a < traffic::numAttributes; ++a)
        names.push_back(
            traffic::attributeName(static_cast<traffic::Attribute>(a)));
    return names;
}

} // namespace tomur::core
