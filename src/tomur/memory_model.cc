#include "tomur/memory_model.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "common/threadpool.hh"

namespace tomur::core {

MemoryModel::MemoryModel(MemoryModelOptions opts) : opts_(opts)
{
    if (opts_.seeds < 1)
        fatal("MemoryModel: need at least one seed");
}

std::vector<std::string>
MemoryModel::featureNames() const
{
    if (opts_.trafficAware)
        return memoryFeatureNames();
    return hw::PerfCounters::featureNames();
}

std::vector<double>
MemoryModel::featuresFor(
    const std::vector<ContentionLevel> &competitors,
    const traffic::TrafficProfile &profile) const
{
    if (opts_.trafficAware)
        return memoryFeatures(competitors, profile);
    return aggregateCounters(competitors).toVector();
}

Status
MemoryModel::fit(const ml::Dataset &data)
{
    if (data.size() == 0) {
        return Status::invalidArgument(
            "MemoryModel::fit: empty training set (every profiling "
            "sample was rejected or lost)");
    }
    for (std::size_t r = 0; r < data.size(); ++r) {
        if (!std::isfinite(data.labels()[r])) {
            return Status::invalidArgument(strf(
                "MemoryModel::fit: non-finite label in row %zu", r));
        }
        for (double v : data.row(r)) {
            if (!std::isfinite(v)) {
                return Status::invalidArgument(strf(
                    "MemoryModel::fit: non-finite feature in row %zu",
                    r));
            }
        }
    }
    // Ensemble members are independent given their seeds: fit them
    // across the pool, collected in seed order.
    models_ = parallelMap(
        static_cast<std::size_t>(opts_.seeds), [&](std::size_t s) {
            ml::GbrParams p = opts_.gbr;
            p.seed = opts_.gbr.seed + static_cast<std::uint64_t>(s);
            ml::GradientBoostingRegressor gbr(p);
            gbr.fit(data);
            return gbr;
        });
    fitted_ = true;
    return Status::ok();
}

double
MemoryModel::predictRow(const std::vector<double> &features) const
{
    if (!fitted_)
        panic("MemoryModel::predict before fit");
    double sum = 0.0;
    for (const auto &m : models_)
        sum += m.predict(features);
    return sum / models_.size();
}

double
MemoryModel::predict(const std::vector<ContentionLevel> &competitors,
                     const traffic::TrafficProfile &profile) const
{
    return predictRow(featuresFor(competitors, profile));
}

} // namespace tomur::core
