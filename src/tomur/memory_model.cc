#include "tomur/memory_model.hh"

#include <cmath>
#include <memory>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "common/threadpool.hh"

namespace tomur::core {

bool
operator==(const MemoryModelOptions &a, const MemoryModelOptions &b)
{
    return a.seeds == b.seeds && a.gbr == b.gbr &&
           a.trafficAware == b.trafficAware;
}

MemoryModel::MemoryModel(MemoryModelOptions opts) : opts_(opts)
{
    if (opts_.seeds < 1)
        fatal("MemoryModel: need at least one seed");
}

std::vector<std::string>
MemoryModel::featureNames() const
{
    if (opts_.trafficAware)
        return memoryFeatureNames();
    return hw::PerfCounters::featureNames();
}

std::vector<double>
MemoryModel::featuresFor(
    const std::vector<ContentionLevel> &competitors,
    const traffic::TrafficProfile &profile) const
{
    if (opts_.trafficAware)
        return memoryFeatures(competitors, profile);
    return aggregateCounters(competitors).toVector();
}

Status
MemoryModel::fit(const ml::Dataset &data)
{
    if (data.size() == 0) {
        return Status::invalidArgument(
            "MemoryModel::fit: empty training set (every profiling "
            "sample was rejected or lost)");
    }
    for (std::size_t r = 0; r < data.size(); ++r) {
        if (!std::isfinite(data.labels()[r])) {
            return Status::invalidArgument(strf(
                "MemoryModel::fit: non-finite label in row %zu", r));
        }
        for (double v : data.row(r)) {
            if (!std::isfinite(v)) {
                return Status::invalidArgument(strf(
                    "MemoryModel::fit: non-finite feature in row %zu",
                    r));
            }
        }
    }
    // Bin the shared feature matrix once for the whole ensemble:
    // the members differ only in their subsample seed.
    std::shared_ptr<const ml::BinnedMatrix> binned;
    if (opts_.seeds > 1) {
        binned = std::make_shared<const ml::BinnedMatrix>(
            ml::BinnedMatrix::build(data));
    }
    // Ensemble members are independent given their seeds: fit them
    // across the pool, collected in seed order. A member fitted by
    // an earlier call warm-starts (same params -> same object; the
    // regressor's fingerprints decide what survives), which never
    // changes its result — only what work the refit skips.
    models_ = parallelMap(
        static_cast<std::size_t>(opts_.seeds), [&](std::size_t s) {
            ml::GbrParams p = opts_.gbr;
            p.seed = opts_.gbr.seed + static_cast<std::uint64_t>(s);
            ml::GradientBoostingRegressor gbr =
                s < models_.size() && models_[s].params() == p
                    ? std::move(models_[s])
                    : ml::GradientBoostingRegressor(p);
            gbr.fit(data, binned);
            return gbr;
        });
    fitted_ = true;
    return Status::ok();
}

double
MemoryModel::predictRow(const std::vector<double> &features) const
{
    if (!fitted_)
        panic("MemoryModel::predict before fit");
    double sum = 0.0;
    for (const auto &m : models_)
        sum += m.predict(features);
    return sum / models_.size();
}

double
MemoryModel::predict(const std::vector<ContentionLevel> &competitors,
                     const traffic::TrafficProfile &profile) const
{
    return predictRow(featuresFor(competitors, profile));
}

} // namespace tomur::core
