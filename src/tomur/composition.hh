/**
 * @file
 * Execution-pattern-based composition (§4.2, Eq. 7) and the
 * baseline sum/min compositions (§2.2), plus black-box execution-
 * pattern detection.
 */

#ifndef TOMUR_TOMUR_COMPOSITION_HH
#define TOMUR_TOMUR_COMPOSITION_HH

#include <vector>

#include "framework/nf.hh"

namespace tomur::core {

/** Composition strategies for combining per-resource drops. */
enum class CompositionKind
{
    Sum,              ///< strawman: add up the drops [32, 59]
    Min,              ///< strawman: take the largest drop [41, 52]
    ExecutionPattern, ///< Tomur: Eq. 7
};

/**
 * Compose per-resource throughput drops into an end-to-end
 * prediction (Eq. 7 for ExecutionPattern).
 *
 * @param kind strategy to apply
 * @param pattern the NF's execution pattern (ExecutionPattern only)
 * @param t_solo solo throughput under the target traffic
 * @param drops per-resource throughput drops dT_k = T_solo - T_k
 * @return predicted end-to-end throughput, clamped to [0, t_solo]
 */
double compose(CompositionKind kind,
               framework::ExecutionPattern pattern, double t_solo,
               const std::vector<double> &drops);

/**
 * Detect the execution pattern without source access (§4.2): given
 * joint-contention observations with their per-resource drops, pick
 * the pattern whose Eq. 7 branch fits the measured throughput best.
 */
struct PatternObservation
{
    double soloThroughput = 0.0;
    double measuredThroughput = 0.0;
    std::vector<double> drops;
};

framework::ExecutionPattern
detectPattern(const std::vector<PatternObservation> &observations);

} // namespace tomur::core

#endif // TOMUR_TOMUR_COMPOSITION_HH
