/**
 * @file
 * White-box queueing model for hardware accelerators (§4.1.1, §5.1.1).
 *
 * Calibrated from equilibrium co-runs with the synthetic accelerator
 * bench (no source access, no hardware counters needed): solving
 * Eq. 2 at two bench service times yields the NF's effective queue
 * count n and per-request time t. Traffic awareness follows Eq. 5
 * generalised to both payload-dependent attributes: a request over a
 * payload of p bytes at match density m (matches/MB) costs
 *
 *     t(p, m) = t0 + b * p + a * (m * p / 1e6),
 *
 * i.e. base cost, per-byte scan cost, and per-match cost — the same
 * shape as the engine's service law, recovered by linear regression
 * over calibration runs. Prediction evaluates the round-robin fluid
 * equilibrium over the calibrated parameters (the closed forms of
 * Eq. 2/6/8 are special cases).
 */

#ifndef TOMUR_TOMUR_ACCEL_MODEL_HH
#define TOMUR_TOMUR_ACCEL_MODEL_HH

#include <iosfwd>
#include <vector>

#include "common/status.hh"
#include "ml/linreg.hh"
#include "tomur/contention.hh"

namespace tomur::core {

/** One calibration observation. */
struct AccelCalibrationPoint
{
    double benchServiceTime = 0.0;   ///< known bench t_b (1 queue)
    double measuredThroughput = 0.0; ///< NF equilibrium pps
    double mtbr = 0.0;               ///< target traffic MTBR
    double payloadBytes = 0.0;       ///< target payload bytes/packet
};

/**
 * Calibrated accelerator model for one NF on one accelerator kind.
 */
class AccelQueueModel
{
  public:
    /**
     * Fit from equilibrium observations. Needs >= 2 distinct bench
     * service times at some traffic point to identify n, and varied
     * (mtbr, payload) coverage to identify the traffic law; with a
     * single traffic point the model degrades to fixed-traffic.
     * Returns an error (leaving the model uncalibrated) when the
     * points cannot identify the model — too few, non-positive, or
     * degenerate (e.g. collected under measurement faults) — so the
     * trainer can degrade gracefully instead of aborting.
     */
    Status calibrate(const std::vector<AccelCalibrationPoint> &points);

    /** Effective queue count n_i (rounded to an integer >= 1). */
    int queues() const { return queues_; }

    /** Per-request processing time at the given traffic. */
    double serviceTime(double mtbr, double payload_bytes) const;

    /** Coefficients of the service-time law. */
    double baseServiceTime() const { return t0_; }
    double perByteTime() const { return byteSlope_; }
    double perMatchTime() const { return matchSlope_; }

    /**
     * Predict the target's accelerator-stage throughput (packets/s,
     * assuming one request per packet as calibrated) given competitor
     * accelerator contention levels.
     */
    double predictThroughput(
        double mtbr, double payload_bytes,
        const std::vector<AccelContention> &competitors) const;

    bool calibrated() const { return calibrated_; }

    /** Serialize the calibrated parameters to a text stream. */
    Status save(std::ostream &out) const;

    /** Load from save() output. On error the model is untouched and
     *  the Status names what was malformed. */
    Status load(std::istream &in);

  private:
    int queues_ = 1;
    double t0_ = 0.0;
    double byteSlope_ = 0.0;
    double matchSlope_ = 0.0;
    bool calibrated_ = false;
};

} // namespace tomur::core

#endif // TOMUR_TOMUR_ACCEL_MODEL_HH
