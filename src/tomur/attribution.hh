/**
 * @file
 * Per-prediction contention attribution: rank each shared resource's
 * contribution to a prediction's throughput drop.
 *
 * This is the single place the "which resource hurts most" ranking
 * lives. The predictor fills PredictionBreakdown::dominantResource
 * from it, the diagnosis use case (§7.5.2) maps its top entry onto a
 * diagnosable resource, and the prediction monitor attaches its
 * ranking to drift events so an operator sees not just *that* the
 * model drifted but *which* resource the model blames.
 */

#ifndef TOMUR_TOMUR_ATTRIBUTION_HH
#define TOMUR_TOMUR_ATTRIBUTION_HH

#include <string>
#include <vector>

#include "tomur/predictor.hh"

namespace tomur::core {

/**
 * Attributed-resource index convention, shared with
 * PredictionBreakdown::dominantResource: 0 = memory, otherwise
 * 1 + accelerator kind index (1 = regex, 2 = compression,
 * 3 = crypto).
 */
constexpr int numAttributedResources = 1 + hw::numAccelKinds;

/** Resource name for one attributed index ("memory", "regex", ...). */
const char *attributedResourceName(int resource);

/** One resource's contribution to the predicted drop. */
struct ResourceContribution
{
    int resource = 0;   ///< attributed-resource index
    double drop = 0.0;  ///< solo minus resource-only throughput (pps)
    double share = 0.0; ///< fraction of the summed drops, in [0, 1]
};

/** Ranked contention attribution for one prediction. */
struct ContentionAttribution
{
    /**
     * Contributions sorted by descending drop; ties keep the
     * resource-index order (memory first), matching the predictor's
     * historical argmax. Memory is always present; accelerators the
     * prediction did not model (unused or degraded sub-model) are
     * omitted.
     */
    std::vector<ResourceContribution> ranked;
    int dominantResource = 0; ///< ranked.front().resource
    double soloThroughput = 0.0;
    double predicted = 0.0;
    double totalDrop = 0.0; ///< solo minus composed prediction
    /**
     * Carried from the breakdown: an attribution computed on a
     * degraded fallback path inherits its (low) confidence, so
     * consumers ranking resources can discount it.
     */
    double confidence = 1.0;
    bool degraded = false;

    /** "memory 62% (-412.3 Kpps), regex 38% (-251.0 Kpps)". */
    std::string toString() const;
};

/**
 * Attribute a prediction's throughput drop across resources.
 * Pure function of the breakdown — deterministic, allocation-light,
 * safe to call per prediction on the monitor's ingest path.
 */
ContentionAttribution
attributeContention(const PredictionBreakdown &breakdown);

} // namespace tomur::core

#endif // TOMUR_TOMUR_ATTRIBUTION_HH
